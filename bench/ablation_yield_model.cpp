/// Ablation A4 (DESIGN.md): yield-model choice.  The 1/Y multiplier in the
/// manufacturing model is the lever that turns Table 2's 4x/7.42x area
/// ratios into super-linear embodied penalties for the big FPGA dies --
/// so the choice of yield model (Poisson / Murphy / Seeds / negative
/// binomial) shifts the crossovers.  This bench shows die yields per model
/// and the resulting DNN/ImgProc A2F movement.

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "io/table.hpp"
#include "scenario/sweep.hpp"
#include "tech/yield.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

constexpr std::array<tech::YieldModel, 4> kModels{
    tech::YieldModel::poisson,
    tech::YieldModel::murphy,
    tech::YieldModel::seeds,
    tech::YieldModel::negative_binomial,
};

core::ModelSuite suite_with(tech::YieldModel model) {
  core::ModelSuite suite = core::paper_suite();
  suite.fab.yield.model = model;
  return suite;
}

void print_yields() {
  io::TextTable table;
  table.set_headers({"die", "area", "poisson", "murphy", "seeds", "neg-binomial"});
  const std::vector<device::ChipSpec> chips{
      device::domain_testcase(device::Domain::dnn).asic,
      device::domain_testcase(device::Domain::dnn).fpga,
      device::domain_testcase(device::Domain::imgproc).fpga,
  };
  for (const device::ChipSpec& chip : chips) {
    std::vector<std::string> row{chip.name, units::format_area(chip.die_area)};
    for (const tech::YieldModel model : kModels) {
      const core::LifecycleModel lifecycle(suite_with(model));
      row.push_back(units::format_significant(
          lifecycle.fab_model().yield(chip.node, chip.die_area), 3));
    }
    table.add_row(std::move(row));
  }
  std::cout << "die yields by model (10 nm defect density):\n" << table.render() << "\n";
}

void print_crossovers() {
  io::TextTable table;
  table.set_headers({"yield model", "DNN A2F [apps]", "ImgProc A2F [apps]",
                     "DNN F2A volume [units]"});
  for (const tech::YieldModel model : kModels) {
    std::vector<std::string> row{to_string(model)};
    for (const device::Domain domain : {device::Domain::dnn, device::Domain::imgproc}) {
      const scenario::SweepEngine engine(core::LifecycleModel(suite_with(model)),
                                         device::domain_testcase(domain));
      const auto series = engine.sweep_app_count(1, 24, bench::kDefaults.app_lifetime,
                                                 bench::kDefaults.app_volume);
      const auto a2f = first_crossover(series.crossovers(), scenario::CrossoverKind::a2f);
      row.push_back(a2f ? units::format_significant(*a2f, 4) : std::string("> 24"));
    }
    const scenario::SweepEngine engine(core::LifecycleModel(suite_with(model)),
                                       device::domain_testcase(device::Domain::dnn));
    const std::vector<double> volumes = scenario::logspace(1e3, 1e7, 41);
    const auto series = engine.sweep_volume(volumes, bench::kDefaults.app_count,
                                            bench::kDefaults.app_lifetime);
    const auto f2a = first_crossover(series.crossovers(), scenario::CrossoverKind::f2a);
    row.push_back(f2a ? units::format_significant(*f2a, 4) : std::string("none"));
    table.add_row(std::move(row));
  }
  std::cout << "crossover movement by yield model:\n" << table.render()
            << "\npessimistic models (low yield on big dies) delay the FPGA's\n"
               "amortisation; clustering-aware models favour it\n";
}

void print_reproduction() {
  bench::banner("Ablation A4", "yield-model choice vs crossover positions");
  print_yields();
  print_crossovers();
}

void bm_yield_model_sweep(benchmark::State& state) {
  const auto model = kModels[static_cast<std::size_t>(state.range(0))];
  const scenario::SweepEngine engine(core::LifecycleModel(suite_with(model)),
                                     device::domain_testcase(device::Domain::dnn));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.sweep_app_count(1, 12, bench::kDefaults.app_lifetime,
                                                    bench::kDefaults.app_volume));
  }
}
BENCHMARK(bm_yield_model_sweep)->DenseRange(0, 3);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
