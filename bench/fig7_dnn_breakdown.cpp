/// Reproduces Fig. 7: component breakdown (embodied EC vs operational OC)
/// of the DNN domain for the three sweeps of experiments A-C, at the paper
/// defaults N_app = 5, T_i = 2 y, N_vol = 1e6 unless swept.
///
/// Paper shape: (a) sweeping N_app -- FPGA EC constant, ASIC EC grows and
/// dominates; (b) sweeping T_i -- EC flat, FPGA OC grows 3x faster;
/// (c) sweeping N_vol -- EC dominates at low volume, ASIC EC >> FPGA EC.

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "io/table.hpp"
#include "report/figure_writer.hpp"
#include "scenario/sweep.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

scenario::SweepEngine dnn_engine() {
  return scenario::SweepEngine(core::LifecycleModel(core::paper_suite()),
                               device::domain_testcase(device::Domain::dnn));
}

void print_ec_oc_table(const scenario::SweepSeries& series, const std::string& label) {
  io::TextTable table;
  table.set_headers({series.parameter, "ASIC EC [t]", "ASIC OC [t]", "FPGA EC [t]",
                     "FPGA OC [t]", "FPGA app-dev [t]"});
  for (std::size_t i = 0; i < series.x.size(); ++i) {
    const auto t = [](units::CarbonMass m) {
      return units::format_significant(m.in(t_co2e), 5);
    };
    table.add_row({units::format_significant(series.x[i], 4),
                   t(series.asic[i].embodied()), t(series.asic[i].operational),
                   t(series.fpga[i].embodied()), t(series.fpga[i].operational),
                   t(series.fpga[i].app_dev)});
  }
  std::cout << "-- Fig. 7(" << label << ") --\n" << table.render();
  const std::string path =
      report::write_results_csv("fig7_" + label + ".csv", report::sweep_csv(series));
  std::cout << "csv: " << path << "\n\n";
}

void print_reproduction() {
  bench::banner("Fig. 7", "DNN component breakdown across the three sweeps");
  const scenario::SweepEngine engine = dnn_engine();

  print_ec_oc_table(
      engine.sweep_app_count(1, 8, bench::kDefaults.app_lifetime, bench::kDefaults.app_volume),
      "a");
  const std::vector<double> lifetimes = scenario::linspace(0.2, 2.5, 10);
  print_ec_oc_table(
      engine.sweep_lifetime(lifetimes, bench::kDefaults.app_count, bench::kDefaults.app_volume),
      "b");
  const std::vector<double> volumes = scenario::logspace(1e3, 1e6, 10);
  print_ec_oc_table(
      engine.sweep_volume(volumes, bench::kDefaults.app_count, bench::kDefaults.app_lifetime),
      "c");

  std::cout << "paper: ASIC EC grows with N_app and dominates; FPGA EC constant;\n"
               "       FPGA OC grows with T_i; EC dominates at low volume\n";
}

void bm_fig7_breakdowns(benchmark::State& state) {
  const scenario::SweepEngine engine = dnn_engine();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.sweep_app_count(1, 8, bench::kDefaults.app_lifetime,
                                                    bench::kDefaults.app_volume));
  }
}
BENCHMARK(bm_fig7_breakdowns);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
