/// Reproduces Table 2: the iso-performance FPGA testcases -- area and
/// power normalised to the ASIC for each domain -- and shows the derived
/// 10 nm device pairs plus their per-chip embodied CFP consequences.

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "io/table.hpp"
#include "report/figure_writer.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

void print_reproduction() {
  bench::banner("Table 2", "FPGA testcases at iso-performance with the ASIC [12]");

  io::TextTable ratios;
  ratios.set_headers({"testcase", "DNN", "ImgProc", "Crypto"});
  ratios.add_row({"Area (normalized to ASIC)", "4", "7.42", "1"});
  ratios.add_row({"Power (normalized to ASIC)", "3", "1.25", "1"});
  std::cout << ratios.render() << "\n";

  io::TextTable derived;
  derived.set_headers({"domain", "chip", "die area", "peak power", "per-chip embodied"});
  const core::LifecycleModel model(core::paper_suite());
  for (const device::Domain domain : device::all_domains()) {
    const device::DomainTestcase testcase = device::domain_testcase(domain);
    for (const device::ChipSpec* chip : {&testcase.asic, &testcase.fpga}) {
      const core::CfpBreakdown embodied = model.per_chip_embodied(*chip);
      derived.add_row({to_string(domain), chip->is_fpga() ? "FPGA" : "ASIC",
                       units::format_area(chip->die_area),
                       units::format_power(chip->peak_power),
                       units::format_carbon(embodied.total())});
    }
  }
  std::cout << "derived 10 nm testcase devices (calibrated bases, DESIGN.md §4):\n"
            << derived.render();

  io::TextTable penalty;
  penalty.set_headers({"domain", "area ratio", "embodied ratio (with yield)"});
  for (const device::Domain domain : device::all_domains()) {
    const device::DomainTestcase testcase = device::domain_testcase(domain);
    const double area_ratio =
        testcase.fpga.die_area.canonical() / testcase.asic.die_area.canonical();
    const double embodied_ratio = model.per_chip_embodied(testcase.fpga).total().canonical() /
                                  model.per_chip_embodied(testcase.asic).total().canonical();
    penalty.add_row({to_string(domain), units::format_significant(area_ratio, 4),
                     units::format_significant(embodied_ratio, 4)});
  }
  std::cout << "\nyield makes the embodied penalty super-linear in the area ratio:\n"
            << penalty.render();
}

void bm_table2_embodied(benchmark::State& state) {
  const core::LifecycleModel model(core::paper_suite());
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::imgproc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.per_chip_embodied(testcase.fpga));
  }
}
BENCHMARK(bm_table2_embodied);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
