/// \file engine_throughput.cpp
/// Multi-threaded engine throughput baseline: a 50x50 heat-map grid
/// (2500 scenario points x 2 platforms) at 1 / 2 / 4 / hardware threads.
///
/// This is the perf baseline for the parallel batched evaluation path:
/// future scheduling/caching/sharding PRs should move these numbers
/// without changing the (bit-identical) results.  The reproduction
/// section prints measured wall-clock speedups vs 1 thread; the
/// registered google-benchmark timings track the same grid per thread
/// count (real time, since the work runs on the engine's pool).

#include <chrono>
#include <iomanip>

#include "bench_common.hpp"
#include "scenario/engine.hpp"
#include "units/format.hpp"

namespace {

using namespace greenfpga;

scenario::ScenarioSpec heatmap_spec(int side) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::grid, device::Domain::dnn);
  spec.name = "engine-throughput heat-map";
  spec.axes = {
      scenario::AxisSpec::log(scenario::SweepVariable::volume, 1e3, 1e7, side),
      scenario::AxisSpec::linear(scenario::SweepVariable::lifetime_years, 0.2, 2.5, side)};
  return spec;
}

double run_once_seconds(const scenario::ScenarioSpec& spec, int threads) {
  const scenario::Engine engine(scenario::EngineOptions{.threads = threads});
  const auto start = std::chrono::steady_clock::now();
  const scenario::ScenarioResult result = engine.run(spec);
  const auto stop = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(result.points.data());
  return std::chrono::duration<double>(stop - start).count();
}

void print_speedups() {
  bench::banner("Engine throughput",
                "50x50 DNN heat-map grid, wall-clock speedup vs 1 thread");
  const scenario::ScenarioSpec spec = heatmap_spec(50);
  const double base = run_once_seconds(spec, 1);
  std::cout << "  threads   seconds   speedup\n";
  for (const int threads : {1, 2, 4, scenario::Engine::default_threads()}) {
    const double seconds = threads == 1 ? base : run_once_seconds(spec, threads);
    std::cout << "  " << std::setw(7) << threads << "   " << std::setw(7)
              << units::format_significant(seconds, 4) << "   "
              << units::format_significant(base / seconds, 4) << "x\n";
  }
  std::cout << "\n";
}

void BM_HeatmapGrid(benchmark::State& state) {
  const scenario::ScenarioSpec spec = heatmap_spec(50);
  const scenario::Engine engine(
      scenario::EngineOptions{.threads = static_cast<int>(state.range(0))});
  for (auto _ : state) {
    const scenario::ScenarioResult result = engine.run(spec);
    benchmark::DoNotOptimize(result.points.data());
  }
  state.counters["points"] = 50.0 * 50.0;
}
BENCHMARK(BM_HeatmapGrid)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

GF_BENCH_MAIN(print_speedups)
