/// Ablation A1 (DESIGN.md): GreenFPGA's energy-anchored design-CFP model
/// (Eq. 4) versus the ECO-CHIP-style gate-count-proportional prior-art
/// model the paper claims "grossly underestimated" design CFP.
///
/// Shows the absolute design CFP each model assigns to the testcase chips
/// and how the DNN A2F crossover moves if the prior-art model (fit to
/// various per-gate intensities) replaces Eq. 4.

#include "bench_common.hpp"
#include "core/design_model.hpp"
#include "device/catalog.hpp"
#include "io/table.hpp"
#include "scenario/sweep.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

void print_model_comparison() {
  const core::DesignModel eq4(core::paper_suite().design);
  io::TextTable table;
  table.set_headers({"chip", "Eq. 4 (energy-anchored)", "gate-count model (1 ug/gate)",
                     "gate-count model (100 ug/gate)"});
  const std::vector<device::ChipSpec> chips{
      device::domain_testcase(device::Domain::dnn).asic,
      device::domain_testcase(device::Domain::dnn).fpga,
      device::industry_asic2(),
      device::industry_fpga1(),
  };
  for (const device::ChipSpec& chip : chips) {
    const double gates = tech::node_info(chip.node).gates_in_area(chip.die_area);
    table.add_row({chip.name, units::format_carbon(eq4.design_carbon(chip)),
                   units::format_carbon(core::DesignModel::gate_count_model(
                       gates, units::CarbonMass{1e-9})),
                   units::format_carbon(core::DesignModel::gate_count_model(
                       gates, units::CarbonMass{1e-7}))});
  }
  std::cout << table.render();
}

void print_crossover_shift() {
  // Re-run Fig. 4's DNN sweep with design CFP scaled down to mimic a
  // gate-count model that underestimates design (paper's criticism of
  // prior art): at 10 % of Eq. 4's output the ASIC's recurring design
  // penalty shrinks and the A2F point moves out.
  io::TextTable table;
  table.set_headers({"design model", "DNN A2F crossover [apps]"});
  for (const double scale : {1.0, 0.5, 0.25, 0.1}) {
    core::ModelSuite suite = core::paper_suite();
    // Scaling the design-house energy scales Eq. 4 linearly: a transparent
    // stand-in for "the model underestimates by this factor".
    suite.design.annual_energy *= scale;
    const scenario::SweepEngine engine(core::LifecycleModel(suite),
                                       device::domain_testcase(device::Domain::dnn));
    const auto series = engine.sweep_app_count(1, 24, bench::kDefaults.app_lifetime,
                                               bench::kDefaults.app_volume);
    const auto a2f = first_crossover(series.crossovers(), scenario::CrossoverKind::a2f);
    table.add_row({"Eq. 4 x " + units::format_significant(scale, 3),
                   a2f ? units::format_significant(*a2f, 4) : std::string("> 24")});
  }
  std::cout << "\nA2F sensitivity to design-CFP magnitude (underestimating design CFP\n"
               "hides the FPGA's amortisation advantage -- the paper's point):\n"
            << table.render();
}

void print_reproduction() {
  bench::banner("Ablation A1", "design-CFP model: Eq. 4 vs gate-count prior art");
  print_model_comparison();
  print_crossover_shift();
}

void bm_design_eq4(benchmark::State& state) {
  const core::DesignModel model(core::paper_suite().design);
  const device::ChipSpec chip = device::industry_fpga1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.design_carbon(chip));
  }
}
BENCHMARK(bm_design_eq4);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
