/// Reproduces Fig. 4: variation of CFP with the number of applications
/// N_app (1..12), with T_i = 2 years and N_vol = 1e6 held constant, for
/// all three application domains.
///
/// Paper shape: A2F crossover after the first application for Crypto,
/// after ~6 applications for DNN, and past the extended axis (~12) for
/// ImgProc.

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "report/ascii_chart.hpp"
#include "report/figure_writer.hpp"
#include "scenario/sweep.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

scenario::SweepSeries domain_series(device::Domain domain) {
  const scenario::SweepEngine engine(core::LifecycleModel(core::paper_suite()),
                                     device::domain_testcase(domain));
  return engine.sweep_app_count(1, 12, bench::kDefaults.app_lifetime,
                                bench::kDefaults.app_volume);
}

void print_reproduction() {
  bench::banner("Fig. 4", "CFP vs N_app (T_i = 2 y, N_vol = 1e6 constant)");
  for (const device::Domain domain : device::all_domains()) {
    const scenario::SweepSeries series = domain_series(domain);
    std::cout << "-- " << to_string(domain) << " --\n"
              << report::sweep_table(series)
              << "crossovers: " << report::crossover_summary(series) << "\n";
    const std::vector<report::ChartSeries> chart{
        {"ASIC", 'a', series.asic_totals_kg()},
        {"FPGA", 'f', series.fpga_totals_kg()},
    };
    std::cout << report::render_line_chart(series.x, chart) << "\n";
    const std::string path = report::write_results_csv(
        "fig4_" + to_string(domain) + ".csv", report::sweep_csv(series));
    std::cout << "csv: " << path << "\n\n";
  }
  std::cout << "paper: A2F at 1 (Crypto), ~6 (DNN), ~12 (ImgProc, extended axis)\n";
}

void bm_fig4_sweep(benchmark::State& state) {
  const auto domain = static_cast<device::Domain>(state.range(0));
  const scenario::SweepEngine engine(core::LifecycleModel(core::paper_suite()),
                                     device::domain_testcase(domain));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.sweep_app_count(1, 12, bench::kDefaults.app_lifetime,
                                                    bench::kDefaults.app_volume));
  }
}
BENCHMARK(bm_fig4_sweep)
    ->Arg(static_cast<int>(device::Domain::dnn))
    ->Arg(static_cast<int>(device::Domain::imgproc))
    ->Arg(static_cast<int>(device::Domain::crypto));

}  // namespace

GF_BENCH_MAIN(print_reproduction)
