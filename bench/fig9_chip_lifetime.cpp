/// Reproduces Fig. 9: cumulative CFP with a 15-year FPGA chip lifetime and
/// 1-year applications, evaluated past the chip lifetime (45-year horizon).
///
/// Paper shape: the FPGA curve jumps at the 15- and 30-year marks (fleet
/// re-manufacture) while the ASIC staircase is uniform (new chips per
/// application anyway); ImgProc sees multiple A2F/F2A crossovers, the
/// other domains' verdicts never flip.

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "io/table.hpp"
#include "report/ascii_chart.hpp"
#include "report/figure_writer.hpp"
#include "scenario/timeline.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

scenario::TimelineParameters paper_parameters() {
  scenario::TimelineParameters p;
  p.horizon = 45.0 * years;
  p.app_lifetime = 1.0 * years;
  p.volume = 1e6;
  p.step = 0.25 * years;
  return p;
}

void print_reproduction() {
  bench::banner("Fig. 9", "45-year timeline, 15-year FPGA service life, 1-year apps");
  for (const device::Domain domain : device::all_domains()) {
    const scenario::TimelineSimulator simulator(core::LifecycleModel(core::paper_suite()),
                                                device::domain_testcase(domain));
    const scenario::TimelineSeries series = simulator.run(paper_parameters());

    std::cout << "-- " << to_string(domain) << " --\n";
    io::TextTable table;
    table.set_headers({"year", "ASIC cumulative [t]", "FPGA cumulative [t]", "greener"});
    for (double year = 0.0; year <= 45.0; year += 5.0) {
      const auto index = static_cast<std::size_t>(year / 0.25);
      const double asic = series.asic_cumulative_kg[index];
      const double fpga = series.fpga_cumulative_kg[index];
      table.add_row({units::format_significant(year, 3),
                     units::format_significant(asic / 1e3, 5),
                     units::format_significant(fpga / 1e3, 5),
                     fpga < asic ? "FPGA" : "ASIC"});
    }
    std::cout << table.render();

    std::cout << "FPGA fleet purchases at years: ";
    for (const double year : series.fpga_purchase_years) {
      std::cout << units::format_significant(year, 3) << " ";
    }
    const auto crossovers = series.crossovers();
    std::cout << "\ncumulative-curve crossings: " << crossovers.size() << "\n";
    const std::vector<report::ChartSeries> chart{
        {"ASIC", 'a', series.asic_cumulative_kg},
        {"FPGA", 'f', series.fpga_cumulative_kg},
    };
    std::cout << report::render_line_chart(series.time_years, chart) << "\n";
    std::cout << "csv: "
              << report::write_results_csv("fig9_" + to_string(domain) + ".csv",
                                           report::timeline_csv(series))
              << "\n\n";
  }
  std::cout << "paper: FPGA jumps at 15/30 years; multiple crossovers for ImgProc only\n";
}

void bm_fig9_timeline(benchmark::State& state) {
  const scenario::TimelineSimulator simulator(
      core::LifecycleModel(core::paper_suite()),
      device::domain_testcase(device::Domain::dnn));
  const scenario::TimelineParameters p = paper_parameters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(p));
  }
}
BENCHMARK(bm_fig9_timeline);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
