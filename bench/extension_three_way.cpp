/// Extension bench: the full three-way platform comparison the paper's
/// introduction frames -- ASIC vs FPGA vs GPU at iso-performance.
///
/// The paper excludes GPUs from its evaluation ("high power and less
/// flexibility than FPGAs"); this bench quantifies that exclusion.  GPUs
/// share the FPGA's reuse economics (Eq. 2 shape, cheap software app-dev)
/// but pay more silicon and far more power, so they sit between the two
/// paper platforms in churn-heavy scenarios and last in steady ones.

#include "bench_common.hpp"
#include "core/comparator.hpp"
#include "device/catalog.hpp"
#include "io/table.hpp"
#include "report/figure_writer.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

void print_domain_matrix() {
  const core::LifecycleModel model(core::paper_suite());
  io::TextTable table;
  table.set_headers({"domain", "N_app", "T_i [y]", "ASIC [t]", "FPGA [t]", "GPU [t]",
                     "winner"});
  struct Point {
    int apps;
    double years;
  };
  for (const device::Domain domain : device::all_domains()) {
    for (const Point& point : {Point{1, 8.0}, Point{5, 2.0}, Point{12, 0.5}}) {
      const auto comparison = core::compare_three_way(
          model, device::domain_testcase(domain),
          core::paper_schedule(domain, point.apps, point.years * years, 1e6));
      table.add_row({to_string(domain), std::to_string(point.apps),
                     units::format_significant(point.years, 3),
                     units::format_significant(comparison.asic.total.total().in(t_co2e), 5),
                     units::format_significant(comparison.fpga.total.total().in(t_co2e), 5),
                     units::format_significant(comparison.gpu.total.total().in(t_co2e), 5),
                     to_string(comparison.winner())});
    }
  }
  std::cout << "platform totals across workload churn (edge regime, 1M units):\n"
            << table.render() << "\n";
}

void print_component_comparison() {
  const core::LifecycleModel model(core::paper_suite());
  const auto comparison =
      core::compare_three_way(model, device::domain_testcase(device::Domain::dnn),
                              core::paper_schedule(device::Domain::dnn));
  const std::vector<std::pair<std::string, core::CfpBreakdown>> platforms{
      {"ASIC", comparison.asic.total},
      {"FPGA", comparison.fpga.total},
      {"GPU", comparison.gpu.total},
  };
  std::cout << "component breakdown at the paper's default point (DNN, 5 apps, 2 y, 1M):\n"
            << report::breakdown_table(platforms);
}

void print_reproduction() {
  bench::banner("Extension", "three-way ASIC vs FPGA vs GPU at iso-performance");
  print_domain_matrix();
  print_component_comparison();
  std::cout << "\nreading: GPUs inherit the FPGA's reuse advantage but pay 5-8x the\n"
               "ASIC's power -- they beat ASICs only under heavy churn, lose to the\n"
               "FPGA wherever the FPGA's area overhead is moderate (DNN, Crypto), and\n"
               "edge ahead only where the FPGA's own overhead explodes (ImgProc 7.42x)\n";
}

void bm_three_way(benchmark::State& state) {
  const core::LifecycleModel model(core::paper_suite());
  const auto testcase = device::domain_testcase(device::Domain::dnn);
  const auto schedule = core::paper_schedule(device::Domain::dnn);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compare_three_way(model, testcase, schedule));
  }
}
BENCHMARK(bm_three_way);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
