/// \file batch_throughput.cpp
/// Batch-evaluation throughput baseline: a mixed fleet of specs (compare,
/// sweeps, a grid, Monte-Carlo) through `Engine::run_batch` at 1 / 2 / 4 /
/// hardware threads.
///
/// This is the perf baseline for the fleet-scale path: the batch flattens
/// spec-level and point-level work onto one pool, so a mix of one large
/// grid and many small compares should keep every worker busy instead of
/// serialising spec-by-spec.  Per-worker suite-keyed model caches share
/// the embodied-carbon memoisation across specs, and results are
/// bit-identical to individual runs at any thread count (pinned by
/// tests/golden_results_test.cpp), so scheduling changes here can never
/// move the numbers.

#include <chrono>
#include <iomanip>

#include "bench_common.hpp"
#include "scenario/engine.hpp"
#include "scenario/result_io.hpp"
#include "units/format.hpp"

namespace {

using namespace greenfpga;

/// A workload shaped like a real manifest: point-heavy and sample-heavy
/// specs mixed with cheap ones, several sharing the paper-default suite.
std::vector<scenario::ScenarioSpec> fleet() {
  std::vector<scenario::ScenarioSpec> specs;
  for (const device::Domain domain : device::all_domains()) {
    specs.push_back(
        scenario::ScenarioSpec::make(scenario::ScenarioKind::compare, domain));
    scenario::ScenarioSpec sweep =
        scenario::ScenarioSpec::make(scenario::ScenarioKind::sweep, domain);
    sweep.axes = {
        scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 16, 16)};
    specs.push_back(std::move(sweep));
  }
  scenario::ScenarioSpec grid =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::grid, device::Domain::dnn);
  grid.axes = {scenario::AxisSpec::log(scenario::SweepVariable::volume, 1e4, 1e7, 25),
               scenario::AxisSpec::linear(scenario::SweepVariable::lifetime_years, 0.25,
                                          2.5, 25)};
  specs.push_back(std::move(grid));
  scenario::ScenarioSpec mc = scenario::ScenarioSpec::make(
      scenario::ScenarioKind::montecarlo, device::Domain::dnn);
  mc.montecarlo.samples = 512;
  specs.push_back(std::move(mc));
  return specs;
}

double run_once_seconds(const std::vector<scenario::ScenarioSpec>& specs, int threads) {
  const scenario::Engine engine(scenario::EngineOptions{.threads = threads});
  const auto start = std::chrono::steady_clock::now();
  const std::vector<scenario::ScenarioResult> results = engine.run_batch(specs);
  const auto stop = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(results.data());
  return std::chrono::duration<double>(stop - start).count();
}

void print_speedups() {
  bench::banner("Batch throughput",
                "11-spec fleet (3 compares, 3 sweeps, 25x25 grid, 512-sample MC), "
                "wall-clock speedup vs 1 thread");
  const std::vector<scenario::ScenarioSpec> specs = fleet();
  const double base = run_once_seconds(specs, 1);
  std::cout << "  threads   seconds   specs/s   speedup\n";
  for (const int threads : {1, 2, 4, scenario::Engine::default_threads()}) {
    const double seconds = threads == 1 ? base : run_once_seconds(specs, threads);
    std::cout << "  " << std::setw(7) << threads << "   " << std::setw(7)
              << units::format_significant(seconds, 4) << "   " << std::setw(7)
              << units::format_significant(static_cast<double>(specs.size()) / seconds, 4)
              << "   " << units::format_significant(base / seconds, 4) << "x\n";
  }
  std::cout << "\n";
}

void BM_Batch(benchmark::State& state) {
  const std::vector<scenario::ScenarioSpec> specs = fleet();
  const scenario::Engine engine(
      scenario::EngineOptions{.threads = static_cast<int>(state.range(0))});
  for (auto _ : state) {
    const std::vector<scenario::ScenarioResult> results = engine.run_batch(specs);
    benchmark::DoNotOptimize(results.data());
  }
  state.counters["specs"] = static_cast<double>(specs.size());
}
BENCHMARK(BM_Batch)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

GF_BENCH_MAIN(print_speedups)
