/// Reproduces Fig. 2: CFP comparison between ASIC- and FPGA-based
/// computing for a single application and for ten applications (DNN
/// domain, iso-performance, T_i = 2 y, N_vol = 1e6).
///
/// Paper shape: the FPGA starts with a higher CFP than the ASIC (larger
/// die, 3x power), but reusing it across ten applications saves the
/// recurring embodied carbon and ends ~25 % below the ASIC.

#include "bench_common.hpp"
#include "core/comparator.hpp"
#include "device/catalog.hpp"
#include "report/figure_writer.hpp"
#include "scenario/sweep.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

void print_reproduction() {
  bench::banner("Fig. 2", "ASIC vs FPGA CFP, 1 application vs 10 applications (DNN)");

  const scenario::SweepEngine engine(core::LifecycleModel(core::paper_suite()),
                                     device::domain_testcase(device::Domain::dnn));
  for (const int apps : {1, 10}) {
    const core::Comparison comparison =
        engine.evaluate_point(apps, bench::kDefaults.app_lifetime, bench::kDefaults.app_volume);
    std::cout << "N_app = " << apps << "\n";
    const std::vector<std::pair<std::string, core::CfpBreakdown>> platforms{
        {"ASIC", comparison.asic.total},
        {"FPGA", comparison.fpga.total},
    };
    std::cout << report::breakdown_table(platforms);
    std::cout << "FPGA:ASIC = " << units::format_significant(comparison.ratio(), 4);
    if (comparison.ratio() < 1.0) {
      std::cout << "  (FPGA " << units::format_significant(100.0 * (1.0 - comparison.ratio()), 3)
                << " % lower)";
    } else {
      std::cout << "  (FPGA " << units::format_significant(100.0 * (comparison.ratio() - 1.0), 3)
                << " % higher)";
    }
    std::cout << "\n\n";
  }
  std::cout << "paper: FPGA higher at 1 application; ~25 % lower at 10 applications\n";
}

void bm_fig2_point(benchmark::State& state) {
  const scenario::SweepEngine engine(core::LifecycleModel(core::paper_suite()),
                                     device::domain_testcase(device::Domain::dnn));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate_point(static_cast<int>(state.range(0)),
                                                   bench::kDefaults.app_lifetime,
                                                   bench::kDefaults.app_volume));
  }
}
BENCHMARK(bm_fig2_point)->Arg(1)->Arg(10);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
