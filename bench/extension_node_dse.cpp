/// Extension bench: carbon-aware process-node selection (§5's
/// "sustainability-minded design decisions" + the carbon-aware DSE line
/// of work the paper cites [16]).
///
/// For the DNN FPGA design, ranks every manufacturable fabrication node by
/// lifecycle CFP under (a) the edge regime and (b) the datacenter regime,
/// exposing the embodied-vs-operational tradeoff: trailing nodes win when
/// devices idle, leading nodes win when they run hot.

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "io/table.hpp"
#include "scenario/node_dse.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

void print_ranking(const std::string& label, const core::ModelSuite& suite) {
  const scenario::NodeDse dse(core::LifecycleModel(suite),
                              core::paper_schedule(device::Domain::dnn));
  const auto candidates = dse.explore(device::domain_testcase(device::Domain::dnn).fpga);

  io::TextTable table;
  table.set_headers({"rank", "node", "die area", "peak power", "embodied [t]",
                     "operational [t]", "total [t]", "vs best"});
  int rank = 1;
  for (const scenario::NodeCandidate& candidate : candidates) {
    table.add_row({std::to_string(rank++), tech::to_string(candidate.chip.node),
                   units::format_area(candidate.chip.die_area),
                   units::format_power(candidate.chip.peak_power),
                   units::format_significant(candidate.lifecycle.embodied().in(t_co2e), 5),
                   units::format_significant(candidate.lifecycle.operational.in(t_co2e), 5),
                   units::format_significant(candidate.total().in(t_co2e), 5),
                   units::format_significant(candidate.total_vs_best, 4)});
  }
  std::cout << label << ":\n" << table.render() << "\n";
}

void print_reproduction() {
  bench::banner("Extension", "carbon-aware node selection for the DNN FPGA (5 apps, 1M)");
  print_ranking("edge regime (2 % duty -- embodied dominates)", core::paper_suite());
  print_ranking("datacenter regime (50 % duty, PUE 1.2 -- operation dominates)",
                core::industry_suite());
  std::cout << "reading: density outpaces fab carbon-per-area in the ACT dataset, so\n"
               "the most advanced feasible node wins at iso-design in both regimes --\n"
               "but the margin is embodied-driven when idle and power-driven when hot,\n"
               "and trailing nodes drop out at the reticle limit\n";
}

void bm_node_dse(benchmark::State& state) {
  const scenario::NodeDse dse(core::LifecycleModel(core::paper_suite()),
                              core::paper_schedule(device::Domain::dnn));
  const device::ChipSpec chip = device::domain_testcase(device::Domain::dnn).fpga;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dse.explore(chip));
  }
}
BENCHMARK(bm_node_dse);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
