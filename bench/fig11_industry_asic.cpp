/// Reproduces Fig. 11: CFP components of the two industry ASICs (Table 3)
/// over a six-year application at 1 M volume, never reprogrammed, under
/// the datacenter parameter suite.
///
/// Paper shape: operational CFP is the predominant contributor, followed
/// by manufacturing and design.

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "report/ascii_chart.hpp"
#include "report/figure_writer.hpp"
#include "units/format.hpp"
#include "units/units.hpp"
#include "workload/application.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

workload::Schedule fig11_schedule() {
  workload::Application app;
  app.name = "industry-asic-app";
  app.lifetime = 6.0 * years;
  app.volume = 1e6;
  return {app};
}

void print_reproduction() {
  bench::banner("Fig. 11", "IndustryASIC1/2 components: one 6-year app, 1 M volume");
  const core::LifecycleModel model(core::industry_suite());
  const workload::Schedule schedule = fig11_schedule();

  std::vector<std::pair<std::string, core::CfpBreakdown>> rows;
  for (const device::ChipSpec& asic : {device::industry_asic1(), device::industry_asic2()}) {
    const core::PlatformCfp result = model.evaluate_asic(asic, schedule);
    rows.emplace_back(asic.name, result.total);
  }
  std::cout << report::breakdown_table(rows);

  for (const auto& [name, breakdown] : rows) {
    std::cout << "\n" << name << ":\n";
    const std::vector<report::Bar> bars{
        {"design", breakdown.design.in(t_co2e)},
        {"manufacturing", breakdown.manufacturing.in(t_co2e)},
        {"packaging", breakdown.packaging.in(t_co2e)},
        {"end-of-life", breakdown.eol.in(t_co2e)},
        {"operational", breakdown.operational.in(t_co2e)},
    };
    std::cout << report::render_bars(bars);
  }
  std::cout << "\npaper: operational predominant, then manufacturing and design\n";
}

void bm_fig11_industry_asic(benchmark::State& state) {
  const core::LifecycleModel model(core::industry_suite());
  const workload::Schedule schedule = fig11_schedule();
  const device::ChipSpec asic = device::industry_asic2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate_asic(asic, schedule));
  }
}
BENCHMARK(bm_fig11_industry_asic);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
