/// Reproduces Fig. 8: pairwise sweeps of (N_vol, N_app, T_i) for the DNN
/// domain, each holding the third variable at the paper default, rendered
/// as FPGA:ASIC CFP-ratio heat-maps with the crossover front marked.
///
/// Paper shape: purple (FPGA greener) toward many apps / short lifetimes /
/// low volumes; red (ASIC greener) toward few apps / high volumes; at high
/// volume (~9 M) FPGAs need N_app > 6.

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "io/csv.hpp"
#include "report/ascii_chart.hpp"
#include "report/figure_writer.hpp"
#include "scenario/heatmap.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

scenario::HeatmapEngine dnn_engine() {
  return scenario::HeatmapEngine(core::LifecycleModel(core::paper_suite()),
                                 device::domain_testcase(device::Domain::dnn));
}

io::CsvWriter heatmap_csv(const scenario::Heatmap& map) {
  io::CsvWriter csv;
  std::vector<std::string> header{map.y_name + " \\ " + map.x_name};
  for (const double x : map.x) {
    header.push_back(units::format_significant(x, 6));
  }
  csv.add_row(std::move(header));
  for (std::size_t iy = 0; iy < map.y.size(); ++iy) {
    std::vector<std::string> row{units::format_significant(map.y[iy], 6)};
    for (const double r : map.ratio[iy]) {
      row.push_back(units::format_significant(r, 6));
    }
    csv.add_row(std::move(row));
  }
  return csv;
}

void show(const scenario::Heatmap& map, const std::string& label,
          const std::string& constant) {
  std::cout << "-- Fig. 8(" << label << "): " << map.y_name << " x " << map.x_name << " ("
            << constant << " constant) --\n"
            << report::render_heatmap(map);
  const auto contour = map.unity_contour();
  std::cout << "crossover front (ratio = 1): ";
  if (contour.empty()) {
    std::cout << "none in range";
  } else {
    for (std::size_t i = 0; i < contour.size() && i < 8; ++i) {
      std::cout << "(" << units::format_significant(contour[i].x, 4) << ", "
                << units::format_significant(contour[i].y, 4) << ") ";
    }
    if (contour.size() > 8) std::cout << "...";
  }
  std::cout << "\ncsv: " << report::write_results_csv("fig8_" + label + ".csv", heatmap_csv(map))
            << "\n\n";
}

void print_reproduction() {
  bench::banner("Fig. 8", "pairwise FPGA:ASIC ratio heat-maps, DNN domain");
  const scenario::HeatmapEngine engine = dnn_engine();

  const std::vector<int> apps{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16};
  const std::vector<double> lifetimes = scenario::linspace(0.25, 2.5, 10);
  const std::vector<double> volumes = scenario::logspace(1e4, 1e7, 12);

  show(engine.app_count_vs_lifetime(apps, lifetimes, bench::kDefaults.app_volume), "a",
       "N_vol = 1e6");
  show(engine.volume_vs_lifetime(volumes, lifetimes, bench::kDefaults.app_count), "b",
       "N_app = 5");
  show(engine.volume_vs_app_count(volumes, apps, bench::kDefaults.app_lifetime), "c",
       "T_i = 2 y");

  std::cout << "paper: FPGA region grows with N_app, shrinks with N_vol and T_i\n";
}

void bm_fig8_heatmap(benchmark::State& state) {
  const scenario::HeatmapEngine engine = dnn_engine();
  const std::vector<int> apps{1, 3, 5, 7};
  const std::vector<double> lifetimes = scenario::linspace(0.5, 2.5, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.app_count_vs_lifetime(apps, lifetimes, bench::kDefaults.app_volume));
  }
}
BENCHMARK(bm_fig8_heatmap);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
