/// Ablation A3 (DESIGN.md): the two recycling knobs.
///   * rho  -- fraction of fab materials from recycled sourcing (Eq. 5);
///   * delta -- fraction of device mass recycled at end of life (Eq. 6),
///     with the WARM discard/credit factors swept across their Table 1
///     ranges.
/// Quantifies how much "circular economy" levers move the verdict.

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "io/table.hpp"
#include "scenario/sweep.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

void print_rho_sweep() {
  io::TextTable table;
  table.set_headers({"rho", "FPGA mfg CFP/chip (DNN)", "ASIC total [t]", "FPGA total [t]",
                     "FPGA:ASIC"});
  const auto testcase = device::domain_testcase(device::Domain::dnn);
  const auto schedule = core::paper_schedule(device::Domain::dnn);
  for (const double rho : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    core::ModelSuite suite = core::paper_suite();
    suite.fab.recycled_material_fraction = rho;
    const core::LifecycleModel model(suite);
    const auto comparison = core::compare(model, testcase, schedule);
    const auto per_chip = model.per_chip_embodied(testcase.fpga);
    table.add_row({units::format_significant(rho, 3),
                   units::format_carbon(per_chip.manufacturing),
                   units::format_significant(comparison.asic.total.total().in(t_co2e), 5),
                   units::format_significant(comparison.fpga.total.total().in(t_co2e), 5),
                   units::format_significant(comparison.ratio(), 4)});
  }
  std::cout << "Eq. (5) recycled-material sourcing (both platforms benefit):\n"
            << table.render() << "\n";
}

void print_delta_sweep() {
  io::TextTable table;
  table.set_headers({"delta", "EOL/chip (FPGA)", "EOL/chip (ASIC)", "FPGA:ASIC"});
  const auto testcase = device::domain_testcase(device::Domain::dnn);
  const auto schedule = core::paper_schedule(device::Domain::dnn);
  for (const double delta : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    core::ModelSuite suite = core::paper_suite();
    suite.eol.recycled_fraction = delta;
    const core::LifecycleModel model(suite);
    const auto comparison = core::compare(model, testcase, schedule);
    table.add_row({units::format_significant(delta, 3),
                   units::format_carbon(model.per_chip_embodied(testcase.fpga).eol),
                   units::format_carbon(model.per_chip_embodied(testcase.asic).eol),
                   units::format_significant(comparison.ratio(), 4)});
  }
  std::cout << "Eq. (6) end-of-life recycling (credit grows with delta):\n"
            << table.render() << "\n";
}

void print_warm_extremes() {
  io::TextTable table;
  table.set_headers({"WARM factors", "DNN A2F [apps]"});
  struct Case {
    const char* label;
    double dis;
    double recycle;
  };
  for (const Case& c : {Case{"low (0.03 / 7.65)", 0.03, 7.65},
                        Case{"mid (1.0 / 15.0)", 1.0, 15.0},
                        Case{"high (2.08 / 29.83)", 2.08, 29.83}}) {
    core::ModelSuite suite = core::paper_suite();
    suite.eol.discard_factor = c.dis * mtco2e_per_ton;
    suite.eol.recycle_credit_factor = c.recycle * mtco2e_per_ton;
    const scenario::SweepEngine engine(core::LifecycleModel(suite),
                                       device::domain_testcase(device::Domain::dnn));
    const auto series = engine.sweep_app_count(1, 16, bench::kDefaults.app_lifetime,
                                               bench::kDefaults.app_volume);
    const auto a2f = first_crossover(series.crossovers(), scenario::CrossoverKind::a2f);
    table.add_row({c.label, a2f ? units::format_significant(*a2f, 4) : std::string("none")});
  }
  std::cout << "crossover robustness across the WARM factor ranges:\n" << table.render();
}

void print_reproduction() {
  bench::banner("Ablation A3", "recycling levers: Eq. (5) rho and Eq. (6) delta");
  print_rho_sweep();
  print_delta_sweep();
  print_warm_extremes();
}

void bm_recycling_eval(benchmark::State& state) {
  core::ModelSuite suite = core::paper_suite();
  suite.fab.recycled_material_fraction = 0.5;
  suite.eol.recycled_fraction = 0.5;
  const core::LifecycleModel model(suite);
  const auto testcase = device::domain_testcase(device::Domain::dnn);
  const auto schedule = core::paper_schedule(device::Domain::dnn);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compare(model, testcase, schedule));
  }
}
BENCHMARK(bm_recycling_eval);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
