/// Reproduces Fig. 5: variation of CFP with application lifetime T_i
/// (0.2..2.5 years), with N_app = 5 and N_vol = 1e6 held constant.
///
/// Paper shape: Crypto -- FPGA always greener; ImgProc -- ASIC always
/// greener; DNN -- FPGA greener for short lifetimes with an F2A crossover
/// at ~1.6 years.

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "report/ascii_chart.hpp"
#include "report/figure_writer.hpp"
#include "scenario/sweep.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

scenario::SweepSeries domain_series(device::Domain domain) {
  const scenario::SweepEngine engine(core::LifecycleModel(core::paper_suite()),
                                     device::domain_testcase(domain));
  const std::vector<double> lifetimes = scenario::linspace(0.2, 2.5, 24);
  return engine.sweep_lifetime(lifetimes, bench::kDefaults.app_count,
                               bench::kDefaults.app_volume);
}

void print_reproduction() {
  bench::banner("Fig. 5", "CFP vs T_i (N_app = 5, N_vol = 1e6 constant)");
  for (const device::Domain domain : device::all_domains()) {
    const scenario::SweepSeries series = domain_series(domain);
    std::cout << "-- " << to_string(domain) << " --\n"
              << report::sweep_table(series)
              << "crossovers: " << report::crossover_summary(series) << "\n";
    const std::vector<report::ChartSeries> chart{
        {"ASIC", 'a', series.asic_totals_kg()},
        {"FPGA", 'f', series.fpga_totals_kg()},
    };
    std::cout << report::render_line_chart(series.x, chart) << "\n";
    const std::string path = report::write_results_csv(
        "fig5_" + to_string(domain) + ".csv", report::sweep_csv(series));
    std::cout << "csv: " << path << "\n\n";
  }
  std::cout << "paper: Crypto always FPGA; ImgProc always ASIC; DNN F2A at ~1.6 years\n";
}

void bm_fig5_sweep(benchmark::State& state) {
  const auto domain = static_cast<device::Domain>(state.range(0));
  const scenario::SweepEngine engine(core::LifecycleModel(core::paper_suite()),
                                     device::domain_testcase(domain));
  const std::vector<double> lifetimes = scenario::linspace(0.2, 2.5, 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.sweep_lifetime(lifetimes, bench::kDefaults.app_count,
                                                   bench::kDefaults.app_volume));
  }
}
BENCHMARK(bm_fig5_sweep)
    ->Arg(static_cast<int>(device::Domain::dnn))
    ->Arg(static_cast<int>(device::Domain::imgproc))
    ->Arg(static_cast<int>(device::Domain::crypto));

}  // namespace

GF_BENCH_MAIN(print_reproduction)
