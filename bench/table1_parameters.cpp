/// Reproduces Table 1: the GreenFPGA input-parameter ranges, and extends
/// it with the one-at-a-time (tornado) sensitivity of the FPGA:ASIC
/// verdict over each range -- quantifying §5's configurability discussion.

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "io/table.hpp"
#include "report/figure_writer.hpp"
#include "scenario/sensitivity.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

void print_ranges() {
  io::TextTable table;
  table.set_headers({"model", "parameter", "range", "unit", "source"});
  table.add_row({"C_materials", "rho", "0 - 1", "-", "[27]/user-defined"});
  table.add_row({"C_EOL", "delta", "0 - 1", "-", "[29]"});
  table.add_row({"C_EOL", "C_recycle", "7.65 - 29.83", "MTCO2E/ton", "[29]"});
  table.add_row({"C_EOL", "C_dis", "0.03 - 2.08", "MTCO2E/ton", "[29]"});
  table.add_row({"C_app-dev", "T_app,FE", "1.5 - 2.5", "months", "user-defined"});
  table.add_row({"C_app-dev", "T_app,BE", "0.5 - 1.5", "months", "user-defined"});
  table.add_row({"C_des", "E_des", "2 - 7.3", "GWh", "[23-25]"});
  table.add_row({"C_des", "C_src,des", "30 - 700", "g CO2/kWh", "[4, 22]"});
  table.add_row({"C_des", "N_emp,des", "20K - 160K", "employees", "[23-25]"});
  table.add_row({"C_des", "T_proj", "1 - 3", "years", "[31]"});
  std::cout << table.render();
}

void print_tornado(device::Domain domain) {
  const auto entries = scenario::tornado(core::paper_suite(), device::domain_testcase(domain),
                                         core::paper_schedule(domain),
                                         scenario::table1_ranges());
  io::TextTable table;
  table.set_headers({"parameter", "ratio @ low", "ratio @ high", "swing"});
  for (const scenario::TornadoEntry& entry : entries) {
    table.add_row({entry.name, units::format_significant(entry.ratio_at_low, 4),
                   units::format_significant(entry.ratio_at_high, 4),
                   units::format_significant(entry.swing(), 4)});
  }
  std::cout << "\none-at-a-time sensitivity of the FPGA:ASIC ratio, " << to_string(domain)
            << " (N_app = 5, T = 2 y, V = 1e6):\n"
            << table.render();
}

void print_reproduction() {
  bench::banner("Table 1", "input parameter ranges + sensitivity over each range");
  print_ranges();
  print_tornado(device::Domain::dnn);

  const auto mc = scenario::monte_carlo(
      core::paper_suite(), device::domain_testcase(device::Domain::dnn),
      core::paper_schedule(device::Domain::dnn), scenario::table1_ranges(), 256, 42);
  std::cout << "\nMonte-Carlo over all Table 1 ranges (256 samples, seed 42):\n"
            << "  ratio mean " << units::format_significant(mc.mean, 4) << ", p05 "
            << units::format_significant(mc.p05, 4) << ", median "
            << units::format_significant(mc.p50, 4) << ", p95 "
            << units::format_significant(mc.p95, 4) << "\n  FPGA greener in "
            << units::format_significant(100.0 * mc.fpga_win_fraction, 4)
            << " % of sampled configurations\n";
}

void bm_table1_tornado(benchmark::State& state) {
  const auto testcase = device::domain_testcase(device::Domain::dnn);
  const auto schedule = core::paper_schedule(device::Domain::dnn);
  const auto ranges = scenario::table1_ranges();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario::tornado(core::paper_suite(), testcase, schedule, ranges));
  }
}
BENCHMARK(bm_table1_tornado);

void bm_table1_monte_carlo(benchmark::State& state) {
  const auto testcase = device::domain_testcase(device::Domain::dnn);
  const auto schedule = core::paper_schedule(device::Domain::dnn);
  const auto ranges = scenario::table1_ranges();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario::monte_carlo(core::paper_suite(), testcase, schedule,
                                                   ranges, static_cast<int>(state.range(0)),
                                                   42));
  }
}
BENCHMARK(bm_table1_monte_carlo)->Arg(16)->Arg(64);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
