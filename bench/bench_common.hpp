#ifndef GREENFPGA_BENCH_BENCH_COMMON_HPP
#define GREENFPGA_BENCH_BENCH_COMMON_HPP

/// \file bench_common.hpp
/// Shared scaffolding for the figure-reproduction bench binaries.
///
/// Every bench binary does two jobs:
///  1. print the rows/series of one paper table or figure (the
///     reproduction), also emitting CSV under results/ for re-plotting;
///  2. register google-benchmark timings for the model evaluations behind
///     that figure, so the cost of the analytical models is tracked.
///
/// `GF_BENCH_MAIN(print_function)` wires both into a main().
///
/// Google Benchmark is optional: when the build has it (CMake defines
/// GREENFPGA_HAVE_BENCHMARK), the real library runs; otherwise the shim
/// below satisfies the registration API as no-ops, so the reproduction
/// print and its CSV emission under results/ still run on machines
/// without libbenchmark-dev instead of the whole binary being skipped at
/// configure time.  (`benchmark::DoNotOptimize` stays a real optimisation
/// barrier in both modes -- the reproduction paths rely on it.)

#if defined(GREENFPGA_HAVE_BENCHMARK)
#include <benchmark/benchmark.h>
#else

#include <cstdint>
#include <map>
#include <string>

/// Minimal stand-in for the google-benchmark registration surface the
/// bench/ drivers use.  Registered functions are never executed (a State
/// iterates zero times if one ever were), and RunSpecifiedBenchmarks()
/// prints a one-line notice so a log reader knows why no timings follow.
namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

class State {
 public:
  /// What `for (auto _ : state)` binds: the user-provided destructor
  /// keeps -Wunused-but-set-variable quiet on the customary unused `_`
  /// (the real library lives in a system include dir, which silences the
  /// warning for it; a shim in the project tree needs the dtor).
  struct Value {
    ~Value() {}
  };
  struct iterator {
    bool operator!=(const iterator&) const { return false; }
    iterator& operator++() { return *this; }
    Value operator*() const { return Value(); }
  };
  [[nodiscard]] iterator begin() { return {}; }
  [[nodiscard]] iterator end() { return {}; }
  [[nodiscard]] std::int64_t range(std::size_t = 0) const { return 0; }
  [[nodiscard]] std::int64_t iterations() const { return 0; }
  void SetItemsProcessed(std::int64_t) {}
  void SetBytesProcessed(std::int64_t) {}
  void SkipWithError(const char*) {}
  std::map<std::string, double> counters;
};

template <class T>
inline void DoNotOptimize(T const& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  static volatile const void* sink;
  sink = &value;
#endif
}

/// The fluent no-op returned by the BENCHMARK() macro.
class Registration {
 public:
  Registration* Arg(std::int64_t) { return this; }
  Registration* Args(std::initializer_list<std::int64_t>) { return this; }
  Registration* DenseRange(std::int64_t, std::int64_t, std::int64_t = 1) { return this; }
  Registration* Range(std::int64_t, std::int64_t) { return this; }
  Registration* RangeMultiplier(int) { return this; }
  Registration* Unit(TimeUnit) { return this; }
  Registration* UseRealTime() { return this; }
  Registration* Threads(int) { return this; }
  Registration* Iterations(std::int64_t) { return this; }
};

/// Registering keeps a pointer to the function, which also marks it used
/// (the drivers define benchmark bodies in anonymous namespaces, and
/// -Wunused-function would otherwise fire in shim builds).
inline Registration* RegisterShimBenchmark(void (*fn)(State&)) {
  static Registration registration;
  DoNotOptimize(fn);
  return &registration;
}

inline void Initialize(int*, char**) {}
inline bool ReportUnrecognizedArguments(int, char**) { return false; }
inline void RunSpecifiedBenchmarks();
inline void Shutdown() {}

}  // namespace benchmark

#define GF_BENCH_CONCAT_IMPL(a, b) a##b
#define GF_BENCH_CONCAT(a, b) GF_BENCH_CONCAT_IMPL(a, b)
#define BENCHMARK(fn)                                               \
  static ::benchmark::Registration* GF_BENCH_CONCAT(gf_bench_reg_, \
                                                    __LINE__) =     \
      ::benchmark::RegisterShimBenchmark(fn)

#endif  // GREENFPGA_HAVE_BENCHMARK

#include <iostream>

#include "core/paper_config.hpp"

#if !defined(GREENFPGA_HAVE_BENCHMARK)
inline void benchmark::RunSpecifiedBenchmarks() {
  std::cout << "(google-benchmark not available in this build; reproduction "
               "output above, timing loops skipped)\n";
}
#endif

namespace greenfpga::bench {

/// Paper sweep defaults shared by the experiment benches.
inline const core::SweepDefaults kDefaults = core::paper_sweep_defaults();

/// Prints a figure banner so bench output reads like the paper's layout.
inline void banner(const std::string& figure, const std::string& caption) {
  std::cout << "\n=== " << figure << ": " << caption << " ===\n\n";
}

}  // namespace greenfpga::bench

/// Expands to a main() that prints the reproduction then runs benchmarks.
#define GF_BENCH_MAIN(print_function)                            \
  int main(int argc, char** argv) {                              \
    try {                                                        \
      print_function();                                          \
    } catch (const std::exception& error) {                      \
      std::cerr << "reproduction failed: " << error.what()       \
                << "\n";                                         \
      return 1;                                                  \
    }                                                            \
    ::benchmark::Initialize(&argc, argv);                        \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {  \
      return 1;                                                  \
    }                                                            \
    ::benchmark::RunSpecifiedBenchmarks();                       \
    ::benchmark::Shutdown();                                     \
    return 0;                                                    \
  }

#endif  // GREENFPGA_BENCH_BENCH_COMMON_HPP
