#ifndef GREENFPGA_BENCH_BENCH_COMMON_HPP
#define GREENFPGA_BENCH_BENCH_COMMON_HPP

/// \file bench_common.hpp
/// Shared scaffolding for the figure-reproduction bench binaries.
///
/// Every bench binary does two jobs:
///  1. print the rows/series of one paper table or figure (the
///     reproduction), also emitting CSV under results/ for re-plotting;
///  2. register google-benchmark timings for the model evaluations behind
///     that figure, so the cost of the analytical models is tracked.
///
/// `GF_BENCH_MAIN(print_function)` wires both into a main().

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/paper_config.hpp"

namespace greenfpga::bench {

/// Paper sweep defaults shared by the experiment benches.
inline const core::SweepDefaults kDefaults = core::paper_sweep_defaults();

/// Prints a figure banner so bench output reads like the paper's layout.
inline void banner(const std::string& figure, const std::string& caption) {
  std::cout << "\n=== " << figure << ": " << caption << " ===\n\n";
}

}  // namespace greenfpga::bench

/// Expands to a main() that prints the reproduction then runs benchmarks.
#define GF_BENCH_MAIN(print_function)                            \
  int main(int argc, char** argv) {                              \
    try {                                                        \
      print_function();                                          \
    } catch (const std::exception& error) {                      \
      std::cerr << "reproduction failed: " << error.what()       \
                << "\n";                                         \
      return 1;                                                  \
    }                                                            \
    ::benchmark::Initialize(&argc, argv);                        \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {  \
      return 1;                                                  \
    }                                                            \
    ::benchmark::RunSpecifiedBenchmarks();                       \
    ::benchmark::Shutdown();                                     \
    return 0;                                                    \
  }

#endif  // GREENFPGA_BENCH_BENCH_COMMON_HPP
