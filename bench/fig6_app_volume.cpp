/// Reproduces Fig. 6: variation of CFP with application volume N_vol
/// (1e3..1e7, log axis), with N_app = 5 and T_i = 2 years held constant.
///
/// Paper shape: Crypto -- FPGA greener at every volume; ImgProc and DNN --
/// F2A crossovers at high volume (paper: ~300 K and ~2 M; our jointly
/// consistent calibration places them at ~180 K and ~850 K -- same
/// ordering and magnitude gap, see EXPERIMENTS.md).

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "report/ascii_chart.hpp"
#include "report/figure_writer.hpp"
#include "scenario/sweep.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

scenario::SweepSeries domain_series(device::Domain domain) {
  const scenario::SweepEngine engine(core::LifecycleModel(core::paper_suite()),
                                     device::domain_testcase(domain));
  const std::vector<double> volumes = scenario::logspace(1e3, 1e7, 25);
  return engine.sweep_volume(volumes, bench::kDefaults.app_count,
                             bench::kDefaults.app_lifetime);
}

void print_reproduction() {
  bench::banner("Fig. 6", "CFP vs N_vol (N_app = 5, T_i = 2 y constant; log axis)");
  for (const device::Domain domain : device::all_domains()) {
    const scenario::SweepSeries series = domain_series(domain);
    std::cout << "-- " << to_string(domain) << " --\n"
              << report::sweep_table(series)
              << "crossovers: " << report::crossover_summary(series) << "\n";
    const std::vector<report::ChartSeries> chart{
        {"ASIC", 'a', series.asic_totals_kg()},
        {"FPGA", 'f', series.fpga_totals_kg()},
    };
    std::cout << report::render_line_chart(series.x, chart, 72, 20, /*log_x=*/true) << "\n";
    const std::string path = report::write_results_csv(
        "fig6_" + to_string(domain) + ".csv", report::sweep_csv(series));
    std::cout << "csv: " << path << "\n\n";
  }
  std::cout << "paper: Crypto always FPGA; F2A at ~300 K (ImgProc) and ~2 M (DNN)\n";
}

void bm_fig6_sweep(benchmark::State& state) {
  const auto domain = static_cast<device::Domain>(state.range(0));
  const scenario::SweepEngine engine(core::LifecycleModel(core::paper_suite()),
                                     device::domain_testcase(domain));
  const std::vector<double> volumes = scenario::logspace(1e3, 1e7, 25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.sweep_volume(volumes, bench::kDefaults.app_count,
                                                 bench::kDefaults.app_lifetime));
  }
}
BENCHMARK(bm_fig6_sweep)
    ->Arg(static_cast<int>(device::Domain::dnn))
    ->Arg(static_cast<int>(device::Domain::imgproc))
    ->Arg(static_cast<int>(device::Domain::crypto));

}  // namespace

GF_BENCH_MAIN(print_reproduction)
