/// Extension bench: chiplet-built FPGAs (the ECO-CHIP tradeoff inside
/// GreenFPGA).
///
/// The paper's predecessor (ECO-CHIP, HPCA'24) showed that splitting large
/// dies into chiplets cuts embodied carbon through yield, at the price of
/// interposer silicon and bonding.  Big FPGAs are exactly such dies -- and
/// real flagships (Stratix 10 / Agilex) ship as chiplets.  This bench
/// splits the paper's 600 mm^2 DNN iso-FPGA into 1-8 chiplets across the
/// advanced package styles and shows the effect on per-chip embodied CFP
/// and on the Fig. 4 crossover.

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "device/platform_registry.hpp"
#include "io/table.hpp"
#include "scenario/engine.hpp"
#include "scenario/sweep.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

pkg::PackageParameters style(pkg::PackageType type) {
  pkg::PackageParameters p;
  p.type = type;
  return p;
}

void print_split_table() {
  const core::LifecycleModel model(core::paper_suite());
  const device::ChipSpec fpga = device::domain_testcase(device::Domain::dnn).fpga;
  const double monolithic = model.per_chip_embodied(fpga).total().canonical();

  io::TextTable table;
  table.set_headers({"construction", "dies", "die yield", "silicon [kg]", "package [kg]",
                     "total [kg]", "vs monolithic"});
  table.add_row({"monolithic", "1",
                 units::format_significant(model.fab_model().yield(fpga.node, fpga.die_area), 3),
                 units::format_significant(
                     model.per_chip_embodied(fpga).manufacturing.canonical(), 4),
                 units::format_significant(model.per_chip_embodied(fpga).packaging.canonical(), 4),
                 units::format_significant(monolithic, 4), "1"});
  for (const pkg::PackageType type :
       {pkg::PackageType::silicon_interposer, pkg::PackageType::emib}) {
    for (const int dies : {2, 4, 8}) {
      const core::CfpBreakdown split =
          model.per_chip_embodied_chiplet(fpga, dies, style(type));
      const double per_die_yield = model.fab_model().yield(
          fpga.node, fpga.die_area / static_cast<double>(dies));
      table.add_row({to_string(type), std::to_string(dies),
                     units::format_significant(per_die_yield, 3),
                     units::format_significant(split.manufacturing.canonical(), 4),
                     units::format_significant(split.packaging.canonical(), 4),
                     units::format_significant(split.total().canonical(), 4),
                     units::format_significant(split.total().canonical() / monolithic, 3)});
    }
  }
  // The sweet spot ships as the registry's first-class "chiplet_fpga"
  // platform: per_chip_embodied dispatches on its chiplet_count.
  const device::ChipSpec registry_chiplet =
      device::PlatformRegistry::builtins().resolve("chiplet_fpga", device::Domain::dnn);
  const core::CfpBreakdown registry_split = model.per_chip_embodied(registry_chiplet);
  table.add_row({"registry chiplet_fpga (" + registry_chiplet.chiplet_package + ")",
                 std::to_string(registry_chiplet.chiplet_count),
                 units::format_significant(
                     model.fab_model().yield(
                         registry_chiplet.node,
                         registry_chiplet.die_area /
                             static_cast<double>(registry_chiplet.chiplet_count)),
                     3),
                 units::format_significant(registry_split.manufacturing.canonical(), 4),
                 units::format_significant(registry_split.packaging.canonical(), 4),
                 units::format_significant(registry_split.total().canonical(), 4),
                 units::format_significant(registry_split.total().canonical() / monolithic,
                                           3)});
  std::cout << "600 mm^2 DNN iso-FPGA, chiplet constructions (per chip):\n"
            << table.render() << "\n";
}

void print_crossover_effect() {
  // The schedule-level effect through the unified engine: sweep the app
  // count for asic-vs-fpga and asic-vs-chiplet_fpga (the registry
  // platform -- no hand-adjusted series) and compare the A2F crossover.
  const auto a2f_for = [](const std::string& platform) {
    scenario::ScenarioSpec spec =
        scenario::ScenarioSpec::make(scenario::ScenarioKind::sweep, device::Domain::dnn);
    spec.name = "asic vs " + platform + " app sweep";
    spec.axes = {
        scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 12, 12)};
    spec.platforms = {scenario::PlatformRef{.name = "asic", .chip = std::nullopt},
                      scenario::PlatformRef{.name = platform, .chip = std::nullopt}};
    const scenario::Engine engine;
    return first_crossover(engine.run(spec).sweep_series().crossovers(),
                           scenario::CrossoverKind::a2f);
  };
  const auto base_a2f = a2f_for("fpga");
  const auto chiplet_a2f = a2f_for("chiplet_fpga");

  io::TextTable table;
  table.set_headers({"FPGA construction", "DNN A2F crossover [apps]"});
  table.add_row({"monolithic (registry fpga)",
                 base_a2f ? units::format_significant(*base_a2f, 4) : std::string("none")});
  table.add_row({"registry chiplet_fpga",
                 chiplet_a2f ? units::format_significant(*chiplet_a2f, 4)
                             : std::string("none")});
  std::cout << "crossover effect of chiplet construction:\n" << table.render();
}

void print_reproduction() {
  bench::banner("Extension", "chiplet-built FPGAs: yield savings vs package overhead");
  print_split_table();
  print_crossover_effect();
  std::cout << "\nreading: splitting the big FPGA die recovers yield losses and pulls\n"
               "the A2F crossover in -- reconfigurability and chiplets compound\n";
}

void bm_chiplet_embodied(benchmark::State& state) {
  const core::LifecycleModel model(core::paper_suite());
  const device::ChipSpec fpga = device::domain_testcase(device::Domain::dnn).fpga;
  const pkg::PackageParameters p = style(pkg::PackageType::silicon_interposer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.per_chip_embodied_chiplet(fpga, static_cast<int>(state.range(0)), p));
  }
}
BENCHMARK(bm_chiplet_embodied)->Arg(2)->Arg(4)->Arg(8);

void bm_registry_chiplet_embodied(benchmark::State& state) {
  const core::LifecycleModel model(core::paper_suite());
  const device::ChipSpec chiplet =
      device::PlatformRegistry::builtins().resolve("chiplet_fpga", device::Domain::dnn);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.per_chip_embodied(chiplet));
  }
}
BENCHMARK(bm_registry_chiplet_embodied);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
