/// \file serve_throughput.cpp
/// Load driver for the `greenfpga serve` daemon: keep-alive HTTP clients
/// hammering a mixed spec workload against an in-process server,
/// reporting requests/second, the cache hit rate, and per-request latency
/// percentiles (p50/p95/p99).
///
/// The serving path's contract is that a hot cache turns repeated
/// questions into hash-lookup-plus-serialization, so the interesting
/// numbers are (a) cold throughput (every request evaluates), (b) hot
/// throughput (every request hits), and (c) the mixed regime operators
/// actually see.  The workload reuses a handful of distinct specs across
/// many requests, so the steady-state hit rate is high by construction --
/// as in the data-center access pattern the daemon exists for.  Responses
/// stay byte-identical to `greenfpga run --format json` throughout
/// (pinned by tests/serve_test.cpp; this driver only measures).
///
/// Each phase's latency samples also flow through the src/bench/ harness
/// into a canonical BENCH_serve.json under results_dir(), so the daemon's
/// latency percentiles are tracked per-PR like every other bench group
/// (the seed of the ROADMAP item-2 p50/p99-under-load trajectory).

#include <atomic>
#include <chrono>
#include <iomanip>
#include <thread>
#include <vector>

#include "bench/artifact.hpp"
#include "bench/harness.hpp"
#include "bench_common.hpp"
#include "report/figure_writer.hpp"
#include "scenario/engine.hpp"
#include "serve/handlers.hpp"
#include "serve/http.hpp"
#include "serve/server.hpp"
#include "units/format.hpp"

namespace {

using namespace greenfpga;

/// A few distinct questions, re-asked many times (the cache-friendly
/// operator pattern): cheap compares across domains plus a breakeven and
/// a small sweep.
std::vector<std::string> request_bodies() {
  std::vector<std::string> bodies;
  for (const device::Domain domain : device::all_domains()) {
    scenario::ScenarioSpec compare =
        scenario::ScenarioSpec::make(scenario::ScenarioKind::compare, domain);
    bodies.push_back(spec_to_json(compare).dump());
  }
  scenario::ScenarioSpec breakeven = scenario::ScenarioSpec::make(
      scenario::ScenarioKind::breakeven, device::Domain::dnn);
  bodies.push_back(spec_to_json(breakeven).dump());
  scenario::ScenarioSpec sweep =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::sweep, device::Domain::dnn);
  sweep.axes = {
      scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 8, 8)};
  bodies.push_back(spec_to_json(sweep).dump());
  return bodies;
}

struct LoadReport {
  int clients = 0;
  int requests = 0;
  double seconds = 0.0;
  /// Per-request wall-clock latencies [s], all clients merged.
  std::vector<double> latencies;
  scenario::ResultCacheStats cache;
};

/// `clients` keep-alive connections, `requests_per_client` POSTs each,
/// round-robin over the body mix.  Every request's round-trip latency is
/// recorded (per-thread buffers, merged after join).
LoadReport hammer(serve::Server& server, serve::ServeContext& context, int clients,
                  int requests_per_client) {
  const std::vector<std::string> bodies = request_bodies();
  std::atomic<int> failures{0};
  std::vector<std::vector<double>> per_client_latencies(
      static_cast<std::size_t>(clients));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      std::vector<double>& latencies = per_client_latencies[static_cast<std::size_t>(c)];
      latencies.reserve(static_cast<std::size_t>(requests_per_client));
      try {
        serve::HttpClient client("127.0.0.1", server.port());
        for (int r = 0; r < requests_per_client; ++r) {
          const auto sent = std::chrono::steady_clock::now();
          const serve::HttpResponse response = client.request(
              "POST", "/v1/run", bodies[static_cast<std::size_t>(c + r) % bodies.size()]);
          latencies.push_back(
              std::chrono::duration<double>(std::chrono::steady_clock::now() - sent)
                  .count());
          if (response.status != 200) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } catch (const std::exception&) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
  LoadReport report;
  report.clients = clients;
  report.requests = clients * requests_per_client - failures.load();
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  for (const std::vector<double>& latencies : per_client_latencies) {
    report.latencies.insert(report.latencies.end(), latencies.begin(), latencies.end());
  }
  report.cache = context.cache().stats();
  if (failures.load() != 0) {
    throw std::runtime_error("serve_throughput: " + std::to_string(failures.load()) +
                             " request(s) failed");
  }
  return report;
}

std::string format_latency(double seconds) {
  return units::format_significant(seconds * 1e3, 3) + " ms";
}

void print_report(const char* phase, const LoadReport& report,
                  const scenario::ResultCacheStats& before) {
  const double hits = static_cast<double>(report.cache.hits - before.hits);
  const double total = hits + static_cast<double>(report.cache.misses - before.misses);
  const bench::SampleStats latency = bench::compute_stats(report.latencies);
  std::cout << "  " << std::left << std::setw(18) << phase << std::right
            << std::setw(4) << report.clients << " clients  " << std::setw(6)
            << report.requests << " reqs  " << std::setw(8) << std::fixed
            << std::setprecision(1) << (report.requests / report.seconds)
            << " req/s  hit rate " << std::setprecision(1)
            << (total > 0 ? 100.0 * hits / total : 0.0) << " %  latency p50 "
            << format_latency(latency.median) << " / p95 "
            << format_latency(latency.p95) << " / p99 "
            << format_latency(latency.p99) << "\n";
}

void print_serve_throughput() {
  bench::banner("serve_throughput",
                "keep-alive clients hammering POST /v1/run through the result cache");
  serve::ServeContext context(scenario::EngineOptions{}, /*cache_capacity=*/256);
  serve::Server server(serve::make_router(context), serve::ServerOptions{});
  server.start();

  // Cold pass: first sight of every spec (one miss each), then mostly
  // hits; hot passes: pure cache service.
  scenario::ResultCacheStats before = context.cache().stats();
  const LoadReport cold = hammer(server, context, 2, 50);
  print_report("cold+warmup", cold, before);
  before = context.cache().stats();
  const LoadReport hot4 = hammer(server, context, 4, 100);
  print_report("hot x4 clients", hot4, before);
  before = context.cache().stats();
  const LoadReport hot8 = hammer(server, context, 8, 100);
  print_report("hot x8 clients", hot8, before);
  // The event-loop acceptance load: well past the old thread-per-
  // connection comfort zone, still inside max_connections (64).
  before = context.cache().stats();
  const LoadReport hot32 = hammer(server, context, 32, 50);
  print_report("hot x32 clients", hot32, before);

  const scenario::ResultCacheStats stats = context.cache().stats();
  std::cout << "  lifetime: " << stats.hits << " hits / " << stats.misses
            << " misses / " << stats.evictions << " evictions; "
            << server.requests_served() << " requests served\n";
  server.stop();

  // Per-request latencies through the harness: one case per load phase,
  // emitted as the canonical serve bench artifact.
  bench::BenchArtifact artifact;
  artifact.group = "serve";
  artifact.environment = bench::capture_environment();
  artifact.cases.push_back(bench::result_from_samples(
      "serve", "cold_2x50", /*warmup=*/0, /*iterations=*/1, cold.latencies));
  artifact.cases.push_back(bench::result_from_samples(
      "serve", "hot_4x100", /*warmup=*/0, /*iterations=*/1, hot4.latencies));
  artifact.cases.push_back(bench::result_from_samples(
      "serve", "hot_8x100", /*warmup=*/0, /*iterations=*/1, hot8.latencies));
  artifact.cases.push_back(bench::result_from_samples(
      "serve", "hot_32x50", /*warmup=*/0, /*iterations=*/1, hot32.latencies));
  const std::string path = report::results_dir() + "/BENCH_serve.json";
  bench::write_artifact_file(path, artifact);
  std::cout << "  wrote " << path << "\n";
}

/// Steady-state latency of one cached POST /v1/run round-trip.
void BM_ServeCachedRun(benchmark::State& state) {
  serve::ServeContext context(scenario::EngineOptions{}, 64);
  serve::Server server(serve::make_router(context), serve::ServerOptions{});
  server.start();
  serve::HttpClient client("127.0.0.1", server.port());
  const std::string body = spec_to_json(scenario::ScenarioSpec::make(
                               scenario::ScenarioKind::compare, device::Domain::dnn))
                               .dump();
  for (auto _ : state) {
    const serve::HttpResponse response = client.request("POST", "/v1/run", body);
    if (response.status != 200) {
      state.SkipWithError("non-200 response");
      break;
    }
    benchmark::DoNotOptimize(response.body.data());
  }
  state.SetItemsProcessed(state.iterations());
  server.stop();
}
BENCHMARK(BM_ServeCachedRun)->Unit(benchmark::kMicrosecond);

}  // namespace

GF_BENCH_MAIN(print_serve_throughput)
