/// Ablation A2 (DESIGN.md): application-development accounting.  Eq. (2)
/// literally multiplies C_app-dev by the application lifetime T_i; Fig. 10
/// treats app-dev as a one-time overhead.  This bench quantifies how much
/// the choice matters at paper scales (answer: very little -- app-dev is
/// watt-scale engineering compute against megaton fleets), justifying the
/// one_time default.

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "io/table.hpp"
#include "scenario/sweep.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

core::ModelSuite suite_with(core::AppDevAccounting accounting) {
  core::ModelSuite suite = core::paper_suite();
  suite.appdev.accounting = accounting;
  return suite;
}

void print_reproduction() {
  bench::banner("Ablation A2", "app-dev accounting: one-time vs literal per-year Eq. (2)");

  io::TextTable table;
  table.set_headers({"domain", "T_i [y]", "FPGA app-dev (one-time)",
                     "FPGA app-dev (per-year)", "total ratio shift"});
  for (const device::Domain domain : device::all_domains()) {
    for (const double lifetime_years : {0.5, 2.0, 2.5}) {
      const auto schedule = core::paper_schedule(domain, bench::kDefaults.app_count,
                                                 lifetime_years * years,
                                                 bench::kDefaults.app_volume);
      const auto testcase = device::domain_testcase(domain);
      const auto one_time =
          core::compare(core::LifecycleModel(suite_with(core::AppDevAccounting::one_time)),
                        testcase, schedule);
      const auto per_year =
          core::compare(core::LifecycleModel(suite_with(core::AppDevAccounting::per_year)),
                        testcase, schedule);
      table.add_row(
          {to_string(domain), units::format_significant(lifetime_years, 3),
           units::format_carbon(one_time.fpga.total.app_dev),
           units::format_carbon(per_year.fpga.total.app_dev),
           units::format_significant(per_year.ratio() - one_time.ratio(), 3)});
    }
  }
  std::cout << table.render()
            << "\nconclusion: the accounting choice moves the FPGA:ASIC ratio by well\n"
               "under 1 % at paper scales; one_time is the default (DESIGN.md §1.1)\n";
}

void bm_accounting(benchmark::State& state) {
  const auto accounting = static_cast<core::AppDevAccounting>(state.range(0));
  const core::LifecycleModel model(suite_with(accounting));
  const auto testcase = device::domain_testcase(device::Domain::dnn);
  const auto schedule = core::paper_schedule(device::Domain::dnn);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate_fpga(testcase.fpga, schedule));
  }
}
BENCHMARK(bm_accounting)
    ->Arg(static_cast<int>(core::AppDevAccounting::one_time))
    ->Arg(static_cast<int>(core::AppDevAccounting::per_year));

}  // namespace

GF_BENCH_MAIN(print_reproduction)
