/// Reproduces Fig. 10: CFP components of the two industry FPGAs (Table 3)
/// when each runs for six years with three applications (reprogrammed
/// three times) at 1 M volume, under the datacenter parameter suite.
///
/// Paper shape: operational CFP dominates, then manufacturing, then design
/// (~15 % of embodied); app-dev is minimal even after three
/// reconfigurations; EOL is a very small contributor.

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "report/ascii_chart.hpp"
#include "report/figure_writer.hpp"
#include "units/format.hpp"
#include "units/units.hpp"
#include "workload/application.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

workload::Schedule fig10_schedule() {
  workload::Application app;
  app.name = "industry-app";
  app.lifetime = 2.0 * years;  // 3 applications x 2 years = 6 years
  app.volume = 1e6;
  return workload::homogeneous_schedule(3, app);
}

void print_reproduction() {
  bench::banner("Fig. 10", "IndustryFPGA1/2 components: 6 years, 3 apps, 1 M volume");
  const core::LifecycleModel model(core::industry_suite());
  const workload::Schedule schedule = fig10_schedule();

  std::vector<std::pair<std::string, core::CfpBreakdown>> rows;
  for (const device::ChipSpec& fpga : {device::industry_fpga1(), device::industry_fpga2()}) {
    const core::PlatformCfp result = model.evaluate_fpga(fpga, schedule);
    rows.emplace_back(fpga.name, result.total);
  }
  std::cout << report::breakdown_table(rows);

  for (const auto& [name, breakdown] : rows) {
    std::cout << "\n" << name << ":\n";
    const std::vector<report::Bar> bars{
        {"design", breakdown.design.in(t_co2e)},
        {"manufacturing", breakdown.manufacturing.in(t_co2e)},
        {"packaging", breakdown.packaging.in(t_co2e)},
        {"end-of-life", breakdown.eol.in(t_co2e)},
        {"operational", breakdown.operational.in(t_co2e)},
        {"app-dev", breakdown.app_dev.in(t_co2e)},
    };
    std::cout << report::render_bars(bars);
    std::cout << "design share of embodied: "
              << units::format_significant(
                     100.0 * breakdown.design.canonical() / breakdown.embodied().canonical(),
                     3)
              << " %\n";
  }
  std::cout << "\npaper: operational dominant; design ~15 % of embodied; app-dev minimal\n";
}

void bm_fig10_industry_fpga(benchmark::State& state) {
  const core::LifecycleModel model(core::industry_suite());
  const workload::Schedule schedule = fig10_schedule();
  const device::ChipSpec fpga = device::industry_fpga1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate_fpga(fpga, schedule));
  }
}
BENCHMARK(bm_fig10_industry_fpga);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
