/// Extension bench: per-area (ACT rule) vs whole-wafer manufacturing
/// accounting.
///
/// ACT-style models charge manufacturing carbon per mm^2 of die; real fabs
/// process whole wafers, so dies that tile a 300 mm wafer poorly (large,
/// reticle-scale FPGAs) carry extra edge-loss carbon.  This bench
/// quantifies the per-die overhead across the repo's devices and shows the
/// effect on the paper's DNN crossover.

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "io/table.hpp"
#include "scenario/sweep.hpp"
#include "tech/yield.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

void print_overheads() {
  const act::FabModel fab{core::paper_suite().fab};
  io::TextTable table;
  table.set_headers({"die", "area", "dies/wafer", "per-area CFP", "per-wafer CFP",
                     "edge overhead"});
  const std::vector<device::ChipSpec> chips{
      device::domain_testcase(device::Domain::imgproc).asic,
      device::domain_testcase(device::Domain::dnn).asic,
      device::industry_asic1(),
      device::industry_fpga1(),
      device::industry_fpga2(),
      device::domain_testcase(device::Domain::dnn).fpga,
  };
  for (const device::ChipSpec& chip : chips) {
    const auto per_area = fab.manufacture_die(chip.node, chip.die_area).total();
    const auto per_wafer =
        fab.manufacture_die_wafer_based(chip.node, chip.die_area).total();
    std::string overhead = "+";
    overhead += units::format_significant(
        100.0 * (per_wafer.canonical() / per_area.canonical() - 1.0), 3);
    overhead += " %";
    table.add_row({chip.name, units::format_area(chip.die_area),
                   std::to_string(tech::dies_per_wafer(chip.die_area)),
                   units::format_carbon(per_area), units::format_carbon(per_wafer),
                   std::move(overhead)});
  }
  std::cout << "per-good-die manufacturing CFP under both accounting rules:\n"
            << table.render() << "\n";
}

void print_reproduction() {
  bench::banner("Extension", "wafer-based vs per-area manufacturing accounting");
  print_overheads();
  std::cout << "reading: edge losses add a few percent for small dies but >10 % for\n"
               "reticle-scale FPGAs -- the per-area ACT rule slightly flatters exactly\n"
               "the dies the FPGA sustainability argument depends on\n";
}

void bm_per_area(benchmark::State& state) {
  const act::FabModel fab{core::paper_suite().fab};
  const device::ChipSpec chip = device::industry_fpga2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fab.manufacture_die(chip.node, chip.die_area));
  }
}
BENCHMARK(bm_per_area);

void bm_per_wafer(benchmark::State& state) {
  const act::FabModel fab{core::paper_suite().fab};
  const device::ChipSpec chip = device::industry_fpga2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fab.manufacture_die_wafer_based(chip.node, chip.die_area));
  }
}
BENCHMARK(bm_per_wafer);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
