/// \file mc_throughput.cpp
/// Monte-Carlo sampler throughput baseline: 2048 distribution-sampled
/// lifecycle evaluations (x 2 platforms) at 1 / 2 / 4 / hardware threads.
///
/// This is the perf baseline for the uncertainty-quantification path:
/// every sample re-parameterises the model suite, so unlike the memoised
/// grid path each sample pays a full fab/package/EOL evaluation -- the
/// sampler is embarrassingly parallel and should scale near-linearly.
/// Counter-based per-sample RNG streams keep the results bit-identical
/// across thread counts (pinned by tests/engine_test.cpp), so scheduling
/// changes here can never move the numbers.

#include <chrono>
#include <iomanip>

#include "bench_common.hpp"
#include "scenario/engine.hpp"
#include "units/format.hpp"

namespace {

using namespace greenfpga;

scenario::ScenarioSpec mc_spec(int samples) {
  scenario::ScenarioSpec spec = scenario::ScenarioSpec::make(
      scenario::ScenarioKind::montecarlo, device::Domain::dnn);
  spec.name = "mc-throughput";
  spec.montecarlo.samples = samples;
  spec.montecarlo.seed = 42;
  return spec;
}

double run_once_seconds(const scenario::ScenarioSpec& spec, int threads) {
  const scenario::Engine engine(scenario::EngineOptions{.threads = threads});
  const auto start = std::chrono::steady_clock::now();
  const scenario::ScenarioResult result = engine.run(spec);
  const auto stop = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(result.uncertainty->platform_total.data());
  return std::chrono::duration<double>(stop - start).count();
}

void print_speedups() {
  bench::banner("Monte-Carlo throughput",
                "2048 Table 1 samples x 2 platforms, wall-clock speedup vs 1 thread");
  const scenario::ScenarioSpec spec = mc_spec(2048);
  const double base = run_once_seconds(spec, 1);
  std::cout << "  threads   seconds   samples/s   speedup\n";
  for (const int threads : {1, 2, 4, scenario::Engine::default_threads()}) {
    const double seconds = threads == 1 ? base : run_once_seconds(spec, threads);
    std::cout << "  " << std::setw(7) << threads << "   " << std::setw(7)
              << units::format_significant(seconds, 4) << "   " << std::setw(9)
              << units::format_significant(2048.0 / seconds, 4) << "   "
              << units::format_significant(base / seconds, 4) << "x\n";
  }
  std::cout << "\n";
}

void BM_MonteCarlo(benchmark::State& state) {
  const scenario::ScenarioSpec spec = mc_spec(512);
  const scenario::Engine engine(
      scenario::EngineOptions{.threads = static_cast<int>(state.range(0))});
  for (auto _ : state) {
    const scenario::ScenarioResult result = engine.run(spec);
    benchmark::DoNotOptimize(result.uncertainty->platform_total.data());
  }
  state.counters["samples"] = 512.0;
}
BENCHMARK(BM_MonteCarlo)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

GF_BENCH_MAIN(print_speedups)
