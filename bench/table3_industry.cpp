/// Reproduces Table 3: the industry testcase specifications (Moffett
/// Antoum-, TPU-, Agilex 7- and Stratix 10-class devices), extended with
/// the model's derived per-chip quantities (yield, embodied CFP, package
/// mass) that feed Figs. 10-11.

#include "bench_common.hpp"
#include "device/catalog.hpp"
#include "io/table.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

void print_reproduction() {
  bench::banner("Table 3", "industry testcases [30, 34-36]");

  const std::vector<device::ChipSpec> chips{
      device::industry_asic1(),
      device::industry_asic2(),
      device::industry_fpga1(),
      device::industry_fpga2(),
  };

  io::TextTable table;
  table.set_headers({"testcase", "area", "power", "tech. node"});
  for (const device::ChipSpec& chip : chips) {
    table.add_row({chip.name, units::format_area(chip.die_area),
                   units::format_power(chip.peak_power), tech::to_string(chip.node)});
  }
  std::cout << table.render() << "\n";

  const core::LifecycleModel model(core::industry_suite());
  io::TextTable derived;
  derived.set_headers(
      {"testcase", "die yield", "mfg CFP/chip", "pkg CFP/chip", "pkg mass", "design CFP"});
  for (const device::ChipSpec& chip : chips) {
    const double yield = model.fab_model().yield(chip.node, chip.die_area);
    const core::CfpBreakdown embodied = model.per_chip_embodied(chip);
    const units::Mass mass = model.package_model().package_mass(chip.die_area);
    derived.add_row({chip.name, units::format_significant(yield, 3),
                     units::format_carbon(embodied.manufacturing),
                     units::format_carbon(embodied.packaging),
                     units::format_significant(mass.in(g), 3) + " g",
                     units::format_carbon(model.design_model().design_carbon(chip))});
  }
  std::cout << "derived per-chip quantities (datacenter suite):\n" << derived.render();
}

void bm_table3_per_chip(benchmark::State& state) {
  const core::LifecycleModel model(core::industry_suite());
  const device::ChipSpec chip = device::industry_asic2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.per_chip_embodied(chip));
  }
}
BENCHMARK(bm_table3_per_chip);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
