/// Extension bench: carbon-aware duty scheduling on time-varying grids.
///
/// The paper's operational model assumes a flat annual-average grid
/// intensity.  Reconfigurable, deferrable accelerators can instead run in
/// the greenest hours of the day.  This bench quantifies the effective
/// intensity a device sees at several duty cycles on duck-curve and
/// wind-heavy grids, and replays the paper's DNN Fig. 5 sweep with a
/// carbon-aware FPGA fleet: scheduling shifts the F2A crossover outward,
/// extending the FPGA-favourable region -- an operational lever the paper
/// leaves on the table.

#include "bench_common.hpp"
#include "act/grid_profile.hpp"
#include "device/catalog.hpp"
#include "io/table.hpp"
#include "scenario/sweep.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace {

using namespace greenfpga;
using namespace units::unit;

void print_effective_intensities() {
  const units::CarbonIntensity mean = act::grid_intensity(act::GridRegion::usa);
  io::TextTable table;
  table.set_headers({"grid shape", "duty", "uniform", "carbon-aware", "saving"});
  struct Shape {
    const char* name;
    act::DailyProfile profile;
  };
  for (const Shape& shape : {Shape{"solar duck", act::DailyProfile::solar_duck()},
                             Shape{"windy night", act::DailyProfile::windy_night()}}) {
    for (const double duty : {0.02, 0.25, 0.50}) {
      const auto uniform = act::scheduled_intensity(mean, shape.profile, duty,
                                                    act::DutySchedulingPolicy::uniform);
      const auto aware = act::scheduled_intensity(mean, shape.profile, duty,
                                                  act::DutySchedulingPolicy::carbon_aware);
      table.add_row(
          {shape.name, units::format_significant(duty, 3),
           units::format_carbon_intensity(uniform), units::format_carbon_intensity(aware),
           units::format_significant(100.0 * (1.0 - aware.canonical() / uniform.canonical()),
                                     3) +
               " %"});
    }
  }
  std::cout << "effective use-phase intensity by scheduling policy (US grid mean):\n"
            << table.render() << "\n";
}

void print_crossover_shift() {
  // DNN Fig. 5 sweep, FPGA fleet scheduled carbon-aware on a duck grid;
  // the ASIC (fixed-function pipeline, always-on window) stays uniform.
  io::TextTable table;
  table.set_headers({"FPGA scheduling", "DNN F2A lifetime [years]"});
  for (const bool aware : {false, true}) {
    core::ModelSuite suite = core::paper_suite();
    if (aware) {
      suite.operation.use_intensity = act::scheduled_intensity(
          suite.operation.use_intensity, act::DailyProfile::solar_duck(),
          suite.operation.duty_cycle, act::DutySchedulingPolicy::carbon_aware);
    }
    // Note: the suite's operation model applies to BOTH platforms inside
    // one engine; to keep the ASIC uniform we evaluate platforms with
    // separate engines and splice the series.
    const scenario::SweepEngine fpga_engine(core::LifecycleModel(suite),
                                            device::domain_testcase(device::Domain::dnn));
    const scenario::SweepEngine asic_engine(core::LifecycleModel(core::paper_suite()),
                                            device::domain_testcase(device::Domain::dnn));
    const std::vector<double> lifetimes = scenario::linspace(0.2, 4.0, 39);
    const auto fpga_series = fpga_engine.sweep_lifetime(lifetimes, 5, 1e6);
    const auto asic_series = asic_engine.sweep_lifetime(lifetimes, 5, 1e6);
    const auto crossovers = scenario::find_crossovers(
        fpga_series.x, asic_series.asic_totals_kg(), fpga_series.fpga_totals_kg());
    const auto f2a = first_crossover(crossovers, scenario::CrossoverKind::f2a);
    table.add_row({aware ? "carbon-aware (duck grid)" : "uniform (paper model)",
                   f2a ? units::format_significant(*f2a, 4) : std::string("> 4.0")});
  }
  std::cout << "Fig. 5 DNN F2A crossover with a carbon-aware FPGA fleet:\n"
            << table.render();
}

void print_reproduction() {
  bench::banner("Extension", "carbon-aware duty scheduling on time-varying grids");
  print_effective_intensities();
  print_crossover_shift();
  std::cout << "\nreading: at edge duty cycles (2 %) a duck-curve grid lets deferrable\n"
               "FPGA work run ~55 % cleaner, pushing the FPGA-favourable lifetime\n"
               "region well past the paper's 1.6-year crossover\n";
}

void bm_effective_multiplier(benchmark::State& state) {
  const act::DailyProfile duck = act::DailyProfile::solar_duck();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        duck.effective_multiplier(0.25, act::DutySchedulingPolicy::carbon_aware));
  }
}
BENCHMARK(bm_effective_multiplier);

}  // namespace

GF_BENCH_MAIN(print_reproduction)
