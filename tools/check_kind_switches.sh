#!/bin/sh
# Registry lint: per-kind behaviour lives in src/scenario/kinds/ modules,
# never in switch statements over ScenarioKind scattered through the
# generic layers (spec/engine/result_io/render/CLI).  Fails the build if
# a `case ScenarioKind::...` label appears in src/ outside the kinds/
# modules; add behaviour to the KindModule vtable instead.
#
# Usage: tools/check_kind_switches.sh [repo-root]
set -eu

root="${1:-$(dirname "$0")/..}"
cd "$root"

offenders=$(grep -rn "case .*ScenarioKind::" src \
  --include="*.cpp" --include="*.hpp" \
  | grep -v "^src/scenario/kinds/" || true)

if [ -n "$offenders" ]; then
  echo "error: switch over ScenarioKind outside src/scenario/kinds/:" >&2
  echo "$offenders" >&2
  echo "move the per-kind behaviour into that kind's KindModule hook" >&2
  exit 1
fi
echo "ok: no ScenarioKind switches outside src/scenario/kinds/"
