/// Tests for the pairwise heat-map engine (Fig. 8).

#include <gtest/gtest.h>

#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "scenario/heatmap.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {
namespace {

using namespace units::unit;
using device::Domain;

HeatmapEngine dnn_engine() {
  return HeatmapEngine(core::LifecycleModel(core::paper_suite()),
                       device::domain_testcase(Domain::dnn));
}

TEST(Heatmap, AppCountVsLifetimeShape) {
  const std::vector<int> apps{1, 3, 5, 7};
  const std::vector<double> lifetimes{0.5, 1.0, 2.0};
  const Heatmap map = dnn_engine().app_count_vs_lifetime(apps, lifetimes, 1e6);
  EXPECT_EQ(map.x_name, "N_app");
  EXPECT_EQ(map.y_name, "T_i [years]");
  ASSERT_EQ(map.ratio.size(), lifetimes.size());
  ASSERT_EQ(map.ratio[0].size(), apps.size());
  // Ratio falls along x (more apps help the FPGA) in every row.
  for (const auto& row : map.ratio) {
    for (std::size_t i = 1; i < row.size(); ++i) {
      EXPECT_LT(row[i], row[i - 1]);
    }
  }
}

TEST(Heatmap, RatioRisesWithLifetime) {
  const std::vector<int> apps{5};
  const std::vector<double> lifetimes{0.5, 1.0, 1.5, 2.0, 2.5};
  const Heatmap map = dnn_engine().app_count_vs_lifetime(apps, lifetimes, 1e6);
  for (std::size_t iy = 1; iy < lifetimes.size(); ++iy) {
    EXPECT_GT(map.ratio[iy][0], map.ratio[iy - 1][0])
        << "longer lifetimes favour the ASIC (Fig. 5 direction)";
  }
}

TEST(Heatmap, VolumeVsLifetimeShape) {
  const std::vector<double> volumes{1e4, 1e5, 1e6};
  const std::vector<double> lifetimes{1.0, 2.0};
  const Heatmap map = dnn_engine().volume_vs_lifetime(volumes, lifetimes, 5);
  ASSERT_EQ(map.ratio.size(), 2u);
  ASSERT_EQ(map.ratio[0].size(), 3u);
  EXPECT_EQ(map.x_name, "N_vol [units]");
}

TEST(Heatmap, VolumeVsAppCountShape) {
  const std::vector<double> volumes{1e4, 1e6};
  const std::vector<int> apps{1, 5};
  const Heatmap map = dnn_engine().volume_vs_app_count(volumes, apps, 2.0 * years);
  ASSERT_EQ(map.ratio.size(), 2u);
  // More applications help the FPGA at any volume.
  EXPECT_LT(map.ratio[1][0], map.ratio[0][0]);
  EXPECT_LT(map.ratio[1][1], map.ratio[0][1]);
}

TEST(Heatmap, UnityContourFoundWhereCurvesCross) {
  // Along N_app at T = 2 y, V = 1e6 the DNN testcase crosses near 5-6
  // (Fig. 4), so the contour must contain a point at that row.
  const std::vector<int> apps{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> lifetimes{2.0};
  const Heatmap map = dnn_engine().app_count_vs_lifetime(apps, lifetimes, 1e6);
  const auto contour = map.unity_contour();
  ASSERT_FALSE(contour.empty());
  EXPECT_GT(contour[0].x, 4.0);
  EXPECT_LT(contour[0].x, 7.0);
  EXPECT_DOUBLE_EQ(contour[0].y, 2.0);
}

TEST(Heatmap, ContourEmptyWhenOneSideDominates) {
  // Crypto: FPGA greener everywhere -> no unity contour.
  const HeatmapEngine engine(core::LifecycleModel(core::paper_suite()),
                             device::domain_testcase(Domain::crypto));
  const std::vector<int> apps{1, 3, 5};
  const std::vector<double> lifetimes{1.0, 2.0};
  const Heatmap map = engine.app_count_vs_lifetime(apps, lifetimes, 1e6);
  EXPECT_TRUE(map.unity_contour().empty());
  EXPECT_LT(map.max_ratio(), 1.0);
}

TEST(Heatmap, MinMaxRatioBracketGrid) {
  const std::vector<int> apps{1, 8};
  const std::vector<double> lifetimes{0.5, 2.5};
  const Heatmap map = dnn_engine().app_count_vs_lifetime(apps, lifetimes, 1e6);
  EXPECT_LE(map.min_ratio(), map.max_ratio());
  for (const auto& row : map.ratio) {
    for (const double r : row) {
      EXPECT_GE(r, map.min_ratio());
      EXPECT_LE(r, map.max_ratio());
    }
  }
}

TEST(Heatmap, EmptyAxesThrow) {
  const std::vector<int> apps{};
  const std::vector<double> lifetimes{1.0};
  EXPECT_THROW(dnn_engine().app_count_vs_lifetime(apps, lifetimes, 1e6),
               std::invalid_argument);
}

TEST(Heatmap, HighVolumeManyAppsStillFpga) {
  // Paper Fig. 8 reading: at ~9 M volume FPGAs can be sustainable if
  // N_app > 6... checked here as ratio decreasing in k at high volume.
  const std::vector<double> volumes{9e6};
  const std::vector<int> apps{2, 6, 10, 14};
  const Heatmap map = dnn_engine().volume_vs_app_count(volumes, apps, 2.0 * years);
  for (std::size_t iy = 1; iy < apps.size(); ++iy) {
    EXPECT_LT(map.ratio[iy][0], map.ratio[iy - 1][0]);
  }
}

}  // namespace
}  // namespace greenfpga::scenario
