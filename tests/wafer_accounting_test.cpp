/// Tests for the wafer-based manufacturing accounting extension.

#include <gtest/gtest.h>

#include "act/fab_model.hpp"
#include "tech/yield.hpp"
#include "units/units.hpp"

namespace greenfpga::act {
namespace {

using namespace units::unit;
using tech::ProcessNode;

TEST(WaferAccounting, ChargesMoreThanPerAreaRule) {
  // Edge losses mean the wafer rule always charges at least the per-area
  // rule for the same die.
  const FabModel model;
  for (const double area_mm2 : {25.0, 100.0, 400.0, 800.0}) {
    const auto per_area = model.manufacture_die(ProcessNode::n7, area_mm2 * mm2).total();
    const auto per_wafer =
        model.manufacture_die_wafer_based(ProcessNode::n7, area_mm2 * mm2).total();
    EXPECT_GT(per_wafer.canonical(), per_area.canonical()) << area_mm2 << " mm^2";
  }
}

TEST(WaferAccounting, ConvergesForSmallDies) {
  // Tiny dies tile the wafer almost perfectly: the two rules agree within
  // a few percent.
  const FabModel model;
  const units::Area area = 4.0 * mm2;
  const double per_area = model.manufacture_die(ProcessNode::n10, area).total().canonical();
  const double per_wafer =
      model.manufacture_die_wafer_based(ProcessNode::n10, area).total().canonical();
  EXPECT_NEAR(per_wafer / per_area, 1.0, 0.08);
}

TEST(WaferAccounting, EdgePenaltyGrowsWithDieSize) {
  const FabModel model;
  const auto overhead = [&](double area_mm2) {
    const double per_area =
        model.manufacture_die(ProcessNode::n7, area_mm2 * mm2).total().canonical();
    const double per_wafer =
        model.manufacture_die_wafer_based(ProcessNode::n7, area_mm2 * mm2)
            .total()
            .canonical();
    return per_wafer / per_area;
  };
  EXPECT_LT(overhead(25.0), overhead(400.0));
  EXPECT_LT(overhead(400.0), overhead(820.0));
}

TEST(WaferAccounting, ReportsSameYield) {
  const FabModel model;
  const units::Area area = 300.0 * mm2;
  EXPECT_DOUBLE_EQ(model.manufacture_die(ProcessNode::n5, area).yield,
                   model.manufacture_die_wafer_based(ProcessNode::n5, area).yield);
}

TEST(WaferAccounting, ComponentsSumToTotal) {
  const FabModel model;
  const auto result = model.manufacture_die_wafer_based(ProcessNode::n10, 150.0 * mm2);
  EXPECT_DOUBLE_EQ(result.total().canonical(),
                   (result.energy + result.gases + result.materials).canonical());
}

TEST(WaferAccounting, SmallerWafersChargeMore) {
  // 200 mm wafers lose relatively more edge for the same die.
  const FabModel model;
  const units::Area area = 400.0 * mm2;
  const double on_300 =
      model.manufacture_die_wafer_based(ProcessNode::n10, area, 300.0).total().canonical();
  const double on_200 =
      model.manufacture_die_wafer_based(ProcessNode::n10, area, 200.0).total().canonical();
  EXPECT_GT(on_200, on_300);
}

TEST(WaferAccounting, OversizedDieThrows) {
  const FabModel model;
  EXPECT_THROW(model.manufacture_die_wafer_based(ProcessNode::n10, 1e6 * mm2),
               std::invalid_argument);
  EXPECT_THROW(model.manufacture_die_wafer_based(ProcessNode::n10, units::Area{}),
               std::invalid_argument);
}

// Property: across dies and nodes, the wafer rule's overhead stays within
// a sane envelope (0-50 %) -- it models edge loss, not a different fab.
struct WaferCase {
  ProcessNode node;
  double area_mm2;
};

class WaferOverheadProperty : public ::testing::TestWithParam<WaferCase> {};

TEST_P(WaferOverheadProperty, OverheadBounded) {
  const FabModel model;
  const auto [node, area_mm2] = GetParam();
  const double per_area = model.manufacture_die(node, area_mm2 * mm2).total().canonical();
  const double per_wafer =
      model.manufacture_die_wafer_based(node, area_mm2 * mm2).total().canonical();
  const double overhead = per_wafer / per_area;
  EXPECT_GE(overhead, 1.0);
  EXPECT_LE(overhead, 1.50);
}

INSTANTIATE_TEST_SUITE_P(Grid, WaferOverheadProperty,
                         ::testing::Values(WaferCase{ProcessNode::n28, 50.0},
                                           WaferCase{ProcessNode::n14, 150.0},
                                           WaferCase{ProcessNode::n10, 340.0},
                                           WaferCase{ProcessNode::n7, 600.0},
                                           WaferCase{ProcessNode::n5, 820.0}));

}  // namespace
}  // namespace greenfpga::act
