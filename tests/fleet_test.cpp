/// The fleet scenario kind: datacenter fleet sizing over a traffic trace
/// and regional grid profiles, reconfiguration amortisation, spec/result
/// round-trip, engine determinism, and the `greenfpga fleet` subcommand.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "device/catalog.hpp"
#include "scenario/engine.hpp"
#include "scenario/fleet.hpp"
#include "scenario/result_io.hpp"
#include "scenario/spec.hpp"

namespace greenfpga::scenario {
namespace {

ScenarioSpec fleet_spec(int mc_samples = 0) {
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::fleet, device::Domain::dnn);
  spec.name = "fleet under test";
  spec.fleet->mc_samples = mc_samples;
  return spec;
}

TEST(FleetSpec, MakeSeedsAValidDefaultSection) {
  const ScenarioSpec spec = fleet_spec();
  ASSERT_TRUE(spec.fleet.has_value());
  EXPECT_FALSE(spec.fleet->regions.empty());
  EXPECT_FALSE(spec.fleet->services.empty());
  EXPECT_NO_THROW(spec.validate());
  // Non-fleet specs do not grow a fleet section (their canonical bytes
  // must not change).
  EXPECT_FALSE(
      ScenarioSpec::make(ScenarioKind::compare, device::Domain::dnn).fleet.has_value());
}

TEST(FleetSpec, ValidationNamesTheOffendingField) {
  ScenarioSpec spec = fleet_spec();
  spec.fleet->utilization = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = fleet_spec();
  spec.fleet->regions.front().profile = "cloudy";
  try {
    spec.validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("unknown profile \"cloudy\""),
              std::string::npos)
        << error.what();
  }
  spec = fleet_spec();
  spec.fleet->services.front().trace = {0.5, 0.5};  // not 24 entries
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(FleetSpec, JsonRoundTripIsByteIdentical) {
  ScenarioSpec spec = fleet_spec(16);
  spec.fleet->regions.front().weight = 2.5;
  spec.fleet->services.front().peak_load = 12345.0;
  spec.fleet->horizon_years = 4.5;
  const std::string text = spec_to_json(spec).dump();
  EXPECT_EQ(spec_to_json(spec_from_json(io::parse_json(text))).dump(), text);
}

TEST(FleetRun, DefaultPlatformsAreTheThreeWayComparison) {
  const Engine engine(EngineOptions{.threads = 1});
  const ScenarioResult result = engine.run(fleet_spec());
  ASSERT_EQ(result.platform_names.size(), 3u);
  EXPECT_EQ(result.platform_names[0], "asic");
  EXPECT_EQ(result.platform_names[1], "fpga");
  EXPECT_EQ(result.platform_names[2], "gpu");
}

TEST(FleetRun, SimulationShapesAndReconfigAccounting) {
  const Engine engine(EngineOptions{.threads = 1});
  const ScenarioResult result = engine.run(fleet_spec());
  ASSERT_TRUE(result.fleet.has_value());
  const FleetResult& fleet = *result.fleet;
  ASSERT_EQ(fleet.groups.size(), result.resolved_chips.size());
  ASSERT_EQ(fleet.region_multipliers.size(), result.spec.fleet->regions.size());
  EXPECT_GT(fleet.peak_units, 0.0);
  for (const double multiplier : fleet.region_multipliers) {
    EXPECT_GT(multiplier, 0.0);
  }
  for (std::size_t i = 0; i < fleet.groups.size(); ++i) {
    EXPECT_GT(fleet.groups[i].units, 0.0) << result.platform_names[i];
    EXPECT_GT(fleet.groups[i].total.total().canonical(), 0.0)
        << result.platform_names[i];
    if (result.resolved_chips[i].kind == device::ChipKind::fpga) {
      // Serving several services costs bitstream swaps: the FPGA fleet is
      // over-provisioned by the reconfiguration amortisation factor.
      EXPECT_GT(fleet.groups[i].reconfig_factor, 1.0);
    } else {
      // Fixed-function platforms never reconfigure.
      EXPECT_EQ(fleet.groups[i].reconfig_factor, 1.0) << result.platform_names[i];
    }
  }
}

TEST(FleetRun, ZeroReconfigOverheadRemovesTheFpgaPenalty) {
  ScenarioSpec spec = fleet_spec();
  spec.fleet->reconfig_overhead_hours = 0.0;
  const ScenarioResult result = Engine(EngineOptions{.threads = 1}).run(spec);
  for (std::size_t i = 0; i < result.fleet->groups.size(); ++i) {
    EXPECT_EQ(result.fleet->groups[i].reconfig_factor, 1.0);
  }
}

TEST(FleetRun, MonteCarloBytesAreThreadCountInvariant) {
  const ScenarioSpec spec = fleet_spec(16);
  const std::string base =
      result_to_json(Engine(EngineOptions{.threads = 1}).run(spec)).dump();
  EXPECT_EQ(result_to_json(Engine(EngineOptions{.threads = 4}).run(spec)).dump(), base);
  const ScenarioResult result = Engine(EngineOptions{.threads = 2}).run(spec);
  ASSERT_TRUE(result.uncertainty.has_value());
  EXPECT_EQ(result.uncertainty->samples, 16);
  ASSERT_EQ(result.uncertainty->sample_totals_kg.size(), 3u);
  // The sample matrix feeds the --csv export.
  EXPECT_EQ(mc_samples_frame(result).rows.size(), 16u);
}

TEST(FleetRun, ResultRoundTripsThroughCanonicalJson) {
  const ScenarioResult result =
      Engine(EngineOptions{.threads = 1}).run(fleet_spec(8));
  const std::string text = result_to_json(result).dump();
  EXPECT_TRUE(result_from_json(io::parse_json(text)) == result);
  EXPECT_EQ(result_to_json(result_from_json(io::parse_json(text))).dump(), text);
}

TEST(FleetCli, SubcommandRunsAndRendersTheFleetFrames) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = cli::dispatch({"fleet", "dnn", "--horizon", "4", "--utilization",
                                  "0.8"},
                                 out, err);
  EXPECT_EQ(code, 0) << err.str();
  EXPECT_NE(out.str().find("datacenter fleet"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("reconfig factor"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("intensity multiplier"), std::string::npos) << out.str();
}

TEST(FleetCli, UsageErrorsNameTheFlag) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(cli::dispatch({"fleet", "mars"}, out, err), 2);
  EXPECT_NE(err.str().find("unknown domain 'mars'"), std::string::npos);
  err.str("");
  EXPECT_EQ(cli::dispatch({"fleet", "dnn", "--utilization", "2"}, out, err), 2);
  EXPECT_NE(err.str().find("--utilization"), std::string::npos);
  err.str("");
  // --csv needs sampling turned on.
  EXPECT_EQ(cli::dispatch({"fleet", "dnn", "--csv", "x.csv"}, out, err), 2);
  EXPECT_NE(err.str().find("--samples"), std::string::npos);
}

}  // namespace
}  // namespace greenfpga::scenario
