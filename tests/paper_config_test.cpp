/// Tests for the calibrated parameter suites: every default must sit
/// inside the paper's published Table 1 range (or be an explicitly
/// documented assumption), and the two regime suites must differ only in
/// the documented knobs.

#include <gtest/gtest.h>

#include "core/paper_config.hpp"
#include "units/units.hpp"

namespace greenfpga::core {
namespace {

using namespace units::unit;

TEST(PaperSuite, DesignDefaultsInsideTable1Ranges) {
  const DesignParameters& p = paper_suite().design;
  EXPECT_GE(p.annual_energy.in(gwh), 2.0);
  EXPECT_LE(p.annual_energy.in(gwh), 7.3);
  EXPECT_GE(p.intensity.in(g_per_kwh), 30.0);
  EXPECT_LE(p.intensity.in(g_per_kwh), 700.0);
  EXPECT_GE(p.company_employees, 20e3);
  EXPECT_LE(p.company_employees, 160e3);
  EXPECT_GE(p.project_duration.in(years), 1.0);
  EXPECT_LE(p.project_duration.in(years), 3.0);
}

TEST(PaperSuite, AppDevDefaultsInsideTable1Ranges) {
  const AppDevParameters& p = paper_suite().appdev;
  EXPECT_GE(p.frontend_time.in(months), 1.5);
  EXPECT_LE(p.frontend_time.in(months), 2.5);
  EXPECT_GE(p.backend_time.in(months), 0.5);
  EXPECT_LE(p.backend_time.in(months), 1.5);
  EXPECT_EQ(p.accounting, AppDevAccounting::one_time);
}

TEST(PaperSuite, EolDefaultsInsideWarmRanges) {
  const eol::EolParameters& p = paper_suite().eol;
  EXPECT_GE(p.recycled_fraction, 0.0);
  EXPECT_LE(p.recycled_fraction, 1.0);
  EXPECT_GE(p.discard_factor.in(mtco2e_per_ton), 0.03);
  EXPECT_LE(p.discard_factor.in(mtco2e_per_ton), 2.08);
  EXPECT_GE(p.recycle_credit_factor.in(mtco2e_per_ton), 7.65);
  EXPECT_LE(p.recycle_credit_factor.in(mtco2e_per_ton), 29.83);
}

TEST(PaperSuite, FabAndOperationAreDocumentedAssumptions) {
  const ModelSuite suite = paper_suite();
  // Fab: Taiwan grid with a 20 % solar share.
  const double expected =
      act::offset_grid_intensity(act::GridRegion::taiwan, 0.20).in(g_per_kwh);
  EXPECT_DOUBLE_EQ(suite.fab.fab_energy_intensity.in(g_per_kwh), expected);
  EXPECT_DOUBLE_EQ(suite.fab.recycled_material_fraction, 0.0);
  // Edge regime: watt-class devices mostly idle.
  EXPECT_DOUBLE_EQ(suite.operation.duty_cycle, 0.02);
  EXPECT_DOUBLE_EQ(suite.operation.power_usage_effectiveness, 1.0);
  // Package: the paper's monolithic model.
  EXPECT_EQ(suite.package.type, pkg::PackageType::monolithic);
}

TEST(IndustrySuite, DiffersOnlyInDocumentedKnobs) {
  const ModelSuite edge = paper_suite();
  const ModelSuite datacenter = industry_suite();
  // Changed: regime and design-team scale.
  EXPECT_GT(datacenter.operation.duty_cycle, edge.operation.duty_cycle);
  EXPECT_GT(datacenter.operation.power_usage_effectiveness, 1.0);
  EXPECT_GT(datacenter.design.product_team_size, edge.design.product_team_size);
  EXPECT_GT(datacenter.design.fpga_regularity_factor, edge.design.fpga_regularity_factor);
  // Unchanged: fab, EOL, app-dev times, carbon intensities.
  EXPECT_DOUBLE_EQ(datacenter.fab.fab_energy_intensity.in(g_per_kwh),
                   edge.fab.fab_energy_intensity.in(g_per_kwh));
  EXPECT_DOUBLE_EQ(datacenter.eol.recycled_fraction, edge.eol.recycled_fraction);
  EXPECT_DOUBLE_EQ(datacenter.appdev.frontend_time.in(months),
                   edge.appdev.frontend_time.in(months));
  EXPECT_DOUBLE_EQ(datacenter.operation.use_intensity.in(g_per_kwh),
                   edge.operation.use_intensity.in(g_per_kwh));
}

TEST(PaperSuite, SweepDefaultsMatchSection42D) {
  const SweepDefaults defaults = paper_sweep_defaults();
  EXPECT_EQ(defaults.app_count, 5);
  EXPECT_DOUBLE_EQ(defaults.app_lifetime.in(years), 2.0);
  EXPECT_DOUBLE_EQ(defaults.app_volume, 1e6);
}

TEST(PaperSuite, PaperScheduleUsesDefaults) {
  const workload::Schedule schedule = paper_schedule(device::Domain::imgproc);
  ASSERT_EQ(schedule.size(), 5u);
  for (const workload::Application& app : schedule) {
    EXPECT_EQ(app.domain, device::Domain::imgproc);
    EXPECT_DOUBLE_EQ(app.lifetime.in(years), 2.0);
    EXPECT_DOUBLE_EQ(app.volume, 1e6);
  }
}

TEST(PaperSuite, SuitesConstructValidModels) {
  EXPECT_NO_THROW(LifecycleModel{paper_suite()});
  EXPECT_NO_THROW(LifecycleModel{industry_suite()});
}

}  // namespace
}  // namespace greenfpga::core
