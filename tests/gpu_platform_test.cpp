/// Tests for the GPU third-platform extension.

#include <gtest/gtest.h>

#include "core/comparator.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "device/iso_performance.hpp"
#include "units/units.hpp"

namespace greenfpga::core {
namespace {

using namespace units::unit;
using device::Domain;

LifecycleModel model() { return LifecycleModel(paper_suite()); }

TEST(GpuSpec, DerivedFromAsicWithGpuRatios) {
  const device::ChipSpec asic = device::domain_testcase(Domain::dnn).asic;
  const device::ChipSpec gpu = device::derive_iso_gpu(asic, Domain::dnn);
  EXPECT_TRUE(gpu.is_gpu());
  EXPECT_TRUE(gpu.is_reusable());
  EXPECT_FALSE(gpu.is_fpga());
  EXPECT_DOUBLE_EQ(gpu.die_area.in(mm2), 5.0 * asic.die_area.in(mm2));
  EXPECT_DOUBLE_EQ(gpu.peak_power.in(w), 5.0 * asic.peak_power.in(w));
  EXPECT_DOUBLE_EQ(gpu.service_life.in(years), 7.0);
}

TEST(GpuSpec, RatiosCoverAllDomains) {
  for (const Domain domain : device::all_domains()) {
    const device::IsoPerformanceRatios ratios = device::gpu_domain_ratios(domain);
    EXPECT_GT(ratios.area_ratio, 1.0) << to_string(domain);
    EXPECT_GT(ratios.power_ratio, 1.0) << to_string(domain);
  }
  // Crypto is the worst GPU fit (bit-level kernels on SIMT).
  EXPECT_GT(device::gpu_domain_ratios(Domain::crypto).power_ratio,
            device::gpu_domain_ratios(Domain::dnn).power_ratio);
}

TEST(GpuPlatform, EmbodiedPaidOnceLikeFpga) {
  const LifecycleModel m = model();
  const device::ChipSpec gpu =
      device::derive_iso_gpu(device::domain_testcase(Domain::dnn).asic, Domain::dnn);
  const auto one = m.evaluate_gpu(gpu, paper_schedule(Domain::dnn, 1, 2.0 * years, 1e6));
  const auto five = m.evaluate_gpu(gpu, paper_schedule(Domain::dnn, 5, 2.0 * years, 1e6));
  EXPECT_DOUBLE_EQ(five.total.manufacturing.canonical(), one.total.manufacturing.canonical());
  EXPECT_DOUBLE_EQ(five.total.design.canonical(), one.total.design.canonical());
  EXPECT_NEAR(five.total.operational.canonical(), 5.0 * one.total.operational.canonical(),
              1e-6);
}

TEST(GpuPlatform, SoftwareFlowNotHardwareFlow) {
  // GPU app-dev: kernel porting (0.75 months default), no per-chip
  // configuration -- cheaper than the FPGA's 3-month RTL flow.
  const AppDevModel appdev{paper_suite().appdev};
  const auto gpu_dev = appdev.per_application(1e6, device::ChipKind::gpu);
  const auto fpga_dev = appdev.per_application(1e6, device::ChipKind::fpga);
  EXPECT_EQ(gpu_dev.configuration.canonical(), 0.0);
  EXPECT_GT(gpu_dev.engineering.canonical(), 0.0);
  EXPECT_LT(gpu_dev.total().canonical(), fpga_dev.total().canonical());
  EXPECT_DOUBLE_EQ(appdev.engineering_time(device::ChipKind::gpu).in(months), 0.75);
}

TEST(GpuPlatform, GpuDesignChargedWithoutRegularityDiscount) {
  // The fabric-regularity discount is an FPGA-tiling property; GPU dies
  // are charged like ASICs of their silicon size.
  const DesignModel design{paper_suite().design};
  const device::ChipSpec gpu =
      device::derive_iso_gpu(device::domain_testcase(Domain::dnn).asic, Domain::dnn);
  const double silicon_gates = tech::node_info(gpu.node).gates_in_area(gpu.die_area);
  EXPECT_DOUBLE_EQ(design.design_carbon(gpu).canonical(),
                   design.design_carbon(silicon_gates, /*is_fpga=*/false).canonical());
}

TEST(GpuPlatform, KindMismatchThrows) {
  const LifecycleModel m = model();
  const auto testcase = device::domain_testcase(Domain::dnn);
  const auto schedule = paper_schedule(Domain::dnn);
  EXPECT_THROW(m.evaluate_gpu(testcase.asic, schedule), std::invalid_argument);
  EXPECT_THROW(m.evaluate_gpu(testcase.fpga, schedule), std::invalid_argument);
  const device::ChipSpec gpu = device::derive_iso_gpu(testcase.asic, Domain::dnn);
  EXPECT_THROW(m.evaluate_asic(gpu, schedule), std::invalid_argument);
}

TEST(GpuPlatform, EvaluateDispatchesGpu) {
  const LifecycleModel m = model();
  const device::ChipSpec gpu =
      device::derive_iso_gpu(device::domain_testcase(Domain::dnn).asic, Domain::dnn);
  EXPECT_EQ(m.evaluate(gpu, paper_schedule(Domain::dnn)).kind, device::ChipKind::gpu);
}

TEST(ThreeWay, RatiosAndWinnerConsistent) {
  const LifecycleModel m = model();
  const auto comparison = compare_three_way(m, device::domain_testcase(Domain::dnn),
                                            paper_schedule(Domain::dnn));
  EXPECT_GT(comparison.fpga_ratio(), 0.0);
  EXPECT_GT(comparison.gpu_ratio(), 0.0);
  const device::ChipKind winner = comparison.winner();
  const double best = std::min({comparison.asic.total.total().canonical(),
                                comparison.fpga.total.total().canonical(),
                                comparison.gpu.total.total().canonical()});
  const double winner_total =
      winner == device::ChipKind::asic  ? comparison.asic.total.total().canonical()
      : winner == device::ChipKind::fpga ? comparison.fpga.total.total().canonical()
                                         : comparison.gpu.total.total().canonical();
  EXPECT_DOUBLE_EQ(winner_total, best);
}

TEST(ThreeWay, ReusableMatchupFollowsAreaOverheads) {
  // Both reusable platforms amortise embodied carbon, so in the
  // embodied-dominated edge regime the matchup tracks silicon overheads:
  // the FPGA (4x / 1x area) beats the GPU (5x / 6x) for DNN and Crypto,
  // while for ImgProc the FPGA's 7.42x area loses to the GPU's 4x.
  const LifecycleModel m = model();
  const auto dnn = compare_three_way(m, device::domain_testcase(Domain::dnn),
                                     paper_schedule(Domain::dnn));
  EXPECT_LT(dnn.fpga.total.total().canonical(), dnn.gpu.total.total().canonical());
  const auto crypto = compare_three_way(m, device::domain_testcase(Domain::crypto),
                                        paper_schedule(Domain::crypto));
  EXPECT_LT(crypto.fpga.total.total().canonical(), crypto.gpu.total.total().canonical());
  const auto imgproc = compare_three_way(m, device::domain_testcase(Domain::imgproc),
                                         paper_schedule(Domain::imgproc));
  EXPECT_GT(imgproc.fpga.total.total().canonical(),
            imgproc.gpu.total.total().canonical());
}

TEST(ThreeWay, GpuStillBeatsAsicWhenChurnIsExtreme) {
  // Many short-lived applications: even the GPU's power penalty amortises
  // against per-app ASIC re-design at low duty.
  const LifecycleModel m = model();
  const auto comparison =
      compare_three_way(m, device::domain_testcase(Domain::dnn),
                        paper_schedule(Domain::dnn, 12, 0.5 * years, 1e6));
  EXPECT_LT(comparison.gpu_ratio(), 1.0);
  EXPECT_EQ(comparison.winner(), device::ChipKind::fpga);
}

TEST(ThreeWay, AsicWinsLongSingleApplication) {
  const LifecycleModel m = model();
  const auto comparison =
      compare_three_way(m, device::domain_testcase(Domain::dnn),
                        paper_schedule(Domain::dnn, 1, 8.0 * years, 1e6));
  EXPECT_EQ(comparison.winner(), device::ChipKind::asic);
}

}  // namespace
}  // namespace greenfpga::core
