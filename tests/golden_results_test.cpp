/// Golden regression suite for the structured result pipeline: pins the
/// canonical `--format json` output (`scenario::result_to_json`) of
/// every scenario kind against checked-in snapshots in tests/golden/,
/// the byte-identical round-trip `result_from_json(result_to_json(r)) == r`,
/// thread-count invariance of the JSON bytes, and `Engine::run_batch`
/// bit-identity against individual runs.
///
/// Regenerate deliberately with GREENFPGA_REGEN_GOLDEN=1 (see
/// golden_test_util.hpp).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "golden_test_util.hpp"
#include "io/json.hpp"
#include "report/result_frame.hpp"
#include "scenario/engine.hpp"
#include "scenario/result_io.hpp"

namespace greenfpga::scenario {
namespace {

using greenfpga::testing::check_against_golden;

/// Small, fast specs -- one per kind -- chosen so the snapshots stay
/// reviewable (a handful of points/samples each).
ScenarioSpec spec_for(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::compare: {
      ScenarioSpec spec = ScenarioSpec::make(kind, device::Domain::crypto);
      spec.name = "golden compare";
      spec.platforms = {PlatformRef{.name = "asic"}, PlatformRef{.name = "fpga"},
                        PlatformRef{.name = "gpu"}};
      return spec;
    }
    case ScenarioKind::sweep: {
      ScenarioSpec spec = ScenarioSpec::make(kind, device::Domain::dnn);
      spec.name = "golden sweep";
      spec.axes = {AxisSpec::linear(SweepVariable::app_count, 1, 4, 4)};
      return spec;
    }
    case ScenarioKind::grid: {
      ScenarioSpec spec = ScenarioSpec::make(kind, device::Domain::dnn);
      spec.name = "golden grid";
      spec.axes = {AxisSpec::log(SweepVariable::volume, 1e5, 1e6, 2),
                   AxisSpec::linear(SweepVariable::lifetime_years, 0.5, 1.5, 3)};
      return spec;
    }
    case ScenarioKind::timeline: {
      ScenarioSpec spec = ScenarioSpec::make(kind, device::Domain::dnn);
      spec.name = "golden timeline";
      spec.timeline.horizon_years = 20.0;
      spec.timeline.step_years = 1.0;
      return spec;
    }
    case ScenarioKind::node_dse: {
      ScenarioSpec spec = ScenarioSpec::make(kind, device::Domain::crypto);
      spec.name = "golden node_dse";
      return spec;
    }
    case ScenarioKind::breakeven: {
      ScenarioSpec spec = ScenarioSpec::make(kind, device::Domain::dnn);
      spec.name = "golden breakeven";
      return spec;
    }
    case ScenarioKind::sensitivity: {
      ScenarioSpec spec = ScenarioSpec::make(kind, device::Domain::imgproc);
      spec.name = "golden sensitivity";
      spec.sensitivity.samples = 32;
      spec.sensitivity.seed = 7;
      return spec;
    }
    case ScenarioKind::montecarlo: {
      ScenarioSpec spec = ScenarioSpec::make(kind, device::Domain::dnn);
      spec.name = "golden montecarlo";
      spec.montecarlo.samples = 16;
      spec.montecarlo.seed = 3;
      return spec;
    }
    case ScenarioKind::frontier: {
      ScenarioSpec spec = ScenarioSpec::make(kind, device::Domain::dnn);
      spec.name = "golden frontier";
      spec.platforms = {PlatformRef{.name = "asic"}, PlatformRef{.name = "fpga"},
                        PlatformRef{.name = "gpu"}, PlatformRef{.name = "cpu"}};
      spec.frontier.axes = {
          dse::FrontierAxisSpec::linear(dse::FrontierVariable::app_count, 1, 4, 4),
          dse::FrontierAxisSpec::log(dse::FrontierVariable::volume, 1e4, 1e6, 3)};
      spec.frontier.confidence_samples = 8;
      spec.frontier.seed = 11;
      return spec;
    }
    case ScenarioKind::fleet: {
      ScenarioSpec spec = ScenarioSpec::make(kind, device::Domain::dnn);
      spec.name = "golden fleet";
      spec.fleet->mc_samples = 8;
      spec.montecarlo.seed = 5;
      return spec;
    }
  }
  throw std::logic_error("spec_for: unknown kind");
}

const std::vector<ScenarioKind>& all_kinds() {
  static const std::vector<ScenarioKind> kinds{
      ScenarioKind::compare,   ScenarioKind::sweep,     ScenarioKind::grid,
      ScenarioKind::timeline,  ScenarioKind::node_dse,  ScenarioKind::breakeven,
      ScenarioKind::sensitivity, ScenarioKind::montecarlo, ScenarioKind::frontier,
      ScenarioKind::fleet};
  return kinds;
}

ScenarioResult run_kind(ScenarioKind kind, int threads = 1) {
  const Engine engine(EngineOptions{.threads = threads});
  return engine.run(spec_for(kind));
}

class GoldenResults : public ::testing::TestWithParam<ScenarioKind> {};

TEST_P(GoldenResults, CanonicalJsonMatchesSnapshot) {
  const ScenarioKind kind = GetParam();
  check_against_golden("result_" + to_string(kind),
                       result_to_json(run_kind(kind)));
}

TEST_P(GoldenResults, RoundTripsThroughJsonValueAndText) {
  const ScenarioResult result = run_kind(GetParam());
  const io::Json json = result_to_json(result);
  // Value round-trip: the parsed result is the same result.
  EXPECT_TRUE(result_from_json(json) == result);
  // Text round-trip: serialize -> parse -> re-serialize is byte-identical
  // (shortest round-trip numbers, sorted keys).
  const std::string text = json.dump();
  EXPECT_EQ(result_to_json(result_from_json(io::parse_json(text))).dump(), text);
}

TEST_P(GoldenResults, JsonBytesAreThreadCountInvariant) {
  const std::string base = result_to_json(run_kind(GetParam(), 1)).dump();
  EXPECT_EQ(result_to_json(run_kind(GetParam(), 2)).dump(), base);
  EXPECT_EQ(result_to_json(run_kind(GetParam(), 8)).dump(), base);
}

TEST_P(GoldenResults, LowersIntoAtLeastOneFrame) {
  const ScenarioResult result = run_kind(GetParam());
  const std::vector<report::ResultFrame> frames = to_frames(result);
  ASSERT_FALSE(frames.empty());
  for (const report::ResultFrame& frame : frames) {
    EXPECT_FALSE(frame.name.empty());
    EXPECT_FALSE(frame.columns.empty());
    for (const std::vector<report::Cell>& row : frame.rows) {
      EXPECT_EQ(row.size(), frame.columns.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GoldenResults,
                         ::testing::ValuesIn(all_kinds()),
                         [](const ::testing::TestParamInfo<ScenarioKind>& info) {
                           return to_string(info.param);
                         });

TEST(GoldenResults, FrameLoweringShapes) {
  EXPECT_EQ(to_frames(run_kind(ScenarioKind::compare)).front().rows.size(), 3u);
  EXPECT_EQ(to_frames(run_kind(ScenarioKind::sweep)).front().rows.size(), 4u);
  EXPECT_EQ(to_frames(run_kind(ScenarioKind::grid)).front().rows.size(), 6u);
  EXPECT_EQ(to_frames(run_kind(ScenarioKind::breakeven)).front().rows.size(), 3u);
  const auto sensitivity = to_frames(run_kind(ScenarioKind::sensitivity));
  ASSERT_EQ(sensitivity.size(), 2u);
  EXPECT_EQ(sensitivity[0].name, "tornado");
  EXPECT_EQ(sensitivity[1].name, "montecarlo_summary");
}

TEST(GoldenResults, McSamplesFrameHasOneRowPerSample) {
  const ScenarioResult result = run_kind(ScenarioKind::montecarlo);
  const report::ResultFrame samples = mc_samples_frame(result);
  EXPECT_EQ(samples.rows.size(), 16u);
  // sample + 2 platform totals + 1 ratio column.
  EXPECT_EQ(samples.columns.size(), 4u);
  // Non-montecarlo results have no sample matrix.
  EXPECT_THROW(mc_samples_frame(run_kind(ScenarioKind::compare)), std::logic_error);
}

TEST(GoldenResults, BatchIsBitIdenticalToIndividualRuns) {
  std::vector<ScenarioSpec> specs;
  for (const ScenarioKind kind : all_kinds()) {
    specs.push_back(spec_for(kind));
  }
  std::vector<std::string> individual;
  for (const ScenarioKind kind : all_kinds()) {
    individual.push_back(result_to_json(run_kind(kind)).dump());
  }
  for (const int threads : {1, 4}) {
    const Engine engine(EngineOptions{.threads = threads});
    const std::vector<ScenarioResult> batch = engine.run_batch(specs);
    ASSERT_EQ(batch.size(), specs.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(result_to_json(batch[i]).dump(), individual[i])
          << "kind " << to_string(specs[i].kind) << " at " << threads << " threads";
    }
  }
}

TEST(GoldenResults, BatchSharesSuitesAcrossDuplicateSpecs) {
  // Several specs over the same suite (the memo-sharing path) must still
  // produce per-spec results identical to solo runs.
  const ScenarioSpec sweep = spec_for(ScenarioKind::sweep);
  const ScenarioSpec grid = spec_for(ScenarioKind::grid);
  const Engine engine(EngineOptions{.threads = 4});
  const std::vector<ScenarioResult> batch = engine.run_batch({sweep, grid, sweep});
  EXPECT_TRUE(batch[0] == batch[2]);
  EXPECT_EQ(result_to_json(batch[0]).dump(),
            result_to_json(Engine(EngineOptions{.threads = 1}).run(sweep)).dump());
  EXPECT_EQ(result_to_json(batch[1]).dump(),
            result_to_json(Engine(EngineOptions{.threads = 1}).run(grid)).dump());
}

TEST(GoldenResults, NonFiniteResultValuesRoundTrip) {
  // A zero-baseline ratio or an unbounded breakeven solve produces
  // inf/NaN cells; the canonical JSON must stay total over them (the old
  // `null`-for-non-finite encoding corrupted the documented round-trip).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ScenarioResult result = run_kind(ScenarioKind::breakeven);
  ASSERT_TRUE(result.breakeven.has_value());
  result.breakeven->app_count = kInf;
  result.breakeven->lifetime_years = -kInf;
  result.breakeven->volume = std::numeric_limits<double>::quiet_NaN();

  const io::Json json = result_to_json(result);
  // Value round-trip (equality is canonical-bytes equality, so NaN cells
  // compare equal to themselves).
  EXPECT_TRUE(result_from_json(json) == result);
  // Text round-trip is byte-identical.
  const std::string text = json.dump();
  EXPECT_EQ(result_to_json(result_from_json(io::parse_json(text))).dump(), text);
  // The decoded values really are the non-finite doubles again.
  const ScenarioResult reread = result_from_json(io::parse_json(text));
  ASSERT_TRUE(reread.breakeven.has_value());
  EXPECT_EQ(reread.breakeven->app_count, kInf);
  EXPECT_EQ(reread.breakeven->lifetime_years, -kInf);
  ASSERT_TRUE(reread.breakeven->volume.has_value());
  EXPECT_TRUE(std::isnan(*reread.breakeven->volume));
}

TEST(GoldenResults, NonFiniteUncertaintyCellsRoundTrip) {
  // Inf/NaN in the Monte-Carlo payload (a zero-baseline sample makes the
  // ratio stream non-finite) survive the canonical round-trip too.
  ScenarioResult result = run_kind(ScenarioKind::montecarlo);
  ASSERT_TRUE(result.uncertainty.has_value());
  result.uncertainty->ratio.front().mean = std::numeric_limits<double>::infinity();
  result.uncertainty->sample_totals_kg.front().front() =
      std::numeric_limits<double>::quiet_NaN();
  const std::string text = result_to_json(result).dump();
  EXPECT_EQ(result_to_json(result_from_json(io::parse_json(text))).dump(), text);
  EXPECT_TRUE(result_from_json(io::parse_json(text)) == result);
}

TEST(GoldenResults, BreakevenJsonDistinguishesUnrequestedFromNoCrossover) {
  ScenarioSpec spec = spec_for(ScenarioKind::breakeven);
  spec.breakeven.solve_volume = false;
  const ScenarioResult result = Engine(EngineOptions{.threads = 1}).run(spec);
  const io::Json json = result_to_json(result);
  EXPECT_TRUE(json.at("breakeven").contains("app_count"));
  EXPECT_FALSE(json.at("breakeven").contains("volume"));
  EXPECT_TRUE(result_from_json(json) == result);
}

}  // namespace
}  // namespace greenfpga::scenario
