#ifndef GREENFPGA_TESTS_GOLDEN_TEST_UTIL_HPP
#define GREENFPGA_TESTS_GOLDEN_TEST_UTIL_HPP

/// Shared golden-snapshot machinery for the regression suites
/// (golden_figures_test, golden_results_test): tolerance-aware recursive
/// JSON comparison plus the check-or-regenerate entry point.
///
/// Comparison is per-value with a relative tolerance of 1e-9 (absolute
/// 1e-12 near zero): tight enough that any model change trips it, loose
/// enough to survive benign FP-reassociation differences across
/// compilers.  Regenerate intentionally with
///
///     GREENFPGA_REGEN_GOLDEN=1 ./<suite>
///
/// then review the diff of tests/golden/*.json like any other code
/// change.  The golden directory is baked in at compile time
/// (GREENFPGA_GOLDEN_DIR, set by CMakeLists.txt for every golden_* test).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "io/json.hpp"

#ifndef GREENFPGA_GOLDEN_DIR
#error "GREENFPGA_GOLDEN_DIR must point at tests/golden (set by CMakeLists.txt)"
#endif

namespace greenfpga::testing {

inline constexpr double kGoldenRelTolerance = 1e-9;
inline constexpr double kGoldenAbsTolerance = 1e-12;

/// Recursive JSON comparison: identical structure, numbers within
/// tolerance.  Appends one message per mismatch, prefixed with the JSON
/// path, so a failure names exactly which value drifted.
inline void compare_json(const io::Json& golden, const io::Json& actual,
                         const std::string& path, std::vector<std::string>& errors) {
  if (golden.type() != actual.type()) {
    errors.push_back(path + ": type mismatch");
    return;
  }
  switch (golden.type()) {
    case io::Json::Type::number: {
      const double g = golden.as_number();
      const double a = actual.as_number();
      const double scale = std::max(std::fabs(g), std::fabs(a));
      if (std::fabs(g - a) >
          std::max(kGoldenAbsTolerance, kGoldenRelTolerance * scale)) {
        errors.push_back(path + ": golden " + std::to_string(g) + " vs actual " +
                         std::to_string(a));
      }
      return;
    }
    case io::Json::Type::array: {
      if (golden.size() != actual.size()) {
        errors.push_back(path + ": array size " + std::to_string(golden.size()) +
                         " vs " + std::to_string(actual.size()));
        return;
      }
      for (std::size_t i = 0; i < golden.size(); ++i) {
        compare_json(golden.at(i), actual.at(i), path + "[" + std::to_string(i) + "]",
                     errors);
      }
      return;
    }
    case io::Json::Type::object: {
      for (const auto& [key, value] : golden.as_object()) {
        if (!actual.contains(key)) {
          errors.push_back(path + ": missing key \"" + key + "\"");
          continue;
        }
        compare_json(value, actual.at(key), path + "." + key, errors);
      }
      for (const auto& [key, value] : actual.as_object()) {
        if (!golden.contains(key)) {
          errors.push_back(path + ": unexpected key \"" + key + "\"");
        }
      }
      return;
    }
    default:
      if (!(golden == actual)) {
        errors.push_back(path + ": value mismatch");
      }
      return;
  }
}

/// Compare `actual` against tests/golden/<name>.json, or rewrite the
/// snapshot when GREENFPGA_REGEN_GOLDEN is set.
inline void check_against_golden(const std::string& name, const io::Json& actual) {
  const std::string path = std::string(GREENFPGA_GOLDEN_DIR) + "/" + name + ".json";
  if (std::getenv("GREENFPGA_REGEN_GOLDEN") != nullptr) {
    io::write_json_file(path, actual);
    GTEST_SKIP() << "regenerated " << path;
  }
  const io::Json golden = io::parse_json_file(path);
  std::vector<std::string> errors;
  compare_json(golden, actual, name, errors);
  for (const std::string& error : errors) {
    ADD_FAILURE() << error;
  }
  if (!errors.empty()) {
    FAIL() << errors.size() << " golden value(s) drifted; if the model change is "
           << "intentional, regenerate with GREENFPGA_REGEN_GOLDEN=1 and review the "
           << "diff of " << path;
  }
}

}  // namespace greenfpga::testing

#endif  // GREENFPGA_TESTS_GOLDEN_TEST_UTIL_HPP
