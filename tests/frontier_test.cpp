/// Tests for the frontier DSE subsystem (src/dse/): spec JSON contract,
/// grid materialisation, FrontierSearch winner/margin/boundary rules, the
/// Monte-Carlo confidence pass, and the determinism contract (bit-identical
/// results at any thread count).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "device/platform_registry.hpp"
#include "dse/frontier.hpp"
#include "dse/frontier_spec.hpp"
#include "io/json.hpp"
#include "scenario/engine.hpp"
#include "scenario/node_dse.hpp"
#include "scenario/result_io.hpp"
#include "scenario/sensitivity.hpp"

namespace greenfpga::dse {
namespace {

FrontierSpec small_spec() {
  FrontierSpec spec;
  spec.axes = {FrontierAxisSpec::linear(FrontierVariable::app_count, 1, 4, 4),
               FrontierAxisSpec::log(FrontierVariable::volume, 1e4, 1e6, 3)};
  return spec;
}

FrontierProblem small_problem(int threads = 1) {
  FrontierProblem problem;
  problem.frontier = small_spec();
  const device::PlatformRegistry& registry = device::PlatformRegistry::builtins();
  for (const std::string& name : {"asic", "fpga", "gpu"}) {
    problem.platform_names.push_back(name);
    problem.chips.push_back(registry.resolve(name, device::Domain::dnn));
  }
  problem.suite = core::paper_suite();
  problem.threads = threads;
  return problem;
}

// -- spec JSON contract -------------------------------------------------------

TEST(FrontierSpecJson, RoundTripIsByteIdentical) {
  FrontierSpec spec = small_spec();
  spec.objective = FrontierObjective::embodied;
  spec.confidence_samples = 32;
  spec.seed = 9;
  const io::Json json = frontier_spec_to_json(spec);
  const FrontierSpec parsed = frontier_spec_from_json(json, "frontier");
  EXPECT_EQ(frontier_spec_to_json(parsed).dump(), json.dump());
}

TEST(FrontierSpecJson, NodeAxisRoundTripsAndRejectsNumericKeys) {
  FrontierSpec spec;
  spec.axes = {FrontierAxisSpec::linear(FrontierVariable::volume, 1e4, 1e6, 3),
               FrontierAxisSpec::node_list({tech::ProcessNode::n28,
                                            tech::ProcessNode::n7})};
  const io::Json json = frontier_spec_to_json(spec);
  const FrontierSpec parsed = frontier_spec_from_json(json, "frontier");
  EXPECT_EQ(frontier_spec_to_json(parsed).dump(), json.dump());

  // A node axis carrying numeric-axis keys is a config error.
  io::Json bad = io::parse_json(
      R"({"axes": [{"variable": "node", "from": 1.0}]})");
  EXPECT_THROW((void)frontier_spec_from_json(bad, "frontier"), std::exception);
}

TEST(FrontierSpecJson, UnknownKeysAndBadShapesFail) {
  EXPECT_THROW((void)frontier_spec_from_json(
                   io::parse_json(R"({"bogus": 1})"), "frontier"),
               std::exception);
  // One axis only: validate() wants 2-4.
  FrontierSpec one;
  one.axes = {FrontierAxisSpec::linear(FrontierVariable::volume, 1e4, 1e6, 3)};
  EXPECT_THROW(one.validate(), std::invalid_argument);
  // Duplicate variables.
  FrontierSpec dup;
  dup.axes = {FrontierAxisSpec::linear(FrontierVariable::volume, 1e4, 1e6, 3),
              FrontierAxisSpec::log(FrontierVariable::volume, 1e4, 1e6, 3)};
  EXPECT_THROW(dup.validate(), std::invalid_argument);
}

TEST(FrontierSpecAxes, ValuesMaterialiseLikeTheScenarioAxes) {
  const FrontierAxisSpec lin =
      FrontierAxisSpec::linear(FrontierVariable::app_count, 1, 4, 4);
  EXPECT_EQ(lin.values(), (std::vector<double>{1, 2, 3, 4}));
  const FrontierAxisSpec lg = FrontierAxisSpec::log(FrontierVariable::volume, 1e2, 1e4, 3);
  const std::vector<double> logged = lg.values();
  ASSERT_EQ(logged.size(), 3u);
  EXPECT_DOUBLE_EQ(logged.front(), 1e2);
  EXPECT_DOUBLE_EQ(logged.back(), 1e4);  // endpoint snapped exactly
  const FrontierAxisSpec nodes = FrontierAxisSpec::node_list({});
  EXPECT_EQ(nodes.materialised_nodes().size(), tech::all_nodes().size());
  EXPECT_EQ(nodes.values().size(), tech::all_nodes().size());
}

// -- search structure ---------------------------------------------------------

TEST(FrontierSearch, GridShapeWinnersAndWinFractionsAreConsistent) {
  const FrontierResult result = FrontierSearch(small_problem()).run();
  ASSERT_EQ(result.axis_values.size(), 2u);
  EXPECT_EQ(result.cells.size(), 12u);  // 4 x 3
  // Axis 0 is the fastest dimension.
  EXPECT_DOUBLE_EQ(result.cells[0].coords[0], 1.0);
  EXPECT_DOUBLE_EQ(result.cells[1].coords[0], 2.0);
  EXPECT_DOUBLE_EQ(result.cells[0].coords[1], result.cells[1].coords[1]);
  EXPECT_EQ(result.cell_index({1, 2}), 2u * 4u + 1u);

  std::size_t total_wins = 0;
  for (std::size_t p = 0; p < result.platform_names.size(); ++p) {
    total_wins += result.win_counts[p];
    EXPECT_DOUBLE_EQ(result.win_fraction[p],
                     static_cast<double>(result.win_counts[p]) /
                         static_cast<double>(result.cells.size()));
  }
  EXPECT_EQ(total_wins + result.infeasible_cells, result.cells.size());
  for (const FrontierCell& cell : result.cells) {
    ASSERT_EQ(cell.objective_kg.size(), 3u);
    ASSERT_GE(cell.winner, 0);
    // The winner really is the argmin of the finite objectives.
    for (const double objective : cell.objective_kg) {
      EXPECT_LE(cell.objective_kg[static_cast<std::size_t>(cell.winner)], objective);
    }
    EXPECT_GE(cell.margin, 1.0);
    EXPECT_DOUBLE_EQ(cell.confidence, 1.0);  // no confidence pass
  }
}

TEST(FrontierSearch, SlicesCoverEveryAxisValue) {
  const FrontierResult result = FrontierSearch(small_problem()).run();
  ASSERT_EQ(result.slices.size(), 4u + 3u);
  for (const FrontierSlice& slice : result.slices) {
    double total = 0.0;
    for (const double fraction : slice.win_fraction) {
      total += fraction;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);  // all cells feasible here
  }
}

TEST(FrontierSearch, BoundariesSeparateAdjacentCellsWithDifferentWinners) {
  const FrontierResult result = FrontierSearch(small_problem()).run();
  // The paper's DNN deployment space has an asic/fpga breakeven inside
  // this window, so at least one boundary must exist.
  ASSERT_FALSE(result.boundaries.empty());
  for (const FrontierBoundary& boundary : result.boundaries) {
    EXPECT_LT(boundary.platform_a, boundary.platform_b);
    ASSERT_FALSE(boundary.points.empty());
    // Points sorted lexicographically and inside the grid's bounds.
    for (std::size_t i = 1; i < boundary.points.size(); ++i) {
      EXPECT_LE(boundary.points[i - 1], boundary.points[i]);
    }
    for (const std::array<double, 2>& point : boundary.points) {
      EXPECT_GE(point[0], result.axis_values[0].front());
      EXPECT_LE(point[0], result.axis_values[0].back());
      EXPECT_GE(point[1], result.axis_values[1].front());
      EXPECT_LE(point[1], result.axis_values[1].back());
    }
  }
}

TEST(FrontierSearch, ObjectiveSelectsTheComparedMetric) {
  FrontierProblem embodied = small_problem();
  embodied.frontier.objective = FrontierObjective::embodied;
  FrontierProblem operational = small_problem();
  operational.frontier.objective = FrontierObjective::operational;
  const FrontierResult em = FrontierSearch(std::move(embodied)).run();
  const FrontierResult op = FrontierSearch(std::move(operational)).run();
  // Embodied excludes use-phase energy, operational excludes fab: the two
  // orderings cannot produce identical objective tables.
  EXPECT_NE(em.cells.front().objective_kg, op.cells.front().objective_kg);
}

TEST(FrontierSearch, NodeAxisNeedsARetargetHookAndMarksInfeasibleCells) {
  FrontierProblem problem = small_problem();
  problem.frontier.axes = {
      FrontierAxisSpec::linear(FrontierVariable::app_count, 1, 3, 3),
      FrontierAxisSpec::node_list({tech::ProcessNode::n28, tech::ProcessNode::n7})};
  EXPECT_THROW((void)FrontierSearch(problem), std::invalid_argument);

  problem.retarget = [](const device::ChipSpec& chip, tech::ProcessNode node) {
    return scenario::retarget_to_node(chip, node);
  };
  const FrontierResult result = FrontierSearch(std::move(problem)).run();
  EXPECT_EQ(result.cells.size(), 6u);
  for (const FrontierCell& cell : result.cells) {
    EXPECT_GE(cell.winner, 0);  // both nodes feasible for these dies
  }
}

TEST(FrontierSearch, ValidationRejectsBadProblems) {
  FrontierProblem one_platform = small_problem();
  one_platform.platform_names = {"asic"};
  one_platform.chips.resize(1);
  EXPECT_THROW((void)FrontierSearch(std::move(one_platform)), std::invalid_argument);

  FrontierProblem misaligned = small_problem();
  misaligned.chips.pop_back();
  EXPECT_THROW((void)FrontierSearch(std::move(misaligned)), std::invalid_argument);
}

// -- confidence pass ----------------------------------------------------------

FrontierProblem confidence_problem(int threads) {
  FrontierProblem problem = small_problem(threads);
  problem.frontier.confidence_samples = 16;
  problem.frontier.seed = 5;
  for (const scenario::ParameterRange& range : scenario::table1_ranges()) {
    SampledParameter sampled;
    sampled.distribution = core::ParamDistribution{
        .parameter = range.name, .low = range.low, .high = range.high};
    sampled.apply = range.apply;
    problem.sampled.push_back(std::move(sampled));
  }
  return problem;
}

TEST(FrontierConfidence, FractionsAreInRangeAndSeedDependent) {
  const FrontierResult result = FrontierSearch(confidence_problem(1)).run();
  EXPECT_EQ(result.confidence_samples, 16);
  for (const FrontierCell& cell : result.cells) {
    EXPECT_GE(cell.confidence, 0.0);
    EXPECT_LE(cell.confidence, 1.0);
  }
  FrontierProblem reseeded = confidence_problem(1);
  reseeded.frontier.seed = 6;
  const FrontierResult other = FrontierSearch(std::move(reseeded)).run();
  // Same point estimates, possibly different confidence: at minimum the
  // grids agree on winners.
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    EXPECT_EQ(result.cells[i].winner, other.cells[i].winner);
  }
}

// -- determinism --------------------------------------------------------------

TEST(FrontierDeterminism, BitIdenticalAcrossThreadCounts) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::frontier, device::Domain::dnn);
  spec.name = "frontier determinism pin";
  spec.platforms = {scenario::PlatformRef{.name = "asic"},
                    scenario::PlatformRef{.name = "fpga"},
                    scenario::PlatformRef{.name = "gpu"},
                    scenario::PlatformRef{.name = "cpu"}};
  spec.frontier.confidence_samples = 12;
  const std::string baseline =
      scenario::result_to_json(
          scenario::Engine(scenario::EngineOptions{.threads = 1}).run(spec))
          .dump();
  for (const int threads : {2, 8}) {
    const std::string other =
        scenario::result_to_json(
            scenario::Engine(scenario::EngineOptions{.threads = threads}).run(spec))
            .dump();
    EXPECT_EQ(other, baseline) << threads << " threads";
  }
}

}  // namespace
}  // namespace greenfpga::dse
