/// Tests for CSV writing and text-table rendering.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "io/csv.hpp"
#include "io/table.hpp"

namespace greenfpga::io {
namespace {

TEST(Csv, PlainCellsPassThrough) {
  CsvWriter csv;
  csv.add_row({"a", "b", "c"});
  csv.add_row({"1", "2", "3"});
  EXPECT_EQ(csv.render(), "a,b,c\n1,2,3\n");
}

TEST(Csv, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("with\nnewline"), "\"with\nnewline\"");
}

TEST(Csv, RaggedRowsAllowed) {
  CsvWriter csv;
  csv.add_row({"a"});
  csv.add_row({"b", "c"});
  EXPECT_EQ(csv.render(), "a\nb,c\n");
}

TEST(Csv, WriteFileCreatesParentDirectories) {
  const std::string path = ::testing::TempDir() + "/greenfpga_csv/sub/out.csv";
  CsvWriter csv;
  csv.add_row({"x", "y"});
  csv.write_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
}

TEST(TextTable, AlignsColumns) {
  TextTable table;
  table.set_headers({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "23"});
  const std::string out = table.render();
  // Default alignment: first column left, rest right.
  EXPECT_NE(out.find("| a      |     1 |"), std::string::npos) << out;
  EXPECT_NE(out.find("| longer |    23 |"), std::string::npos) << out;
}

TEST(TextTable, CustomAlignment) {
  TextTable table;
  table.set_headers({"n", "s"});
  table.set_alignments({Align::right, Align::left});
  table.add_row({"1", "ab"});
  table.add_row({"10", "c"});
  const std::string out = table.render();
  EXPECT_NE(out.find("|  1 | ab |"), std::string::npos) << out;
  EXPECT_NE(out.find("| 10 | c  |"), std::string::npos) << out;
}

TEST(TextTable, RuleSeparatesSections) {
  TextTable table;
  table.set_headers({"a"});
  table.add_row({"1"});
  table.add_rule();
  table.add_row({"2"});
  const std::string out = table.render();
  // header rule + top + bottom + explicit = 4 dashes lines
  std::size_t rules = 0;
  std::istringstream stream(out);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TextTable, RowArityMismatchThrows) {
  TextTable table;
  table.set_headers({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, AlignmentArityMismatchThrows) {
  TextTable table;
  table.set_headers({"a", "b"});
  EXPECT_THROW(table.set_alignments({Align::left}), std::invalid_argument);
}

TEST(TextTable, HeadersAfterRowsThrows) {
  TextTable table;
  table.set_headers({"a"});
  table.add_row({"1"});
  EXPECT_THROW(table.set_headers({"b"}), std::logic_error);
}

TEST(TextTable, EmptyTableRendersNothing) {
  const TextTable table;
  EXPECT_EQ(table.render(), "");
}

}  // namespace
}  // namespace greenfpga::io
