/// Tests for the Table 1 sensitivity machinery (tornado + Monte Carlo).

#include <gtest/gtest.h>

#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "scenario/sensitivity.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {
namespace {

using namespace units::unit;
using device::Domain;

TEST(Table1Ranges, CoversEveryTableRow) {
  const auto ranges = table1_ranges();
  ASSERT_EQ(ranges.size(), 10u);
  for (const ParameterRange& range : ranges) {
    EXPECT_FALSE(range.name.empty());
    EXPECT_LT(range.low, range.high) << range.name;
    EXPECT_TRUE(static_cast<bool>(range.apply)) << range.name;
  }
}

TEST(Table1Ranges, AppliersWriteTheRightField) {
  const auto ranges = table1_ranges();
  core::ModelSuite suite = core::paper_suite();
  for (const ParameterRange& range : ranges) {
    range.apply(suite, range.high);
  }
  EXPECT_DOUBLE_EQ(suite.fab.recycled_material_fraction, 1.0);
  EXPECT_DOUBLE_EQ(suite.eol.recycled_fraction, 1.0);
  EXPECT_DOUBLE_EQ(suite.eol.recycle_credit_factor.in(mtco2e_per_ton), 29.83);
  EXPECT_DOUBLE_EQ(suite.eol.discard_factor.in(mtco2e_per_ton), 2.08);
  EXPECT_DOUBLE_EQ(suite.appdev.frontend_time.in(months), 2.5);
  EXPECT_DOUBLE_EQ(suite.appdev.backend_time.in(months), 1.5);
  EXPECT_DOUBLE_EQ(suite.design.annual_energy.in(gwh), 7.3);
  EXPECT_DOUBLE_EQ(suite.design.intensity.in(g_per_kwh), 700.0);
  EXPECT_DOUBLE_EQ(suite.design.company_employees, 160e3);
  EXPECT_DOUBLE_EQ(suite.design.project_duration.in(years), 3.0);
}

TEST(Tornado, SortedByDescendingSwing) {
  const auto entries =
      tornado(core::paper_suite(), device::domain_testcase(Domain::dnn),
              core::paper_schedule(Domain::dnn), table1_ranges());
  ASSERT_EQ(entries.size(), 10u);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1].swing(), entries[i].swing());
  }
}

TEST(Tornado, DesignKnobsMatterForDnn) {
  // The DNN story is design-amortisation driven, so at least one design
  // parameter must rank in the top three.
  const auto entries =
      tornado(core::paper_suite(), device::domain_testcase(Domain::dnn),
              core::paper_schedule(Domain::dnn), table1_ranges());
  bool design_in_top3 = false;
  for (std::size_t i = 0; i < 3; ++i) {
    if (entries[i].name.find("T_proj") != std::string::npos ||
        entries[i].name.find("E_des") != std::string::npos ||
        entries[i].name.find("C_src_des") != std::string::npos ||
        entries[i].name.find("N_emp") != std::string::npos) {
      design_in_top3 = true;
    }
  }
  EXPECT_TRUE(design_in_top3);
}

TEST(Tornado, RatiosAreFinitePositive) {
  const auto entries =
      tornado(core::paper_suite(), device::domain_testcase(Domain::crypto),
              core::paper_schedule(Domain::crypto), table1_ranges());
  for (const TornadoEntry& entry : entries) {
    EXPECT_GT(entry.ratio_at_low, 0.0) << entry.name;
    EXPECT_GT(entry.ratio_at_high, 0.0) << entry.name;
    EXPECT_TRUE(std::isfinite(entry.ratio_at_low)) << entry.name;
  }
}

TEST(MonteCarlo, DeterministicForFixedSeed) {
  const auto testcase = device::domain_testcase(Domain::dnn);
  const auto schedule = core::paper_schedule(Domain::dnn);
  const auto a = monte_carlo(core::paper_suite(), testcase, schedule, table1_ranges(), 64, 7);
  const auto b = monte_carlo(core::paper_suite(), testcase, schedule, table1_ranges(), 64, 7);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
  EXPECT_DOUBLE_EQ(a.fpga_win_fraction, b.fpga_win_fraction);
}

TEST(MonteCarlo, DifferentSeedsDiffer) {
  const auto testcase = device::domain_testcase(Domain::dnn);
  const auto schedule = core::paper_schedule(Domain::dnn);
  const auto a = monte_carlo(core::paper_suite(), testcase, schedule, table1_ranges(), 64, 1);
  const auto b = monte_carlo(core::paper_suite(), testcase, schedule, table1_ranges(), 64, 2);
  EXPECT_NE(a.mean, b.mean);
}

TEST(MonteCarlo, PercentilesOrdered) {
  const auto result =
      monte_carlo(core::paper_suite(), device::domain_testcase(Domain::dnn),
                  core::paper_schedule(Domain::dnn), table1_ranges(), 128, 42);
  EXPECT_LE(result.p05, result.p50);
  EXPECT_LE(result.p50, result.p95);
  EXPECT_GT(result.stddev, 0.0);
  EXPECT_EQ(result.samples, 128);
  EXPECT_GE(result.fpga_win_fraction, 0.0);
  EXPECT_LE(result.fpga_win_fraction, 1.0);
}

TEST(MonteCarlo, CryptoWinsRobustly) {
  // Crypto's FPGA advantage should survive nearly all Table 1 samples.
  const auto result =
      monte_carlo(core::paper_suite(), device::domain_testcase(Domain::crypto),
                  core::paper_schedule(Domain::crypto), table1_ranges(), 128, 42);
  EXPECT_GT(result.fpga_win_fraction, 0.95);
}

TEST(MonteCarlo, InvalidSampleCountThrows) {
  EXPECT_THROW(monte_carlo(core::paper_suite(), device::domain_testcase(Domain::dnn),
                           core::paper_schedule(Domain::dnn), table1_ranges(), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace greenfpga::scenario
