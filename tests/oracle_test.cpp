/// Oracle tests: a second, deliberately naive implementation of the
/// paper's equations, written in straight-line arithmetic with no shared
/// code, cross-checked against the production LifecycleModel on a grid of
/// randomised configurations.  A bug in either implementation that changes
/// any Eq. (1)-(7) term shows up as a mismatch here.

#include <gtest/gtest.h>

#include <random>

#include "core/lifecycle_model.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "device/iso_performance.hpp"
#include "units/units.hpp"

namespace greenfpga {
namespace {

using namespace units::unit;
using device::Domain;

/// Every input the naive oracle needs, in plain doubles / SI-ish units.
struct OracleInputs {
  // Device.
  double die_area_mm2 = 0.0;
  double peak_power_w = 0.0;
  double silicon_gates = 0.0;
  bool is_fpga = false;
  // Fab (per cm^2 of wafer).
  double fab_ci_kg_per_kwh = 0.0;
  double epa_kwh_per_cm2 = 0.0;
  double gpa_kg_per_cm2 = 0.0;
  double mpa_kg_per_cm2 = 0.0;  // already rho-blended
  double yield = 1.0;
  // Package.
  double substrate_kg_per_cm2 = 0.0;
  double assembly_kg = 0.0;
  double footprint_ratio = 0.0;
  // EOL.
  double mass_kg = 0.0;
  double delta = 0.0;
  double dis_kg_per_kg = 0.0;
  double rec_kg_per_kg = 0.0;
  // Design (Eq. 4).
  double e_des_kwh = 0.0;
  double ci_des_kg_per_kwh = 0.0;
  double company_emp = 1.0;
  double team = 0.0;
  double avg_gates = 1.0;
  double t_proj_years = 0.0;
  double regularity = 1.0;
  // Operation.
  double ci_use_kg_per_kwh = 0.0;
  double duty = 0.0;
  double pue = 1.0;
  // App dev (Eq. 7).
  double fe_be_hours = 0.0;
  double dev_power_kw = 0.0;
  double dev_systems = 0.0;
  double ci_dev_kg_per_kwh = 0.0;
  double config_hours = 0.0;
  // Schedule.
  int n_app = 0;
  double t_years = 0.0;
  double volume = 0.0;
};

/// Straight-line Eqs. (1)-(7).
double oracle_total_kg(const OracleInputs& in) {
  const double area_cm2 = in.die_area_mm2 / 100.0;
  const double cpa = in.fab_ci_kg_per_kwh * in.epa_kwh_per_cm2 + in.gpa_kg_per_cm2 +
                     in.mpa_kg_per_cm2;
  const double mfg = cpa * area_cm2 / in.yield;
  const double pkg =
      in.substrate_kg_per_cm2 * area_cm2 * in.footprint_ratio + in.assembly_kg;
  const double eol =
      (1.0 - in.delta) * in.dis_kg_per_kg * in.mass_kg -
      in.delta * in.rec_kg_per_kg * in.mass_kg;
  const double per_chip = mfg + pkg + eol;

  const double effective_gates = in.is_fpga ? in.silicon_gates * in.regularity
                                            : in.silicon_gates;
  const double design = (in.e_des_kwh * in.ci_des_kg_per_kwh / in.company_emp) * in.team *
                        (effective_gates / in.avg_gates) * in.t_proj_years;

  const double op_per_chip_year =
      in.peak_power_w / 1000.0 * in.duty * in.pue * 8760.0 * in.ci_use_kg_per_kwh;

  const double dev_per_app =
      in.dev_power_kw * in.dev_systems * in.fe_be_hours * in.ci_dev_kg_per_kwh;
  const double config_per_chip =
      in.dev_power_kw * in.config_hours * in.ci_dev_kg_per_kwh;

  if (in.is_fpga) {
    // Eq. (2) + Eq. (3) paid once.
    double total = design + in.volume * per_chip;
    total += in.n_app * (in.volume * op_per_chip_year * in.t_years);
    total += in.n_app * (dev_per_app + in.volume * config_per_chip);
    return total;
  }
  // Eq. (1): everything recurs per application; ASIC has no FE/BE/config.
  return in.n_app *
         (design + in.volume * per_chip + in.volume * op_per_chip_year * in.t_years);
}

/// Build matching (model, oracle-inputs) pairs from a seeded RNG.
struct Configured {
  core::ModelSuite suite;
  device::ChipSpec chip;
  workload::Schedule schedule;
  OracleInputs inputs;
};

Configured random_configuration(unsigned seed, bool fpga) {
  std::mt19937 rng(seed);
  const auto uniform = [&](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };

  Configured out;
  core::ModelSuite& suite = out.suite;
  suite = core::paper_suite();
  suite.design.annual_energy = uniform(2.0, 7.3) * gwh;
  suite.design.intensity = uniform(30.0, 700.0) * g_per_kwh;
  suite.design.company_employees = uniform(20e3, 160e3);
  suite.design.product_team_size = uniform(100.0, 1500.0);
  suite.design.average_product_gates = uniform(2e8, 2e9);
  suite.design.project_duration = uniform(1.0, 3.0) * years;
  suite.design.fpga_regularity_factor = uniform(0.1, 1.0);
  suite.appdev.frontend_time = uniform(1.5, 2.5) * months;
  suite.appdev.backend_time = uniform(0.5, 1.5) * months;
  suite.appdev.config_time = uniform(1.0, 30.0) * minutes;
  suite.appdev.dev_system_power = uniform(100.0, 500.0) * w;
  suite.appdev.dev_systems = uniform(1.0, 30.0);
  suite.appdev.dev_intensity = uniform(50.0, 700.0) * g_per_kwh;
  suite.fab.fab_energy_intensity = uniform(50.0, 700.0) * g_per_kwh;
  suite.fab.recycled_material_fraction = uniform(0.0, 1.0);
  suite.operation.use_intensity = uniform(50.0, 700.0) * g_per_kwh;
  suite.operation.duty_cycle = uniform(0.01, 0.9);
  suite.operation.power_usage_effectiveness = uniform(1.0, 1.6);
  suite.eol.recycled_fraction = uniform(0.0, 1.0);
  suite.eol.discard_factor = uniform(0.03, 2.08) * mtco2e_per_ton;
  suite.eol.recycle_credit_factor = uniform(7.65, 29.83) * mtco2e_per_ton;

  device::ChipSpec& chip = out.chip;
  chip.name = fpga ? "oracle-fpga" : "oracle-asic";
  chip.kind = fpga ? device::ChipKind::fpga : device::ChipKind::asic;
  chip.node = tech::ProcessNode::n10;
  chip.die_area = uniform(50.0, 700.0) * mm2;
  chip.peak_power = uniform(0.5, 50.0) * w;
  chip.capacity_gates = tech::node_info(chip.node).gates_in_area(chip.die_area);

  workload::Application app;
  app.name = "oracle-app";
  app.lifetime = uniform(0.25, 3.0) * years;
  app.volume = uniform(1e3, 2e6);
  const int n_app = std::uniform_int_distribution<int>(1, 10)(rng);
  out.schedule = workload::homogeneous_schedule(n_app, app);

  // Mirror everything into the oracle's flat inputs.
  const core::LifecycleModel model(suite);
  const act::FabNodeData& fab = act::fab_node_data(chip.node);
  OracleInputs& inputs = out.inputs;
  inputs.die_area_mm2 = chip.die_area.in(mm2);
  inputs.peak_power_w = chip.peak_power.in(w);
  inputs.silicon_gates = tech::node_info(chip.node).gates_in_area(chip.die_area);
  inputs.is_fpga = fpga;
  inputs.fab_ci_kg_per_kwh = suite.fab.fab_energy_intensity.in(kg_per_kwh);
  inputs.epa_kwh_per_cm2 = fab.energy_per_area.in(kwh_per_cm2);
  inputs.gpa_kg_per_cm2 = fab.gas_per_area.in(kg_per_cm2);
  const double rho = suite.fab.recycled_material_fraction;
  inputs.mpa_kg_per_cm2 = rho * fab.materials_recycled.in(kg_per_cm2) +
                          (1.0 - rho) * fab.materials_new.in(kg_per_cm2);
  inputs.yield = model.fab_model().yield(chip.node, chip.die_area);
  inputs.substrate_kg_per_cm2 = suite.package.substrate_per_area.in(kg_per_cm2);
  inputs.assembly_kg = suite.package.assembly_overhead.in(kg_co2e);
  inputs.footprint_ratio = suite.package.footprint_ratio;
  inputs.mass_kg = model.package_model().package_mass(chip.die_area).in(kg);
  inputs.delta = suite.eol.recycled_fraction;
  inputs.dis_kg_per_kg = suite.eol.discard_factor.in(kg_per_kg);
  inputs.rec_kg_per_kg = suite.eol.recycle_credit_factor.in(kg_per_kg);
  inputs.e_des_kwh = suite.design.annual_energy.in(kwh);
  inputs.ci_des_kg_per_kwh = suite.design.intensity.in(kg_per_kwh);
  inputs.company_emp = suite.design.company_employees;
  inputs.team = suite.design.product_team_size;
  inputs.avg_gates = suite.design.average_product_gates;
  inputs.t_proj_years = suite.design.project_duration.in(years);
  inputs.regularity = suite.design.fpga_regularity_factor;
  inputs.ci_use_kg_per_kwh = suite.operation.use_intensity.in(kg_per_kwh);
  inputs.duty = suite.operation.duty_cycle;
  inputs.pue = suite.operation.power_usage_effectiveness;
  inputs.fe_be_hours = (suite.appdev.frontend_time + suite.appdev.backend_time).in(hours);
  inputs.dev_power_kw = suite.appdev.dev_system_power.in(kw);
  inputs.dev_systems = suite.appdev.dev_systems;
  inputs.ci_dev_kg_per_kwh = suite.appdev.dev_intensity.in(kg_per_kwh);
  inputs.config_hours = suite.appdev.config_time.in(hours);
  inputs.n_app = n_app;
  inputs.t_years = app.lifetime.in(years);
  inputs.volume = app.volume;
  return out;
}

class OracleCrossCheck : public ::testing::TestWithParam<unsigned> {};

TEST_P(OracleCrossCheck, FpgaTotalsMatchNaiveArithmetic) {
  const Configured configured = random_configuration(GetParam(), /*fpga=*/true);
  const core::LifecycleModel model(configured.suite);
  const double production =
      model.evaluate_fpga(configured.chip, configured.schedule).total.total().canonical();
  const double oracle = oracle_total_kg(configured.inputs);
  EXPECT_NEAR(production, oracle, std::fabs(oracle) * 1e-9) << "seed " << GetParam();
}

TEST_P(OracleCrossCheck, AsicTotalsMatchNaiveArithmetic) {
  const Configured configured = random_configuration(GetParam() + 1000, /*fpga=*/false);
  const core::LifecycleModel model(configured.suite);
  const double production =
      model.evaluate_asic(configured.chip, configured.schedule).total.total().canonical();
  const double oracle = oracle_total_kg(configured.inputs);
  EXPECT_NEAR(production, oracle, std::fabs(oracle) * 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleCrossCheck,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u,
                                           144u, 233u));

}  // namespace
}  // namespace greenfpga
