/// Tests for the total-CFP lifecycle model (Eqs. 1-3) and the comparator.

#include <gtest/gtest.h>

#include "core/comparator.hpp"
#include "core/lifecycle_model.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "units/units.hpp"
#include "workload/application.hpp"

namespace greenfpga::core {
namespace {

using namespace units::unit;

LifecycleModel paper_model() { return LifecycleModel(paper_suite()); }

TEST(CfpBreakdown, ComponentsSumToTotal) {
  CfpBreakdown b;
  b.design = 1.0 * t_co2e;
  b.manufacturing = 2.0 * t_co2e;
  b.packaging = 0.5 * t_co2e;
  b.eol = -0.1 * t_co2e;
  b.operational = 3.0 * t_co2e;
  b.app_dev = 0.2 * t_co2e;
  EXPECT_DOUBLE_EQ(b.embodied().in(t_co2e), 3.4);
  EXPECT_DOUBLE_EQ(b.deployment().in(t_co2e), 3.2);
  EXPECT_DOUBLE_EQ(b.total().in(t_co2e), 6.6);
}

TEST(CfpBreakdown, AdditionAndScaling) {
  CfpBreakdown a;
  a.design = 1.0 * t_co2e;
  a.operational = 2.0 * t_co2e;
  CfpBreakdown b;
  b.design = 0.5 * t_co2e;
  b.eol = -0.25 * t_co2e;
  const CfpBreakdown sum = a + b;
  EXPECT_DOUBLE_EQ(sum.design.in(t_co2e), 1.5);
  EXPECT_DOUBLE_EQ(sum.eol.in(t_co2e), -0.25);
  const CfpBreakdown scaled = sum * 2.0;
  EXPECT_DOUBLE_EQ(scaled.design.in(t_co2e), 3.0);
  EXPECT_DOUBLE_EQ(scaled.total().in(t_co2e), 2.0 * sum.total().in(t_co2e));
}

TEST(LifecycleModel, PerChipEmbodiedHasNoDesignOrDeployment) {
  const LifecycleModel model = paper_model();
  const CfpBreakdown per_chip = model.per_chip_embodied(device::industry_fpga1());
  EXPECT_EQ(per_chip.design.canonical(), 0.0);
  EXPECT_EQ(per_chip.operational.canonical(), 0.0);
  EXPECT_EQ(per_chip.app_dev.canonical(), 0.0);
  EXPECT_GT(per_chip.manufacturing.canonical(), 0.0);
  EXPECT_GT(per_chip.packaging.canonical(), 0.0);
  EXPECT_NE(per_chip.eol.canonical(), 0.0);
}

TEST(LifecycleModel, AsicPaysDesignPerApplication) {
  const LifecycleModel model = paper_model();
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  const auto one = model.evaluate_asic(testcase.asic, paper_schedule(device::Domain::dnn, 1,
                                                                     2.0 * years, 1e6));
  const auto five = model.evaluate_asic(testcase.asic, paper_schedule(device::Domain::dnn, 5,
                                                                      2.0 * years, 1e6));
  EXPECT_NEAR(five.total.design.canonical(), 5.0 * one.total.design.canonical(), 1e-6);
  EXPECT_NEAR(five.total.manufacturing.canonical(),
              5.0 * one.total.manufacturing.canonical(), 1e-3);
  EXPECT_DOUBLE_EQ(five.chips_manufactured, 5e6);
}

TEST(LifecycleModel, FpgaPaysEmbodiedOnce) {
  const LifecycleModel model = paper_model();
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  const auto one = model.evaluate_fpga(testcase.fpga, paper_schedule(device::Domain::dnn, 1,
                                                                     2.0 * years, 1e6));
  const auto five = model.evaluate_fpga(testcase.fpga, paper_schedule(device::Domain::dnn, 5,
                                                                      2.0 * years, 1e6));
  // Reconfigurability: embodied CFP identical regardless of app count.
  EXPECT_DOUBLE_EQ(five.total.design.canonical(), one.total.design.canonical());
  EXPECT_DOUBLE_EQ(five.total.manufacturing.canonical(),
                   one.total.manufacturing.canonical());
  EXPECT_DOUBLE_EQ(five.chips_manufactured, 1e6);
  // Deployment scales with the number of applications.
  EXPECT_NEAR(five.total.operational.canonical(), 5.0 * one.total.operational.canonical(),
              1e-6);
}

TEST(LifecycleModel, OperationalScalesWithLifetimeAndPowerRatio) {
  const LifecycleModel model = paper_model();
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  const workload::Schedule schedule = paper_schedule(device::Domain::dnn, 1, 2.0 * years, 1e6);
  const auto asic = model.evaluate_asic(testcase.asic, schedule);
  const auto fpga = model.evaluate_fpga(testcase.fpga, schedule);
  // Table 2 DNN power ratio = 3x at iso-performance.
  EXPECT_NEAR(fpga.total.operational.canonical() / asic.total.operational.canonical(), 3.0,
              1e-9);
}

TEST(LifecycleModel, MultiFpgaApplicationsScaleFleet) {
  const LifecycleModel model = paper_model();
  device::ChipSpec fpga = device::industry_fpga1();
  workload::Application app;
  app.name = "big-app";
  app.lifetime = 2.0 * years;
  app.volume = 1e3;
  app.size_gates = fpga.capacity_gates * 2.5;  // needs 3 FPGAs per unit
  const auto result = model.evaluate_fpga(fpga, {app});
  EXPECT_DOUBLE_EQ(result.chips_manufactured, 3e3);
  ASSERT_EQ(result.per_application.size(), 1u);
  EXPECT_EQ(result.per_application[0].chips_per_unit, 3);
}

TEST(LifecycleModel, FleetSizedForLargestApplication) {
  const LifecycleModel model = paper_model();
  const device::ChipSpec fpga = device::industry_fpga1();
  workload::Application small;
  small.name = "small";
  small.volume = 1e3;
  workload::Application large;
  large.name = "large";
  large.volume = 5e3;
  const auto result = model.evaluate_fpga(fpga, {small, large});
  EXPECT_DOUBLE_EQ(result.chips_manufactured, 5e3);
}

TEST(LifecycleModel, PerApplicationAttributionsSumToTotals) {
  const LifecycleModel model = paper_model();
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::imgproc);
  const workload::Schedule schedule = paper_schedule(device::Domain::imgproc);
  const auto asic = model.evaluate_asic(testcase.asic, schedule);
  CfpBreakdown accumulated;
  for (const ApplicationCfp& app : asic.per_application) {
    accumulated += app.cfp;
  }
  EXPECT_NEAR(accumulated.total().canonical(), asic.total.total().canonical(), 1e-6);
}

TEST(LifecycleModel, KindMismatchThrows) {
  const LifecycleModel model = paper_model();
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  const workload::Schedule schedule = paper_schedule(device::Domain::dnn);
  EXPECT_THROW(model.evaluate_fpga(testcase.asic, schedule), std::invalid_argument);
  EXPECT_THROW(model.evaluate_asic(testcase.fpga, schedule), std::invalid_argument);
}

TEST(LifecycleModel, EvaluateDispatchesOnKind) {
  const LifecycleModel model = paper_model();
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  const workload::Schedule schedule = paper_schedule(device::Domain::dnn);
  EXPECT_EQ(model.evaluate(testcase.asic, schedule).kind, device::ChipKind::asic);
  EXPECT_EQ(model.evaluate(testcase.fpga, schedule).kind, device::ChipKind::fpga);
}

TEST(LifecycleModel, EmptyScheduleThrows) {
  const LifecycleModel model = paper_model();
  EXPECT_THROW(model.evaluate_asic(device::industry_asic1(), {}), std::invalid_argument);
}

TEST(LifecycleModel, CopyRebindsInternalPointers) {
  // The package model borrows the fab model; a copied LifecycleModel must
  // not dangle into the source object.
  auto source = std::make_unique<LifecycleModel>(paper_suite());
  const LifecycleModel copy = *source;
  const auto before = copy.per_chip_embodied(device::industry_fpga1());
  source.reset();
  const auto after = copy.per_chip_embodied(device::industry_fpga1());
  EXPECT_DOUBLE_EQ(before.total().canonical(), after.total().canonical());
}

TEST(LifecycleModel, PerYearAccountingScalesAppDev) {
  ModelSuite one_time = paper_suite();
  ModelSuite per_year = paper_suite();
  per_year.appdev.accounting = AppDevAccounting::per_year;
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  const workload::Schedule schedule =
      paper_schedule(device::Domain::dnn, 3, 2.0 * years, 1e6);
  const auto base = LifecycleModel(one_time).evaluate_fpga(testcase.fpga, schedule);
  const auto literal = LifecycleModel(per_year).evaluate_fpga(testcase.fpga, schedule);
  // Literal Eq. (2) multiplies app-dev by T_i = 2 years.
  EXPECT_NEAR(literal.total.app_dev.canonical(), 2.0 * base.total.app_dev.canonical(),
              1e-6);
  // Everything else is unchanged.
  EXPECT_DOUBLE_EQ(literal.total.embodied().canonical(), base.total.embodied().canonical());
  EXPECT_DOUBLE_EQ(literal.total.operational.canonical(),
                   base.total.operational.canonical());
}

TEST(Comparator, RatioAndVerdict) {
  const LifecycleModel model = paper_model();
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::crypto);
  const Comparison comparison =
      compare(model, testcase, paper_schedule(device::Domain::crypto));
  EXPECT_GT(comparison.ratio(), 0.0);
  EXPECT_LT(comparison.ratio(), 1.0);  // crypto: FPGA always greener
  EXPECT_EQ(comparison.verdict(), Verdict::fpga_lower);
}

TEST(Comparator, TieDetection) {
  Comparison comparison;
  comparison.asic.total.operational = 100.0 * t_co2e;
  comparison.fpga.total.operational = 100.00001 * t_co2e;
  EXPECT_EQ(comparison.verdict(), Verdict::tie);
}

TEST(Comparator, VerdictNames) {
  EXPECT_EQ(to_string(Verdict::fpga_lower), "FPGA");
  EXPECT_EQ(to_string(Verdict::asic_lower), "ASIC");
  EXPECT_EQ(to_string(Verdict::tie), "tie");
}

// Property: FPGA:ASIC ratio decreases monotonically with app count for every
// domain (reuse always helps the FPGA).
class RatioMonotonicity : public ::testing::TestWithParam<device::Domain> {};

TEST_P(RatioMonotonicity, RatioFallsWithAppCount) {
  const LifecycleModel model = paper_model();
  const device::DomainTestcase testcase = device::domain_testcase(GetParam());
  double previous = std::numeric_limits<double>::infinity();
  for (int k = 1; k <= 8; ++k) {
    const Comparison comparison =
        compare(model, testcase, paper_schedule(GetParam(), k, 2.0 * years, 1e6));
    EXPECT_LT(comparison.ratio(), previous) << "k = " << k;
    previous = comparison.ratio();
  }
}

INSTANTIATE_TEST_SUITE_P(AllDomains, RatioMonotonicity,
                         ::testing::Values(device::Domain::dnn, device::Domain::imgproc,
                                           device::Domain::crypto));

}  // namespace
}  // namespace greenfpga::core
