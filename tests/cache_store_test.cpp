/// Tests for the content-addressed disk cache store: byte-identical
/// round-trips through the canonical result JSON, absent/corrupt/
/// truncated files degrading to miss, full-key verification rejecting
/// fingerprint collisions, directory creation, and startup failure on an
/// unusable path.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>

#include "io/hash.hpp"
#include "io/json.hpp"
#include "scenario/cache_store.hpp"
#include "scenario/engine.hpp"
#include "scenario/result_io.hpp"

namespace greenfpga::scenario {
namespace {

namespace fs = std::filesystem;

ScenarioResult small_result(int app_count) {
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::compare, device::Domain::dnn);
  spec.name = "store test " + std::to_string(app_count);
  spec.schedule.app_count = app_count;
  return Engine(EngineOptions{.threads = 1}).run(spec);
}

std::string canonical(const ScenarioResult& result) {
  return result_to_json(result).dump();
}

/// A per-test scratch directory (unique per test name: ctest runs test
/// cases as parallel processes), wiped on both ends.
class CacheStoreTest : public ::testing::Test {
 protected:
  CacheStoreTest()
      : dir_(::testing::TempDir() + "/greenfpga_cache_store_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()) {
    fs::remove_all(dir_);
  }
  ~CacheStoreTest() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(CacheStoreTest, RoundTripIsByteIdenticalAndCreatesTheDirectory) {
  ASSERT_FALSE(fs::exists(dir_ + "/nested"));
  CacheStore store(dir_ + "/nested");  // parents created on construction
  const ScenarioResult result = small_result(1);
  ASSERT_TRUE(store.save("the key", result));
  ASSERT_TRUE(fs::is_regular_file(store.path_for("the key")));
  const std::shared_ptr<const ScenarioResult> loaded = store.load("the key");
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(canonical(*loaded), canonical(result));
}

TEST_F(CacheStoreTest, PathIsTheKeyFingerprint) {
  const CacheStore store(dir_);
  const std::string key = "spec content bytes";
  const std::string expected_name = io::hex64(io::fnv1a64(key)) + ".json";
  EXPECT_EQ(fs::path(store.path_for(key)).filename().string(), expected_name);
}

TEST_F(CacheStoreTest, AbsentEntryLoadsAsNull) {
  const CacheStore store(dir_);
  EXPECT_EQ(store.load("never saved"), nullptr);
}

TEST_F(CacheStoreTest, CorruptOrTruncatedFilesLoadAsNull) {
  CacheStore store(dir_);
  ASSERT_TRUE(store.save("k", small_result(1)));
  // Unparsable JSON.
  std::ofstream(store.path_for("k"), std::ios::trunc) << "{ not json";
  EXPECT_EQ(store.load("k"), nullptr);
  // Valid JSON, wrong schema.
  std::ofstream(store.path_for("k"), std::ios::trunc) << R"({"key": "k"})";
  EXPECT_EQ(store.load("k"), nullptr);
  // Empty file (a crashed writer can't leave this -- renames are atomic
  // -- but an operator's stray file can).
  std::ofstream(store.path_for("k"), std::ios::trunc);
  EXPECT_EQ(store.load("k"), nullptr);
}

TEST_F(CacheStoreTest, EmbeddedKeyMismatchIsAMiss) {
  // The file name is only a 64-bit fingerprint; a (forced) collision
  // must read as a miss for the other key, never as its answer.
  CacheStore store(dir_);
  const ScenarioResult result = small_result(1);
  ASSERT_TRUE(store.save("actual key", result));
  io::Json entry = io::parse_json_file(store.path_for("actual key"));
  EXPECT_EQ(entry.at("key").as_string(), "actual key");
  // Impersonate a collision: copy the file to another key's slot.
  fs::copy_file(store.path_for("actual key"), store.path_for("other key"));
  EXPECT_EQ(store.load("other key"), nullptr);
  // The honest key still loads.
  EXPECT_NE(store.load("actual key"), nullptr);
}

TEST_F(CacheStoreTest, DistinctKeysCoexist) {
  CacheStore store(dir_);
  const ScenarioResult one = small_result(1);
  const ScenarioResult two = small_result(2);
  ASSERT_TRUE(store.save("one", one));
  ASSERT_TRUE(store.save("two", two));
  EXPECT_EQ(canonical(*store.load("one")), canonical(one));
  EXPECT_EQ(canonical(*store.load("two")), canonical(two));
}

TEST_F(CacheStoreTest, SaveOverwritesInPlaceAndLeavesNoTempFiles) {
  CacheStore store(dir_);
  ASSERT_TRUE(store.save("k", small_result(1)));
  const ScenarioResult updated = small_result(2);
  ASSERT_TRUE(store.save("k", updated));
  EXPECT_EQ(canonical(*store.load("k")), canonical(updated));
  std::size_t files = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), ".json") << entry.path();
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(CacheStoreTest, UnusableDirectoryFailsAtConstruction) {
  // A regular file where the directory should be: fail at startup with
  // an actionable error, not silently on every save.
  const std::string blocker = dir_ + "_blocker";
  std::ofstream(blocker, std::ios::trunc) << "in the way";
  EXPECT_THROW(CacheStore{blocker}, std::runtime_error);
  EXPECT_THROW(CacheStore{""}, std::runtime_error);
  fs::remove(blocker);
}

}  // namespace
}  // namespace greenfpga::scenario
