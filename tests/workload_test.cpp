/// Tests for the application / schedule model.

#include <gtest/gtest.h>

#include "units/units.hpp"
#include "workload/application.hpp"

namespace greenfpga::workload {
namespace {

using namespace units::unit;

TEST(Application, PaperPrototypeMatchesDefaults) {
  const Application app = paper_application(device::Domain::dnn);
  EXPECT_EQ(app.domain, device::Domain::dnn);
  EXPECT_DOUBLE_EQ(app.lifetime.in(years), 2.0);
  EXPECT_DOUBLE_EQ(app.volume, 1e6);
  EXPECT_DOUBLE_EQ(app.size_gates, 0.0);
  EXPECT_NO_THROW(app.validate());
}

TEST(Application, ValidateRejectsBadFields) {
  Application app = paper_application(device::Domain::crypto);
  app.lifetime = units::TimeSpan{};
  EXPECT_THROW(app.validate(), std::invalid_argument);

  app = paper_application(device::Domain::crypto);
  app.volume = 0.0;
  EXPECT_THROW(app.validate(), std::invalid_argument);

  app = paper_application(device::Domain::crypto);
  app.size_gates = -1.0;
  EXPECT_THROW(app.validate(), std::invalid_argument);

  app = paper_application(device::Domain::crypto);
  app.name.clear();
  EXPECT_THROW(app.validate(), std::invalid_argument);
}

TEST(Schedule, HomogeneousSchedulesNumberApps) {
  const Schedule schedule = homogeneous_schedule(3, paper_application(device::Domain::dnn));
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule[0].name, "DNN-app-1");
  EXPECT_EQ(schedule[2].name, "DNN-app-3");
  EXPECT_NO_THROW(validate(schedule));
}

TEST(Schedule, ZeroCountIsEmpty) {
  EXPECT_TRUE(homogeneous_schedule(0, paper_application(device::Domain::dnn)).empty());
}

TEST(Schedule, NegativeCountThrows) {
  EXPECT_THROW(homogeneous_schedule(-1, paper_application(device::Domain::dnn)),
               std::invalid_argument);
}

TEST(Schedule, TotalLifetimeSums) {
  Application app = paper_application(device::Domain::dnn);
  app.lifetime = 1.5 * years;
  const Schedule schedule = homogeneous_schedule(4, app);
  EXPECT_DOUBLE_EQ(total_lifetime(schedule).in(years), 6.0);
}

TEST(Schedule, EmptyScheduleFailsValidation) {
  EXPECT_THROW(validate(Schedule{}), std::invalid_argument);
}

TEST(Schedule, ValidatePropagatesToApplications) {
  Schedule schedule = homogeneous_schedule(2, paper_application(device::Domain::imgproc));
  schedule[1].volume = -5.0;
  EXPECT_THROW(validate(schedule), std::invalid_argument);
}

// Property: a homogeneous schedule of n copies has n times the lifetime.
class ScheduleCountProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleCountProperty, LifetimeScalesWithCount) {
  const Application proto = paper_application(device::Domain::dnn);
  const Schedule schedule = homogeneous_schedule(GetParam(), proto);
  EXPECT_DOUBLE_EQ(total_lifetime(schedule).in(years),
                   2.0 * static_cast<double>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Counts, ScheduleCountProperty, ::testing::Values(1, 2, 5, 8, 12));

}  // namespace
}  // namespace greenfpga::workload
