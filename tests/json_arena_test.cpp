/// Tests for the arena-backed immutable JSON DOM (io/json_arena.hpp):
/// parse correctness against the facade parser, canonical byte-identity,
/// hash-while-parse digests, lifetime-under-move guarantees, and the
/// adversarial inputs the serve path must survive.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "io/hash.hpp"
#include "io/json.hpp"
#include "io/json_arena.hpp"

namespace greenfpga::io {
namespace {

TEST(JsonArenaParse, Scalars) {
  EXPECT_TRUE(parse_json_arena("null").root().is_null());
  EXPECT_EQ(parse_json_arena("true").root().as_bool(), true);
  EXPECT_EQ(parse_json_arena("false").root().as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json_arena("-3.25").root().as_number(), -3.25);
  EXPECT_DOUBLE_EQ(parse_json_arena("2.5E-3").root().as_number(), 2.5e-3);
  EXPECT_EQ(parse_json_arena("\"hello\"").root().as_string(), "hello");
}

TEST(JsonArenaParse, NestedAccess) {
  const JsonDocument doc = parse_json_arena(R"({"a": {"b": [1, {"c": "d"}]}})");
  EXPECT_EQ(doc.root().at("a").at("b").at(std::size_t{1}).at("c").as_string(), "d");
  EXPECT_TRUE(doc.root().contains("a"));
  EXPECT_FALSE(doc.root().contains("z"));
  EXPECT_DOUBLE_EQ(doc.root().at("a").number_or("absent", 7.0), 7.0);
}

TEST(JsonArenaParse, MembersAreSortedByKey) {
  const JsonDocument doc = parse_json_arena(R"({"z": 1, "m": 2, "a": 3})");
  const auto members = doc.root().members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].key, "a");
  EXPECT_EQ(members[1].key, "m");
  EXPECT_EQ(members[2].key, "z");
}

TEST(JsonArenaParse, ElementsSpanIteration) {
  const JsonDocument doc = parse_json_arena("[1, 2, 3]");
  double sum = 0.0;
  for (const JsonNode& node : doc.root().elements()) {
    sum += JsonView(&node).as_number();
  }
  EXPECT_DOUBLE_EQ(sum, 6.0);
}

TEST(JsonArenaParse, SameErrorsAsFacadeParser) {
  for (const std::string_view bad :
       {"", "{", "[1,]", "{\"a\":}", "[1] trailing", "01", "1.", "+1", "nul",
        "\"unterminated", "\"bad\\escape\"", R"("\ud800")"}) {
    EXPECT_THROW((void)parse_json_arena(bad), JsonError) << bad;
    EXPECT_THROW((void)parse_json(bad), JsonError) << bad;
  }
}

TEST(JsonArenaParse, DuplicateKeysThrow) {
  EXPECT_THROW((void)parse_json_arena(R"({"a": 1, "a": 2})"), JsonError);
  // Duplicate arriving out of order (after a sort would collide).
  EXPECT_THROW((void)parse_json_arena(R"({"b": 1, "a": 2, "a": 3})"), JsonError);
}

TEST(JsonArenaParse, DeepButLegalNestingAtTheCap) {
  JsonParseOptions options;  // default max_depth = 256
  std::string deep;
  for (int i = 0; i < 256; ++i) deep += '[';
  deep += "1";
  for (int i = 0; i < 256; ++i) deep += ']';
  const JsonDocument doc = parse_json_arena(deep, options);
  EXPECT_EQ(doc.dump(0), deep);
  // One more level is an ordinary parse error, not a crash.
  EXPECT_THROW((void)parse_json_arena("[" + deep + "]", options), JsonError);
}

TEST(JsonArenaParse, DepthBombFailsCleanly) {
  const std::string bomb(100'000, '[');
  try {
    (void)parse_json_arena(bomb);
    FAIL() << "depth bomb parsed";
  } catch (const JsonError& error) {
    EXPECT_NE(std::string(error.what()).find("nesting depth exceeds 256"),
              std::string::npos)
        << error.what();
  }
}

TEST(JsonArenaParse, HugeStringWithEscapes) {
  // A string large enough to span several arena chunks, with escapes
  // forcing the decode slow path throughout.
  std::string raw;
  std::string encoded = "\"";
  for (int i = 0; i < 50'000; ++i) {
    raw += "a\"b\\c\nd\te\xE2\x82\xAC";
    encoded += "a\\\"b\\\\c\\nd\\te\xE2\x82\xAC";
  }
  encoded += '"';
  const JsonDocument doc = parse_json_arena(encoded);
  EXPECT_EQ(doc.root().as_string(), raw);
  // And the canonical re-dump restores the escapes byte-identically to
  // the facade writer.
  EXPECT_EQ(doc.dump(0), parse_json(encoded).dump(0));
}

TEST(JsonArenaParse, NonFiniteSentinelsRoundTrip) {
  const std::string bytes = R"(["inf","-inf","nan",1.5])";
  const JsonDocument doc = parse_json_arena(bytes);
  EXPECT_EQ(doc.dump(0), bytes);
  EXPECT_EQ(doc.root().at(std::size_t{0}).as_number_total(),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(doc.root().at(std::size_t{1}).as_number_total(),
            -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(doc.root().at(std::size_t{2}).as_number_total()));
  // Strict as_number stays strict, same as the facade.
  EXPECT_THROW((void)doc.root().at(std::size_t{0}).as_number(), JsonError);
}

TEST(JsonArenaDump, ByteIdenticalToFacade) {
  const std::string_view cases[] = {
      "null",
      R"({"z": 1, "a": [true, null, "s\n\u0001", 2.5e-3], "m": {}})",
      R"([[],{},"",0,-0.0,1e+15,0.0001,1e-05,123456.789])",
      R"({"grid": [[1,2],[3,4]], "meta": {"name": "run", "ok": true}})",
  };
  for (const std::string_view text : cases) {
    const JsonDocument doc = parse_json_arena(text);
    const Json facade = parse_json(text);
    for (const int indent : {0, 2, 4}) {
      EXPECT_EQ(doc.dump(indent), facade.dump(indent)) << text;
    }
    std::string appended = "x";
    doc.dump_to(appended, 0);
    EXPECT_EQ(appended, "x" + facade.dump(0)) << text;
  }
}

TEST(JsonArenaDump, CanonicalDigestMatchesBytes) {
  const JsonDocument doc = parse_json_arena(R"({"a": 1, "b": [2, "three"]})");
  EXPECT_EQ(doc.canonical_digest(), fnv1a64(doc.dump(0)));
}

TEST(JsonArenaParse, HashWhileParsePresentOnSortedKeys) {
  const std::string canonical = R"({"a":1,"b":[true,"s",2.5],"c":{"d":null}})";
  const JsonDocument doc = parse_json_arena(canonical, {}, /*hash_canonical=*/true);
  ASSERT_TRUE(doc.parse_digest().has_value());
  EXPECT_EQ(*doc.parse_digest(), fnv1a64(canonical));
  EXPECT_EQ(*doc.parse_digest(), doc.canonical_digest());
}

TEST(JsonArenaParse, HashWhileParseAbsentWhenNotRequestedOrUnsorted) {
  EXPECT_FALSE(parse_json_arena(R"({"a":1})").parse_digest().has_value());
  const JsonDocument unsorted =
      parse_json_arena(R"({"z":1,"a":2})", {}, /*hash_canonical=*/true);
  EXPECT_FALSE(unsorted.parse_digest().has_value());
  EXPECT_EQ(unsorted.dump(0), R"({"a":2,"z":1})");
}

TEST(JsonArenaToJson, EqualsFacadeParse) {
  const std::string_view text =
      R"({"z": [1, {"k": "v"}, null], "a": true, "n": 0.125})";
  EXPECT_EQ(parse_json_arena(text).to_json(), parse_json(text));
}

TEST(JsonArenaLifetime, ViewsSurviveDocumentMove) {
  JsonDocument doc = parse_json_arena(R"({"key": "a long-ish string value"})");
  const std::string_view before = doc.root().at("key").as_string();
  const char* data = before.data();
  JsonDocument moved = std::move(doc);
  const std::string_view after = moved.root().at("key").as_string();
  // Arena chunks are stable under move: same bytes, same address.
  EXPECT_EQ(after, "a long-ish string value");
  EXPECT_EQ(after.data(), data);
}

TEST(JsonArenaLifetime, ArenaBytesGrowWithDocument) {
  const JsonDocument small = parse_json_arena("[1]");
  std::string big = "[";
  for (int i = 0; i < 10'000; ++i) {
    big += i > 0 ? ",\"value-" : "\"value-";
    big += std::to_string(i);
    big += '"';
  }
  big += ']';
  const JsonDocument large = parse_json_arena(big);
  EXPECT_GT(large.arena_bytes(), small.arena_bytes());
  EXPECT_EQ(large.root().size(), 10'000u);
}

TEST(JsonArenaAccess, ErrorsMatchFacadeMessages) {
  const JsonDocument doc = parse_json_arena(R"({"a": 1})");
  try {
    (void)doc.root().at("a").as_string();
    FAIL() << "expected JsonError";
  } catch (const JsonError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("string"), std::string::npos);
    EXPECT_NE(message.find("number"), std::string::npos);
  }
  try {
    (void)doc.root().at("missing");
    FAIL() << "expected JsonError";
  } catch (const JsonError& error) {
    EXPECT_NE(std::string(error.what()).find("missing"), std::string::npos);
  }
  EXPECT_THROW((void)parse_json_arena("[1]").root().at(std::size_t{1}), JsonError);
}

TEST(JsonArenaConcurrency, ParallelParseHammer) {
  // Each thread parses, hashes and dumps its own documents; run under
  // ASan/UBSan + TSan-adjacent CI this pins the "no shared mutable state
  // between parses" property of the arena design.
  std::string text = R"({"rows": [)";
  for (int i = 0; i < 200; ++i) {
    text += i > 0 ? "," : "";
    text += R"({"i": )" + std::to_string(i) + R"(, "s": "row-)" +
            std::to_string(i) + "\"}";
  }
  text += "]}";
  const std::string canonical = parse_json(text).dump(0);
  const std::uint64_t digest = fnv1a64(canonical);

  std::vector<std::thread> threads;
  std::vector<int> failures(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        const JsonDocument doc = parse_json_arena(text, {}, /*hash_canonical=*/true);
        if (doc.dump(0) != canonical || doc.canonical_digest() != digest) {
          failures[t] += 1;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (const int count : failures) {
    EXPECT_EQ(count, 0);
  }
}

}  // namespace
}  // namespace greenfpga::io
