/// Completeness suite for the scenario kind registry: every enumerator
/// is registered exactly once with a well-formed module, names and
/// aliases round-trip through parse_scenario_kind, the registry-derived
/// error/help vocabulary (kind_name_list) names every kind, and the
/// mandatory hooks the generic layers call unconditionally are present.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/config_io.hpp"
#include "scenario/kind_registry.hpp"
#include "scenario/spec.hpp"

namespace greenfpga::scenario {
namespace {

/// Every ScenarioKind enumerator, spelled once; adding an enumerator
/// without extending this list fails the count check below against the
/// registry (and the registry itself throws on an unregistered kind).
const std::set<ScenarioKind>& every_kind() {
  static const std::set<ScenarioKind> kinds{
      ScenarioKind::compare,     ScenarioKind::sweep,      ScenarioKind::grid,
      ScenarioKind::timeline,    ScenarioKind::node_dse,   ScenarioKind::breakeven,
      ScenarioKind::sensitivity, ScenarioKind::montecarlo, ScenarioKind::frontier,
      ScenarioKind::fleet};
  return kinds;
}

TEST(KindRegistry, EveryKindIsRegisteredExactlyOnce) {
  std::set<ScenarioKind> seen;
  for (const KindModule* module : all_kind_modules()) {
    ASSERT_NE(module, nullptr);
    EXPECT_TRUE(seen.insert(module->kind).second)
        << "kind " << module->name << " registered twice";
  }
  EXPECT_EQ(seen, every_kind());
}

TEST(KindRegistry, KindModuleResolvesEveryEnumerator) {
  for (const ScenarioKind kind : every_kind()) {
    const KindModule& module = kind_module(kind);
    EXPECT_EQ(module.kind, kind);
  }
}

TEST(KindRegistry, NamesRoundTripThroughParse) {
  std::set<std::string> names;
  for (const KindModule* module : all_kind_modules()) {
    const std::string name(module->name);
    EXPECT_TRUE(names.insert(name).second) << "duplicate kind name " << name;
    EXPECT_EQ(to_string(module->kind), name);
    const auto parsed = parse_scenario_kind(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, module->kind);
  }
}

TEST(KindRegistry, AliasesResolveToTheirKind) {
  for (const KindModule* module : all_kind_modules()) {
    for (const std::string_view alias : module->aliases) {
      const auto parsed = parse_scenario_kind(alias);
      ASSERT_TRUE(parsed.has_value()) << alias;
      EXPECT_EQ(*parsed, module->kind) << alias;
    }
  }
  // The documented legacy spellings keep working.
  EXPECT_EQ(parse_scenario_kind("heatmap"), ScenarioKind::grid);
  EXPECT_EQ(parse_scenario_kind("nodes"), ScenarioKind::node_dse);
  EXPECT_EQ(parse_scenario_kind("monte_carlo"), ScenarioKind::montecarlo);
  EXPECT_EQ(parse_scenario_kind("mc"), ScenarioKind::montecarlo);
  EXPECT_FALSE(parse_scenario_kind("industry").has_value());
}

TEST(KindRegistry, FindKindModuleMatchesNamesAndAliases) {
  EXPECT_EQ(find_kind_module("fleet")->kind, ScenarioKind::fleet);
  EXPECT_EQ(find_kind_module("heatmap")->kind, ScenarioKind::grid);
  EXPECT_EQ(find_kind_module("no-such-kind"), nullptr);
}

TEST(KindRegistry, KindNameListNamesEveryKind) {
  const std::string list = kind_name_list();
  for (const KindModule* module : all_kind_modules()) {
    EXPECT_NE(list.find(std::string(module->name)), std::string::npos)
        << "kind_name_list() is missing " << module->name;
  }
}

TEST(KindRegistry, MandatoryHooksArePresent) {
  for (const KindModule* module : all_kind_modules()) {
    const std::string name(module->name);
    // The engine and frame layers call these without null checks for the
    // owning kind (the other hooks are optional and null-checked).
    EXPECT_FALSE(module->summary.empty()) << name;
    EXPECT_NE(module->execute, nullptr) << name;
    EXPECT_NE(module->to_frames, nullptr) << name;
  }
}

TEST(KindRegistry, UnknownKindInSpecJsonListsValidNames) {
  io::Json json = spec_to_json(ScenarioSpec::make(ScenarioKind::compare,
                                                  device::Domain::dnn));
  json["kind"] = "warehouse";
  try {
    spec_from_json(json);
    FAIL() << "expected ConfigError";
  } catch (const core::ConfigError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("unknown scenario kind \"warehouse\""), std::string::npos)
        << message;
    // The valid-kind list comes from the registry, so it must name every
    // registered kind -- including fleet.
    for (const KindModule* module : all_kind_modules()) {
      EXPECT_NE(message.find(std::string(module->name)), std::string::npos)
          << message << " missing " << module->name;
    }
  }
}

}  // namespace
}  // namespace greenfpga::scenario
