/// Tests for the chiplet-construction embodied model (ECO-CHIP tradeoff).

#include <gtest/gtest.h>

#include "core/lifecycle_model.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "device/iso_performance.hpp"
#include "device/platform_registry.hpp"
#include "scenario/engine.hpp"
#include "units/units.hpp"

namespace greenfpga::core {
namespace {

using namespace units::unit;

LifecycleModel model() { return LifecycleModel(paper_suite()); }

pkg::PackageParameters interposer() {
  pkg::PackageParameters p;
  p.type = pkg::PackageType::silicon_interposer;
  return p;
}

TEST(Chiplet, SingleDieAdvancedPackageMatchesSiliconOfMonolithic) {
  // One die in an interposer package: identical silicon CFP to the
  // monolithic path; only the package differs.
  const LifecycleModel m = model();
  const device::ChipSpec fpga = device::domain_testcase(device::Domain::dnn).fpga;
  const CfpBreakdown mono = m.per_chip_embodied(fpga);
  const CfpBreakdown single = m.per_chip_embodied_chiplet(fpga, 1, interposer());
  EXPECT_DOUBLE_EQ(single.manufacturing.canonical(), mono.manufacturing.canonical());
  EXPECT_GT(single.packaging, mono.packaging);  // interposer silicon added
}

TEST(Chiplet, SplittingImprovesSiliconCarbon) {
  // Two 300 mm^2 dies yield better than one 600 mm^2 die, so the silicon
  // term must fall monotonically with die count.
  const LifecycleModel m = model();
  const device::ChipSpec fpga = device::domain_testcase(device::Domain::dnn).fpga;
  double previous = std::numeric_limits<double>::infinity();
  for (const int dies : {1, 2, 4, 8}) {
    const CfpBreakdown split = m.per_chip_embodied_chiplet(fpga, dies, interposer());
    EXPECT_LT(split.manufacturing.canonical(), previous) << dies << " dies";
    previous = split.manufacturing.canonical();
  }
}

TEST(Chiplet, PackagingCostGrowsWithDieCount) {
  const LifecycleModel m = model();
  const device::ChipSpec fpga = device::domain_testcase(device::Domain::dnn).fpga;
  const CfpBreakdown two = m.per_chip_embodied_chiplet(fpga, 2, interposer());
  const CfpBreakdown eight = m.per_chip_embodied_chiplet(fpga, 8, interposer());
  EXPECT_GT(eight.packaging, two.packaging);  // more bonding
}

TEST(Chiplet, NetBenefitForLargeLowYieldDies) {
  // For the 600 mm^2 DNN FPGA, splitting into a few chiplets must beat the
  // monolithic total (the ECO-CHIP result): yield savings exceed the
  // interposer overhead.
  const LifecycleModel m = model();
  const device::ChipSpec fpga = device::domain_testcase(device::Domain::dnn).fpga;
  const double mono = m.per_chip_embodied(fpga).total().canonical();
  const double split = m.per_chip_embodied_chiplet(fpga, 4, interposer()).total().canonical();
  EXPECT_LT(split, mono);
}

TEST(Chiplet, NoBenefitForSmallHighYieldDies) {
  // An 80 mm^2 ASIC already yields ~0.91; splitting it only buys
  // interposer and bonding overhead.
  const LifecycleModel m = model();
  const device::ChipSpec asic = device::domain_testcase(device::Domain::imgproc).asic;
  const double mono = m.per_chip_embodied(asic).total().canonical();
  const double split = m.per_chip_embodied_chiplet(asic, 4, interposer()).total().canonical();
  EXPECT_GT(split, mono);
}

TEST(Chiplet, EmibCheaperThanInterposerEndToEnd) {
  const LifecycleModel m = model();
  const device::ChipSpec fpga = device::domain_testcase(device::Domain::dnn).fpga;
  pkg::PackageParameters emib = interposer();
  emib.type = pkg::PackageType::emib;
  const double si =
      m.per_chip_embodied_chiplet(fpga, 4, interposer()).total().canonical();
  const double bridges = m.per_chip_embodied_chiplet(fpga, 4, emib).total().canonical();
  EXPECT_LT(bridges, si);
}

TEST(Chiplet, InvalidArgumentsThrow) {
  const LifecycleModel m = model();
  const device::ChipSpec fpga = device::domain_testcase(device::Domain::dnn).fpga;
  EXPECT_THROW(m.per_chip_embodied_chiplet(fpga, 0, interposer()), std::invalid_argument);
  pkg::PackageParameters mono;
  mono.type = pkg::PackageType::monolithic;
  EXPECT_THROW(m.per_chip_embodied_chiplet(fpga, 2, mono), std::invalid_argument);
  EXPECT_NO_THROW(m.per_chip_embodied_chiplet(fpga, 1, mono));
}

// -- the first-class registry platform ------------------------------------------

TEST(ChipletPlatform, RegistryResolvesFourDieEmibSplitOfTheDomainFpga) {
  for (const device::Domain domain : device::all_domains()) {
    const device::ChipSpec chiplet =
        device::PlatformRegistry::builtins().resolve("chiplet_fpga", domain);
    const device::ChipSpec fpga = device::domain_testcase(domain).fpga;
    EXPECT_TRUE(chiplet.is_fpga());
    EXPECT_EQ(chiplet.chiplet_count, 4);
    EXPECT_EQ(chiplet.chiplet_package, "emib");
    EXPECT_DOUBLE_EQ(chiplet.die_area.canonical(), fpga.die_area.canonical());
    EXPECT_DOUBLE_EQ(chiplet.peak_power.canonical(), fpga.peak_power.canonical());
  }
}

TEST(ChipletPlatform, EmbodiedDispatchMatchesExplicitChipletCall) {
  // per_chip_embodied on the registry chip must route through the chiplet
  // path: same numbers as the explicit per_chip_embodied_chiplet call.
  const LifecycleModel m = model();
  const device::ChipSpec chiplet =
      device::PlatformRegistry::builtins().resolve("chiplet_fpga", device::Domain::dnn);
  pkg::PackageParameters emib = interposer();
  emib.type = pkg::PackageType::emib;
  const CfpBreakdown dispatched = m.per_chip_embodied(chiplet);
  const CfpBreakdown explicit_call = m.per_chip_embodied_chiplet(chiplet, 4, emib);
  EXPECT_DOUBLE_EQ(dispatched.total().canonical(), explicit_call.total().canonical());
  // And it must beat the monolithic FPGA (the ECO-CHIP benefit survives
  // the registry wrapping).
  const device::ChipSpec fpga = device::domain_testcase(device::Domain::dnn).fpga;
  EXPECT_LT(dispatched.total().canonical(), m.per_chip_embodied(fpga).total().canonical());
}

TEST(ChipletPlatform, EngineComparesChipletFpgaAgainstMonolithic) {
  // The platform is usable everywhere a name is: a compare spec over
  // {fpga, chiplet_fpga} runs and shows the chiplet build greener.
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::compare, device::Domain::dnn);
  spec.platforms = {scenario::PlatformRef{.name = "fpga", .chip = std::nullopt},
                    scenario::PlatformRef{.name = "chiplet_fpga", .chip = std::nullopt}};
  const scenario::Engine engine;
  const scenario::ScenarioResult result = engine.run(spec);
  ASSERT_EQ(result.points.size(), 1u);
  ASSERT_EQ(result.points.front().platforms.size(), 2u);
  EXPECT_LT(result.points.front().ratio(1), 1.0);
}

TEST(ChipletPlatform, DeriveChipletFpgaRejectsNonFpgasAndSingleDies) {
  const device::ChipSpec asic = device::domain_testcase(device::Domain::dnn).asic;
  EXPECT_THROW(device::derive_chiplet_fpga(asic), std::invalid_argument);
  const device::ChipSpec fpga = device::domain_testcase(device::Domain::dnn).fpga;
  EXPECT_THROW(device::derive_chiplet_fpga(fpga, 1), std::invalid_argument);
}

// Property: total silicon area is conserved across splits, so the
// *unyielded* carbon would be constant; all savings come through yield.
class ChipletCountProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChipletCountProperty, SavingsComeFromYieldAlone) {
  const LifecycleModel m = model();
  const device::ChipSpec fpga = device::domain_testcase(device::Domain::dnn).fpga;
  const int dies = GetParam();
  const units::Area per_die = fpga.die_area / static_cast<double>(dies);
  const auto one = m.fab_model().manufacture_die(fpga.node, per_die);
  // Reconstruct: silicon carbon = dies * per-die carbon; the equivalent
  // perfect-yield carbon is area * CPA, identical for every split.
  const double perfect =
      (m.fab_model().carbon_per_area(fpga.node) * fpga.die_area).canonical();
  const double actual = one.total().canonical() * dies;
  EXPECT_NEAR(actual * one.yield, perfect, perfect * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Splits, ChipletCountProperty, ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace greenfpga::core
