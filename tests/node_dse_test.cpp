/// Tests for the carbon-aware node-selection DSE extension.

#include <gtest/gtest.h>

#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "scenario/node_dse.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {
namespace {

using namespace units::unit;
using device::Domain;

TEST(Retarget, SameNodeIsIdentity) {
  const device::ChipSpec chip = device::domain_testcase(Domain::dnn).asic;
  const device::ChipSpec same = retarget_to_node(chip, chip.node);
  EXPECT_DOUBLE_EQ(same.die_area.in(mm2), chip.die_area.in(mm2));
  EXPECT_DOUBLE_EQ(same.peak_power.in(w), chip.peak_power.in(w));
  EXPECT_DOUBLE_EQ(same.capacity_gates, chip.capacity_gates);
}

TEST(Retarget, OlderNodeGrowsAreaAndPower) {
  const device::ChipSpec chip = device::domain_testcase(Domain::dnn).asic;  // 10 nm
  const device::ChipSpec old = retarget_to_node(chip, tech::ProcessNode::n28);
  EXPECT_GT(old.die_area, chip.die_area);
  EXPECT_GT(old.peak_power, chip.peak_power);
  // Density ratio 52.5 / 14.4 ~ 3.6x area.
  EXPECT_NEAR(old.die_area.in(mm2) / chip.die_area.in(mm2), 52.5 / 14.4, 1e-9);
  EXPECT_NEAR(old.peak_power.in(w) / chip.peak_power.in(w), 1.90, 1e-9);
}

TEST(Retarget, NewerNodeShrinksAreaAndPower) {
  const device::ChipSpec chip = device::domain_testcase(Domain::dnn).asic;
  const device::ChipSpec scaled = retarget_to_node(chip, tech::ProcessNode::n5);
  EXPECT_LT(scaled.die_area, chip.die_area);
  EXPECT_LT(scaled.peak_power, chip.peak_power);
}

TEST(Retarget, PreservesCapacityAndKind) {
  const device::ChipSpec fpga = device::domain_testcase(Domain::dnn).fpga;
  const device::ChipSpec scaled = retarget_to_node(fpga, tech::ProcessNode::n7);
  EXPECT_DOUBLE_EQ(scaled.capacity_gates, fpga.capacity_gates);
  EXPECT_TRUE(scaled.is_fpga());
  EXPECT_EQ(scaled.node, tech::ProcessNode::n7);
}

TEST(Retarget, ReticleViolationThrows) {
  // The ImgProc iso-FPGA (594 mm^2 at 10 nm) cannot be built at 28 nm
  // (~2165 mm^2 equivalent).
  const device::ChipSpec fpga = device::domain_testcase(Domain::imgproc).fpga;
  EXPECT_THROW(retarget_to_node(fpga, tech::ProcessNode::n28), std::invalid_argument);
  EXPECT_NO_THROW(retarget_to_node(fpga, tech::ProcessNode::n7));
}

TEST(NodeDse, CandidatesSortedAscending) {
  const NodeDse dse(core::LifecycleModel(core::paper_suite()),
                    core::paper_schedule(Domain::dnn));
  const auto candidates = dse.explore(device::domain_testcase(Domain::dnn).fpga);
  ASSERT_GE(candidates.size(), 5u);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LE(candidates[i - 1].total(), candidates[i].total());
    EXPECT_GE(candidates[i].total_vs_best, candidates[i - 1].total_vs_best);
  }
  EXPECT_DOUBLE_EQ(candidates.front().total_vs_best, 1.0);
}

TEST(NodeDse, SkipsUnmanufacturableNodes) {
  const NodeDse dse(core::LifecycleModel(core::paper_suite()),
                    core::paper_schedule(Domain::imgproc));
  const auto candidates = dse.explore(device::domain_testcase(Domain::imgproc).fpga);
  for (const NodeCandidate& candidate : candidates) {
    EXPECT_LE(candidate.chip.die_area.in(mm2), kReticleLimitMm2);
  }
  // The trailing nodes (28/20 nm) cannot hold the ImgProc FPGA.
  EXPECT_LT(candidates.size(), tech::all_nodes().size());
}

TEST(NodeDse, BestMatchesExploreFront) {
  const NodeDse dse(core::LifecycleModel(core::paper_suite()),
                    core::paper_schedule(Domain::dnn));
  const device::ChipSpec chip = device::domain_testcase(Domain::dnn).fpga;
  const NodeCandidate best = dse.best(chip);
  const auto all = dse.explore(chip);
  EXPECT_EQ(best.chip.node, all.front().chip.node);
  EXPECT_DOUBLE_EQ(best.total().canonical(), all.front().total().canonical());
}

TEST(NodeDse, MostAdvancedFeasibleNodeWinsAtIsoDesign) {
  // In the ACT dataset, logic density grows faster across nodes than fab
  // carbon-per-area, so per-gate embodied carbon still falls with scaling;
  // at iso-design the most advanced node wins on BOTH embodied and
  // operational carbon, and trailing nodes fall off the reticle.  The
  // DSE's value is quantifying the margins and the feasibility frontier.
  const NodeDse dse(core::LifecycleModel(core::paper_suite()),
                    core::paper_schedule(Domain::dnn));
  const auto candidates = dse.explore(device::domain_testcase(Domain::dnn).fpga);
  EXPECT_EQ(candidates.front().chip.node, tech::ProcessNode::n3);
  // The 600 mm^2 10 nm design cannot be retargeted to 14 nm or older.
  for (const NodeCandidate& candidate : candidates) {
    EXPECT_GE(static_cast<int>(tech::ProcessNode::n10),
              static_cast<int>(candidate.chip.node))
        << tech::to_string(candidate.chip.node);
  }
}

TEST(NodeDse, OperationalShareGrowsInDatacenterRegime) {
  // The regimes rank nodes the same way at iso-design, but WHY a node wins
  // shifts: at 2 % duty the winner's advantage is embodied-dominated, at
  // 50 % duty it is operation-dominated.
  const auto schedule = core::paper_schedule(Domain::dnn);
  const device::ChipSpec chip = device::domain_testcase(Domain::dnn).fpga;
  const auto edge_best =
      NodeDse(core::LifecycleModel(core::paper_suite()), schedule).best(chip);
  const auto dc_best =
      NodeDse(core::LifecycleModel(core::industry_suite()), schedule).best(chip);
  const auto op_share = [](const NodeCandidate& candidate) {
    return candidate.lifecycle.operational.canonical() /
           candidate.lifecycle.total().canonical();
  };
  EXPECT_GT(op_share(dc_best), 0.5);
  EXPECT_LT(op_share(edge_best), 0.5);
}

TEST(NodeDse, ExplicitNodeListRespected) {
  const NodeDse dse(core::LifecycleModel(core::paper_suite()),
                    core::paper_schedule(Domain::dnn));
  const std::vector<tech::ProcessNode> nodes{tech::ProcessNode::n8, tech::ProcessNode::n7};
  const auto candidates =
      dse.explore(device::domain_testcase(Domain::dnn).fpga, nodes);
  EXPECT_EQ(candidates.size(), 2u);
}

TEST(NodeDse, NoFeasibleNodeThrows) {
  const NodeDse dse(core::LifecycleModel(core::paper_suite()),
                    core::paper_schedule(Domain::imgproc));
  const std::vector<tech::ProcessNode> nodes{tech::ProcessNode::n28};
  EXPECT_THROW(dse.explore(device::domain_testcase(Domain::imgproc).fpga, nodes),
               std::invalid_argument);
}

}  // namespace
}  // namespace greenfpga::scenario
