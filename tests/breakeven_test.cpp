/// Tests for the closed-form break-even solver, cross-validated against
/// the sweep engine's scan-and-interpolate crossovers.

#include <gtest/gtest.h>

#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "scenario/breakeven.hpp"
#include "scenario/sweep.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {
namespace {

using namespace units::unit;
using device::Domain;

BreakevenSolver solver_for(Domain domain) {
  return BreakevenSolver(core::LifecycleModel(core::paper_suite()),
                         device::domain_testcase(domain));
}

SweepEngine engine_for(Domain domain) {
  return SweepEngine(core::LifecycleModel(core::paper_suite()),
                     device::domain_testcase(domain));
}

TEST(Breakeven, AppCountMatchesSweepCrossover) {
  const BreakevenContext context{};
  const auto analytic = solver_for(Domain::dnn).app_count_breakeven(context);
  const auto series = engine_for(Domain::dnn).sweep_app_count(1, 12, 2.0 * years, 1e6);
  const auto scanned = first_crossover(series.crossovers(), CrossoverKind::a2f);
  ASSERT_TRUE(analytic && scanned);
  EXPECT_NEAR(*analytic, *scanned, 1e-6);
}

TEST(Breakeven, LifetimeMatchesSweepCrossover) {
  const BreakevenContext context{};
  const auto analytic = solver_for(Domain::dnn).lifetime_breakeven(context);
  const std::vector<double> lifetimes = linspace(0.2, 2.5, 47);
  const auto series = engine_for(Domain::dnn).sweep_lifetime(lifetimes, 5, 1e6);
  const auto scanned = first_crossover(series.crossovers(), CrossoverKind::f2a);
  ASSERT_TRUE(analytic && scanned);
  // The sweep interpolates between samples; the solver is exact.
  EXPECT_NEAR(*analytic, *scanned, 0.01);
}

TEST(Breakeven, VolumeMatchesSweepCrossover) {
  const BreakevenContext context{};
  const auto analytic = solver_for(Domain::dnn).volume_breakeven(context);
  const std::vector<double> volumes = logspace(1e3, 1e7, 81);
  const auto series = engine_for(Domain::dnn).sweep_volume(volumes, 5, 2.0 * years);
  const auto scanned = first_crossover(series.crossovers(), CrossoverKind::f2a);
  ASSERT_TRUE(analytic && scanned);
  // Log-spaced scanning linearly interpolates a slightly curved chord;
  // exact solver within 2 %.
  EXPECT_NEAR(*analytic / *scanned, 1.0, 0.02);
}

TEST(Breakeven, ImgprocVolumeAndAppCount) {
  const BreakevenContext context{};
  const auto volume = solver_for(Domain::imgproc).volume_breakeven(context);
  ASSERT_TRUE(volume.has_value());
  EXPECT_GT(*volume, 1e5);
  EXPECT_LT(*volume, 6e5);
  // ImgProc A2F sits past 8 apps; at T = 2y and 1e6 the solver agrees.
  const auto apps = solver_for(Domain::imgproc).app_count_breakeven(context);
  ASSERT_TRUE(apps.has_value());
  EXPECT_GT(*apps, 8.0);
}

TEST(Breakeven, CryptoHasNoPositiveBreakevens) {
  // Crypto: the FPGA dominates from the first application; the difference
  // line never crosses zero at positive x.
  const BreakevenContext context{};
  const BreakevenSolver solver = solver_for(Domain::crypto);
  EXPECT_FALSE(solver.app_count_breakeven(context).has_value());
  EXPECT_FALSE(solver.volume_breakeven(context).has_value());
}

TEST(Breakeven, ContextChangesTheAnswer) {
  // More applications push the volume break-even outward (more reuse to
  // amortise), until past the app-count crossover (~5.2 for DNN) the FPGA
  // wins at every volume and the break-even disappears.
  BreakevenContext four{};
  four.app_count = 4;
  BreakevenContext five{};
  five.app_count = 5;
  BreakevenContext seven{};
  seven.app_count = 7;
  const BreakevenSolver solver = solver_for(Domain::dnn);
  const auto at_four = solver.volume_breakeven(four);
  const auto at_five = solver.volume_breakeven(five);
  ASSERT_TRUE(at_four.has_value());
  ASSERT_TRUE(at_five.has_value());
  EXPECT_GT(*at_five, *at_four);
  EXPECT_FALSE(solver.volume_breakeven(seven).has_value())
      << "past the app-count crossover the FPGA wins at every volume";
}

TEST(Breakeven, RejectsPerYearAccounting) {
  core::ModelSuite suite = core::paper_suite();
  suite.appdev.accounting = core::AppDevAccounting::per_year;
  EXPECT_THROW(BreakevenSolver(core::LifecycleModel(suite),
                               device::domain_testcase(Domain::dnn)),
               std::invalid_argument);
}

TEST(Breakeven, RejectsMultiFleetHorizons) {
  // 10 apps x 2 years = 20 years > the FPGA's 15-year service life.
  BreakevenContext context{};
  context.app_count = 10;
  EXPECT_THROW(solver_for(Domain::dnn).lifetime_breakeven(context),
               std::invalid_argument);
}

// Property: for every domain where the sweep finds an N_app crossover, the
// solver agrees to 1e-6 (exactness of the affine model).
class BreakevenAgreement : public ::testing::TestWithParam<Domain> {};

TEST_P(BreakevenAgreement, SolverAndSweepAgree) {
  const BreakevenContext context{};
  const auto analytic = solver_for(GetParam()).app_count_breakeven(context);
  const auto series = engine_for(GetParam()).sweep_app_count(1, 16, 2.0 * years, 1e6);
  const auto scanned = first_crossover(series.crossovers(), CrossoverKind::a2f);
  if (scanned.has_value()) {
    ASSERT_TRUE(analytic.has_value());
    EXPECT_NEAR(*analytic, *scanned, 1e-6);
  } else {
    EXPECT_FALSE(analytic.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(AllDomains, BreakevenAgreement,
                         ::testing::Values(Domain::dnn, Domain::imgproc, Domain::crypto));

}  // namespace
}  // namespace greenfpga::scenario
