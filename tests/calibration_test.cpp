/// Calibration guard: pins the paper's headline results to bands so that a
/// change in any substrate that would silently alter the reproduction story
/// fails CI.  Bands and documented deviations: DESIGN.md §4,
/// EXPERIMENTS.md.

#include <gtest/gtest.h>

#include "core/comparator.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "scenario/sweep.hpp"
#include "units/units.hpp"

namespace greenfpga {
namespace {

using namespace units::unit;
using core::paper_schedule;
using device::Domain;
using scenario::CrossoverKind;
using scenario::SweepEngine;

SweepEngine engine_for(Domain domain) {
  return SweepEngine(core::LifecycleModel(core::paper_suite()),
                     device::domain_testcase(domain));
}

// --- Fig. 4: impact of number of applications (T_i = 2 y, N_vol = 1e6) -----

TEST(CalibrationFig4, DnnA2fNearSixApplications) {
  const auto series = engine_for(Domain::dnn).sweep_app_count(1, 12, 2.0 * years, 1e6);
  const auto a2f = first_crossover(series.crossovers(), CrossoverKind::a2f);
  ASSERT_TRUE(a2f.has_value()) << "DNN must have an A2F crossover";
  EXPECT_GE(*a2f, 4.5) << "paper: A2F after 6 applications";
  EXPECT_LE(*a2f, 6.5);
}

TEST(CalibrationFig4, ImgprocA2fBeyondEightApplications) {
  // Paper: "the A2F crossover does not happen until N_app = 8; extending
  // the axis, 12 applications are required."
  const auto series = engine_for(Domain::imgproc).sweep_app_count(1, 16, 2.0 * years, 1e6);
  const auto a2f = first_crossover(series.crossovers(), CrossoverKind::a2f);
  ASSERT_TRUE(a2f.has_value());
  EXPECT_GE(*a2f, 8.0);
  EXPECT_LE(*a2f, 14.0);
}

TEST(CalibrationFig4, CryptoFpgaWinsFromFirstApplication) {
  const auto series = engine_for(Domain::crypto).sweep_app_count(1, 8, 2.0 * years, 1e6);
  for (const double ratio : series.ratios()) {
    EXPECT_LT(ratio, 1.0);
  }
}

TEST(CalibrationFig4, DomainOrderingDnnBeforeImgproc) {
  // The DNN FPGA amortises sooner than the ImgProc FPGA (smaller area
  // overhead): its A2F point must come first.
  const auto dnn = engine_for(Domain::dnn).sweep_app_count(1, 16, 2.0 * years, 1e6);
  const auto imgproc = engine_for(Domain::imgproc).sweep_app_count(1, 16, 2.0 * years, 1e6);
  const auto dnn_a2f = first_crossover(dnn.crossovers(), CrossoverKind::a2f);
  const auto img_a2f = first_crossover(imgproc.crossovers(), CrossoverKind::a2f);
  ASSERT_TRUE(dnn_a2f && img_a2f);
  EXPECT_LT(*dnn_a2f, *img_a2f);
}

// --- Fig. 5: impact of application lifetime (N_app = 5, N_vol = 1e6) -------

TEST(CalibrationFig5, DnnF2aNearOnePointSixYears) {
  const std::vector<double> lifetimes = scenario::linspace(0.2, 2.5, 47);
  const auto series = engine_for(Domain::dnn).sweep_lifetime(lifetimes, 5, 1e6);
  const auto f2a = first_crossover(series.crossovers(), CrossoverKind::f2a);
  ASSERT_TRUE(f2a.has_value()) << "DNN must flip to ASIC at long app lifetimes";
  EXPECT_GE(*f2a, 1.2) << "paper: F2A at about 1.6 years";
  EXPECT_LE(*f2a, 2.0);
}

TEST(CalibrationFig5, CryptoFpgaAlwaysGreener) {
  const std::vector<double> lifetimes = scenario::linspace(0.2, 2.5, 24);
  const auto series = engine_for(Domain::crypto).sweep_lifetime(lifetimes, 5, 1e6);
  for (const double ratio : series.ratios()) {
    EXPECT_LT(ratio, 1.0);
  }
}

TEST(CalibrationFig5, ImgprocAsicAlwaysGreener) {
  const std::vector<double> lifetimes = scenario::linspace(0.2, 2.5, 24);
  const auto series = engine_for(Domain::imgproc).sweep_lifetime(lifetimes, 5, 1e6);
  for (const double ratio : series.ratios()) {
    EXPECT_GT(ratio, 1.0) << "paper: ASIC sustainable for ImgProc at any lifetime";
  }
}

// --- Fig. 6: impact of application volume (N_app = 5, T_i = 2 y) -----------

TEST(CalibrationFig6, DnnF2aAtHighVolume) {
  // Paper reports ~2 M (extrapolated beyond its 1 M axis).  The linear
  // Eqs. (1)-(2) cannot place this above 1 M while also matching Figs. 4-5
  // at the shared (N_app=5, T=2 y, V=1e6) point -- see EXPERIMENTS.md for
  // the analysis.  We pin the crossover to [0.4 M, 3 M]: high-volume, same
  // story ("FPGAs are sustainable for lower application volumes").
  const std::vector<double> volumes = scenario::logspace(1e3, 1e7, 41);
  const auto series = engine_for(Domain::dnn).sweep_volume(volumes, 5, 2.0 * years);
  const auto f2a = first_crossover(series.crossovers(), CrossoverKind::f2a);
  ASSERT_TRUE(f2a.has_value());
  EXPECT_GE(*f2a, 4e5);
  EXPECT_LE(*f2a, 3e6);
}

TEST(CalibrationFig6, ImgprocF2aAtLowerVolumeThanDnn) {
  // Paper: ImgProc F2A at ~300 K vs DNN at ~2 M (roughly 7x apart); we
  // preserve the ordering and magnitude gap.
  const std::vector<double> volumes = scenario::logspace(1e3, 1e7, 41);
  const auto imgproc = engine_for(Domain::imgproc).sweep_volume(volumes, 5, 2.0 * years);
  const auto dnn = engine_for(Domain::dnn).sweep_volume(volumes, 5, 2.0 * years);
  const auto img_f2a = first_crossover(imgproc.crossovers(), CrossoverKind::f2a);
  const auto dnn_f2a = first_crossover(dnn.crossovers(), CrossoverKind::f2a);
  ASSERT_TRUE(img_f2a && dnn_f2a);
  EXPECT_GE(*img_f2a, 1e5);
  EXPECT_LE(*img_f2a, 6e5);
  EXPECT_GT(*dnn_f2a / *img_f2a, 3.0) << "DNN tolerates much higher volumes";
}

TEST(CalibrationFig6, CryptoFpgaGreenerAtEveryVolume) {
  const std::vector<double> volumes = scenario::logspace(1e3, 1e7, 17);
  const auto series = engine_for(Domain::crypto).sweep_volume(volumes, 5, 2.0 * years);
  for (const double ratio : series.ratios()) {
    EXPECT_LT(ratio, 1.0);
  }
}

// --- Fig. 2: motivation (DNN, 1 vs 10 applications) -------------------------

TEST(CalibrationFig2, FpgaInitiallyWorseThenRoughlyQuarterLower) {
  const SweepEngine engine = engine_for(Domain::dnn);
  const auto one = engine.evaluate_point(1, 2.0 * years, 1e6);
  EXPECT_GT(one.ratio(), 1.0) << "single application: FPGA CFP must exceed ASIC";
  const auto ten = engine.evaluate_point(10, 2.0 * years, 1e6);
  // Paper: 25 % lower at ten applications; accept 15-45 %.
  EXPECT_LT(ten.ratio(), 0.85);
  EXPECT_GT(ten.ratio(), 0.55);
}

// --- Figs. 10-11: industry testcases ----------------------------------------

core::PlatformCfp industry_fpga_result(const device::ChipSpec& fpga) {
  const core::LifecycleModel model(core::industry_suite());
  workload::Application app;
  app.name = "app";
  app.lifetime = 2.0 * years;
  app.volume = 1e6;
  return model.evaluate_fpga(fpga, workload::homogeneous_schedule(3, app));
}

core::PlatformCfp industry_asic_result(const device::ChipSpec& asic) {
  const core::LifecycleModel model(core::industry_suite());
  workload::Application app;
  app.name = "app";
  app.lifetime = 6.0 * years;
  app.volume = 1e6;
  return model.evaluate_asic(asic, {app});
}

TEST(CalibrationFig10, OperationalDominatesIndustryFpgas) {
  for (const device::ChipSpec& fpga : {device::industry_fpga1(), device::industry_fpga2()}) {
    const auto result = industry_fpga_result(fpga);
    EXPECT_GT(result.total.operational.canonical(),
              0.5 * result.total.total().canonical())
        << fpga.name;
    // Followed by manufacturing, then design (paper ordering).
    EXPECT_GT(result.total.manufacturing, result.total.design) << fpga.name;
    EXPECT_GT(result.total.design, result.total.packaging) << fpga.name;
  }
}

TEST(CalibrationFig10, DesignIsAboutFifteenPercentOfEmbodied) {
  for (const device::ChipSpec& fpga : {device::industry_fpga1(), device::industry_fpga2()}) {
    const auto result = industry_fpga_result(fpga);
    const double share =
        result.total.design.canonical() / result.total.embodied().canonical();
    EXPECT_GT(share, 0.08) << fpga.name;
    EXPECT_LT(share, 0.22) << fpga.name;
  }
}

TEST(CalibrationFig10, AppDevIsMinimalEvenAfterThreeReconfigurations) {
  for (const device::ChipSpec& fpga : {device::industry_fpga1(), device::industry_fpga2()}) {
    const auto result = industry_fpga_result(fpga);
    EXPECT_LT(result.total.app_dev.canonical(),
              0.01 * result.total.total().canonical())
        << fpga.name;
  }
}

TEST(CalibrationFig11, OperationalDominatesIndustryAsics) {
  for (const device::ChipSpec& asic : {device::industry_asic1(), device::industry_asic2()}) {
    const auto result = industry_asic_result(asic);
    EXPECT_GT(result.total.operational.canonical(),
              0.5 * result.total.total().canonical())
        << asic.name;
    EXPECT_GT(result.total.manufacturing, result.total.design) << asic.name;
  }
}

TEST(CalibrationFig11, EolIsASmallContributor) {
  for (const device::ChipSpec& asic : {device::industry_asic1(), device::industry_asic2()}) {
    const auto result = industry_asic_result(asic);
    EXPECT_LT(std::abs(result.total.eol.canonical()),
              0.02 * result.total.embodied().canonical())
        << asic.name;
  }
}

// --- Headline claims from the abstract/conclusion ---------------------------

TEST(CalibrationHeadline, FpgaSustainableBelowSixteenMonthLifetimes) {
  // Claim (i): application lifetimes below ~1.6 years favour the FPGA
  // (DNN domain, paper defaults otherwise).
  const auto comparison = engine_for(Domain::dnn).evaluate_point(5, 1.2 * years, 1e6);
  EXPECT_LT(comparison.ratio(), 1.0);
}

TEST(CalibrationHeadline, FpgaSustainableAboveFiveApplications) {
  // Claim (ii): more than five applications favour the FPGA.
  const auto comparison = engine_for(Domain::dnn).evaluate_point(7, 2.0 * years, 1e6);
  EXPECT_LT(comparison.ratio(), 1.0);
}

TEST(CalibrationHeadline, FpgaSustainableAtLowVolume) {
  // Claim (iii): low application volumes favour the FPGA (all domains at
  // 100 K units, 5 apps, 2-year lifetimes).
  for (const Domain domain : device::all_domains()) {
    const auto comparison = engine_for(domain).evaluate_point(5, 2.0 * years, 1e5);
    EXPECT_LT(comparison.ratio(), 1.0) << to_string(domain);
  }
}

}  // namespace
}  // namespace greenfpga
