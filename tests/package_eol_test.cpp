/// Tests for the packaging substrate and the end-of-life model (Eq. 6).

#include <gtest/gtest.h>

#include "act/fab_model.hpp"
#include "eol/eol_model.hpp"
#include "package/package_model.hpp"
#include "units/units.hpp"

namespace greenfpga {
namespace {

using namespace units::unit;

TEST(Package, MonolithicIsSubstratePlusAssembly) {
  const pkg::PackageModel model;
  const pkg::PackageBreakdown result = model.package(150.0 * mm2);
  EXPECT_GT(result.substrate.canonical(), 0.0);
  EXPECT_EQ(result.interposer.canonical(), 0.0);
  EXPECT_DOUBLE_EQ(result.assembly.canonical(), 0.150);
  EXPECT_DOUBLE_EQ(result.total().canonical(),
                   (result.substrate + result.assembly).canonical());
}

TEST(Package, SubstrateScalesWithFootprint) {
  const pkg::PackageModel model;
  const auto small = model.package(100.0 * mm2);
  const auto large = model.package(400.0 * mm2);
  EXPECT_DOUBLE_EQ(large.substrate.canonical(), 4.0 * small.substrate.canonical());
}

TEST(Package, InterposerStylesNeedFabModel) {
  pkg::PackageParameters p;
  p.type = pkg::PackageType::silicon_interposer;
  const pkg::PackageModel without_fab(p);
  EXPECT_THROW(without_fab.package(400.0 * mm2, 2), std::invalid_argument);

  const act::FabModel fab;
  const pkg::PackageModel with_fab(p, &fab);
  const auto result = with_fab.package(400.0 * mm2, 2);
  EXPECT_GT(result.interposer.canonical(), 0.0);
}

TEST(Package, EmibCheaperThanFullInterposer) {
  const act::FabModel fab;
  pkg::PackageParameters interposer;
  interposer.type = pkg::PackageType::silicon_interposer;
  pkg::PackageParameters emib;
  emib.type = pkg::PackageType::emib;
  const auto si = pkg::PackageModel(interposer, &fab).package(600.0 * mm2, 3);
  const auto bridge = pkg::PackageModel(emib, &fab).package(600.0 * mm2, 3);
  EXPECT_LT(bridge.interposer, si.interposer);
}

TEST(Package, RdlAndThreeDChargeBonding) {
  pkg::PackageParameters rdl;
  rdl.type = pkg::PackageType::rdl_fanout;
  pkg::PackageParameters stacked;
  stacked.type = pkg::PackageType::three_d;
  const auto base = pkg::PackageModel().package(200.0 * mm2, 4);
  const auto fanout = pkg::PackageModel(rdl).package(200.0 * mm2, 4);
  const auto three_d = pkg::PackageModel(stacked).package(200.0 * mm2, 4);
  EXPECT_GT(fanout.assembly, base.assembly);
  EXPECT_GT(three_d.assembly, fanout.assembly);  // hybrid bonding costs 2x
}

TEST(Package, MassGrowsWithArea) {
  const pkg::PackageModel model;
  const units::Mass small = model.package_mass(100.0 * mm2);
  const units::Mass large = model.package_mass(600.0 * mm2);
  EXPECT_GT(large, small);
  // Sanity: packages weigh grams to tens of grams.
  EXPECT_GT(small.in(g), 1.0);
  EXPECT_LT(large.in(g), 100.0);
}

TEST(Package, InvalidInputsThrow) {
  const pkg::PackageModel model;
  EXPECT_THROW(model.package(units::Area{}), std::invalid_argument);
  EXPECT_THROW(model.package(100.0 * mm2, 0), std::invalid_argument);
  EXPECT_THROW(model.package_mass(units::Area{}), std::invalid_argument);
  pkg::PackageParameters bad;
  bad.footprint_ratio = 0.5;
  EXPECT_THROW(pkg::PackageModel{bad}, std::invalid_argument);
}

TEST(Package, TypeNames) {
  EXPECT_EQ(to_string(pkg::PackageType::monolithic), "monolithic");
  EXPECT_EQ(to_string(pkg::PackageType::silicon_interposer), "silicon-interposer");
  EXPECT_EQ(to_string(pkg::PackageType::three_d), "3d");
}

TEST(Eol, MatchesEquationSix) {
  // C_EOL = (1-delta)*C_dis - delta*C_recycle, per unit mass.
  eol::EolParameters p;
  p.recycled_fraction = 0.25;
  p.discard_factor = 2.0 * kg_per_kg;
  p.recycle_credit_factor = 8.0 * kg_per_kg;
  const eol::EolModel model(p);
  const eol::EolBreakdown result = model.end_of_life(1.0 * kg);
  EXPECT_DOUBLE_EQ(result.discard.in(kg_co2e), 0.75 * 2.0);
  EXPECT_DOUBLE_EQ(result.credit.in(kg_co2e), 0.25 * 8.0);
  EXPECT_DOUBLE_EQ(result.total().in(kg_co2e), 1.5 - 2.0);
}

TEST(Eol, ZeroRecyclingIsPureDiscard) {
  eol::EolParameters p;
  p.recycled_fraction = 0.0;
  const eol::EolModel model(p);
  const auto result = model.end_of_life(0.040 * kg);
  EXPECT_EQ(result.credit.canonical(), 0.0);
  EXPECT_GT(result.total().canonical(), 0.0);
}

TEST(Eol, FullRecyclingIsPureCredit) {
  eol::EolParameters p;
  p.recycled_fraction = 1.0;
  const eol::EolModel model(p);
  const auto result = model.end_of_life(0.040 * kg);
  EXPECT_EQ(result.discard.canonical(), 0.0);
  EXPECT_LT(result.total().canonical(), 0.0);
}

TEST(Eol, NetCreditPossibleAtModerateDelta) {
  // With WARM's recycle credits an order of magnitude above discard costs,
  // even modest recycling rates make EOL a net credit.
  const eol::EolModel model;  // delta = 0.2, defaults mid-range WARM
  EXPECT_LT(model.end_of_life(1.0 * kg).total().canonical(), 0.0);
}

TEST(Eol, ScalesLinearlyWithMass) {
  const eol::EolModel model;
  const auto one = model.end_of_life(1.0 * kg).total();
  const auto ten = model.end_of_life(10.0 * kg).total();
  EXPECT_NEAR(ten.canonical(), 10.0 * one.canonical(), 1e-12);
}

TEST(Eol, ZeroMassIsZero) {
  const eol::EolModel model;
  EXPECT_EQ(model.end_of_life(units::Mass{}).total().canonical(), 0.0);
}

TEST(Eol, WarmUnitConversionIsMetricPerShortTon) {
  // 1 MTCO2E/ton = 1000 kg CO2e per 907.18 kg processed.
  EXPECT_NEAR((1.0 * mtco2e_per_ton).in(kg_per_kg), 1000.0 / 907.18474, 1e-9);
}

TEST(Eol, ValidationRejectsBadInputs) {
  eol::EolParameters bad_delta;
  bad_delta.recycled_fraction = -0.1;
  EXPECT_THROW(eol::EolModel{bad_delta}, std::invalid_argument);
  eol::EolParameters bad_factor;
  bad_factor.discard_factor = units::CarbonPerMass{-1.0};
  EXPECT_THROW(eol::EolModel{bad_factor}, std::invalid_argument);
  const eol::EolModel model;
  EXPECT_THROW(model.end_of_life(units::Mass{-1.0}), std::invalid_argument);
}

// Property: EOL total is monotonically decreasing in delta (more recycling
// never makes end-of-life worse).
class EolDeltaProperty : public ::testing::TestWithParam<double> {};

TEST_P(EolDeltaProperty, MoreRecyclingNeverWorse) {
  eol::EolParameters lower;
  lower.recycled_fraction = GetParam();
  eol::EolParameters higher;
  higher.recycled_fraction = GetParam() + 0.2;
  const units::Mass mass = 0.05 * kg;
  EXPECT_LE(eol::EolModel(higher).end_of_life(mass).total().canonical(),
            eol::EolModel(lower).end_of_life(mass).total().canonical());
}

INSTANTIATE_TEST_SUITE_P(DeltaSweep, EolDeltaProperty,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8));

}  // namespace
}  // namespace greenfpga
