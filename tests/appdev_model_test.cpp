/// Tests for the application-development CFP model (Eq. 7).

#include <gtest/gtest.h>

#include "core/appdev_model.hpp"
#include "units/units.hpp"

namespace greenfpga::core {
namespace {

using namespace units::unit;

AppDevParameters reference_parameters() {
  AppDevParameters p;
  p.frontend_time = 2.0 * months;
  p.backend_time = 1.0 * months;
  p.config_time = 6.0 * minutes;
  p.dev_system_power = 250.0 * w;
  p.dev_systems = 8.0;
  p.dev_intensity = 400.0 * g_per_kwh;
  return p;
}

TEST(AppDevModel, EquationSevenTime) {
  const AppDevModel model(reference_parameters());
  // T = N_app*(T_FE + T_BE) + N_vol*T_config = 4*3 months + 1e6*6 min.
  const units::TimeSpan time = model.development_time(4, 1e6, /*is_fpga=*/true);
  EXPECT_NEAR(time.in(hours), 4.0 * 3.0 * 730.0 + 1e6 * 0.1, 1e-6);
}

TEST(AppDevModel, AsicTimeIsZeroByDefault) {
  // Paper: T_FE and T_BE are zero for ASICs (charged in Eq. 4); no
  // configuration either.
  const AppDevModel model(reference_parameters());
  EXPECT_EQ(model.development_time(5, 1e6, /*is_fpga=*/false).canonical(), 0.0);
}

TEST(AppDevModel, OptionalAsicSoftwareFlow) {
  AppDevParameters p = reference_parameters();
  p.asic_software_dev_time = 1.0 * months;
  const AppDevModel model(p);
  EXPECT_NEAR(model.development_time(3, 1e6, false).in(months), 3.0, 1e-9);
  // Software flow also carries carbon per application.
  EXPECT_GT(model.per_application(1e6, false).engineering.canonical(), 0.0);
  EXPECT_EQ(model.per_application(1e6, false).configuration.canonical(), 0.0);
}

TEST(AppDevModel, EngineeringCarbonMatchesHandComputation) {
  const AppDevModel model(reference_parameters());
  // 8 systems * 0.25 kW * 3 months (2190 h) * 0.4 kg/kWh = 1752 kg.
  const AppDevBreakdown result = model.per_application(0.0, /*is_fpga=*/true);
  EXPECT_NEAR(result.engineering.in(kg_co2e), 8.0 * 0.25 * 2190.0 * 0.4, 1e-6);
  EXPECT_EQ(result.configuration.canonical(), 0.0);
}

TEST(AppDevModel, ConfigurationScalesWithVolume) {
  const AppDevModel model(reference_parameters());
  const auto small = model.per_application(1e3, true).configuration;
  const auto large = model.per_application(1e6, true).configuration;
  EXPECT_NEAR(large.canonical(), 1e3 * small.canonical(), 1e-6);
  // 0.25 kW * 0.1 h * 0.4 kg/kWh = 10 g per chip.
  EXPECT_NEAR((large.canonical() / 1e6), 0.01, 1e-9);
}

TEST(AppDevModel, TotalSumsComponents) {
  const AppDevModel model(reference_parameters());
  const AppDevBreakdown result = model.per_application(5e5, true);
  EXPECT_DOUBLE_EQ(result.total().canonical(),
                   (result.engineering + result.configuration).canonical());
}

TEST(AppDevModel, AppDevIsSmallAgainstDesign) {
  // Fig. 10's observation: app-dev is a minimal overhead.  At paper-like
  // parameters one application's dev carbon is tonnes, not kilotonnes.
  const AppDevModel model(reference_parameters());
  const auto result = model.per_application(1e6, true).total();
  EXPECT_LT(result.in(t_co2e), 50.0);
  EXPECT_GT(result.in(t_co2e), 0.1);
}

TEST(AppDevModel, ValidationRejectsBadInputs) {
  AppDevParameters p = reference_parameters();
  p.dev_systems = 0.0;
  EXPECT_THROW(AppDevModel{p}, std::invalid_argument);

  p = reference_parameters();
  p.frontend_time = units::TimeSpan{-1.0};
  EXPECT_THROW(AppDevModel{p}, std::invalid_argument);

  const AppDevModel model(reference_parameters());
  EXPECT_THROW(model.development_time(-1, 1e6, true), std::invalid_argument);
  EXPECT_THROW(model.development_time(1, -1.0, true), std::invalid_argument);
  EXPECT_THROW(model.per_application(-1.0, true), std::invalid_argument);
}

// Property: Eq. (7) time is linear in app count for FPGAs.
class AppCountProperty : public ::testing::TestWithParam<int> {};

TEST_P(AppCountProperty, TimeLinearInAppCount) {
  const AppDevModel model(reference_parameters());
  const double fixed_volume_term =
      model.development_time(0, 1e5, true).in(hours);
  const double one_app =
      model.development_time(1, 0.0, true).in(hours);
  const double n_apps = model.development_time(GetParam(), 1e5, true).in(hours);
  EXPECT_NEAR(n_apps, fixed_volume_term + GetParam() * one_app, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Counts, AppCountProperty, ::testing::Values(1, 2, 5, 10));

}  // namespace
}  // namespace greenfpga::core
