/// In-process tests of the `greenfpga serve` daemon: an ephemeral-port
/// server driven through the real socket client.  Pins the acceptance
/// contract -- POST /v1/run responses byte-identical to
/// `greenfpga run --format json` for all nine scenario kinds, cache
/// hits included -- plus the stats/platforms/health endpoints, graceful
/// 4xx errors (offending key named, depth bomb survived), and concurrent
/// keep-alive clients (raced under ASan+UBSan in CI).  The event-loop
/// regression suite drives raw sockets: a connected-but-never-reading
/// peer must not freeze accept or shedding, pipelined keep-alive
/// requests answer in order, half-received requests 408 out, and a
/// `--cache-dir` restart answers from disk with identical bytes.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dse/frontier_spec.hpp"
#include "io/json.hpp"
#include "report/result_render.hpp"
#include "scenario/engine.hpp"
#include "scenario/result_io.hpp"
#include "serve/handlers.hpp"
#include "serve/http.hpp"
#include "serve/server.hpp"

namespace greenfpga::serve {
namespace {

using scenario::ScenarioKind;
using scenario::ScenarioSpec;

/// Small, fast specs, one per kind (mirrors the golden suite's shapes).
ScenarioSpec spec_for(ScenarioKind kind) {
  ScenarioSpec spec = ScenarioSpec::make(kind, device::Domain::dnn);
  spec.name = "serve " + to_string(kind);
  switch (kind) {
    case ScenarioKind::sweep:
      spec.axes = {scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 3, 3)};
      break;
    case ScenarioKind::grid:
      spec.axes = {scenario::AxisSpec::log(scenario::SweepVariable::volume, 1e5, 1e6, 2),
                   scenario::AxisSpec::linear(scenario::SweepVariable::lifetime_years,
                                              0.5, 1.5, 2)};
      break;
    case ScenarioKind::timeline:
      spec.timeline.horizon_years = 10.0;
      spec.timeline.step_years = 1.0;
      break;
    case ScenarioKind::sensitivity:
      spec.sensitivity.samples = 16;
      break;
    case ScenarioKind::montecarlo:
      spec.montecarlo.samples = 8;
      break;
    case ScenarioKind::frontier:
      spec.platforms = {scenario::PlatformRef{.name = "asic"},
                        scenario::PlatformRef{.name = "fpga"},
                        scenario::PlatformRef{.name = "gpu"},
                        scenario::PlatformRef{.name = "cpu"}};
      spec.frontier.axes = {
          dse::FrontierAxisSpec::linear(dse::FrontierVariable::app_count, 1, 3, 3),
          dse::FrontierAxisSpec::log(dse::FrontierVariable::volume, 1e5, 1e6, 2)};
      spec.frontier.confidence_samples = 4;
      break;
    case ScenarioKind::fleet:
      spec.fleet->mc_samples = 4;
      break;
    default:
      break;
  }
  return spec;
}

const std::vector<ScenarioKind>& all_kinds() {
  static const std::vector<ScenarioKind> kinds{
      ScenarioKind::compare,     ScenarioKind::sweep,     ScenarioKind::grid,
      ScenarioKind::timeline,    ScenarioKind::node_dse,  ScenarioKind::breakeven,
      ScenarioKind::sensitivity, ScenarioKind::montecarlo,
      ScenarioKind::frontier,    ScenarioKind::fleet};
  return kinds;
}

/// One running server + context per fixture instance.
class ServeTest : public ::testing::Test {
 protected:
  ServeTest()
      : context_(scenario::EngineOptions{.threads = 1}, /*cache_capacity=*/64),
        server_(make_router(context_), ServerOptions{}) {
    server_.start();
  }
  ~ServeTest() override { server_.stop(); }

  [[nodiscard]] HttpClient client() { return HttpClient("127.0.0.1", server_.port()); }

  ServeContext context_;
  Server server_;
};

/// The exact bytes `greenfpga run --format json` prints for `spec`.
std::string cli_json_bytes(const ScenarioSpec& spec) {
  const scenario::Engine engine(scenario::EngineOptions{.threads = 1});
  std::ostringstream out;
  report::render_result(engine.run(spec), report::OutputFormat::json, out);
  return out.str();
}

TEST_F(ServeTest, HealthzReportsOk) {
  HttpClient http = client();
  const HttpResponse response = http.request("GET", "/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(io::parse_json(response.body).at("status").as_string(), "ok");
}

TEST_F(ServeTest, PlatformsListsBuiltinsAndDomains) {
  HttpClient http = client();
  const HttpResponse response = http.request("GET", "/v1/platforms");
  EXPECT_EQ(response.status, 200);
  const io::Json body = io::parse_json(response.body);
  const io::Json::Array& platforms = body.at("platforms").as_array();
  ASSERT_EQ(platforms.size(), 5u);
  EXPECT_EQ(platforms[0].as_string(), "asic");
  EXPECT_EQ(platforms[1].as_string(), "chiplet_fpga");
  EXPECT_EQ(platforms[2].as_string(), "cpu");
  EXPECT_EQ(platforms[3].as_string(), "fpga");
  EXPECT_EQ(platforms[4].as_string(), "gpu");
  EXPECT_EQ(body.at("domains").size(), 3u);
}

TEST_F(ServeTest, UnknownPlatformAnswers400WithTheRegistryError) {
  // The PlatformRegistry::resolve message -- including the full list of
  // registered names -- must reach the HTTP client verbatim.
  HttpClient http = client();
  ScenarioSpec spec = spec_for(ScenarioKind::compare);
  spec.platforms = {scenario::PlatformRef{.name = "asic"},
                    scenario::PlatformRef{.name = "tpu"}};
  const HttpResponse response =
      http.request("POST", "/v1/run", scenario::spec_to_json(spec).dump());
  ASSERT_EQ(response.status, 400) << response.body;
  const std::string error = io::parse_json(response.body).at("error").as_string();
  EXPECT_NE(error.find("PlatformRegistry: unknown platform 'tpu'"), std::string::npos)
      << error;
  EXPECT_NE(error.find("(registered: asic, chiplet_fpga, cpu, fpga, gpu)"),
            std::string::npos)
      << error;
}

TEST_F(ServeTest, RunIsByteIdenticalToCliJsonForAllKinds) {
  HttpClient http = client();
  for (const ScenarioKind kind : all_kinds()) {
    const ScenarioSpec spec = spec_for(kind);
    const std::string body = spec_to_json(spec).dump();
    const std::string expected = cli_json_bytes(spec);
    // Cold: a miss, byte-identical to the CLI.
    const HttpResponse first = http.request("POST", "/v1/run", body);
    ASSERT_EQ(first.status, 200) << to_string(kind) << ": " << first.body;
    EXPECT_EQ(first.header_or("x-cache"), "miss") << to_string(kind);
    EXPECT_EQ(first.body, expected) << to_string(kind);
    // Warm: a hit, still the same bytes.
    const HttpResponse second = http.request("POST", "/v1/run", body);
    ASSERT_EQ(second.status, 200) << to_string(kind);
    EXPECT_EQ(second.header_or("x-cache"), "hit") << to_string(kind);
    EXPECT_EQ(second.body, expected) << to_string(kind);
    EXPECT_EQ(second.header_or("x-cache-key"), first.header_or("x-cache-key"));
  }
}

TEST_F(ServeTest, RunAcceptsSpecFileDialectWithComments) {
  HttpClient http = client();
  const std::string body =
      "// a spec file POSTed verbatim\n" + spec_to_json(spec_for(ScenarioKind::compare)).dump();
  EXPECT_EQ(http.request("POST", "/v1/run", body).status, 200);
}

TEST_F(ServeTest, StatsCountsCacheAndRequests) {
  HttpClient http = client();
  const std::string body = spec_to_json(spec_for(ScenarioKind::compare)).dump();
  (void)http.request("POST", "/v1/run", body);
  (void)http.request("POST", "/v1/run", body);
  const HttpResponse response = http.request("GET", "/v1/stats");
  ASSERT_EQ(response.status, 200);
  const io::Json stats = io::parse_json(response.body);
  EXPECT_EQ(stats.at("cache").at("hits").as_number(), 1.0);
  EXPECT_EQ(stats.at("cache").at("misses").as_number(), 1.0);
  EXPECT_EQ(stats.at("cache").at("size").as_number(), 1.0);
  EXPECT_EQ(stats.at("cache").at("capacity").as_number(), 64.0);
  EXPECT_EQ(stats.at("requests").as_number(), 3.0);
  EXPECT_EQ(stats.at("errors").as_number(), 0.0);
  // The warm request streamed the rendered bytes straight back.
  EXPECT_EQ(stats.at("fast_path_hits").as_number(), 1.0);
}

TEST_F(ServeTest, CacheHitStreamsRenderedBodyWithoutRedump) {
  HttpClient http = client();
  const ScenarioSpec spec = spec_for(ScenarioKind::compare);
  const std::string compact = spec_to_json(spec).dump(0);
  const std::string pretty = spec_to_json(spec).dump(2);

  const HttpResponse cold = http.request("POST", "/v1/run", compact);
  ASSERT_EQ(cold.status, 200) << cold.body;
  EXPECT_EQ(cold.header_or("x-cache"), "miss");
  EXPECT_EQ(context_.fast_path_hits.load(), 0u);
  EXPECT_EQ(context_.rendered().size(), 1u);

  // Warm, same bytes: engine hit + rendered-body hit, response
  // byte-identical to the cold render.
  const HttpResponse warm = http.request("POST", "/v1/run", compact);
  ASSERT_EQ(warm.status, 200);
  EXPECT_EQ(warm.header_or("x-cache"), "hit");
  EXPECT_EQ(warm.body, cold.body);
  EXPECT_EQ(context_.fast_path_hits.load(), 1u);

  // A formatting variant of the same spec normalizes to the same content
  // key, so it rides the fast path too.
  const HttpResponse variant = http.request("POST", "/v1/run", pretty);
  ASSERT_EQ(variant.status, 200);
  EXPECT_EQ(variant.header_or("x-cache"), "hit");
  EXPECT_EQ(variant.body, cold.body);
  EXPECT_EQ(context_.fast_path_hits.load(), 2u);
  EXPECT_EQ(context_.rendered().size(), 1u);

  // The cache-key header is the engine key's digest, identical across
  // all three; the request digest tracks the POSTed bytes (facade dumps
  // emit sorted keys, so hash-while-parse always lands).
  EXPECT_EQ(warm.header_or("x-cache-key"), cold.header_or("x-cache-key"));
  EXPECT_EQ(variant.header_or("x-cache-key"), cold.header_or("x-cache-key"));
  EXPECT_FALSE(cold.header_or("x-request-digest").empty());
  EXPECT_EQ(warm.header_or("x-request-digest"), cold.header_or("x-request-digest"));
  // The digest streams canonical bytes, so formatting never changes it.
  EXPECT_EQ(variant.header_or("x-request-digest"), cold.header_or("x-request-digest"));
}

TEST_F(ServeTest, BatchMatchesIndividualRunsAndDedups) {
  HttpClient http = client();
  const ScenarioSpec a = spec_for(ScenarioKind::compare);
  const ScenarioSpec b = spec_for(ScenarioKind::breakeven);
  io::Json request = io::Json::object();
  io::Json specs = io::Json::array();
  specs.push_back(spec_to_json(a));
  specs.push_back(spec_to_json(b));
  specs.push_back(spec_to_json(a));  // repeated: evaluated once
  request["specs"] = std::move(specs);
  const HttpResponse response = http.request("POST", "/v1/batch", request.dump());
  ASSERT_EQ(response.status, 200) << response.body;
  const io::Json results = io::parse_json(response.body);
  ASSERT_EQ(results.size(), 3u);
  const scenario::Engine cold(scenario::EngineOptions{.threads = 1});
  EXPECT_EQ(results.at(std::size_t{0}).dump(),
            scenario::result_to_json(cold.run(a)).dump());
  EXPECT_EQ(results.at(std::size_t{1}).dump(),
            scenario::result_to_json(cold.run(b)).dump());
  EXPECT_EQ(results.at(std::size_t{2}).dump(), results.at(std::size_t{0}).dump());
  // The repeat was deduplicated: two distinct keys -> two misses.
  EXPECT_EQ(context_.cache().stats().misses, 2u);
}

TEST_F(ServeTest, BadSpecAnswers400NamingTheOffendingKey) {
  HttpClient http = client();
  const HttpResponse response =
      http.request("POST", "/v1/run", R"({"kind": "compare", "bogus_key": 1})");
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(io::parse_json(response.body).at("error").as_string().find("bogus_key"),
            std::string::npos)
      << response.body;
  // Bad batch entries name the index.
  const HttpResponse batch =
      http.request("POST", "/v1/batch", R"({"specs": [{"kind": "nope"}]})");
  EXPECT_EQ(batch.status, 400);
  EXPECT_NE(io::parse_json(batch.body).at("error").as_string().find("specs[0]"),
            std::string::npos)
      << batch.body;
}

TEST_F(ServeTest, DepthBombAnswers400WithoutCrashing) {
  HttpClient http = client();
  const std::string bomb(100'000, '[');
  const HttpResponse response = http.request("POST", "/v1/run", bomb);
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(io::parse_json(response.body).at("error").as_string().find("nesting depth"),
            std::string::npos)
      << response.body;
  // The daemon survived: the same connection keeps serving.
  EXPECT_EQ(http.request("GET", "/healthz").status, 200);
}

TEST_F(ServeTest, UnknownRoutesAnswer404And405) {
  HttpClient http = client();
  EXPECT_EQ(http.request("GET", "/nope").status, 404);
  const HttpResponse wrong_method = http.request("GET", "/v1/run");
  EXPECT_EQ(wrong_method.status, 405);
  EXPECT_EQ(wrong_method.header_or("allow"), "POST");
}

TEST_F(ServeTest, OversizedBodyAnswers413) {
  // Over the 8 MiB ingestion bound: rejected at the framing layer.
  HttpClient http = client();
  const std::string huge(9 * 1024 * 1024, 'x');
  const HttpResponse response = http.request("POST", "/v1/run", huge);
  EXPECT_EQ(response.status, 413);
}

TEST_F(ServeTest, ConcurrentClientsGetIdenticalBytes) {
  constexpr int kClients = 6;
  constexpr int kRequests = 8;
  const ScenarioSpec spec = spec_for(ScenarioKind::compare);
  const std::string body = spec_to_json(spec).dump();
  const std::string expected = cli_json_bytes(spec);
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        HttpClient http("127.0.0.1", server_.port());
        for (int r = 0; r < kRequests; ++r) {
          const HttpResponse response = http.request("POST", "/v1/run", body);
          if (response.status != 200 || response.body != expected) {
            failures[c] = "client " + std::to_string(c) + " request " +
                          std::to_string(r) + ": status " +
                          std::to_string(response.status);
            return;
          }
        }
      } catch (const std::exception& error) {
        failures[c] = error.what();
      }
    });
  }
  for (std::thread& worker : clients) {
    worker.join();
  }
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
  const scenario::ResultCacheStats stats = context_.cache().stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kClients) * kRequests);
  EXPECT_EQ(stats.size, 1u);  // one distinct spec
}

/// A raw TCP connection for driving the server below the HttpClient
/// abstraction: malformed bytes, pipelined writes, silent peers.
class RawSocket {
 public:
  explicit RawSocket(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      throw std::runtime_error("RawSocket: connect failed");
    }
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  ~RawSocket() { close(); }
  RawSocket(const RawSocket&) = delete;
  RawSocket& operator=(const RawSocket&) = delete;

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void send_bytes(const std::string& bytes) const {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Everything received until the server closes (or the 5 s guard).
  [[nodiscard]] std::string read_until_close() const {
    std::string received;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) {
        break;
      }
      received.append(chunk, static_cast<std::size_t>(n));
    }
    return received;
  }

 private:
  int fd_ = -1;
};

TEST(ServeServer, NeverReadingPeerDoesNotFreezeAcceptOrShedding) {
  // The old acceptor's 503 overload path wrote to the shed peer while
  // holding the connection lock with no send timeout: one connected
  // peer that never read froze accept and reaping for everyone.  With
  // max_connections=1 the single slot is held by a silent peer and a
  // second silent peer is shed -- and reading clients must still get
  // prompt answers throughout.
  ServeContext context(scenario::EngineOptions{.threads = 1}, 4);
  ServerOptions options;
  options.max_connections = 1;
  Server server(make_router(context), options);
  server.start();

  RawSocket slot_holder(server.port());  // occupies the only slot, stays silent
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  RawSocket shed_and_silent(server.port());  // shed; never reads its 503
  // Reading clients are shed promptly -- accept never blocked.
  for (int i = 0; i < 3; ++i) {
    const RawSocket reader(server.port());
    const std::string answer = reader.read_until_close();
    EXPECT_NE(answer.find("HTTP/1.1 503"), std::string::npos) << answer;
    EXPECT_NE(answer.find("connection limit reached"), std::string::npos) << answer;
  }
  // Freeing the slot un-sheds: the next client is served normally.
  slot_holder.close();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  int status = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    HttpClient http("127.0.0.1", server.port());
    status = http.request("GET", "/healthz").status;
    if (status == 200) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(status, 200);
}

TEST(ServeServer, RequestLineWithSpacedTargetAnswers400) {
  // `rfind(' ')` parsing used to silently accept `GET /a b HTTP/1.1` as
  // target "/a b"; a spaced request line is malformed and must be 400.
  ServeContext context(scenario::EngineOptions{.threads = 1}, 4);
  Server server(make_router(context), ServerOptions{});
  server.start();
  RawSocket raw(server.port());
  raw.send_bytes("GET /a b HTTP/1.1\r\nhost: t\r\n\r\n");
  const std::string answer = raw.read_until_close();
  EXPECT_NE(answer.find("HTTP/1.1 400"), std::string::npos) << answer;
  EXPECT_NE(answer.find("malformed request line"), std::string::npos) << answer;
}

TEST(ServeServer, PipelinedKeepAliveRequestsAnswerInOrder) {
  ServeContext context(scenario::EngineOptions{.threads = 1}, 4);
  Server server(make_router(context), ServerOptions{});
  server.start();
  RawSocket raw(server.port());
  raw.send_bytes(
      "GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n"
      "GET /v1/platforms HTTP/1.1\r\nhost: t\r\n\r\n"
      "GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n");
  const std::string answer = raw.read_until_close();
  // Three responses, in request order, on the one connection.
  const std::size_t first = answer.find("HTTP/1.1 200 OK");
  ASSERT_NE(first, std::string::npos) << answer;
  const std::size_t ok1 = answer.find("\"status\": \"ok\"", first);
  ASSERT_NE(ok1, std::string::npos) << answer;
  const std::size_t platforms = answer.find("\"platforms\"", ok1);
  ASSERT_NE(platforms, std::string::npos) << answer;
  const std::size_t ok2 = answer.find("\"status\": \"ok\"", platforms);
  ASSERT_NE(ok2, std::string::npos) << answer;
  EXPECT_EQ(server.requests_served(), 3u);
}

TEST(ServeServer, HalfReceivedRequestTimesOutWith408) {
  ServeContext context(scenario::EngineOptions{.threads = 1}, 4);
  ServerOptions options;
  options.io_timeout_ms = 200;
  Server server(make_router(context), options);
  server.start();
  RawSocket raw(server.port());
  raw.send_bytes("GET /healthz HTT");  // and then silence
  const std::string answer = raw.read_until_close();
  EXPECT_NE(answer.find("HTTP/1.1 408"), std::string::npos) << answer;
  EXPECT_NE(answer.find("request timed out"), std::string::npos) << answer;
}

TEST(ServeServer, IdleKeepAliveConnectionsAreReaped) {
  ServeContext context(scenario::EngineOptions{.threads = 1}, 4);
  ServerOptions options;
  options.idle_timeout_ms = 150;
  Server server(make_router(context), options);
  server.start();
  RawSocket raw(server.port());
  raw.send_bytes("GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
  // One answer arrives, then the idle sweep closes the connection --
  // read_until_close returning (instead of hanging to its 5 s guard
  // after one response) is the reap.
  const std::string answer = raw.read_until_close();
  EXPECT_NE(answer.find("HTTP/1.1 200 OK"), std::string::npos) << answer;
  EXPECT_NE(answer.find("\"status\": \"ok\""), std::string::npos) << answer;
}

TEST(ServeServer, CacheDirSurvivesRestartWithIdenticalBytes) {
  const std::string dir = ::testing::TempDir() + "/greenfpga_serve_cache_dir";
  std::filesystem::remove_all(dir);
  const ScenarioSpec spec = spec_for(ScenarioKind::compare);
  const std::string body = spec_to_json(spec).dump();
  const std::string expected = cli_json_bytes(spec);
  {
    ServeContext context(scenario::EngineOptions{.threads = 1}, 64, 8, dir);
    Server server(make_router(context), ServerOptions{});
    server.start();
    HttpClient http("127.0.0.1", server.port());
    const HttpResponse response = http.request("POST", "/v1/run", body);
    ASSERT_EQ(response.status, 200) << response.body;
    EXPECT_EQ(response.header_or("x-cache"), "miss");
    EXPECT_EQ(response.body, expected);
    server.stop();
  }
  // A brand-new daemon over the same directory: the answer comes from
  // the disk tier -- a hit, byte-identical, engine never re-runs.
  {
    ServeContext context(scenario::EngineOptions{.threads = 1}, 64, 8, dir);
    Server server(make_router(context), ServerOptions{});
    server.start();
    HttpClient http("127.0.0.1", server.port());
    const HttpResponse response = http.request("POST", "/v1/run", body);
    ASSERT_EQ(response.status, 200) << response.body;
    EXPECT_EQ(response.header_or("x-cache"), "hit");
    EXPECT_EQ(response.body, expected);
    const scenario::ResultCacheStats stats = context.cache().stats();
    EXPECT_EQ(stats.disk_hits, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST(RequestFramerTest, FramesIncrementallyAndPipelined) {
  RequestFramer framer;
  HttpRequest request;
  std::string buffer;
  const std::string post =
      "POST /v1/run HTTP/1.1\r\ncontent-length: 4\r\n\r\nspec";
  // Byte-at-a-time arrival: no request until the last body byte lands.
  for (std::size_t i = 0; i + 1 < post.size(); ++i) {
    buffer.push_back(post[i]);
    EXPECT_FALSE(framer.next(buffer, request)) << "byte " << i;
  }
  buffer.push_back(post.back());
  ASSERT_TRUE(framer.next(buffer, request));
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/run");
  EXPECT_EQ(request.body, "spec");
  EXPECT_TRUE(buffer.empty());
  // Two pipelined requests in one burst: consumed one `next` at a time.
  buffer = "GET /a HTTP/1.1\r\n\r\nGET /b?x=1 HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(framer.next(buffer, request));
  EXPECT_EQ(request.target, "/a");
  ASSERT_TRUE(framer.next(buffer, request));
  EXPECT_EQ(request.target, "/b");
  EXPECT_EQ(request.query, "x=1");
  EXPECT_FALSE(framer.next(buffer, request));
  EXPECT_FALSE(framer.mid_request(buffer));
}

TEST(RequestFramerTest, RejectsMalformedRequestLines) {
  HttpRequest request;
  for (const std::string& line :
       {std::string("GET /a b HTTP/1.1"), std::string("GET /a"),
        std::string("GET  /a HTTP/1.1"), std::string("GET /a HTTP/2.0")}) {
    RequestFramer framer;
    std::string buffer = line + "\r\n\r\n";
    EXPECT_THROW((void)framer.next(buffer, request), HttpError) << line;
  }
  // Relative targets only: no authority-form or garbage.
  RequestFramer framer;
  std::string buffer = "GET example.com HTTP/1.1\r\n\r\n";
  EXPECT_THROW((void)framer.next(buffer, request), HttpError);
}

TEST(ServeServer, StopUnblocksIdleConnectionsAndIsIdempotent) {
  ServeContext context(scenario::EngineOptions{.threads = 1}, 4);
  Server server(make_router(context), ServerOptions{});
  server.start();
  HttpClient http("127.0.0.1", server.port());
  EXPECT_EQ(http.request("GET", "/healthz").status, 200);
  // The client's keep-alive connection is idle inside the server now.
  server.stop();
  server.stop();  // idempotent
  EXPECT_GE(server.requests_served(), 1u);
}

TEST(ServeServer, EphemeralPortsAreIndependent) {
  ServeContext context(scenario::EngineOptions{.threads = 1}, 4);
  Server first(make_router(context), ServerOptions{});
  Server second(make_router(context), ServerOptions{});
  first.start();
  second.start();
  EXPECT_NE(first.port(), second.port());
  HttpClient http("127.0.0.1", second.port());
  EXPECT_EQ(http.request("GET", "/healthz").status, 200);
}

}  // namespace
}  // namespace greenfpga::serve
