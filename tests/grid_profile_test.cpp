/// Tests for time-varying grid profiles and carbon-aware duty scheduling.

#include <gtest/gtest.h>

#include "act/grid_profile.hpp"
#include "act/operational_model.hpp"
#include "units/units.hpp"

namespace greenfpga::act {
namespace {

using namespace units::unit;

TEST(DailyProfile, DefaultIsFlat) {
  const DailyProfile flat;
  for (int hour = 0; hour < 24; ++hour) {
    EXPECT_DOUBLE_EQ(flat.multiplier(hour), 1.0);
  }
}

TEST(DailyProfile, NormalisesToUnitMean) {
  std::array<double, 24> raw{};
  raw.fill(3.0);
  raw[0] = 9.0;  // deliberately unnormalised
  const DailyProfile profile(raw);
  double sum = 0.0;
  for (int hour = 0; hour < 24; ++hour) {
    sum += profile.multiplier(hour);
  }
  EXPECT_NEAR(sum / 24.0, 1.0, 1e-12);
}

TEST(DailyProfile, RejectsNonPositiveMultipliers) {
  std::array<double, 24> raw{};
  raw.fill(1.0);
  raw[5] = 0.0;
  EXPECT_THROW(DailyProfile{raw}, std::invalid_argument);
}

TEST(DailyProfile, HourBoundsChecked) {
  const DailyProfile profile;
  EXPECT_THROW(profile.multiplier(-1), std::invalid_argument);
  EXPECT_THROW(profile.multiplier(24), std::invalid_argument);
}

TEST(DailyProfile, BuiltInShapesAreNormalised) {
  for (const DailyProfile& profile :
       {DailyProfile::solar_duck(), DailyProfile::windy_night()}) {
    double sum = 0.0;
    for (int hour = 0; hour < 24; ++hour) {
      sum += profile.multiplier(hour);
    }
    EXPECT_NEAR(sum / 24.0, 1.0, 1e-12);
  }
}

TEST(DailyProfile, SolarDuckHasNoonTroughAndEveningPeak) {
  const DailyProfile duck = DailyProfile::solar_duck();
  EXPECT_LT(duck.multiplier(12), duck.multiplier(0));
  EXPECT_GT(duck.multiplier(19), duck.multiplier(12));
  EXPECT_GT(duck.multiplier(19), 1.0);
  EXPECT_LT(duck.multiplier(12), 1.0);
}

TEST(Scheduling, UniformPolicySeesAnnualMean) {
  const DailyProfile duck = DailyProfile::solar_duck();
  for (const double duty : {0.02, 0.25, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(duck.effective_multiplier(duty, DutySchedulingPolicy::uniform), 1.0);
  }
}

TEST(Scheduling, CarbonAwareNeverWorseThanUniform) {
  for (const DailyProfile& profile :
       {DailyProfile::solar_duck(), DailyProfile::windy_night(), DailyProfile{}}) {
    for (const double duty : {0.05, 0.1, 0.3, 0.6, 0.9, 1.0}) {
      EXPECT_LE(profile.effective_multiplier(duty, DutySchedulingPolicy::carbon_aware),
                1.0 + 1e-12)
          << "duty " << duty;
    }
  }
}

TEST(Scheduling, WorstCaseNeverBetterThanUniform) {
  const DailyProfile duck = DailyProfile::solar_duck();
  for (const double duty : {0.05, 0.3, 0.7}) {
    EXPECT_GE(duck.effective_multiplier(duty, DutySchedulingPolicy::worst_case), 1.0);
  }
}

TEST(Scheduling, FullDutyLeavesNoFreedom) {
  const DailyProfile duck = DailyProfile::solar_duck();
  EXPECT_NEAR(duck.effective_multiplier(1.0, DutySchedulingPolicy::carbon_aware), 1.0,
              1e-12);
  EXPECT_NEAR(duck.effective_multiplier(1.0, DutySchedulingPolicy::worst_case), 1.0, 1e-12);
}

TEST(Scheduling, SmallDutyGetsTheTroughExactly) {
  // At duty <= 1/24 the carbon-aware schedule sits entirely in the
  // greenest hour.
  const DailyProfile duck = DailyProfile::solar_duck();
  double best = duck.multiplier(0);
  for (int hour = 1; hour < 24; ++hour) {
    best = std::min(best, duck.multiplier(hour));
  }
  EXPECT_NEAR(duck.effective_multiplier(1.0 / 24.0, DutySchedulingPolicy::carbon_aware),
              best, 1e-12);
}

TEST(Scheduling, AdvantageShrinksWithDuty) {
  // The more hours you must run, the less choosing hours can help.
  const DailyProfile duck = DailyProfile::solar_duck();
  double previous = 0.0;
  for (const double duty : {0.1, 0.3, 0.5, 0.8, 1.0}) {
    const double m = duck.effective_multiplier(duty, DutySchedulingPolicy::carbon_aware);
    EXPECT_GE(m, previous);
    previous = m;
  }
}

TEST(Scheduling, InvalidDutyThrows) {
  const DailyProfile duck = DailyProfile::solar_duck();
  EXPECT_THROW(duck.effective_multiplier(0.0, DutySchedulingPolicy::carbon_aware),
               std::invalid_argument);
  EXPECT_THROW(duck.effective_multiplier(1.5, DutySchedulingPolicy::carbon_aware),
               std::invalid_argument);
}

TEST(Scheduling, IntensityPlugsIntoOperationalModel) {
  // End-to-end: a 2 %-duty edge device on a duck-curve grid cuts its
  // operational carbon by >50 % by running at noon.
  const units::CarbonIntensity mean = grid_intensity(GridRegion::usa);
  const units::CarbonIntensity aware = scheduled_intensity(
      mean, DailyProfile::solar_duck(), 0.02, DutySchedulingPolicy::carbon_aware);

  OperationalParameters flat;
  flat.use_intensity = mean;
  flat.duty_cycle = 0.02;
  OperationalParameters scheduled = flat;
  scheduled.use_intensity = aware;

  const auto flat_carbon = OperationalModel(flat).annual_carbon(2.0 * w);
  const auto aware_carbon = OperationalModel(scheduled).annual_carbon(2.0 * w);
  EXPECT_LT(aware_carbon.canonical(), 0.5 * flat_carbon.canonical());
}

TEST(Scheduling, PolicyNames) {
  EXPECT_EQ(to_string(DutySchedulingPolicy::uniform), "uniform");
  EXPECT_EQ(to_string(DutySchedulingPolicy::carbon_aware), "carbon-aware");
  EXPECT_EQ(to_string(DutySchedulingPolicy::worst_case), "worst-case");
}

}  // namespace
}  // namespace greenfpga::act
