/// Tests for the canonical BENCH_<group>.json artifact layer and the
/// `greenfpga bench` CLI surface: byte-identical io::Json round-trips,
/// canonical `--out` writes, and the compare exit-code contract.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "bench/artifact.hpp"
#include "bench/harness.hpp"
#include "cli/commands.hpp"
#include "io/json.hpp"

namespace greenfpga::bench {
namespace {

struct CliRun {
  int exit_code = 0;
  std::string out;
  std::string err;
};

CliRun run_cli(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = cli::dispatch(args, out, err);
  return {code, out.str(), err.str()};
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::string temp_dir(const std::string& leaf) {
  const std::string path = ::testing::TempDir() + "/" + leaf;
  std::filesystem::remove_all(path);
  return path;
}

CaseResult sample_result(const std::string& group, const std::string& name) {
  CaseResult result;
  result.group = group;
  result.name = name;
  result.warmup = 2;
  result.repetitions = 15;
  result.iterations = 64;
  result.seconds = compute_stats({1.25e-3, 1.5e-3, 2e-3, 1e-3, 1.75e-3});
  result.ops_per_s = 1.0 / result.seconds.median;
  result.bytes_per_s = 1024.0 / result.seconds.median;
  return result;
}

BenchArtifact sample_artifact() {
  BenchArtifact artifact;
  artifact.group = "engine";
  artifact.environment = capture_environment();
  artifact.cases = {sample_result("engine", "grid_50x50"),
                    sample_result("engine", "grid_tiny")};
  return artifact;
}

// ---------------------------------------------------------------------------
// Artifact JSON round-trips
// ---------------------------------------------------------------------------

TEST(BenchArtifact, RoundTripIsByteIdentical) {
  const BenchArtifact artifact = sample_artifact();
  const std::string first = artifact_to_json(artifact).dump(2);
  const BenchArtifact reloaded = artifact_from_json(io::parse_json(first));
  const std::string second = artifact_to_json(reloaded).dump(2);
  EXPECT_EQ(first, second);
  EXPECT_EQ(reloaded.schema, kArtifactSchema);
  EXPECT_EQ(reloaded.group, "engine");
  ASSERT_EQ(reloaded.cases.size(), 2u);
  EXPECT_EQ(reloaded.cases[0].id(), "engine/grid_50x50");
  EXPECT_DOUBLE_EQ(reloaded.cases[0].seconds.median, artifact.cases[0].seconds.median);
  EXPECT_DOUBLE_EQ(reloaded.cases[0].seconds.mad, artifact.cases[0].seconds.mad);
  EXPECT_EQ(reloaded.cases[0].iterations, 64);
  EXPECT_EQ(reloaded.environment.cores, artifact.environment.cores);
  EXPECT_EQ(reloaded.environment.compiler, artifact.environment.compiler);
}

TEST(BenchArtifact, UnknownSchemaThrows) {
  io::Json json = artifact_to_json(sample_artifact());
  json["schema"] = "greenfpga-bench/99";
  EXPECT_THROW((void)artifact_from_json(json), io::JsonError);
}

TEST(BenchArtifact, FilenameConvention) {
  EXPECT_EQ(artifact_filename("engine"), "BENCH_engine.json");
  EXPECT_EQ(artifact_filename("serve"), "BENCH_serve.json");
}

TEST(BenchArtifact, FileWriteIsCanonical) {
  const std::string dir = temp_dir("greenfpga_bench_artifact");
  const std::string path = dir + "/" + artifact_filename("engine");
  const BenchArtifact artifact = sample_artifact();
  write_artifact_file(path, artifact);
  // Exactly the canonical pretty dump plus the repo-wide trailing newline.
  EXPECT_EQ(read_file(path), artifact_to_json(artifact).dump(2) + "\n");
  const BenchArtifact reloaded = read_artifact_file(path);
  EXPECT_EQ(artifact_to_json(reloaded).dump(2), artifact_to_json(artifact).dump(2));
  std::filesystem::remove_all(dir);
}

TEST(BenchArtifact, GroupingPreservesFirstSeenOrder) {
  const std::vector<CaseResult> results{
      sample_result("json", "parse"), sample_result("cache", "hit"),
      sample_result("json", "dump"), sample_result("cache", "miss")};
  const std::vector<BenchArtifact> artifacts =
      artifacts_from_results(results, capture_environment());
  ASSERT_EQ(artifacts.size(), 2u);
  EXPECT_EQ(artifacts[0].group, "json");
  ASSERT_EQ(artifacts[0].cases.size(), 2u);
  EXPECT_EQ(artifacts[0].cases[1].name, "dump");
  EXPECT_EQ(artifacts[1].group, "cache");
}

// ---------------------------------------------------------------------------
// CLI surface: `greenfpga bench`
// ---------------------------------------------------------------------------

TEST(BenchCli, ListEnumeratesBuiltinCases) {
  const CliRun result = run_cli({"bench", "--list"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  for (const char* id : {"engine/grid_50x50", "mc/samples_256",
                         "frontier/four_way_16x12", "batch/fleet_mixed",
                         "json/parse_result", "json/dump_result", "cache/hit",
                         "cache/miss"}) {
    EXPECT_NE(result.out.find(id), std::string::npos) << id;
  }
}

TEST(BenchCli, QuickFilteredJsonSmoke) {
  const CliRun result = run_cli({"bench", "--quick", "--filter", "^json/"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("json/parse_result"), std::string::npos);
  EXPECT_NE(result.out.find("json/dump_result"), std::string::npos);
  // Filtered-out groups must not run.
  EXPECT_EQ(result.out.find("engine/grid_50x50"), std::string::npos);
}

TEST(BenchCli, OutWritesCanonicalArtifacts) {
  const std::string dir = temp_dir("greenfpga_bench_out");
  const CliRun result =
      run_cli({"bench", "--quick", "--filter", "^cache/", "--out", dir});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  const std::string path = dir + "/" + artifact_filename("cache");
  ASSERT_TRUE(std::filesystem::exists(path));
  const BenchArtifact artifact = read_artifact_file(path);
  EXPECT_EQ(artifact.group, "cache");
  ASSERT_EQ(artifact.cases.size(), 2u);
  EXPECT_GT(artifact.cases[0].seconds.median, 0.0);
  // The written bytes are the canonical dump of the reloaded artifact.
  EXPECT_EQ(read_file(path), artifact_to_json(artifact).dump(2) + "\n");
  std::filesystem::remove_all(dir);
}

TEST(BenchCli, CompareAgainstFreshBaselinePasses) {
  const std::string dir = temp_dir("greenfpga_bench_baseline");
  ASSERT_EQ(
      run_cli({"bench", "--quick", "--filter", "^cache/", "--out", dir}).exit_code, 0);
  const CliRun result = run_cli({"bench", "--quick", "--filter", "^cache/",
                                 "--compare", dir, "--max-regression", "1000"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("within"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(BenchCli, CompareFailsNamingTheRegressedCase) {
  const std::string dir = temp_dir("greenfpga_bench_regressed");
  ASSERT_EQ(
      run_cli({"bench", "--quick", "--filter", "^cache/hit", "--out", dir}).exit_code, 0);
  // Shrink the baseline median so the fresh run necessarily "regresses".
  const std::string path = dir + "/" + artifact_filename("cache");
  BenchArtifact baseline = read_artifact_file(path);
  ASSERT_EQ(baseline.cases.size(), 1u);
  baseline.cases[0].seconds.median = 1e-15;
  write_artifact_file(path, baseline);
  const CliRun result = run_cli({"bench", "--quick", "--filter", "^cache/hit",
                                 "--compare", dir, "--max-regression", "10"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("cache/hit"), std::string::npos);
  EXPECT_NE(result.err.find("regressed"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(BenchCli, CompareFailsOnBaselineCaseGoneMissing) {
  const std::string dir = temp_dir("greenfpga_bench_missing");
  ASSERT_EQ(
      run_cli({"bench", "--quick", "--filter", "^cache/", "--out", dir}).exit_code, 0);
  // A baseline case the current registry does not produce (e.g. a rename).
  const std::string path = dir + "/" + artifact_filename("cache");
  BenchArtifact baseline = read_artifact_file(path);
  CaseResult ghost = baseline.cases[0];
  ghost.name = "renamed_away";
  baseline.cases.push_back(ghost);
  write_artifact_file(path, baseline);
  const CliRun result = run_cli({"bench", "--quick", "--filter", "^cache/",
                                 "--compare", dir, "--max-regression", "1000"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("cache/renamed_away"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(BenchCli, UsageErrors) {
  // --max-regression without --compare is a usage error.
  EXPECT_EQ(run_cli({"bench", "--max-regression", "10"}).exit_code, 2);
  // Invalid regex.
  EXPECT_EQ(run_cli({"bench", "--filter", "["}).exit_code, 2);
  // Filter matching nothing.
  EXPECT_EQ(run_cli({"bench", "--filter", "^nothing-matches$", "--quick"}).exit_code, 2);
  // Non-numeric / non-positive threshold.
  EXPECT_EQ(run_cli({"bench", "--compare", "x.json", "--max-regression", "abc"})
                .exit_code, 2);
  EXPECT_EQ(run_cli({"bench", "--compare", "x.json", "--max-regression", "0"})
                .exit_code, 2);
  // Single-file --out with more than one group.
  const CliRun multi = run_cli({"bench", "--quick", "--filter", "^(json|cache)/",
                                "--out", ::testing::TempDir() + "/multi.json"});
  EXPECT_EQ(multi.exit_code, 2);
}

TEST(BenchCli, MissingBaselinePathFails) {
  const CliRun result = run_cli({"bench", "--quick", "--filter", "^cache/hit",
                                 "--compare",
                                 ::testing::TempDir() + "/no_such_baseline.json"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_FALSE(result.err.empty());
}

}  // namespace
}  // namespace greenfpga::bench
