/// Tests for the content-addressed LRU result cache and its engine hook:
/// hit/miss/eviction determinism (a cached result is byte-identical to a
/// cold run), capacity-bound eviction order, batch dedup, sharded
/// counters staying exact, the disk tier promoting on memory miss, and
/// multi-threaded hammers (run under the ASan+UBSan CI job).

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "io/hash.hpp"
#include "scenario/cache_store.hpp"
#include "scenario/engine.hpp"
#include "scenario/result_cache.hpp"
#include "scenario/result_io.hpp"

namespace greenfpga::scenario {
namespace {

ScenarioSpec compare_spec(int app_count) {
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::compare, device::Domain::dnn);
  spec.name = "cache test " + std::to_string(app_count);
  spec.schedule.app_count = app_count;
  return spec;
}

std::string canonical(const ScenarioResult& result) {
  return result_to_json(result).dump();
}

std::shared_ptr<const ScenarioResult> result_of(const ScenarioSpec& spec) {
  return std::make_shared<const ScenarioResult>(
      Engine(EngineOptions{.threads = 1}).run(spec));
}

TEST(ResultCache, MissThenHitWithCounters) {
  ResultCache cache(8);
  EXPECT_EQ(cache.lookup("k"), nullptr);
  cache.insert("k", result_of(compare_spec(1)));
  const std::shared_ptr<const ScenarioResult> hit = cache.lookup("k");
  ASSERT_NE(hit, nullptr);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.capacity, 8u);
}

TEST(ResultCache, InsertRejectsNull) {
  ResultCache cache(2);
  EXPECT_THROW(cache.insert("k", nullptr), std::invalid_argument);
}

TEST(ResultCache, CapacityBoundEvictionIsLeastRecentlyUsed) {
  ResultCache cache(2);
  const auto a = result_of(compare_spec(1));
  const auto b = result_of(compare_spec(2));
  const auto c = result_of(compare_spec(3));
  cache.insert("a", a);
  cache.insert("b", b);
  // Freshen "a": "b" becomes the LRU entry.
  EXPECT_NE(cache.lookup("a"), nullptr);
  cache.insert("c", c);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.lookup("b"), nullptr);  // evicted
  EXPECT_NE(cache.lookup("a"), nullptr);  // survived the eviction
  EXPECT_NE(cache.lookup("c"), nullptr);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(ResultCache, EvictedEntrySurvivesForHolders) {
  // A reader holding the shared_ptr keeps its snapshot alive across
  // eviction (the serve handler may still be serializing it).
  ResultCache cache(1);
  cache.insert("a", result_of(compare_spec(1)));
  const std::shared_ptr<const ScenarioResult> held = cache.lookup("a");
  cache.insert("b", result_of(compare_spec(2)));
  EXPECT_EQ(cache.lookup("a"), nullptr);
  EXPECT_EQ(held->spec.schedule.app_count, 1);
}

TEST(ResultCache, ClearKeepsLifetimeCounters) {
  ResultCache cache(4);
  cache.insert("a", result_of(compare_spec(1)));
  EXPECT_NE(cache.lookup("a"), nullptr);
  cache.clear();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.lookup("a"), nullptr);
}

TEST(ResultCache, ZeroCapacityClampsToOne) {
  ResultCache cache(0);
  EXPECT_EQ(cache.stats().capacity, 1u);
}

TEST(ResultCache, ShardedCountersStayExact) {
  // Capacity 4 over 2 shards (2 each).  Ten distinct keys land on shards
  // by FNV-1a digest; whatever the split, the aggregated counters must
  // account for every operation exactly.
  ResultCache cache(4, 2);
  const auto result = result_of(compare_spec(1));
  for (int i = 0; i < 10; ++i) {
    cache.insert("key " + std::to_string(i), result);
  }
  const ResultCacheStats after_inserts = cache.stats();
  EXPECT_EQ(after_inserts.shards, 2u);
  EXPECT_EQ(after_inserts.capacity, 4u);
  EXPECT_LE(after_inserts.size, 4u);
  EXPECT_EQ(after_inserts.evictions, 10u - after_inserts.size);
  std::uint64_t found = 0;
  for (int i = 0; i < 10; ++i) {
    if (cache.lookup("key " + std::to_string(i)) != nullptr) {
      ++found;
    }
  }
  const ResultCacheStats after_lookups = cache.stats();
  EXPECT_EQ(found, after_inserts.size);  // exactly the residents hit
  EXPECT_EQ(after_lookups.hits, found);
  EXPECT_EQ(after_lookups.misses, 10u - found);
  EXPECT_EQ(after_lookups.hits + after_lookups.misses, 10u);
}

TEST(ResultCache, ShardCapacityRoundsUp) {
  // ceil(5 / 4) = 2 per shard: the effective total is 8, never 4.
  const ResultCache cache(5, 4);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.shards, 4u);
  EXPECT_EQ(stats.capacity, 8u);
  // Degenerate inputs clamp instead of dividing by zero.
  EXPECT_EQ(ResultCache(0, 0).stats().capacity, 1u);
  EXPECT_EQ(ResultCache(0, 0).stats().shards, 1u);
}

TEST(ResultCache, ShardedHammerAccountsForEveryOperation) {
  // The sharded path under thread churn: distinct keys spread over
  // shards, capacity forcing eviction, every lookup+insert tallied.
  constexpr int kThreads = 8;
  constexpr int kIterations = 200;
  constexpr int kKeys = 16;
  ResultCache cache(8, 4);
  const auto result = result_of(compare_spec(1));
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const std::string key = "key " + std::to_string((t + i) % kKeys);
        if (cache.lookup(key) == nullptr) {
          cache.insert(key, result);
        }
      }
    });
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_LE(stats.size, 8u);
  EXPECT_EQ(stats.disk_hits, 0u);  // no store attached
}

TEST(ResultCache, DiskTierPromotesOnMemoryMissAndSurvivesEviction) {
  const std::string dir = ::testing::TempDir() + "/greenfpga_cache_tier";
  std::filesystem::remove_all(dir);
  CacheStore store(dir);
  const ScenarioSpec spec = compare_spec(1);
  const auto a = result_of(spec);
  const auto b = result_of(compare_spec(2));
  {
    ResultCache cache(1);
    cache.attach_store(&store);
    cache.insert("a", a);
    cache.insert("b", b);  // evicts "a" from memory; disk keeps it
    const std::shared_ptr<const ScenarioResult> back = cache.lookup("a");
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(canonical(*back), canonical(*a));
    const ResultCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.disk_hits, 1u);
    EXPECT_EQ(stats.misses, 0u);
  }
  // A fresh cache over the same store: still answered, from disk.
  {
    ResultCache cache(4);
    cache.attach_store(&store);
    const std::shared_ptr<const ScenarioResult> back = cache.lookup("b");
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(canonical(*back), canonical(*b));
    // Promoted: the second lookup is a pure memory hit.
    ASSERT_NE(cache.lookup("b"), nullptr);
    const ResultCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.disk_hits, 1u);
  }
  // A corrupted entry degrades to an honest miss, never a wrong answer.
  {
    std::ofstream(store.path_for("a"), std::ios::trunc) << "{ not json";
    ResultCache cache(4);
    cache.attach_store(&store);
    EXPECT_EQ(cache.lookup("a"), nullptr);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().disk_hits, 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, EngineRunReturnsByteIdenticalCachedResult) {
  ResultCache cache(8);
  const Engine cached(EngineOptions{.threads = 1, .cache = &cache});
  const Engine cold(EngineOptions{.threads = 1});
  const ScenarioSpec spec = compare_spec(4);
  const std::string first = canonical(cached.run(spec));
  EXPECT_EQ(cache.stats().misses, 1u);
  const std::string second = canonical(cached.run(spec));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, canonical(cold.run(spec)));
}

TEST(ResultCache, RunCachedReportsHitAndStableKey) {
  ResultCache cache(8);
  const Engine engine(EngineOptions{.threads = 1, .cache = &cache});
  const Engine::CachedRun first = engine.run_cached(compare_spec(2));
  EXPECT_FALSE(first.hit);
  const Engine::CachedRun second = engine.run_cached(compare_spec(2));
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.key, second.key);
  EXPECT_EQ(second.result, first.result);  // the same shared snapshot
  EXPECT_NE(engine.run_cached(compare_spec(3)).key, first.key);
  // Without a configured cache, run_cached still evaluates.
  const Engine uncached(EngineOptions{.threads = 1});
  EXPECT_FALSE(uncached.run_cached(compare_spec(2)).hit);
}

TEST(ResultCache, CacheKeyCoversSuiteAndResolvedPlatforms) {
  const Engine engine(EngineOptions{.threads = 1});
  ScenarioSpec spec = compare_spec(2);
  const std::string base = engine.cache_key(spec);
  // Same content -> same key, regardless of object identity.
  EXPECT_EQ(engine.cache_key(compare_spec(2)), base);
  // A model-suite change is a different content address.
  ScenarioSpec other_suite = compare_spec(2);
  other_suite.suite.operation.use_intensity =
      2.0 * other_suite.suite.operation.use_intensity;
  EXPECT_NE(engine.cache_key(other_suite), base);
  // A different platform set too.
  ScenarioSpec other_platforms = compare_spec(2);
  other_platforms.platforms = {PlatformRef{.name = "asic"},
                               PlatformRef{.name = "gpu"}};
  EXPECT_NE(engine.cache_key(other_platforms), base);
  // The key is a deterministic function of content, so its digest is too.
  EXPECT_EQ(io::content_digest(base), io::content_digest(engine.cache_key(spec)));
}

TEST(ResultCache, RunBatchEvaluatesRepeatedSpecsOnce) {
  ResultCache cache(16);
  const Engine engine(EngineOptions{.threads = 2, .cache = &cache});
  const ScenarioSpec a = compare_spec(1);
  const ScenarioSpec b = compare_spec(2);
  const std::vector<ScenarioResult> results = engine.run_batch({a, b, a, a});
  ASSERT_EQ(results.size(), 4u);
  // One lookup (miss) per *distinct* key, not per spec.
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(canonical(results[0]), canonical(results[2]));
  EXPECT_EQ(canonical(results[0]), canonical(results[3]));
  // Batch results match cold individual runs byte-for-byte.
  const Engine cold(EngineOptions{.threads = 1});
  EXPECT_EQ(canonical(results[0]), canonical(cold.run(a)));
  EXPECT_EQ(canonical(results[1]), canonical(cold.run(b)));
  // A second batch over the same specs is served from the cache.
  const std::vector<ScenarioResult> again = engine.run_batch({a, b});
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(canonical(again[0]), canonical(results[0]));
  EXPECT_EQ(canonical(again[1]), canonical(results[1]));
}

TEST(ResultCache, MultiThreadedHammerStaysDeterministic) {
  // Many threads, few distinct specs, a capacity small enough to force
  // eviction churn: every returned result must still be byte-identical
  // to the cold answer for its spec (raced under ASan+UBSan in CI).
  constexpr int kThreads = 8;
  constexpr int kIterations = 25;
  constexpr int kSpecs = 4;
  std::vector<std::string> expected;
  std::vector<ScenarioSpec> specs;
  for (int s = 0; s < kSpecs; ++s) {
    specs.push_back(compare_spec(s + 1));
    expected.push_back(canonical(Engine(EngineOptions{.threads = 1}).run(specs.back())));
  }
  ResultCache cache(2);  // smaller than the working set: constant eviction
  const Engine engine(EngineOptions{.threads = 1, .cache = &cache});
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const int s = (t + i) % kSpecs;
        const Engine::CachedRun run = engine.run_cached(specs[s]);
        if (canonical(*run.result) != expected[s]) {
          failures[t] = "thread " + std::to_string(t) + " iteration " +
                        std::to_string(i) + ": wrong result for spec " +
                        std::to_string(s);
          return;
        }
      }
    });
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_LE(stats.size, 2u);
  EXPECT_GT(stats.evictions, 0u);
}

}  // namespace
}  // namespace greenfpga::scenario
