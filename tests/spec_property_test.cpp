/// Property tests for the ScenarioSpec JSON round-trip: seeded randomized
/// valid specs of every kind (including the montecarlo uncertainty kind)
/// must satisfy `dump(spec_to_json(spec_from_json(dump(spec))))` ==
/// `dump(spec_to_json(spec))` byte-identically.  Generation is fully
/// seeded (std::mt19937 from the test parameter -- no wall-clock, no
/// global state), so every failure is reproducible from the test name.
///
/// Also pins the montecarlo spec parsing contract: Table 1 defaults,
/// range-guarded integer fields, and the "spec path + key" error context
/// `greenfpga run` relies on.

#include <gtest/gtest.h>

#include <fstream>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "core/config_io.hpp"
#include "core/param_distributions.hpp"
#include "device/catalog.hpp"
#include "io/json.hpp"
#include "scenario/sensitivity.hpp"
#include "scenario/spec.hpp"
#include "tech/node.hpp"

namespace greenfpga::scenario {
namespace {

// -- seeded spec generator ----------------------------------------------------

double uniform(std::mt19937& rng, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

int uniform_int(std::mt19937& rng, int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(rng);
}

bool coin(std::mt19937& rng) { return uniform_int(rng, 0, 1) == 1; }

std::string random_name(std::mt19937& rng) {
  static constexpr char charset[] =
      "abcdefghijklmnopqrstuvwxyz ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-./\"\\";
  std::string name;
  const int length = uniform_int(rng, 1, 24);
  for (int i = 0; i < length; ++i) {
    name += charset[static_cast<std::size_t>(
        uniform_int(rng, 0, static_cast<int>(sizeof charset) - 2))];
  }
  return name;
}

device::Domain random_domain(std::mt19937& rng) {
  switch (uniform_int(rng, 0, 2)) {
    case 0:
      return device::Domain::dnn;
    case 1:
      return device::Domain::imgproc;
    default:
      return device::Domain::crypto;
  }
}

std::vector<PlatformRef> random_platforms(std::mt19937& rng, device::Domain domain) {
  std::vector<PlatformRef> platforms;
  for (const char* name : {"asic", "fpga", "gpu", "cpu", "chiplet_fpga"}) {
    if (coin(rng)) {
      PlatformRef ref;
      ref.name = name;
      if (std::string(name) == "fpga" && coin(rng)) {
        ref.chip = device::domain_testcase(domain).fpga;  // pinned chip survives JSON
      }
      platforms.push_back(std::move(ref));
    }
  }
  return platforms;  // empty is valid: the engine defaults to asic+fpga
}

AxisSpec random_axis(std::mt19937& rng) {
  const SweepVariable variable = static_cast<SweepVariable>(uniform_int(rng, 0, 2));
  switch (uniform_int(rng, 0, 2)) {
    case 0: {
      std::vector<double> values;
      const int count = uniform_int(rng, 1, 6);
      for (int i = 0; i < count; ++i) {
        values.push_back(uniform(rng, 0.1, 1e7));
      }
      return AxisSpec::list(variable, std::move(values));
    }
    case 1:
      return AxisSpec::linear(variable, uniform(rng, 0.1, 10.0), uniform(rng, 10.0, 1e6),
                              uniform_int(rng, 2, 20));
    default:
      return AxisSpec::log(variable, uniform(rng, 0.1, 100.0), uniform(rng, 100.0, 1e7),
                           uniform_int(rng, 2, 20));
  }
}

core::ParamDistribution random_distribution(std::mt19937& rng,
                                            const ParameterRange& range) {
  const double low = uniform(rng, range.low, 0.5 * (range.low + range.high));
  const double high = uniform(rng, std::nextafter(low, range.high), range.high);
  switch (uniform_int(rng, 0, 2)) {
    case 0:
      return core::ParamDistribution::uniform(range.name, low, high);
    case 1:
      return core::ParamDistribution::normal(range.name, uniform(rng, low, high),
                                             uniform(rng, 1e-3, high - low + 1.0), low,
                                             high);
    default:
      return core::ParamDistribution::triangular(range.name, low, uniform(rng, low, high),
                                                 high);
  }
}

ScenarioSpec random_spec(ScenarioKind kind, std::mt19937& rng) {
  const device::Domain domain = random_domain(rng);
  ScenarioSpec spec = ScenarioSpec::make(kind, domain);
  spec.name = random_name(rng);
  spec.platforms = random_platforms(rng, domain);
  spec.schedule.app_count = uniform_int(rng, 1, 20);
  spec.schedule.lifetime_years = uniform(rng, 0.1, 10.0);
  spec.schedule.volume = uniform(rng, 1.0, 1e8);
  spec.outputs.per_application = coin(rng);

  if (kind == ScenarioKind::sweep) {
    spec.axes = {random_axis(rng)};
  } else if (kind == ScenarioKind::grid) {
    spec.axes = {random_axis(rng), random_axis(rng)};
  }
  if (coin(rng)) {
    GridProfileSpec profile;
    profile.profile = coin(rng) ? "solar_duck" : "windy_night";
    profile.policy = coin(rng) ? "carbon_aware" : "worst_case";
    spec.grid_profile = profile;
  }
  spec.timeline.horizon_years = uniform(rng, 1.0, 60.0);
  spec.timeline.step_years = uniform(rng, 0.05, 1.0);
  if (kind == ScenarioKind::node_dse) {
    spec.dse.nodes.clear();
    for (const tech::ProcessNode node : tech::all_nodes()) {
      if (coin(rng)) {
        spec.dse.nodes.push_back(node);
      }
    }
    if (coin(rng)) {
      spec.dse.chip = device::domain_testcase(domain).fpga;
    }
  }
  spec.breakeven.solve_app_count = coin(rng);
  spec.breakeven.solve_lifetime = coin(rng);
  spec.breakeven.solve_volume = coin(rng);
  spec.sensitivity.run_tornado = coin(rng);
  spec.sensitivity.run_monte_carlo = coin(rng);
  spec.sensitivity.samples = uniform_int(rng, 1, 4096);
  spec.sensitivity.seed = static_cast<unsigned>(uniform_int(rng, 0, 1 << 30));

  const std::vector<ParameterRange> ranges = table1_ranges();
  spec.sensitivity.ranges.clear();
  for (const ParameterRange& range : ranges) {
    if (coin(rng)) {
      spec.sensitivity.ranges.push_back(range);
    }
  }
  if (spec.sensitivity.ranges.empty() && spec.sensitivity.run_monte_carlo) {
    spec.sensitivity.ranges.push_back(ranges.front());
  }

  if (kind == ScenarioKind::frontier) {
    // Always the two paper deployment axes, plus coin-flipped lifetime
    // and node axes: 2-4 distinct variables, every generator shape.
    std::vector<dse::FrontierVariable> chosen{dse::FrontierVariable::app_count,
                                              dse::FrontierVariable::volume};
    if (coin(rng)) {
      chosen.push_back(dse::FrontierVariable::lifetime_years);
    }
    if (coin(rng)) {
      chosen.push_back(dse::FrontierVariable::node);
    }
    spec.frontier.axes.clear();
    for (const dse::FrontierVariable variable : chosen) {
      if (variable == dse::FrontierVariable::node) {
        std::vector<tech::ProcessNode> nodes;
        for (const tech::ProcessNode node : tech::all_nodes()) {
          if (coin(rng)) {
            nodes.push_back(node);
          }
        }
        spec.frontier.axes.push_back(
            dse::FrontierAxisSpec::node_list(std::move(nodes)));
      } else if (coin(rng)) {
        spec.frontier.axes.push_back(dse::FrontierAxisSpec::linear(
            variable, uniform(rng, 0.5, 10.0), uniform(rng, 10.0, 1e6),
            uniform_int(rng, 2, 12)));
      } else if (coin(rng)) {
        spec.frontier.axes.push_back(dse::FrontierAxisSpec::log(
            variable, uniform(rng, 0.5, 100.0), uniform(rng, 100.0, 1e6),
            uniform_int(rng, 2, 12)));
      } else {
        std::vector<double> values;
        const int count = uniform_int(rng, 1, 5);
        for (int i = 0; i < count; ++i) {
          values.push_back(uniform(rng, 0.5, 1e6));
        }
        spec.frontier.axes.push_back(
            dse::FrontierAxisSpec::list(variable, std::move(values)));
      }
    }
    spec.frontier.objective =
        static_cast<dse::FrontierObjective>(uniform_int(rng, 0, 2));
    spec.frontier.confidence_samples = uniform_int(rng, 0, 64);
    spec.frontier.seed = static_cast<unsigned>(uniform_int(rng, 0, 1 << 30));
  }

  if (kind == ScenarioKind::fleet) {
    // Mutate the seeded default fleet section: every scalar knob, region
    // shares/profiles, and a regenerated (valid, peaked) 24-hour trace.
    FleetSpec& fleet = *spec.fleet;
    fleet.horizon_years = uniform(rng, 0.5, 12.0);
    fleet.utilization = uniform(rng, 0.05, 1.0);
    fleet.reconfig_overhead_hours = uniform(rng, 0.0, 4.0);
    fleet.mc_samples = coin(rng) ? uniform_int(rng, 1, 64) : 0;
    for (FleetRegionSpec& region : fleet.regions) {
      region.weight = uniform(rng, 0.1, 5.0);
      region.intensity_scale = uniform(rng, 0.2, 2.0);
      region.profile = coin(rng) ? "uniform" : (coin(rng) ? "solar_duck" : "windy_night");
    }
    for (FleetServiceSpec& service : fleet.services) {
      service.peak_load = uniform(rng, 1.0, 1e6);
      if (coin(rng)) {
        service.trace.assign(24, 0.0);
        for (double& multiplier : service.trace) {
          multiplier = uniform(rng, 0.0, 1.0);
        }
        service.trace[uniform_int(rng, 0, 23)] = 1.0;  // guarantee a peak
      } else {
        service.trace.clear();
      }
    }
  }

  spec.montecarlo.samples = uniform_int(rng, 1, 100000);
  spec.montecarlo.seed = static_cast<unsigned>(uniform_int(rng, 0, 1 << 30));
  spec.montecarlo.distributions.clear();
  for (const ParameterRange& range : ranges) {
    if (coin(rng)) {
      spec.montecarlo.distributions.push_back(random_distribution(rng, range));
    }
  }
  spec.montecarlo.percentiles.clear();
  double percentile = 0.0;
  const int bands = uniform_int(rng, 0, 6);
  for (int i = 0; i < bands; ++i) {
    percentile += uniform(rng, 0.5, 15.0);
    if (percentile > 100.0) {
      break;
    }
    spec.montecarlo.percentiles.push_back(percentile);
  }
  return spec;
}

// -- the round-trip property --------------------------------------------------

class SpecRoundTrip
    : public ::testing::TestWithParam<std::tuple<ScenarioKind, unsigned>> {};

TEST_P(SpecRoundTrip, RandomValidSpecsAreByteIdentical) {
  const auto [kind, seed] = GetParam();
  std::mt19937 rng(seed * 2654435761u + 17u);
  // Several specs per (kind, seed) cell: the generator branches on every
  // coin flip, so each iteration explores a different field combination.
  for (int iteration = 0; iteration < 8; ++iteration) {
    const ScenarioSpec spec = random_spec(kind, rng);
    ASSERT_NO_THROW(spec.validate()) << "generator produced an invalid spec";
    const std::string once = spec_to_json(spec).dump();
    const ScenarioSpec reparsed = spec_from_json(io::parse_json(once));
    const std::string twice = spec_to_json(reparsed).dump();
    ASSERT_EQ(once, twice) << "kind " << to_string(kind) << ", seed " << seed
                           << ", iteration " << iteration;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsTimesSeeds, SpecRoundTrip,
    ::testing::Combine(::testing::Values(ScenarioKind::compare, ScenarioKind::sweep,
                                         ScenarioKind::grid, ScenarioKind::timeline,
                                         ScenarioKind::node_dse, ScenarioKind::breakeven,
                                         ScenarioKind::sensitivity,
                                         ScenarioKind::montecarlo,
                                         ScenarioKind::frontier, ScenarioKind::fleet),
                       ::testing::Range(0u, 5u)),
    [](const ::testing::TestParamInfo<std::tuple<ScenarioKind, unsigned>>& info) {
      return to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// -- montecarlo spec parsing contract -----------------------------------------

TEST(MonteCarloSpecJson, MakeSeedsUniformTable1Distributions) {
  const ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::montecarlo,
                                               device::Domain::dnn);
  const std::vector<ParameterRange> ranges = table1_ranges();
  ASSERT_EQ(spec.montecarlo.distributions.size(), ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(spec.montecarlo.distributions[i].parameter, ranges[i].name);
    EXPECT_EQ(spec.montecarlo.distributions[i].kind, core::DistributionKind::uniform);
    EXPECT_EQ(spec.montecarlo.distributions[i].low, ranges[i].low);
    EXPECT_EQ(spec.montecarlo.distributions[i].high, ranges[i].high);
  }
}

TEST(MonteCarloSpecJson, OmittedDistributionsKeepTable1DefaultEmptyMeansNone) {
  const ScenarioSpec made = ScenarioSpec::make(ScenarioKind::montecarlo,
                                               device::Domain::dnn);
  io::Json json = spec_to_json(made);
  io::Json::Object& montecarlo = json.as_object().at("montecarlo").as_object();
  montecarlo.erase("distributions");
  EXPECT_EQ(spec_from_json(json).montecarlo.distributions.size(),
            table1_ranges().size());
  montecarlo["distributions"] = io::Json::array();
  EXPECT_TRUE(spec_from_json(json).montecarlo.distributions.empty());
}

TEST(MonteCarloSpecJson, BareParameterNameInheritsTable1Support) {
  // {"parameter": "E_des [GWh]"} alone is a complete entry: the named
  // Table 1 range supplies the uniform support.
  io::Json json = spec_to_json(ScenarioSpec::make(ScenarioKind::montecarlo,
                                                  device::Domain::dnn));
  io::Json entry = io::Json::object();
  entry["parameter"] = "E_des [GWh]";
  json.as_object().at("montecarlo").as_object()["distributions"] =
      io::Json::array({entry});
  const ScenarioSpec spec = spec_from_json(json);
  ASSERT_EQ(spec.montecarlo.distributions.size(), 1u);
  EXPECT_EQ(spec.montecarlo.distributions.front().kind, core::DistributionKind::uniform);
  EXPECT_EQ(spec.montecarlo.distributions.front().low, 2.0);
  EXPECT_EQ(spec.montecarlo.distributions.front().high, 7.3);
}

TEST(MonteCarloSpecJson, NormalDefaultsDeriveFromSupport) {
  io::Json json = spec_to_json(ScenarioSpec::make(ScenarioKind::montecarlo,
                                                  device::Domain::dnn));
  io::Json entry = io::Json::object();
  entry["parameter"] = "E_des [GWh]";
  entry["kind"] = "normal";
  json.as_object().at("montecarlo").as_object()["distributions"] =
      io::Json::array({entry});
  const core::ParamDistribution distribution =
      spec_from_json(json).montecarlo.distributions.front();
  EXPECT_EQ(distribution.kind, core::DistributionKind::normal);
  EXPECT_DOUBLE_EQ(distribution.mean, 0.5 * (2.0 + 7.3));
  EXPECT_DOUBLE_EQ(distribution.stddev, (7.3 - 2.0) / 4.0);
}

TEST(MonteCarloSpecJson, UnknownParameterAndKindFailLoudly) {
  io::Json json = spec_to_json(ScenarioSpec::make(ScenarioKind::montecarlo,
                                                  device::Domain::dnn));
  io::Json entry = io::Json::object();
  entry["parameter"] = "no such knob";
  json.as_object().at("montecarlo").as_object()["distributions"] =
      io::Json::array({entry});
  EXPECT_THROW((void)spec_from_json(json), core::ConfigError);

  entry["parameter"] = "E_des [GWh]";
  entry["kind"] = "cauchy";
  json.as_object().at("montecarlo").as_object()["distributions"] =
      io::Json::array({entry});
  EXPECT_THROW((void)spec_from_json(json), core::ConfigError);
}

TEST(MonteCarloSpecJson, KindIrrelevantFieldsAreRejectedNotIgnored) {
  // {"mean": ..., "stddev": ...} with "kind" omitted would otherwise
  // silently sample uniform over the full range -- a forgotten kind must
  // fail loudly instead of misconfiguring the distribution.
  io::Json json = spec_to_json(ScenarioSpec::make(ScenarioKind::montecarlo,
                                                  device::Domain::dnn));
  io::Json entry = io::Json::object();
  entry["parameter"] = "E_des [GWh]";
  entry["mean"] = 4.5;
  entry["stddev"] = 0.1;
  json.as_object().at("montecarlo").as_object()["distributions"] =
      io::Json::array({entry});
  EXPECT_THROW((void)spec_from_json(json), core::ConfigError);

  entry = io::Json::object();
  entry["parameter"] = "E_des [GWh]";
  entry["kind"] = "normal";
  entry["mode"] = 4.0;  // triangular-only field on a normal entry
  json.as_object().at("montecarlo").as_object()["distributions"] =
      io::Json::array({entry});
  EXPECT_THROW((void)spec_from_json(json), core::ConfigError);

  entry = io::Json::object();
  entry["parameter"] = "E_des [GWh]";
  entry["kind"] = "triangular";
  entry["stddev"] = 0.1;  // normal-only field on a triangular entry
  json.as_object().at("montecarlo").as_object()["distributions"] =
      io::Json::array({entry});
  EXPECT_THROW((void)spec_from_json(json), core::ConfigError);
}

TEST(MonteCarloSpecJson, SampleAndSeedFieldsAreRangeGuarded) {
  io::Json json = spec_to_json(ScenarioSpec::make(ScenarioKind::montecarlo,
                                                  device::Domain::dnn));
  io::Json::Object& montecarlo = json.as_object().at("montecarlo").as_object();
  // Non-integral, below-range, above-range and type-mismatched values are
  // all ConfigError (never a raw double-to-int cast, which would be UB).
  montecarlo["samples"] = 12.5;
  EXPECT_THROW((void)spec_from_json(json), core::ConfigError);
  montecarlo["samples"] = 0;
  EXPECT_THROW((void)spec_from_json(json), core::ConfigError);
  montecarlo["samples"] = 1e12;
  EXPECT_THROW((void)spec_from_json(json), core::ConfigError);
  montecarlo["samples"] = "many";
  EXPECT_THROW((void)spec_from_json(json), core::ConfigError);
  montecarlo["samples"] = 64;
  montecarlo["seed"] = -1;
  EXPECT_THROW((void)spec_from_json(json), core::ConfigError);
  montecarlo["seed"] = 4294967296.0;  // 2^32: one past the largest seed
  EXPECT_THROW((void)spec_from_json(json), core::ConfigError);
  montecarlo["seed"] = 4294967295.0;
  EXPECT_EQ(spec_from_json(json).montecarlo.seed, 4294967295u);
}

TEST(MonteCarloSpecJson, PercentilesMustBeStrictlyIncreasingWithin0To100) {
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::montecarlo, device::Domain::dnn);
  spec.montecarlo.percentiles = {50.0, 50.0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.montecarlo.percentiles = {5.0, 101.0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.montecarlo.percentiles = {-1.0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.montecarlo.percentiles = {};
  EXPECT_NO_THROW(spec.validate());
}

TEST(MonteCarloSpecJson, InvalidDistributionParametersFailValidation) {
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::montecarlo, device::Domain::dnn);
  spec.montecarlo.distributions = {
      core::ParamDistribution::triangular("E_des [GWh]", 2.0, 9.0, 7.3)};  // mode > high
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.montecarlo.distributions = {
      core::ParamDistribution::normal("E_des [GWh]", 4.0, 0.0, 2.0, 7.3)};  // stddev 0
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.montecarlo.distributions = {
      core::ParamDistribution::uniform("not a knob", 0.0, 1.0)};  // unknown name
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  // Duplicate entries would sample last-writer-wins, silently dropping
  // the earlier distribution.
  spec.montecarlo.distributions = {
      core::ParamDistribution::uniform("E_des [GWh]", 2.0, 7.3),
      core::ParamDistribution::normal("E_des [GWh]", 4.0, 1.0, 2.0, 7.3)};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

// -- distribution sampling math -----------------------------------------------

TEST(ParamDistributionSampling, InverseCdfsHitKnownQuantiles) {
  const core::ParamDistribution uniform_dist =
      core::ParamDistribution::uniform("E_des [GWh]", 2.0, 7.3);
  EXPECT_DOUBLE_EQ(uniform_dist.sample(0.5), 0.5 * (2.0 + 7.3));
  EXPECT_NEAR(uniform_dist.sample(1e-9), 2.0, 1e-6);

  // A symmetric truncation window keeps the normal's median at its mean.
  const core::ParamDistribution normal_dist =
      core::ParamDistribution::normal("E_des [GWh]", 4.0, 1.0, 0.0, 8.0);
  EXPECT_NEAR(normal_dist.sample(0.5), 4.0, 1e-9);
  // ~84th percentile of N(4, 1) is mean + 1 stddev (truncation at 4
  // stddev barely moves it).
  EXPECT_NEAR(normal_dist.sample(0.8413447460685429), 5.0, 1e-3);

  // Triangular: CDF at the mode is (mode-low)/(high-low).
  const core::ParamDistribution tri =
      core::ParamDistribution::triangular("E_des [GWh]", 2.0, 3.0, 7.0);
  EXPECT_DOUBLE_EQ(tri.sample(0.2), 3.0);
  EXPECT_NEAR(tri.sample(1.0 - 1e-12), 7.0, 1e-4);
}

TEST(ParamDistributionSampling, SamplesAreMonotoneInUAndStayInSupport) {
  const std::vector<core::ParamDistribution> distributions = {
      core::ParamDistribution::uniform("E_des [GWh]", 2.0, 7.3),
      core::ParamDistribution::normal("E_des [GWh]", 4.0, 5.0, 2.0, 7.3),
      core::ParamDistribution::triangular("E_des [GWh]", 2.0, 2.5, 7.3),
  };
  for (const core::ParamDistribution& distribution : distributions) {
    double previous = distribution.low;
    for (int i = 1; i < 200; ++i) {
      const double u = static_cast<double>(i) / 200.0;
      const double value = distribution.sample(u);
      EXPECT_GE(value, distribution.low) << core::to_string(distribution.kind);
      EXPECT_LE(value, distribution.high) << core::to_string(distribution.kind);
      EXPECT_GE(value, previous) << core::to_string(distribution.kind) << " at u=" << u;
      previous = value;
    }
  }
  EXPECT_THROW((void)distributions[0].sample(0.0), std::invalid_argument);
  EXPECT_THROW((void)distributions[0].sample(1.0), std::invalid_argument);
}

TEST(ParamDistributionSampling, CounterStreamIsStatelessAndDecorrelated) {
  // Same (seed, sample, dimension) -> same variate, any other coordinate
  // -> a different one; the stream never leaves the open unit interval.
  EXPECT_EQ(core::counter_uniform01(42, 7, 3), core::counter_uniform01(42, 7, 3));
  EXPECT_NE(core::counter_uniform01(42, 7, 3), core::counter_uniform01(42, 8, 3));
  EXPECT_NE(core::counter_uniform01(42, 7, 3), core::counter_uniform01(42, 7, 4));
  EXPECT_NE(core::counter_uniform01(43, 7, 3), core::counter_uniform01(42, 7, 3));
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const double u = core::counter_uniform01(1, i, 0);
    ASSERT_GT(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
  // Crude uniformity check: the mean of 4096 variates is ~0.5.
  double sum = 0.0;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    sum += core::counter_uniform01(9, i, 2);
  }
  EXPECT_NEAR(sum / 4096.0, 0.5, 0.02);
}

TEST(ParamDistributionSampling, DegenerateNormalWindowCollapsesToNearestBound) {
  // A truncation window many stddevs into one tail makes both CDF values
  // round to the same double; the conditional mass sits at the bound
  // nearest the mean, so that is what every sample must return.
  const core::ParamDistribution above =
      core::ParamDistribution::normal("E_des [GWh]", 0.0, 0.1, 30.0, 40.0);
  const core::ParamDistribution below =
      core::ParamDistribution::normal("E_des [GWh]", 0.0, 0.1, -40.0, -30.0);
  for (const double u : {0.01, 0.5, 0.99}) {
    EXPECT_EQ(above.sample(u), 30.0);   // nearest bound, not high = 40
    EXPECT_EQ(below.sample(u), -30.0);  // nearest bound, not low = -40
  }
}

TEST(ParamDistributionSampling, InverseNormalCdfRoundTripsTheCdf) {
  for (const double p : {0.001, 0.02, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    const double x = core::inverse_normal_cdf(p);
    const double back = 0.5 * std::erfc(-x / std::sqrt(2.0));
    EXPECT_NEAR(back, p, 1e-12) << "p=" << p;
  }
  EXPECT_THROW((void)core::inverse_normal_cdf(0.0), std::invalid_argument);
  EXPECT_THROW((void)core::inverse_normal_cdf(1.0), std::invalid_argument);
}

// -- parse-error context (the `greenfpga run` fix) ----------------------------

TEST(SpecErrorContext, LoadSpecNamesThePathAndTheKey) {
  const std::string path = ::testing::TempDir() + "/greenfpga_bad_spec.json";
  io::Json json = spec_to_json(ScenarioSpec::make(ScenarioKind::sweep,
                                                  device::Domain::dnn));
  json.as_object()["axes"] = io::Json::array({[] {
    io::Json axis = io::Json::object();
    axis["variable"] = "volume";
    axis["scale"] = "linear";
    axis["from"] = "low";  // type error: must name axis.from in the message
    axis["to"] = 10.0;
    axis["count"] = 5;
    return axis;
  }()});
  io::write_json_file(path, json);
  try {
    (void)load_spec(path);
    FAIL() << "expected ConfigError";
  } catch (const core::ConfigError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find(path), std::string::npos) << message;
    EXPECT_NE(message.find("axis.from"), std::string::npos) << message;
  }
}

TEST(SpecErrorContext, MalformedJsonNamesThePath) {
  const std::string path = ::testing::TempDir() + "/greenfpga_malformed_spec.json";
  {
    std::ofstream file(path);
    file << "{ not json";
  }
  try {
    (void)load_spec(path);
    FAIL() << "expected ConfigError";
  } catch (const core::ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find(path), std::string::npos) << error.what();
  }
}

TEST(SpecErrorContext, ScheduleAndPercentileFieldsNameTheKey) {
  io::Json json = spec_to_json(ScenarioSpec::make(ScenarioKind::compare,
                                                  device::Domain::dnn));
  json.as_object().at("schedule").as_object()["volume"] = "lots";
  try {
    (void)spec_from_json(json);
    FAIL() << "expected ConfigError";
  } catch (const core::ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("schedule.volume"), std::string::npos)
        << error.what();
  }

  io::Json mc_json = spec_to_json(ScenarioSpec::make(ScenarioKind::montecarlo,
                                                     device::Domain::dnn));
  mc_json.as_object().at("montecarlo").as_object()["percentiles"] =
      io::Json::array({io::Json("p95")});
  try {
    (void)spec_from_json(mc_json);
    FAIL() << "expected ConfigError";
  } catch (const core::ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("montecarlo.percentiles"),
              std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace greenfpga::scenario
