/// Tests for the ACT-style substrate: carbon-intensity database, fab
/// manufacturing model (Eq. 5) and operational model.

#include <gtest/gtest.h>

#include "act/carbon_intensity.hpp"
#include "act/fab_model.hpp"
#include "act/operational_model.hpp"
#include "units/units.hpp"

namespace greenfpga::act {
namespace {

using namespace units::unit;
using units::CarbonIntensity;

TEST(CarbonIntensity, SourceTableMatchesIpccValues) {
  EXPECT_DOUBLE_EQ(source_intensity(EnergySource::coal).in(g_per_kwh), 820.0);
  EXPECT_DOUBLE_EQ(source_intensity(EnergySource::wind).in(g_per_kwh), 11.0);
  EXPECT_DOUBLE_EQ(source_intensity(EnergySource::nuclear).in(g_per_kwh), 12.0);
  EXPECT_DOUBLE_EQ(source_intensity(EnergySource::solar).in(g_per_kwh), 41.0);
}

TEST(CarbonIntensity, RenewablesBeatFossil) {
  for (const EnergySource renewable :
       {EnergySource::solar, EnergySource::wind, EnergySource::hydropower,
        EnergySource::geothermal, EnergySource::nuclear}) {
    EXPECT_LT(source_intensity(renewable), source_intensity(EnergySource::gas))
        << to_string(renewable);
  }
}

TEST(CarbonIntensity, AllRegionsPresentAndPlausible) {
  for (const GridRegion region : all_grid_regions()) {
    const double g = grid_intensity(region).in(g_per_kwh);
    EXPECT_GT(g, 10.0) << to_string(region);
    EXPECT_LT(g, 900.0) << to_string(region);
  }
}

TEST(CarbonIntensity, MixIsWeightedAverage) {
  const MixComponent mix[] = {{EnergySource::coal, 0.5}, {EnergySource::wind, 0.5}};
  EXPECT_DOUBLE_EQ(mix_intensity(mix).in(g_per_kwh), (820.0 + 11.0) / 2.0);
}

TEST(CarbonIntensity, MixValidatesFractions) {
  const MixComponent not_normalised[] = {{EnergySource::coal, 0.5},
                                         {EnergySource::wind, 0.4}};
  EXPECT_THROW(mix_intensity(not_normalised), std::invalid_argument);
  const MixComponent negative[] = {{EnergySource::coal, 1.5}, {EnergySource::wind, -0.5}};
  EXPECT_THROW(mix_intensity(negative), std::invalid_argument);
  EXPECT_THROW(mix_intensity({}), std::invalid_argument);
}

TEST(CarbonIntensity, OffsetGridInterpolates) {
  const CarbonIntensity none = offset_grid_intensity(GridRegion::taiwan, 0.0);
  const CarbonIntensity all = offset_grid_intensity(GridRegion::taiwan, 1.0);
  const CarbonIntensity half = offset_grid_intensity(GridRegion::taiwan, 0.5);
  EXPECT_EQ(none, grid_intensity(GridRegion::taiwan));
  EXPECT_EQ(all, source_intensity(EnergySource::solar));
  EXPECT_DOUBLE_EQ(half.in(g_per_kwh), (509.0 + 41.0) / 2.0);
  EXPECT_THROW(offset_grid_intensity(GridRegion::taiwan, 1.5), std::invalid_argument);
}

TEST(FabModel, NodeDataCoversAllNodes) {
  for (const tech::ProcessNode node : tech::all_nodes()) {
    const FabNodeData& data = fab_node_data(node);
    EXPECT_GT(data.energy_per_area.canonical(), 0.0) << tech::to_string(node);
    EXPECT_GT(data.gas_per_area.canonical(), 0.0);
    EXPECT_GT(data.materials_new.canonical(), 0.0);
    EXPECT_LT(data.materials_recycled, data.materials_new)
        << "recycled sourcing must beat virgin sourcing";
  }
}

TEST(FabModel, EnergyPerAreaGrowsOnAdvancedNodes) {
  EXPECT_LT(fab_node_data(tech::ProcessNode::n28).energy_per_area,
            fab_node_data(tech::ProcessNode::n7).energy_per_area);
  EXPECT_LT(fab_node_data(tech::ProcessNode::n7).energy_per_area,
            fab_node_data(tech::ProcessNode::n3).energy_per_area);
}

TEST(FabModel, RecycledMaterialsReduceCarbonLinearly) {
  // Eq. (5): C_materials = rho*C_recycled + (1-rho)*C_new.
  FabParameters p;
  p.recycled_material_fraction = 0.0;
  const auto none = FabModel(p).materials_per_area(tech::ProcessNode::n10);
  p.recycled_material_fraction = 1.0;
  const auto full = FabModel(p).materials_per_area(tech::ProcessNode::n10);
  p.recycled_material_fraction = 0.5;
  const auto half = FabModel(p).materials_per_area(tech::ProcessNode::n10);
  EXPECT_DOUBLE_EQ(half.canonical(), (none.canonical() + full.canonical()) / 2.0);
  EXPECT_LT(full, none);
}

TEST(FabModel, RejectsInvalidRho) {
  FabParameters p;
  p.recycled_material_fraction = 1.5;
  EXPECT_THROW(FabModel{p}, std::invalid_argument);
}

TEST(FabModel, BreakdownComponentsSumToTotal) {
  const FabModel model;
  const ManufacturingBreakdown result =
      model.manufacture_die(tech::ProcessNode::n10, 150.0 * mm2);
  EXPECT_DOUBLE_EQ(result.total().canonical(),
                   (result.energy + result.gases + result.materials).canonical());
  EXPECT_GT(result.energy.canonical(), 0.0);
  EXPECT_GT(result.gases.canonical(), 0.0);
  EXPECT_GT(result.materials.canonical(), 0.0);
  EXPECT_GT(result.yield, 0.0);
  EXPECT_LE(result.yield, 1.0);
}

TEST(FabModel, PerDieCarbonSuperlinearInArea) {
  // Doubling die area more than doubles per-good-die carbon because yield
  // falls; this is what penalises large iso-performance FPGA dies.
  const FabModel model;
  const auto small = model.manufacture_die(tech::ProcessNode::n10, 150.0 * mm2).total();
  const auto large = model.manufacture_die(tech::ProcessNode::n10, 300.0 * mm2).total();
  EXPECT_GT(large.canonical(), 2.0 * small.canonical());
}

TEST(FabModel, TypicalMagnitudeIsKilogramsPerCm2) {
  // ACT-scale sanity: a 1 cm^2 die at 10 nm costs roughly 1-3 kg CO2e.
  const FabModel model;
  const auto result = model.manufacture_die(tech::ProcessNode::n10, 1.0 * cm2).total();
  EXPECT_GT(result.in(kg_co2e), 0.5);
  EXPECT_LT(result.in(kg_co2e), 5.0);
}

TEST(FabModel, GreenFabLowersEnergyTermOnly) {
  FabParameters dirty;
  dirty.fab_energy_intensity = source_intensity(EnergySource::coal);
  FabParameters green = dirty;
  green.fab_energy_intensity = source_intensity(EnergySource::wind);
  const auto d = FabModel(dirty).manufacture_die(tech::ProcessNode::n7, 100.0 * mm2);
  const auto g = FabModel(green).manufacture_die(tech::ProcessNode::n7, 100.0 * mm2);
  EXPECT_LT(g.energy, d.energy);
  EXPECT_EQ(g.gases, d.gases);
  EXPECT_EQ(g.materials, d.materials);
}

TEST(FabModel, DefectDensityOverrideUsed) {
  FabParameters p;
  p.defect_density_override = tech::DefectDensity{};  // zero defects
  p.yield.line_yield = 1.0;
  const FabModel model(p);
  EXPECT_DOUBLE_EQ(model.yield(tech::ProcessNode::n5, 400.0 * mm2), 1.0);
}

TEST(FabModel, InvalidDieAreaThrows) {
  const FabModel model;
  EXPECT_THROW(model.manufacture_die(tech::ProcessNode::n10, units::Area{}),
               std::invalid_argument);
}

TEST(Operational, EnergyMatchesPowerDutyTime) {
  OperationalParameters p;
  p.duty_cycle = 0.5;
  p.power_usage_effectiveness = 1.0;
  const OperationalModel model(p);
  // 100 W at 50 % duty for 10 hours -> 0.5 kWh.
  EXPECT_DOUBLE_EQ(model.energy_use(100.0 * w, 10.0 * hours).in(kwh), 0.5);
}

TEST(Operational, PueMultipliesEnergy) {
  OperationalParameters p;
  p.duty_cycle = 1.0;
  p.power_usage_effectiveness = 1.5;
  const OperationalModel model(p);
  EXPECT_DOUBLE_EQ(model.energy_use(1000.0 * w, 1.0 * hours).in(kwh), 1.5);
}

TEST(Operational, CarbonUsesUseIntensity) {
  OperationalParameters p;
  p.use_intensity = 500.0 * g_per_kwh;
  p.duty_cycle = 1.0;
  const OperationalModel model(p);
  EXPECT_DOUBLE_EQ(model.operational_carbon(1000.0 * w, 2.0 * hours).in(kg_co2e), 1.0);
}

TEST(Operational, AnnualCarbonIsOneYear) {
  const OperationalModel model;
  EXPECT_DOUBLE_EQ(model.annual_carbon(50.0 * w).canonical(),
                   model.operational_carbon(50.0 * w, 1.0 * years).canonical());
}

TEST(Operational, ValidationRejectsBadInputs) {
  OperationalParameters bad_duty;
  bad_duty.duty_cycle = 1.2;
  EXPECT_THROW(OperationalModel{bad_duty}, std::invalid_argument);
  OperationalParameters bad_pue;
  bad_pue.power_usage_effectiveness = 0.8;
  EXPECT_THROW(OperationalModel{bad_pue}, std::invalid_argument);
  const OperationalModel model;
  EXPECT_THROW(model.energy_use(units::Power{-1.0}, 1.0 * hours), std::invalid_argument);
  EXPECT_THROW(model.energy_use(1.0 * kw, units::TimeSpan{-1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace greenfpga::act
