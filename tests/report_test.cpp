/// Tests for report rendering: tables, ASCII charts, CSV figure output.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "report/ascii_chart.hpp"
#include "report/figure_writer.hpp"
#include "report/markdown_report.hpp"
#include "scenario/heatmap.hpp"
#include "scenario/sweep.hpp"
#include "scenario/timeline.hpp"
#include "units/units.hpp"

namespace greenfpga::report {
namespace {

using namespace units::unit;
using device::Domain;

scenario::SweepSeries small_dnn_sweep() {
  const scenario::SweepEngine engine(core::LifecycleModel(core::paper_suite()),
                                     device::domain_testcase(Domain::dnn));
  return engine.sweep_app_count(1, 4, 2.0 * years, 1e6);
}

TEST(SweepTable, HasHeaderAndAllRows) {
  const std::string table = sweep_table(small_dnn_sweep());
  EXPECT_NE(table.find("N_app"), std::string::npos);
  EXPECT_NE(table.find("FPGA:ASIC"), std::string::npos);
  EXPECT_NE(table.find("greener"), std::string::npos);
  // 4 sweep points -> at least 4 data rows.
  EXPECT_GE(std::count(table.begin(), table.end(), '\n'), 8);
}

TEST(CrossoverSummary, ReportsCrossoverWithValue) {
  const scenario::SweepEngine engine(core::LifecycleModel(core::paper_suite()),
                                     device::domain_testcase(Domain::dnn));
  const auto series = engine.sweep_app_count(1, 8, 2.0 * years, 1e6);
  const std::string summary = crossover_summary(series);
  EXPECT_NE(summary.find("A2F"), std::string::npos);
  EXPECT_NE(summary.find("N_app"), std::string::npos);
}

TEST(CrossoverSummary, ReportsDominanceWhenNoCrossover) {
  const scenario::SweepEngine engine(core::LifecycleModel(core::paper_suite()),
                                     device::domain_testcase(Domain::crypto));
  const auto series = engine.sweep_app_count(1, 4, 2.0 * years, 1e6);
  const std::string summary = crossover_summary(series);
  EXPECT_NE(summary.find("no crossover"), std::string::npos);
  EXPECT_NE(summary.find("FPGA greener throughout"), std::string::npos);
}

TEST(BreakdownTable, ListsComponentsAndTotals) {
  core::CfpBreakdown breakdown;
  breakdown.design = 1.0 * t_co2e;
  breakdown.manufacturing = 2.0 * t_co2e;
  breakdown.operational = 3.0 * t_co2e;
  const std::vector<std::pair<std::string, core::CfpBreakdown>> platforms{
      {"FPGA", breakdown}};
  const std::string table = breakdown_table(platforms);
  EXPECT_NE(table.find("design"), std::string::npos);
  EXPECT_NE(table.find("manufacturing"), std::string::npos);
  EXPECT_NE(table.find("end-of-life"), std::string::npos);
  EXPECT_NE(table.find("embodied (EC)"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
  EXPECT_NE(table.find("6"), std::string::npos);  // total = 6 t
}

TEST(SweepCsv, HeaderAndRowsAligned) {
  const io::CsvWriter csv = sweep_csv(small_dnn_sweep());
  const std::string text = csv.render();
  EXPECT_NE(text.find("asic_total_kg"), std::string::npos);
  EXPECT_NE(text.find("ratio"), std::string::npos);
  // 1 header + 4 data rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}

TEST(TimelineCsv, MatchesSeriesLength) {
  const scenario::TimelineSimulator simulator(core::LifecycleModel(core::paper_suite()),
                                              device::domain_testcase(Domain::dnn));
  scenario::TimelineParameters p;
  p.horizon = 5.0 * years;
  p.step = 1.0 * years;
  const auto series = simulator.run(p);
  const std::string text = timeline_csv(series).render();
  EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')),
            series.time_years.size() + 1);
}

TEST(ResultsDir, RespectsEnvironmentOverride) {
  const std::string dir = ::testing::TempDir() + "/gf_results_env";
  ASSERT_EQ(setenv("GREENFPGA_RESULTS_DIR", dir.c_str(), 1), 0);
  EXPECT_EQ(results_dir(), dir);
  io::CsvWriter csv;
  csv.add_row({"a", "b"});
  const std::string path = write_results_csv("test.csv", csv);
  EXPECT_TRUE(std::filesystem::exists(path));
  unsetenv("GREENFPGA_RESULTS_DIR");
  EXPECT_EQ(results_dir(), "results");
}

TEST(LineChart, MarksAllSeries) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<ChartSeries> series{
      {"asic", 'a', {1.0, 2.0, 3.0, 4.0}},
      {"fpga", 'f', {4.0, 3.0, 2.0, 1.0}},
  };
  const std::string chart = render_line_chart(x, series, 40, 10);
  EXPECT_NE(chart.find('a'), std::string::npos);
  EXPECT_NE(chart.find('f'), std::string::npos);
  EXPECT_NE(chart.find("asic"), std::string::npos);
  EXPECT_NE(chart.find("fpga"), std::string::npos);
}

TEST(LineChart, LogScaleRequiresPositiveX) {
  const std::vector<double> x{0.0, 1.0};
  const std::vector<ChartSeries> series{{"s", '*', {1.0, 2.0}}};
  EXPECT_THROW(render_line_chart(x, series, 40, 10, /*log_x=*/true),
               std::invalid_argument);
}

TEST(LineChart, ValidatesInput) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<ChartSeries> mismatched{{"s", '*', {1.0}}};
  EXPECT_THROW(render_line_chart(x, mismatched), std::invalid_argument);
  const std::vector<ChartSeries> ok{{"s", '*', {1.0, 2.0}}};
  EXPECT_THROW(render_line_chart(x, ok, 4, 2), std::invalid_argument);
  EXPECT_THROW(render_line_chart({}, ok), std::invalid_argument);
}

TEST(LineChart, FlatSeriesRenderable) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<ChartSeries> flat{{"s", '*', {5.0, 5.0}}};
  EXPECT_NO_THROW(render_line_chart(x, flat));
}

TEST(HeatmapRender, MarksCrossoverCells) {
  const scenario::HeatmapEngine engine(core::LifecycleModel(core::paper_suite()),
                                       device::domain_testcase(Domain::dnn));
  const std::vector<int> apps{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> lifetimes{1.0, 2.0};
  const scenario::Heatmap map = engine.app_count_vs_lifetime(apps, lifetimes, 1e6);
  const std::string rendered = render_heatmap(map);
  EXPECT_NE(rendered.find("FPGA:ASIC"), std::string::npos);
  EXPECT_NE(rendered.find('X'), std::string::npos) << "unity cells should be marked";
}

TEST(Bars, NegativeValuesRenderLeftward) {
  const std::vector<Bar> bars{{"mfg", 10.0}, {"eol", -2.0}};
  const std::string rendered = render_bars(bars, 20);
  EXPECT_NE(rendered.find('#'), std::string::npos);
  EXPECT_NE(rendered.find('<'), std::string::npos);
  EXPECT_NE(rendered.find("-2"), std::string::npos);
}

TEST(Bars, EmptyThrows) { EXPECT_THROW(render_bars({}), std::invalid_argument); }

TEST(MarkdownReport, RendersAllSections) {
  const device::DomainTestcase testcase = device::domain_testcase(Domain::crypto);
  MarkdownReportInputs inputs;
  inputs.scenario.name = "markdown test";
  inputs.scenario.asic = testcase.asic;
  inputs.scenario.fpga = testcase.fpga;
  inputs.scenario.schedule = core::paper_schedule(Domain::crypto);
  inputs.comparison = core::compare(core::LifecycleModel(core::paper_suite()), testcase,
                                    inputs.scenario.schedule);
  const std::string markdown = render_markdown_report(inputs);
  EXPECT_NE(markdown.find("# GreenFPGA sustainability report"), std::string::npos);
  EXPECT_NE(markdown.find("**markdown test**"), std::string::npos);
  EXPECT_NE(markdown.find("## Verdict"), std::string::npos);
  EXPECT_NE(markdown.find("Greener platform: FPGA"), std::string::npos);
  EXPECT_NE(markdown.find("| manufacturing |"), std::string::npos);
  // No uncertainty section without a Monte-Carlo result.
  EXPECT_EQ(markdown.find("## Uncertainty"), std::string::npos);
}

TEST(MarkdownReport, IncludesUncertaintyWhenProvided) {
  const device::DomainTestcase testcase = device::domain_testcase(Domain::dnn);
  MarkdownReportInputs inputs;
  inputs.scenario.asic = testcase.asic;
  inputs.scenario.fpga = testcase.fpga;
  inputs.scenario.schedule = core::paper_schedule(Domain::dnn);
  inputs.comparison = core::compare(core::LifecycleModel(core::paper_suite()), testcase,
                                    inputs.scenario.schedule);
  scenario::MonteCarloResult mc;
  mc.samples = 64;
  mc.mean = 1.05;
  mc.p05 = 0.9;
  mc.p50 = 1.04;
  mc.p95 = 1.2;
  mc.fpga_win_fraction = 0.4;
  inputs.uncertainty = mc;
  const std::string markdown = render_markdown_report(inputs);
  EXPECT_NE(markdown.find("## Uncertainty"), std::string::npos);
  EXPECT_NE(markdown.find("| samples | 64 |"), std::string::npos);
  EXPECT_NE(markdown.find("| FPGA wins | 40 % |"), std::string::npos);
}

TEST(MarkdownReport, BreakdownTableIsValidMarkdown) {
  core::CfpBreakdown breakdown;
  breakdown.manufacturing = 2.0 * t_co2e;
  const std::vector<std::pair<std::string, core::CfpBreakdown>> platforms{
      {"X", breakdown}};
  const std::string table = markdown_breakdown_table(platforms);
  EXPECT_NE(table.find("| component [t CO2e] | X |"), std::string::npos);
  EXPECT_NE(table.find("|---|---:|"), std::string::npos);
  EXPECT_NE(table.find("| **total** | **2** |"), std::string::npos);
}

}  // namespace
}  // namespace greenfpga::report
