/// Tests for device specs, iso-performance mapping (Table 2) and the
/// built-in catalog (Table 3).

#include <gtest/gtest.h>

#include "device/catalog.hpp"
#include "device/chip_spec.hpp"
#include "device/iso_performance.hpp"
#include "units/units.hpp"

namespace greenfpga::device {
namespace {

using namespace units::unit;

TEST(ChipSpec, ValidateAcceptsCatalogDevices) {
  EXPECT_NO_THROW(industry_asic1().validate());
  EXPECT_NO_THROW(industry_asic2().validate());
  EXPECT_NO_THROW(industry_fpga1().validate());
  EXPECT_NO_THROW(industry_fpga2().validate());
}

TEST(ChipSpec, ValidateNamesOffendingField) {
  ChipSpec chip = industry_asic1();
  chip.die_area = units::Area{};
  try {
    chip.validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("die area"), std::string::npos);
  }
}

TEST(ChipSpec, ValidateRejectsEachBadField) {
  ChipSpec chip = industry_fpga1();
  chip.name.clear();
  EXPECT_THROW(chip.validate(), std::invalid_argument);

  chip = industry_fpga1();
  chip.peak_power = units::Power{-1.0};
  EXPECT_THROW(chip.validate(), std::invalid_argument);

  chip = industry_fpga1();
  chip.capacity_gates = 0.0;
  EXPECT_THROW(chip.validate(), std::invalid_argument);

  chip = industry_fpga1();
  chip.service_life = units::TimeSpan{};
  EXPECT_THROW(chip.validate(), std::invalid_argument);
}

TEST(IsoPerformance, Table2RatiosVerbatim) {
  EXPECT_DOUBLE_EQ(domain_ratios(Domain::dnn).area_ratio, 4.0);
  EXPECT_DOUBLE_EQ(domain_ratios(Domain::dnn).power_ratio, 3.0);
  EXPECT_DOUBLE_EQ(domain_ratios(Domain::imgproc).area_ratio, 7.42);
  EXPECT_DOUBLE_EQ(domain_ratios(Domain::imgproc).power_ratio, 1.25);
  EXPECT_DOUBLE_EQ(domain_ratios(Domain::crypto).area_ratio, 1.0);
  EXPECT_DOUBLE_EQ(domain_ratios(Domain::crypto).power_ratio, 1.0);
}

TEST(IsoPerformance, DerivedFpgaScalesAreaAndPower) {
  const DomainTestcase testcase = domain_testcase(Domain::dnn);
  EXPECT_DOUBLE_EQ(testcase.fpga.die_area.in(mm2), 4.0 * testcase.asic.die_area.in(mm2));
  EXPECT_DOUBLE_EQ(testcase.fpga.peak_power.in(w), 3.0 * testcase.asic.peak_power.in(w));
  EXPECT_TRUE(testcase.fpga.is_fpga());
  EXPECT_FALSE(testcase.asic.is_fpga());
}

TEST(IsoPerformance, CryptoPairIsPhysicallyIdentical) {
  const DomainTestcase testcase = domain_testcase(Domain::crypto);
  EXPECT_EQ(testcase.fpga.die_area, testcase.asic.die_area);
  EXPECT_EQ(testcase.fpga.peak_power, testcase.asic.peak_power);
}

TEST(IsoPerformance, DerivedFpgaHasFifteenYearLife) {
  const DomainTestcase testcase = domain_testcase(Domain::imgproc);
  EXPECT_DOUBLE_EQ(testcase.fpga.service_life.in(years), 15.0);
  EXPECT_DOUBLE_EQ(testcase.asic.service_life.in(years), 8.0);
}

TEST(IsoPerformance, FpgasRequiredCeils) {
  EXPECT_EQ(fpgas_required(0.0, 1e6), 1);
  EXPECT_EQ(fpgas_required(1e6, 1e6), 1);
  EXPECT_EQ(fpgas_required(1e6 + 1.0, 1e6), 2);
  EXPECT_EQ(fpgas_required(9.5e6, 1e6), 10);
}

TEST(IsoPerformance, FpgasRequiredValidates) {
  EXPECT_THROW(fpgas_required(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(fpgas_required(-1.0, 1e6), std::invalid_argument);
}

TEST(IsoPerformance, ChipsPerUnitIsOneForAsic) {
  // Paper footnote: N_FPGA = 1 for ASICs regardless of application size.
  const ChipSpec asic = industry_asic1();
  EXPECT_EQ(chips_per_unit(asic, 1e12), 1);
}

TEST(IsoPerformance, ChipsPerUnitUsesFpgaCapacity) {
  const ChipSpec fpga = industry_fpga1();
  EXPECT_EQ(chips_per_unit(fpga, 0.0), 1);
  EXPECT_EQ(chips_per_unit(fpga, fpga.capacity_gates * 2.5), 3);
}

TEST(Catalog, Table3SpecsVerbatim) {
  const ChipSpec asic1 = industry_asic1();
  EXPECT_DOUBLE_EQ(asic1.die_area.in(mm2), 340.0);
  EXPECT_DOUBLE_EQ(asic1.peak_power.in(w), 70.0);
  EXPECT_EQ(asic1.node, tech::ProcessNode::n12);

  const ChipSpec asic2 = industry_asic2();
  EXPECT_DOUBLE_EQ(asic2.die_area.in(mm2), 600.0);
  EXPECT_DOUBLE_EQ(asic2.peak_power.in(w), 192.0);
  EXPECT_EQ(asic2.node, tech::ProcessNode::n7);

  const ChipSpec fpga1 = industry_fpga1();
  EXPECT_DOUBLE_EQ(fpga1.die_area.in(mm2), 380.0);
  EXPECT_DOUBLE_EQ(fpga1.peak_power.in(w), 160.0);
  EXPECT_EQ(fpga1.node, tech::ProcessNode::n14);

  const ChipSpec fpga2 = industry_fpga2();
  EXPECT_DOUBLE_EQ(fpga2.die_area.in(mm2), 550.0);
  EXPECT_DOUBLE_EQ(fpga2.peak_power.in(w), 220.0);
  EXPECT_EQ(fpga2.node, tech::ProcessNode::n10);
}

TEST(Catalog, FpgaCapacityReflectsFabricOverhead) {
  const ChipSpec fpga = industry_fpga2();
  const double silicon_gates = tech::node_info(fpga.node).gates_in_area(fpga.die_area);
  EXPECT_DOUBLE_EQ(fpga.capacity_gates, silicon_gates / kFpgaFabricOverhead);
  const ChipSpec asic = industry_asic2();
  const double asic_gates = tech::node_info(asic.node).gates_in_area(asic.die_area);
  EXPECT_DOUBLE_EQ(asic.capacity_gates, asic_gates);
}

TEST(Catalog, AllDomainsEnumerated) {
  EXPECT_EQ(all_domains().size(), 3u);
  for (const Domain domain : all_domains()) {
    const DomainTestcase testcase = domain_testcase(domain);
    EXPECT_EQ(testcase.domain, domain);
    EXPECT_NO_THROW(testcase.asic.validate());
    EXPECT_NO_THROW(testcase.fpga.validate());
    EXPECT_EQ(testcase.asic.node, tech::ProcessNode::n10) << "Table 2 is a 10 nm study";
    EXPECT_EQ(testcase.fpga.node, tech::ProcessNode::n10);
  }
}

TEST(Catalog, NamesAreDistinct) {
  EXPECT_NE(domain_testcase(Domain::dnn).fpga.name, domain_testcase(Domain::dnn).asic.name);
  EXPECT_NE(industry_fpga1().name, industry_fpga2().name);
}

TEST(Enums, ToStringCoverage) {
  EXPECT_EQ(to_string(ChipKind::asic), "ASIC");
  EXPECT_EQ(to_string(ChipKind::fpga), "FPGA");
  EXPECT_EQ(to_string(Domain::dnn), "DNN");
  EXPECT_EQ(to_string(Domain::imgproc), "ImgProc");
  EXPECT_EQ(to_string(Domain::crypto), "Crypto");
}

}  // namespace
}  // namespace greenfpga::device
