/// Integration tests: full pipelines across modules -- config file to
/// verdict, sweep to CSV, cross-model consistency.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/comparator.hpp"
#include "core/config_io.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "report/figure_writer.hpp"
#include "scenario/heatmap.hpp"
#include "scenario/sensitivity.hpp"
#include "scenario/sweep.hpp"
#include "scenario/timeline.hpp"
#include "units/units.hpp"

namespace greenfpga {
namespace {

using namespace units::unit;
using device::Domain;

TEST(Integration, ScenarioFileToVerdict) {
  // Write a scenario config to disk, load it, evaluate it, and check the
  // verdict -- the full CLI `compare` path without the process boundary.
  const device::DomainTestcase testcase = device::domain_testcase(Domain::crypto);
  io::Json scenario = io::Json::object();
  scenario["name"] = "crypto appliance";
  scenario["suite"] = core::to_json(core::paper_suite());
  scenario["asic"] = core::to_json(testcase.asic);
  scenario["fpga"] = core::to_json(testcase.fpga);
  scenario["schedule"] = core::to_json(core::paper_schedule(Domain::crypto));
  const std::string path = ::testing::TempDir() + "/gf_integration_scenario.json";
  io::write_json_file(path, scenario);

  const core::ScenarioConfig loaded = core::load_scenario(path);
  const core::LifecycleModel model(loaded.suite);
  const core::Comparison comparison =
      core::compare(model, loaded.asic, loaded.fpga, loaded.schedule);
  EXPECT_EQ(comparison.verdict(), core::Verdict::fpga_lower);
}

TEST(Integration, SweepMatchesPointwiseEvaluation) {
  // The sweep engine must produce exactly what independent single-point
  // evaluations produce.
  const core::LifecycleModel model(core::paper_suite());
  const device::DomainTestcase testcase = device::domain_testcase(Domain::dnn);
  const scenario::SweepEngine engine(model, testcase);
  const scenario::SweepSeries series = engine.sweep_app_count(1, 6, 2.0 * years, 1e6);
  for (std::size_t i = 0; i < series.x.size(); ++i) {
    const int k = static_cast<int>(series.x[i]);
    const auto direct = core::compare(
        model, testcase, core::paper_schedule(Domain::dnn, k, 2.0 * years, 1e6));
    EXPECT_DOUBLE_EQ(series.asic[i].total().canonical(),
                     direct.asic.total.total().canonical());
    EXPECT_DOUBLE_EQ(series.fpga[i].total().canonical(),
                     direct.fpga.total.total().canonical());
  }
}

TEST(Integration, HeatmapRowsMatchSweeps) {
  // A one-row heat-map over N_app must match the N_app sweep ratios.
  const core::LifecycleModel model(core::paper_suite());
  const device::DomainTestcase testcase = device::domain_testcase(Domain::dnn);
  const scenario::SweepEngine sweeper(model, testcase);
  const scenario::HeatmapEngine mapper(model, testcase);

  const std::vector<int> apps{1, 2, 3, 4, 5};
  const std::vector<double> lifetimes{2.0};
  const scenario::Heatmap map = mapper.app_count_vs_lifetime(apps, lifetimes, 1e6);
  const scenario::SweepSeries series = sweeper.sweep_app_count(1, 5, 2.0 * years, 1e6);
  const std::vector<double> ratios = series.ratios();
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    EXPECT_DOUBLE_EQ(map.ratio[0][i], ratios[i]);
  }
}

TEST(Integration, TimelineConsistentWithLifecycleAtAppBoundaries) {
  // After k whole application lifetimes (within the first fleet's service
  // life), the timeline's cumulative FPGA carbon equals the lifecycle
  // model's Eq. (2) total for a k-application schedule.
  const core::LifecycleModel model(core::paper_suite());
  const device::DomainTestcase testcase = device::domain_testcase(Domain::dnn);
  const scenario::TimelineSimulator simulator(model, testcase);
  scenario::TimelineParameters p;
  p.horizon = 10.0 * years;
  p.app_lifetime = 2.0 * years;
  p.volume = 1e6;
  p.step = 2.0 * years;
  const scenario::TimelineSeries series = simulator.run(p);

  // Sample at t = 10 y (end of the 5th application, all five app-dev
  // events charged, single fleet purchase).
  const auto fpga_eval =
      model.evaluate_fpga(testcase.fpga, core::paper_schedule(Domain::dnn, 5, 2.0 * years, 1e6));
  EXPECT_NEAR(series.fpga_cumulative_kg.back(), fpga_eval.total.total().canonical(),
              fpga_eval.total.total().canonical() * 1e-9);
}

TEST(Integration, TimelineAsicMatchesEquationOne) {
  const core::LifecycleModel model(core::paper_suite());
  const device::DomainTestcase testcase = device::domain_testcase(Domain::imgproc);
  const scenario::TimelineSimulator simulator(model, testcase);
  scenario::TimelineParameters p;
  p.horizon = 6.0 * years;
  p.app_lifetime = 2.0 * years;
  p.volume = 1e5;
  p.step = 2.0 * years;
  const scenario::TimelineSeries series = simulator.run(p);
  const auto asic_eval = model.evaluate_asic(
      testcase.asic, core::paper_schedule(Domain::imgproc, 3, 2.0 * years, 1e5));
  EXPECT_NEAR(series.asic_cumulative_kg.back(), asic_eval.total.total().canonical(),
              asic_eval.total.total().canonical() * 1e-9);
}

TEST(Integration, FigureCsvRoundTripsThroughParser) {
  // CSV written by the figure writer parses back with consistent totals.
  const scenario::SweepEngine engine(core::LifecycleModel(core::paper_suite()),
                                     device::domain_testcase(Domain::dnn));
  const scenario::SweepSeries series = engine.sweep_app_count(1, 3, 2.0 * years, 1e6);
  const std::string dir = ::testing::TempDir() + "/gf_integration_results";
  ASSERT_EQ(setenv("GREENFPGA_RESULTS_DIR", dir.c_str(), 1), 0);
  const std::string path = report::write_results_csv("fig4_dnn.csv", report::sweep_csv(series));
  unsetenv("GREENFPGA_RESULTS_DIR");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("ratio"), std::string::npos);
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, 3);
}

TEST(Integration, IndustryAndPaperSuitesDisagreeOnRegime) {
  // The same DNN testcase is embodied-dominated in the edge suite and
  // operation-dominated in the datacenter suite -- the regime split that
  // reconciles Figs. 4-8 with Figs. 10-11.
  const device::DomainTestcase testcase = device::domain_testcase(Domain::dnn);
  const auto schedule = core::paper_schedule(Domain::dnn);
  const auto edge =
      core::LifecycleModel(core::paper_suite()).evaluate_asic(testcase.asic, schedule);
  const auto datacenter =
      core::LifecycleModel(core::industry_suite()).evaluate_asic(testcase.asic, schedule);
  EXPECT_GT(edge.total.embodied(), edge.total.operational);
  EXPECT_GT(datacenter.total.operational, datacenter.total.embodied());
}

TEST(Integration, MonteCarloBandContainsDeterministicRatio) {
  const device::DomainTestcase testcase = device::domain_testcase(Domain::dnn);
  const auto schedule = core::paper_schedule(Domain::dnn);
  const double deterministic =
      core::compare(core::LifecycleModel(core::paper_suite()), testcase, schedule).ratio();
  const auto mc = scenario::monte_carlo(core::paper_suite(), testcase, schedule,
                                        scenario::table1_ranges(), 96, 42);
  EXPECT_GT(deterministic, mc.p05 * 0.5);
  EXPECT_LT(deterministic, mc.p95 * 2.0);
}

}  // namespace
}  // namespace greenfpga
