/// Tests for the dependency-free micro-benchmark harness (src/bench/):
/// the robust stats kernel, the warmup/repetition/iteration accounting
/// under an injected fake clock, and the baseline regression verdict.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "bench/compare.hpp"
#include "bench/harness.hpp"
#include "bench/stats.hpp"

namespace greenfpga::bench {
namespace {

// ---------------------------------------------------------------------------
// Stats kernel
// ---------------------------------------------------------------------------

TEST(BenchStats, OddLengthPinned) {
  const SampleStats stats = compute_stats({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 5.0);
  EXPECT_DOUBLE_EQ(stats.median, 3.0);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  // rank = p/100 * (n-1): p10 at rank 0.4 -> 1.4, p90 at rank 3.6 -> 4.6.
  EXPECT_DOUBLE_EQ(stats.p10, 1.4);
  EXPECT_DOUBLE_EQ(stats.p90, 4.6);
  EXPECT_DOUBLE_EQ(stats.p95, 4.8);
  EXPECT_DOUBLE_EQ(stats.p99, 4.96);
  // Deviations from the median {2,1,0,1,2} -> MAD 1.
  EXPECT_DOUBLE_EQ(stats.mad, 1.0);
}

TEST(BenchStats, EvenLengthInterpolates) {
  const SampleStats stats = compute_stats({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(stats.median, 2.5);
  EXPECT_DOUBLE_EQ(stats.mean, 2.5);
  EXPECT_DOUBLE_EQ(stats.p10, 1.3);
  EXPECT_DOUBLE_EQ(stats.p90, 3.7);
  // Deviations {1.5, 0.5, 0.5, 1.5} -> median of the middle pair = 1.
  EXPECT_DOUBLE_EQ(stats.mad, 1.0);
}

TEST(BenchStats, SingleSampleDegenerates) {
  const SampleStats stats = compute_stats({7.0});
  EXPECT_DOUBLE_EQ(stats.min, 7.0);
  EXPECT_DOUBLE_EQ(stats.p10, 7.0);
  EXPECT_DOUBLE_EQ(stats.median, 7.0);
  EXPECT_DOUBLE_EQ(stats.p90, 7.0);
  EXPECT_DOUBLE_EQ(stats.p95, 7.0);
  EXPECT_DOUBLE_EQ(stats.p99, 7.0);
  EXPECT_DOUBLE_EQ(stats.max, 7.0);
  EXPECT_DOUBLE_EQ(stats.mean, 7.0);
  EXPECT_DOUBLE_EQ(stats.mad, 0.0);
}

TEST(BenchStats, EmptySampleSetThrows) {
  EXPECT_THROW(compute_stats({}), std::invalid_argument);
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

TEST(BenchStats, PercentileEndpointsClamp) {
  const std::vector<double> sorted{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 25.0), 1.5);
}

TEST(BenchStats, UnsortedInputAccepted) {
  // compute_stats sorts internally; reversed input gives the same summary.
  const SampleStats forward = compute_stats({1.0, 2.0, 3.0, 4.0, 5.0});
  const SampleStats reversed = compute_stats({5.0, 4.0, 3.0, 2.0, 1.0});
  EXPECT_DOUBLE_EQ(forward.median, reversed.median);
  EXPECT_DOUBLE_EQ(forward.p10, reversed.p10);
  EXPECT_DOUBLE_EQ(forward.mad, reversed.mad);
}

// ---------------------------------------------------------------------------
// Harness accounting under a fake clock
// ---------------------------------------------------------------------------

/// A scripted nanosecond clock: returns the next value of `ticks` on each
/// call and counts how often it was consulted.
struct FakeClock {
  std::vector<std::uint64_t> ticks;
  std::size_t calls = 0;

  std::function<std::uint64_t()> fn() {
    return [this] {
      if (calls >= ticks.size()) {
        throw std::logic_error("fake clock consulted more often than scripted");
      }
      return ticks[calls++];
    };
  }
};

TEST(BenchHarness, WarmupAndRepetitionAccounting) {
  int op_calls = 0;
  const BenchCase bench_case{
      .group = "test",
      .name = "counting",
      .description = "",
      .setup = [&op_calls] {
        return PreparedCase{.op = [&op_calls] { ++op_calls; },
                            .iterations = 4,
                            .bytes_per_op = 0.0};
      }};
  // Timed batches of 4 iterations: 8000 ns, 4000 ns, 16000 ns ->
  // per-op samples 2 us, 1 us, 4 us.
  FakeClock clock{.ticks = {0, 8000, 10000, 14000, 20000, 36000}, .calls = 0};
  const BenchOptions options{.warmup = 2, .repetitions = 3, .clock_ns = clock.fn()};
  const CaseResult result = run_case(bench_case, options);

  // (2 warmup + 3 timed) batches x 4 iterations each.
  EXPECT_EQ(op_calls, 20);
  // The clock is read exactly twice per *timed* batch; warmup is untimed.
  EXPECT_EQ(clock.calls, 6u);
  EXPECT_EQ(result.warmup, 2);
  EXPECT_EQ(result.repetitions, 3);
  EXPECT_EQ(result.iterations, 4);
  EXPECT_DOUBLE_EQ(result.seconds.min, 1e-6);
  EXPECT_DOUBLE_EQ(result.seconds.median, 2e-6);
  EXPECT_DOUBLE_EQ(result.seconds.max, 4e-6);
  EXPECT_DOUBLE_EQ(result.ops_per_s, 1.0 / 2e-6);
  EXPECT_DOUBLE_EQ(result.bytes_per_s, 0.0);
  EXPECT_EQ(result.id(), "test/counting");
}

TEST(BenchHarness, SingleRepetitionWorks) {
  const BenchCase bench_case{.group = "test",
                             .name = "single",
                             .description = "",
                             .setup = [] {
                               return PreparedCase{.op = [] {}, .iterations = 1,
                                                   .bytes_per_op = 0.0};
                             }};
  FakeClock clock{.ticks = {1000, 4000}, .calls = 0};
  const BenchOptions options{.warmup = 0, .repetitions = 1, .clock_ns = clock.fn()};
  const CaseResult result = run_case(bench_case, options);
  EXPECT_EQ(clock.calls, 2u);
  EXPECT_DOUBLE_EQ(result.seconds.median, 3e-6);
  EXPECT_DOUBLE_EQ(result.seconds.mad, 0.0);
}

TEST(BenchHarness, BytesPerOpDerivesBytesPerSecond) {
  const BenchCase bench_case{.group = "test",
                             .name = "bytes",
                             .description = "",
                             .setup = [] {
                               return PreparedCase{.op = [] {}, .iterations = 2,
                                                   .bytes_per_op = 100.0};
                             }};
  // One timed batch of 2 iterations taking 2000 ns -> 1 us per op.
  FakeClock clock{.ticks = {0, 2000}, .calls = 0};
  const BenchOptions options{.warmup = 0, .repetitions = 1, .clock_ns = clock.fn()};
  const CaseResult result = run_case(bench_case, options);
  EXPECT_DOUBLE_EQ(result.seconds.median, 1e-6);
  EXPECT_DOUBLE_EQ(result.bytes_per_s, 100.0 / 1e-6);
}

TEST(BenchHarness, ZeroElapsedBatchYieldsZeroOpsPerSecond) {
  // A clock that never advances must not produce infinite ops/s.
  const BenchCase bench_case{.group = "test",
                             .name = "frozen",
                             .description = "",
                             .setup = [] {
                               return PreparedCase{.op = [] {}, .iterations = 1,
                                                   .bytes_per_op = 50.0};
                             }};
  FakeClock clock{.ticks = {5000, 5000}, .calls = 0};
  const BenchOptions options{.warmup = 0, .repetitions = 1, .clock_ns = clock.fn()};
  const CaseResult result = run_case(bench_case, options);
  EXPECT_DOUBLE_EQ(result.seconds.median, 0.0);
  EXPECT_DOUBLE_EQ(result.ops_per_s, 0.0);
  EXPECT_DOUBLE_EQ(result.bytes_per_s, 0.0);
}

TEST(BenchHarness, InvalidCasesThrow) {
  const BenchOptions options;
  EXPECT_THROW(
      (void)run_case(BenchCase{.group = "g", .name = "n", .description = "",
                               .setup = nullptr},
                     options),
      std::invalid_argument);
  EXPECT_THROW(
      (void)run_case(BenchCase{.group = "g", .name = "n", .description = "",
                               .setup =
                                   [] {
                                     return PreparedCase{.op = nullptr,
                                                         .iterations = 1,
                                                         .bytes_per_op = 0.0};
                                   }},
                     options),
      std::invalid_argument);
  EXPECT_THROW(
      (void)run_case(BenchCase{.group = "g", .name = "n", .description = "",
                               .setup =
                                   [] {
                                     return PreparedCase{.op = [] {},
                                                         .iterations = 0,
                                                         .bytes_per_op = 0.0};
                                   }},
                     options),
      std::invalid_argument);
}

TEST(BenchHarness, BuiltinRegistryCoversTheSixHotPaths) {
  const std::vector<BenchCase> cases = builtin_cases();
  ASSERT_GE(cases.size(), 6u);
  std::vector<std::string> groups;
  for (const BenchCase& bench_case : cases) {
    EXPECT_TRUE(bench_case.setup) << bench_case.id();
    EXPECT_FALSE(bench_case.description.empty()) << bench_case.id();
    groups.push_back(bench_case.group);
  }
  for (const char* group : {"engine", "mc", "frontier", "batch", "json", "cache"}) {
    EXPECT_NE(std::find(groups.begin(), groups.end(), group), groups.end())
        << "missing builtin group " << group;
  }
}

// ---------------------------------------------------------------------------
// Regression verdict
// ---------------------------------------------------------------------------

CaseResult make_result(const std::string& group, const std::string& name,
                       double median_seconds) {
  CaseResult result;
  result.group = group;
  result.name = name;
  result.warmup = 1;
  result.repetitions = 3;
  result.iterations = 1;
  result.seconds.min = median_seconds;
  result.seconds.p10 = median_seconds;
  result.seconds.median = median_seconds;
  result.seconds.p90 = median_seconds;
  result.seconds.p95 = median_seconds;
  result.seconds.p99 = median_seconds;
  result.seconds.max = median_seconds;
  result.seconds.mean = median_seconds;
  result.ops_per_s = 1.0 / median_seconds;
  return result;
}

BenchArtifact make_baseline(const std::string& group,
                            std::vector<CaseResult> cases) {
  return BenchArtifact{.schema = kArtifactSchema,
                       .group = group,
                       .environment = capture_environment(),
                       .cases = std::move(cases)};
}

TEST(BenchCompare, ExactlyAtThresholdPasses) {
  const std::vector<CaseResult> current{make_result("engine", "grid", 1e-2)};
  const std::vector<BenchArtifact> baselines{
      make_baseline("engine", {make_result("engine", "grid", 1e-3)})};
  // current == baseline * 10: factor exactly at the limit -> ok.
  const std::vector<CaseComparison> rows = compare_results(current, baselines, 10.0);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].verdict, CaseVerdict::ok);
  EXPECT_DOUBLE_EQ(rows[0].factor, 10.0);
  EXPECT_TRUE(comparison_passes(rows));
}

TEST(BenchCompare, BeyondThresholdRegresses) {
  const std::vector<CaseResult> current{make_result("engine", "grid", 1.001e-2)};
  const std::vector<BenchArtifact> baselines{
      make_baseline("engine", {make_result("engine", "grid", 1e-3)})};
  const std::vector<CaseComparison> rows = compare_results(current, baselines, 10.0);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].verdict, CaseVerdict::regressed);
  EXPECT_GT(rows[0].factor, 10.0);
  EXPECT_FALSE(comparison_passes(rows));
}

TEST(BenchCompare, FasterThanBaselinePasses) {
  const std::vector<CaseResult> current{make_result("engine", "grid", 1e-4)};
  const std::vector<BenchArtifact> baselines{
      make_baseline("engine", {make_result("engine", "grid", 1e-3)})};
  const std::vector<CaseComparison> rows = compare_results(current, baselines, 10.0);
  EXPECT_EQ(rows[0].verdict, CaseVerdict::ok);
  EXPECT_DOUBLE_EQ(rows[0].factor, 0.1);
}

TEST(BenchCompare, BaselineCaseNotExecutedIsMissing) {
  const std::vector<CaseResult> current{make_result("engine", "grid", 1e-3)};
  const std::vector<BenchArtifact> baselines{make_baseline(
      "engine",
      {make_result("engine", "grid", 1e-3), make_result("engine", "renamed", 1e-3)})};
  const std::vector<CaseComparison> rows = compare_results(current, baselines, 10.0);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].verdict, CaseVerdict::ok);
  EXPECT_EQ(rows[1].id, "engine/renamed");
  EXPECT_EQ(rows[1].verdict, CaseVerdict::missing);
  EXPECT_FALSE(comparison_passes(rows));
}

TEST(BenchCompare, NewCaseWithoutBaselineIsAddedAndPasses) {
  const std::vector<CaseResult> current{make_result("engine", "grid", 1e-3),
                                        make_result("engine", "fresh", 1e-3)};
  const std::vector<BenchArtifact> baselines{
      make_baseline("engine", {make_result("engine", "grid", 1e-3)})};
  const std::vector<CaseComparison> rows = compare_results(current, baselines, 10.0);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].id, "engine/fresh");
  EXPECT_EQ(rows[1].verdict, CaseVerdict::added);
  EXPECT_TRUE(comparison_passes(rows));
}

TEST(BenchCompare, InvalidInputsThrow) {
  const std::vector<CaseResult> current{make_result("engine", "grid", 1e-3)};
  const std::vector<BenchArtifact> baselines{
      make_baseline("engine", {make_result("engine", "grid", 1e-3)})};
  EXPECT_THROW((void)compare_results(current, baselines, 0.0), std::invalid_argument);
  EXPECT_THROW((void)compare_results(current, baselines, -1.0), std::invalid_argument);
  const std::vector<BenchArtifact> corrupt{
      make_baseline("engine", {make_result("engine", "grid", 0.0)})};
  EXPECT_THROW((void)compare_results(current, corrupt, 10.0), std::invalid_argument);
}

}  // namespace
}  // namespace greenfpga::bench
