/// Tests for the sweep engine and crossover detection.

#include <gtest/gtest.h>

#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "scenario/sweep.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {
namespace {

using namespace units::unit;
using device::Domain;

SweepEngine dnn_engine() {
  return SweepEngine(core::LifecycleModel(core::paper_suite()),
                     device::domain_testcase(Domain::dnn));
}

TEST(FindCrossovers, DetectsSingleA2f) {
  // FPGA starts above the ASIC and dips below between x = 2 and 3.
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> asic{10, 20, 30, 40};
  const std::vector<double> fpga{25, 26, 27, 28};
  const auto crossovers = find_crossovers(x, asic, fpga);
  ASSERT_EQ(crossovers.size(), 1u);
  EXPECT_EQ(crossovers[0].kind, CrossoverKind::a2f);
  // fpga-asic: +15, +6, -3 -> crossing between 2 and 3 at t = 6/9.
  EXPECT_NEAR(crossovers[0].x, 2.0 + 6.0 / 9.0, 1e-12);
}

TEST(FindCrossovers, DetectsF2a) {
  const std::vector<double> x{0, 1};
  const std::vector<double> asic{10, 10};
  const std::vector<double> fpga{5, 15};
  const auto crossovers = find_crossovers(x, asic, fpga);
  ASSERT_EQ(crossovers.size(), 1u);
  EXPECT_EQ(crossovers[0].kind, CrossoverKind::f2a);
  EXPECT_NEAR(crossovers[0].x, 0.5, 1e-12);
}

TEST(FindCrossovers, MultipleCrossings) {
  const std::vector<double> x{0, 1, 2, 3};
  const std::vector<double> asic{10, 10, 10, 10};
  const std::vector<double> fpga{5, 15, 5, 15};
  const auto crossovers = find_crossovers(x, asic, fpga);
  ASSERT_EQ(crossovers.size(), 3u);
  EXPECT_EQ(crossovers[0].kind, CrossoverKind::f2a);
  EXPECT_EQ(crossovers[1].kind, CrossoverKind::a2f);
  EXPECT_EQ(crossovers[2].kind, CrossoverKind::f2a);
}

TEST(FindCrossovers, NoCrossingsOnParallelCurves) {
  const std::vector<double> x{0, 1, 2};
  const std::vector<double> asic{10, 20, 30};
  const std::vector<double> fpga{5, 15, 25};
  EXPECT_TRUE(find_crossovers(x, asic, fpga).empty());
}

TEST(FindCrossovers, ExactTieAtSample) {
  const std::vector<double> x{0, 1, 2};
  const std::vector<double> asic{10, 10, 10};
  const std::vector<double> fpga{12, 10, 8};
  const auto crossovers = find_crossovers(x, asic, fpga);
  ASSERT_EQ(crossovers.size(), 1u);
  EXPECT_EQ(crossovers[0].kind, CrossoverKind::a2f);
  EXPECT_NEAR(crossovers[0].x, 1.0, 1e-12);
}

TEST(FindCrossovers, IdenticalCurvesHaveNoCrossing) {
  const std::vector<double> x{0, 1, 2};
  const std::vector<double> same{10, 20, 30};
  EXPECT_TRUE(find_crossovers(x, same, same).empty());
}

TEST(FindCrossovers, LengthMismatchThrows) {
  const std::vector<double> x{0, 1};
  const std::vector<double> a{1, 2};
  const std::vector<double> f{1};
  EXPECT_THROW(find_crossovers(x, a, f), std::invalid_argument);
}

TEST(FirstCrossover, FiltersByKind) {
  const std::vector<Crossover> crossovers{{1.0, CrossoverKind::f2a},
                                          {2.0, CrossoverKind::a2f},
                                          {3.0, CrossoverKind::a2f}};
  EXPECT_EQ(first_crossover(crossovers, CrossoverKind::a2f), 2.0);
  EXPECT_EQ(first_crossover(crossovers, CrossoverKind::f2a), 1.0);
  EXPECT_EQ(first_crossover({}, CrossoverKind::a2f), std::nullopt);
}

TEST(SweepEngine, AppCountSweepShape) {
  const SweepSeries series = dnn_engine().sweep_app_count(1, 8, 2.0 * years, 1e6);
  ASSERT_EQ(series.x.size(), 8u);
  EXPECT_EQ(series.parameter, "N_app");
  EXPECT_EQ(series.domain, Domain::dnn);
  EXPECT_DOUBLE_EQ(series.x.front(), 1.0);
  EXPECT_DOUBLE_EQ(series.x.back(), 8.0);
  // ASIC totals grow linearly with app count; FPGA sub-linearly.
  const auto asic = series.asic_totals_kg();
  EXPECT_NEAR(asic[7] / asic[0], 8.0, 1e-6);
}

TEST(SweepEngine, AsicTotalsIndependentOfPlatformReuse) {
  // In a lifetime sweep, both platforms' totals increase with T.
  const std::vector<double> lifetimes{0.5, 1.0, 2.0};
  const SweepSeries series = dnn_engine().sweep_lifetime(lifetimes, 5, 1e6);
  const auto asic = series.asic_totals_kg();
  const auto fpga = series.fpga_totals_kg();
  EXPECT_LT(asic[0], asic[2]);
  EXPECT_LT(fpga[0], fpga[2]);
}

TEST(SweepEngine, VolumeSweepMonotone) {
  const std::vector<double> volumes{1e3, 1e4, 1e5, 1e6};
  const SweepSeries series = dnn_engine().sweep_volume(volumes, 5, 2.0 * years);
  const auto asic = series.asic_totals_kg();
  const auto fpga = series.fpga_totals_kg();
  for (std::size_t i = 1; i < asic.size(); ++i) {
    EXPECT_GT(asic[i], asic[i - 1]);
    EXPECT_GT(fpga[i], fpga[i - 1]);
  }
}

TEST(SweepEngine, RatiosMatchTotalsElementwise) {
  const SweepSeries series = dnn_engine().sweep_app_count(1, 4, 2.0 * years, 1e6);
  const auto ratios = series.ratios();
  const auto asic = series.asic_totals_kg();
  const auto fpga = series.fpga_totals_kg();
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    EXPECT_DOUBLE_EQ(ratios[i], fpga[i] / asic[i]);
  }
}

TEST(SweepEngine, InvalidRangesThrow) {
  EXPECT_THROW(dnn_engine().sweep_app_count(0, 5, 2.0 * years, 1e6), std::invalid_argument);
  EXPECT_THROW(dnn_engine().sweep_app_count(5, 4, 2.0 * years, 1e6), std::invalid_argument);
}

TEST(Spacing, LinspaceEndpointsAndCount) {
  const std::vector<double> values = linspace(0.2, 2.5, 24);
  ASSERT_EQ(values.size(), 24u);
  EXPECT_DOUBLE_EQ(values.front(), 0.2);
  EXPECT_DOUBLE_EQ(values.back(), 2.5);
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_GT(values[i], values[i - 1]);
  }
}

TEST(Spacing, LogspaceEndpointsAndGrowth) {
  const std::vector<double> values = logspace(1e3, 1e6, 4);
  ASSERT_EQ(values.size(), 4u);
  EXPECT_DOUBLE_EQ(values.front(), 1e3);
  EXPECT_DOUBLE_EQ(values.back(), 1e6);
  EXPECT_NEAR(values[1], 1e4, 1.0);
  EXPECT_NEAR(values[2], 1e5, 10.0);
}

TEST(Spacing, InvalidInputsThrow) {
  EXPECT_THROW(linspace(0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(logspace(0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(logspace(-1.0, 1.0, 4), std::invalid_argument);
}

TEST(ToString, CrossoverKinds) {
  EXPECT_EQ(to_string(CrossoverKind::a2f), "A2F");
  EXPECT_EQ(to_string(CrossoverKind::f2a), "F2A");
}

// Property: every domain's N_app sweep has the FPGA series growing strictly
// slower than the ASIC series (the reconfigurability advantage).
class SweepSlopeProperty : public ::testing::TestWithParam<Domain> {};

TEST_P(SweepSlopeProperty, FpgaMarginalCostBelowAsic) {
  const SweepEngine engine(core::LifecycleModel(core::paper_suite()),
                           device::domain_testcase(GetParam()));
  const SweepSeries series = engine.sweep_app_count(1, 8, 2.0 * years, 1e6);
  const auto asic = series.asic_totals_kg();
  const auto fpga = series.fpga_totals_kg();
  for (std::size_t i = 1; i < asic.size(); ++i) {
    const double asic_marginal = asic[i] - asic[i - 1];
    const double fpga_marginal = fpga[i] - fpga[i - 1];
    EXPECT_LT(fpga_marginal, asic_marginal) << "at N_app = " << series.x[i];
  }
}

INSTANTIATE_TEST_SUITE_P(AllDomains, SweepSlopeProperty,
                         ::testing::Values(Domain::dnn, Domain::imgproc, Domain::crypto));

}  // namespace
}  // namespace greenfpga::scenario
