/// Tests for the `greenfpga` CLI command layer (stream-captured, no
/// process boundary).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cli/commands.hpp"
#include "core/config_io.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "io/json.hpp"
#include "scenario/spec.hpp"

namespace greenfpga::cli {
namespace {

struct CliRun {
  int exit_code = 0;
  std::string out;
  std::string err;
};

CliRun run_cli(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = dispatch(args, out, err);
  return {code, out.str(), err.str()};
}

std::string write_scenario_file() {
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::crypto);
  io::Json scenario = io::Json::object();
  scenario["name"] = "cli test scenario";
  scenario["asic"] = core::to_json(testcase.asic);
  scenario["fpga"] = core::to_json(testcase.fpga);
  scenario["schedule"] = core::to_json(core::paper_schedule(device::Domain::crypto));
  const std::string path = ::testing::TempDir() + "/greenfpga_cli_scenario.json";
  io::write_json_file(path, scenario);
  return path;
}

TEST(Cli, NoArgumentsPrintsUsageToErr) {
  const CliRun result = run_cli({});
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("usage:"), std::string::npos);
  EXPECT_TRUE(result.out.empty());
}

TEST(Cli, HelpPrintsUsageToOutAndSucceeds) {
  for (const char* flag : {"--help", "-h", "help"}) {
    const CliRun result = run_cli({flag});
    EXPECT_EQ(result.exit_code, 0) << flag;
    EXPECT_NE(result.out.find("usage:"), std::string::npos) << flag;
  }
}

TEST(Cli, UnknownCommandFails) {
  const CliRun result = run_cli({"frobnicate"});
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(Cli, CompareEvaluatesScenarioFile) {
  const CliRun result = run_cli({"compare", write_scenario_file()});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("cli test scenario"), std::string::npos);
  EXPECT_NE(result.out.find("greener platform: FPGA"), std::string::npos);
}

TEST(Cli, CompareWritesJsonReport) {
  const std::string report_path = ::testing::TempDir() + "/greenfpga_cli_report.json";
  const CliRun result = run_cli({"compare", write_scenario_file(), "--json", report_path});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  const io::Json report = io::parse_json_file(report_path);
  EXPECT_EQ(report.at("greener").as_string(), "FPGA");
  EXPECT_LT(report.at("ratio").as_number(), 1.0);
  EXPECT_TRUE(report.contains("asic"));
  EXPECT_TRUE(report.contains("fpga"));
}

TEST(Cli, CompareMissingFileIsRuntimeError) {
  const CliRun result = run_cli({"compare", "/nonexistent/scenario.json"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("error:"), std::string::npos);
}

TEST(Cli, CompareUsageErrors) {
  EXPECT_EQ(run_cli({"compare"}).exit_code, 2);
  EXPECT_EQ(run_cli({"compare", "file.json", "--bogus"}).exit_code, 2);
}

TEST(Cli, SweepPrintsCrossovers) {
  const CliRun result = run_cli({"sweep", "dnn", "apps"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("N_app"), std::string::npos);
  EXPECT_NE(result.out.find("crossovers: A2F"), std::string::npos);
}

TEST(Cli, SweepValidatesArguments) {
  EXPECT_EQ(run_cli({"sweep", "dnn"}).exit_code, 2);
  EXPECT_EQ(run_cli({"sweep", "gpu", "apps"}).exit_code, 2);
  EXPECT_EQ(run_cli({"sweep", "dnn", "bogus"}).exit_code, 2);
}

TEST(Cli, SweepAllDomainsAllVariables) {
  for (const char* domain : {"dnn", "imgproc", "crypto"}) {
    for (const char* variable : {"apps", "lifetime", "volume"}) {
      const CliRun result = run_cli({"sweep", domain, variable});
      EXPECT_EQ(result.exit_code, 0) << domain << " " << variable;
      EXPECT_NE(result.out.find("crossovers:"), std::string::npos);
    }
  }
}

TEST(Cli, IndustryListsAllFourDevices) {
  const CliRun result = run_cli({"industry"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("IndustryFPGA1"), std::string::npos);
  EXPECT_NE(result.out.find("IndustryFPGA2"), std::string::npos);
  EXPECT_NE(result.out.find("IndustryASIC1"), std::string::npos);
  EXPECT_NE(result.out.find("IndustryASIC2"), std::string::npos);
}

TEST(Cli, NodesRanksFabricationNodes) {
  const CliRun result = run_cli({"nodes", "dnn"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("node ranking"), std::string::npos);
  EXPECT_NE(result.out.find("3 nm"), std::string::npos);
  EXPECT_EQ(run_cli({"nodes"}).exit_code, 2);
  EXPECT_EQ(run_cli({"nodes", "gpu"}).exit_code, 2);
}

TEST(Cli, DumpConfigIsValidScenarioJson) {
  const CliRun result = run_cli({"dump-config"});
  EXPECT_EQ(result.exit_code, 0);
  const io::Json parsed = io::parse_json(result.out);
  // The dumped config must load back as a scenario.
  const core::ScenarioConfig scenario = core::scenario_from_json(parsed);
  EXPECT_EQ(scenario.schedule.size(), 5u);
  EXPECT_TRUE(scenario.fpga.is_fpga());
}

std::string write_spec_file(const std::string& filename, greenfpga::scenario::ScenarioSpec spec) {
  const std::string path = ::testing::TempDir() + "/" + filename;
  io::write_json_file(path, scenario::spec_to_json(spec));
  return path;
}

TEST(Cli, RunEvaluatesCompareSpec) {
  auto spec = scenario::ScenarioSpec::make(scenario::ScenarioKind::compare,
                                           device::Domain::crypto);
  spec.name = "cli run compare";
  spec.platforms = {scenario::PlatformRef{.name = "asic"},
                    scenario::PlatformRef{.name = "fpga"},
                    scenario::PlatformRef{.name = "gpu"}};
  const CliRun result =
      run_cli({"run", write_spec_file("greenfpga_cli_compare_spec.json", spec)});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("cli run compare"), std::string::npos);
  EXPECT_NE(result.out.find("gpu:asic ratio"), std::string::npos);
}

TEST(Cli, RunEvaluatesSweepSpecAndWritesJson) {
  auto spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::sweep, device::Domain::dnn);
  spec.name = "cli run sweep";
  spec.axes = {scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 6, 6)};
  const std::string report_path = ::testing::TempDir() + "/greenfpga_cli_run_report.json";
  const CliRun result =
      run_cli({"run", write_spec_file("greenfpga_cli_sweep_spec.json", spec), "--json",
               report_path});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("crossovers:"), std::string::npos);
  const io::Json report = io::parse_json_file(report_path);
  EXPECT_EQ(report.at("points").size(), 6u);
  EXPECT_EQ(report.at("spec").at("name").as_string(), "cli run sweep");
}

TEST(Cli, RunUsageAndRuntimeErrors) {
  EXPECT_EQ(run_cli({"run"}).exit_code, 2);
  EXPECT_EQ(run_cli({"run", "spec.json", "--bogus"}).exit_code, 2);
  EXPECT_EQ(run_cli({"run", "/nonexistent/spec.json"}).exit_code, 1);
}

TEST(Cli, ThreadsFlagIsAcceptedAnywhereAndValidated) {
  const CliRun result = run_cli({"--threads", "2", "sweep", "dnn", "apps"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("crossovers:"), std::string::npos);
  EXPECT_EQ(run_cli({"sweep", "--threads", "2", "dnn", "apps"}).exit_code, 0);
  EXPECT_EQ(run_cli({"--threads"}).exit_code, 2);
  EXPECT_EQ(run_cli({"--threads", "0", "figures"}).exit_code, 2);
  EXPECT_EQ(run_cli({"--threads", "lots", "figures"}).exit_code, 2);
  EXPECT_EQ(run_cli({"--threads", "4abc", "figures"}).exit_code, 2);
}

TEST(Cli, ThreadCountDoesNotChangeSweepOutput) {
  const CliRun one = run_cli({"--threads", "1", "sweep", "dnn", "volume"});
  const CliRun four = run_cli({"--threads", "4", "sweep", "dnn", "volume"});
  EXPECT_EQ(one.exit_code, 0);
  EXPECT_EQ(one.out, four.out);
}

TEST(Cli, CommandsRejectUnexpectedArguments) {
  EXPECT_EQ(run_cli({"industry", "extra"}).exit_code, 2);
  EXPECT_EQ(run_cli({"figures", "extra"}).exit_code, 2);
  EXPECT_EQ(run_cli({"dump-config", "extra"}).exit_code, 2);
}

scenario::ScenarioSpec small_mc_spec() {
  auto spec = scenario::ScenarioSpec::make(scenario::ScenarioKind::montecarlo,
                                           device::Domain::dnn);
  spec.name = "cli run montecarlo";
  spec.montecarlo.samples = 24;
  spec.montecarlo.seed = 5;
  return spec;
}

TEST(Cli, McRunsAndWritesCsvAndJson) {
  const std::string csv_path = ::testing::TempDir() + "/greenfpga_cli_mc.csv";
  const std::string json_path = ::testing::TempDir() + "/greenfpga_cli_mc.json";
  const CliRun result = run_cli({"mc", "dnn", "--samples", "16", "--seed", "3", "--csv",
                                 csv_path, "--json", json_path});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("Monte-Carlo: 16 samples, seed 3"), std::string::npos);
  EXPECT_NE(result.out.find("beats"), std::string::npos);

  std::ifstream csv(csv_path);
  ASSERT_TRUE(csv.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(csv, line)) {
    ++lines;
  }
  EXPECT_EQ(lines, 17u);  // header + 16 samples

  const io::Json report = io::parse_json_file(json_path);
  EXPECT_EQ(report.at("uncertainty").at("samples").as_int(), 16);
  EXPECT_EQ(report.at("uncertainty").at("ratio").size(), 1u);
}

TEST(Cli, McValidatesArguments) {
  EXPECT_EQ(run_cli({"mc"}).exit_code, 2);
  EXPECT_EQ(run_cli({"mc", "quantum"}).exit_code, 2);
  EXPECT_EQ(run_cli({"mc", "dnn", "--bogus"}).exit_code, 2);
  // --samples/--seed share the range-guarded integer read with the JSON
  // path: junk, fractions and out-of-range values are usage errors.
  EXPECT_EQ(run_cli({"mc", "dnn", "--samples", "lots"}).exit_code, 2);
  EXPECT_EQ(run_cli({"mc", "dnn", "--samples", "1.5"}).exit_code, 2);
  EXPECT_EQ(run_cli({"mc", "dnn", "--samples", "0"}).exit_code, 2);
  EXPECT_EQ(run_cli({"mc", "dnn", "--seed", "-1"}).exit_code, 2);
}

TEST(Cli, RunMontecarloSpecIsThreadDeterministic) {
  const std::string path = write_spec_file("greenfpga_cli_mc_spec.json", small_mc_spec());
  const CliRun one = run_cli({"--threads", "1", "run", path});
  const CliRun four = run_cli({"--threads", "4", "run", path});
  EXPECT_EQ(one.exit_code, 0) << one.err;
  EXPECT_EQ(one.out, four.out);
  EXPECT_NE(one.out.find("P(fpga:asic ratio <= x)"), std::string::npos);
}

TEST(Cli, RunCsvExportIsMontecarloOnly) {
  auto sweep = scenario::ScenarioSpec::make(scenario::ScenarioKind::sweep,
                                            device::Domain::dnn);
  sweep.axes = {scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 4, 4)};
  const std::string csv_path = ::testing::TempDir() + "/greenfpga_cli_no.csv";
  EXPECT_EQ(run_cli({"run", write_spec_file("greenfpga_cli_sweep_csv.json", sweep),
                     "--csv", csv_path})
                .exit_code,
            2);
  const CliRun ok = run_cli({"run", write_spec_file("greenfpga_cli_mc_csv.json",
                                                    small_mc_spec()),
                             "--csv", csv_path});
  EXPECT_EQ(ok.exit_code, 0) << ok.err;
  EXPECT_NE(ok.out.find("wrote " + csv_path), std::string::npos);
}

TEST(Cli, RunParseErrorsNameThePathAndKey) {
  // A type-mismatched field must fail naming the spec file *and* the
  // offending key, not just "expected number".
  const std::string path = ::testing::TempDir() + "/greenfpga_cli_bad_spec.json";
  io::Json json = scenario::spec_to_json(small_mc_spec());
  json.as_object().at("schedule").as_object()["volume"] = "a few";
  io::write_json_file(path, json);
  const CliRun result = run_cli({"run", path});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find(path), std::string::npos) << result.err;
  EXPECT_NE(result.err.find("schedule.volume"), std::string::npos) << result.err;
}

TEST(Cli, FiguresPrintsPaperVsMeasured) {
  const CliRun result = run_cli({"figures"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("paper-vs-measured"), std::string::npos);
  EXPECT_NE(result.out.find("Fig. 4 A2F"), std::string::npos);
  EXPECT_NE(result.out.find("Fig. 5 F2A"), std::string::npos);
  EXPECT_NE(result.out.find("Fig. 6 F2A"), std::string::npos);
  EXPECT_NE(result.out.find("ImgProc"), std::string::npos);
}

}  // namespace
}  // namespace greenfpga::cli
