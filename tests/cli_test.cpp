/// Tests for the `greenfpga` CLI command layer (stream-captured, no
/// process boundary).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "cli/commands.hpp"
#include "core/config_io.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "io/json.hpp"
#include "scenario/spec.hpp"

namespace greenfpga::cli {
namespace {

struct CliRun {
  int exit_code = 0;
  std::string out;
  std::string err;
};

CliRun run_cli(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = dispatch(args, out, err);
  return {code, out.str(), err.str()};
}

std::string write_scenario_file() {
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::crypto);
  io::Json scenario = io::Json::object();
  scenario["name"] = "cli test scenario";
  scenario["asic"] = core::to_json(testcase.asic);
  scenario["fpga"] = core::to_json(testcase.fpga);
  scenario["schedule"] = core::to_json(core::paper_schedule(device::Domain::crypto));
  const std::string path = ::testing::TempDir() + "/greenfpga_cli_scenario.json";
  io::write_json_file(path, scenario);
  return path;
}

TEST(Cli, NoArgumentsPrintsUsageToErr) {
  const CliRun result = run_cli({});
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("usage:"), std::string::npos);
  EXPECT_TRUE(result.out.empty());
}

TEST(Cli, HelpPrintsUsageToOutAndSucceeds) {
  for (const char* flag : {"--help", "-h", "help"}) {
    const CliRun result = run_cli({flag});
    EXPECT_EQ(result.exit_code, 0) << flag;
    EXPECT_NE(result.out.find("usage:"), std::string::npos) << flag;
  }
}

TEST(Cli, UnknownCommandFails) {
  const CliRun result = run_cli({"frobnicate"});
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(Cli, CompareEvaluatesScenarioFile) {
  const CliRun result = run_cli({"compare", write_scenario_file()});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("cli test scenario"), std::string::npos);
  EXPECT_NE(result.out.find("greener platform: FPGA"), std::string::npos);
}

TEST(Cli, CompareWritesJsonReport) {
  const std::string report_path = ::testing::TempDir() + "/greenfpga_cli_report.json";
  const CliRun result = run_cli({"compare", write_scenario_file(), "--json", report_path});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  const io::Json report = io::parse_json_file(report_path);
  EXPECT_EQ(report.at("greener").as_string(), "FPGA");
  EXPECT_LT(report.at("ratio").as_number(), 1.0);
  EXPECT_TRUE(report.contains("asic"));
  EXPECT_TRUE(report.contains("fpga"));
}

TEST(Cli, CompareMissingFileIsRuntimeError) {
  const CliRun result = run_cli({"compare", "/nonexistent/scenario.json"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("error:"), std::string::npos);
}

TEST(Cli, CompareUsageErrors) {
  EXPECT_EQ(run_cli({"compare"}).exit_code, 2);
  EXPECT_EQ(run_cli({"compare", "file.json", "--bogus"}).exit_code, 2);
}

TEST(Cli, SweepPrintsCrossovers) {
  const CliRun result = run_cli({"sweep", "dnn", "apps"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("N_app"), std::string::npos);
  EXPECT_NE(result.out.find("crossovers: A2F"), std::string::npos);
}

TEST(Cli, SweepValidatesArguments) {
  EXPECT_EQ(run_cli({"sweep", "dnn"}).exit_code, 2);
  EXPECT_EQ(run_cli({"sweep", "gpu", "apps"}).exit_code, 2);
  EXPECT_EQ(run_cli({"sweep", "dnn", "bogus"}).exit_code, 2);
}

TEST(Cli, SweepAllDomainsAllVariables) {
  for (const char* domain : {"dnn", "imgproc", "crypto"}) {
    for (const char* variable : {"apps", "lifetime", "volume"}) {
      const CliRun result = run_cli({"sweep", domain, variable});
      EXPECT_EQ(result.exit_code, 0) << domain << " " << variable;
      EXPECT_NE(result.out.find("crossovers:"), std::string::npos);
    }
  }
}

TEST(Cli, IndustryListsAllFourDevices) {
  const CliRun result = run_cli({"industry"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("IndustryFPGA1"), std::string::npos);
  EXPECT_NE(result.out.find("IndustryFPGA2"), std::string::npos);
  EXPECT_NE(result.out.find("IndustryASIC1"), std::string::npos);
  EXPECT_NE(result.out.find("IndustryASIC2"), std::string::npos);
}

TEST(Cli, NodesRanksFabricationNodes) {
  const CliRun result = run_cli({"nodes", "dnn"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("node ranking"), std::string::npos);
  EXPECT_NE(result.out.find("3 nm"), std::string::npos);
  EXPECT_EQ(run_cli({"nodes"}).exit_code, 2);
  EXPECT_EQ(run_cli({"nodes", "gpu"}).exit_code, 2);
}

TEST(Cli, DumpConfigIsValidScenarioJson) {
  const CliRun result = run_cli({"dump-config"});
  EXPECT_EQ(result.exit_code, 0);
  const io::Json parsed = io::parse_json(result.out);
  // The dumped config must load back as a scenario.
  const core::ScenarioConfig scenario = core::scenario_from_json(parsed);
  EXPECT_EQ(scenario.schedule.size(), 5u);
  EXPECT_TRUE(scenario.fpga.is_fpga());
}

std::string write_spec_file(const std::string& filename, greenfpga::scenario::ScenarioSpec spec) {
  const std::string path = ::testing::TempDir() + "/" + filename;
  io::write_json_file(path, scenario::spec_to_json(spec));
  return path;
}

TEST(Cli, RunEvaluatesCompareSpec) {
  auto spec = scenario::ScenarioSpec::make(scenario::ScenarioKind::compare,
                                           device::Domain::crypto);
  spec.name = "cli run compare";
  spec.platforms = {scenario::PlatformRef{.name = "asic"},
                    scenario::PlatformRef{.name = "fpga"},
                    scenario::PlatformRef{.name = "gpu"}};
  const CliRun result =
      run_cli({"run", write_spec_file("greenfpga_cli_compare_spec.json", spec)});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("cli run compare"), std::string::npos);
  EXPECT_NE(result.out.find("gpu:asic ratio"), std::string::npos);
}

TEST(Cli, RunEvaluatesSweepSpecAndWritesJson) {
  auto spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::sweep, device::Domain::dnn);
  spec.name = "cli run sweep";
  spec.axes = {scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 6, 6)};
  const std::string report_path = ::testing::TempDir() + "/greenfpga_cli_run_report.json";
  const CliRun result =
      run_cli({"run", write_spec_file("greenfpga_cli_sweep_spec.json", spec), "--json",
               report_path});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("crossovers:"), std::string::npos);
  const io::Json report = io::parse_json_file(report_path);
  EXPECT_EQ(report.at("points").size(), 6u);
  EXPECT_EQ(report.at("spec").at("name").as_string(), "cli run sweep");
}

TEST(Cli, RunUsageAndRuntimeErrors) {
  EXPECT_EQ(run_cli({"run"}).exit_code, 2);
  EXPECT_EQ(run_cli({"run", "spec.json", "--bogus"}).exit_code, 2);
  EXPECT_EQ(run_cli({"run", "/nonexistent/spec.json"}).exit_code, 1);
}

TEST(Cli, RunSurfacesTheRegistryResolveErrorVerbatim) {
  // An unknown platform name must fail with the PlatformRegistry message,
  // including the full list of registered names, on stderr.
  auto spec = scenario::ScenarioSpec::make(scenario::ScenarioKind::compare,
                                           device::Domain::dnn);
  spec.platforms = {scenario::PlatformRef{.name = "asic"},
                    scenario::PlatformRef{.name = "tpu"}};
  const CliRun result =
      run_cli({"run", write_spec_file("greenfpga_cli_unknown_platform.json", spec)});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("PlatformRegistry: unknown platform 'tpu'"),
            std::string::npos)
      << result.err;
  EXPECT_NE(result.err.find("(registered: asic, chiplet_fpga, cpu, fpga, gpu)"),
            std::string::npos)
      << result.err;
}

TEST(Cli, FrontierSearchesFourPlatformsAndReportsWinRegions) {
  const std::string report_path = ::testing::TempDir() + "/greenfpga_cli_frontier.json";
  const CliRun result = run_cli({"frontier", "dnn", "--json", report_path});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  // The default search is four-way over apps x volume.
  EXPECT_NE(result.out.find("asic vs fpga vs gpu vs cpu"), std::string::npos);
  EXPECT_NE(result.out.find("win fraction"), std::string::npos);
  const io::Json report = io::parse_json_file(report_path);
  EXPECT_EQ(report.at("platforms").size(), 4u);
  EXPECT_EQ(report.at("frontier").at("cells").size(), 100u);  // 10 x 10 grid
  EXPECT_FALSE(report.at("frontier").at("boundaries").as_array().empty());
}

TEST(Cli, FrontierFlagsAreValidated) {
  EXPECT_EQ(run_cli({"frontier"}).exit_code, 2);
  EXPECT_EQ(run_cli({"frontier", "quantum"}).exit_code, 2);
  EXPECT_EQ(run_cli({"frontier", "dnn", "--platforms", "asic"}).exit_code, 2);
  EXPECT_EQ(run_cli({"frontier", "dnn", "--platforms", "asic,tpu"}).exit_code, 1);
  EXPECT_EQ(run_cli({"frontier", "dnn", "--axes", "bogus"}).exit_code, 2);
  EXPECT_EQ(run_cli({"frontier", "dnn", "--samples", "-1"}).exit_code, 2);
}

TEST(Cli, ThreadsFlagIsAcceptedAnywhereAndValidated) {
  const CliRun result = run_cli({"--threads", "2", "sweep", "dnn", "apps"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("crossovers:"), std::string::npos);
  EXPECT_EQ(run_cli({"sweep", "--threads", "2", "dnn", "apps"}).exit_code, 0);
  EXPECT_EQ(run_cli({"--threads"}).exit_code, 2);
  EXPECT_EQ(run_cli({"--threads", "0", "figures"}).exit_code, 2);
  EXPECT_EQ(run_cli({"--threads", "lots", "figures"}).exit_code, 2);
  EXPECT_EQ(run_cli({"--threads", "4abc", "figures"}).exit_code, 2);
}

TEST(Cli, ThreadCountDoesNotChangeSweepOutput) {
  const CliRun one = run_cli({"--threads", "1", "sweep", "dnn", "volume"});
  const CliRun four = run_cli({"--threads", "4", "sweep", "dnn", "volume"});
  EXPECT_EQ(one.exit_code, 0);
  EXPECT_EQ(one.out, four.out);
}

TEST(Cli, CommandsRejectUnexpectedArguments) {
  EXPECT_EQ(run_cli({"industry", "extra"}).exit_code, 2);
  EXPECT_EQ(run_cli({"figures", "extra"}).exit_code, 2);
  EXPECT_EQ(run_cli({"dump-config", "extra"}).exit_code, 2);
}

scenario::ScenarioSpec small_mc_spec() {
  auto spec = scenario::ScenarioSpec::make(scenario::ScenarioKind::montecarlo,
                                           device::Domain::dnn);
  spec.name = "cli run montecarlo";
  spec.montecarlo.samples = 24;
  spec.montecarlo.seed = 5;
  return spec;
}

TEST(Cli, McRunsAndWritesCsvAndJson) {
  const std::string csv_path = ::testing::TempDir() + "/greenfpga_cli_mc.csv";
  const std::string json_path = ::testing::TempDir() + "/greenfpga_cli_mc.json";
  const CliRun result = run_cli({"mc", "dnn", "--samples", "16", "--seed", "3", "--csv",
                                 csv_path, "--json", json_path});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("Monte-Carlo: 16 samples, seed 3"), std::string::npos);
  EXPECT_NE(result.out.find("beats"), std::string::npos);

  std::ifstream csv(csv_path);
  ASSERT_TRUE(csv.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(csv, line)) {
    ++lines;
  }
  EXPECT_EQ(lines, 17u);  // header + 16 samples

  const io::Json report = io::parse_json_file(json_path);
  EXPECT_EQ(report.at("uncertainty").at("samples").as_int(), 16);
  EXPECT_EQ(report.at("uncertainty").at("ratio").size(), 1u);
}

TEST(Cli, McValidatesArguments) {
  EXPECT_EQ(run_cli({"mc"}).exit_code, 2);
  EXPECT_EQ(run_cli({"mc", "quantum"}).exit_code, 2);
  EXPECT_EQ(run_cli({"mc", "dnn", "--bogus"}).exit_code, 2);
  // --samples/--seed share the range-guarded integer read with the JSON
  // path: junk, fractions and out-of-range values are usage errors.
  EXPECT_EQ(run_cli({"mc", "dnn", "--samples", "lots"}).exit_code, 2);
  EXPECT_EQ(run_cli({"mc", "dnn", "--samples", "1.5"}).exit_code, 2);
  EXPECT_EQ(run_cli({"mc", "dnn", "--samples", "0"}).exit_code, 2);
  EXPECT_EQ(run_cli({"mc", "dnn", "--seed", "-1"}).exit_code, 2);
}

TEST(Cli, RunMontecarloSpecIsThreadDeterministic) {
  const std::string path = write_spec_file("greenfpga_cli_mc_spec.json", small_mc_spec());
  const CliRun one = run_cli({"--threads", "1", "run", path});
  const CliRun four = run_cli({"--threads", "4", "run", path});
  EXPECT_EQ(one.exit_code, 0) << one.err;
  EXPECT_EQ(one.out, four.out);
  EXPECT_NE(one.out.find("P(fpga:asic ratio <= x)"), std::string::npos);
}

TEST(Cli, RunCsvExportIsMontecarloOnly) {
  auto sweep = scenario::ScenarioSpec::make(scenario::ScenarioKind::sweep,
                                            device::Domain::dnn);
  sweep.axes = {scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 4, 4)};
  const std::string csv_path = ::testing::TempDir() + "/greenfpga_cli_no.csv";
  EXPECT_EQ(run_cli({"run", write_spec_file("greenfpga_cli_sweep_csv.json", sweep),
                     "--csv", csv_path})
                .exit_code,
            2);
  const CliRun ok = run_cli({"run", write_spec_file("greenfpga_cli_mc_csv.json",
                                                    small_mc_spec()),
                             "--csv", csv_path});
  EXPECT_EQ(ok.exit_code, 0) << ok.err;
  EXPECT_NE(ok.out.find("wrote " + csv_path), std::string::npos);
}

TEST(Cli, RunParseErrorsNameThePathAndKey) {
  // A type-mismatched field must fail naming the spec file *and* the
  // offending key, not just "expected number".
  const std::string path = ::testing::TempDir() + "/greenfpga_cli_bad_spec.json";
  io::Json json = scenario::spec_to_json(small_mc_spec());
  json.as_object().at("schedule").as_object()["volume"] = "a few";
  io::write_json_file(path, json);
  const CliRun result = run_cli({"run", path});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find(path), std::string::npos) << result.err;
  EXPECT_NE(result.err.find("schedule.volume"), std::string::npos) << result.err;
}

TEST(Cli, FormatFlagIsValidatedNamingTheValue) {
  const CliRun result = run_cli({"--format", "xml", "sweep", "dnn", "apps"});
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("--format: unknown format 'xml'"), std::string::npos)
      << result.err;
  EXPECT_NE(result.err.find("text, json, csv, md"), std::string::npos);
  EXPECT_EQ(run_cli({"sweep", "dnn", "apps", "--format"}).exit_code, 2);
}

TEST(Cli, OutputFlagFailuresNameThePath) {
  // A parent that is a regular file is unwritable for any user (tests may
  // run as root, where permission-based probes pass).
  const std::string blocker = ::testing::TempDir() + "/greenfpga_cli_blocker";
  std::ofstream(blocker) << "not a directory";
  const std::string path = blocker + "/out.json";
  const CliRun result = run_cli({"--output", path, "sweep", "dnn", "apps"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("--output: cannot write '" + path + "'"),
            std::string::npos)
      << result.err;
  EXPECT_EQ(run_cli({"sweep", "dnn", "apps", "--output"}).exit_code, 2);
}

TEST(Cli, OutputFlagWritesRenderedFile) {
  const std::string path = ::testing::TempDir() + "/greenfpga_cli_fmt/out.json";
  const CliRun result =
      run_cli({"--format", "json", "--output", path, "sweep", "dnn", "apps"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("wrote " + path), std::string::npos);
  const io::Json report = io::parse_json_file(path);
  EXPECT_EQ(report.at("points").size(), 12u);
}

TEST(Cli, FormatJsonIsCanonicalAndThreadInvariant) {
  const std::vector<std::string> args{"--format", "json", "run",
                                      write_spec_file("greenfpga_cli_fmt_mc.json",
                                                      small_mc_spec())};
  const CliRun one = run_cli([&] {
    std::vector<std::string> a{"--threads", "1"};
    a.insert(a.end(), args.begin(), args.end());
    return a;
  }());
  const CliRun eight = run_cli([&] {
    std::vector<std::string> a{"--threads", "8"};
    a.insert(a.end(), args.begin(), args.end());
    return a;
  }());
  EXPECT_EQ(one.exit_code, 0) << one.err;
  EXPECT_EQ(one.out, eight.out);
  // The bytes round-trip through the canonical reader.
  const io::Json parsed = io::parse_json(one.out);
  EXPECT_EQ(parsed.at("spec").at("name").as_string(), "cli run montecarlo");
}

TEST(Cli, FormatCsvAndMarkdownRenderFrames) {
  auto spec = scenario::ScenarioSpec::make(scenario::ScenarioKind::sweep,
                                           device::Domain::dnn);
  spec.name = "cli format sweep";
  spec.axes = {scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 3, 3)};
  const std::string path = write_spec_file("greenfpga_cli_fmt_sweep.json", spec);
  const CliRun csv = run_cli({"--format", "csv", "run", path});
  EXPECT_EQ(csv.exit_code, 0) << csv.err;
  EXPECT_NE(csv.out.find("N_app,asic [t CO2e],fpga [t CO2e],fpga:asic"),
            std::string::npos)
      << csv.out;
  const CliRun md = run_cli({"--format", "md", "run", path});
  EXPECT_EQ(md.exit_code, 0) << md.err;
  EXPECT_NE(md.out.find("## cli format sweep (sweep, DNN)"), std::string::npos);
  EXPECT_NE(md.out.find("| N_app |"), std::string::npos);
}

TEST(Cli, FormatWorksOnEverySubcommand) {
  for (const char* format : {"text", "json", "csv", "md"}) {
    EXPECT_EQ(run_cli({"--format", format, "sweep", "dnn", "apps"}).exit_code, 0)
        << format;
    EXPECT_EQ(run_cli({"--format", format, "nodes", "crypto"}).exit_code, 0) << format;
    EXPECT_EQ(run_cli({"--format", format, "industry"}).exit_code, 0) << format;
  }
  // dump-config is already JSON; the frame formats are a usage error.
  EXPECT_EQ(run_cli({"--format", "json", "dump-config"}).exit_code, 0);
  EXPECT_EQ(run_cli({"--format", "csv", "dump-config"}).exit_code, 2);
  EXPECT_EQ(run_cli({"--format", "md", "dump-config"}).exit_code, 2);
}

std::string write_batch_inputs() {
  const std::string dir = ::testing::TempDir() + "/greenfpga_cli_batch_specs";
  std::filesystem::create_directories(dir);
  auto compare = scenario::ScenarioSpec::make(scenario::ScenarioKind::compare,
                                              device::Domain::crypto);
  compare.name = "batch compare";
  io::write_json_file(dir + "/a_compare.json", scenario::spec_to_json(compare));
  auto sweep =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::sweep, device::Domain::dnn);
  sweep.name = "batch sweep";
  sweep.axes = {scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 3, 3)};
  io::write_json_file(dir + "/b_sweep.json", scenario::spec_to_json(sweep));
  io::write_json_file(dir + "/c_mc.json", scenario::spec_to_json(small_mc_spec()));
  // A manifest sitting next to its specs must be skipped by the directory
  // scan (and usable directly as the batch argument).
  io::Json manifest = io::Json::object();
  manifest["name"] = "cli batch";
  io::Json list = io::Json::array();
  list.push_back("a_compare.json");
  list.push_back("b_sweep.json");
  list.push_back("c_mc.json");
  manifest["specs"] = std::move(list);
  io::write_json_file(dir + "/manifest.json", manifest);
  return dir;
}

TEST(Cli, BatchOverDirectoryWritesResultsAndIndex) {
  const std::string dir = write_batch_inputs();
  const std::string out_dir = ::testing::TempDir() + "/greenfpga_cli_batch_out";
  std::filesystem::remove_all(out_dir);
  const CliRun result = run_cli({"--output", out_dir, "batch", dir, "--validate"});
  EXPECT_EQ(result.exit_code, 0) << result.err;
  EXPECT_NE(result.out.find("wrote 3 result(s) + index.json to " + out_dir),
            std::string::npos)
      << result.out;
  for (const char* name : {"a_compare.json", "b_sweep.json", "c_mc.json"}) {
    const io::Json written = io::parse_json_file(out_dir + "/" + name);
    EXPECT_TRUE(written.contains("spec")) << name;
  }
  const io::Json index = io::parse_json_file(out_dir + "/index.json");
  EXPECT_EQ(index.at("name").as_string(), "batch");
  EXPECT_EQ(index.at("rows").size(), 3u);
}

TEST(Cli, BatchResultsMatchIndividualRunsAtAnyThreads) {
  const std::string dir = write_batch_inputs();
  const std::string out_dir = ::testing::TempDir() + "/greenfpga_cli_batch_threads";
  std::filesystem::remove_all(out_dir);
  const CliRun batch =
      run_cli({"--threads", "4", "--output", out_dir, "batch", dir + "/manifest.json"});
  EXPECT_EQ(batch.exit_code, 0) << batch.err;
  for (const char* name : {"a_compare", "b_sweep", "c_mc"}) {
    const std::string individual_path =
        ::testing::TempDir() + "/greenfpga_cli_batch_ind_" + name + ".json";
    const CliRun individual = run_cli({"--threads", "1", "run",
                                       dir + "/" + name + ".json", "--json",
                                       individual_path});
    ASSERT_EQ(individual.exit_code, 0) << individual.err;
    std::ifstream a(out_dir + "/" + std::string(name) + ".json");
    std::ifstream b(individual_path);
    const std::string batch_bytes((std::istreambuf_iterator<char>(a)),
                                  std::istreambuf_iterator<char>());
    const std::string individual_bytes((std::istreambuf_iterator<char>(b)),
                                       std::istreambuf_iterator<char>());
    EXPECT_EQ(batch_bytes, individual_bytes) << name;
  }
}

TEST(Cli, BatchValidatesArguments) {
  EXPECT_EQ(run_cli({"batch"}).exit_code, 2);
  EXPECT_EQ(run_cli({"batch", "dir", "--bogus"}).exit_code, 2);
  const CliRun missing = run_cli({"batch", "/nonexistent/manifest.json"});
  EXPECT_EQ(missing.exit_code, 1);
  // An empty directory is a usage error naming the argument.
  const std::string empty_dir = ::testing::TempDir() + "/greenfpga_cli_batch_empty";
  std::filesystem::create_directories(empty_dir);
  const CliRun empty = run_cli({"batch", empty_dir});
  EXPECT_EQ(empty.exit_code, 2);
  EXPECT_NE(empty.err.find("no scenario specs found in '" + empty_dir + "'"),
            std::string::npos)
      << empty.err;
}

TEST(Cli, FiguresPrintsPaperVsMeasured) {
  const CliRun result = run_cli({"figures"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("paper-vs-measured"), std::string::npos);
  EXPECT_NE(result.out.find("Fig. 4 A2F"), std::string::npos);
  EXPECT_NE(result.out.find("Fig. 5 F2A"), std::string::npos);
  EXPECT_NE(result.out.find("Fig. 6 F2A"), std::string::npos);
  EXPECT_NE(result.out.find("ImgProc"), std::string::npos);
}

std::string write_depth_bomb(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream file(path);
  file << std::string(100'000, '[');
  return path;
}

TEST(Cli, RunSurvivesJsonDepthBomb) {
  // 100k-deep '[': a parse error naming the file and position, never a
  // stack-overflow crash.
  const CliRun result = run_cli({"run", write_depth_bomb("greenfpga_bomb_run.json")});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("nesting depth exceeds 256"), std::string::npos)
      << result.err;
  EXPECT_NE(result.err.find("greenfpga_bomb_run.json"), std::string::npos)
      << result.err;
}

TEST(Cli, BatchSurvivesJsonDepthBomb) {
  // Both batch ingestion paths -- directory scan and manifest -- must
  // fail the same controlled way.
  const std::string dir = ::testing::TempDir() + "/greenfpga_bomb_batch";
  std::filesystem::create_directories(dir);
  {
    std::ofstream file(dir + "/bomb.json");
    file << std::string(100'000, '[');
  }
  const CliRun by_dir = run_cli({"batch", dir});
  EXPECT_EQ(by_dir.exit_code, 1);
  EXPECT_NE(by_dir.err.find("nesting depth exceeds 256"), std::string::npos)
      << by_dir.err;

  const std::string manifest = ::testing::TempDir() + "/greenfpga_bomb_manifest.json";
  {
    std::ofstream file(manifest);
    file << R"({"specs": ["greenfpga_bomb_batch/bomb.json"]})";
  }
  const CliRun by_manifest = run_cli({"batch", manifest});
  EXPECT_EQ(by_manifest.exit_code, 1);
  EXPECT_NE(by_manifest.err.find("nesting depth exceeds 256"), std::string::npos)
      << by_manifest.err;
}

TEST(Cli, RunRejectsSmuggledNonFiniteSpecValues) {
  // The non-finite string sentinels belong to *result* re-import only;
  // a spec carrying "nan" in number position must fail like any other
  // type error, not evaluate to a NaN-filled result.
  const std::string path = ::testing::TempDir() + "/greenfpga_nan_spec.json";
  {
    std::ofstream file(path);
    file << R"({"kind": "compare", "schedule": {"volume": "nan"}})";
  }
  const CliRun result = run_cli({"run", path});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("expected number"), std::string::npos) << result.err;
}

TEST(Cli, ServeValidatesItsFlags) {
  // Flag validation only -- never binds a socket (exit code 2 happens
  // before the server is constructed).
  for (const std::vector<std::string>& args :
       {std::vector<std::string>{"serve", "--port", "junk"},
        std::vector<std::string>{"serve", "--port", "70000"},
        std::vector<std::string>{"serve", "--cache-capacity", "0"},
        std::vector<std::string>{"serve", "--max-connections", "-1"},
        std::vector<std::string>{"serve", "--nope"}}) {
    const CliRun result = run_cli(args);
    EXPECT_EQ(result.exit_code, 2) << args[1];
    EXPECT_NE(result.err.find("serve:"), std::string::npos) << args[1];
  }
}

TEST(Cli, UsageDocumentsServe) {
  const CliRun result = run_cli({"--help"});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("greenfpga serve"), std::string::npos);
  EXPECT_NE(result.out.find("/v1/run"), std::string::npos);
}

}  // namespace
}  // namespace greenfpga::cli
