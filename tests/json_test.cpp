/// Tests for the from-scratch JSON parser and writer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <string>

#include "io/hash.hpp"
#include "io/json.hpp"

namespace greenfpga::io {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.25").as_number(), -3.25);
  EXPECT_DOUBLE_EQ(parse_json("1e6").as_number(), 1e6);
  EXPECT_DOUBLE_EQ(parse_json("2.5E-3").as_number(), 2.5e-3);
  EXPECT_EQ(parse_json("\"hello\"").as_string(), "hello");
}

TEST(JsonParse, WhitespaceTolerant) {
  const Json v = parse_json("  \t\n { \"a\" : [ 1 , 2 ] } \r\n ");
  EXPECT_EQ(v.at("a").size(), 2u);
}

TEST(JsonParse, NestedStructures) {
  const Json v = parse_json(R"({"a": {"b": [1, {"c": "d"}]}})");
  EXPECT_EQ(v.at("a").at("b").at(1).at("c").as_string(), "d");
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_EQ(parse_json("[]").size(), 0u);
  EXPECT_EQ(parse_json("{}").size(), 0u);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(parse_json(R"("a\\b")").as_string(), "a\\b");
  EXPECT_EQ(parse_json(R"("a\nb\tc")").as_string(), "a\nb\tc");
  EXPECT_EQ(parse_json(R"("A")").as_string(), "A");
  EXPECT_EQ(parse_json(R"("é")").as_string(), "\xC3\xA9");          // e-acute
  EXPECT_EQ(parse_json(R"("€")").as_string(), "\xE2\x82\xAC");      // euro sign
  EXPECT_EQ(parse_json(R"("😀")").as_string(), "\xF0\x9F\x98\x80");  // emoji
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), JsonError);
  EXPECT_THROW(parse_json("{"), JsonError);
  EXPECT_THROW(parse_json("[1,]"), JsonError);
  EXPECT_THROW(parse_json("{\"a\":}"), JsonError);
  EXPECT_THROW(parse_json("{'a': 1}"), JsonError);
  EXPECT_THROW(parse_json("[1] trailing"), JsonError);
  EXPECT_THROW(parse_json("01"), JsonError);
  EXPECT_THROW(parse_json("1."), JsonError);
  EXPECT_THROW(parse_json(".5"), JsonError);
  EXPECT_THROW(parse_json("+1"), JsonError);
  EXPECT_THROW(parse_json("nul"), JsonError);
  EXPECT_THROW(parse_json("\"unterminated"), JsonError);
  EXPECT_THROW(parse_json("\"bad\\escape\""), JsonError);
  EXPECT_THROW(parse_json("\"\\u12\""), JsonError);
  EXPECT_THROW(parse_json(R"("\ud800")"), JsonError);  // unpaired surrogate
}

TEST(JsonParse, RejectsDuplicateKeys) {
  EXPECT_THROW(parse_json(R"({"a": 1, "a": 2})"), JsonError);
}

TEST(JsonParse, ErrorsIncludePosition) {
  try {
    parse_json("{\n  \"a\": !\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& error) {
    EXPECT_NE(std::string(error.what()).find("2:"), std::string::npos)
        << "message should name line 2: " << error.what();
  }
}

TEST(JsonParse, CommentsOnlyInConfigMode) {
  const std::string text = "{\n// a comment\n\"a\": 1\n}";
  EXPECT_THROW(parse_json(text), JsonError);
  const Json v = parse_json(text, JsonParseOptions{.allow_comments = true});
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.0);
}

TEST(JsonParse, Utf8BomSkipped) {
  EXPECT_DOUBLE_EQ(parse_json("\xEF\xBB\xBF 1.5").as_number(), 1.5);
}

TEST(JsonAccess, TypeMismatchThrowsWithNames) {
  const Json v = parse_json(R"({"a": 1})");
  try {
    (void)v.at("a").as_string();
    FAIL() << "expected JsonError";
  } catch (const JsonError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("string"), std::string::npos);
    EXPECT_NE(message.find("number"), std::string::npos);
  }
}

TEST(JsonAccess, MissingKeyNamesKey) {
  const Json v = parse_json("{}");
  try {
    (void)v.at("missing");
    FAIL() << "expected JsonError";
  } catch (const JsonError& error) {
    EXPECT_NE(std::string(error.what()).find("missing"), std::string::npos);
  }
}

TEST(JsonAccess, IndexOutOfRange) {
  const Json v = parse_json("[1]");
  EXPECT_THROW((void)v.at(1), JsonError);
}

TEST(JsonAccess, DefaultsForOptionalFields) {
  const Json v = parse_json(R"({"present": 2.0})");
  EXPECT_DOUBLE_EQ(v.number_or("present", 1.0), 2.0);
  EXPECT_DOUBLE_EQ(v.number_or("absent", 1.0), 1.0);
  EXPECT_EQ(v.string_or("absent", "x"), "x");
  EXPECT_EQ(v.bool_or("absent", true), true);
}

TEST(JsonAccess, AsIntChecksIntegrality) {
  EXPECT_EQ(parse_json("5").as_int(), 5);
  EXPECT_THROW(parse_json("5.5").as_int(), JsonError);
}

TEST(JsonBuild, ObjectAndArrayBuilders) {
  Json obj = Json::object({{"name", "chip"}, {"area", 150.0}});
  obj["extra"] = Json::array({1, 2, 3});
  obj["extra"].push_back(4);
  EXPECT_EQ(obj.at("extra").size(), 4u);
  EXPECT_EQ(obj.at("name").as_string(), "chip");
}

TEST(JsonDump, CompactAndPretty) {
  const Json v = parse_json(R"({"b": [1, 2], "a": true})");
  EXPECT_EQ(v.dump(0), R"({"a":true,"b":[1,2]})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find("\n  \"a\": true"), std::string::npos);
}

TEST(JsonDump, DeterministicKeyOrder) {
  const Json v1 = parse_json(R"({"z": 1, "a": 2})");
  const Json v2 = parse_json(R"({"a": 2, "z": 1})");
  EXPECT_EQ(v1.dump(0), v2.dump(0));
}

TEST(JsonDump, EscapesControlCharacters) {
  const Json v{std::string("a\nb\x01")};
  EXPECT_EQ(v.dump(0), "\"a\\nb\\u0001\"");
}

TEST(JsonParse, DepthBombFailsCleanly) {
  // 100k unclosed '[': without the recursion cap the recursive-descent
  // parser overflows the stack; with it, this is an ordinary parse error
  // at the first bracket past the limit (1-based line:column).
  const std::string bomb(100'000, '[');
  try {
    (void)parse_json(bomb);
    FAIL() << "depth bomb parsed";
  } catch (const JsonError& error) {
    EXPECT_NE(std::string(error.what()).find("nesting depth exceeds 256"),
              std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("1:257"), std::string::npos)
        << error.what();
  }
}

TEST(JsonParse, DepthBombOfObjectsFailsCleanly) {
  std::string bomb;
  for (int i = 0; i < 100'000; ++i) {
    bomb += "{\"k\":";
  }
  EXPECT_THROW((void)parse_json(bomb), JsonError);
}

TEST(JsonParse, NestingAtTheLimitStillParses) {
  // Exactly max_depth levels parse; one more fails.
  JsonParseOptions options;
  options.max_depth = 4;
  EXPECT_EQ(parse_json("[[[[1]]]]", options).dump(0), "[[[[1]]]]");
  EXPECT_THROW((void)parse_json("[[[[[1]]]]]", options), JsonError);
}

TEST(JsonParse, MixedNestingCountsBothContainerKinds) {
  JsonParseOptions options;
  options.max_depth = 3;
  EXPECT_EQ(parse_json(R"({"a":[{"b":1}]})", options).dump(0), R"({"a":[{"b":1}]})");
  EXPECT_THROW((void)parse_json(R"({"a":[{"b":[1]}]})", options), JsonError);
}

TEST(JsonDump, NonFiniteNumbersUseStringSentinels) {
  // JSON has no inf/nan literal; the writer encodes them as string
  // sentinels (still valid RFC 8259) and as_number() decodes them, so the
  // round-trip stays total (the old `null` stand-in broke every reader).
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(0), "\"inf\"");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump(0), "\"-inf\"");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(0), "\"nan\"");
}

TEST(JsonDump, NonFiniteRoundTripIsByteIdentical) {
  const Json original = Json::array({std::numeric_limits<double>::infinity(),
                                     -std::numeric_limits<double>::infinity(),
                                     std::numeric_limits<double>::quiet_NaN(), 1.5});
  const std::string bytes = original.dump(0);
  const Json reparsed = parse_json(bytes);
  EXPECT_EQ(reparsed.dump(0), bytes);
  EXPECT_EQ(reparsed.at(std::size_t{0}).as_number_total(),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(reparsed.at(std::size_t{1}).as_number_total(),
            -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(reparsed.at(std::size_t{2}).as_number_total()));
  EXPECT_EQ(reparsed.at(std::size_t{3}).as_number_total(), 1.5);
}

TEST(JsonAccess, StrictAsNumberRejectsTheSentinels) {
  // Only as_number_total() decodes the writer's non-finite encoding;
  // plain as_number() stays strict so spec/config ingestion cannot be
  // fed smuggled inf/NaN values that evade range validation.
  EXPECT_THROW(Json("inf").as_number(), JsonError);
  EXPECT_THROW(Json("-inf").as_number(), JsonError);
  EXPECT_THROW(Json("nan").as_number(), JsonError);
}

TEST(JsonAccess, NonSentinelStringIsNotANumberEvenTotally) {
  EXPECT_THROW(Json("infinity").as_number_total(), JsonError);
  EXPECT_THROW(Json("NaN").as_number_total(), JsonError);
  EXPECT_THROW(Json("").as_number_total(), JsonError);
  EXPECT_THROW(Json("infinity").as_number(), JsonError);
}

TEST(JsonFormatNumber, NonFiniteTokens) {
  EXPECT_EQ(format_number(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_number(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_number(std::numeric_limits<double>::quiet_NaN()), "nan");
}

TEST(JsonDump, IntegersPrintWithoutFraction) {
  EXPECT_EQ(Json(1e6).dump(0), "1000000");
  EXPECT_EQ(Json(-3).dump(0), "-3");
}

TEST(JsonFormatNumber, ShortestRoundTripPins) {
  // Byte-for-byte pins of the %g-presentation reconstruction over
  // std::to_chars shortest digits.  These are the cases where a naive
  // printf("%g") or plain to_chars would disagree with the canonical form.
  EXPECT_EQ(format_number(999999999999999.875), "999999999999999.9");
  EXPECT_EQ(format_number(5e-324), "4.94066e-324");
  EXPECT_EQ(format_number(1.7976931348623157e308), "1.7976931348623157e+308");
  EXPECT_EQ(format_number(0.0001), "0.0001");
  EXPECT_EQ(format_number(0.00001), "1e-05");
  EXPECT_EQ(format_number(1.0 / 3.0), "0.3333333333333333");
  EXPECT_EQ(format_number(-0.0), "-0");
  EXPECT_EQ(format_number(1e15), "1e+15");
  EXPECT_EQ(format_number(1e16), "1e+16");
  EXPECT_EQ(format_number(123456.789), "123456.789");
}

TEST(JsonDump, DumpToAppendsIdenticalBytes) {
  const Json v = parse_json(R"({"b": [1, 2.5, "x"], "a": true})");
  for (const int indent : {0, 2, 4}) {
    std::string out = "prefix:";
    v.dump_to(out, indent);
    EXPECT_EQ(out, "prefix:" + v.dump(indent));
  }
}

TEST(JsonDump, HashedDumpMatchesDigestOfBytes) {
  const Json v = parse_json(R"({"grid": [[1, 2], [3, 4]], "name": "run"})");
  std::string compact;
  const std::uint64_t digest = v.dump_to_hashed(compact, 0);
  EXPECT_EQ(compact, v.dump(0));
  EXPECT_EQ(digest, fnv1a64(compact));
  // canonical_digest() is the same hash without materializing the bytes.
  EXPECT_EQ(v.canonical_digest(), digest);
}

TEST(JsonParse, HashWhileParseMatchesCanonicalDigest) {
  // Keys already sorted and compact: the streaming digest must equal the
  // digest of the canonical dump, with zero extra passes.
  const std::string canonical = R"({"a":1,"b":[true,"s",2.5],"c":{"d":null}})";
  const ParsedJson parsed = parse_json_hashed(canonical);
  ASSERT_TRUE(parsed.canonical_digest.has_value());
  EXPECT_EQ(*parsed.canonical_digest, parsed.value.canonical_digest());
  EXPECT_EQ(*parsed.canonical_digest, fnv1a64(canonical));
}

TEST(JsonParse, HashWhileParseSurvivesWhitespaceAndPretty) {
  // The digest streams *canonical* bytes, so formatting never changes it.
  const ParsedJson compact = parse_json_hashed(R"({"a":1,"b":[2,3]})");
  const ParsedJson pretty = parse_json_hashed("{\n  \"a\": 1,\n  \"b\": [2, 3]\n}");
  ASSERT_TRUE(compact.canonical_digest.has_value());
  ASSERT_TRUE(pretty.canonical_digest.has_value());
  EXPECT_EQ(*compact.canonical_digest, *pretty.canonical_digest);
}

TEST(JsonParse, HashWhileParseDisabledByUnsortedKeys) {
  // Out-of-order keys would need a re-sort to produce canonical bytes, so
  // the streaming digest reports absent rather than lying.
  const ParsedJson parsed = parse_json_hashed(R"({"z": 1, "a": 2})");
  EXPECT_FALSE(parsed.canonical_digest.has_value());
  // The value itself is still fully parsed and canonicalized.
  EXPECT_EQ(parsed.value.dump(0), R"({"a":2,"z":1})");
}

TEST(JsonFile, ParseErrorsNameTheFile) {
  const std::string path = ::testing::TempDir() + "/greenfpga_bad.json";
  {
    std::ofstream out(path);
    out << "{\"a\": !}\n";
  }
  try {
    (void)parse_json_file(path);
    FAIL() << "expected JsonError";
  } catch (const JsonError& error) {
    const std::string message = error.what();
    EXPECT_EQ(message.rfind(path + ": ", 0), 0u)
        << "message should lead with the path: " << message;
    EXPECT_NE(message.find("1:"), std::string::npos) << message;
  }
}

TEST(JsonFile, RoundTripThroughDisk) {
  const std::string path = ::testing::TempDir() + "/greenfpga_json_test.json";
  Json original = Json::object({{"x", 1.25}, {"y", Json::array({"a", "b"})}});
  write_json_file(path, original);
  const Json loaded = parse_json_file(path);
  EXPECT_EQ(loaded, original);
}

TEST(JsonFile, MissingFileThrows) {
  EXPECT_THROW(parse_json_file("/nonexistent/greenfpga.json"), JsonError);
}

// Round-trip property: parse(dump(v)) == v for varied numeric magnitudes.
class JsonNumberRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(JsonNumberRoundTrip, DumpThenParsePreservesValue) {
  const Json v{GetParam()};
  const Json round = parse_json(v.dump(0));
  EXPECT_DOUBLE_EQ(round.as_number(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, JsonNumberRoundTrip,
                         ::testing::Values(0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, 2.5e-3, 856117.0,
                                           1e15, 123456.789, 5e-324));

}  // namespace
}  // namespace greenfpga::io
