/// Tests for the design-phase CFP model (Eq. 4).

#include <gtest/gtest.h>

#include "core/design_model.hpp"
#include "device/catalog.hpp"
#include "units/units.hpp"

namespace greenfpga::core {
namespace {

using namespace units::unit;

DesignParameters reference_parameters() {
  DesignParameters p;
  p.annual_energy = 5.0 * gwh;
  p.intensity = 400.0 * g_per_kwh;
  p.company_employees = 20'000.0;
  p.product_team_size = 500.0;
  p.average_product_gates = 1e9;
  p.project_duration = 2.0 * years;
  p.fpga_regularity_factor = 0.25;
  return p;
}

TEST(DesignModel, CarbonPerEmployeeMatchesHandComputation) {
  const DesignModel model(reference_parameters());
  // 5 GWh * 0.4 kg/kWh / 20000 employees = 100 kg per employee-year.
  EXPECT_NEAR(model.carbon_per_employee_year().in(kg_co2e), 100.0, 1e-9);
}

TEST(DesignModel, EquationFourForAsic) {
  const DesignModel model(reference_parameters());
  // C_des = 100 kg * 500 engineers * (2e9/1e9 gates) * 2 years = 200 t.
  const units::CarbonMass result = model.design_carbon(2e9, /*is_fpga=*/false);
  EXPECT_NEAR(result.in(t_co2e), 200.0, 1e-9);
}

TEST(DesignModel, FpgaRegularityDiscountsEffort) {
  const DesignModel model(reference_parameters());
  const auto asic = model.design_carbon(2e9, /*is_fpga=*/false);
  const auto fpga = model.design_carbon(2e9, /*is_fpga=*/true);
  EXPECT_NEAR(fpga.canonical(), 0.25 * asic.canonical(), 1e-9);
}

TEST(DesignModel, RegularityOfOneRecoversLiteralEquation) {
  DesignParameters p = reference_parameters();
  p.fpga_regularity_factor = 1.0;
  const DesignModel model(p);
  EXPECT_EQ(model.design_carbon(1e9, true), model.design_carbon(1e9, false));
}

TEST(DesignModel, LinearInGateCount) {
  const DesignModel model(reference_parameters());
  const auto one = model.design_carbon(1e9, false);
  const auto three = model.design_carbon(3e9, false);
  EXPECT_NEAR(three.canonical(), 3.0 * one.canonical(), 1e-6);
}

TEST(DesignModel, LinearInProjectDuration) {
  DesignParameters p = reference_parameters();
  const auto short_project = DesignModel(p).design_carbon(1e9, false);
  p.project_duration = 4.0 * years;
  const auto long_project = DesignModel(p).design_carbon(1e9, false);
  EXPECT_NEAR(long_project.canonical(), 2.0 * short_project.canonical(), 1e-9);
}

TEST(DesignModel, GreenerDesignHouseEmitsLess) {
  DesignParameters p = reference_parameters();
  p.intensity = 30.0 * g_per_kwh;  // Table 1 lower bound (renewable-heavy)
  const auto green = DesignModel(p).design_carbon(1e9, false);
  p.intensity = 700.0 * g_per_kwh;  // Table 1 upper bound
  const auto dirty = DesignModel(p).design_carbon(1e9, false);
  EXPECT_LT(green, dirty);
  EXPECT_NEAR(dirty.canonical() / green.canonical(), 700.0 / 30.0, 1e-9);
}

TEST(DesignModel, ChipOverloadUsesSiliconGates) {
  const DesignModel model(reference_parameters());
  const device::ChipSpec fpga = device::industry_fpga1();
  const double silicon_gates = tech::node_info(fpga.node).gates_in_area(fpga.die_area);
  EXPECT_EQ(model.design_carbon(fpga), model.design_carbon(silicon_gates, true));
  // NOT the usable capacity: the vendor designs the whole die.
  EXPECT_NE(model.design_carbon(fpga), model.design_carbon(fpga.capacity_gates, true));
}

TEST(DesignModel, GateCountAblationModelIsProportional) {
  const units::CarbonMass per_gate{1e-6};
  EXPECT_DOUBLE_EQ(DesignModel::gate_count_model(2e9, per_gate).in(kg_co2e), 2000.0);
  EXPECT_THROW(DesignModel::gate_count_model(-1.0, per_gate), std::invalid_argument);
}

TEST(DesignModel, ValidationRejectsBadParameters) {
  DesignParameters p = reference_parameters();
  p.company_employees = 0.0;
  EXPECT_THROW(DesignModel{p}, std::invalid_argument);

  p = reference_parameters();
  p.product_team_size = -1.0;
  EXPECT_THROW(DesignModel{p}, std::invalid_argument);

  p = reference_parameters();
  p.average_product_gates = 0.0;
  EXPECT_THROW(DesignModel{p}, std::invalid_argument);

  p = reference_parameters();
  p.project_duration = units::TimeSpan{};
  EXPECT_THROW(DesignModel{p}, std::invalid_argument);

  p = reference_parameters();
  p.fpga_regularity_factor = 1.5;
  EXPECT_THROW(DesignModel{p}, std::invalid_argument);

  const DesignModel model(reference_parameters());
  EXPECT_THROW(model.design_carbon(-1.0, false), std::invalid_argument);
}

// Property: design CFP scales linearly in team size across Table 1's span.
class TeamSizeProperty : public ::testing::TestWithParam<double> {};

TEST_P(TeamSizeProperty, LinearInTeamSize) {
  DesignParameters p = reference_parameters();
  const auto base = DesignModel(p).design_carbon(1e9, false);
  p.product_team_size *= GetParam();
  const auto scaled = DesignModel(p).design_carbon(1e9, false);
  EXPECT_NEAR(scaled.canonical(), GetParam() * base.canonical(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Scales, TeamSizeProperty, ::testing::Values(0.5, 2.0, 3.0, 10.0));

}  // namespace
}  // namespace greenfpga::core
