/// Tests for JSON configuration loading and serialisation of core types.

#include <gtest/gtest.h>

#include "core/config_io.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "units/units.hpp"

namespace greenfpga::core {
namespace {

using io::Json;
using io::parse_json;
using namespace units::unit;

TEST(ConfigIo, SuiteRoundTripsThroughJson) {
  const ModelSuite original = paper_suite();
  const ModelSuite loaded = suite_from_json(to_json(original), ModelSuite{});
  EXPECT_DOUBLE_EQ(loaded.design.annual_energy.in(gwh), original.design.annual_energy.in(gwh));
  EXPECT_DOUBLE_EQ(loaded.design.product_team_size, original.design.product_team_size);
  EXPECT_DOUBLE_EQ(loaded.design.fpga_regularity_factor,
                   original.design.fpga_regularity_factor);
  EXPECT_DOUBLE_EQ(loaded.appdev.frontend_time.in(months),
                   original.appdev.frontend_time.in(months));
  EXPECT_EQ(loaded.appdev.accounting, original.appdev.accounting);
  EXPECT_DOUBLE_EQ(loaded.fab.fab_energy_intensity.in(g_per_kwh),
                   original.fab.fab_energy_intensity.in(g_per_kwh));
  EXPECT_EQ(loaded.fab.yield.model, original.fab.yield.model);
  EXPECT_DOUBLE_EQ(loaded.operation.duty_cycle, original.operation.duty_cycle);
  EXPECT_EQ(loaded.package.type, original.package.type);
  EXPECT_DOUBLE_EQ(loaded.eol.recycled_fraction, original.eol.recycled_fraction);
  EXPECT_DOUBLE_EQ(loaded.eol.discard_factor.in(mtco2e_per_ton),
                   original.eol.discard_factor.in(mtco2e_per_ton));
}

TEST(ConfigIo, PartialSuiteKeepsDefaults) {
  const ModelSuite defaults = paper_suite();
  const ModelSuite loaded =
      suite_from_json(parse_json(R"({"operation": {"duty_cycle": 0.9}})"), defaults);
  EXPECT_DOUBLE_EQ(loaded.operation.duty_cycle, 0.9);
  EXPECT_DOUBLE_EQ(loaded.design.product_team_size, defaults.design.product_team_size);
}

TEST(ConfigIo, UnknownKeysFailLoudly) {
  EXPECT_THROW(suite_from_json(parse_json(R"({"desing": {}})")), ConfigError);
  EXPECT_THROW(suite_from_json(parse_json(R"({"design": {"team": 5}})")), ConfigError);
  EXPECT_THROW(chip_from_json(parse_json(
                   R"({"name": "x", "die_area_mm2": 1, "peak_power_w": 1, "areaa": 2})")),
               ConfigError);
}

TEST(ConfigIo, ChipRoundTrip) {
  const device::ChipSpec original = device::industry_fpga2();
  const device::ChipSpec loaded = chip_from_json(to_json(original));
  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.kind, original.kind);
  EXPECT_EQ(loaded.node, original.node);
  EXPECT_DOUBLE_EQ(loaded.die_area.in(mm2), original.die_area.in(mm2));
  EXPECT_DOUBLE_EQ(loaded.peak_power.in(w), original.peak_power.in(w));
  EXPECT_DOUBLE_EQ(loaded.capacity_gates, original.capacity_gates);
}

TEST(ConfigIo, ChipDefaultsCapacityFromSilicon) {
  const device::ChipSpec fpga = chip_from_json(parse_json(
      R"({"name": "f", "kind": "fpga", "node": "10nm", "die_area_mm2": 550,
          "peak_power_w": 220})"));
  EXPECT_DOUBLE_EQ(fpga.capacity_gates, device::industry_fpga2().capacity_gates);
  EXPECT_DOUBLE_EQ(fpga.service_life.in(years), 15.0);
  const device::ChipSpec asic = chip_from_json(parse_json(
      R"({"name": "a", "kind": "asic", "node": "10nm", "die_area_mm2": 550,
          "peak_power_w": 220})"));
  EXPECT_DOUBLE_EQ(asic.capacity_gates,
                   fpga.capacity_gates * device::kFpgaFabricOverhead);
  EXPECT_DOUBLE_EQ(asic.service_life.in(years), 8.0);
}

TEST(ConfigIo, ChipRejectsMissingOrBadFields) {
  EXPECT_THROW(chip_from_json(parse_json(R"({"name": "x"})")), ConfigError);
  EXPECT_THROW(chip_from_json(parse_json(
                   R"({"name": "x", "kind": "tpu", "die_area_mm2": 1, "peak_power_w": 1})")),
               ConfigError);
  EXPECT_THROW(chip_from_json(parse_json(
                   R"({"name": "x", "node": "6nm", "die_area_mm2": 1, "peak_power_w": 1})")),
               ConfigError);
}

TEST(ConfigIo, ApplicationRoundTrip) {
  workload::Application original = workload::paper_application(device::Domain::imgproc);
  original.lifetime = 1.5 * years;
  original.volume = 3e5;
  original.size_gates = 1e9;
  const workload::Application loaded = application_from_json(to_json(original));
  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.domain, original.domain);
  EXPECT_DOUBLE_EQ(loaded.lifetime.in(years), 1.5);
  EXPECT_DOUBLE_EQ(loaded.volume, 3e5);
  EXPECT_DOUBLE_EQ(loaded.size_gates, 1e9);
}

TEST(ConfigIo, ScheduleRoundTrip) {
  const workload::Schedule original = paper_schedule(device::Domain::dnn);
  const workload::Schedule loaded = schedule_from_json(to_json(original));
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].name, original[i].name);
    EXPECT_DOUBLE_EQ(loaded[i].volume, original[i].volume);
  }
}

TEST(ConfigIo, ScenarioRequiresAllSections) {
  EXPECT_THROW(scenario_from_json(parse_json(R"({"name": "x"})")), ConfigError);
}

TEST(ConfigIo, ScenarioChecksPlatformKinds) {
  Json scenario = Json::object();
  scenario["asic"] = to_json(device::industry_fpga1());  // wrong kind on purpose
  scenario["fpga"] = to_json(device::industry_fpga2());
  scenario["schedule"] = to_json(paper_schedule(device::Domain::dnn));
  EXPECT_THROW(scenario_from_json(scenario), ConfigError);
}

TEST(ConfigIo, ScenarioLoadsFromFileWithComments) {
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  Json scenario = Json::object();
  scenario["name"] = "file test";
  scenario["asic"] = to_json(testcase.asic);
  scenario["fpga"] = to_json(testcase.fpga);
  scenario["schedule"] = to_json(paper_schedule(device::Domain::dnn));
  const std::string path = ::testing::TempDir() + "/greenfpga_scenario.json";
  const std::string text = "// scenario config\n" + scenario.dump();
  io::write_json_file(path, scenario);
  const ScenarioConfig loaded = load_scenario(path);
  EXPECT_EQ(loaded.name, "file test");
  EXPECT_EQ(loaded.schedule.size(), 5u);
  EXPECT_EQ(loaded.asic.kind, device::ChipKind::asic);
  (void)text;
}

TEST(ConfigIo, BreakdownJsonHasDerivedFields) {
  core::CfpBreakdown b;
  b.design = 1.0 * t_co2e;
  b.operational = 2.0 * t_co2e;
  const Json json = to_json(b);
  EXPECT_DOUBLE_EQ(json.at("design_kg").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(json.at("embodied_kg").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(json.at("total_kg").as_number(), 3000.0);
}

TEST(ConfigIo, SuiteEnumsSerializeSymbolically) {
  ModelSuite suite = paper_suite();
  suite.appdev.accounting = AppDevAccounting::per_year;
  suite.fab.yield.model = tech::YieldModel::poisson;
  const Json json = to_json(suite);
  EXPECT_EQ(json.at("appdev").at("accounting").as_string(), "per_year");
  EXPECT_EQ(json.at("fab").at("yield_model").as_string(), "poisson");
  const ModelSuite loaded = suite_from_json(json);
  EXPECT_EQ(loaded.appdev.accounting, AppDevAccounting::per_year);
  EXPECT_EQ(loaded.fab.yield.model, tech::YieldModel::poisson);
}

TEST(ConfigIo, BadEnumValuesRejected) {
  EXPECT_THROW(
      suite_from_json(parse_json(R"({"appdev": {"accounting": "sometimes"}})")),
      ConfigError);
  EXPECT_THROW(suite_from_json(parse_json(R"({"fab": {"yield_model": "magic"}})")),
               ConfigError);
  EXPECT_THROW(suite_from_json(parse_json(R"({"package": {"type": "wirebond"}})")),
               ConfigError);
}

}  // namespace
}  // namespace greenfpga::core
