/// Tests for the technology-node database, yield models and wafer math.

#include <gtest/gtest.h>

#include "tech/node.hpp"
#include "tech/yield.hpp"
#include "units/units.hpp"

namespace greenfpga::tech {
namespace {

using units::unit::cm2;
using units::unit::mm2;

TEST(Node, DatabaseCoversAllEnumerators) {
  for (const ProcessNode node : all_nodes()) {
    const TechnologyNode& info = node_info(node);
    EXPECT_EQ(info.node, node);
    EXPECT_GT(info.transistor_density_mtr_per_mm2, 0.0);
    EXPECT_GT(info.defect_density.canonical(), 0.0);
  }
}

TEST(Node, DensityIncreasesWithScaling) {
  // Newer nodes pack more transistors per mm^2; all_nodes() is ordered
  // oldest (28 nm) to newest (3 nm).
  double previous = 0.0;
  for (const ProcessNode node : all_nodes()) {
    const double density = node_info(node).transistor_density_mtr_per_mm2;
    EXPECT_GT(density, previous) << to_string(node);
    previous = density;
  }
}

TEST(Node, GateAreaRoundTrip) {
  const TechnologyNode& info = node_info(ProcessNode::n10);
  const double gates = 1e9;
  const units::Area area = info.area_for_gates(gates);
  EXPECT_NEAR(info.gates_in_area(area), gates, 1.0);
}

TEST(Node, GatesPerMm2UsesNand2Convention) {
  const TechnologyNode& info = node_info(ProcessNode::n10);
  EXPECT_DOUBLE_EQ(info.gates_per_mm2(), 52.5e6 / 4.0);
}

TEST(Node, NegativeGateCountThrows) {
  EXPECT_THROW(node_info(ProcessNode::n7).area_for_gates(-1.0), std::invalid_argument);
}

TEST(Node, ToStringAndParseRoundTrip) {
  for (const ProcessNode node : all_nodes()) {
    const auto parsed = parse_node(to_string(node));
    ASSERT_TRUE(parsed.has_value()) << to_string(node);
    EXPECT_EQ(*parsed, node);
  }
}

TEST(Node, ParseAcceptsCommonSpellings) {
  EXPECT_EQ(parse_node("7"), ProcessNode::n7);
  EXPECT_EQ(parse_node("7nm"), ProcessNode::n7);
  EXPECT_EQ(parse_node("7 nm"), ProcessNode::n7);
}

TEST(Node, ParseRejectsUnknown) {
  EXPECT_FALSE(parse_node("6nm").has_value());
  EXPECT_FALSE(parse_node("abc").has_value());
  EXPECT_FALSE(parse_node("").has_value());
  EXPECT_FALSE(parse_node("7 nanometers").has_value());
}

TEST(Yield, ZeroDefectsGivesLineYield) {
  const YieldSpec spec{.model = YieldModel::poisson, .line_yield = 0.95};
  EXPECT_DOUBLE_EQ(die_yield(100.0 * mm2, DefectDensity{}, spec), 0.95);
}

TEST(Yield, PoissonMatchesClosedForm) {
  const YieldSpec spec{.model = YieldModel::poisson, .line_yield = 1.0};
  // 2 cm^2 die at 0.1 defects/cm^2 -> exp(-0.2).
  EXPECT_NEAR(die_yield(2.0 * cm2, 0.1 * per_cm2, spec), std::exp(-0.2), 1e-12);
}

TEST(Yield, SeedsMatchesClosedForm) {
  const YieldSpec spec{.model = YieldModel::seeds, .line_yield = 1.0};
  EXPECT_NEAR(die_yield(2.0 * cm2, 0.25 * per_cm2, spec), 1.0 / 1.5, 1e-12);
}

TEST(Yield, MurphyMatchesClosedForm) {
  const YieldSpec spec{.model = YieldModel::murphy, .line_yield = 1.0};
  const double ad = 0.5;
  const double expected = std::pow((1.0 - std::exp(-ad)) / ad, 2.0);
  EXPECT_NEAR(die_yield(5.0 * cm2, 0.1 * per_cm2, spec), expected, 1e-12);
}

TEST(Yield, NegativeBinomialMatchesClosedForm) {
  const YieldSpec spec{
      .model = YieldModel::negative_binomial, .clustering_alpha = 2.0, .line_yield = 1.0};
  const double ad = 0.4;
  EXPECT_NEAR(die_yield(4.0 * cm2, 0.1 * per_cm2, spec), std::pow(1.0 + ad / 2.0, -2.0),
              1e-12);
}

TEST(Yield, NegativeBinomialApproachesPoissonForLargeAlpha) {
  const units::Area area = 3.0 * cm2;
  const DefectDensity d0 = 0.1 * per_cm2;
  const YieldSpec nb{.model = YieldModel::negative_binomial,
                     .clustering_alpha = 1e6,
                     .line_yield = 1.0};
  const YieldSpec poisson{.model = YieldModel::poisson, .line_yield = 1.0};
  EXPECT_NEAR(die_yield(area, d0, nb), die_yield(area, d0, poisson), 1e-6);
}

TEST(Yield, InvalidInputsThrow) {
  EXPECT_THROW(die_yield(units::Area{-1.0}, DefectDensity{}), std::invalid_argument);
  EXPECT_THROW(die_yield(1.0 * cm2, DefectDensity{-1.0}), std::invalid_argument);
  EXPECT_THROW(die_yield(1.0 * cm2, DefectDensity{},
                         YieldSpec{.line_yield = 1.5}),
               std::invalid_argument);
  EXPECT_THROW(die_yield(1.0 * cm2, 0.1 * per_cm2,
                         YieldSpec{.model = YieldModel::negative_binomial,
                                   .clustering_alpha = 0.0}),
               std::invalid_argument);
}

TEST(Yield, ToStringNamesAllModels) {
  EXPECT_EQ(to_string(YieldModel::poisson), "poisson");
  EXPECT_EQ(to_string(YieldModel::murphy), "murphy");
  EXPECT_EQ(to_string(YieldModel::seeds), "seeds");
  EXPECT_EQ(to_string(YieldModel::negative_binomial), "negative-binomial");
}

// Property: yield lies in (0, 1] and decreases with area for all models.
class YieldModelProperty : public ::testing::TestWithParam<YieldModel> {};

TEST_P(YieldModelProperty, BoundedAndMonotonicInArea) {
  const YieldSpec spec{.model = GetParam(), .clustering_alpha = 2.5, .line_yield = 1.0};
  const DefectDensity d0 = 0.1 * per_cm2;
  double previous = 1.0 + 1e-12;
  for (double area_cm2 = 0.25; area_cm2 <= 16.0; area_cm2 *= 2.0) {
    const double y = die_yield(area_cm2 * cm2, d0, spec);
    EXPECT_GT(y, 0.0);
    EXPECT_LE(y, 1.0);
    EXPECT_LT(y, previous) << "yield must fall as dies grow (" << to_string(GetParam())
                           << ", " << area_cm2 << " cm^2)";
    previous = y;
  }
}

TEST_P(YieldModelProperty, MonotonicInDefectDensity) {
  const YieldSpec spec{.model = GetParam(), .clustering_alpha = 2.5, .line_yield = 1.0};
  const units::Area area = 2.0 * cm2;
  double previous = 1.0 + 1e-12;
  for (double d = 0.05; d <= 0.8; d *= 2.0) {
    const double y = die_yield(area, d * per_cm2, spec);
    EXPECT_LT(y, previous) << to_string(GetParam());
    previous = y;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, YieldModelProperty,
                         ::testing::Values(YieldModel::poisson, YieldModel::murphy,
                                           YieldModel::seeds,
                                           YieldModel::negative_binomial));

TEST(Wafer, TypicalDieCount) {
  // ~100 mm^2 dies on a 300 mm wafer: industry rule of thumb ~600 gross.
  const int dies = dies_per_wafer(100.0 * mm2);
  EXPECT_GT(dies, 500);
  EXPECT_LT(dies, 700);
}

TEST(Wafer, LargerDiesYieldFewer) {
  EXPECT_GT(dies_per_wafer(50.0 * mm2), dies_per_wafer(100.0 * mm2));
  EXPECT_GT(dies_per_wafer(100.0 * mm2), dies_per_wafer(400.0 * mm2));
}

TEST(Wafer, ReticleScaleDieStillFits) {
  EXPECT_GT(dies_per_wafer(858.0 * mm2), 0);  // full-reticle die
}

TEST(Wafer, DegenerateCases) {
  EXPECT_THROW(dies_per_wafer(units::Area{}), std::invalid_argument);
  EXPECT_EQ(dies_per_wafer(100.0 * mm2, 10.0, 6.0), 0);  // no usable wafer left
  EXPECT_EQ(dies_per_wafer(1e6 * mm2), 0);               // die bigger than wafer
}

}  // namespace
}  // namespace greenfpga::tech
