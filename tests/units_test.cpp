/// Unit tests for the dimensional-analysis quantity system.

#include <gtest/gtest.h>

#include "units/format.hpp"
#include "units/quantity.hpp"
#include "units/units.hpp"

namespace greenfpga::units {
namespace {

using namespace units::literals;
using namespace units::unit;

TEST(Dimension, ProductAddsExponents) {
  constexpr Dimension d = dim::carbon + dim::carbon_intensity;
  static_assert(d.co2e == 2);
  static_assert(d.energy == -1);
  EXPECT_EQ(d.co2e, 2);
}

TEST(Dimension, QuotientSubtractsExponents) {
  constexpr Dimension d = dim::energy - dim::time;
  static_assert(d == dim::power);
  EXPECT_EQ(d.energy, 1);
  EXPECT_EQ(d.time, -1);
}

TEST(Quantity, DefaultIsZero) {
  constexpr CarbonMass zero;
  EXPECT_EQ(zero.canonical(), 0.0);
  EXPECT_TRUE(zero.is_zero());
}

TEST(Quantity, UnitConstantsScaleCorrectly) {
  EXPECT_DOUBLE_EQ((2.5 * t_co2e).in(kg_co2e), 2500.0);
  EXPECT_DOUBLE_EQ((1.0 * gwh).in(kwh), 1e6);
  EXPECT_DOUBLE_EQ((1.0 * years).in(hours), 8760.0);
  EXPECT_DOUBLE_EQ((12.0 * months).in(years), 1.0);
  EXPECT_DOUBLE_EQ((1.0 * cm2).in(mm2), 100.0);
  EXPECT_DOUBLE_EQ((1000.0 * w).in(kw), 1.0);
}

TEST(Quantity, LiteralsMatchUnitConstants) {
  EXPECT_EQ(2.0_t_co2e, 2.0 * t_co2e);
  EXPECT_EQ(1.5_years, 1.5 * years);
  EXPECT_EQ(3.0_months, 3.0 * months);
  EXPECT_EQ(150.0_mm2, 150.0 * mm2);
  EXPECT_EQ(30.0_w, 30.0 * w);
  EXPECT_EQ(380.0_g_per_kwh, 380.0 * g_per_kwh);
}

TEST(Quantity, AdditionPreservesDimension) {
  const CarbonMass sum = 1.0_t_co2e + 500.0_kg_co2e;
  EXPECT_DOUBLE_EQ(sum.in(kg_co2e), 1500.0);
}

TEST(Quantity, IntensityTimesEnergyIsCarbon) {
  const CarbonIntensity ci = 380.0_g_per_kwh;
  const Energy energy = 1000.0_kwh;
  const CarbonMass carbon = ci * energy;
  EXPECT_DOUBLE_EQ(carbon.in(kg_co2e), 380.0);
}

TEST(Quantity, PowerTimesTimeIsEnergy) {
  const Power p = 100.0_w;
  const Energy e = p * (10.0_hours);
  EXPECT_DOUBLE_EQ(e.in(kwh), 1.0);
}

TEST(Quantity, DimensionlessRatioConvertsToDouble) {
  const Area a = 600.0_mm2;
  const Area b = 150.0_mm2;
  const double ratio = a / b;
  EXPECT_DOUBLE_EQ(ratio, 4.0);
}

TEST(Quantity, ScalarDividedByQuantityInverts) {
  const auto inverse = 1.0 / (2.0 * kwh);
  EXPECT_DOUBLE_EQ((inverse * (4.0 * kwh)) * 1.0, 2.0);
}

TEST(Quantity, ComparisonOperators) {
  EXPECT_LT(1.0_kg_co2e, 1.0_t_co2e);
  EXPECT_GT(2.0_years, 1.0_months);
  EXPECT_EQ(units::max(1.0_kg_co2e, 2.0_kg_co2e), 2.0_kg_co2e);
  EXPECT_EQ(units::min(1.0_kg_co2e, 2.0_kg_co2e), 1.0_kg_co2e);
}

TEST(Quantity, AbsHandlesNegativeEolCredits) {
  const CarbonMass credit = -3.5_kg_co2e;
  EXPECT_EQ(units::abs(credit), 3.5_kg_co2e);
}

TEST(Quantity, CompoundAssignment) {
  CarbonMass total;
  total += 2.0_kg_co2e;
  total -= 0.5_kg_co2e;
  total *= 2.0;
  total /= 3.0;
  EXPECT_DOUBLE_EQ(total.in(kg_co2e), 1.0);
}

TEST(Format, SignificantDigits) {
  EXPECT_EQ(format_significant(0.0, 4), "0");
  EXPECT_EQ(format_significant(1234.5678, 4), "1235");
  EXPECT_EQ(format_significant(1.23456, 3), "1.23");
  EXPECT_EQ(format_significant(0.0012345, 2), "0.0012");
  EXPECT_EQ(format_significant(-42.0, 4), "-42");
}

TEST(Format, CarbonAutoScales) {
  EXPECT_EQ(format_carbon(1.5 * kg_co2e), "1.5 kg CO2e");
  EXPECT_EQ(format_carbon(2500.0 * kg_co2e), "2.5 t CO2e");
  EXPECT_EQ(format_carbon(3.2e6 * kg_co2e), "3.2 kt CO2e");
  EXPECT_EQ(format_carbon(0.5 * kg_co2e), "500 g CO2e");
}

TEST(Format, EnergyAutoScales) {
  EXPECT_EQ(format_energy(0.25 * kwh), "250 Wh");
  EXPECT_EQ(format_energy(7.3e6 * kwh), "7.3 GWh");
}

TEST(Format, TimeAutoScales) {
  EXPECT_EQ(format_time(2.0 * years), "2 years");
  EXPECT_EQ(format_time(1.0 * months), "1 months");
  EXPECT_EQ(format_time(0.5 * hours), "30 min");
}

TEST(Format, PowerAndAreaAndIntensity) {
  EXPECT_EQ(format_power(160.0 * w), "160 W");
  EXPECT_EQ(format_power(2.0 * kw), "2 kW");
  EXPECT_EQ(format_area(340.0 * mm2), "340 mm^2");
  EXPECT_EQ(format_area(1500.0 * mm2), "15 cm^2");
  EXPECT_EQ(format_carbon_intensity(380.0 * g_per_kwh), "380 g CO2e/kWh");
}

TEST(Format, NonFiniteValues) {
  EXPECT_EQ(format_significant(std::numeric_limits<double>::infinity(), 4), "inf");
  EXPECT_EQ(format_significant(std::numeric_limits<double>::quiet_NaN(), 4), "nan");
}

// Property sweep: x.in(u) * u == x for a spread of magnitudes.
class RoundTripTest : public ::testing::TestWithParam<double> {};

TEST_P(RoundTripTest, InAndOutAreInverse) {
  const double value = GetParam();
  const CarbonMass mass = value * t_co2e;
  EXPECT_DOUBLE_EQ(mass.in(t_co2e), value);
  const Energy energy = value * gwh;
  EXPECT_DOUBLE_EQ(energy.in(gwh), value);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, RoundTripTest,
                         ::testing::Values(1e-9, 1e-3, 0.5, 1.0, 3.14159, 1e3, 1e6, 1e9));

}  // namespace
}  // namespace greenfpga::units
