/// Tests for the report IR: ResultFrame invariants and the four frame
/// renderers (JSON round-trip, RFC 4180 CSV escaping, text, Markdown).

#include <gtest/gtest.h>

#include <algorithm>

#include "io/csv.hpp"
#include "io/json.hpp"
#include "report/result_frame.hpp"

namespace greenfpga::report {
namespace {

ResultFrame small_frame() {
  ResultFrame frame;
  frame.name = "demo";
  frame.columns = {Column{.name = "label", .unit = "", .precision = 4},
                   Column{.name = "total", .unit = "t CO2e", .precision = 5},
                   Column{.name = "ratio", .unit = "", .precision = 4}};
  frame.add_row({Cell(std::string("asic")), Cell(123.456), Cell(1.0)});
  frame.add_row({Cell(std::string("fpga")), Cell(78.9), Cell(nullptr)});
  frame.set_meta("crossovers", "A2F at N_app = 5.177");
  return frame;
}

TEST(ResultFrame, AddRowChecksArity) {
  ResultFrame frame;
  frame.name = "arity";
  frame.columns = {Column{.name = "a"}, Column{.name = "b"}};
  EXPECT_THROW(frame.add_row({Cell(1.0)}), std::invalid_argument);
  EXPECT_NO_THROW(frame.add_row({Cell(1.0), Cell(2.0)}));
}

TEST(ResultFrame, SetMetaOverwritesInPlace) {
  ResultFrame frame;
  frame.set_meta("k", "v1");
  frame.set_meta("other", "x");
  frame.set_meta("k", "v2");
  ASSERT_EQ(frame.metadata.size(), 2u);
  EXPECT_EQ(frame.metadata[0].first, "k");
  EXPECT_EQ(frame.metadata[0].second, "v2");
}

TEST(ResultFrame, ColumnHeaderAppendsUnit) {
  const ResultFrame frame = small_frame();
  EXPECT_EQ(frame.column_header(0), "label");
  EXPECT_EQ(frame.column_header(1), "total [t CO2e]");
}

TEST(FrameJson, RoundTripsExactly) {
  const ResultFrame frame = small_frame();
  const io::Json json = frame_to_json(frame);
  const ResultFrame back = frame_from_json(json);
  EXPECT_EQ(back.name, frame.name);
  ASSERT_EQ(back.columns.size(), frame.columns.size());
  EXPECT_EQ(back.columns[1].unit, "t CO2e");
  ASSERT_EQ(back.rows.size(), frame.rows.size());
  EXPECT_EQ(back.metadata, frame.metadata);
  // Cell-exact: numbers stay doubles, null stays null.
  EXPECT_EQ(back.rows, frame.rows);
  // And the canonical JSON text is stable through a parse cycle.
  EXPECT_EQ(io::parse_json(json.dump()).dump(), json.dump());
}

TEST(FrameCsv, HeaderUnitsAndNullCells) {
  const std::string csv = frame_to_csv(small_frame()).render();
  EXPECT_NE(csv.find("label,total [t CO2e],ratio"), std::string::npos);
  // Numbers render in round-trip form; the null cell is empty.
  EXPECT_NE(csv.find("asic,123.456,1"), std::string::npos);
  EXPECT_NE(csv.find("fpga,78.9,"), std::string::npos);
}

TEST(FrameCsv, EscapesCommasQuotesAndNewlines) {
  ResultFrame frame;
  frame.name = "escapes";
  frame.columns = {Column{.name = "name, with comma", .unit = ""},
                   Column{.name = "value", .unit = ""}};
  frame.add_row({Cell(std::string("say \"hi\"")), Cell(1.5)});
  frame.add_row({Cell(std::string("two\nlines")), Cell(2.5)});
  frame.add_row({Cell(std::string("plain")), Cell(3.5)});
  const std::string csv = frame_to_csv(frame).render();
  // RFC 4180: comma-bearing headers quoted, quotes doubled, newlines kept
  // inside a quoted cell.
  EXPECT_NE(csv.find("\"name, with comma\",value"), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\",1.5"), std::string::npos);
  EXPECT_NE(csv.find("\"two\nlines\",2.5"), std::string::npos);
  EXPECT_NE(csv.find("plain,3.5"), std::string::npos);
  // The quoted newline must not split the logical row: the parseable row
  // count is header + 3, so raw '\n' count is 5 (one extra inside quotes).
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
}

TEST(FrameCsv, NumbersRoundTripThroughText) {
  // A full-precision double must survive CSV -> parse exactly (the shared
  // io::format_number contract).
  const double value = 0.1 + 0.2;  // 0.30000000000000004
  ResultFrame frame;
  frame.name = "precision";
  frame.columns = {Column{.name = "x", .unit = ""}};
  frame.add_row({Cell(value)});
  const std::string csv = frame_to_csv(frame).render();
  const std::size_t newline = csv.find('\n');
  const std::string cell = csv.substr(newline + 1, csv.size() - newline - 2);
  EXPECT_EQ(std::stod(cell), value);
}

TEST(FrameTable, RendersMetadataAndDashForNull) {
  const std::string table = frame_to_table(small_frame());
  EXPECT_NE(table.find("crossovers: A2F at N_app = 5.177"), std::string::npos);
  EXPECT_NE(table.find("total [t CO2e]"), std::string::npos);
  EXPECT_NE(table.find("123.46"), std::string::npos);  // 5 significant digits
  EXPECT_NE(table.find(" - |"), std::string::npos);    // null cell (right-aligned)
}

TEST(FrameMarkdown, TableShapeAndPipeEscaping) {
  ResultFrame frame;
  frame.name = "md";
  frame.columns = {Column{.name = "a", .unit = ""}, Column{.name = "b", .unit = "W"}};
  frame.add_row({Cell(std::string("x|y")), Cell(2.0)});
  const std::string md = frame_to_markdown(frame);
  EXPECT_NE(md.find("### md"), std::string::npos);
  EXPECT_NE(md.find("| a | b [W] |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("x\\|y"), std::string::npos);
}

}  // namespace
}  // namespace greenfpga::report
