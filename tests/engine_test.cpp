/// Tests for the unified evaluation API: ScenarioSpec JSON round-trip,
/// PlatformRegistry, Engine dispatch, engine-vs-legacy equivalence for all
/// six scenario modules, and thread-count determinism.

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/comparator.hpp"
#include "core/config_io.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "device/platform_registry.hpp"
#include "scenario/breakeven.hpp"
#include "scenario/engine.hpp"
#include "scenario/heatmap.hpp"
#include "scenario/node_dse.hpp"
#include "scenario/sensitivity.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"
#include "scenario/timeline.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {
namespace {

using units::unit::years;

void expect_same_breakdown(const core::CfpBreakdown& a, const core::CfpBreakdown& b) {
  EXPECT_EQ(a.design.canonical(), b.design.canonical());
  EXPECT_EQ(a.manufacturing.canonical(), b.manufacturing.canonical());
  EXPECT_EQ(a.packaging.canonical(), b.packaging.canonical());
  EXPECT_EQ(a.eol.canonical(), b.eol.canonical());
  EXPECT_EQ(a.operational.canonical(), b.operational.canonical());
  EXPECT_EQ(a.app_dev.canonical(), b.app_dev.canonical());
}

ScenarioSpec sweep_spec() {
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::sweep, device::Domain::dnn);
  spec.name = "sweep";
  spec.axes = {AxisSpec::linear(SweepVariable::app_count, 1, 8, 8)};
  return spec;
}

ScenarioSpec grid_spec(int nx = 5, int ny = 4) {
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::grid, device::Domain::dnn);
  spec.name = "grid";
  spec.axes = {AxisSpec::log(SweepVariable::volume, 1e4, 1e6, nx),
               AxisSpec::linear(SweepVariable::lifetime_years, 0.5, 2.5, ny)};
  return spec;
}

// -- JSON round-trip ----------------------------------------------------------

TEST(ScenarioSpecJson, RoundTripIsByteIdentical) {
  std::vector<ScenarioSpec> specs;
  specs.push_back(ScenarioSpec::make(ScenarioKind::compare, device::Domain::crypto));
  specs.back().platforms = {PlatformRef{.name = "asic"}, PlatformRef{.name = "fpga"},
                            PlatformRef{.name = "gpu"}};
  specs.push_back(sweep_spec());
  specs.push_back(grid_spec());
  specs.back().grid_profile = GridProfileSpec{.profile = "solar_duck",
                                              .policy = "carbon_aware"};
  specs.push_back(ScenarioSpec::make(ScenarioKind::timeline, device::Domain::imgproc));
  specs.back().timeline = TimelineSpec{.horizon_years = 30.0, .step_years = 0.5};
  specs.push_back(ScenarioSpec::make(ScenarioKind::node_dse, device::Domain::dnn));
  specs.back().dse.nodes = {tech::ProcessNode::n10, tech::ProcessNode::n7};
  specs.back().dse.chip = device::domain_testcase(device::Domain::dnn).fpga;
  specs.push_back(ScenarioSpec::make(ScenarioKind::breakeven, device::Domain::dnn));
  specs.back().breakeven.solve_volume = false;
  specs.push_back(ScenarioSpec::make(ScenarioKind::sensitivity, device::Domain::dnn));
  specs.back().sensitivity.samples = 32;
  specs.back().sensitivity.ranges = table1_ranges();
  // A platform pinned to an explicit chip survives the round-trip too.
  specs.push_back(ScenarioSpec::make(ScenarioKind::compare, device::Domain::dnn));
  specs.back().platforms = {
      PlatformRef{.name = "asic"},
      PlatformRef{.name = "my-fpga",
                  .chip = device::domain_testcase(device::Domain::dnn).fpga}};

  for (const ScenarioSpec& spec : specs) {
    const std::string once = spec_to_json(spec).dump();
    const ScenarioSpec reparsed = spec_from_json(io::parse_json(once));
    const std::string twice = spec_to_json(reparsed).dump();
    EXPECT_EQ(once, twice) << "kind " << to_string(spec.kind);
  }
}

TEST(ScenarioSpecJson, UnknownKeysFailLoudly) {
  io::Json json = spec_to_json(sweep_spec());
  json["bogus_key"] = 1.0;
  EXPECT_THROW(spec_from_json(json), core::ConfigError);
}

TEST(ScenarioSpecJson, UnknownKindAndVariableFail) {
  io::Json json = spec_to_json(sweep_spec());
  json["kind"] = "frobnicate";
  EXPECT_THROW(spec_from_json(json), core::ConfigError);
}

TEST(ScenarioSpecJson, SensitivityRangesSerialiseByName) {
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::sensitivity, device::Domain::dnn);
  spec.sensitivity.ranges = {table1_ranges().front()};
  const ScenarioSpec reparsed = spec_from_json(spec_to_json(spec));
  ASSERT_EQ(reparsed.sensitivity.ranges.size(), 1u);
  EXPECT_EQ(reparsed.sensitivity.ranges.front().name, spec.sensitivity.ranges.front().name);
}

TEST(ScenarioSpecValidate, RejectsAxisArityMismatch) {
  ScenarioSpec spec = sweep_spec();
  spec.axes.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = grid_spec();
  spec.axes.pop_back();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecValidate, RejectsAxesOverExplicitSchedule) {
  ScenarioSpec spec = sweep_spec();
  spec.schedule.explicit_schedule = core::paper_schedule(device::Domain::dnn);
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecValidate, TimelineAndBreakevenRejectExplicitSchedules) {
  // These kinds read only the homogeneous fields; an application list
  // would be silently dropped, so it is rejected up front.
  for (const ScenarioKind kind : {ScenarioKind::timeline, ScenarioKind::breakeven}) {
    ScenarioSpec spec = ScenarioSpec::make(kind, device::Domain::dnn);
    spec.schedule.explicit_schedule = core::paper_schedule(device::Domain::dnn);
    EXPECT_THROW(spec.validate(), std::invalid_argument) << to_string(kind);
  }
}

TEST(ScenarioSpecJson, SensitivityRangesDefaultToTable1AndEmptyMeansNone) {
  // make() seeds the Table 1 ranges; omitting "ranges" in JSON keeps them.
  const ScenarioSpec made = ScenarioSpec::make(ScenarioKind::sensitivity,
                                               device::Domain::dnn);
  EXPECT_EQ(made.sensitivity.ranges.size(), table1_ranges().size());
  io::Json json = spec_to_json(made);
  io::Json::Object& sensitivity =
      json.as_object().at("sensitivity").as_object();
  sensitivity.erase("ranges");
  EXPECT_EQ(spec_from_json(json).sensitivity.ranges.size(), table1_ranges().size());
  // An explicit empty list means "perturb nothing": the tornado is empty.
  sensitivity["ranges"] = io::Json::array();
  ScenarioSpec none = spec_from_json(json);
  EXPECT_TRUE(none.sensitivity.ranges.empty());
  none.sensitivity.run_monte_carlo = false;
  EXPECT_TRUE(Engine(EngineOptions{.threads = 1}).run(none).tornado.empty());
}

// -- PlatformRegistry ---------------------------------------------------------

TEST(PlatformRegistry, BuiltinsResolveAllFivePlatforms) {
  const device::PlatformRegistry& registry = device::PlatformRegistry::builtins();
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"asic", "chiplet_fpga", "cpu",
                                                        "fpga", "gpu"}));
  EXPECT_EQ(registry.resolve("asic", device::Domain::dnn).kind, device::ChipKind::asic);
  EXPECT_EQ(registry.resolve("fpga", device::Domain::dnn).kind, device::ChipKind::fpga);
  EXPECT_EQ(registry.resolve("gpu", device::Domain::crypto).kind, device::ChipKind::gpu);
  EXPECT_EQ(registry.resolve("cpu", device::Domain::imgproc).kind, device::ChipKind::cpu);
  EXPECT_GT(registry.resolve("chiplet_fpga", device::Domain::dnn).chiplet_count, 1);
}

TEST(PlatformRegistry, UnknownNameThrowsListingKnownNames) {
  try {
    (void)device::PlatformRegistry::builtins().resolve("tpu", device::Domain::dnn);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& error) {
    EXPECT_NE(std::string(error.what())
                  .find("(registered: asic, chiplet_fpga, cpu, fpga, gpu)"),
              std::string::npos)
        << error.what();
  }
}

TEST(PlatformRegistry, CustomPlatformsAreResolvable) {
  device::PlatformRegistry registry = device::PlatformRegistry::with_builtins();
  registry.add("fpga-7nm", [](device::Domain domain) {
    return retarget_to_node(device::domain_testcase(domain).fpga, tech::ProcessNode::n7);
  });
  EXPECT_TRUE(registry.contains("fpga-7nm"));
  EXPECT_EQ(registry.resolve("fpga-7nm", device::Domain::dnn).node, tech::ProcessNode::n7);

  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::compare, device::Domain::dnn);
  spec.platforms = {PlatformRef{.name = "asic"}, PlatformRef{.name = "fpga-7nm"}};
  const Engine engine(EngineOptions{.threads = 1, .registry = &registry});
  const ScenarioResult result = engine.run(spec);
  EXPECT_EQ(result.resolved_chips[1].node, tech::ProcessNode::n7);
}

TEST(EngineErrors, UnknownPlatformNameThrows) {
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::compare, device::Domain::dnn);
  spec.platforms = {PlatformRef{.name = "quantum"}};
  EXPECT_THROW((void)Engine(EngineOptions{.threads = 1}).run(spec), std::out_of_range);
}

// -- engine vs direct model evaluation (the independent reference) -----------

TEST(EngineEquivalence, CompareMatchesDirectModelEvaluation) {
  const core::LifecycleModel model(core::paper_suite());
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  const workload::Schedule schedule = core::paper_schedule(device::Domain::dnn);
  const core::Comparison direct = core::compare(model, testcase, schedule);

  const ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::compare, device::Domain::dnn);
  const core::Comparison via_engine = Engine(EngineOptions{.threads = 1}).run(spec).comparison();

  expect_same_breakdown(direct.asic.total, via_engine.asic.total);
  expect_same_breakdown(direct.fpga.total, via_engine.fpga.total);
  EXPECT_EQ(direct.asic.chips_manufactured, via_engine.asic.chips_manufactured);
  EXPECT_EQ(direct.ratio(), via_engine.ratio());
}

TEST(EngineEquivalence, SweepShimMatchesDirectLoop) {
  const core::LifecycleModel model(core::paper_suite());
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  const core::SweepDefaults defaults = core::paper_sweep_defaults();

  // Legacy entry point (now an engine shim).
  const SweepEngine legacy(model, testcase);
  const SweepSeries series =
      legacy.sweep_app_count(1, 8, defaults.app_lifetime, defaults.app_volume);

  // Independent reference: hand-rolled direct model loop.
  ASSERT_EQ(series.x.size(), 8u);
  for (int k = 1; k <= 8; ++k) {
    const workload::Schedule schedule = core::paper_schedule(
        device::Domain::dnn, k, defaults.app_lifetime, defaults.app_volume);
    const core::Comparison direct = core::compare(model, testcase, schedule);
    EXPECT_EQ(series.x[static_cast<std::size_t>(k - 1)], static_cast<double>(k));
    expect_same_breakdown(series.asic[static_cast<std::size_t>(k - 1)], direct.asic.total);
    expect_same_breakdown(series.fpga[static_cast<std::size_t>(k - 1)], direct.fpga.total);
  }
}

TEST(EngineEquivalence, LifetimeAndVolumeSweepsMatchDirectLoops) {
  const core::LifecycleModel model(core::paper_suite());
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::crypto);
  const SweepEngine legacy(model, testcase);

  const std::vector<double> lifetimes = linspace(0.5, 2.5, 5);
  const SweepSeries by_lifetime = legacy.sweep_lifetime(lifetimes, 4, 1e6);
  for (std::size_t i = 0; i < lifetimes.size(); ++i) {
    const workload::Schedule schedule =
        core::paper_schedule(testcase.domain, 4, lifetimes[i] * years, 1e6);
    const core::Comparison direct = core::compare(model, testcase, schedule);
    expect_same_breakdown(by_lifetime.asic[i], direct.asic.total);
    expect_same_breakdown(by_lifetime.fpga[i], direct.fpga.total);
  }

  const std::vector<double> volumes = logspace(1e4, 1e6, 5);
  const SweepSeries by_volume = legacy.sweep_volume(volumes, 4, 2.0 * years);
  for (std::size_t i = 0; i < volumes.size(); ++i) {
    const workload::Schedule schedule =
        core::paper_schedule(testcase.domain, 4, 2.0 * years, volumes[i]);
    const core::Comparison direct = core::compare(model, testcase, schedule);
    expect_same_breakdown(by_volume.asic[i], direct.asic.total);
    expect_same_breakdown(by_volume.fpga[i], direct.fpga.total);
  }
}

TEST(EngineEquivalence, HeatmapShimMatchesDirectLoop) {
  const core::LifecycleModel model(core::paper_suite());
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  const HeatmapEngine legacy(model, testcase);
  const SweepEngine probe(model, testcase);

  const std::vector<int> app_counts{1, 3, 5, 7};
  const std::vector<double> lifetimes{0.5, 1.5, 2.5};
  const Heatmap map = legacy.app_count_vs_lifetime(app_counts, lifetimes, 1e6);

  ASSERT_EQ(map.ratio.size(), lifetimes.size());
  for (std::size_t iy = 0; iy < lifetimes.size(); ++iy) {
    ASSERT_EQ(map.ratio[iy].size(), app_counts.size());
    for (std::size_t ix = 0; ix < app_counts.size(); ++ix) {
      const double direct =
          probe.evaluate_point(app_counts[ix], lifetimes[iy] * years, 1e6).ratio();
      EXPECT_EQ(map.ratio[iy][ix], direct);
    }
  }
}

TEST(EngineEquivalence, BreakevenShimMatchesPrimitives) {
  const core::LifecycleModel model(core::paper_suite());
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  const BreakevenSolver solver(model, testcase);
  const BreakevenContext context;

  EXPECT_EQ(solver.app_count_breakeven(context),
            solve_app_count_breakeven(model, testcase, context));
  EXPECT_EQ(solver.lifetime_breakeven(context),
            solve_lifetime_breakeven(model, testcase, context));
  EXPECT_EQ(solver.volume_breakeven(context),
            solve_volume_breakeven(model, testcase, context));
}

TEST(EngineEquivalence, NodeDseShimMatchesDirectLoop) {
  const core::LifecycleModel model(core::paper_suite());
  const workload::Schedule schedule = core::paper_schedule(device::Domain::dnn);
  const device::ChipSpec fpga = device::domain_testcase(device::Domain::dnn).fpga;

  const NodeDse legacy(model, schedule);
  const std::vector<NodeCandidate> via_engine = legacy.explore(fpga);

  // Independent reference: retarget + evaluate + rank by hand.
  std::vector<NodeCandidate> direct;
  for (const tech::ProcessNode node : tech::all_nodes()) {
    try {
      direct.push_back(
          evaluate_node_candidate(model, schedule, retarget_to_node(fpga, node)));
    } catch (const std::invalid_argument&) {
      continue;
    }
  }
  rank_node_candidates(direct);

  ASSERT_EQ(via_engine.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_engine[i].chip.node, direct[i].chip.node);
    expect_same_breakdown(via_engine[i].lifecycle, direct[i].lifecycle);
    EXPECT_EQ(via_engine[i].total_vs_best, direct[i].total_vs_best);
  }
}

TEST(EngineEquivalence, TimelineShimMatchesPrimitive) {
  const core::LifecycleModel model(core::paper_suite());
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  const TimelineSimulator legacy(model, testcase);

  TimelineParameters parameters;
  parameters.horizon = 30.0 * years;
  parameters.app_lifetime = 1.0 * years;
  parameters.step = 0.5 * years;
  const TimelineSeries via_engine = legacy.run(parameters);
  const TimelineSeries direct = simulate_timeline(model, testcase, 30.0, 1.0, 1e6, 0.5);

  EXPECT_EQ(via_engine.time_years, direct.time_years);
  EXPECT_EQ(via_engine.asic_cumulative_kg, direct.asic_cumulative_kg);
  EXPECT_EQ(via_engine.fpga_cumulative_kg, direct.fpga_cumulative_kg);
  EXPECT_EQ(via_engine.fpga_purchase_years, direct.fpga_purchase_years);
}

TEST(EngineEquivalence, SensitivityShimsMatchPrimitives) {
  const core::ModelSuite base = core::paper_suite();
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  const workload::Schedule schedule = core::paper_schedule(device::Domain::dnn);
  const std::vector<ParameterRange> ranges = table1_ranges();

  const std::vector<TornadoEntry> via_engine = tornado(base, testcase, schedule, ranges);
  const std::vector<TornadoEntry> direct =
      detail::tornado_analysis(base, testcase, schedule, ranges);
  ASSERT_EQ(via_engine.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_engine[i].name, direct[i].name);
    EXPECT_EQ(via_engine[i].ratio_at_low, direct[i].ratio_at_low);
    EXPECT_EQ(via_engine[i].ratio_at_high, direct[i].ratio_at_high);
  }

  const MonteCarloResult mc_engine = monte_carlo(base, testcase, schedule, ranges, 64, 7);
  const MonteCarloResult mc_direct =
      detail::monte_carlo_analysis(base, testcase, schedule, ranges, 64, 7);
  EXPECT_EQ(mc_engine.mean, mc_direct.mean);
  EXPECT_EQ(mc_engine.stddev, mc_direct.stddev);
  EXPECT_EQ(mc_engine.p05, mc_direct.p05);
  EXPECT_EQ(mc_engine.p95, mc_direct.p95);
  EXPECT_EQ(mc_engine.fpga_win_fraction, mc_direct.fpga_win_fraction);
}

// -- determinism and parallel semantics ---------------------------------------

TEST(EngineDeterminism, GridIsBitIdenticalAcrossThreadCounts) {
  const ScenarioSpec spec = grid_spec(10, 10);
  const ScenarioResult one = Engine(EngineOptions{.threads = 1}).run(spec);
  const ScenarioResult four = Engine(EngineOptions{.threads = 4}).run(spec);
  const ScenarioResult seven = Engine(EngineOptions{.threads = 7}).run(spec);

  ASSERT_EQ(one.points.size(), 100u);
  ASSERT_EQ(four.points.size(), one.points.size());
  ASSERT_EQ(seven.points.size(), one.points.size());
  for (std::size_t i = 0; i < one.points.size(); ++i) {
    EXPECT_EQ(one.points[i].coords, four.points[i].coords);
    for (std::size_t p = 0; p < one.points[i].platforms.size(); ++p) {
      expect_same_breakdown(one.points[i].platforms[p].total,
                            four.points[i].platforms[p].total);
      expect_same_breakdown(one.points[i].platforms[p].total,
                            seven.points[i].platforms[p].total);
    }
  }
}

TEST(EngineDeterminism, InvalidSuiteReportsAsExceptionOnEveryThreadCount) {
  // A bad suite throws from the per-worker model *constructor*; that must
  // surface as the original exception, never std::terminate.
  ScenarioSpec spec = grid_spec(4, 4);
  spec.suite.operation.duty_cycle = 1.7;
  EXPECT_THROW((void)Engine(EngineOptions{.threads = 1}).run(spec),
               std::invalid_argument);
  EXPECT_THROW((void)Engine(EngineOptions{.threads = 4}).run(spec),
               std::invalid_argument);
}

TEST(EngineEquivalence, EmptySweepSpansYieldEmptySeries) {
  // Legacy contract: empty sample lists are valid and produce empty series.
  const SweepEngine legacy(core::LifecycleModel(core::paper_suite()),
                           device::domain_testcase(device::Domain::dnn));
  const SweepSeries by_lifetime = legacy.sweep_lifetime({}, 5, 1e6);
  EXPECT_EQ(by_lifetime.parameter, "T_i [years]");
  EXPECT_TRUE(by_lifetime.x.empty());
  const SweepSeries by_volume = legacy.sweep_volume({}, 5, 2.0 * years);
  EXPECT_EQ(by_volume.parameter, "N_vol [units]");
  EXPECT_TRUE(by_volume.x.empty());
}

TEST(ScenarioSpecDefaults, MakeSeedsScheduleFromPaperSweepDefaults) {
  const core::SweepDefaults defaults = core::paper_sweep_defaults();
  const ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::compare, device::Domain::dnn);
  EXPECT_EQ(spec.schedule.app_count, defaults.app_count);
  EXPECT_EQ(spec.schedule.lifetime_years, defaults.app_lifetime.in(years));
  EXPECT_EQ(spec.schedule.volume, defaults.app_volume);
}

TEST(EngineDeterminism, WorkerExceptionsPropagate) {
  // A log axis materialises lazily inside the engine run; an invalid axis
  // generator must surface as the original exception, not a crash.
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::sweep, device::Domain::dnn);
  spec.axes = {AxisSpec::list(SweepVariable::volume, {1e6, -5.0, 1e6, 1e6})};
  EXPECT_THROW((void)Engine(EngineOptions{.threads = 4}).run(spec),
               std::invalid_argument);
}

TEST(EngineOutputs, PerApplicationDroppedForGridsKeptForCompare) {
  const ScenarioResult grid = Engine(EngineOptions{.threads = 1}).run(grid_spec());
  for (const EvalPoint& point : grid.points) {
    for (const core::PlatformCfp& platform : point.platforms) {
      EXPECT_TRUE(platform.per_application.empty());
    }
  }

  ScenarioSpec verbose = grid_spec();
  verbose.outputs.per_application = true;
  const ScenarioResult kept = Engine(EngineOptions{.threads = 1}).run(verbose);
  EXPECT_FALSE(kept.points.front().platforms.front().per_application.empty());

  const ScenarioResult compare = Engine(EngineOptions{.threads = 1})
                                     .run(ScenarioSpec::make(ScenarioKind::compare,
                                                             device::Domain::dnn));
  EXPECT_FALSE(compare.points.front().platforms.front().per_application.empty());
}

TEST(EngineOptionsTest, DefaultThreadsHonoursEnvironment) {
  ::setenv("GREENFPGA_THREADS", "3", /*overwrite=*/1);
  EXPECT_EQ(Engine::default_threads(), 3);
  EXPECT_EQ(Engine().threads(), 3);
  ::setenv("GREENFPGA_THREADS", "not-a-number", 1);
  EXPECT_GE(Engine::default_threads(), 1);  // falls back to hardware concurrency
  ::unsetenv("GREENFPGA_THREADS");
  EXPECT_GE(Engine::default_threads(), 1);
  EXPECT_EQ(Engine(EngineOptions{.threads = 2}).threads(), 2);
  // Requests beyond the pool bound are clamped, not honoured literally.
  EXPECT_EQ(Engine(EngineOptions{.threads = 100000}).threads(), Engine::kMaxThreads);
}

TEST(EngineGridProfile, CarbonAwareSchedulingLowersOperationalCarbon) {
  ScenarioSpec flat = ScenarioSpec::make(ScenarioKind::compare, device::Domain::dnn);
  ScenarioSpec aware = flat;
  aware.grid_profile = GridProfileSpec{.profile = "solar_duck", .policy = "carbon_aware"};

  const Engine engine(EngineOptions{.threads = 1});
  const double flat_op =
      engine.run(flat).points.front().platforms[1].total.operational.canonical();
  const double aware_op =
      engine.run(aware).points.front().platforms[1].total.operational.canonical();
  EXPECT_LT(aware_op, flat_op);

  ScenarioSpec bogus = flat;
  bogus.grid_profile = GridProfileSpec{.profile = "volcanic", .policy = "uniform"};
  EXPECT_THROW((void)engine.run(bogus), std::invalid_argument);
}

TEST(EngineViews, SweepSeriesAndHeatmapMatchLegacyShapes) {
  const ScenarioResult swept = Engine(EngineOptions{.threads = 2}).run(sweep_spec());
  const SweepSeries series = swept.sweep_series();
  EXPECT_EQ(series.parameter, "N_app");
  EXPECT_EQ(series.x.size(), 8u);
  EXPECT_EQ(series.domain, device::Domain::dnn);

  const ScenarioResult gridded = Engine(EngineOptions{.threads = 2}).run(grid_spec(5, 4));
  const Heatmap map = gridded.heatmap();
  EXPECT_EQ(map.x_name, "N_vol [units]");
  EXPECT_EQ(map.y_name, "T_i [years]");
  EXPECT_EQ(map.x.size(), 5u);
  EXPECT_EQ(map.y.size(), 4u);
}

TEST(EngineViews, TestcaseKindsRequireAsicAndFpga) {
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::timeline, device::Domain::dnn);
  spec.platforms = {PlatformRef{.name = "gpu"}};
  EXPECT_THROW((void)Engine(EngineOptions{.threads = 1}).run(spec),
               std::invalid_argument);
}

// -- four-way platform audit --------------------------------------------------
//
// Every scenario kind either evaluates an arbitrary platform list or
// fails with an error naming the kind AND the unsupported platform
// shape.  One sub-case per kind, all with the same four registry
// platforms.

std::vector<PlatformRef> four_way_platforms() {
  return {PlatformRef{.name = "asic", .chip = std::nullopt},
          PlatformRef{.name = "fpga", .chip = std::nullopt},
          PlatformRef{.name = "gpu", .chip = std::nullopt},
          PlatformRef{.name = "cpu", .chip = std::nullopt}};
}

TEST(EngineFourWay, PointKindsEvaluateAllFourPlatforms) {
  const Engine engine(EngineOptions{.threads = 2});
  for (const ScenarioKind kind :
       {ScenarioKind::compare, ScenarioKind::sweep, ScenarioKind::grid,
        ScenarioKind::montecarlo, ScenarioKind::frontier}) {
    ScenarioSpec spec = ScenarioSpec::make(kind, device::Domain::dnn);
    spec.name = "four-way " + to_string(kind);
    spec.platforms = four_way_platforms();
    if (kind == ScenarioKind::sweep) {
      spec.axes = {AxisSpec::linear(SweepVariable::app_count, 1, 4, 4)};
    } else if (kind == ScenarioKind::grid) {
      spec.axes = {AxisSpec::log(SweepVariable::volume, 1e4, 1e6, 3),
                   AxisSpec::linear(SweepVariable::lifetime_years, 0.5, 2.5, 3)};
    } else if (kind == ScenarioKind::montecarlo) {
      spec.montecarlo.samples = 16;
    } else if (kind == ScenarioKind::frontier) {
      spec.frontier.axes = {
          dse::FrontierAxisSpec::linear(dse::FrontierVariable::app_count, 1, 4, 4),
          dse::FrontierAxisSpec::log(dse::FrontierVariable::volume, 1e4, 1e6, 3)};
    }
    const ScenarioResult result = engine.run(spec);
    ASSERT_EQ(result.platform_names.size(), 4u) << to_string(kind);
    if (kind == ScenarioKind::montecarlo) {
      ASSERT_TRUE(result.uncertainty);
      EXPECT_EQ(result.uncertainty->platform_total.size(), 4u);
      EXPECT_EQ(result.uncertainty->ratio.size(), 3u);
    } else if (kind == ScenarioKind::frontier) {
      ASSERT_TRUE(result.frontier);
      ASSERT_FALSE(result.frontier->cells.empty());
      EXPECT_EQ(result.frontier->cells.front().objective_kg.size(), 4u);
      EXPECT_EQ(result.frontier->win_counts.size(), 4u);
    } else {
      ASSERT_FALSE(result.points.empty());
      EXPECT_EQ(result.points.front().platforms.size(), 4u);
    }
  }
}

TEST(EngineFourWay, TestcaseKindsFailNamingKindAndPlatformList) {
  const Engine engine(EngineOptions{.threads = 1});
  for (const ScenarioKind kind :
       {ScenarioKind::timeline, ScenarioKind::breakeven, ScenarioKind::sensitivity}) {
    ScenarioSpec spec = ScenarioSpec::make(kind, device::Domain::dnn);
    spec.name = "four-way " + to_string(kind);
    spec.platforms = four_way_platforms();
    try {
      (void)engine.run(spec);
      FAIL() << to_string(kind) << " accepted four platforms";
    } catch (const std::invalid_argument& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find(to_string(kind)), std::string::npos) << what;
      EXPECT_NE(what.find("asic, fpga, gpu, cpu"), std::string::npos) << what;
    }
  }
}

TEST(EngineFourWay, NodeDseFailsNamingItsSingleSubjectShape) {
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::node_dse, device::Domain::dnn);
  spec.name = "four-way node_dse";
  spec.platforms = four_way_platforms();
  try {
    (void)Engine(EngineOptions{.threads = 1}).run(spec);
    FAIL() << "node_dse accepted four platforms";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("node_dse"), std::string::npos) << what;
    EXPECT_NE(what.find("asic, fpga, gpu, cpu"), std::string::npos) << what;
  }
}

TEST(EngineFourWay, NodeDseRanksAnExplicitSinglePlatform) {
  // A one-platform list names the subject; the registry's gpu works.
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::node_dse, device::Domain::dnn);
  spec.name = "gpu node ranking";
  spec.platforms = {PlatformRef{.name = "gpu", .chip = std::nullopt}};
  const ScenarioResult result = Engine(EngineOptions{.threads = 2}).run(spec);
  ASSERT_FALSE(result.candidates.empty());
  EXPECT_TRUE(result.candidates.front().chip.is_gpu());
}

// -- Monte-Carlo uncertainty determinism --------------------------------------

ScenarioSpec mc_spec(unsigned seed, int samples = 96) {
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::montecarlo, device::Domain::dnn);
  spec.name = "mc determinism pin";
  spec.montecarlo.samples = samples;
  spec.montecarlo.seed = seed;
  return spec;
}

TEST(MonteCarloDeterminism, BitIdenticalAcrossThreadCounts) {
  // The acceptance contract of the sampler: counter-based per-sample RNG
  // streams + pre-sized slots make results bit-identical for --threads
  // 1 / 2 / 8 (not merely statistically close).
  const ScenarioSpec spec = mc_spec(42);
  const ScenarioResult one = Engine(EngineOptions{.threads = 1}).run(spec);
  const ScenarioResult two = Engine(EngineOptions{.threads = 2}).run(spec);
  const ScenarioResult eight = Engine(EngineOptions{.threads = 8}).run(spec);

  ASSERT_TRUE(one.uncertainty.has_value());
  for (const ScenarioResult* other : {&two, &eight}) {
    ASSERT_TRUE(other->uncertainty.has_value());
    EXPECT_EQ(one.uncertainty->sample_totals_kg, other->uncertainty->sample_totals_kg);
    ASSERT_EQ(one.uncertainty->platform_total.size(),
              other->uncertainty->platform_total.size());
    for (std::size_t p = 0; p < one.uncertainty->platform_total.size(); ++p) {
      EXPECT_EQ(one.uncertainty->platform_total[p].mean,
                other->uncertainty->platform_total[p].mean);
      EXPECT_EQ(one.uncertainty->platform_total[p].stddev,
                other->uncertainty->platform_total[p].stddev);
      EXPECT_EQ(one.uncertainty->platform_total[p].percentile_values,
                other->uncertainty->platform_total[p].percentile_values);
    }
    EXPECT_EQ(one.uncertainty->win_fraction, other->uncertainty->win_fraction);
  }
}

TEST(MonteCarloDeterminism, SameSeedReproducesDifferentSeedDiffers) {
  const Engine engine(EngineOptions{.threads = 2});
  const ScenarioResult first = engine.run(mc_spec(7));
  const ScenarioResult again = engine.run(mc_spec(7));
  EXPECT_EQ(first.uncertainty->sample_totals_kg, again.uncertainty->sample_totals_kg);

  const ScenarioResult reseeded = engine.run(mc_spec(8));
  EXPECT_NE(first.uncertainty->sample_totals_kg, reseeded.uncertainty->sample_totals_kg);
}

TEST(MonteCarloDeterminism, SampleOrderIsIndexNotScheduleOrder) {
  // Slot i depends only on (seed, i): prefix-truncating the run must
  // reproduce the same leading samples even on a racing thread pool.
  const Engine engine(EngineOptions{.threads = 8});
  const ScenarioResult full = engine.run(mc_spec(11, 64));
  const ScenarioResult prefix = engine.run(mc_spec(11, 16));
  for (std::size_t p = 0; p < prefix.uncertainty->sample_totals_kg.size(); ++p) {
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(prefix.uncertainty->sample_totals_kg[p][i],
                full.uncertainty->sample_totals_kg[p][i]);
    }
  }
}

TEST(MonteCarloUqResult, RatioAndWinFractionAreConsistent) {
  const ScenarioResult result = Engine(EngineOptions{.threads = 1}).run(mc_spec(3));
  const MonteCarloUq& uq = *result.uncertainty;
  ASSERT_EQ(uq.platform_total.size(), 2u);  // default asic + fpga
  ASSERT_EQ(uq.ratio.size(), 1u);
  const std::vector<double> ratios = uq.ratio_samples(1);
  ASSERT_EQ(ratios.size(), static_cast<std::size_t>(uq.samples));
  std::size_t wins = 0;
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    EXPECT_EQ(ratios[i],
              uq.sample_totals_kg[1][i] / uq.sample_totals_kg[0][i]);
    if (ratios[i] < 1.0) {
      ++wins;
    }
  }
  EXPECT_EQ(uq.win_fraction.front(),
            static_cast<double>(wins) / static_cast<double>(uq.samples));
  EXPECT_THROW((void)uq.ratio_samples(0), std::out_of_range);
  EXPECT_THROW((void)uq.ratio_samples(2), std::out_of_range);
}

TEST(MonteCarloUqResult, SummariseSamplesValidatesItsInputs) {
  // The shared stats helper is public API: out-of-range percentiles must
  // throw, never index past the sample buffer.
  EXPECT_THROW((void)summarise_samples({}, {50.0}), std::invalid_argument);
  EXPECT_THROW((void)summarise_samples({1.0, 2.0}, {150.0}), std::invalid_argument);
  EXPECT_THROW((void)summarise_samples({1.0, 2.0}, {-1.0}), std::invalid_argument);
  const UqStat stat = summarise_samples({1.0, 2.0, 3.0}, {0.0, 50.0, 100.0});
  EXPECT_EQ(stat.percentile_values, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_DOUBLE_EQ(stat.mean, 2.0);
}

TEST(MonteCarloUqResult, PercentilesAreMonotoneAndBracketTheMedian) {
  const ScenarioResult result = Engine(EngineOptions{.threads = 2}).run(mc_spec(5, 256));
  const MonteCarloUq& uq = *result.uncertainty;
  for (const UqStat& stat : uq.platform_total) {
    ASSERT_EQ(stat.percentile_values.size(), uq.percentiles.size());
    for (std::size_t i = 1; i < stat.percentile_values.size(); ++i) {
      EXPECT_LE(stat.percentile_values[i - 1], stat.percentile_values[i]);
    }
    EXPECT_GT(stat.stddev, 0.0);
  }
}

TEST(MonteCarloUqResult, NoDistributionsCollapsesToThePointEstimate) {
  // Empty distribution list: every sample evaluates the unperturbed suite,
  // so the "distribution" is a spike at the deterministic answer.
  ScenarioSpec spec = mc_spec(1, 8);
  spec.montecarlo.distributions.clear();
  const ScenarioResult result = Engine(EngineOptions{.threads = 2}).run(spec);

  const ScenarioSpec point = ScenarioSpec::make(ScenarioKind::compare, device::Domain::dnn);
  const core::Comparison comparison =
      Engine(EngineOptions{.threads = 1}).run(point).comparison();
  const MonteCarloUq& uq = *result.uncertainty;
  for (const double total : uq.sample_totals_kg[0]) {
    EXPECT_EQ(total, comparison.asic.total.total().canonical());
  }
  for (const double total : uq.sample_totals_kg[1]) {
    EXPECT_EQ(total, comparison.fpga.total.total().canonical());
  }
  // Identical samples must report exactly zero uncertainty (no phantom
  // stddev from the rounded running mean).
  EXPECT_EQ(uq.platform_total[0].stddev, 0.0);
  EXPECT_EQ(uq.platform_total[0].mean, comparison.asic.total.total().canonical());
}

// -- memoisation --------------------------------------------------------------

TEST(EmbodiedMemoisation, CachedEmbodiedEqualsFreshModel) {
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  const core::LifecycleModel warm(core::paper_suite());
  // Warm the cache, then compare against a fresh (cold) model.
  (void)warm.per_chip_embodied(testcase.fpga);
  const core::CfpBreakdown cached = warm.per_chip_embodied(testcase.fpga);
  const core::LifecycleModel cold(core::paper_suite());
  expect_same_breakdown(cached, cold.per_chip_embodied(testcase.fpga));

  // Copies must not share (or keep) cache state observable as results.
  core::LifecycleModel assigned(core::industry_suite());
  assigned = warm;
  expect_same_breakdown(assigned.per_chip_embodied(testcase.fpga), cached);
}

}  // namespace
}  // namespace greenfpga::scenario
