/// Golden-figure regression suite: pins the numeric outputs of the paper
/// figure paths (Figs. 2, 4, 5, 6, 8) against checked-in JSON snapshots in
/// tests/golden/, so a refactor can never silently drift the reproduction's
/// headline numbers.
///
/// Comparison is per-value with a relative tolerance of 1e-9 (absolute
/// 1e-12 near zero): tight enough that any model change trips it, loose
/// enough to survive benign FP-reassociation differences across compilers.
///
/// Regenerating the snapshots after an *intentional* model change:
///
///     GREENFPGA_REGEN_GOLDEN=1 ./golden_figures_test
///
/// then review the diff of tests/golden/*.json like any other code change.
/// The golden directory is baked in at compile time (GREENFPGA_GOLDEN_DIR,
/// set by CMakeLists.txt to <source>/tests/golden), so the suite runs from
/// any build directory.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "core/paper_config.hpp"
#include "golden_test_util.hpp"
#include "io/json.hpp"
#include "scenario/engine.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"

namespace greenfpga::scenario {
namespace {

using greenfpga::testing::check_against_golden;
using greenfpga::testing::compare_json;

const Engine& engine() {
  static const Engine instance(EngineOptions{.threads = 1});
  return instance;
}

std::string domain_token(device::Domain domain) {
  return to_string(domain);  // "DNN" / "ImgProc" / "Crypto"
}

io::Json breakdown_to_json(const core::CfpBreakdown& breakdown) {
  io::Json out = io::Json::object();
  out["design_kg"] = breakdown.design.canonical();
  out["manufacturing_kg"] = breakdown.manufacturing.canonical();
  out["packaging_kg"] = breakdown.packaging.canonical();
  out["eol_kg"] = breakdown.eol.canonical();
  out["operational_kg"] = breakdown.operational.canonical();
  out["app_dev_kg"] = breakdown.app_dev.canonical();
  out["total_kg"] = breakdown.total().canonical();
  return out;
}

/// One sweep figure path: per-domain x / totals / crossovers.
io::Json sweep_figure(device::Domain domain, AxisSpec axis, CrossoverKind kind) {
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::sweep, domain);
  spec.axes = {std::move(axis)};
  const SweepSeries series = engine().run(spec).sweep_series();

  io::Json out = io::Json::object();
  io::Json x = io::Json::array();
  io::Json asic = io::Json::array();
  io::Json fpga = io::Json::array();
  for (std::size_t i = 0; i < series.x.size(); ++i) {
    x.push_back(series.x[i]);
    asic.push_back(series.asic[i].total().canonical());
    fpga.push_back(series.fpga[i].total().canonical());
  }
  out["x"] = std::move(x);
  out["asic_total_kg"] = std::move(asic);
  out["fpga_total_kg"] = std::move(fpga);
  const auto crossover = first_crossover(series.crossovers(), kind);
  out["first_crossover"] = crossover ? io::Json(*crossover) : io::Json(nullptr);
  return out;
}

io::Json heatmap_figure(AxisSpec x_axis, AxisSpec y_axis) {
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::grid, device::Domain::dnn);
  spec.axes = {std::move(x_axis), std::move(y_axis)};
  const Heatmap map = engine().run(spec).heatmap();

  io::Json out = io::Json::object();
  io::Json x = io::Json::array();
  for (const double v : map.x) {
    x.push_back(v);
  }
  io::Json y = io::Json::array();
  for (const double v : map.y) {
    y.push_back(v);
  }
  io::Json ratio = io::Json::array();
  for (const std::vector<double>& row : map.ratio) {
    io::Json cells = io::Json::array();
    for (const double r : row) {
      cells.push_back(r);
    }
    ratio.push_back(std::move(cells));
  }
  out["x"] = std::move(x);
  out["y"] = std::move(y);
  out["fpga_to_asic_ratio"] = std::move(ratio);
  out["min_ratio"] = map.min_ratio();
  out["max_ratio"] = map.max_ratio();
  out["unity_contour_points"] = map.unity_contour().size();
  return out;
}

// -- Fig. 2: FPGA saving at 10 applications (DNN) ------------------------------

TEST(GoldenFigures, Fig2MotivationCompare) {
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::compare, device::Domain::dnn);
  spec.schedule.app_count = 10;
  const core::Comparison comparison = engine().run(spec).comparison();

  io::Json out = io::Json::object();
  out["asic"] = breakdown_to_json(comparison.asic.total);
  out["fpga"] = breakdown_to_json(comparison.fpga.total);
  out["ratio"] = comparison.ratio();
  out["fpga_saving_percent"] = 100.0 * (1.0 - comparison.ratio());
  check_against_golden("fig2_motivation", out);
}

// -- Figs. 4 / 5 / 6: the three sweep figures, all domains ---------------------

class GoldenSweepFigures : public ::testing::TestWithParam<device::Domain> {};

TEST_P(GoldenSweepFigures, Fig4AppCountSweep) {
  const device::Domain domain = GetParam();
  check_against_golden(
      "fig4_apps_" + domain_token(domain),
      sweep_figure(domain, AxisSpec::linear(SweepVariable::app_count, 1, 16, 16),
                   CrossoverKind::a2f));
}

TEST_P(GoldenSweepFigures, Fig5LifetimeSweep) {
  const device::Domain domain = GetParam();
  check_against_golden(
      "fig5_lifetime_" + domain_token(domain),
      sweep_figure(domain, AxisSpec::linear(SweepVariable::lifetime_years, 0.2, 2.5, 47),
                   CrossoverKind::f2a));
}

TEST_P(GoldenSweepFigures, Fig6VolumeSweep) {
  const device::Domain domain = GetParam();
  check_against_golden(
      "fig6_volume_" + domain_token(domain),
      sweep_figure(domain, AxisSpec::log(SweepVariable::volume, 1e3, 1e7, 41),
                   CrossoverKind::f2a));
}

INSTANTIATE_TEST_SUITE_P(AllDomains, GoldenSweepFigures,
                         ::testing::Values(device::Domain::dnn, device::Domain::imgproc,
                                           device::Domain::crypto),
                         [](const ::testing::TestParamInfo<device::Domain>& info) {
                           return to_string(info.param);
                         });

// -- Fig. 8: the pairwise DNN heat-maps ---------------------------------------

TEST(GoldenFigures, Fig8aAppCountVsLifetime) {
  check_against_golden(
      "fig8a_apps_lifetime",
      heatmap_figure(
          AxisSpec::list(SweepVariable::app_count,
                         {1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16}),
          AxisSpec::linear(SweepVariable::lifetime_years, 0.25, 2.5, 10)));
}

TEST(GoldenFigures, Fig8bVolumeVsLifetime) {
  check_against_golden(
      "fig8b_volume_lifetime",
      heatmap_figure(AxisSpec::log(SweepVariable::volume, 1e4, 1e7, 12),
                     AxisSpec::linear(SweepVariable::lifetime_years, 0.25, 2.5, 10)));
}

TEST(GoldenFigures, Fig8cVolumeVsAppCount) {
  check_against_golden(
      "fig8c_volume_apps",
      heatmap_figure(AxisSpec::log(SweepVariable::volume, 1e4, 1e7, 12),
                     AxisSpec::list(SweepVariable::app_count,
                                    {1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16})));
}

// -- suite hygiene ------------------------------------------------------------

TEST(GoldenFigures, ToleranceTripsOnRealDrift) {
  // The comparator itself must catch a 1e-6 relative drift (far above the
  // 1e-9 gate): guard against a future "tolerance loosened to always-pass".
  io::Json golden = io::Json::object();
  golden["value"] = 1.0;
  io::Json drifted = io::Json::object();
  drifted["value"] = 1.0 + 1e-6;
  std::vector<std::string> errors;
  compare_json(golden, drifted, "probe", errors);
  EXPECT_EQ(errors.size(), 1u);

  io::Json fine = io::Json::object();
  fine["value"] = 1.0 + 1e-12;
  errors.clear();
  compare_json(golden, fine, "probe", errors);
  EXPECT_TRUE(errors.empty());
}

TEST(GoldenFigures, StructuralMismatchesAreReported) {
  io::Json golden = io::Json::object();
  golden["a"] = io::Json::array({1.0, 2.0});
  io::Json actual = io::Json::object();
  actual["a"] = io::Json::array({1.0});
  actual["b"] = "extra";
  std::vector<std::string> errors;
  compare_json(golden, actual, "probe", errors);
  EXPECT_EQ(errors.size(), 2u);  // size mismatch + unexpected key
}

}  // namespace
}  // namespace greenfpga::scenario
