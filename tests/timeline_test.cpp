/// Tests for the Fig. 9 timeline simulator (chip-lifetime replacement).

#include <gtest/gtest.h>

#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "scenario/timeline.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {
namespace {

using namespace units::unit;
using device::Domain;

TimelineSimulator simulator_for(Domain domain) {
  return TimelineSimulator(core::LifecycleModel(core::paper_suite()),
                           device::domain_testcase(domain));
}

TimelineParameters paper_parameters() {
  TimelineParameters p;
  p.horizon = 45.0 * years;
  p.app_lifetime = 1.0 * years;
  p.volume = 1e6;
  p.step = 0.25 * years;
  return p;
}

TEST(Timeline, SeriesCoversHorizon) {
  const TimelineSeries series = simulator_for(Domain::dnn).run(paper_parameters());
  ASSERT_FALSE(series.time_years.empty());
  EXPECT_DOUBLE_EQ(series.time_years.front(), 0.0);
  EXPECT_DOUBLE_EQ(series.time_years.back(), 45.0);
  EXPECT_EQ(series.time_years.size(), series.asic_cumulative_kg.size());
  EXPECT_EQ(series.time_years.size(), series.fpga_cumulative_kg.size());
}

TEST(Timeline, CumulativeSeriesNeverDecrease) {
  const TimelineSeries series = simulator_for(Domain::dnn).run(paper_parameters());
  for (std::size_t i = 1; i < series.time_years.size(); ++i) {
    EXPECT_GE(series.asic_cumulative_kg[i], series.asic_cumulative_kg[i - 1]);
    EXPECT_GE(series.fpga_cumulative_kg[i], series.fpga_cumulative_kg[i - 1]);
  }
}

TEST(Timeline, FpgaFleetRepurchasedEveryFifteenYears) {
  const TimelineSeries series = simulator_for(Domain::dnn).run(paper_parameters());
  // 45-year horizon, 15-year FPGA service life: purchases at 0, 15, 30.
  ASSERT_EQ(series.fpga_purchase_years.size(), 3u);
  EXPECT_DOUBLE_EQ(series.fpga_purchase_years[0], 0.0);
  EXPECT_DOUBLE_EQ(series.fpga_purchase_years[1], 15.0);
  EXPECT_DOUBLE_EQ(series.fpga_purchase_years[2], 30.0);
}

TEST(Timeline, FpgaJumpsAtServiceLifeBoundaries) {
  const TimelineSeries series = simulator_for(Domain::dnn).run(paper_parameters());
  // Find samples just before and at year 15: the FPGA step must exceed the
  // typical between-year step (operation + appdev) by the fleet embodied.
  const auto at = [&](double year) {
    for (std::size_t i = 0; i < series.time_years.size(); ++i) {
      if (series.time_years[i] >= year - 1e-9) return i;
    }
    return series.time_years.size() - 1;
  };
  const double jump_15 =
      series.fpga_cumulative_kg[at(15.0)] - series.fpga_cumulative_kg[at(15.0) - 1];
  const double step_14 =
      series.fpga_cumulative_kg[at(14.0)] - series.fpga_cumulative_kg[at(14.0) - 1];
  EXPECT_GT(jump_15, 10.0 * step_14)
      << "fleet re-purchase at year 15 must dominate a routine quarter";
}

TEST(Timeline, AsicStaircaseHasNoFifteenYearJump) {
  // ASIC chips are re-manufactured every application (yearly) anyway, so
  // year 15 looks like any other year.
  const TimelineSeries series = simulator_for(Domain::dnn).run(paper_parameters());
  std::vector<double> yearly_steps;
  for (double year = 1.0; year <= 45.0; year += 1.0) {
    const auto index = static_cast<std::size_t>(year / 0.25);
    yearly_steps.push_back(series.asic_cumulative_kg[index] -
                           series.asic_cumulative_kg[index - 4]);
  }
  const double year15 = yearly_steps[14];
  const double year14 = yearly_steps[13];
  EXPECT_NEAR(year15 / year14, 1.0, 0.01);
}

TEST(Timeline, ShortHorizonHasSinglePurchase) {
  TimelineParameters p = paper_parameters();
  p.horizon = 10.0 * years;
  const TimelineSeries series = simulator_for(Domain::dnn).run(p);
  EXPECT_EQ(series.fpga_purchase_years.size(), 1u);
}

TEST(Timeline, OneYearAppsFavourFpgaForDnn) {
  // Fig. 9 story: with 1-year applications, DNN FPGAs stay below ASICs
  // even across fleet replacements.
  const TimelineSeries series = simulator_for(Domain::dnn).run(paper_parameters());
  EXPECT_LT(series.fpga_cumulative_kg.back(), series.asic_cumulative_kg.back());
}

TEST(Timeline, ImgprocSeesMultipleCrossovers) {
  // Fig. 9 (ImgProc): the 15/30-year jumps produce repeated A2F/F2A flips.
  const TimelineSeries series = simulator_for(Domain::imgproc).run(paper_parameters());
  const auto crossovers = series.crossovers();
  EXPECT_GE(crossovers.size(), 2u)
      << "paper reports multiple A2F and F2A crossovers for ImgProc";
}

TEST(Timeline, CryptoFpgaAlwaysBelow) {
  const TimelineSeries series = simulator_for(Domain::crypto).run(paper_parameters());
  for (std::size_t i = 1; i < series.time_years.size(); ++i) {
    EXPECT_LT(series.fpga_cumulative_kg[i], series.asic_cumulative_kg[i])
        << "at year " << series.time_years[i];
  }
}

TEST(Timeline, InvalidParametersThrow) {
  TimelineParameters p = paper_parameters();
  p.horizon = units::TimeSpan{};
  EXPECT_THROW(simulator_for(Domain::dnn).run(p), std::invalid_argument);
  p = paper_parameters();
  p.volume = 0.0;
  EXPECT_THROW(simulator_for(Domain::dnn).run(p), std::invalid_argument);
  p = paper_parameters();
  p.step = units::TimeSpan{-1.0};
  EXPECT_THROW(simulator_for(Domain::dnn).run(p), std::invalid_argument);
}

}  // namespace
}  // namespace greenfpga::scenario
