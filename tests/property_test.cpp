/// Cross-module property tests: conservation, scaling and invariance laws
/// that any correct implementation of Eqs. (1)-(7) must satisfy,
/// parameterised over domains, volumes and model knobs.

#include <gtest/gtest.h>

#include "core/comparator.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "scenario/sweep.hpp"
#include "units/units.hpp"

namespace greenfpga {
namespace {

using namespace units::unit;
using core::CfpBreakdown;
using core::LifecycleModel;
using core::ModelSuite;
using device::Domain;

constexpr double kTolerance = 1e-9;

double relative_difference(double a, double b) {
  return std::fabs(a - b) / std::max(std::fabs(a), std::fabs(b));
}

// ---------------------------------------------------------------------------
// Conservation: component sums equal totals everywhere.
// ---------------------------------------------------------------------------

class DomainProperty : public ::testing::TestWithParam<Domain> {
 protected:
  LifecycleModel model_{core::paper_suite()};
  device::DomainTestcase testcase_ = device::domain_testcase(GetParam());
};

TEST_P(DomainProperty, BreakdownComponentsSumToTotal) {
  for (const device::ChipSpec* chip : {&testcase_.asic, &testcase_.fpga}) {
    const auto result = model_.evaluate(*chip, core::paper_schedule(GetParam()));
    const CfpBreakdown& b = result.total;
    const double component_sum = b.design.canonical() + b.manufacturing.canonical() +
                                 b.packaging.canonical() + b.eol.canonical() +
                                 b.operational.canonical() + b.app_dev.canonical();
    EXPECT_LT(relative_difference(component_sum, b.total().canonical()), kTolerance)
        << chip->name;
    EXPECT_LT(relative_difference(b.embodied().canonical() + b.deployment().canonical(),
                                  b.total().canonical()),
              kTolerance);
  }
}

TEST_P(DomainProperty, PerApplicationAttributionsConserveTotals) {
  for (const device::ChipSpec* chip : {&testcase_.asic, &testcase_.fpga}) {
    const auto result = model_.evaluate(*chip, core::paper_schedule(GetParam()));
    CfpBreakdown accumulated;
    for (const core::ApplicationCfp& app : result.per_application) {
      accumulated += app.cfp;
    }
    // FPGA platforms keep embodied carbon outside the per-app attribution;
    // deployment carbon must still be conserved exactly.
    EXPECT_LT(relative_difference(accumulated.deployment().canonical(),
                                  result.total.deployment().canonical()),
              kTolerance)
        << chip->name;
  }
}

// ---------------------------------------------------------------------------
// Scaling laws.
// ---------------------------------------------------------------------------

TEST_P(DomainProperty, SiliconAndOperationScaleWithVolumeDesignDoesNot) {
  const workload::Schedule small = core::paper_schedule(GetParam(), 3, 2.0 * years, 1e5);
  const workload::Schedule large = core::paper_schedule(GetParam(), 3, 2.0 * years, 5e5);
  for (const device::ChipSpec* chip : {&testcase_.asic, &testcase_.fpga}) {
    const auto at_small = model_.evaluate(*chip, small).total;
    const auto at_large = model_.evaluate(*chip, large).total;
    EXPECT_LT(relative_difference(at_large.manufacturing.canonical(),
                                  5.0 * at_small.manufacturing.canonical()),
              1e-6)
        << chip->name;
    EXPECT_LT(relative_difference(at_large.operational.canonical(),
                                  5.0 * at_small.operational.canonical()),
              1e-6);
    EXPECT_DOUBLE_EQ(at_large.design.canonical(), at_small.design.canonical())
        << "design CFP is volume-independent";
  }
}

TEST_P(DomainProperty, OperationalLinearInLifetime) {
  const auto once = model_.evaluate(testcase_.fpga,
                                    core::paper_schedule(GetParam(), 4, 1.0 * years, 1e6));
  const auto twice = model_.evaluate(testcase_.fpga,
                                     core::paper_schedule(GetParam(), 4, 2.0 * years, 1e6));
  EXPECT_LT(relative_difference(twice.total.operational.canonical(),
                                2.0 * once.total.operational.canonical()),
            1e-9);
  // Embodied carbon does not change with lifetime.
  EXPECT_DOUBLE_EQ(twice.total.embodied().canonical(), once.total.embodied().canonical());
}

TEST_P(DomainProperty, TotalsMonotoneInEveryLoad) {
  const scenario::SweepEngine engine(model_, testcase_);
  // More applications never reduce either platform's total.
  const auto by_apps = engine.sweep_app_count(1, 6, 2.0 * years, 1e6);
  for (std::size_t i = 1; i < by_apps.x.size(); ++i) {
    EXPECT_GT(by_apps.asic[i].total(), by_apps.asic[i - 1].total());
    EXPECT_GT(by_apps.fpga[i].total(), by_apps.fpga[i - 1].total());
  }
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DomainProperty,
                         ::testing::Values(Domain::dnn, Domain::imgproc, Domain::crypto));

// ---------------------------------------------------------------------------
// Invariances and knob directions.
// ---------------------------------------------------------------------------

TEST(KnobProperty, DutyCycleOnlyTouchesOperational) {
  ModelSuite busy = core::paper_suite();
  busy.operation.duty_cycle = 0.4;
  const auto schedule = core::paper_schedule(Domain::dnn);
  const auto testcase = device::domain_testcase(Domain::dnn);
  const auto base = LifecycleModel(core::paper_suite()).evaluate_fpga(testcase.fpga, schedule);
  const auto loaded = LifecycleModel(busy).evaluate_fpga(testcase.fpga, schedule);
  EXPECT_DOUBLE_EQ(loaded.total.embodied().canonical(), base.total.embodied().canonical());
  EXPECT_DOUBLE_EQ(loaded.total.app_dev.canonical(), base.total.app_dev.canonical());
  // 0.4 / 0.02 = 20x operational carbon.
  EXPECT_LT(relative_difference(loaded.total.operational.canonical(),
                                20.0 * base.total.operational.canonical()),
            1e-9);
}

TEST(KnobProperty, UseIntensityScalesOperationalLinearly) {
  const auto schedule = core::paper_schedule(Domain::crypto);
  const auto testcase = device::domain_testcase(Domain::crypto);
  ModelSuite greener = core::paper_suite();
  greener.operation.use_intensity = greener.operation.use_intensity * 0.5;
  const auto base =
      LifecycleModel(core::paper_suite()).evaluate_asic(testcase.asic, schedule);
  const auto green = LifecycleModel(greener).evaluate_asic(testcase.asic, schedule);
  EXPECT_LT(relative_difference(green.total.operational.canonical(),
                                0.5 * base.total.operational.canonical()),
            1e-9);
}

TEST(KnobProperty, FabIntensityTouchesManufacturingOnly) {
  ModelSuite coal = core::paper_suite();
  coal.fab.fab_energy_intensity = act::source_intensity(act::EnergySource::coal);
  const auto testcase = device::domain_testcase(Domain::dnn);
  const auto base = LifecycleModel(core::paper_suite()).per_chip_embodied(testcase.fpga);
  const auto dirty = LifecycleModel(coal).per_chip_embodied(testcase.fpga);
  EXPECT_GT(dirty.manufacturing, base.manufacturing);
  EXPECT_DOUBLE_EQ(dirty.packaging.canonical(), base.packaging.canonical());
  EXPECT_DOUBLE_EQ(dirty.eol.canonical(), base.eol.canonical());
}

TEST(KnobProperty, RecycledSourcingNeverHurtsEitherPlatform) {
  const auto schedule = core::paper_schedule(Domain::imgproc);
  const auto testcase = device::domain_testcase(Domain::imgproc);
  double previous_asic = std::numeric_limits<double>::infinity();
  double previous_fpga = std::numeric_limits<double>::infinity();
  for (const double rho : {0.0, 0.5, 1.0}) {
    ModelSuite suite = core::paper_suite();
    suite.fab.recycled_material_fraction = rho;
    const auto comparison = core::compare(LifecycleModel(suite), testcase, schedule);
    EXPECT_LT(comparison.asic.total.total().canonical(), previous_asic);
    EXPECT_LT(comparison.fpga.total.total().canonical(), previous_fpga);
    previous_asic = comparison.asic.total.total().canonical();
    previous_fpga = comparison.fpga.total.total().canonical();
  }
}

TEST(KnobProperty, CryptoVerdictRobustAcrossYieldModels) {
  // With identical silicon, no yield model can make the crypto FPGA lose.
  for (const tech::YieldModel yield_model :
       {tech::YieldModel::poisson, tech::YieldModel::murphy, tech::YieldModel::seeds,
        tech::YieldModel::negative_binomial}) {
    ModelSuite suite = core::paper_suite();
    suite.fab.yield.model = yield_model;
    const auto comparison =
        core::compare(LifecycleModel(suite), device::domain_testcase(Domain::crypto),
                      core::paper_schedule(Domain::crypto));
    EXPECT_LT(comparison.ratio(), 1.0) << to_string(yield_model);
  }
}

TEST(KnobProperty, FpgaNeverBeatsAsicOnSingleEternalApplication) {
  // One application, long lifetime: reconfigurability buys nothing, the
  // FPGA pays more silicon and more power -- the ASIC must win in every
  // domain with asymmetric ratios.
  const LifecycleModel model{core::paper_suite()};
  for (const Domain domain : {Domain::dnn, Domain::imgproc}) {
    const auto comparison =
        core::compare(model, device::domain_testcase(domain),
                      core::paper_schedule(domain, 1, 8.0 * years, 1e6));
    EXPECT_GT(comparison.ratio(), 1.0) << to_string(domain);
  }
}

// ---------------------------------------------------------------------------
// N_FPGA (multi-chip) laws.
// ---------------------------------------------------------------------------

class MultiChipProperty : public ::testing::TestWithParam<int> {};

TEST_P(MultiChipProperty, FpgaCountScalesSiliconAndPower) {
  const int n_fpga = GetParam();
  const LifecycleModel model{core::paper_suite()};
  const device::ChipSpec fpga = device::industry_fpga1();

  workload::Application app;
  app.name = "scaled-app";
  app.lifetime = 2.0 * years;
  app.volume = 1e4;
  app.size_gates = fpga.capacity_gates * (static_cast<double>(n_fpga) - 0.5);
  const auto result = model.evaluate_fpga(fpga, {app});

  ASSERT_EQ(result.per_application[0].chips_per_unit, n_fpga);
  EXPECT_DOUBLE_EQ(result.chips_manufactured, 1e4 * n_fpga);

  // Against a single-chip deployment, silicon and operation scale by
  // exactly N_FPGA.
  workload::Application single = app;
  single.size_gates = fpga.capacity_gates * 0.5;
  const auto baseline = model.evaluate_fpga(fpga, {single});
  EXPECT_LT(relative_difference(result.total.manufacturing.canonical(),
                                n_fpga * baseline.total.manufacturing.canonical()),
            1e-9);
  EXPECT_LT(relative_difference(result.total.operational.canonical(),
                                n_fpga * baseline.total.operational.canonical()),
            1e-9);
  // Design carbon does not scale: it is the same FPGA product.
  EXPECT_DOUBLE_EQ(result.total.design.canonical(), baseline.total.design.canonical());
}

INSTANTIATE_TEST_SUITE_P(Counts, MultiChipProperty, ::testing::Values(1, 2, 3, 5, 8));

// ---------------------------------------------------------------------------
// Comparator symmetry.
// ---------------------------------------------------------------------------

TEST(ComparatorProperty, RatioInvertsWhenPlatformsAreMirrored) {
  // Evaluating (asic, fpga) and reading the ratio must equal 1 / ratio of
  // the totals read the other way around.
  const LifecycleModel model{core::paper_suite()};
  const auto testcase = device::domain_testcase(Domain::dnn);
  const auto schedule = core::paper_schedule(Domain::dnn);
  const auto comparison = core::compare(model, testcase, schedule);
  const double forward = comparison.ratio();
  const double backward = comparison.asic.total.total().canonical() /
                          comparison.fpga.total.total().canonical();
  EXPECT_LT(relative_difference(forward, 1.0 / backward), kTolerance);
}

}  // namespace
}  // namespace greenfpga
