/// Example: planning a DNN edge-accelerator fleet.
///
/// A product team ships an edge inference accelerator into ~1M consumer
/// devices.  Models are retrained and re-architected often, so the
/// silicon is expected to be re-targeted every 18 months.  Should the
/// team tape out ASICs per generation, or deploy a reconfigurable FPGA
/// fleet?
///
/// The program walks the decision the way the paper does: sweep the
/// model-generation lifetime, sweep the fleet size, find the crossovers,
/// then inspect the component breakdown at the chosen operating point.

#include <iostream>

#include "core/comparator.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "report/ascii_chart.hpp"
#include "report/figure_writer.hpp"
#include "scenario/sweep.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

int main() {
  using namespace greenfpga;
  using namespace units::unit;

  const core::LifecycleModel model(core::paper_suite());
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  const scenario::SweepEngine engine(model, testcase);

  std::cout << "DNN edge fleet planning\n"
            << "=======================\n"
            << "device pair: " << testcase.asic.name << " ("
            << units::format_area(testcase.asic.die_area) << ", "
            << units::format_power(testcase.asic.peak_power) << ")  vs  "
            << testcase.fpga.name << " ("
            << units::format_area(testcase.fpga.die_area) << ", "
            << units::format_power(testcase.fpga.peak_power) << ")\n\n";

  // Question 1: how short do model generations have to be before the FPGA
  // wins?  (Five generations planned, 1M units.)
  const std::vector<double> lifetimes = scenario::linspace(0.5, 3.0, 11);
  const scenario::SweepSeries lifetime_sweep = engine.sweep_lifetime(lifetimes, 5, 1e6);
  std::cout << "Q1: CFP vs model-generation lifetime (5 generations, 1M units)\n"
            << report::sweep_table(lifetime_sweep)
            << "    " << report::crossover_summary(lifetime_sweep) << "\n\n";

  // Question 2: at an 18-month cadence, how many generations until the
  // FPGA fleet pays back its embodied premium?
  const scenario::SweepSeries generation_sweep =
      engine.sweep_app_count(1, 10, 1.5 * years, 1e6);
  std::cout << "Q2: CFP vs number of generations (18-month cadence, 1M units)\n"
            << report::sweep_table(generation_sweep)
            << "    " << report::crossover_summary(generation_sweep) << "\n\n";

  // Question 3: does the answer survive a bigger fleet?
  const std::vector<double> volumes = scenario::logspace(1e4, 1e7, 13);
  const scenario::SweepSeries volume_sweep = engine.sweep_volume(volumes, 5, 1.5 * years);
  std::cout << "Q3: CFP vs fleet size (5 generations, 18-month cadence)\n"
            << report::sweep_table(volume_sweep)
            << "    " << report::crossover_summary(volume_sweep) << "\n\n";

  // Operating point: 5 generations x 18 months x 1M units.
  const core::Comparison decision = engine.evaluate_point(5, 1.5 * years, 1e6);
  const std::vector<std::pair<std::string, core::CfpBreakdown>> platforms{
      {"ASIC path", decision.asic.total},
      {"FPGA path", decision.fpga.total},
  };
  std::cout << "Decision point: 5 generations, 18 months each, 1M units\n"
            << report::breakdown_table(platforms)
            << "verdict: " << to_string(decision.verdict()) << " (ratio "
            << units::format_significant(decision.ratio(), 3) << ")\n\n"
            << "Reading: the ASIC path re-pays design + silicon every generation;\n"
            << "the FPGA path pays embodied carbon once and ~3x operating power.\n"
            << "At an 18-month cadence the FPGA fleet is the greener choice.\n";
  return 0;
}
