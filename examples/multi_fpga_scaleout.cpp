/// Example: iso-performance beyond one FPGA -- the N_FPGA rule.
///
/// The paper's Eq. (3) footnote: some applications need a reticle-limit
/// ASIC whose performance no single FPGA matches, so iso-performance
/// requires N_FPGA = ceil(app_size / FPGA_capacity) devices per deployed
/// unit.  This example sizes a large 5G baseband ASIC, deploys it against
/// Stratix-class FPGAs (1, 2, 3, ... per unit as the application grows),
/// and shows how the multi-chip penalty eats the reconfigurability
/// advantage.

#include <iostream>

#include "core/comparator.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "device/iso_performance.hpp"
#include "io/table.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

int main() {
  using namespace greenfpga;
  using namespace units::unit;

  const core::LifecycleModel model(core::paper_suite());
  const device::ChipSpec fpga = device::industry_fpga2();  // Stratix 10-class

  // A large fixed-function baseband ASIC: near-reticle 10 nm die.
  device::ChipSpec asic;
  asic.name = "baseband-asic-10nm";
  asic.kind = device::ChipKind::asic;
  asic.node = tech::ProcessNode::n10;
  asic.die_area = 700.0 * mm2;
  asic.peak_power = 18.0 * w;
  asic.capacity_gates = tech::node_info(asic.node).gates_in_area(asic.die_area);
  asic.service_life = 8.0 * years;

  std::cout << "Multi-FPGA iso-performance (the N_FPGA rule)\n"
            << "============================================\n"
            << "ASIC: " << asic.name << ", " << units::format_area(asic.die_area) << ", "
            << units::format_power(asic.peak_power) << "\n"
            << "FPGA: " << fpga.name << ", capacity "
            << units::format_significant(fpga.capacity_gates / 1e6, 4)
            << " Mgates per device\n\n";

  io::TextTable table;
  table.set_headers({"app size [Mgates]", "N_FPGA", "ASIC total [t]", "FPGA total [t]",
                     "FPGA:ASIC", "greener"});

  // Sweep the application size from half a device to several devices,
  // with 4 applications x 2 years at 50K units.
  for (const double fraction : {0.5, 1.0, 1.5, 2.5, 4.0, 6.0}) {
    workload::Application app;
    app.name = "baseband-rev";
    app.lifetime = 2.0 * years;
    app.volume = 5e4;
    app.size_gates = fpga.capacity_gates * fraction;
    const workload::Schedule schedule = workload::homogeneous_schedule(4, app);

    const auto asic_result = model.evaluate_asic(asic, schedule);
    const auto fpga_result = model.evaluate_fpga(fpga, schedule);
    const double ratio =
        fpga_result.total.total().canonical() / asic_result.total.total().canonical();
    table.add_row({units::format_significant(app.size_gates / 1e6, 4),
                   std::to_string(device::chips_per_unit(fpga, app.size_gates)),
                   units::format_significant(asic_result.total.total().in(t_co2e), 5),
                   units::format_significant(fpga_result.total.total().in(t_co2e), 5),
                   units::format_significant(ratio, 3), ratio < 1.0 ? "FPGA" : "ASIC"});
  }
  std::cout << table.render() << "\n"
            << "Reading: each extra FPGA per unit multiplies silicon, packaging and\n"
            << "power; reconfigurability keeps winning only while the application\n"
            << "still fits a small number of devices.\n";
  return 0;
}
