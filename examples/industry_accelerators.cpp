/// Example: datacenter accelerators -- the Table 3 industry devices.
///
/// Evaluates the four industry testcases (Moffett Antoum-, TPU-,
/// Agilex 7- and Stratix 10-class chips) under the datacenter parameter
/// suite, reproducing the Figs. 10-11 component stacks, then asks the
/// fleet-planning question the paper motivates: over six years of fast-
/// moving ML workloads, how does a reprogrammed FPGA fleet compare with
/// successive ASIC generations *of the same silicon class*?

#include <iostream>

#include "core/comparator.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "io/table.hpp"
#include "report/figure_writer.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

int main() {
  using namespace greenfpga;
  using namespace units::unit;

  const core::LifecycleModel model(core::industry_suite());

  // Part 1: the paper's Figs. 10-11 setup.
  workload::Application fpga_app;
  fpga_app.name = "ml-workload";
  fpga_app.lifetime = 2.0 * years;
  fpga_app.volume = 1e6;
  const workload::Schedule fpga_schedule = workload::homogeneous_schedule(3, fpga_app);

  workload::Application asic_app;
  asic_app.name = "ml-workload";
  asic_app.lifetime = 6.0 * years;
  asic_app.volume = 1e6;
  const workload::Schedule asic_schedule{asic_app};

  std::vector<std::pair<std::string, core::CfpBreakdown>> rows;
  for (const device::ChipSpec& fpga : {device::industry_fpga1(), device::industry_fpga2()}) {
    rows.emplace_back(fpga.name, model.evaluate_fpga(fpga, fpga_schedule).total);
  }
  for (const device::ChipSpec& asic : {device::industry_asic1(), device::industry_asic2()}) {
    rows.emplace_back(asic.name, model.evaluate_asic(asic, asic_schedule).total);
  }
  std::cout << "Industry accelerators, 6 years of service at 1M units\n"
            << "(FPGAs reprogrammed across 3 workloads; ASICs serve one workload):\n\n"
            << report::breakdown_table(rows) << "\n";

  // Part 2: workload churn.  Suppose the ML workload actually changes
  // every two years and the ASIC platform must tape out a successor each
  // time (same silicon class), while the FPGA is reconfigured.
  workload::Application churn;
  churn.name = "ml-generation";
  churn.lifetime = 2.0 * years;
  churn.volume = 1e6;
  const workload::Schedule churn_schedule = workload::homogeneous_schedule(3, churn);

  io::TextTable table;
  table.set_headers({"platform pair", "ASIC path [kt]", "FPGA path [kt]", "FPGA:ASIC"});
  struct Pair {
    device::ChipSpec asic;
    device::ChipSpec fpga;
  };
  for (const Pair& pair : {Pair{device::industry_asic1(), device::industry_fpga1()},
                           Pair{device::industry_asic2(), device::industry_fpga2()}}) {
    const auto asic_path = model.evaluate_asic(pair.asic, churn_schedule);
    const auto fpga_path = model.evaluate_fpga(pair.fpga, churn_schedule);
    const double ratio =
        fpga_path.total.total().canonical() / asic_path.total.total().canonical();
    table.add_row({pair.asic.name + " vs " + pair.fpga.name,
                   units::format_significant(asic_path.total.total().in(kt_co2e), 4),
                   units::format_significant(fpga_path.total.total().in(kt_co2e), 4),
                   units::format_significant(ratio, 3)});
  }
  std::cout << "with 2-year workload churn (3 generations, ASIC re-taped each time):\n"
            << table.render() << "\n"
            << "Reading: in the datacenter regime operational carbon dominates, so\n"
            << "the FPGA's power overhead matters more than its embodied savings --\n"
            << "reconfigurability pays only when the power gap is small or the\n"
            << "workload churns faster than silicon can be re-taped.\n";
  return 0;
}
