/// Quickstart: the smallest useful GreenFPGA program.
///
/// Builds the calibrated paper model, asks one question -- "is an FPGA or
/// an ASIC greener for five DNN applications of two years each at a
/// million units?" -- and prints the component breakdown behind the
/// verdict.
///
/// Build & run:
///   cmake -B build -S . && cmake --build build -j
///   ./build/example_quickstart

#include <iostream>

#include "core/comparator.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "report/figure_writer.hpp"
#include "units/format.hpp"

int main() {
  using namespace greenfpga;

  // 1. A model: every sub-model (design, fab, packaging, EOL, operation,
  //    app-dev) bundled behind one evaluator.  paper_suite() is the
  //    calibrated configuration from the DAC'24 paper; every field can be
  //    edited before constructing the LifecycleModel.
  const core::LifecycleModel model(core::paper_suite());

  // 2. A device pair: the built-in DNN testcase pairs a 10 nm edge ASIC
  //    with its iso-performance FPGA (Table 2 ratios: 4x area, 3x power).
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);

  // 3. A workload: five sequential applications, two years each, a
  //    million deployed units.
  const workload::Schedule schedule = core::paper_schedule(device::Domain::dnn);

  // 4. Evaluate both platforms (Eq. 1 for the ASIC, Eq. 2 for the FPGA).
  const core::Comparison comparison = core::compare(model, testcase, schedule);

  const std::vector<std::pair<std::string, core::CfpBreakdown>> platforms{
      {"ASIC (new chip per app)", comparison.asic.total},
      {"FPGA (reconfigured)", comparison.fpga.total},
  };
  std::cout << "Five 2-year DNN applications, 1M units, at iso-performance:\n\n"
            << report::breakdown_table(platforms) << "\n"
            << "FPGA:ASIC carbon ratio: "
            << units::format_significant(comparison.ratio(), 3) << "\n"
            << "Greener platform:       " << to_string(comparison.verdict()) << "\n\n"
            << "Try editing the schedule: with 7 applications the FPGA wins, with 3\n"
            << "the ASIC does (the paper's Fig. 4 crossover sits near 5-6).\n";
  return 0;
}
