/// \file custom_scenario.cpp
/// Authoring scenarios against the unified engine API.
///
/// Demonstrates the three layers of the new evaluation surface:
///   1. a declarative `ScenarioSpec` built in code (the same shape
///      `greenfpga run <spec.json>` loads from disk),
///   2. a custom platform registered by name in a `PlatformRegistry`
///      (here: a hypothetical chiplet-era FPGA on a newer node),
///   3. `Engine::run` with an explicit thread count, and the JSON
///      round-trip used to persist the spec for later runs.
///
/// Build target: example_custom_scenario.

#include <iostream>

#include "greenfpga.hpp"

int main() {
  using namespace greenfpga;

  // 1. A declarative sweep: how does the verdict move with N_app when the
  //    deployment only ships 200k units?
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::sweep, device::Domain::dnn);
  spec.name = "dnn sweep at 200k units";
  spec.schedule.volume = 2e5;
  spec.axes = {
      scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 12, 12)};

  // 2. A custom platform, registered by name: the DNN FPGA retargeted to
  //    5 nm (scenario::retarget_to_node applies the documented first-order
  //    area/power scaling rules).  Any spec naming "fpga-5nm" now resolves
  //    to it -- no engine changes required.
  device::PlatformRegistry registry = device::PlatformRegistry::with_builtins();
  registry.add("fpga-5nm", [](device::Domain domain) {
    return scenario::retarget_to_node(device::domain_testcase(domain).fpga,
                                      tech::ProcessNode::n5);
  });
  spec.platforms = {scenario::PlatformRef{.name = "asic"},
                    scenario::PlatformRef{.name = "fpga"},
                    scenario::PlatformRef{.name = "fpga-5nm"}};

  // 3. Run it.  Grid/sweep points execute in parallel; results are
  //    bit-identical for any thread count.
  const scenario::Engine engine(
      scenario::EngineOptions{.threads = 4, .registry = &registry});
  const scenario::ScenarioResult result = engine.run(spec);

  std::cout << "== " << result.spec.name << " ==\n";
  std::cout << "point  " << result.platform_names[0] << " [t]   "
            << result.platform_names[1] << " [t]   " << result.platform_names[2]
            << " [t]\n";
  for (const scenario::EvalPoint& point : result.points) {
    std::cout << point.coords[0];
    for (std::size_t i = 0; i < point.platforms.size(); ++i) {
      std::cout << "\t"
                << units::format_significant(
                       point.platforms[i].total.total().in(units::unit::t_co2e), 5);
    }
    std::cout << "\n";
  }

  // The 5 nm retarget beats the 10 nm FPGA on both embodied and
  // operational carbon, so its curve sits strictly below.
  const double last_fpga = result.points.back().ratio(1);
  const double last_5nm = result.points.back().ratio(2);
  std::cout << "\nat N_app = 12: fpga:asic " << units::format_significant(last_fpga, 4)
            << ", fpga-5nm:asic " << units::format_significant(last_5nm, 4) << "\n";

  // Persist the spec: the JSON written here loads back byte-identically
  // with `greenfpga run` (platform names resolve against the *builtin*
  // registry there, so ship custom chips inline via the "chip" field).
  std::cout << "\nspec JSON:\n" << scenario::spec_to_json(spec).dump() << "\n";
  return 0;
}
