/// Example: a cryptographic network appliance with a long service life.
///
/// Crypto is the paper's degenerate-but-instructive domain: FPGA and ASIC
/// implementations have essentially equal area and power at
/// iso-performance (Table 2: 1x / 1x), so the FPGA's only cost is
/// application development while the ASIC re-pays design per algorithm
/// change.  This example models a security appliance that must rotate
/// cipher suites (think post-quantum migrations) over a 15-year box
/// lifetime, and stresses the end-of-life levers: what does aggressive
/// recycling do to the verdict?

#include <iostream>

#include "core/comparator.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "io/table.hpp"
#include "report/figure_writer.hpp"
#include "scenario/timeline.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

int main() {
  using namespace greenfpga;
  using namespace units::unit;

  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::crypto);

  std::cout << "Crypto appliance: algorithm agility over a 15-year box life\n"
            << "===========================================================\n\n";

  // 45-year view with 3-year algorithm rotations: the appliance fleet is
  // re-bought every 15 years either way; the ASIC path additionally
  // re-designs silicon per rotation.
  const scenario::TimelineSimulator simulator(core::LifecycleModel(core::paper_suite()),
                                              testcase);
  scenario::TimelineParameters params;
  params.horizon = 45.0 * years;
  params.app_lifetime = 3.0 * years;
  params.volume = 2e5;  // 200K appliances -- a niche, low-volume product
  params.step = 0.5 * years;
  const scenario::TimelineSeries series = simulator.run(params);

  io::TextTable table;
  table.set_headers({"year", "ASIC cumulative", "FPGA cumulative", "FPGA saves"});
  for (double year = 5.0; year <= 45.0; year += 10.0) {
    const auto index = static_cast<std::size_t>(year / 0.5);
    const double asic = series.asic_cumulative_kg[index];
    const double fpga = series.fpga_cumulative_kg[index];
    table.add_row({units::format_significant(year, 3),
                   units::format_carbon(units::CarbonMass{asic}),
                   units::format_carbon(units::CarbonMass{fpga}),
                   units::format_significant(100.0 * (1.0 - fpga / asic), 3) + " %"});
  }
  std::cout << "cumulative CFP, 3-year cipher rotations, 200K units:\n" << table.render()
            << "\n";

  // End-of-life policy study: sweep the recycled fraction delta and the
  // fab's recycled-material sourcing rho together ("circular" program).
  io::TextTable policy;
  policy.set_headers(
      {"policy", "rho", "delta", "FPGA embodied/unit", "FPGA EOL/unit", "FPGA total [t]"});
  struct Policy {
    const char* name;
    double rho;
    double delta;
  };
  const workload::Schedule schedule = core::paper_schedule(device::Domain::crypto, 5,
                                                           3.0 * years, params.volume);
  for (const Policy& p : {Policy{"landfill-everything", 0.0, 0.0},
                          Policy{"status quo", 0.0, 0.2},
                          Policy{"takeback program", 0.5, 0.6},
                          Policy{"full circular", 1.0, 0.95}}) {
    core::ModelSuite suite = core::paper_suite();
    suite.fab.recycled_material_fraction = p.rho;
    suite.eol.recycled_fraction = p.delta;
    const core::LifecycleModel model(suite);
    const core::CfpBreakdown per_chip = model.per_chip_embodied(testcase.fpga);
    const core::PlatformCfp fpga = model.evaluate_fpga(testcase.fpga, schedule);
    policy.add_row({p.name, units::format_significant(p.rho, 2),
                    units::format_significant(p.delta, 2),
                    units::format_carbon(per_chip.total()),
                    units::format_carbon(per_chip.eol),
                    units::format_significant(fpga.total.total().in(t_co2e), 5)});
  }
  std::cout << "end-of-life policy study (Eqs. 5-6 levers):\n" << policy.render() << "\n";

  std::cout << "Reading: with matched silicon, the FPGA appliance wins from the first\n"
            << "algorithm rotation and aggressive recycling turns end-of-life into a\n"
            << "net carbon credit on top.\n";
  return 0;
}
