/// Example: generating a machine-readable sustainability report.
///
/// Drives the library the way a CI job or web service would: build a
/// scenario programmatically (or load one from JSON), evaluate it,
/// quantify input uncertainty with the Table 1 Monte-Carlo machinery, and
/// emit a single JSON document with the verdict, the component breakdown,
/// the tornado ranking and the confidence band.
///
/// Pass an output path as argv[1] (default: sustainability_report.json).

#include <iostream>

#include "core/comparator.hpp"
#include "core/config_io.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "io/json.hpp"
#include "scenario/sensitivity.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

int main(int argc, char** argv) {
  using namespace greenfpga;
  using namespace units::unit;

  const std::string output = argc > 1 ? argv[1] : "sustainability_report.json";

  // A custom device pair, built through the public spec types rather than
  // the catalog: a 7 nm video-analytics ASIC against a same-node FPGA.
  device::ChipSpec asic;
  asic.name = "video-asic-7nm";
  asic.kind = device::ChipKind::asic;
  asic.node = tech::ProcessNode::n7;
  asic.die_area = 120.0 * mm2;
  asic.peak_power = 3.0 * w;
  asic.capacity_gates = tech::node_info(asic.node).gates_in_area(asic.die_area);
  asic.service_life = 8.0 * years;
  const device::ChipSpec fpga = derive_iso_fpga(asic, device::Domain::imgproc);

  device::DomainTestcase testcase;
  testcase.domain = device::Domain::imgproc;
  testcase.asic = asic;
  testcase.fpga = fpga;

  workload::Application app;
  app.name = "video-pipeline";
  app.domain = device::Domain::imgproc;
  app.lifetime = 1.5 * years;
  app.volume = 5e4;  // 50K units: low-volume industrial product
  const workload::Schedule schedule = workload::homogeneous_schedule(6, app);

  const core::ModelSuite suite = core::paper_suite();
  const core::LifecycleModel model(suite);
  const core::Comparison comparison = core::compare(model, testcase, schedule);

  // Uncertainty: the Table 1 ranges, 512 samples.
  const auto ranges = scenario::table1_ranges();
  const auto mc = scenario::monte_carlo(suite, testcase, schedule, ranges, 512, 2024);
  const auto tornado = scenario::tornado(suite, testcase, schedule, ranges);

  io::Json report = io::Json::object();
  report["scenario"] = "video analytics, 6 pipelines x 18 months, 50K units";
  report["suite"] = core::to_json(suite);
  report["asic"] = core::to_json(comparison.asic);
  report["fpga"] = core::to_json(comparison.fpga);
  report["ratio"] = comparison.ratio();
  report["greener"] = to_string(comparison.verdict());

  io::Json uncertainty = io::Json::object();
  uncertainty["samples"] = mc.samples;
  uncertainty["ratio_mean"] = mc.mean;
  uncertainty["ratio_p05"] = mc.p05;
  uncertainty["ratio_p95"] = mc.p95;
  uncertainty["fpga_win_fraction"] = mc.fpga_win_fraction;
  report["uncertainty"] = std::move(uncertainty);

  io::Json drivers = io::Json::array();
  for (std::size_t i = 0; i < 3 && i < tornado.size(); ++i) {
    io::Json driver = io::Json::object();
    driver["parameter"] = tornado[i].name;
    driver["ratio_at_low"] = tornado[i].ratio_at_low;
    driver["ratio_at_high"] = tornado[i].ratio_at_high;
    drivers.push_back(std::move(driver));
  }
  report["top_drivers"] = std::move(drivers);

  io::write_json_file(output, report);

  std::cout << "scenario : 6 video pipelines x 18 months at 50K units (7 nm pair)\n"
            << "verdict  : " << to_string(comparison.verdict()) << " (ratio "
            << units::format_significant(comparison.ratio(), 3) << ")\n"
            << "robust?  : FPGA greener in "
            << units::format_significant(100.0 * mc.fpga_win_fraction, 3)
            << " % of " << mc.samples << " sampled Table-1 configurations\n"
            << "report   : " << output << "\n";
  return 0;
}
