/// Example: the full acceleration-platform shootout.
///
/// Combines the library's extensions into one planning exercise: for a
/// smart-camera product line, compare all three platforms the paper's
/// introduction frames (ASIC, FPGA, GPU) at iso-performance across
/// workload churn rates, then check whether carbon-aware duty scheduling
/// (possible for the deferrable FPGA/GPU analytics, not for the always-on
/// ASIC pipeline) changes the answer on a solar-heavy grid.

#include <iostream>

#include "act/grid_profile.hpp"
#include "core/comparator.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "io/table.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

int main() {
  using namespace greenfpga;
  using namespace units::unit;

  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);

  std::cout << "Smart-camera accelerator shootout (DNN domain, 1M units)\n"
            << "=========================================================\n\n";

  // Part 1: platform totals across churn, flat grid (the paper's model).
  {
    const core::LifecycleModel model(core::paper_suite());
    io::TextTable table;
    table.set_headers({"model generations", "cadence", "ASIC [t]", "FPGA [t]", "GPU [t]",
                       "winner"});
    struct Scenario {
      int apps;
      double years;
    };
    for (const Scenario& s : {Scenario{1, 6.0}, Scenario{3, 2.0}, Scenario{8, 0.75}}) {
      const auto comparison = core::compare_three_way(
          model, testcase, core::paper_schedule(device::Domain::dnn, s.apps,
                                                s.years * years, 1e6));
      table.add_row(
          {std::to_string(s.apps), units::format_significant(s.years, 3) + " y",
           units::format_significant(comparison.asic.total.total().in(t_co2e), 5),
           units::format_significant(comparison.fpga.total.total().in(t_co2e), 5),
           units::format_significant(comparison.gpu.total.total().in(t_co2e), 5),
           to_string(comparison.winner())});
    }
    std::cout << "flat-grid comparison (annual-average intensity):\n" << table.render()
              << "\n";
  }

  // Part 2: carbon-aware scheduling on a duck-curve grid.  The reusable
  // platforms run their inference batches at solar noon; the ASIC pipeline
  // is hard-wired into the camera path and keeps the flat average.
  {
    core::ModelSuite aware = core::paper_suite();
    aware.operation.use_intensity = act::scheduled_intensity(
        aware.operation.use_intensity, act::DailyProfile::solar_duck(),
        aware.operation.duty_cycle, act::DutySchedulingPolicy::carbon_aware);
    const core::LifecycleModel aware_model(aware);
    const core::LifecycleModel flat_model(core::paper_suite());

    const auto schedule =
        core::paper_schedule(device::Domain::dnn, 6, 1.0 * years, 1e6);
    const auto asic = flat_model.evaluate_asic(testcase.asic, schedule);
    const auto fpga_flat = flat_model.evaluate_fpga(testcase.fpga, schedule);
    const auto fpga_aware = aware_model.evaluate_fpga(testcase.fpga, schedule);

    io::TextTable table;
    table.set_headers({"platform", "operational [t]", "total [t]", "vs ASIC"});
    const double asic_total = asic.total.total().canonical();
    const auto row = [&](const std::string& name, const core::PlatformCfp& platform) {
      table.add_row({name,
                     units::format_significant(platform.total.operational.in(t_co2e), 5),
                     units::format_significant(platform.total.total().in(t_co2e), 5),
                     units::format_significant(
                         platform.total.total().canonical() / asic_total, 3)});
    };
    row("ASIC (always-on pipeline)", asic);
    row("FPGA, flat schedule", fpga_flat);
    row("FPGA, carbon-aware (duck grid)", fpga_aware);
    std::cout << "6 generations x 1 year, duck-curve grid:\n" << table.render() << "\n";
  }

  std::cout << "Reading: at a 1-year cadence the FPGA already wins on reuse; scheduling\n"
            << "its deferrable work into solar hours erases most of its remaining\n"
            << "operational penalty -- a lever fixed-function pipelines cannot pull.\n";
  return 0;
}
