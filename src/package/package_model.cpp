/// \file package_model.cpp
/// Monolithic and chiplet-era package CFP and finished-package mass.

#include "package/package_model.hpp"

#include <stdexcept>

#include "units/units.hpp"

namespace greenfpga::pkg {

std::string to_string(PackageType type) {
  switch (type) {
    case PackageType::monolithic:
      return "monolithic";
    case PackageType::rdl_fanout:
      return "rdl-fanout";
    case PackageType::silicon_interposer:
      return "silicon-interposer";
    case PackageType::emib:
      return "emib";
    case PackageType::three_d:
      return "3d";
  }
  return "unknown";
}

std::optional<PackageType> parse_package_type(std::string_view text) {
  std::string token(text);
  for (char& c : token) {
    if (c == '_') {
      c = '-';
    }
  }
  if (token == "monolithic") return PackageType::monolithic;
  if (token == "rdl-fanout") return PackageType::rdl_fanout;
  if (token == "silicon-interposer") return PackageType::silicon_interposer;
  if (token == "emib") return PackageType::emib;
  if (token == "3d" || token == "three-d") return PackageType::three_d;
  return std::nullopt;
}

PackageModel::PackageModel(PackageParameters parameters, const act::FabModel* fab)
    : parameters_(parameters), fab_(fab) {
  if (parameters_.footprint_ratio < 1.0) {
    throw std::invalid_argument("PackageModel: footprint ratio must be >= 1");
  }
  if (parameters_.interposer_area_ratio < 1.0) {
    throw std::invalid_argument("PackageModel: interposer area ratio must be >= 1");
  }
}

PackageBreakdown PackageModel::package(units::Area total_die_area, int die_count) const {
  if (total_die_area.canonical() <= 0.0) {
    throw std::invalid_argument("PackageModel: die area must be positive");
  }
  if (die_count < 1) {
    throw std::invalid_argument("PackageModel: die count must be >= 1");
  }

  const units::Area footprint = total_die_area * parameters_.footprint_ratio;
  PackageBreakdown result{
      .substrate = parameters_.substrate_per_area * footprint,
      .interposer = units::CarbonMass{},
      .assembly = parameters_.assembly_overhead,
  };

  switch (parameters_.type) {
    case PackageType::monolithic:
      // Substrate + fixed assembly only; single die assumed but multiple
      // dies in one organic package are allowed (MCM) with no extra terms.
      break;
    case PackageType::rdl_fanout:
      // RDL layers replace part of the substrate; model as 1.5x substrate
      // CFP plus per-die bonding, following the ECO-CHIP RDL fit.
      result.substrate *= 1.5;
      result.assembly += parameters_.bonding_per_die * static_cast<double>(die_count);
      break;
    case PackageType::silicon_interposer:
    case PackageType::emib: {
      if (fab_ == nullptr) {
        throw std::invalid_argument(
            "PackageModel: interposer-class packages need a fab model for interposer silicon");
      }
      // Interposer (or bridge) silicon is fabbed on a trailing node; EMIB
      // uses small bridges, modelled as 15 % of the interposer area.
      const double area_ratio = parameters_.type == PackageType::emib
                                    ? 0.15 * parameters_.interposer_area_ratio
                                    : parameters_.interposer_area_ratio;
      const units::Area silicon_area = total_die_area * area_ratio;
      result.interposer =
          fab_->manufacture_die(parameters_.interposer_node, silicon_area).total() *
          parameters_.interposer_cost_factor;
      result.assembly += parameters_.bonding_per_die * static_cast<double>(die_count);
      break;
    }
    case PackageType::three_d:
      // Stacked dies: bonding per die is the dominant extra term; hybrid
      // bonding runs hotter than microbump, charged at 2x.
      result.assembly += parameters_.bonding_per_die * 2.0 * static_cast<double>(die_count);
      break;
  }
  return result;
}

units::Mass PackageModel::package_mass(units::Area total_die_area) const {
  if (total_die_area.canonical() <= 0.0) {
    throw std::invalid_argument("PackageModel: die area must be positive");
  }
  // BGA-class mass fit: ~4 g base (laminate, balls, mold) plus ~1.5 g per
  // cm^2 of package footprint (substrate layers + lid).  Datasheet masses
  // for packages from 100 mm^2 (~5 g) to 4000 mm^2 server FPGAs (~70 g)
  // bracket this fit.
  const units::Area footprint = total_die_area * parameters_.footprint_ratio;
  const double footprint_cm2 = footprint.in(units::unit::cm2);
  return units::Mass{(4.0 + 1.5 * footprint_cm2) * 1e-3};
}

}  // namespace greenfpga::pkg
