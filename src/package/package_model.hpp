#ifndef GREENFPGA_PACKAGE_PACKAGE_MODEL_HPP
#define GREENFPGA_PACKAGE_PACKAGE_MODEL_HPP

/// \file package_model.hpp
/// ECO-CHIP-style package manufacturing & assembly carbon model
/// (paper §3.2(3): "we use the monolithic package CFP model from [5]").
///
/// The monolithic model charges a fixed assembly overhead per package plus
/// a substrate term proportional to package area.  The chiplet-era package
/// styles from ECO-CHIP (RDL fan-out, silicon interposer, EMIB, 3D
/// stacking) are implemented as well: GreenFPGA's evaluation only exercises
/// the monolithic path, but large FPGAs ship on interposers in practice and
/// the extra models make the library usable beyond the paper's experiments.
/// Interposer-class packages are modelled as additional silicon processed
/// on a trailing node (the standard ECO-CHIP treatment), so their CFP is
/// derived from the same fab model used for dies.
///
/// The module also estimates the finished-package *mass*, which feeds the
/// end-of-life model (EPA WARM factors are per unit mass of e-waste).

#include <optional>
#include <string>
#include <string_view>

#include "act/fab_model.hpp"
#include "tech/node.hpp"
#include "units/quantity.hpp"

namespace greenfpga::pkg {

/// Package construction styles (ECO-CHIP taxonomy).
enum class PackageType {
  monolithic,          ///< single die on an organic substrate (paper default)
  rdl_fanout,          ///< redistribution-layer fan-out
  silicon_interposer,  ///< 2.5D: dies on a silicon interposer
  emib,                ///< embedded multi-die interconnect bridges
  three_d,             ///< die-on-die stacking (hybrid bonding)
};

[[nodiscard]] std::string to_string(PackageType type);

/// Inverse of `to_string` (accepting '_' for '-' as well, so the tokens
/// are usable as JSON/ChipSpec fields); nullopt for unknown names.
[[nodiscard]] std::optional<PackageType> parse_package_type(std::string_view text);

/// Parameters of the package model; defaults follow the ECO-CHIP monolithic
/// data (assembly overhead ~150 g CO2e per package, organic substrate
/// ~0.05 kg CO2e per cm^2 of package area, package footprint ~4x die area).
struct PackageParameters {
  PackageType type = PackageType::monolithic;
  /// Fixed assembly/test overhead per package.
  units::CarbonMass assembly_overhead = units::CarbonMass{0.150};
  /// Organic-substrate CFP per unit *package* area.
  units::CarbonPerArea substrate_per_area = units::CarbonPerArea{0.05 / 100.0};
  /// Package footprint area as a multiple of total die area.
  double footprint_ratio = 4.0;
  /// Node used to manufacture interposer/bridge silicon (trailing edge).
  tech::ProcessNode interposer_node = tech::ProcessNode::n28;
  /// Interposer area as a multiple of total die area (2.5D styles only).
  double interposer_area_ratio = 1.2;
  /// Fraction of the full fab carbon-per-area charged to passive
  /// interposer silicon: interposers see metallization-only processing
  /// (no FEOL, few mask layers), so ECO-CHIP-style costing charges well
  /// under half of a logic wafer.
  double interposer_cost_factor = 0.35;
  /// Per-die bonding energy overhead for advanced styles, as extra CFP per
  /// die attached (hybrid bonding / microbump reflow).
  units::CarbonMass bonding_per_die = units::CarbonMass{0.020};
};

/// Decomposed package CFP.
struct PackageBreakdown {
  units::CarbonMass substrate;   ///< organic substrate / RDL
  units::CarbonMass interposer;  ///< interposer or bridge silicon (advanced styles)
  units::CarbonMass assembly;    ///< assembly, bonding, test

  [[nodiscard]] units::CarbonMass total() const { return substrate + interposer + assembly; }
};

/// Package CFP and mass model.
class PackageModel {
 public:
  /// `fab` is borrowed for interposer silicon costing and must outlive the
  /// model.
  explicit PackageModel(PackageParameters parameters = {},
                        const act::FabModel* fab = nullptr);

  [[nodiscard]] const PackageParameters& parameters() const { return parameters_; }

  /// CFP of packaging `die_count` dies of `total_die_area` into one package.
  /// Throws std::invalid_argument for non-positive area or die count, or if
  /// an advanced style is requested without a fab model.
  [[nodiscard]] PackageBreakdown package(units::Area total_die_area, int die_count = 1) const;

  /// Finished package mass (die + substrate + lid), for the EOL model.
  /// Simple BGA-class fit: base mass plus area-proportional term.
  [[nodiscard]] units::Mass package_mass(units::Area total_die_area) const;

 private:
  PackageParameters parameters_;
  const act::FabModel* fab_;  ///< non-owning; required for interposer styles
};

}  // namespace greenfpga::pkg

#endif  // GREENFPGA_PACKAGE_PACKAGE_MODEL_HPP
