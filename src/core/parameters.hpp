#ifndef GREENFPGA_CORE_PARAMETERS_HPP
#define GREENFPGA_CORE_PARAMETERS_HPP

/// \file parameters.hpp
/// Parameter blocks for the GreenFPGA-specific models: design-phase CFP
/// (Eq. 4) and application-development CFP (Eq. 7).
///
/// Defaults correspond to the paper's Table 1 ranges; every field is a
/// user-tunable knob, mirroring the released tool's configurability (§5).

#include "act/carbon_intensity.hpp"
#include "units/quantity.hpp"
#include "units/units.hpp"

namespace greenfpga::core {

/// Inputs to the design-phase CFP model (Eq. 4):
///
///     C_des = C_emp * N_emp,des * (N_gates / N_gates,des) * T_proj
///     C_emp = E_des * C_src,des / N_emp,company
///
/// `C_emp` is the annual CFP attributable to one employee of the design
/// house (company annual energy times grid intensity, normalised by
/// head-count); a product is then charged for its team size, its relative
/// chip size, and its project duration.
struct DesignParameters {
  /// E_des: design-house electrical energy per year (Table 1: 2-7.3 GWh).
  units::Energy annual_energy = 7.3 * units::unit::gwh;
  /// C_src,des: carbon intensity of the design house's energy source
  /// (Table 1: 30-700 g CO2e/kWh).
  units::CarbonIntensity intensity = act::grid_intensity(act::GridRegion::usa);
  /// Company head-count normalising C_emp (Table 1 N_emp,des: 20K-160K).
  double company_employees = 20'000.0;
  /// N_emp,des: engineers on this product.
  double product_team_size = 450.0;
  /// N_gates,des: average gates per chip across the design house's
  /// portfolio; the chip being costed is scaled relative to this.
  double average_product_gates = 5e8;
  /// T_proj: chip design project duration (Table 1: 1-3 years).
  units::TimeSpan project_duration = 3.0 * units::unit::years;
  /// Design-effort discount for FPGA fabrics: an FPGA die is a tiled array,
  /// so design effort scales with the unique tile logic rather than the
  /// full replicated gate count.  1.0 charges the full silicon gate count
  /// (the literal Eq. 4); ~0.25 reflects fabric regularity.  Applied only
  /// to FPGA chips.
  double fpga_regularity_factor = 0.25;
};

/// How application-development CFP enters the totals (DESIGN.md §1.1).
enum class AppDevAccounting {
  /// Charge app-dev once per application (default; matches Fig. 10's
  /// "app-dev is a minimal one-time overhead" reading).
  one_time,
  /// Literal Eq. (2): C_app-dev sits inside C_deploy,i and is multiplied
  /// by the application lifetime in years.
  per_year,
};

/// Inputs to the application-development CFP model (Eq. 7):
///
///     T_app-dev = N_app * (T_FE + T_BE) + N_vol * T_config
///     C_app-dev = P_dev * N_systems * C_src,dev * T_app-dev
///
/// For FPGAs, T_FE is RTL/HLS development + verification and T_BE is
/// synthesis/place-and-route; both are zero for ASICs (charged in Eq. 4),
/// though an optional software-flow time can model TPU-style per-
/// application regression stacks.
struct AppDevParameters {
  /// T_FE: front-end development time per application (Table 1: 1.5-2.5 months).
  units::TimeSpan frontend_time = 2.0 * units::unit::months;
  /// T_BE: back-end (synth/P&R) time per application (Table 1: 0.5-1.5 months).
  units::TimeSpan backend_time = 1.0 * units::unit::months;
  /// T_config: bitstream load time per deployed chip.
  units::TimeSpan config_time = 5.0 * units::unit::minutes;
  /// Power of one development compute system.
  units::Power dev_system_power = 300.0 * units::unit::w;
  /// Number of development systems running for T_FE + T_BE.
  double dev_systems = 10.0;
  /// Carbon intensity of the development site's energy.
  units::CarbonIntensity dev_intensity = act::grid_intensity(act::GridRegion::usa);
  /// Accounting policy for app-dev CFP in the lifecycle totals.
  AppDevAccounting accounting = AppDevAccounting::one_time;
  /// Optional per-application software-flow time for ASIC platforms
  /// (paper §3.3(2): "software flows with extensive regression testing,
  /// as seen in the Google TPU, if at all").  Zero by default.
  units::TimeSpan asic_software_dev_time{};
  /// Per-application software development time for GPU platforms (kernel
  /// porting and tuning -- faster than RTL, slower than nothing).  Used by
  /// the three-way platform extension.
  units::TimeSpan gpu_software_dev_time = 0.75 * units::unit::months;
  /// Per-application software development time for CPU platforms: plain
  /// software against a mature toolchain, the cheapest flow of all.  Used
  /// by the four-way platform extension (TOCS follow-up).
  units::TimeSpan cpu_software_dev_time = 0.5 * units::unit::months;
};

}  // namespace greenfpga::core

#endif  // GREENFPGA_CORE_PARAMETERS_HPP
