/// \file paper_config.cpp
/// Calibrated edge/datacenter parameter suites and paper schedules (DESIGN.md §4).

#include "core/paper_config.hpp"

#include "units/units.hpp"

namespace greenfpga::core {

using namespace units::unit;

ModelSuite paper_suite() {
  ModelSuite suite;

  // Design house (Table 1: E_des 2-7.3 GWh, 20K-160K employees, T_proj
  // 1-3 y).  Calibration: DESIGN.md §4.
  suite.design.annual_energy = 7.3 * gwh;
  suite.design.intensity = act::grid_intensity(act::GridRegion::usa);
  suite.design.company_employees = 20'000.0;
  suite.design.product_team_size = 450.0;
  suite.design.average_product_gates = 5e8;
  suite.design.project_duration = 3.0 * years;
  suite.design.fpga_regularity_factor = 0.25;

  // Application development (Table 1: T_FE 1.5-2.5 months, T_BE 0.5-1.5).
  suite.appdev.frontend_time = 2.0 * months;
  suite.appdev.backend_time = 1.0 * months;
  suite.appdev.config_time = 5.0 * minutes;
  suite.appdev.dev_system_power = 300.0 * w;
  suite.appdev.dev_systems = 10.0;
  suite.appdev.dev_intensity = act::grid_intensity(act::GridRegion::usa);
  suite.appdev.accounting = AppDevAccounting::one_time;

  // Fab: leading-edge foundry posture (Taiwan grid, 20 % renewable PPAs),
  // no recycled-material sourcing by default (rho = 0, Table 1 range 0-1).
  suite.fab.fab_energy_intensity = act::offset_grid_intensity(act::GridRegion::taiwan, 0.20);
  suite.fab.recycled_material_fraction = 0.0;
  suite.fab.yield = tech::YieldSpec{};  // negative binomial, alpha 2.5

  // Operation: edge deployment -- accelerators idle most of the time.
  suite.operation.use_intensity = act::grid_intensity(act::GridRegion::usa);
  suite.operation.duty_cycle = 0.02;
  suite.operation.power_usage_effectiveness = 1.0;

  // Package: monolithic (paper §3.2(3)).
  suite.package.type = pkg::PackageType::monolithic;

  // End of life: mid-range WARM factors, 20 % recycling (Table 1: delta 0-1).
  suite.eol.recycled_fraction = 0.20;
  suite.eol.discard_factor = 1.0 * mtco2e_per_ton;
  suite.eol.recycle_credit_factor = 15.0 * mtco2e_per_ton;

  return suite;
}

ModelSuite industry_suite() {
  ModelSuite suite = paper_suite();

  // TPU/Agilex-class products: much larger teams and portfolio chips.
  suite.design.product_team_size = 1200.0;
  suite.design.average_product_gates = 1e9;
  // Industry FPGA flagships embed large hard blocks (transceivers, HBM
  // controllers, NoC) alongside the tiled fabric, so less of the die is
  // replicated tiles.
  suite.design.fpga_regularity_factor = 0.6;

  // Datacenter operation: half-duty, facility overhead.
  suite.operation.duty_cycle = 0.5;
  suite.operation.power_usage_effectiveness = 1.2;

  return suite;
}

SweepDefaults paper_sweep_defaults() { return SweepDefaults{}; }

workload::Schedule paper_schedule(device::Domain domain, int app_count,
                                  units::TimeSpan lifetime, double volume) {
  workload::Application prototype = workload::paper_application(domain);
  prototype.lifetime = lifetime;
  prototype.volume = volume;
  return workload::homogeneous_schedule(app_count, prototype);
}

workload::Schedule paper_schedule(device::Domain domain) {
  const SweepDefaults defaults = paper_sweep_defaults();
  return paper_schedule(domain, defaults.app_count, defaults.app_lifetime,
                        defaults.app_volume);
}

}  // namespace greenfpga::core
