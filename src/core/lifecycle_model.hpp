#ifndef GREENFPGA_CORE_LIFECYCLE_MODEL_HPP
#define GREENFPGA_CORE_LIFECYCLE_MODEL_HPP

/// \file lifecycle_model.hpp
/// The GreenFPGA total-CFP models (paper §3.1-§3.3, Eqs. 1-3).
///
/// This is the library's primary API.  A `LifecycleModel` bundles all
/// sub-models (design, fab, package, EOL, operation, app-dev) behind two
/// entry points:
///
///   * `evaluate_asic`:  Eq. (1) -- every application re-designs and
///     re-manufactures silicon:
///         C_ASIC = sum_i ( C_emb,i + T_i * C_deploy,i )
///   * `evaluate_fpga`:  Eq. (2) -- one reconfigurable fleet serves all
///     applications; embodied carbon is paid once:
///         C_FPGA = C_emb + sum_i ( T_i * C_deploy,i )
///
/// with the embodied roll-up Eq. (3):
///         C_emb = C_des + N_vol * N_FPGA * (C_mfg + C_package + C_EOL)
///
/// Results come back as a `CfpBreakdown` keeping each lifecycle component
/// separate, which is what the paper's component-stack figures (7, 10, 11)
/// plot.

#include <vector>

#include "act/fab_model.hpp"
#include "act/operational_model.hpp"
#include "core/appdev_model.hpp"
#include "core/design_model.hpp"
#include "device/chip_spec.hpp"
#include "device/iso_performance.hpp"
#include "eol/eol_model.hpp"
#include "package/package_model.hpp"
#include "units/quantity.hpp"
#include "workload/application.hpp"

namespace greenfpga::core {

/// Full parameterisation of a GreenFPGA run: one block per sub-model.
struct ModelSuite {
  DesignParameters design;
  AppDevParameters appdev;
  act::FabParameters fab;
  act::OperationalParameters operation;
  pkg::PackageParameters package;
  eol::EolParameters eol;
};

/// Lifecycle CFP decomposed by source.  All values are totals over the
/// evaluated platform and schedule (not per chip).
struct CfpBreakdown {
  units::CarbonMass design;         ///< Eq. (4), per chip design
  units::CarbonMass manufacturing;  ///< ACT fab model, per good die x volume
  units::CarbonMass packaging;      ///< package substrate/assembly x volume
  units::CarbonMass eol;            ///< Eq. (6); may be negative (credit)
  units::CarbonMass operational;    ///< use-phase energy carbon
  units::CarbonMass app_dev;        ///< Eq. (7) carbon

  /// Embodied CFP: everything except use-phase and app-dev.
  [[nodiscard]] units::CarbonMass embodied() const {
    return design + manufacturing + packaging + eol;
  }
  /// Deployment CFP (paper §3.3): operation + application development.
  [[nodiscard]] units::CarbonMass deployment() const { return operational + app_dev; }
  [[nodiscard]] units::CarbonMass total() const { return embodied() + deployment(); }

  CfpBreakdown& operator+=(const CfpBreakdown& other);
  [[nodiscard]] friend CfpBreakdown operator+(CfpBreakdown a, const CfpBreakdown& b) {
    a += b;
    return a;
  }
  /// Uniform scaling (used by sweeps to normalise per-unit).
  friend CfpBreakdown operator*(CfpBreakdown b, double s);
};

/// Per-application attribution of a platform evaluation, for timelines and
/// the per-application figures.
struct ApplicationCfp {
  std::string application;
  int chips_per_unit = 1;  ///< N_FPGA for FPGA platforms, 1 for ASIC
  CfpBreakdown cfp;        ///< carbon attributable to this application
};

/// Result of evaluating one platform against one schedule.
struct PlatformCfp {
  device::ChipKind kind = device::ChipKind::asic;
  CfpBreakdown total;
  std::vector<ApplicationCfp> per_application;
  /// Chips manufactured (fleet size for FPGA; sum over apps for ASIC).
  double chips_manufactured = 0.0;
};

/// The GreenFPGA lifecycle evaluator.
class LifecycleModel {
 public:
  explicit LifecycleModel(ModelSuite suite = {});

  // The package model borrows the fab model by pointer, so copies must
  // reconstruct from the suite rather than copy members.
  LifecycleModel(const LifecycleModel& other) : LifecycleModel(other.suite_) {}
  LifecycleModel& operator=(const LifecycleModel& other);
  LifecycleModel(LifecycleModel&& other) noexcept : LifecycleModel(other.suite_) {}
  LifecycleModel& operator=(LifecycleModel&& other) noexcept;
  ~LifecycleModel() = default;

  [[nodiscard]] const ModelSuite& suite() const { return suite_; }
  [[nodiscard]] const DesignModel& design_model() const { return design_; }
  [[nodiscard]] const AppDevModel& appdev_model() const { return appdev_; }
  [[nodiscard]] const act::FabModel& fab_model() const { return fab_; }
  [[nodiscard]] const act::OperationalModel& operational_model() const { return operation_; }
  [[nodiscard]] const pkg::PackageModel& package_model() const { return package_; }
  [[nodiscard]] const eol::EolModel& eol_model() const { return eol_; }

  /// Per-chip embodied components WITHOUT design CFP: manufacturing,
  /// packaging and end-of-life for one manufactured chip (the
  /// N_vol-multiplied bracket of Eq. 3).
  ///
  /// The result is schedule-independent, so it is memoised per chip: a
  /// grid/sweep evaluating the same devices at thousands of scenario
  /// points computes the fab/package/EOL sub-models once per device.  The
  /// cache makes this method (and the evaluate entry points using it)
  /// non-reentrant: do not share one model instance across threads --
  /// `scenario::Engine` gives each worker its own copy.
  [[nodiscard]] CfpBreakdown per_chip_embodied(const device::ChipSpec& chip) const;

  /// ECO-CHIP-style chiplet construction of the same device: the chip's
  /// total silicon split into `die_count` equal chiplets assembled in an
  /// advanced package (`package.type` selects interposer/EMIB/RDL/3D).
  /// Smaller dies yield better (cutting the 1/Y scrap charge) at the cost
  /// of interposer silicon and bonding -- the ECO-CHIP tradeoff, applied
  /// here to large FPGA dies.  Throws std::invalid_argument for
  /// die_count < 1 or a monolithic package with die_count > 1.
  [[nodiscard]] CfpBreakdown per_chip_embodied_chiplet(
      const device::ChipSpec& chip, int die_count,
      const pkg::PackageParameters& package) const;

  /// Eq. (2): one FPGA design serves the whole schedule; the fleet is sized
  /// for the most demanding application and reconfigured between them.
  [[nodiscard]] PlatformCfp evaluate_fpga(const device::ChipSpec& fpga,
                                          const workload::Schedule& schedule) const;

  /// GPU platform (extension): Eq. (2)'s reuse shape -- one design, one
  /// fleet -- but applications arrive via software (kernel porting), with
  /// no per-chip configuration and no N_FPGA scale-out.
  [[nodiscard]] PlatformCfp evaluate_gpu(const device::ChipSpec& gpu,
                                         const workload::Schedule& schedule) const;

  /// Eq. (1): each application gets a fresh ASIC design and fresh silicon.
  [[nodiscard]] PlatformCfp evaluate_asic(const device::ChipSpec& asic,
                                          const workload::Schedule& schedule) const;

  /// Dispatch on `chip.kind`.
  [[nodiscard]] PlatformCfp evaluate(const device::ChipSpec& chip,
                                     const workload::Schedule& schedule) const;

 private:
  /// Shared Eq. (2) implementation for reusable platforms (FPGA, GPU).
  [[nodiscard]] PlatformCfp evaluate_reusable(const device::ChipSpec& chip,
                                              const workload::Schedule& schedule) const;

  /// Applies the app-dev accounting policy (one-time vs literal per-year).
  [[nodiscard]] units::CarbonMass scaled_app_dev(units::CarbonMass per_app,
                                                 units::TimeSpan lifetime) const;

  /// Memoised `per_chip_embodied` results, keyed by the full chip spec.
  /// Bounded (evaluations only ever touch a handful of devices); not
  /// copied with the model, cleared on assignment.
  struct EmbodiedCacheEntry {
    device::ChipSpec chip;
    CfpBreakdown embodied;
  };
  mutable std::vector<EmbodiedCacheEntry> embodied_cache_;

  ModelSuite suite_;
  DesignModel design_;
  AppDevModel appdev_;
  act::FabModel fab_;
  act::OperationalModel operation_;
  pkg::PackageModel package_;
  eol::EolModel eol_;
};

}  // namespace greenfpga::core

#endif  // GREENFPGA_CORE_LIFECYCLE_MODEL_HPP
