#ifndef GREENFPGA_CORE_APPDEV_MODEL_HPP
#define GREENFPGA_CORE_APPDEV_MODEL_HPP

/// \file appdev_model.hpp
/// Application-development CFP model (paper §3.3(2), Eq. 7).
///
/// Each new application deployed on an FPGA platform costs engineering
/// compute: front-end RTL/HLS work plus verification (T_FE), one back-end
/// synthesis/place-and-route pass (T_BE), and a per-chip bitstream
/// configuration (T_config) across the deployed volume.  ASICs charge no
/// T_FE/T_BE (those live in the design model) but may charge an optional
/// software-flow time.  The carbon is development-compute power times time
/// times the development site's grid intensity.

#include "core/parameters.hpp"
#include "device/chip_spec.hpp"
#include "units/quantity.hpp"

namespace greenfpga::core {

/// Per-application app-dev carbon, split by source.
struct AppDevBreakdown {
  units::CarbonMass engineering;    ///< T_FE + T_BE (FPGA) or software flow (ASIC)
  units::CarbonMass configuration;  ///< N_vol * T_config (FPGA only)

  [[nodiscard]] units::CarbonMass total() const { return engineering + configuration; }
};

/// Implements Eq. (7) and its carbon conversion.
class AppDevModel {
 public:
  explicit AppDevModel(AppDevParameters parameters = {});

  [[nodiscard]] const AppDevParameters& parameters() const { return parameters_; }

  /// Eq. (7) evaluated for one platform:  total wall-clock development time
  /// for `app_count` applications deployed on `chip_volume` chips.
  /// `is_fpga` selects T_FE+T_BE (FPGA) vs the optional software flow
  /// (ASIC); configuration time applies to FPGAs only.
  [[nodiscard]] units::TimeSpan development_time(int app_count, double chip_volume,
                                                 bool is_fpga) const;

  /// App-dev CFP of ONE application deployed on `chip_volume` chips.
  [[nodiscard]] AppDevBreakdown per_application(double chip_volume, bool is_fpga) const;

  /// Platform-kind dispatch: FPGA -> hardware flow (T_FE + T_BE + config),
  /// ASIC -> optional software flow, GPU -> kernel-porting software flow,
  /// CPU -> plain-software flow.
  [[nodiscard]] AppDevBreakdown per_application(double chip_volume,
                                                device::ChipKind kind) const;

  /// Per-application engineering time for a platform kind.
  [[nodiscard]] units::TimeSpan engineering_time(device::ChipKind kind) const;

 private:
  AppDevParameters parameters_;
};

}  // namespace greenfpga::core

#endif  // GREENFPGA_CORE_APPDEV_MODEL_HPP
