/// \file lifecycle_model.cpp
/// Eqs. 1-3: the ASIC/FPGA/GPU lifecycle roll-ups over a schedule.

#include "core/lifecycle_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "units/units.hpp"

namespace greenfpga::core {

CfpBreakdown& CfpBreakdown::operator+=(const CfpBreakdown& other) {
  design += other.design;
  manufacturing += other.manufacturing;
  packaging += other.packaging;
  eol += other.eol;
  operational += other.operational;
  app_dev += other.app_dev;
  return *this;
}

CfpBreakdown operator*(CfpBreakdown b, double s) {
  b.design *= s;
  b.manufacturing *= s;
  b.packaging *= s;
  b.eol *= s;
  b.operational *= s;
  b.app_dev *= s;
  return b;
}

LifecycleModel::LifecycleModel(ModelSuite suite)
    : suite_(suite),
      design_(suite.design),
      appdev_(suite.appdev),
      fab_(suite.fab),
      operation_(suite.operation),
      package_(suite.package, &fab_),
      eol_(suite.eol) {}

LifecycleModel& LifecycleModel::operator=(const LifecycleModel& other) {
  if (this != &other) {
    embodied_cache_.clear();
    suite_ = other.suite_;
    design_ = DesignModel(suite_.design);
    appdev_ = AppDevModel(suite_.appdev);
    fab_ = act::FabModel(suite_.fab);
    operation_ = act::OperationalModel(suite_.operation);
    // Rebind the package model to THIS object's fab model.
    package_ = pkg::PackageModel(suite_.package, &fab_);
    eol_ = eol::EolModel(suite_.eol);
  }
  return *this;
}

LifecycleModel& LifecycleModel::operator=(LifecycleModel&& other) noexcept {
  // Reconstruction from the suite is cheap; moving has no advantage.
  return *this = other;
}

namespace {

/// Cache key equality: every field that could feed the embodied sub-models.
bool same_chip(const device::ChipSpec& a, const device::ChipSpec& b) {
  return a.kind == b.kind && a.node == b.node &&
         a.die_area.canonical() == b.die_area.canonical() &&
         a.peak_power.canonical() == b.peak_power.canonical() &&
         a.capacity_gates == b.capacity_gates &&
         a.service_life.canonical() == b.service_life.canonical() &&
         a.chiplet_count == b.chiplet_count &&
         a.chiplet_package == b.chiplet_package && a.name == b.name;
}

/// Cache growth bound; past it, lookups miss and results are recomputed.
constexpr std::size_t kEmbodiedCacheLimit = 64;

}  // namespace

CfpBreakdown LifecycleModel::per_chip_embodied(const device::ChipSpec& chip) const {
  chip.validate();
  for (const EmbodiedCacheEntry& entry : embodied_cache_) {
    if (same_chip(entry.chip, chip)) {
      return entry.embodied;
    }
  }
  CfpBreakdown result;
  if (chip.chiplet_count > 1) {
    // Chiplet-constructed devices (e.g. the registry's "chiplet_fpga")
    // route through the ECO-CHIP model: the chip carries its die count and
    // package style, the suite supplies every other package parameter.
    const std::optional<pkg::PackageType> type =
        pkg::parse_package_type(chip.chiplet_package);
    if (!type) {
      throw std::invalid_argument("per_chip_embodied: chip '" + chip.name +
                                  "': unknown chiplet package \"" +
                                  chip.chiplet_package + "\"");
    }
    pkg::PackageParameters parameters = suite_.package;
    parameters.type = *type;
    result = per_chip_embodied_chiplet(chip, chip.chiplet_count, parameters);
  } else {
    const act::ManufacturingBreakdown mfg =
        fab_.manufacture_die(chip.node, chip.die_area);
    const pkg::PackageBreakdown package = package_.package(chip.die_area);
    const units::Mass mass = package_.package_mass(chip.die_area);
    const eol::EolBreakdown end_of_life = eol_.end_of_life(mass);
    result = CfpBreakdown{
        .design = units::CarbonMass{},
        .manufacturing = mfg.total(),
        .packaging = package.total(),
        .eol = end_of_life.total(),
        .operational = units::CarbonMass{},
        .app_dev = units::CarbonMass{},
    };
  }
  if (embodied_cache_.size() < kEmbodiedCacheLimit) {
    embodied_cache_.push_back({chip, result});
  }
  return result;
}

CfpBreakdown LifecycleModel::per_chip_embodied_chiplet(
    const device::ChipSpec& chip, int die_count,
    const pkg::PackageParameters& package) const {
  chip.validate();
  if (die_count < 1) {
    throw std::invalid_argument("per_chip_embodied_chiplet: die count must be >= 1");
  }
  if (package.type == pkg::PackageType::monolithic && die_count > 1) {
    throw std::invalid_argument(
        "per_chip_embodied_chiplet: a monolithic package holds one die");
  }
  // The same total silicon, fabbed as `die_count` equal chiplets: each die
  // is smaller, so the 1/Y scrap charge falls.
  const units::Area chiplet_area = chip.die_area / static_cast<double>(die_count);
  const act::ManufacturingBreakdown per_die = fab_.manufacture_die(chip.node, chiplet_area);
  const units::CarbonMass silicon = per_die.total() * static_cast<double>(die_count);

  const pkg::PackageModel chiplet_package(package, &fab_);
  const pkg::PackageBreakdown assembled =
      chiplet_package.package(chip.die_area, die_count);
  const units::Mass mass = chiplet_package.package_mass(chip.die_area);
  const eol::EolBreakdown end_of_life = eol_.end_of_life(mass);
  return CfpBreakdown{
      .design = units::CarbonMass{},
      .manufacturing = silicon,
      .packaging = assembled.total(),
      .eol = end_of_life.total(),
      .operational = units::CarbonMass{},
      .app_dev = units::CarbonMass{},
  };
}

units::CarbonMass LifecycleModel::scaled_app_dev(units::CarbonMass per_app,
                                                 units::TimeSpan lifetime) const {
  switch (suite_.appdev.accounting) {
    case AppDevAccounting::one_time:
      return per_app;
    case AppDevAccounting::per_year:
      // Literal Eq. (2): C_app-dev is part of C_deploy,i and scales with T_i.
      return per_app * lifetime.in(units::unit::years);
  }
  throw std::logic_error("scaled_app_dev: unknown accounting policy");
}

PlatformCfp LifecycleModel::evaluate_reusable(const device::ChipSpec& chip,
                                              const workload::Schedule& schedule) const {
  chip.validate();
  workload::validate(schedule);

  PlatformCfp result;
  result.kind = chip.kind;

  // Fleet sizing: the same physical fleet serves every application, so it
  // must cover the most demanding deployment (volume x N_FPGA chips; one
  // chip per unit for GPUs -- their iso-performance is baked into the
  // derived spec).
  double fleet_chips = 0.0;
  for (const workload::Application& app : schedule) {
    const int n_chips = device::chips_per_unit(chip, app.size_gates);
    fleet_chips = std::max(fleet_chips, app.volume * static_cast<double>(n_chips));
  }
  result.chips_manufactured = fleet_chips;

  // Eq. (3): C_emb = C_des + N_vol * N_FPGA * (C_mfg + C_pkg + C_EOL),
  // paid once for the whole schedule.
  const CfpBreakdown chip_embodied = per_chip_embodied(chip);
  result.total += chip_embodied * fleet_chips;
  result.total.design += design_.design_carbon(chip);

  // Eq. (2): per-application deployment carbon.
  for (const workload::Application& app : schedule) {
    const int n_chips = device::chips_per_unit(chip, app.size_gates);
    const double deployed_chips = app.volume * static_cast<double>(n_chips);

    ApplicationCfp per_app;
    per_app.application = app.name;
    per_app.chips_per_unit = n_chips;
    per_app.cfp.operational =
        operation_.operational_carbon(chip.peak_power * static_cast<double>(n_chips),
                                      app.lifetime) *
        app.volume;
    const AppDevBreakdown dev = appdev_.per_application(deployed_chips, chip.kind);
    per_app.cfp.app_dev = scaled_app_dev(dev.total(), app.lifetime);

    result.total.operational += per_app.cfp.operational;
    result.total.app_dev += per_app.cfp.app_dev;
    result.per_application.push_back(std::move(per_app));
  }
  return result;
}

PlatformCfp LifecycleModel::evaluate_fpga(const device::ChipSpec& fpga,
                                          const workload::Schedule& schedule) const {
  if (!fpga.is_fpga()) {
    throw std::invalid_argument("evaluate_fpga: chip '" + fpga.name + "' is not an FPGA");
  }
  return evaluate_reusable(fpga, schedule);
}

PlatformCfp LifecycleModel::evaluate_gpu(const device::ChipSpec& gpu,
                                         const workload::Schedule& schedule) const {
  if (!gpu.is_gpu()) {
    throw std::invalid_argument("evaluate_gpu: chip '" + gpu.name + "' is not a GPU");
  }
  return evaluate_reusable(gpu, schedule);
}

PlatformCfp LifecycleModel::evaluate_asic(const device::ChipSpec& asic,
                                          const workload::Schedule& schedule) const {
  if (asic.is_reusable()) {
    throw std::invalid_argument("evaluate_asic: chip '" + asic.name + "' is not an ASIC");
  }
  asic.validate();
  workload::validate(schedule);

  PlatformCfp result;
  result.kind = device::ChipKind::asic;
  const CfpBreakdown chip_embodied = per_chip_embodied(asic);
  const units::CarbonMass design_per_app = design_.design_carbon(asic);

  // Eq. (1): every application pays design + silicon + deployment.
  for (const workload::Application& app : schedule) {
    ApplicationCfp per_app;
    per_app.application = app.name;
    per_app.chips_per_unit = 1;  // N_FPGA = 1 for ASICs (paper footnote 1)

    per_app.cfp = chip_embodied * app.volume;
    per_app.cfp.design = design_per_app;
    per_app.cfp.operational =
        operation_.operational_carbon(asic.peak_power, app.lifetime) * app.volume;
    const AppDevBreakdown dev = appdev_.per_application(app.volume, /*is_fpga=*/false);
    per_app.cfp.app_dev = scaled_app_dev(dev.total(), app.lifetime);

    result.chips_manufactured += app.volume;
    result.total += per_app.cfp;
    result.per_application.push_back(std::move(per_app));
  }
  return result;
}

PlatformCfp LifecycleModel::evaluate(const device::ChipSpec& chip,
                                     const workload::Schedule& schedule) const {
  return chip.is_reusable() ? evaluate_reusable(chip, schedule)
                            : evaluate_asic(chip, schedule);
}

}  // namespace greenfpga::core
