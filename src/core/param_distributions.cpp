/// \file param_distributions.cpp
/// Inverse-CDF sampling and the counter-based uniform stream.

#include "core/param_distributions.hpp"

#include <cmath>
#include <stdexcept>

namespace greenfpga::core {

std::string to_string(DistributionKind kind) {
  switch (kind) {
    case DistributionKind::uniform:
      return "uniform";
    case DistributionKind::normal:
      return "normal";
    case DistributionKind::triangular:
      return "triangular";
  }
  return "unknown";
}

std::optional<DistributionKind> parse_distribution_kind(std::string_view text) {
  if (text == "uniform") return DistributionKind::uniform;
  if (text == "normal" || text == "gaussian") return DistributionKind::normal;
  if (text == "triangular") return DistributionKind::triangular;
  return std::nullopt;
}

void ParamDistribution::validate() const {
  const auto fail = [this](const std::string& why) {
    throw std::invalid_argument("distribution for \"" + parameter + "\": " + why);
  };
  if (parameter.empty()) {
    throw std::invalid_argument("distribution needs a parameter name");
  }
  if (!std::isfinite(low) || !std::isfinite(high)) {
    fail("bounds must be finite");
  }
  switch (kind) {
    case DistributionKind::uniform:
      if (low > high) fail("needs low <= high");
      return;
    case DistributionKind::normal:
      if (!(stddev > 0.0) || !std::isfinite(stddev)) fail("needs stddev > 0");
      if (!std::isfinite(mean)) fail("mean must be finite");
      if (!(low < high)) fail("needs a non-empty truncation interval low < high");
      return;
    case DistributionKind::triangular:
      if (!(low < high)) fail("needs low < high");
      if (mode < low || mode > high) fail("needs low <= mode <= high");
      return;
  }
  fail("unknown distribution kind");
}

namespace {

/// Standard normal CDF via std::erfc (accurate in both tails).
double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

double inverse_normal_cdf(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("inverse_normal_cdf: p must be in (0, 1)");
  }
  // Acklam's rational approximation, refined with one Halley step.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;

  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement against the exact CDF pins the approximation to
  // near machine precision (keeps percentile goldens insensitive to the
  // rational coefficients).
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  return x - u / (1.0 + x * u / 2.0);
}

double ParamDistribution::sample(double u) const {
  if (!(u > 0.0) || !(u < 1.0)) {
    throw std::invalid_argument("ParamDistribution::sample: u must be in (0, 1)");
  }
  switch (kind) {
    case DistributionKind::uniform:
      return low + u * (high - low);
    case DistributionKind::normal: {
      // Truncated normal via the inverse-CDF of the conditional law:
      // map u onto [CDF(low), CDF(high)] before inverting.
      const double cdf_low = normal_cdf((low - mean) / stddev);
      const double cdf_high = normal_cdf((high - mean) / stddev);
      const double width = cdf_high - cdf_low;
      if (!(width > 0.0)) {
        // Degenerate truncation window (support many stddevs into one
        // tail, both CDFs rounding to the same value): the conditional
        // mass concentrates at the bound nearest the mean.
        return mean < low ? low : high;
      }
      const double p = cdf_low + u * width;
      if (!(p > 0.0)) return low;
      if (!(p < 1.0)) return high;
      const double x = mean + stddev * inverse_normal_cdf(p);
      return std::fmin(std::fmax(x, low), high);
    }
    case DistributionKind::triangular: {
      const double span = high - low;
      const double cut = (mode - low) / span;  // CDF value at the mode
      if (u < cut) {
        return low + std::sqrt(u * span * (mode - low));
      }
      return high - std::sqrt((1.0 - u) * span * (high - mode));
    }
  }
  throw std::logic_error("ParamDistribution::sample: unknown kind");
}

ParamDistribution ParamDistribution::uniform(std::string parameter, double low,
                                             double high) {
  ParamDistribution dist;
  dist.parameter = std::move(parameter);
  dist.kind = DistributionKind::uniform;
  dist.low = low;
  dist.high = high;
  return dist;
}

ParamDistribution ParamDistribution::normal(std::string parameter, double mean,
                                            double stddev, double low, double high) {
  ParamDistribution dist;
  dist.parameter = std::move(parameter);
  dist.kind = DistributionKind::normal;
  dist.mean = mean;
  dist.stddev = stddev;
  dist.low = low;
  dist.high = high;
  return dist;
}

ParamDistribution ParamDistribution::triangular(std::string parameter, double low,
                                                double mode, double high) {
  ParamDistribution dist;
  dist.parameter = std::move(parameter);
  dist.kind = DistributionKind::triangular;
  dist.low = low;
  dist.mode = mode;
  dist.high = high;
  return dist;
}

namespace {

/// SplitMix64 finalizer: a bijective 64-bit mix with full avalanche.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;  // 2^64 / phi

}  // namespace

std::uint64_t counter_hash(std::uint64_t seed, std::uint64_t sample,
                           std::uint64_t dimension) {
  // Two mixing rounds so neighbouring (sample, dimension) counters land in
  // statistically independent positions; +1 offsets keep (0, 0, 0) away
  // from the weak all-zero input.
  std::uint64_t z = mix64(seed + kGolden * (sample + 1));
  z = mix64(z + kGolden * (dimension + 1));
  return z;
}

double counter_uniform01(std::uint64_t seed, std::uint64_t sample,
                         std::uint64_t dimension) {
  // Top 53 bits -> (0, 1): the half-ulp offset keeps the result strictly
  // inside the open interval, so inverse CDFs never see 0 or 1.
  const std::uint64_t bits = counter_hash(seed, sample, dimension) >> 11;
  return (static_cast<double>(bits) + 0.5) * 0x1.0p-53;
}

}  // namespace greenfpga::core
