#ifndef GREENFPGA_CORE_COMPARATOR_HPP
#define GREENFPGA_CORE_COMPARATOR_HPP

/// \file comparator.hpp
/// FPGA-vs-ASIC comparison at iso-performance: the paper's central
/// question, "which platform emits less over the schedule?".

#include <string>

#include "core/lifecycle_model.hpp"
#include "device/catalog.hpp"
#include "workload/application.hpp"

namespace greenfpga::core {

/// Which platform the model favours for a scenario.
enum class Verdict {
  fpga_lower,  ///< FPGA CFP < ASIC CFP
  asic_lower,  ///< ASIC CFP < FPGA CFP
  tie,         ///< within 0.1 % of each other
};

[[nodiscard]] std::string to_string(Verdict verdict);

/// Result of one head-to-head comparison.
struct Comparison {
  PlatformCfp asic;
  PlatformCfp fpga;

  /// FPGA:ASIC total-CFP ratio (the paper's heat-map metric).  > 1 means
  /// the ASIC platform is greener.
  [[nodiscard]] double ratio() const;
  [[nodiscard]] Verdict verdict() const;
};

/// Evaluate both platforms of a domain testcase against a schedule.
[[nodiscard]] Comparison compare(const LifecycleModel& model,
                                 const device::DomainTestcase& testcase,
                                 const workload::Schedule& schedule);

/// Evaluate an explicit ASIC/FPGA pair against a schedule.
[[nodiscard]] Comparison compare(const LifecycleModel& model, const device::ChipSpec& asic,
                                 const device::ChipSpec& fpga,
                                 const workload::Schedule& schedule);

/// Three-platform comparison (extension): ASIC vs FPGA vs GPU at
/// iso-performance.  The paper's intro frames exactly these three options
/// for hardware acceleration.
struct ThreeWayComparison {
  PlatformCfp asic;
  PlatformCfp fpga;
  PlatformCfp gpu;

  /// FPGA:ASIC and GPU:ASIC total ratios.
  [[nodiscard]] double fpga_ratio() const;
  [[nodiscard]] double gpu_ratio() const;
  /// Kind of the platform with the lowest total CFP.
  [[nodiscard]] device::ChipKind winner() const;
};

/// Evaluate all three platforms of a domain against a schedule; the GPU is
/// derived from the testcase ASIC via `gpu_domain_ratios`.
[[nodiscard]] ThreeWayComparison compare_three_way(const LifecycleModel& model,
                                                   const device::DomainTestcase& testcase,
                                                   const workload::Schedule& schedule);

}  // namespace greenfpga::core

#endif  // GREENFPGA_CORE_COMPARATOR_HPP
