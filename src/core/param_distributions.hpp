#ifndef GREENFPGA_CORE_PARAM_DISTRIBUTIONS_HPP
#define GREENFPGA_CORE_PARAM_DISTRIBUTIONS_HPP

/// \file param_distributions.hpp
/// Parameter uncertainty: named input distributions and the deterministic
/// sample stream that feeds the Monte-Carlo engine.
///
/// GreenFPGA's headline verdicts rest on Table 1 point estimates, yet the
/// paper's own sensitivity study shows the FPGA/ASIC verdict flips within
/// plausible parameter ranges.  This layer replaces point estimates with
/// distributions: a `ParamDistribution` attaches a uniform, (truncated)
/// normal or triangular distribution to a *named* Table 1 parameter (the
/// same names `scenario::table1_ranges()` uses, so the sensitivity
/// module's appliers can write sampled values into a `ModelSuite`).
///
/// Sampling is split into two deterministic halves so the Monte-Carlo
/// engine can shard samples across worker threads and still produce
/// **bit-identical results for any thread count**:
///
///   * `counter_uniform01(seed, sample, dimension)` is a stateless
///     counter-based RNG (SplitMix64-style finalizer over the combined
///     counter): sample `i`, dimension `j` always yields the same value
///     in (0, 1), no matter which worker computes it or in what order;
///   * `ParamDistribution::sample(u)` maps that uniform variate through
///     the distribution's inverse CDF (quantile function), so one uniform
///     in, one sample out -- no rejection loops, no shared RNG state.

#include <cstdint>
#include <string>
#include <string_view>
#include <optional>

namespace greenfpga::core {

/// The distribution families a parameter can carry.
enum class DistributionKind {
  uniform,     ///< flat over [low, high]
  normal,      ///< mean/stddev, truncated to [low, high]
  triangular,  ///< low/mode/high
};

[[nodiscard]] std::string to_string(DistributionKind kind);
[[nodiscard]] std::optional<DistributionKind> parse_distribution_kind(
    std::string_view text);

/// One uncertain model input: a Table 1 parameter name (matching a
/// `scenario::ParameterRange::name`) plus its distribution.  Which fields
/// are meaningful depends on `kind`:
///
///   * uniform:    low, high
///   * normal:     mean, stddev, truncated to [low, high]
///   * triangular: low, mode, high
struct ParamDistribution {
  std::string parameter;
  DistributionKind kind = DistributionKind::uniform;
  double low = 0.0;
  double high = 1.0;
  double mean = 0.0;    ///< normal only
  double stddev = 1.0;  ///< normal only
  double mode = 0.0;    ///< triangular only

  /// Structural validation (bounds ordered, stddev positive, mode inside
  /// the support).  Throws std::invalid_argument naming the parameter.
  void validate() const;

  /// Inverse-CDF sample: maps `u` in (0, 1) to a value distributed per
  /// `kind`.  Monotone in `u`, deterministic, and always within
  /// [low, high] (the normal kind is truncated, not clamped, so the
  /// density within the support is preserved).
  [[nodiscard]] double sample(double u) const;

  [[nodiscard]] static ParamDistribution uniform(std::string parameter, double low,
                                                 double high);
  [[nodiscard]] static ParamDistribution normal(std::string parameter, double mean,
                                                double stddev, double low, double high);
  [[nodiscard]] static ParamDistribution triangular(std::string parameter, double low,
                                                    double mode, double high);
};

/// Stateless counter-based RNG stream: a SplitMix64-style bit mix of
/// (seed, sample, dimension).  Returns a double in the open interval
/// (0, 1) -- never exactly 0 or 1, so inverse CDFs stay finite.
[[nodiscard]] double counter_uniform01(std::uint64_t seed, std::uint64_t sample,
                                       std::uint64_t dimension);

/// The raw 64-bit counter hash behind `counter_uniform01` (exposed for
/// tests pinning the stream).
[[nodiscard]] std::uint64_t counter_hash(std::uint64_t seed, std::uint64_t sample,
                                         std::uint64_t dimension);

/// Inverse of the standard normal CDF (the probit function), via the
/// Acklam rational approximation (relative error < 1.2e-9 across (0, 1)).
/// Throws std::invalid_argument outside (0, 1).
[[nodiscard]] double inverse_normal_cdf(double p);

}  // namespace greenfpga::core

#endif  // GREENFPGA_CORE_PARAM_DISTRIBUTIONS_HPP
