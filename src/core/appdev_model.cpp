/// \file appdev_model.cpp
/// Eq. 7 application-development carbon (engineering + configuration).

#include "core/appdev_model.hpp"

#include <stdexcept>

#include "units/units.hpp"

namespace greenfpga::core {

AppDevModel::AppDevModel(AppDevParameters parameters) : parameters_(parameters) {
  if (parameters_.dev_systems <= 0.0) {
    throw std::invalid_argument("AppDevModel: dev system count must be positive");
  }
  if (parameters_.dev_system_power.canonical() < 0.0) {
    throw std::invalid_argument("AppDevModel: dev system power must be non-negative");
  }
  if (parameters_.frontend_time.canonical() < 0.0 ||
      parameters_.backend_time.canonical() < 0.0 ||
      parameters_.config_time.canonical() < 0.0 ||
      parameters_.asic_software_dev_time.canonical() < 0.0 ||
      parameters_.gpu_software_dev_time.canonical() < 0.0 ||
      parameters_.cpu_software_dev_time.canonical() < 0.0) {
    throw std::invalid_argument("AppDevModel: times must be non-negative");
  }
}

units::TimeSpan AppDevModel::development_time(int app_count, double chip_volume,
                                              bool is_fpga) const {
  if (app_count < 0) {
    throw std::invalid_argument("development_time: negative application count");
  }
  if (chip_volume < 0.0) {
    throw std::invalid_argument("development_time: negative volume");
  }
  const units::TimeSpan per_app = is_fpga
                                      ? parameters_.frontend_time + parameters_.backend_time
                                      : parameters_.asic_software_dev_time;
  // Eq. (7): N_app * (T_FE + T_BE) + N_vol * T_config.
  units::TimeSpan total = per_app * static_cast<double>(app_count);
  if (is_fpga) {
    total += parameters_.config_time * chip_volume;
  }
  return total;
}

AppDevBreakdown AppDevModel::per_application(double chip_volume, bool is_fpga) const {
  return per_application(chip_volume,
                         is_fpga ? device::ChipKind::fpga : device::ChipKind::asic);
}

units::TimeSpan AppDevModel::engineering_time(device::ChipKind kind) const {
  switch (kind) {
    case device::ChipKind::fpga:
      return parameters_.frontend_time + parameters_.backend_time;
    case device::ChipKind::asic:
      return parameters_.asic_software_dev_time;
    case device::ChipKind::gpu:
      return parameters_.gpu_software_dev_time;
    case device::ChipKind::cpu:
      return parameters_.cpu_software_dev_time;
  }
  throw std::invalid_argument("engineering_time: unknown chip kind");
}

AppDevBreakdown AppDevModel::per_application(double chip_volume,
                                             device::ChipKind kind) const {
  if (chip_volume < 0.0) {
    throw std::invalid_argument("per_application: negative volume");
  }
  // Engineering time runs on `dev_systems` parallel machines; configuration
  // is one machine per chip for T_config (FPGA bitstream loads only).
  const units::Power fleet_power = parameters_.dev_system_power * parameters_.dev_systems;
  AppDevBreakdown result{
      .engineering = parameters_.dev_intensity * (fleet_power * engineering_time(kind)),
      .configuration = units::CarbonMass{},
  };
  if (kind == device::ChipKind::fpga) {
    result.configuration = parameters_.dev_intensity *
                           (parameters_.dev_system_power * parameters_.config_time) *
                           chip_volume;
  }
  return result;
}

}  // namespace greenfpga::core
