#ifndef GREENFPGA_CORE_PARALLEL_HPP
#define GREENFPGA_CORE_PARALLEL_HPP

/// \file parallel.hpp
/// The deterministic worker-pool primitive shared by the evaluation
/// subsystems (`scenario::Engine`, `dse::FrontierSearch`).
///
/// One contract, stated once: work items are independent, each writes to
/// a pre-sized slot of its own, and every item is computed by the same
/// deterministic code from the same inputs -- so results are bit-identical
/// for ANY worker count.  The pool only changes *which thread* computes a
/// slot, never *what* is computed.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace greenfpga::core {

/// Run `fn(state, index)` for every index in [0, n) on up to `threads`
/// workers, where each worker owns a private `state = make_state()`.
/// Work items are independent and write to disjoint slots, so results are
/// identical for any worker count; the first exception is rethrown on the
/// caller's thread.
template <typename MakeState, typename Fn>
void parallel_for_state(std::size_t n, int threads, MakeState&& make_state, Fn&& fn) {
  const int workers =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(std::max(threads, 1)), n));
  if (workers <= 1) {
    auto state = make_state();
    for (std::size_t i = 0; i < n; ++i) {
      fn(state, i);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      // The whole body (state construction included -- suite validation
      // can throw) stays inside the try: an exception escaping a thread
      // would call std::terminate instead of reporting a runtime error.
      try {
        auto state = make_state();
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) {
            return;
          }
          fn(state, i);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
        next.store(n, std::memory_order_relaxed);  // drain remaining work
      }
    });
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace greenfpga::core

#endif  // GREENFPGA_CORE_PARALLEL_HPP
