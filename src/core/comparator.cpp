/// \file comparator.cpp
/// Head-to-head and three-way platform comparisons with verdicts.

#include "core/comparator.hpp"

#include <cmath>

namespace greenfpga::core {

std::string to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::fpga_lower:
      return "FPGA";
    case Verdict::asic_lower:
      return "ASIC";
    case Verdict::tie:
      return "tie";
  }
  return "unknown";
}

double Comparison::ratio() const {
  const double asic_total = asic.total.total().canonical();
  const double fpga_total = fpga.total.total().canonical();
  return fpga_total / asic_total;
}

Verdict Comparison::verdict() const {
  const double r = ratio();
  if (std::fabs(r - 1.0) < 1e-3) {
    return Verdict::tie;
  }
  return r < 1.0 ? Verdict::fpga_lower : Verdict::asic_lower;
}

Comparison compare(const LifecycleModel& model, const device::DomainTestcase& testcase,
                   const workload::Schedule& schedule) {
  return compare(model, testcase.asic, testcase.fpga, schedule);
}

Comparison compare(const LifecycleModel& model, const device::ChipSpec& asic,
                   const device::ChipSpec& fpga, const workload::Schedule& schedule) {
  return Comparison{
      .asic = model.evaluate_asic(asic, schedule),
      .fpga = model.evaluate_fpga(fpga, schedule),
  };
}

double ThreeWayComparison::fpga_ratio() const {
  return fpga.total.total().canonical() / asic.total.total().canonical();
}

double ThreeWayComparison::gpu_ratio() const {
  return gpu.total.total().canonical() / asic.total.total().canonical();
}

device::ChipKind ThreeWayComparison::winner() const {
  const double asic_total = asic.total.total().canonical();
  const double fpga_total = fpga.total.total().canonical();
  const double gpu_total = gpu.total.total().canonical();
  if (fpga_total <= asic_total && fpga_total <= gpu_total) {
    return device::ChipKind::fpga;
  }
  return asic_total <= gpu_total ? device::ChipKind::asic : device::ChipKind::gpu;
}

ThreeWayComparison compare_three_way(const LifecycleModel& model,
                                     const device::DomainTestcase& testcase,
                                     const workload::Schedule& schedule) {
  const device::ChipSpec gpu = device::derive_iso_gpu(testcase.asic, testcase.domain);
  return ThreeWayComparison{
      .asic = model.evaluate_asic(testcase.asic, schedule),
      .fpga = model.evaluate_fpga(testcase.fpga, schedule),
      .gpu = model.evaluate_gpu(gpu, schedule),
  };
}

}  // namespace greenfpga::core
