/// \file config_io.cpp
/// JSON (de)serialisation of suites, chips and schedules; unknown keys fail loudly.

#include "core/config_io.hpp"

#include <functional>
#include <initializer_list>

#include "units/units.hpp"

namespace greenfpga::core {

void check_known_keys(const io::Json& json, const std::string& context,
                      std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : json.as_object()) {
    bool known = false;
    for (const std::string_view candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw ConfigError("unknown key \"" + key + "\" in " + context);
    }
  }
}

std::int64_t int_field_or(const io::Json& json, std::string_view key,
                          std::int64_t fallback, std::int64_t lo, std::int64_t hi) {
  if (!json.contains(key)) {
    return fallback;
  }
  std::int64_t value = 0;
  try {
    value = json.at(key).as_int();
  } catch (const io::JsonError&) {
    throw ConfigError("\"" + std::string(key) + "\" must be an integer");
  }
  if (value < lo || value > hi) {
    throw ConfigError("\"" + std::string(key) + "\" must be in [" + std::to_string(lo) +
                      ", " + std::to_string(hi) + "], got " + std::to_string(value));
  }
  return value;
}

namespace {

using io::Json;
using namespace units::unit;

/// Local alias for the shared unknown-key guard.
void check_keys(const Json& json, const std::string& context,
                std::initializer_list<std::string_view> allowed) {
  check_known_keys(json, context, allowed);
}

units::CarbonIntensity intensity_from(const Json& json, const std::string& key,
                                      units::CarbonIntensity fallback) {
  if (!json.contains(key)) {
    return fallback;
  }
  return json.at(key).as_number() * g_per_kwh;
}

DesignParameters design_from_json(const Json& json, DesignParameters p) {
  check_keys(json, "design parameters",
             {"annual_energy_gwh", "intensity_g_per_kwh", "company_employees",
              "product_team_size", "average_product_gates", "project_duration_years",
              "fpga_regularity_factor"});
  p.annual_energy = json.number_or("annual_energy_gwh", p.annual_energy.in(gwh)) * gwh;
  p.intensity = intensity_from(json, "intensity_g_per_kwh", p.intensity);
  p.company_employees = json.number_or("company_employees", p.company_employees);
  p.product_team_size = json.number_or("product_team_size", p.product_team_size);
  p.average_product_gates = json.number_or("average_product_gates", p.average_product_gates);
  p.project_duration =
      json.number_or("project_duration_years", p.project_duration.in(years)) * years;
  p.fpga_regularity_factor =
      json.number_or("fpga_regularity_factor", p.fpga_regularity_factor);
  return p;
}

AppDevParameters appdev_from_json(const Json& json, AppDevParameters p) {
  check_keys(json, "appdev parameters",
             {"frontend_months", "backend_months", "config_minutes", "dev_system_power_w",
              "dev_systems", "dev_intensity_g_per_kwh", "accounting",
              "asic_software_dev_months", "gpu_software_dev_months",
              "cpu_software_dev_months"});
  p.frontend_time = json.number_or("frontend_months", p.frontend_time.in(months)) * months;
  p.backend_time = json.number_or("backend_months", p.backend_time.in(months)) * months;
  p.config_time = json.number_or("config_minutes", p.config_time.in(minutes)) * minutes;
  p.dev_system_power =
      json.number_or("dev_system_power_w", p.dev_system_power.in(w)) * w;
  p.dev_systems = json.number_or("dev_systems", p.dev_systems);
  p.dev_intensity = intensity_from(json, "dev_intensity_g_per_kwh", p.dev_intensity);
  if (json.contains("accounting")) {
    const std::string& mode = json.at("accounting").as_string();
    if (mode == "one_time") {
      p.accounting = AppDevAccounting::one_time;
    } else if (mode == "per_year") {
      p.accounting = AppDevAccounting::per_year;
    } else {
      throw ConfigError("appdev.accounting must be \"one_time\" or \"per_year\", got \"" +
                        mode + "\"");
    }
  }
  p.asic_software_dev_time =
      json.number_or("asic_software_dev_months", p.asic_software_dev_time.in(months)) *
      months;
  p.gpu_software_dev_time =
      json.number_or("gpu_software_dev_months", p.gpu_software_dev_time.in(months)) * months;
  p.cpu_software_dev_time =
      json.number_or("cpu_software_dev_months", p.cpu_software_dev_time.in(months)) * months;
  return p;
}

act::FabParameters fab_from_json(const Json& json, act::FabParameters p) {
  check_keys(json, "fab parameters",
             {"energy_intensity_g_per_kwh", "recycled_material_fraction", "yield_model",
              "clustering_alpha", "line_yield", "defect_density_per_cm2"});
  p.fab_energy_intensity =
      intensity_from(json, "energy_intensity_g_per_kwh", p.fab_energy_intensity);
  p.recycled_material_fraction =
      json.number_or("recycled_material_fraction", p.recycled_material_fraction);
  if (json.contains("yield_model")) {
    const std::string& model = json.at("yield_model").as_string();
    if (model == "poisson") {
      p.yield.model = tech::YieldModel::poisson;
    } else if (model == "murphy") {
      p.yield.model = tech::YieldModel::murphy;
    } else if (model == "seeds") {
      p.yield.model = tech::YieldModel::seeds;
    } else if (model == "negative_binomial" || model == "negative-binomial") {
      p.yield.model = tech::YieldModel::negative_binomial;
    } else {
      throw ConfigError("unknown yield model \"" + model + "\"");
    }
  }
  p.yield.clustering_alpha = json.number_or("clustering_alpha", p.yield.clustering_alpha);
  p.yield.line_yield = json.number_or("line_yield", p.yield.line_yield);
  if (json.contains("defect_density_per_cm2")) {
    p.defect_density_override =
        tech::DefectDensity{json.at("defect_density_per_cm2").as_number() / 100.0};
  }
  return p;
}

act::OperationalParameters operation_from_json(const Json& json,
                                               act::OperationalParameters p) {
  check_keys(json, "operation parameters",
             {"use_intensity_g_per_kwh", "duty_cycle", "pue"});
  p.use_intensity = intensity_from(json, "use_intensity_g_per_kwh", p.use_intensity);
  p.duty_cycle = json.number_or("duty_cycle", p.duty_cycle);
  p.power_usage_effectiveness = json.number_or("pue", p.power_usage_effectiveness);
  return p;
}

pkg::PackageParameters package_from_json(const Json& json, pkg::PackageParameters p) {
  check_keys(json, "package parameters",
             {"type", "assembly_overhead_kg", "substrate_kg_per_cm2", "footprint_ratio",
              "interposer_node", "interposer_area_ratio", "bonding_per_die_kg"});
  if (json.contains("type")) {
    const std::string& type = json.at("type").as_string();
    if (type == "monolithic") {
      p.type = pkg::PackageType::monolithic;
    } else if (type == "rdl_fanout") {
      p.type = pkg::PackageType::rdl_fanout;
    } else if (type == "silicon_interposer") {
      p.type = pkg::PackageType::silicon_interposer;
    } else if (type == "emib") {
      p.type = pkg::PackageType::emib;
    } else if (type == "3d") {
      p.type = pkg::PackageType::three_d;
    } else {
      throw ConfigError("unknown package type \"" + type + "\"");
    }
  }
  p.assembly_overhead =
      units::CarbonMass{json.number_or("assembly_overhead_kg",
                                       p.assembly_overhead.canonical())};
  p.substrate_per_area = json.number_or("substrate_kg_per_cm2",
                                        p.substrate_per_area.in(kg_per_cm2)) *
                         kg_per_cm2;
  p.footprint_ratio = json.number_or("footprint_ratio", p.footprint_ratio);
  if (json.contains("interposer_node")) {
    const auto node = tech::parse_node(json.at("interposer_node").as_string());
    if (!node) {
      throw ConfigError("unknown interposer node \"" +
                        json.at("interposer_node").as_string() + "\"");
    }
    p.interposer_node = *node;
  }
  p.interposer_area_ratio = json.number_or("interposer_area_ratio", p.interposer_area_ratio);
  p.bonding_per_die =
      units::CarbonMass{json.number_or("bonding_per_die_kg", p.bonding_per_die.canonical())};
  return p;
}

eol::EolParameters eol_from_json(const Json& json, eol::EolParameters p) {
  check_keys(json, "eol parameters",
             {"recycled_fraction", "discard_mtco2e_per_ton", "recycle_mtco2e_per_ton"});
  p.recycled_fraction = json.number_or("recycled_fraction", p.recycled_fraction);
  p.discard_factor = json.number_or("discard_mtco2e_per_ton",
                                    p.discard_factor.in(mtco2e_per_ton)) *
                     mtco2e_per_ton;
  p.recycle_credit_factor = json.number_or("recycle_mtco2e_per_ton",
                                           p.recycle_credit_factor.in(mtco2e_per_ton)) *
                            mtco2e_per_ton;
  return p;
}

}  // namespace

ModelSuite suite_from_json(const Json& json, ModelSuite defaults) {
  check_keys(json, "suite", {"design", "appdev", "fab", "operation", "package", "eol"});
  ModelSuite suite = defaults;
  if (json.contains("design")) suite.design = design_from_json(json.at("design"), suite.design);
  if (json.contains("appdev")) suite.appdev = appdev_from_json(json.at("appdev"), suite.appdev);
  if (json.contains("fab")) suite.fab = fab_from_json(json.at("fab"), suite.fab);
  if (json.contains("operation")) {
    suite.operation = operation_from_json(json.at("operation"), suite.operation);
  }
  if (json.contains("package")) {
    suite.package = package_from_json(json.at("package"), suite.package);
  }
  if (json.contains("eol")) suite.eol = eol_from_json(json.at("eol"), suite.eol);
  return suite;
}

device::ChipSpec chip_from_json(const Json& json) {
  check_keys(json, "chip",
             {"name", "kind", "node", "die_area_mm2", "peak_power_w", "capacity_gates",
              "service_life_years", "chiplet_count", "chiplet_package"});
  device::ChipSpec chip;
  chip.name = json.string_or("name", "chip");
  const std::string kind = json.string_or("kind", "asic");
  if (kind == "asic") {
    chip.kind = device::ChipKind::asic;
  } else if (kind == "fpga") {
    chip.kind = device::ChipKind::fpga;
  } else if (kind == "gpu") {
    chip.kind = device::ChipKind::gpu;
  } else if (kind == "cpu") {
    chip.kind = device::ChipKind::cpu;
  } else {
    throw ConfigError("chip.kind must be \"asic\", \"fpga\", \"gpu\" or \"cpu\", got \"" +
                      kind + "\"");
  }
  const std::string node_text = json.string_or("node", "10nm");
  const auto node = tech::parse_node(node_text);
  if (!node) {
    throw ConfigError("unknown process node \"" + node_text + "\"");
  }
  chip.node = *node;
  if (!json.contains("die_area_mm2") || !json.contains("peak_power_w")) {
    throw ConfigError("chip \"" + chip.name + "\" needs die_area_mm2 and peak_power_w");
  }
  chip.die_area = json.at("die_area_mm2").as_number() * mm2;
  chip.peak_power = json.at("peak_power_w").as_number() * w;
  if (json.contains("capacity_gates")) {
    chip.capacity_gates = json.at("capacity_gates").as_number();
  } else {
    // Default capacity: silicon gates (ASIC) or silicon gates over the
    // fabric overhead (FPGA).
    const double silicon = tech::node_info(chip.node).gates_in_area(chip.die_area);
    chip.capacity_gates =
        chip.is_fpga() ? silicon / device::kFpgaFabricOverhead : silicon;
  }
  chip.service_life =
      json.number_or("service_life_years",
                     chip.is_fpga() ? 15.0
                                    : (chip.is_gpu() ? 7.0 : (chip.is_cpu() ? 5.0 : 8.0))) *
      years;
  chip.chiplet_count =
      static_cast<int>(int_field_or(json, "chiplet_count", chip.chiplet_count, 1, 64));
  chip.chiplet_package = json.string_or("chiplet_package", chip.chiplet_package);
  chip.validate();
  return chip;
}

workload::Application application_from_json(const Json& json) {
  check_keys(json, "application",
             {"name", "domain", "lifetime_years", "volume", "size_gates"});
  workload::Application app;
  app.name = json.string_or("name", "app");
  const std::string domain = json.string_or("domain", "DNN");
  if (domain == "DNN" || domain == "dnn") {
    app.domain = device::Domain::dnn;
  } else if (domain == "ImgProc" || domain == "imgproc") {
    app.domain = device::Domain::imgproc;
  } else if (domain == "Crypto" || domain == "crypto") {
    app.domain = device::Domain::crypto;
  } else {
    throw ConfigError("unknown domain \"" + domain + "\"");
  }
  app.lifetime = json.number_or("lifetime_years", 2.0) * years;
  app.volume = json.number_or("volume", 1e6);
  app.size_gates = json.number_or("size_gates", 0.0);
  app.validate();
  return app;
}

workload::Schedule schedule_from_json(const Json& json) {
  workload::Schedule schedule;
  for (const Json& element : json.as_array()) {
    schedule.push_back(application_from_json(element));
  }
  workload::validate(schedule);
  return schedule;
}

ScenarioConfig scenario_from_json(const Json& json) {
  check_keys(json, "scenario", {"name", "suite", "asic", "fpga", "schedule"});
  ScenarioConfig config;
  config.name = json.string_or("name", "scenario");
  config.suite = json.contains("suite") ? suite_from_json(json.at("suite"), paper_suite())
                                        : paper_suite();
  if (!json.contains("asic") || !json.contains("fpga") || !json.contains("schedule")) {
    throw ConfigError("scenario needs asic, fpga and schedule sections");
  }
  config.asic = chip_from_json(json.at("asic"));
  config.fpga = chip_from_json(json.at("fpga"));
  if (config.asic.kind != device::ChipKind::asic || !config.fpga.is_fpga()) {
    throw ConfigError("scenario.asic must be an ASIC and scenario.fpga an FPGA");
  }
  config.schedule = schedule_from_json(json.at("schedule"));
  return config;
}

ScenarioConfig load_scenario(const std::string& path) {
  return scenario_from_json(io::parse_json_file(path));
}

// -- writers -------------------------------------------------------------------

Json to_json(const ModelSuite& suite) {
  Json design = Json::object();
  design["annual_energy_gwh"] = suite.design.annual_energy.in(gwh);
  design["intensity_g_per_kwh"] = suite.design.intensity.in(g_per_kwh);
  design["company_employees"] = suite.design.company_employees;
  design["product_team_size"] = suite.design.product_team_size;
  design["average_product_gates"] = suite.design.average_product_gates;
  design["project_duration_years"] = suite.design.project_duration.in(years);
  design["fpga_regularity_factor"] = suite.design.fpga_regularity_factor;

  Json appdev = Json::object();
  appdev["frontend_months"] = suite.appdev.frontend_time.in(months);
  appdev["backend_months"] = suite.appdev.backend_time.in(months);
  appdev["config_minutes"] = suite.appdev.config_time.in(minutes);
  appdev["dev_system_power_w"] = suite.appdev.dev_system_power.in(w);
  appdev["dev_systems"] = suite.appdev.dev_systems;
  appdev["dev_intensity_g_per_kwh"] = suite.appdev.dev_intensity.in(g_per_kwh);
  appdev["accounting"] =
      suite.appdev.accounting == AppDevAccounting::one_time ? "one_time" : "per_year";
  appdev["asic_software_dev_months"] = suite.appdev.asic_software_dev_time.in(months);
  appdev["gpu_software_dev_months"] = suite.appdev.gpu_software_dev_time.in(months);
  appdev["cpu_software_dev_months"] = suite.appdev.cpu_software_dev_time.in(months);

  Json fab = Json::object();
  fab["energy_intensity_g_per_kwh"] = suite.fab.fab_energy_intensity.in(g_per_kwh);
  fab["recycled_material_fraction"] = suite.fab.recycled_material_fraction;
  fab["yield_model"] = to_string(suite.fab.yield.model);
  fab["clustering_alpha"] = suite.fab.yield.clustering_alpha;
  fab["line_yield"] = suite.fab.yield.line_yield;

  Json operation = Json::object();
  operation["use_intensity_g_per_kwh"] = suite.operation.use_intensity.in(g_per_kwh);
  operation["duty_cycle"] = suite.operation.duty_cycle;
  operation["pue"] = suite.operation.power_usage_effectiveness;

  Json package = Json::object();
  package["type"] = to_string(suite.package.type);
  package["assembly_overhead_kg"] = suite.package.assembly_overhead.canonical();
  package["substrate_kg_per_cm2"] = suite.package.substrate_per_area.in(kg_per_cm2);
  package["footprint_ratio"] = suite.package.footprint_ratio;

  Json eol_json = Json::object();
  eol_json["recycled_fraction"] = suite.eol.recycled_fraction;
  eol_json["discard_mtco2e_per_ton"] = suite.eol.discard_factor.in(mtco2e_per_ton);
  eol_json["recycle_mtco2e_per_ton"] = suite.eol.recycle_credit_factor.in(mtco2e_per_ton);

  Json out = Json::object();
  out["design"] = std::move(design);
  out["appdev"] = std::move(appdev);
  out["fab"] = std::move(fab);
  out["operation"] = std::move(operation);
  out["package"] = std::move(package);
  out["eol"] = std::move(eol_json);
  return out;
}

Json to_json(const device::ChipSpec& chip) {
  Json out = Json::object();
  out["name"] = chip.name;
  out["kind"] = chip.is_fpga() ? "fpga"
                               : (chip.is_gpu() ? "gpu" : (chip.is_cpu() ? "cpu" : "asic"));
  out["node"] = tech::to_string(chip.node);
  out["die_area_mm2"] = chip.die_area.in(mm2);
  out["peak_power_w"] = chip.peak_power.in(w);
  out["capacity_gates"] = chip.capacity_gates;
  out["service_life_years"] = chip.service_life.in(years);
  out["chiplet_count"] = chip.chiplet_count;
  out["chiplet_package"] = chip.chiplet_package;
  return out;
}

Json to_json(const workload::Application& app) {
  Json out = Json::object();
  out["name"] = app.name;
  out["domain"] = to_string(app.domain);
  out["lifetime_years"] = app.lifetime.in(years);
  out["volume"] = app.volume;
  out["size_gates"] = app.size_gates;
  return out;
}

Json to_json(const workload::Schedule& schedule) {
  Json out = Json::array();
  for (const workload::Application& app : schedule) {
    out.push_back(to_json(app));
  }
  return out;
}

Json to_json(const CfpBreakdown& breakdown) {
  Json out = Json::object();
  out["design_kg"] = breakdown.design.canonical();
  out["manufacturing_kg"] = breakdown.manufacturing.canonical();
  out["packaging_kg"] = breakdown.packaging.canonical();
  out["eol_kg"] = breakdown.eol.canonical();
  out["operational_kg"] = breakdown.operational.canonical();
  out["app_dev_kg"] = breakdown.app_dev.canonical();
  out["embodied_kg"] = breakdown.embodied().canonical();
  out["total_kg"] = breakdown.total().canonical();
  return out;
}

CfpBreakdown breakdown_from_json(const Json& json) {
  check_keys(json, "breakdown",
             {"design_kg", "manufacturing_kg", "packaging_kg", "eol_kg",
              "operational_kg", "app_dev_kg", "embodied_kg", "total_kg"});
  // Total reads (non-finite sentinels decoded): breakdowns are *result*
  // payload written by the canonical writer, never hand-authored config.
  const auto component = [&json](std::string_view key) {
    return units::CarbonMass(json.contains(key) ? json.at(key).as_number_total() : 0.0);
  };
  CfpBreakdown breakdown;
  breakdown.design = component("design_kg");
  breakdown.manufacturing = component("manufacturing_kg");
  breakdown.packaging = component("packaging_kg");
  breakdown.eol = component("eol_kg");
  breakdown.operational = component("operational_kg");
  breakdown.app_dev = component("app_dev_kg");
  return breakdown;
}

PlatformCfp platform_cfp_from_json(const Json& json) {
  check_keys(json, "platform result",
             {"kind", "chips_manufactured", "total", "per_application"});
  PlatformCfp platform;
  const std::string kind = json.string_or("kind", "ASIC");
  if (kind == "ASIC") {
    platform.kind = device::ChipKind::asic;
  } else if (kind == "FPGA") {
    platform.kind = device::ChipKind::fpga;
  } else if (kind == "GPU") {
    platform.kind = device::ChipKind::gpu;
  } else if (kind == "CPU") {
    platform.kind = device::ChipKind::cpu;
  } else {
    throw ConfigError(
        "platform result kind must be \"ASIC\", \"FPGA\", \"GPU\" or \"CPU\", got \"" +
        kind + "\"");
  }
  platform.chips_manufactured = json.number_or("chips_manufactured", 0.0);
  platform.total = breakdown_from_json(json.at("total"));
  if (json.contains("per_application")) {
    for (const Json& entry : json.at("per_application").as_array()) {
      check_keys(entry, "per_application", {"application", "chips_per_unit", "cfp"});
      ApplicationCfp app;
      app.application = entry.string_or("application", "");
      app.chips_per_unit =
          static_cast<int>(int_field_or(entry, "chips_per_unit", 1, 0, 1'000'000'000));
      app.cfp = breakdown_from_json(entry.at("cfp"));
      platform.per_application.push_back(std::move(app));
    }
  }
  return platform;
}

Json to_json(const PlatformCfp& platform) {
  Json out = Json::object();
  out["kind"] = to_string(platform.kind);
  out["chips_manufactured"] = platform.chips_manufactured;
  out["total"] = to_json(platform.total);
  Json apps = Json::array();
  for (const ApplicationCfp& app : platform.per_application) {
    Json entry = Json::object();
    entry["application"] = app.application;
    entry["chips_per_unit"] = app.chips_per_unit;
    entry["cfp"] = to_json(app.cfp);
    apps.push_back(std::move(entry));
  }
  out["per_application"] = std::move(apps);
  return out;
}

}  // namespace greenfpga::core
