/// \file design_model.cpp
/// Eq. 4 energy-anchored design CFP, plus the gate-count prior-art model (ablation A1).

#include "core/design_model.hpp"

#include <stdexcept>

#include "tech/node.hpp"
#include "units/units.hpp"

namespace greenfpga::core {

DesignModel::DesignModel(DesignParameters parameters) : parameters_(parameters) {
  if (parameters_.company_employees <= 0.0) {
    throw std::invalid_argument("DesignModel: company employees must be positive");
  }
  if (parameters_.product_team_size <= 0.0) {
    throw std::invalid_argument("DesignModel: product team size must be positive");
  }
  if (parameters_.average_product_gates <= 0.0) {
    throw std::invalid_argument("DesignModel: average product gates must be positive");
  }
  if (parameters_.project_duration.canonical() <= 0.0) {
    throw std::invalid_argument("DesignModel: project duration must be positive");
  }
  if (parameters_.fpga_regularity_factor <= 0.0 || parameters_.fpga_regularity_factor > 1.0) {
    throw std::invalid_argument("DesignModel: FPGA regularity factor must be in (0, 1]");
  }
}

units::CarbonMass DesignModel::carbon_per_employee_year() const {
  // C_emp = E_des * C_src,des / N_emp,company
  return parameters_.intensity * parameters_.annual_energy / parameters_.company_employees;
}

units::CarbonMass DesignModel::design_carbon(double gate_count, bool is_fpga) const {
  if (gate_count < 0.0) {
    throw std::invalid_argument("design_carbon: negative gate count");
  }
  const double effective_gates =
      is_fpga ? gate_count * parameters_.fpga_regularity_factor : gate_count;
  const double size_ratio = effective_gates / parameters_.average_product_gates;
  const double project_years = parameters_.project_duration.in(units::unit::years);
  // Eq. (4): C_emp * N_emp,des * (N_gates / N_gates,des) * T_proj.
  return carbon_per_employee_year() * parameters_.product_team_size * size_ratio *
         project_years;
}

units::CarbonMass DesignModel::design_carbon(const device::ChipSpec& chip) const {
  chip.validate();
  const double silicon_gates = tech::node_info(chip.node).gates_in_area(chip.die_area);
  return design_carbon(silicon_gates, chip.is_fpga());
}

units::CarbonMass DesignModel::gate_count_model(double gate_count,
                                                units::CarbonMass carbon_per_gate) {
  if (gate_count < 0.0) {
    throw std::invalid_argument("gate_count_model: negative gate count");
  }
  return carbon_per_gate * gate_count;
}

}  // namespace greenfpga::core
