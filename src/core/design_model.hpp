#ifndef GREENFPGA_CORE_DESIGN_MODEL_HPP
#define GREENFPGA_CORE_DESIGN_MODEL_HPP

/// \file design_model.hpp
/// Design-phase CFP model (paper §3.2(1), Eq. 4).
///
/// The paper's second contribution: prior art costed chip design from gate
/// count alone and "grossly underestimated" it.  GreenFPGA instead anchors
/// design CFP in the measured energy of fabless design houses
/// (sustainability reports: Microchip, NVIDIA, AMD), apportioning a
/// company's annual energy carbon to one product by team size, relative
/// chip size, and project duration.  Design CFP is charged **once per chip
/// design** -- per application for ASICs, once for an FPGA regardless of
/// how many applications it later serves.  That asymmetry is the heart of
/// the FPGA sustainability argument.

#include "core/parameters.hpp"
#include "device/chip_spec.hpp"
#include "units/quantity.hpp"

namespace greenfpga::core {

/// Implements Eq. (4); also provides the ECO-CHIP-style gate-count model
/// for the design-model ablation bench.
class DesignModel {
 public:
  explicit DesignModel(DesignParameters parameters = {});

  [[nodiscard]] const DesignParameters& parameters() const { return parameters_; }

  /// C_emp: annual CFP per design-house employee.
  [[nodiscard]] units::CarbonMass carbon_per_employee_year() const;

  /// Eq. (4) for a chip of `gate_count` equivalent gates.  `is_fpga`
  /// applies the fabric-regularity design-effort discount.
  [[nodiscard]] units::CarbonMass design_carbon(double gate_count, bool is_fpga) const;

  /// Eq. (4) for a device spec: gate count taken from the silicon (die
  /// area at the node's density), not the usable FPGA capacity -- the
  /// vendor designs the whole die.
  [[nodiscard]] units::CarbonMass design_carbon(const device::ChipSpec& chip) const;

  /// ECO-CHIP-style prior-art model for the ablation: design CFP purely
  /// proportional to gate count, `carbon_per_gate` per gate (no team /
  /// energy / duration structure).  Kept for bench/ablation_design_model.
  [[nodiscard]] static units::CarbonMass gate_count_model(double gate_count,
                                                          units::CarbonMass carbon_per_gate);

 private:
  DesignParameters parameters_;
};

}  // namespace greenfpga::core

#endif  // GREENFPGA_CORE_DESIGN_MODEL_HPP
