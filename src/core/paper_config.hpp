#ifndef GREENFPGA_CORE_PAPER_CONFIG_HPP
#define GREENFPGA_CORE_PAPER_CONFIG_HPP

/// \file paper_config.hpp
/// Calibrated parameter suites reproducing the paper's evaluation.
///
/// Two deployment regimes appear in the paper (DESIGN.md §4):
///
///  * `paper_suite()` -- the domain testcases of Figs. 2/4-9.  These are
///    high-volume (1e6-unit) *edge* deployments: accelerators that sit
///    mostly idle (2 % duty cycle, watt-class peak power).  In this regime
///    embodied carbon dominates a deployed year, which is the regime where
///    all of the paper's crossovers (A2F at N_app~6, F2A at T~1.6 y, volume
///    crossovers) occur.  Parameters sit inside Table 1's ranges.
///
///  * `industry_suite()` -- the Table 3 industry testcases of Figs. 10/11.
///    Datacenter deployment: 50 % duty cycle, PUE 1.2, TDP-class powers,
///    TPU/Agilex-scale design teams.  Here operational carbon dominates,
///    which is exactly what Figs. 10/11 report.
///
/// The domain base-device values (area/power of the 10 nm ASICs in
/// device/catalog.cpp) plus these suites are pinned by
/// tests/calibration_test.cpp to keep the headline crossovers in the
/// paper's bands.

#include "core/lifecycle_model.hpp"
#include "device/catalog.hpp"
#include "workload/application.hpp"

namespace greenfpga::core {

/// Parameter suite for the domain-testcase experiments (Figs. 2, 4-9).
[[nodiscard]] ModelSuite paper_suite();

/// Parameter suite for the industry-testcase experiments (Figs. 10-11).
[[nodiscard]] ModelSuite industry_suite();

/// The paper's canonical sweep defaults: N_app = 5, T_i = 2 years,
/// N_vol = 1e6 (§4.2(D)).
struct SweepDefaults {
  int app_count = 5;
  units::TimeSpan app_lifetime = 2.0 * units::unit::years;
  double app_volume = 1e6;
};

[[nodiscard]] SweepDefaults paper_sweep_defaults();

/// Schedule of `app_count` identical applications for a domain, using the
/// paper defaults for any parameter not overridden.
[[nodiscard]] workload::Schedule paper_schedule(device::Domain domain, int app_count,
                                                units::TimeSpan lifetime, double volume);

/// Convenience: paper_schedule with all defaults.
[[nodiscard]] workload::Schedule paper_schedule(device::Domain domain);

}  // namespace greenfpga::core

#endif  // GREENFPGA_CORE_PAPER_CONFIG_HPP
