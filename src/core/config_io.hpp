#ifndef GREENFPGA_CORE_CONFIG_IO_HPP
#define GREENFPGA_CORE_CONFIG_IO_HPP

/// \file config_io.hpp
/// JSON (de)serialisation of the GreenFPGA configuration types.
///
/// The CLI consumes scenario files shaped like:
///
///     {
///       // model parameters; any omitted field keeps its paper default
///       "suite": { "design": {...}, "appdev": {...}, "fab": {...},
///                  "operation": {...}, "package": {...}, "eol": {...} },
///       "asic":  { "name": "...", "node": "10nm", "die_area_mm2": 150,
///                  "peak_power_w": 2.0, ... },
///       "fpga":  { ... },
///       "schedule": [ { "name": "app-1", "lifetime_years": 2,
///                       "volume": 1e6 }, ... ]
///     }
///
/// Quantities appear in config files as plain numbers with the unit in the
/// key name (`die_area_mm2`, `lifetime_years`), the format used by the
/// released tool's configs.  Unknown keys raise ConfigError so typos fail
/// loudly instead of silently keeping defaults.

#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/lifecycle_model.hpp"
#include "core/paper_config.hpp"
#include "io/json.hpp"
#include "workload/application.hpp"

namespace greenfpga::core {

/// Raised on malformed or inconsistent configuration input.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& message) : std::runtime_error(message) {}
};

/// A fully-specified comparison scenario.
struct ScenarioConfig {
  std::string name = "scenario";
  ModelSuite suite;
  device::ChipSpec asic;
  device::ChipSpec fpga;
  workload::Schedule schedule;
};

/// Verifies a JSON object uses only `allowed` keys, raising ConfigError
/// naming the offender and `context` otherwise (shared by every config
/// reader so typos fail loudly and identically).
void check_known_keys(const io::Json& json, const std::string& context,
                      std::initializer_list<std::string_view> allowed);

/// Reads an optional integer field with a range check: absent -> fallback,
/// non-integral or outside [lo, hi] -> ConfigError (never a raw
/// double-to-int cast, which would be UB for out-of-range input).
[[nodiscard]] std::int64_t int_field_or(const io::Json& json, std::string_view key,
                                        std::int64_t fallback, std::int64_t lo,
                                        std::int64_t hi);

// -- readers (each starts from defaults and applies present fields) ----------
[[nodiscard]] ModelSuite suite_from_json(const io::Json& json, ModelSuite defaults = {});
[[nodiscard]] device::ChipSpec chip_from_json(const io::Json& json);
[[nodiscard]] workload::Application application_from_json(const io::Json& json);
[[nodiscard]] workload::Schedule schedule_from_json(const io::Json& json);
[[nodiscard]] ScenarioConfig scenario_from_json(const io::Json& json);
/// Inverse of `to_json(CfpBreakdown)`: reads the six component fields
/// (derived embodied/total keys are accepted and ignored -- they are
/// recomputed, so `to_json(breakdown_from_json(x)) == x` holds for any
/// writer output).
[[nodiscard]] CfpBreakdown breakdown_from_json(const io::Json& json);
/// Inverse of `to_json(PlatformCfp)`.
[[nodiscard]] PlatformCfp platform_cfp_from_json(const io::Json& json);

/// Load a scenario file (JSON with // comments allowed).
[[nodiscard]] ScenarioConfig load_scenario(const std::string& path);

// -- writers -------------------------------------------------------------------
[[nodiscard]] io::Json to_json(const ModelSuite& suite);
[[nodiscard]] io::Json to_json(const device::ChipSpec& chip);
[[nodiscard]] io::Json to_json(const workload::Application& app);
[[nodiscard]] io::Json to_json(const workload::Schedule& schedule);
[[nodiscard]] io::Json to_json(const CfpBreakdown& breakdown);
[[nodiscard]] io::Json to_json(const PlatformCfp& platform);

}  // namespace greenfpga::core

#endif  // GREENFPGA_CORE_CONFIG_IO_HPP
