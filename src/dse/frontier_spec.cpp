/// \file frontier_spec.cpp
/// FrontierSpec validation and canonical JSON round-trip.

#include "dse/frontier_spec.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/config_io.hpp"

namespace greenfpga::dse {

namespace {

using io::Json;

/// Local linspace/logspace mirroring scenario/sweep.cpp bit-for-bit (the
/// scenario layer sits above dse, so the helpers cannot be shared without
/// inverting the dependency).
std::vector<double> linspace(double lo, double hi, int count) {
  if (count < 2) {
    throw std::invalid_argument("linspace: need at least 2 points");
  }
  std::vector<double> out(static_cast<std::size_t>(count));
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (int i = 0; i < count; ++i) {
    out[static_cast<std::size_t>(i)] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;  // avoid accumulated rounding on the endpoint
  return out;
}

std::vector<double> logspace(double lo, double hi, int count) {
  if (lo <= 0.0 || hi <= 0.0) {
    throw std::invalid_argument("logspace: bounds must be positive");
  }
  std::vector<double> out = linspace(std::log10(lo), std::log10(hi), count);
  for (double& v : out) {
    v = std::pow(10.0, v);
  }
  out.back() = hi;
  return out;
}

double number_field(const Json& json, const std::string& context, std::string_view key) {
  try {
    return json.at(key).as_number();
  } catch (const io::JsonError& error) {
    throw core::ConfigError(context + "." + std::string(key) + ": " + error.what());
  }
}

std::int64_t int_field_ctx(const Json& json, const std::string& context,
                           std::string_view key, std::int64_t fallback, std::int64_t lo,
                           std::int64_t hi) {
  try {
    return core::int_field_or(json, key, fallback, lo, hi);
  } catch (const core::ConfigError& error) {
    throw core::ConfigError(context + "." + std::string(key) + ": " + error.what());
  }
}

Json frontier_axis_to_json(const FrontierAxisSpec& axis) {
  Json out = Json::object();
  out["variable"] = to_string(axis.variable);
  if (axis.variable == FrontierVariable::node) {
    Json nodes = Json::array();
    for (const tech::ProcessNode node : axis.nodes) {
      nodes.push_back(tech::to_string(node));
    }
    out["nodes"] = std::move(nodes);
    return out;
  }
  out["scale"] = to_string(axis.scale);
  if (axis.scale == FrontierAxisScale::list) {
    Json values = Json::array();
    for (const double v : axis.explicit_values) {
      values.push_back(v);
    }
    out["values"] = std::move(values);
  } else {
    out["from"] = axis.from;
    out["to"] = axis.to;
    out["count"] = axis.count;
  }
  return out;
}

FrontierAxisSpec frontier_axis_from_json(const Json& json, const std::string& context) {
  core::check_known_keys(json, context,
                         {"variable", "scale", "from", "to", "count", "values", "nodes"});
  FrontierAxisSpec axis;
  const std::string variable = json.string_or("variable", "app_count");
  const auto parsed_variable = parse_frontier_variable(variable);
  if (!parsed_variable) {
    throw core::ConfigError(context + ": unknown axis variable \"" + variable +
                            "\" (app_count, lifetime_years, volume, node)");
  }
  axis.variable = *parsed_variable;
  if (axis.variable == FrontierVariable::node) {
    for (const std::string_view key : {"scale", "from", "to", "count", "values"}) {
      if (json.contains(key)) {
        throw core::ConfigError(context + ": a node axis takes a \"nodes\" list, not \"" +
                                std::string(key) + "\"");
      }
    }
    if (json.contains("nodes")) {
      for (const Json& entry : json.at("nodes").as_array()) {
        const auto node = tech::parse_node(entry.as_string());
        if (!node) {
          throw core::ConfigError(context + ": unknown process node \"" +
                                  entry.as_string() + "\"");
        }
        axis.nodes.push_back(*node);
      }
    }
    return axis;
  }
  if (json.contains("nodes")) {
    throw core::ConfigError(context + ": \"nodes\" needs \"variable\": \"node\"");
  }
  const std::string scale =
      json.string_or("scale", json.contains("values") ? "list" : "linear");
  if (scale == "list") {
    axis.scale = FrontierAxisScale::list;
    if (!json.contains("values")) {
      throw core::ConfigError(context + ": list axis needs a \"values\" array");
    }
    for (const Json& v : json.at("values").as_array()) {
      try {
        axis.explicit_values.push_back(v.as_number());
      } catch (const io::JsonError& error) {
        throw core::ConfigError(context + ".values: " + std::string(error.what()));
      }
    }
  } else if (scale == "linear" || scale == "log") {
    axis.scale = scale == "linear" ? FrontierAxisScale::linear : FrontierAxisScale::log;
    if (!json.contains("from") || !json.contains("to") || !json.contains("count")) {
      throw core::ConfigError(context + ": " + scale +
                              " axis needs \"from\", \"to\" and \"count\"");
    }
    axis.from = number_field(json, context, "from");
    axis.to = number_field(json, context, "to");
    axis.count = static_cast<int>(int_field_ctx(json, context, "count", 0, 2, 1'000'000));
  } else {
    throw core::ConfigError(context + ": unknown axis scale \"" + scale + "\"");
  }
  return axis;
}

}  // namespace

std::string to_string(FrontierVariable variable) {
  switch (variable) {
    case FrontierVariable::app_count:
      return "app_count";
    case FrontierVariable::lifetime_years:
      return "lifetime_years";
    case FrontierVariable::volume:
      return "volume";
    case FrontierVariable::node:
      return "node";
  }
  return "unknown";
}

std::optional<FrontierVariable> parse_frontier_variable(std::string_view text) {
  if (text == "app_count" || text == "apps") return FrontierVariable::app_count;
  if (text == "lifetime_years" || text == "lifetime") {
    return FrontierVariable::lifetime_years;
  }
  if (text == "volume") return FrontierVariable::volume;
  if (text == "node" || text == "nodes") return FrontierVariable::node;
  return std::nullopt;
}

std::string to_string(FrontierObjective objective) {
  switch (objective) {
    case FrontierObjective::total:
      return "total";
    case FrontierObjective::embodied:
      return "embodied";
    case FrontierObjective::operational:
      return "operational";
  }
  return "unknown";
}

std::optional<FrontierObjective> parse_frontier_objective(std::string_view text) {
  if (text == "total") return FrontierObjective::total;
  if (text == "embodied") return FrontierObjective::embodied;
  if (text == "operational") return FrontierObjective::operational;
  return std::nullopt;
}

std::string to_string(FrontierAxisScale scale) {
  switch (scale) {
    case FrontierAxisScale::list:
      return "list";
    case FrontierAxisScale::linear:
      return "linear";
    case FrontierAxisScale::log:
      return "log";
  }
  return "unknown";
}

std::vector<tech::ProcessNode> FrontierAxisSpec::materialised_nodes() const {
  if (variable != FrontierVariable::node) {
    throw std::logic_error("FrontierAxisSpec: not a node axis");
  }
  if (!nodes.empty()) {
    return nodes;
  }
  const std::span<const tech::ProcessNode> all = tech::all_nodes();
  return {all.begin(), all.end()};
}

std::vector<double> FrontierAxisSpec::values() const {
  if (variable == FrontierVariable::node) {
    std::vector<double> out;
    for (const tech::ProcessNode node : materialised_nodes()) {
      out.push_back(static_cast<double>(static_cast<std::int16_t>(node)));
    }
    return out;
  }
  switch (scale) {
    case FrontierAxisScale::list:
      if (explicit_values.empty()) {
        throw std::invalid_argument(
            "FrontierAxisSpec: list axis needs at least one value");
      }
      return explicit_values;
    case FrontierAxisScale::linear:
      return linspace(from, to, count);
    case FrontierAxisScale::log:
      return logspace(from, to, count);
  }
  throw std::logic_error("FrontierAxisSpec: unknown scale");
}

std::string FrontierAxisSpec::label() const {
  switch (variable) {
    case FrontierVariable::app_count:
      return "N_app";
    case FrontierVariable::lifetime_years:
      return "T_i [years]";
    case FrontierVariable::volume:
      return "N_vol [units]";
    case FrontierVariable::node:
      return "node [nm]";
  }
  return "x";
}

FrontierAxisSpec FrontierAxisSpec::list(FrontierVariable variable,
                                        std::vector<double> values) {
  FrontierAxisSpec axis;
  axis.variable = variable;
  axis.scale = FrontierAxisScale::list;
  axis.explicit_values = std::move(values);
  return axis;
}

FrontierAxisSpec FrontierAxisSpec::linear(FrontierVariable variable, double from,
                                          double to, int count) {
  FrontierAxisSpec axis;
  axis.variable = variable;
  axis.scale = FrontierAxisScale::linear;
  axis.from = from;
  axis.to = to;
  axis.count = count;
  return axis;
}

FrontierAxisSpec FrontierAxisSpec::log(FrontierVariable variable, double from, double to,
                                       int count) {
  FrontierAxisSpec axis;
  axis.variable = variable;
  axis.scale = FrontierAxisScale::log;
  axis.from = from;
  axis.to = to;
  axis.count = count;
  return axis;
}

FrontierAxisSpec FrontierAxisSpec::node_list(std::vector<tech::ProcessNode> nodes) {
  FrontierAxisSpec axis;
  axis.variable = FrontierVariable::node;
  axis.nodes = std::move(nodes);
  return axis;
}

void FrontierSpec::validate() const {
  if (axes.size() < 2 || axes.size() > 4) {
    throw std::invalid_argument("FrontierSpec: needs 2-4 axes, got " +
                                std::to_string(axes.size()));
  }
  int node_axes = 0;
  for (std::size_t a = 0; a < axes.size(); ++a) {
    const FrontierAxisSpec& axis = axes[a];
    for (std::size_t b = 0; b < a; ++b) {
      if (axes[b].variable == axis.variable) {
        throw std::invalid_argument("FrontierSpec: duplicate axis over " +
                                    to_string(axis.variable));
      }
    }
    if (axis.variable == FrontierVariable::node) {
      ++node_axes;
      continue;
    }
    if (axis.scale == FrontierAxisScale::list) {
      if (axis.explicit_values.empty()) {
        throw std::invalid_argument("FrontierSpec: axis " + to_string(axis.variable) +
                                    " has no values");
      }
      for (const double v : axis.explicit_values) {
        if (!(v > 0.0)) {
          throw std::invalid_argument("FrontierSpec: axis " + to_string(axis.variable) +
                                      " values must be positive");
        }
      }
    } else {
      if (axis.count < 2) {
        throw std::invalid_argument("FrontierSpec: axis " + to_string(axis.variable) +
                                    " needs count >= 2 samples");
      }
      if (axis.from <= 0.0 || axis.to <= 0.0) {
        throw std::invalid_argument("FrontierSpec: axis " + to_string(axis.variable) +
                                    " needs positive bounds");
      }
    }
  }
  if (node_axes > 1) {
    throw std::invalid_argument("FrontierSpec: at most one node axis");
  }
  if (confidence_samples < 0) {
    throw std::invalid_argument("FrontierSpec: confidence_samples must be >= 0");
  }
}

io::Json frontier_spec_to_json(const FrontierSpec& spec) {
  Json out = Json::object();
  Json axes = Json::array();
  for (const FrontierAxisSpec& axis : spec.axes) {
    axes.push_back(frontier_axis_to_json(axis));
  }
  out["axes"] = std::move(axes);
  out["objective"] = to_string(spec.objective);
  out["confidence_samples"] = spec.confidence_samples;
  out["seed"] = static_cast<std::int64_t>(spec.seed);
  return out;
}

FrontierSpec frontier_spec_from_json(const io::Json& json, const std::string& context,
                                     FrontierSpec defaults) {
  core::check_known_keys(json, context,
                         {"axes", "objective", "confidence_samples", "seed"});
  FrontierSpec spec = std::move(defaults);
  if (json.contains("axes")) {
    spec.axes.clear();
    for (const Json& entry : json.at("axes").as_array()) {
      spec.axes.push_back(frontier_axis_from_json(entry, context + ".axes"));
    }
  }
  const std::string objective = json.string_or("objective", to_string(spec.objective));
  const auto parsed = parse_frontier_objective(objective);
  if (!parsed) {
    throw core::ConfigError(context + ": unknown objective \"" + objective +
                            "\" (total, embodied, operational)");
  }
  spec.objective = *parsed;
  spec.confidence_samples = static_cast<int>(int_field_ctx(
      json, context, "confidence_samples", spec.confidence_samples, 0, 1'000'000));
  spec.seed = static_cast<unsigned>(
      int_field_ctx(json, context, "seed", spec.seed, 0, 4294967295LL));
  return spec;
}

}  // namespace greenfpga::dse
