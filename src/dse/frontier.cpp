/// \file frontier.cpp
/// The frontier search: grid evaluation, win regions, boundaries,
/// Monte-Carlo win confidence.

#include "dse/frontier.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/paper_config.hpp"
#include "core/parallel.hpp"
#include "units/units.hpp"

namespace greenfpga::dse {

namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

double objective_of(const core::CfpBreakdown& total, FrontierObjective objective) {
  switch (objective) {
    case FrontierObjective::total:
      return total.total().canonical();
    case FrontierObjective::embodied:
      return total.embodied().canonical();
    case FrontierObjective::operational:
      return total.operational.canonical();
  }
  throw std::logic_error("objective_of: unknown objective");
}

/// Winner rule, shared by the point pass and the confidence pass: the
/// lowest finite objective wins; exact ties break to the lowest platform
/// index (deterministic).
int winner_of(const std::vector<double>& objectives) {
  int winner = -1;
  for (std::size_t p = 0; p < objectives.size(); ++p) {
    if (std::isfinite(objectives[p]) &&
        (winner < 0 || objectives[p] < objectives[static_cast<std::size_t>(winner)])) {
      winner = static_cast<int>(p);
    }
  }
  return winner;
}

double margin_of(const std::vector<double>& objectives, int winner) {
  if (winner < 0) {
    return kInfeasible;
  }
  double runner_up = kInfeasible;
  for (std::size_t p = 0; p < objectives.size(); ++p) {
    if (static_cast<int>(p) != winner && std::isfinite(objectives[p])) {
      runner_up = std::min(runner_up, objectives[p]);
    }
  }
  return runner_up / objectives[static_cast<std::size_t>(winner)];
}

/// The grid geometry: materialised axis values plus the cell decomposition
/// (axis 0 fastest-varying, matching the scenario grid convention).
struct Grid {
  std::vector<std::vector<double>> axis_values;
  std::vector<std::size_t> sizes;
  std::size_t cells = 1;

  [[nodiscard]] std::vector<std::size_t> decompose(std::size_t index) const {
    std::vector<std::size_t> digits(sizes.size());
    for (std::size_t a = 0; a < sizes.size(); ++a) {
      digits[a] = index % sizes[a];
      index /= sizes[a];
    }
    return digits;
  }
};

Grid make_grid(const FrontierSpec& spec) {
  Grid grid;
  for (const FrontierAxisSpec& axis : spec.axes) {
    grid.axis_values.push_back(axis.values());
    grid.sizes.push_back(grid.axis_values.back().size());
    grid.cells *= grid.sizes.back();
  }
  return grid;
}

/// One platform's chip for every cell along the (optional) node axis:
/// retargets are computed once up front, and an unmanufacturable retarget
/// (reticle violation) marks the platform infeasible on that node instead
/// of failing the whole search.
struct ChipTable {
  std::optional<std::size_t> node_axis;          ///< index into spec.axes
  std::vector<std::vector<std::optional<device::ChipSpec>>> by_node;  ///< [node][platform]
  const std::vector<device::ChipSpec>* base = nullptr;

  [[nodiscard]] const std::optional<device::ChipSpec>* row(
      const std::vector<std::size_t>& digits) const {
    return node_axis ? by_node[digits[*node_axis]].data() : nullptr;
  }
};

ChipTable make_chip_table(const FrontierProblem& problem) {
  ChipTable table;
  table.base = &problem.chips;
  const std::vector<FrontierAxisSpec>& axes = problem.frontier.axes;
  for (std::size_t a = 0; a < axes.size(); ++a) {
    if (axes[a].variable == FrontierVariable::node) {
      table.node_axis = a;
      for (const tech::ProcessNode node : axes[a].materialised_nodes()) {
        std::vector<std::optional<device::ChipSpec>> row;
        for (const device::ChipSpec& chip : problem.chips) {
          try {
            row.push_back(problem.retarget(chip, node));
          } catch (const std::invalid_argument&) {
            row.push_back(std::nullopt);
          }
        }
        table.by_node.push_back(std::move(row));
      }
    }
  }
  return table;
}

/// The deployment schedule of one cell: the base point with each numeric
/// axis variable overridden by the cell coordinate.
workload::Schedule cell_schedule(const FrontierProblem& problem, const Grid& grid,
                                 const std::vector<std::size_t>& digits) {
  int app_count = problem.app_count;
  double lifetime_years = problem.lifetime_years;
  double volume = problem.volume;
  for (std::size_t a = 0; a < problem.frontier.axes.size(); ++a) {
    const double value = grid.axis_values[a][digits[a]];
    switch (problem.frontier.axes[a].variable) {
      case FrontierVariable::app_count:
        app_count = std::max(1, static_cast<int>(std::lround(value)));
        break;
      case FrontierVariable::lifetime_years:
        lifetime_years = value;
        break;
      case FrontierVariable::volume:
        volume = value;
        break;
      case FrontierVariable::node:
        break;  // handled by the chip table
    }
  }
  return core::paper_schedule(problem.domain, app_count,
                              lifetime_years * units::unit::years, volume);
}

/// Every platform's objective in one cell under `model`.
std::vector<double> cell_objectives(const FrontierProblem& problem,
                                    const core::LifecycleModel& model,
                                    const ChipTable& chips,
                                    const workload::Schedule& schedule,
                                    const std::vector<std::size_t>& digits) {
  std::vector<double> objectives(problem.chips.size(), kInfeasible);
  const std::optional<device::ChipSpec>* retargeted = chips.row(digits);
  for (std::size_t p = 0; p < problem.chips.size(); ++p) {
    const device::ChipSpec* chip = retargeted
                                       ? (retargeted[p] ? &*retargeted[p] : nullptr)
                                       : &(*chips.base)[p];
    if (chip == nullptr) {
      continue;  // unmanufacturable on this node
    }
    objectives[p] =
        objective_of(model.evaluate(*chip, schedule).total, problem.frontier.objective);
  }
  return objectives;
}

}  // namespace

std::size_t FrontierResult::cell_index(const std::vector<std::size_t>& indices) const {
  if (indices.size() != axis_values.size()) {
    throw std::invalid_argument("FrontierResult::cell_index: need one index per axis");
  }
  std::size_t index = 0;
  std::size_t stride = 1;
  for (std::size_t a = 0; a < indices.size(); ++a) {
    if (indices[a] >= axis_values[a].size()) {
      throw std::out_of_range("FrontierResult::cell_index: axis " + std::to_string(a) +
                              " index out of range");
    }
    index += indices[a] * stride;
    stride *= axis_values[a].size();
  }
  return index;
}

FrontierSearch::FrontierSearch(FrontierProblem problem) : problem_(std::move(problem)) {
  problem_.frontier.validate();
  if (problem_.platform_names.size() != problem_.chips.size()) {
    throw std::invalid_argument(
        "FrontierSearch: platform_names and chips must align, got " +
        std::to_string(problem_.platform_names.size()) + " names and " +
        std::to_string(problem_.chips.size()) + " chips");
  }
  if (problem_.chips.size() < 2) {
    throw std::invalid_argument("FrontierSearch: a frontier needs at least two platforms");
  }
  const bool has_node_axis = std::any_of(
      problem_.frontier.axes.begin(), problem_.frontier.axes.end(),
      [](const FrontierAxisSpec& axis) { return axis.variable == FrontierVariable::node; });
  if (has_node_axis && !problem_.retarget) {
    throw std::invalid_argument("FrontierSearch: a node axis needs a retarget hook");
  }
  if (problem_.frontier.confidence_samples > 0) {
    for (const SampledParameter& parameter : problem_.sampled) {
      parameter.distribution.validate();
      if (!parameter.apply) {
        throw std::invalid_argument("FrontierSearch: sampled parameter \"" +
                                    parameter.distribution.parameter +
                                    "\" has no applier");
      }
    }
  }
  problem_.threads = std::max(problem_.threads, 1);
}

FrontierResult FrontierSearch::run() const {
  const FrontierProblem& problem = problem_;
  const Grid grid = make_grid(problem.frontier);
  const ChipTable chips = make_chip_table(problem);

  FrontierResult result;
  result.spec = problem.frontier;
  result.platform_names = problem.platform_names;
  result.axis_values = grid.axis_values;
  result.confidence_samples = problem.frontier.confidence_samples;
  result.cells.resize(grid.cells);

  // -- point-estimate pass: one task per cell, per-worker memoised model --
  core::parallel_for_state(
      grid.cells, problem.threads,
      [&] { return core::LifecycleModel(problem.suite); },
      [&](const core::LifecycleModel& model, std::size_t i) {
        const std::vector<std::size_t> digits = grid.decompose(i);
        FrontierCell& cell = result.cells[i];
        cell.coords.reserve(digits.size());
        for (std::size_t a = 0; a < digits.size(); ++a) {
          cell.coords.push_back(grid.axis_values[a][digits[a]]);
        }
        const workload::Schedule schedule = cell_schedule(problem, grid, digits);
        cell.objective_kg = cell_objectives(problem, model, chips, schedule, digits);
        cell.winner = winner_of(cell.objective_kg);
        cell.margin = margin_of(cell.objective_kg, cell.winner);
      });

  // -- confidence pass: one task per Monte-Carlo sample, each sample
  //    re-parameterises the suite from its counter stream and re-decides
  //    every cell (pre-sized winner rows keep the reduction order fixed) --
  const int samples = problem.frontier.confidence_samples;
  if (samples > 0) {
    std::vector<std::vector<int>> winners(
        static_cast<std::size_t>(samples), std::vector<int>(grid.cells, -1));
    core::parallel_for_state(
        static_cast<std::size_t>(samples), problem.threads, [] { return 0; },
        [&](int&, std::size_t s) {
          core::ModelSuite sampled = problem.suite;
          for (std::size_t j = 0; j < problem.sampled.size(); ++j) {
            const double u = core::counter_uniform01(problem.frontier.seed, s, j);
            problem.sampled[j].apply(sampled,
                                     problem.sampled[j].distribution.sample(u));
          }
          const core::LifecycleModel model(sampled);
          for (std::size_t i = 0; i < grid.cells; ++i) {
            const std::vector<std::size_t> digits = grid.decompose(i);
            const workload::Schedule schedule = cell_schedule(problem, grid, digits);
            winners[s][i] =
                winner_of(cell_objectives(problem, model, chips, schedule, digits));
          }
        });
    for (std::size_t i = 0; i < grid.cells; ++i) {
      std::size_t agree = 0;
      for (int s = 0; s < samples; ++s) {
        if (winners[static_cast<std::size_t>(s)][i] == result.cells[i].winner) {
          ++agree;
        }
      }
      result.cells[i].confidence =
          static_cast<double>(agree) / static_cast<double>(samples);
    }
  }

  // -- win counts and fractions -------------------------------------------
  result.win_counts.assign(problem.chips.size(), 0);
  for (const FrontierCell& cell : result.cells) {
    if (cell.winner >= 0) {
      ++result.win_counts[static_cast<std::size_t>(cell.winner)];
    } else {
      ++result.infeasible_cells;
    }
  }
  for (const std::size_t wins : result.win_counts) {
    result.win_fraction.push_back(static_cast<double>(wins) /
                                  static_cast<double>(grid.cells));
  }

  // -- per-axis slice win fractions ----------------------------------------
  for (std::size_t a = 0; a < grid.sizes.size(); ++a) {
    for (std::size_t k = 0; k < grid.sizes[a]; ++k) {
      FrontierSlice slice;
      slice.axis = a;
      slice.value = grid.axis_values[a][k];
      std::vector<std::size_t> wins(problem.chips.size(), 0);
      std::size_t slice_cells = 0;
      for (std::size_t i = 0; i < grid.cells; ++i) {
        if (grid.decompose(i)[a] != k) {
          continue;
        }
        ++slice_cells;
        const int winner = result.cells[i].winner;
        if (winner >= 0) {
          ++wins[static_cast<std::size_t>(winner)];
        }
      }
      for (const std::size_t w : wins) {
        slice.win_fraction.push_back(static_cast<double>(w) /
                                     static_cast<double>(slice_cells));
      }
      result.slices.push_back(std::move(slice));
    }
  }

  // -- breakeven boundaries (2-axis grids): interpolated zero crossings of
  //    the pairwise objective difference between adjacent cells ------------
  if (grid.sizes.size() == 2) {
    const std::size_t nx = grid.sizes[0];
    const std::size_t ny = grid.sizes[1];
    const auto consider = [&](std::size_t ia, std::size_t ib) {
      const FrontierCell& a = result.cells[ia];
      const FrontierCell& b = result.cells[ib];
      if (a.winner < 0 || b.winner < 0 || a.winner == b.winner) {
        return;
      }
      const auto p = static_cast<std::size_t>(a.winner);
      const auto q = static_cast<std::size_t>(b.winner);
      // f(x) = objective_p - objective_q changes sign between the cells;
      // place the boundary at the linear zero crossing.
      const double fa = a.objective_kg[p] - a.objective_kg[q];
      const double fb = b.objective_kg[p] - b.objective_kg[q];
      double t = 0.5;
      if (std::isfinite(fa) && std::isfinite(fb) && fb - fa > 0.0) {
        t = std::clamp(-fa / (fb - fa), 0.0, 1.0);
      }
      const std::array<double, 2> point{
          a.coords[0] + t * (b.coords[0] - a.coords[0]),
          a.coords[1] + t * (b.coords[1] - a.coords[1])};
      const int lo = std::min(a.winner, b.winner);
      const int hi = std::max(a.winner, b.winner);
      for (FrontierBoundary& boundary : result.boundaries) {
        if (boundary.platform_a == lo && boundary.platform_b == hi) {
          boundary.points.push_back(point);
          return;
        }
      }
      result.boundaries.push_back(FrontierBoundary{lo, hi, {point}});
    };
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t i = y * nx + x;
        if (x + 1 < nx) {
          consider(i, i + 1);
        }
        if (y + 1 < ny) {
          consider(i, i + nx);
        }
      }
    }
    std::sort(result.boundaries.begin(), result.boundaries.end(),
              [](const FrontierBoundary& a, const FrontierBoundary& b) {
                return std::pair(a.platform_a, a.platform_b) <
                       std::pair(b.platform_a, b.platform_b);
              });
    for (FrontierBoundary& boundary : result.boundaries) {
      std::sort(boundary.points.begin(), boundary.points.end());
    }
  }
  return result;
}

}  // namespace greenfpga::dse
