#ifndef GREENFPGA_DSE_FRONTIER_HPP
#define GREENFPGA_DSE_FRONTIER_HPP

/// \file frontier.hpp
/// Frontier design-space exploration: where does each platform win?
///
/// `FrontierSearch` evaluates every cell of the `FrontierSpec` grid --
/// each cell is one deployment scenario (N_app, T_i, N_vol, node) -- for
/// every platform, decides the per-cell winner under the spec objective,
/// and extracts the win-region structure:
///
///   * per-platform win counts and overall win fraction;
///   * per-axis slice win fractions (how the win region shifts along each
///     axis);
///   * for 2-axis grids, breakeven boundary polylines: the interpolated
///     zero crossings of the pairwise objective difference between
///     adjacent cells with different winners;
///   * optional Monte-Carlo win confidence: `confidence_samples`
///     parameter-sampled re-evaluations of the grid, reporting per cell
///     the fraction of samples that agree with the point-estimate winner.
///
/// Determinism contract (matching the scenario engine): cells are
/// evaluated on a worker pool via `core::parallel_for_state`, each worker
/// owns a memoised `core::LifecycleModel`, every cell writes a pre-sized
/// slot, and the Monte-Carlo pass draws from the counter RNG
/// (`core::counter_uniform01`) keyed by sample index alone -- results are
/// **bit-identical for any thread count** (pinned by
/// tests/frontier_test.cpp).
///
/// The problem description is plain data (names, chips, suite, schedule
/// parameters): the scenario layer sits above dse, so scenario-only
/// machinery (Table 1 appliers, node retargeting) is injected as
/// std::function hooks.

#include <array>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/lifecycle_model.hpp"
#include "core/param_distributions.hpp"
#include "device/catalog.hpp"
#include "device/chip_spec.hpp"
#include "dse/frontier_spec.hpp"
#include "tech/node.hpp"

namespace greenfpga::dse {

/// One uncertain model input for the confidence pass: a distribution plus
/// the applier that writes a sampled value into a `ModelSuite` (bound by
/// the caller from `scenario::table1_ranges()`).
struct SampledParameter {
  core::ParamDistribution distribution;
  std::function<void(core::ModelSuite&, double)> apply;
};

/// The frontier problem: what to search, over which platforms.
struct FrontierProblem {
  FrontierSpec frontier;
  std::vector<std::string> platform_names;      ///< display names, cell winner order
  std::vector<device::ChipSpec> chips;          ///< one per platform
  core::ModelSuite suite;
  device::Domain domain = device::Domain::dnn;
  /// Base deployment point; axes override their own variable per cell.
  int app_count = 5;
  double lifetime_years = 2.0;
  double volume = 1e6;
  /// Confidence-pass inputs (ignored when confidence_samples == 0).
  std::vector<SampledParameter> sampled;
  /// Node-axis hook: retarget a chip onto a node (throwing
  /// std::invalid_argument marks the platform infeasible in that cell).
  /// Required when the spec has a node axis.
  std::function<device::ChipSpec(const device::ChipSpec&, tech::ProcessNode)> retarget;
  int threads = 1;
};

/// One evaluated grid cell.
struct FrontierCell {
  std::vector<double> coords;        ///< one per axis, spec axis order
  std::vector<double> objective_kg;  ///< per platform; +inf = infeasible here
  int winner = -1;                   ///< platform index; -1 = no feasible platform
  /// Runner-up objective over winner objective (>= 1); +inf with fewer
  /// than two feasible platforms.  1 means a contested cell.
  double margin = 0.0;
  /// Fraction of confidence samples agreeing with `winner`; 1 when the
  /// confidence pass is disabled.
  double confidence = 1.0;
};

/// Win fractions across one slice of one axis.
struct FrontierSlice {
  std::size_t axis = 0;               ///< index into spec.axes
  double value = 0.0;                 ///< the axis coordinate of this slice
  std::vector<double> win_fraction;   ///< per platform, over the slice's cells
};

/// One breakeven boundary between two platforms (2-axis grids only): the
/// interpolated points where the pairwise objective difference crosses
/// zero, sorted lexicographically by (x, y) for determinism.
struct FrontierBoundary {
  int platform_a = 0;  ///< lower platform index of the pair
  int platform_b = 0;  ///< higher platform index of the pair
  std::vector<std::array<double, 2>> points;  ///< (axis0, axis1) coordinates
};

/// The search output.
struct FrontierResult {
  FrontierSpec spec;
  std::vector<std::string> platform_names;
  std::vector<std::vector<double>> axis_values;  ///< materialised, per axis
  /// Row-major cells: axis 0 is the innermost (fastest-varying) dimension.
  std::vector<FrontierCell> cells;
  std::vector<std::size_t> win_counts;  ///< per platform
  std::vector<double> win_fraction;     ///< per platform, over all cells
  std::size_t infeasible_cells = 0;     ///< cells with no feasible platform
  std::vector<FrontierSlice> slices;    ///< every (axis, value) slice
  std::vector<FrontierBoundary> boundaries;  ///< 2-axis grids only
  int confidence_samples = 0;

  /// Flat cell index of grid coordinates (axis 0 fastest).
  [[nodiscard]] std::size_t cell_index(const std::vector<std::size_t>& indices) const;
};

/// The frontier search engine.
class FrontierSearch {
 public:
  /// Validates the problem (spec structure, platform/chip arity, node-axis
  /// hook present when needed).  Throws std::invalid_argument.
  explicit FrontierSearch(FrontierProblem problem);

  /// Evaluate the grid and extract the win-region structure.
  [[nodiscard]] FrontierResult run() const;

 private:
  FrontierProblem problem_;
};

}  // namespace greenfpga::dse

#endif  // GREENFPGA_DSE_FRONTIER_HPP
