#ifndef GREENFPGA_DSE_FRONTIER_SPEC_HPP
#define GREENFPGA_DSE_FRONTIER_SPEC_HPP

/// \file frontier_spec.hpp
/// Declarative description of a platform-frontier design-space exploration.
///
/// The paper's sweeps and heat-maps answer "how does platform X compare to
/// platform Y along this axis?".  The frontier DSE asks the converse
/// question: *where* -- in the joint space of application count, lifetime,
/// volume and fabrication node -- does each platform win?  A
/// `FrontierSpec` names the axes of that space and the objective that
/// decides a winner; `dse::FrontierSearch` (frontier.hpp) evaluates the
/// grid and extracts per-platform win regions.
///
/// This layer sits below `scenario::`: it depends only on tech/units/io
/// and the core config helpers, so `scenario::ScenarioSpec` can embed a
/// `FrontierSpec` (kind "frontier") without an include cycle.
///
/// JSON contract matches the scenario spec: `frontier_spec_to_json` is
/// canonical and total (every field, defaults included), so
/// serialize -> parse -> re-serialize is byte-identical; unknown keys
/// raise `core::ConfigError`.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "io/json.hpp"
#include "tech/node.hpp"

namespace greenfpga::dse {

/// The deployment-space variables a frontier axis can span.  The first
/// three are the paper's N_app / T_i / N_vol; `node` retargets every
/// platform device across fabrication nodes (the node-DSE dimension).
enum class FrontierVariable {
  app_count,
  lifetime_years,
  volume,
  node,
};

[[nodiscard]] std::string to_string(FrontierVariable variable);
[[nodiscard]] std::optional<FrontierVariable> parse_frontier_variable(
    std::string_view text);

/// Which carbon number decides the winner of a cell.
enum class FrontierObjective {
  total,        ///< embodied + deployment (the paper's headline metric)
  embodied,     ///< design + manufacturing + packaging + EOL
  operational,  ///< use-phase energy carbon only
};

[[nodiscard]] std::string to_string(FrontierObjective objective);
[[nodiscard]] std::optional<FrontierObjective> parse_frontier_objective(
    std::string_view text);

/// How a numeric axis generates its sample values (mirrors the scenario
/// AxisScale; duplicated here to keep the layering acyclic).
enum class FrontierAxisScale {
  list,    ///< explicit values
  linear,  ///< linspace(from, to, count)
  log,     ///< logspace(from, to, count)
};

[[nodiscard]] std::string to_string(FrontierAxisScale scale);

/// One axis of the frontier grid.  Numeric variables use
/// scale/from/to/count or explicit values; the `node` variable carries an
/// explicit node list (empty = every database node, oldest first).
struct FrontierAxisSpec {
  FrontierVariable variable = FrontierVariable::app_count;
  FrontierAxisScale scale = FrontierAxisScale::list;
  double from = 0.0;
  double to = 0.0;
  int count = 0;
  std::vector<double> explicit_values;   ///< numeric axes, scale == list
  std::vector<tech::ProcessNode> nodes;  ///< node axis only

  /// Materialise the sample coordinates.  A node axis yields the
  /// marketing-nm figure of each node (28, 20, ..., 3) so every cell
  /// coordinate is a plain double.
  [[nodiscard]] std::vector<double> values() const;

  /// Node list with the empty-list default applied (node axis only).
  [[nodiscard]] std::vector<tech::ProcessNode> materialised_nodes() const;

  /// Axis label for tables and charts ("N_app", "T_i [years]",
  /// "N_vol [units]", "node [nm]").
  [[nodiscard]] std::string label() const;

  [[nodiscard]] static FrontierAxisSpec list(FrontierVariable variable,
                                             std::vector<double> values);
  [[nodiscard]] static FrontierAxisSpec linear(FrontierVariable variable, double from,
                                               double to, int count);
  [[nodiscard]] static FrontierAxisSpec log(FrontierVariable variable, double from,
                                            double to, int count);
  [[nodiscard]] static FrontierAxisSpec node_list(std::vector<tech::ProcessNode> nodes);
};

/// The frontier search space: 2-4 axes over distinct variables, the
/// win-deciding objective, and the optional Monte-Carlo confidence pass
/// (`confidence_samples` parameter-sampled re-evaluations of the grid;
/// 0 disables it).
struct FrontierSpec {
  std::vector<FrontierAxisSpec> axes;
  FrontierObjective objective = FrontierObjective::total;
  int confidence_samples = 0;
  unsigned seed = 42;

  /// Structural validation: 2-4 axes, distinct variables, at most one
  /// node axis, every axis generator well-formed.  Throws
  /// std::invalid_argument.
  void validate() const;
};

/// Canonical JSON form (every field, defaults included, keys sorted).
[[nodiscard]] io::Json frontier_spec_to_json(const FrontierSpec& spec);

/// Parse a frontier spec; absent fields keep the values in `defaults`
/// (so a caller-seeded axis set survives a partial object).  Unknown
/// keys raise core::ConfigError; `context` prefixes every error message.
[[nodiscard]] FrontierSpec frontier_spec_from_json(const io::Json& json,
                                                   const std::string& context,
                                                   FrontierSpec defaults = {});

}  // namespace greenfpga::dse

#endif  // GREENFPGA_DSE_FRONTIER_SPEC_HPP
