#ifndef GREENFPGA_SERVE_HTTP_HPP
#define GREENFPGA_SERVE_HTTP_HPP

/// \file http.hpp
/// A small, dependency-free HTTP/1.1 message layer over blocking sockets.
///
/// `greenfpga serve` speaks plain HTTP/1.1 so any client (curl, a
/// dashboard, the bench load driver) can talk to it without a client
/// library.  The subset implemented here is deliberately narrow and
/// strict -- request line + headers + Content-Length body, keep-alive,
/// no chunked transfer coding, no TLS -- because the daemon fronts a
/// deterministic evaluation engine, not the open internet.  Ingestion is
/// bounded (header and body byte caps) so untrusted input fails with a
/// 4xx instead of exhausting the process, mirroring the JSON parser's
/// nesting cap.
///
/// `SocketStream` is the shared framing layer (buffered reads, EINTR
/// retry, SIGPIPE-safe writes) used by the server's connection loop and
/// by `HttpClient`, the keep-alive client used by tests and
/// bench/serve_throughput.cpp.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace greenfpga::serve {

/// Transport/parse failure; `status` is the HTTP status the server
/// should answer with before closing (400 malformed, 413 too large,
/// 501 unsupported framing).
class HttpError : public std::runtime_error {
 public:
  HttpError(int status, const std::string& message)
      : std::runtime_error(message), status_(status) {}
  [[nodiscard]] int status() const { return status_; }

 private:
  int status_;
};

/// One parsed request.  Header names are lowercased on parse; values keep
/// their bytes (leading/trailing whitespace trimmed).
struct HttpRequest {
  std::string method;
  std::string target;   ///< path only; any "?query" suffix is split off
  std::string query;    ///< bytes after '?', empty if none
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value of header `name` (lowercase), or `fallback`.
  [[nodiscard]] std::string header_or(std::string_view name,
                                      std::string fallback = "") const;
  /// HTTP/1.1 defaults to keep-alive unless "Connection: close";
  /// HTTP/1.0 defaults to close unless "Connection: keep-alive".
  [[nodiscard]] bool keep_alive() const;
};

/// One response to serialize.  `Content-Length` and the status reason are
/// filled in by `SocketStream::write_response`.
struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Set (replacing any existing value of) header `name`.
  void set_header(std::string_view name, std::string value);
  [[nodiscard]] std::string header_or(std::string_view name,
                                      std::string fallback = "") const;
};

/// The standard reason phrase of `status` ("OK", "Not Found", ...).
[[nodiscard]] std::string reason_phrase(int status);

/// Ingestion bounds shared by server and client framing.
struct HttpLimits {
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_body_bytes = 8 * 1024 * 1024;
};

/// Serialize `response` to wire bytes (status line, headers,
/// Content-Length, body).  The single definition used by the blocking
/// stream and the event-loop server, so both paths emit identical bytes.
[[nodiscard]] std::string serialize_response(const HttpResponse& response);

/// Incremental HTTP/1.1 request framing over a caller-owned receive
/// buffer.  `next` consumes at most one complete request per call and
/// never blocks, so it works for both the blocking `SocketStream` (which
/// fills the buffer between calls) and the event-loop server (which
/// appends whatever `recv` returned and retries).  Enforces the
/// `HttpLimits` ingestion bounds; an over-limit declared body is drained
/// (discarded, within a hard bound) before the 413 surfaces, so the
/// rejection can actually be delivered instead of being eaten by an RST.
/// After a throw the framer is poisoned: the byte stream can no longer be
/// trusted for framing and the connection must close after the error
/// response.
class RequestFramer {
 public:
  explicit RequestFramer(HttpLimits limits = {});

  /// Try to extract one complete request from `buffer` (consuming its
  /// bytes).  Returns true with `out` filled, false when more bytes are
  /// needed.  Throws HttpError on malformed or over-limit input.
  [[nodiscard]] bool next(std::string& buffer, HttpRequest& out);

  /// True when bytes of a partially-received request are pending (header
  /// bytes buffered, a body still owed, or an over-limit drain running):
  /// EOF here is a truncation error, not a clean close.
  [[nodiscard]] bool mid_request(const std::string& buffer) const {
    return head_done_ || drain_remaining_ > 0 || !buffer.empty();
  }

 private:
  HttpLimits limits_;
  HttpRequest pending_;            ///< head parsed, awaiting its body
  std::size_t body_needed_ = 0;    ///< body bytes still owed to pending_
  bool head_done_ = false;
  std::size_t drain_remaining_ = 0;  ///< over-limit body bytes to discard
  std::string drain_error_;          ///< the 413 to throw once drained
};

/// Buffered, bounded HTTP framing over one connected socket.  Owns the
/// file descriptor (closed on destruction).  Not thread-safe; one
/// connection is driven by one thread.
class SocketStream {
 public:
  explicit SocketStream(int fd, HttpLimits limits = {});
  ~SocketStream();
  SocketStream(const SocketStream&) = delete;
  SocketStream& operator=(const SocketStream&) = delete;

  /// Read one request.  Returns false on clean end-of-stream before any
  /// request byte (the peer closed an idle keep-alive connection); throws
  /// HttpError on malformed or over-limit input, HttpError(408) when a
  /// socket receive timeout (SO_RCVTIMEO) expires mid-request.
  [[nodiscard]] bool read_request(HttpRequest& out);

  /// Read one response (client side).  Returns false on clean EOF before
  /// any byte.
  [[nodiscard]] bool read_response(HttpResponse& out);

  /// Serialize and send `response` (fills Content-Length; SIGPIPE-safe).
  /// Throws HttpError(500) when the peer is gone mid-write.
  void write_response(const HttpResponse& response);

  /// Send a serialized request (client side).
  void write_request(const HttpRequest& request);

 private:
  /// One recv into the buffer; false on orderly peer EOF.  Throws
  /// HttpError(408) on a receive timeout (EAGAIN/EWOULDBLOCK under
  /// SO_RCVTIMEO) and HttpError(400) on any other receive failure --
  /// a reset peer is not a clean end-of-stream.
  [[nodiscard]] bool fill();
  /// Block until the buffer holds a blank-line-terminated header block;
  /// returns it (consumed from the buffer), or nullopt on clean EOF at
  /// offset 0.
  [[nodiscard]] bool read_header_block(std::string& out);
  void read_body(std::size_t length, std::string& out);
  void send_all(std::string_view bytes);

  int fd_;
  HttpLimits limits_;
  std::string buffer_;  ///< bytes received but not yet consumed
  RequestFramer framer_;  ///< server-side request framing over buffer_
};

/// A minimal keep-alive client for tests and the bench load driver.
/// Connects on construction; one in-flight request at a time.
class HttpClient {
 public:
  /// Connect to host:port (IPv4 dotted quad, e.g. "127.0.0.1").  Throws
  /// std::runtime_error on connection failure.
  HttpClient(const std::string& host, int port, HttpLimits limits = {});

  /// Issue `method target` with `body` and return the response.  The
  /// connection is reused across calls (Connection: keep-alive).  Throws
  /// HttpError / std::runtime_error on transport failure.
  [[nodiscard]] HttpResponse request(
      const std::string& method, const std::string& target,
      const std::string& body = "",
      std::vector<std::pair<std::string, std::string>> headers = {});

 private:
  std::string host_;
  SocketStream stream_;
};

}  // namespace greenfpga::serve

#endif  // GREENFPGA_SERVE_HTTP_HPP
