/// \file router.cpp
/// (method, path) dispatch and the uniform JSON error shape.

#include "serve/router.hpp"

namespace greenfpga::serve {

HttpResponse json_response(int status, const io::Json& value) {
  HttpResponse response;
  response.status = status;
  response.set_header("Content-Type", "application/json");
  value.dump_to(response.body);
  response.body.push_back('\n');
  return response;
}

HttpResponse error_response(int status, const std::string& message) {
  io::Json body = io::Json::object();
  body["error"] = message;
  return json_response(status, body);
}

void Router::add(std::string method, std::string path, Handler handler) {
  handlers_[{std::move(method), std::move(path)}] = std::move(handler);
}

HttpResponse Router::route(const HttpRequest& request) const {
  const auto it = handlers_.find({request.method, request.target});
  if (it != handlers_.end()) {
    return it->second(request);
  }
  // Path registered under another method? Then 405 naming the allowed
  // methods; otherwise 404.
  std::string allow;
  for (const auto& [key, handler] : handlers_) {
    if (key.second == request.target) {
      allow += (allow.empty() ? "" : ", ") + key.first;
    }
  }
  if (!allow.empty()) {
    HttpResponse response = error_response(
        405, "method " + request.method + " not allowed for " + request.target);
    response.set_header("Allow", allow);
    return response;
  }
  return error_response(404, "no route for " + request.target);
}

}  // namespace greenfpga::serve
