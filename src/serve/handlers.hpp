#ifndef GREENFPGA_SERVE_HANDLERS_HPP
#define GREENFPGA_SERVE_HANDLERS_HPP

/// \file handlers.hpp
/// The `greenfpga serve` API surface over the evaluation engine.
///
/// Endpoints (all bodies JSON; non-2xx bodies are `{"error": ...}`):
///
///   * `POST /v1/run`    -- one scenario spec in (the `greenfpga run`
///     spec shape), the canonical result JSON out, **byte-identical to
///     `greenfpga run --format json`** on the same spec (pinned by
///     tests/serve_test.cpp), cache hits included.  The `X-Cache` header
///     reports `hit` or `miss`, `X-Cache-Key` the spec's content digest,
///     and `X-Request-Digest` the canonical digest of the request body
///     when hash-while-parse could compute it (keys arrived sorted).
///   * `POST /v1/batch`  -- `{"specs": [<spec>, ...]}` in, the array of
///     canonical result JSONs out (spec order); repeated/previously-seen
///     specs come from the cache.
///   * `GET /v1/platforms` -- registry platform names and known domains.
///   * `GET /v1/stats`   -- cache hit/miss/eviction counters, occupancy,
///     request counts, `fast_path_hits` (responses streamed from the
///     rendered-body cache without re-dumping a result), engine worker
///     count.
///   * `GET /healthz`    -- liveness: `{"status":"ok"}`.
///
/// Request bodies parse into the arena DOM (io/json_arena.hpp): one
/// monotonic buffer per request, freed wholesale, with the canonical
/// FNV-1a digest computed during the parse.  On the response side a
/// cache-hit `/v1/run` takes the *fast path*: the fully rendered body is
/// kept in a small LRU keyed by the engine's content key, so a repeat
/// request skips `result_to_json` + dump entirely and streams the cached
/// bytes back (still consulting the engine cache, so hit/miss accounting
/// is unchanged).
///
/// Spec parse/validation failures answer 400 with the same
/// offending-key-naming message the CLI prints; over-limit or malformed
/// HTTP answers 4xx at the transport layer (serve/http.hpp).  Every
/// handler is safe under concurrent requests: the engine is stateless,
/// the cache is thread-safe, and the counters are atomic.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "scenario/cache_store.hpp"
#include "scenario/engine.hpp"
#include "scenario/result_cache.hpp"
#include "serve/router.hpp"

namespace greenfpga::serve {

/// A bounded LRU of fully rendered `/v1/run` response bodies, keyed by
/// the engine's content key (the full canonical key bytes -- collision-
/// proof identity per io/hash.hpp, never the 64-bit digest alone).  The
/// engine is deterministic, so a rendered body can never go stale while
/// its result is cached; at worst an evicted body is re-rendered.
/// Thread-safe; bodies are shared immutably with in-flight responses.
class RenderedBodyCache {
 public:
  explicit RenderedBodyCache(std::size_t capacity) : capacity_(capacity) {}

  /// The rendered body for `key`, refreshed to most-recently-used, or
  /// nullptr when absent.
  [[nodiscard]] std::shared_ptr<const std::string> lookup(const std::string& key);

  /// Remember `body` for `key` (no-op on a duplicate key beyond the
  /// recency refresh), evicting the least recently used entry over
  /// capacity.
  void insert(const std::string& key, std::shared_ptr<const std::string> body);

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const std::string> body;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string_view, std::list<Entry>::iterator> index_;
};

/// Shared state behind one serving process: the content-addressed result
/// cache (sharded; optionally disk-backed) and the engine wired to it,
/// plus request counters.  Construct once, then build the router over
/// it; must outlive the server.
class ServeContext {
 public:
  /// `engine_options.cache` is overwritten to point at the owned cache.
  /// A non-empty `cache_dir` attaches a disk tier (created if absent;
  /// throws std::runtime_error when unusable), so a restarted daemon
  /// keeps its previously evaluated results.
  explicit ServeContext(scenario::EngineOptions engine_options = {},
                        std::size_t cache_capacity = 1024,
                        std::size_t cache_shards = 8,
                        const std::string& cache_dir = "");

  [[nodiscard]] scenario::ResultCache& cache() { return cache_; }
  [[nodiscard]] const scenario::Engine& engine() const { return engine_; }
  /// The registry the engine resolves platform names against.
  [[nodiscard]] const device::PlatformRegistry& registry() const { return *registry_; }
  /// Rendered `/v1/run` bodies for the cache-hit fast path.
  [[nodiscard]] RenderedBodyCache& rendered() { return rendered_; }

  std::atomic<std::uint64_t> requests{0};  ///< routed requests
  std::atomic<std::uint64_t> errors{0};    ///< non-2xx responses
  /// `/v1/run` responses streamed from the rendered-body cache (no
  /// result materialization, no dump).  Surfaced in `/v1/stats`.
  std::atomic<std::uint64_t> fast_path_hits{0};

 private:
  /// Declaration order is load-bearing: the store outlives the cache
  /// that points at it, and the cache outlives the engine wired to it.
  std::optional<scenario::CacheStore> store_;
  scenario::ResultCache cache_;
  scenario::Engine engine_;
  const device::PlatformRegistry* registry_;
  RenderedBodyCache rendered_;
};

/// Build the dispatch table over `context` (which must outlive the
/// returned router and any server running it).
[[nodiscard]] Router make_router(ServeContext& context);

}  // namespace greenfpga::serve

#endif  // GREENFPGA_SERVE_HANDLERS_HPP
