#ifndef GREENFPGA_SERVE_HANDLERS_HPP
#define GREENFPGA_SERVE_HANDLERS_HPP

/// \file handlers.hpp
/// The `greenfpga serve` API surface over the evaluation engine.
///
/// Endpoints (all bodies JSON; non-2xx bodies are `{"error": ...}`):
///
///   * `POST /v1/run`    -- one scenario spec in (the `greenfpga run`
///     spec shape), the canonical result JSON out, **byte-identical to
///     `greenfpga run --format json`** on the same spec (pinned by
///     tests/serve_test.cpp), cache hits included.  The `X-Cache` header
///     reports `hit` or `miss` and `X-Cache-Key` the spec's content
///     digest.
///   * `POST /v1/batch`  -- `{"specs": [<spec>, ...]}` in, the array of
///     canonical result JSONs out (spec order); repeated/previously-seen
///     specs come from the cache.
///   * `GET /v1/platforms` -- registry platform names and known domains.
///   * `GET /v1/stats`   -- cache hit/miss/eviction counters, occupancy,
///     request counts, engine worker count.
///   * `GET /healthz`    -- liveness: `{"status":"ok"}`.
///
/// Spec parse/validation failures answer 400 with the same
/// offending-key-naming message the CLI prints; over-limit or malformed
/// HTTP answers 4xx at the transport layer (serve/http.hpp).  Every
/// handler is safe under concurrent requests: the engine is stateless,
/// the cache is thread-safe, and the counters are atomic.

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "scenario/cache_store.hpp"
#include "scenario/engine.hpp"
#include "scenario/result_cache.hpp"
#include "serve/router.hpp"

namespace greenfpga::serve {

/// Shared state behind one serving process: the content-addressed result
/// cache (sharded; optionally disk-backed) and the engine wired to it,
/// plus request counters.  Construct once, then build the router over
/// it; must outlive the server.
class ServeContext {
 public:
  /// `engine_options.cache` is overwritten to point at the owned cache.
  /// A non-empty `cache_dir` attaches a disk tier (created if absent;
  /// throws std::runtime_error when unusable), so a restarted daemon
  /// keeps its previously evaluated results.
  explicit ServeContext(scenario::EngineOptions engine_options = {},
                        std::size_t cache_capacity = 1024,
                        std::size_t cache_shards = 8,
                        const std::string& cache_dir = "");

  [[nodiscard]] scenario::ResultCache& cache() { return cache_; }
  [[nodiscard]] const scenario::Engine& engine() const { return engine_; }
  /// The registry the engine resolves platform names against.
  [[nodiscard]] const device::PlatformRegistry& registry() const { return *registry_; }

  std::atomic<std::uint64_t> requests{0};  ///< routed requests
  std::atomic<std::uint64_t> errors{0};    ///< non-2xx responses

 private:
  /// Declaration order is load-bearing: the store outlives the cache
  /// that points at it, and the cache outlives the engine wired to it.
  std::optional<scenario::CacheStore> store_;
  scenario::ResultCache cache_;
  scenario::Engine engine_;
  const device::PlatformRegistry* registry_;
};

/// Build the dispatch table over `context` (which must outlive the
/// returned router and any server running it).
[[nodiscard]] Router make_router(ServeContext& context);

}  // namespace greenfpga::serve

#endif  // GREENFPGA_SERVE_HANDLERS_HPP
