/// \file event_loop.cpp
/// epoll (Linux) / kqueue (BSD, macOS) readiness dispatch.

#include "serve/event_loop.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#else
#include <fcntl.h>
#include <sys/event.h>
#include <sys/time.h>
#endif

namespace greenfpga::serve {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

#if defined(__linux__)

EventLoop::EventLoop() {
  queue_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (queue_fd_ < 0) {
    throw_errno("epoll_create1");
  }
  const int efd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (efd < 0) {
    ::close(queue_fd_);
    throw_errno("eventfd");
  }
  wake_read_fd_ = wake_write_fd_ = efd;
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wake_read_fd_;
  if (::epoll_ctl(queue_fd_, EPOLL_CTL_ADD, wake_read_fd_, &event) != 0) {
    throw_errno("epoll_ctl(wakeup)");
  }
}

void EventLoop::apply_interest(int fd, std::uint32_t interest, bool add) {
  epoll_event event{};
  event.events = ((interest & kRead) != 0 ? EPOLLIN : 0u) |
                 ((interest & kWrite) != 0 ? EPOLLOUT : 0u);
  event.data.fd = fd;
  if (::epoll_ctl(queue_fd_, add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd, &event) != 0) {
    throw_errno("epoll_ctl");
  }
}

void EventLoop::remove(int fd) {
  if (registrations_.erase(fd) > 0) {
    ::epoll_ctl(queue_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &one, sizeof one);
}

void EventLoop::drain_wake_fd() {
  std::uint64_t counter = 0;
  while (::read(wake_read_fd_, &counter, sizeof counter) > 0) {
  }
}

void EventLoop::run(const std::function<void()>& on_tick,
                    std::chrono::milliseconds tick) {
  std::vector<epoll_event> events(64);
  auto last_tick = std::chrono::steady_clock::now();
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(queue_fd_, events.data(),
                               static_cast<int>(events.size()),
                               static_cast<int>(tick.count()));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_read_fd_) {
        drain_wake_fd();
        continue;
      }
      std::uint32_t ready = 0;
      if ((events[i].events & (EPOLLIN | EPOLLHUP)) != 0) {
        ready |= kRead;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        ready |= kWrite;
      }
      if ((events[i].events & EPOLLERR) != 0) {
        ready |= kError;
      }
      // Look the handler up per event: an earlier callback in this batch
      // may have removed this fd (and the kernel may reuse fd numbers
      // only after close, which remove() precedes).
      const auto it = registrations_.find(fd);
      if (it != registrations_.end() && ready != 0) {
        it->second.callback(ready);
      }
    }
    run_posted();
    const auto now = std::chrono::steady_clock::now();
    if (now - last_tick >= tick) {
      last_tick = now;
      on_tick();
    }
  }
  run_posted();  // drain anything posted just before stop
}

#else  // kqueue platforms (macOS, *BSD)

EventLoop::EventLoop() {
  queue_fd_ = ::kqueue();
  if (queue_fd_ < 0) {
    throw_errno("kqueue");
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ::close(queue_fd_);
    throw_errno("pipe");
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  ::fcntl(wake_read_fd_, F_SETFL, O_NONBLOCK);
  ::fcntl(wake_write_fd_, F_SETFL, O_NONBLOCK);
  struct kevent event;
  EV_SET(&event, wake_read_fd_, EVFILT_READ, EV_ADD, 0, 0, nullptr);
  if (::kevent(queue_fd_, &event, 1, nullptr, 0, nullptr) != 0) {
    throw_errno("kevent(wakeup)");
  }
}

void EventLoop::apply_interest(int fd, std::uint32_t interest, bool add) {
  (void)add;  // kqueue EV_ADD is idempotent; filters toggle independently
  struct kevent events[2];
  EV_SET(&events[0], fd, EVFILT_READ,
         (interest & kRead) != 0 ? EV_ADD : (EV_ADD | EV_DISABLE), 0, 0, nullptr);
  EV_SET(&events[1], fd, EVFILT_WRITE,
         (interest & kWrite) != 0 ? EV_ADD : (EV_ADD | EV_DISABLE), 0, 0, nullptr);
  if (::kevent(queue_fd_, events, 2, nullptr, 0, nullptr) != 0) {
    throw_errno("kevent");
  }
}

void EventLoop::remove(int fd) {
  if (registrations_.erase(fd) > 0) {
    struct kevent events[2];
    EV_SET(&events[0], fd, EVFILT_READ, EV_DELETE, 0, 0, nullptr);
    EV_SET(&events[1], fd, EVFILT_WRITE, EV_DELETE, 0, 0, nullptr);
    ::kevent(queue_fd_, events, 2, nullptr, 0, nullptr);
  }
}

void EventLoop::wake() {
  const char one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &one, 1);
}

void EventLoop::drain_wake_fd() {
  char sink[256];
  while (::read(wake_read_fd_, sink, sizeof sink) > 0) {
  }
}

void EventLoop::run(const std::function<void()>& on_tick,
                    std::chrono::milliseconds tick) {
  std::vector<struct kevent> events(64);
  auto last_tick = std::chrono::steady_clock::now();
  while (!stop_requested_.load(std::memory_order_acquire)) {
    struct timespec timeout;
    timeout.tv_sec = static_cast<time_t>(tick.count() / 1000);
    timeout.tv_nsec = static_cast<long>((tick.count() % 1000) * 1'000'000);
    const int n = ::kevent(queue_fd_, nullptr, 0, events.data(),
                           static_cast<int>(events.size()), &timeout);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("kevent");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = static_cast<int>(events[i].ident);
      if (fd == wake_read_fd_) {
        drain_wake_fd();
        continue;
      }
      std::uint32_t ready = 0;
      if (events[i].filter == EVFILT_READ) {
        ready |= kRead;
      }
      if (events[i].filter == EVFILT_WRITE) {
        ready |= kWrite;
      }
      if ((events[i].flags & EV_ERROR) != 0) {
        ready |= kError;
      }
      const auto it = registrations_.find(fd);
      if (it != registrations_.end() && ready != 0) {
        it->second.callback(ready);
      }
    }
    run_posted();
    const auto now = std::chrono::steady_clock::now();
    if (now - last_tick >= tick) {
      last_tick = now;
      on_tick();
    }
  }
  run_posted();
}

#endif

EventLoop::~EventLoop() {
  if (queue_fd_ >= 0) {
    ::close(queue_fd_);
  }
  if (wake_read_fd_ >= 0) {
    ::close(wake_read_fd_);
  }
  if (wake_write_fd_ >= 0 && wake_write_fd_ != wake_read_fd_) {
    ::close(wake_write_fd_);
  }
}

void EventLoop::add(int fd, std::uint32_t interest, IoCallback callback) {
  apply_interest(fd, interest, /*add=*/true);
  registrations_[fd] = Registration{interest, std::move(callback)};
}

void EventLoop::set_interest(int fd, std::uint32_t interest) {
  const auto it = registrations_.find(fd);
  if (it == registrations_.end()) {
    return;
  }
  if (it->second.interest == interest) {
    return;
  }
  apply_interest(fd, interest, /*add=*/false);
  it->second.interest = interest;
}

void EventLoop::post(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::run_posted() {
  std::vector<std::function<void()>> tasks;
  {
    const std::lock_guard<std::mutex> lock(posted_mutex_);
    tasks.swap(posted_);
  }
  for (const std::function<void()>& task : tasks) {
    task();
  }
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_release);
  wake();
}

}  // namespace greenfpga::serve
