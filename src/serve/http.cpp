/// \file http.cpp
/// HTTP/1.1 framing: strict parsing, bounded ingestion, SIGPIPE-safe IO.

#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <optional>

namespace greenfpga::serve {

namespace {

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

/// Strict non-negative decimal parse for Content-Length (no sign, no
/// whitespace, no trailing bytes); nullopt on anything else.
std::optional<std::size_t> parse_content_length(std::string_view text) {
  if (text.empty() || text.size() > 18) {
    return std::nullopt;
  }
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value;
}

/// Split a CRLF (or, leniently, bare-LF) header block into lines.
std::vector<std::string_view> split_lines(std::string_view block) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start < block.size()) {
    std::size_t end = block.find('\n', start);
    if (end == std::string_view::npos) {
      end = block.size();
    }
    std::string_view line = block.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    lines.push_back(line);
    start = end + 1;
  }
  return lines;
}

void parse_headers(const std::vector<std::string_view>& lines,
                   std::vector<std::pair<std::string, std::string>>& out) {
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    if (line.empty()) {
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      throw HttpError(400, "malformed header line");
    }
    out.emplace_back(to_lower(trim(line.substr(0, colon))),
                     std::string(trim(line.substr(colon + 1))));
  }
}

std::string find_header(const std::vector<std::pair<std::string, std::string>>& headers,
                        std::string_view name, std::string fallback) {
  const std::string lowered = to_lower(name);
  for (const auto& [key, value] : headers) {
    if (key == lowered) {
      return value;
    }
  }
  return fallback;
}

}  // namespace

std::string HttpRequest::header_or(std::string_view name, std::string fallback) const {
  return find_header(headers, name, std::move(fallback));
}

bool HttpRequest::keep_alive() const {
  const std::string connection = to_lower(header_or("connection"));
  if (version == "HTTP/1.0") {
    return connection == "keep-alive";
  }
  return connection != "close";
}

void HttpResponse::set_header(std::string_view name, std::string value) {
  const std::string lowered = to_lower(name);
  for (auto& [key, existing] : headers) {
    if (to_lower(key) == lowered) {
      existing = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::string(name), std::move(value));
}

std::string HttpResponse::header_or(std::string_view name, std::string fallback) const {
  return find_header(headers, name, std::move(fallback));
}

std::string reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Status " + std::to_string(status);
  }
}

RequestFramer::RequestFramer(HttpLimits limits) : limits_(limits) {}

bool RequestFramer::next(std::string& buffer, HttpRequest& out) {
  if (drain_remaining_ > 0) {
    // Over-limit body: discard what the peer is committed to sending,
    // within a hard bound, so the 413 can actually be delivered --
    // rejecting with unread bytes in flight makes the close RST the
    // connection and eat the response.  Past the bound we give up and
    // let the close happen.
    const std::size_t n = std::min(buffer.size(), drain_remaining_);
    buffer.erase(0, n);
    drain_remaining_ -= n;
    if (drain_remaining_ > 0) {
      return false;
    }
    throw HttpError(413, drain_error_);
  }
  if (!head_done_) {
    // Accept CRLFCRLF and (leniently) LFLF as the header terminator.
    const std::size_t crlf = buffer.find("\r\n\r\n");
    const std::size_t lflf = buffer.find("\n\n");
    std::size_t end = std::string::npos;
    std::size_t skip = 0;
    if (crlf != std::string::npos && (lflf == std::string::npos || crlf < lflf)) {
      end = crlf;
      skip = 4;
    } else if (lflf != std::string::npos) {
      end = lflf;
      skip = 2;
    }
    if (end == std::string::npos) {
      if (buffer.size() > limits_.max_header_bytes) {
        throw HttpError(413, "header block exceeds " +
                                 std::to_string(limits_.max_header_bytes) + " bytes");
      }
      return false;
    }
    const std::string block = buffer.substr(0, end);
    buffer.erase(0, end + skip);
    const std::vector<std::string_view> lines = split_lines(block);
    if (lines.empty()) {
      throw HttpError(400, "empty request");
    }
    // Request line: METHOD SP TARGET SP VERSION -- exactly two spaces.  A
    // target with an embedded space is malformed framing, not a path.
    const std::string_view line = lines.front();
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? std::string_view::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        line.find(' ', sp2 + 1) != std::string_view::npos) {
      throw HttpError(400, "malformed request line");
    }
    pending_ = HttpRequest{};
    pending_.method = std::string(line.substr(0, sp1));
    std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    pending_.version = std::string(line.substr(sp2 + 1));
    if (pending_.version != "HTTP/1.1" && pending_.version != "HTTP/1.0") {
      throw HttpError(400, "unsupported HTTP version '" + pending_.version + "'");
    }
    const std::size_t question = target.find('?');
    if (question != std::string_view::npos) {
      pending_.query = std::string(target.substr(question + 1));
      target = target.substr(0, question);
    }
    pending_.target = std::string(target);
    if (pending_.target.empty() || pending_.target.front() != '/') {
      throw HttpError(400, "request target must be an absolute path");
    }
    parse_headers(lines, pending_.headers);
    if (!pending_.header_or("transfer-encoding").empty()) {
      throw HttpError(501, "chunked transfer coding is not supported; "
                           "send Content-Length");
    }
    body_needed_ = 0;
    const std::string length_text = pending_.header_or("content-length");
    if (!length_text.empty()) {
      const std::optional<std::size_t> length = parse_content_length(length_text);
      if (!length) {
        throw HttpError(400, "malformed Content-Length '" + length_text + "'");
      }
      if (*length > limits_.max_body_bytes) {
        drain_remaining_ = std::min(*length, limits_.max_body_bytes * 8);
        drain_error_ = "body of " + std::to_string(*length) + " bytes exceeds limit " +
                       std::to_string(limits_.max_body_bytes);
        pending_ = HttpRequest{};
        return next(buffer, out);  // start draining what is already buffered
      }
      body_needed_ = *length;
    }
    head_done_ = true;
  }
  if (buffer.size() < body_needed_) {
    return false;
  }
  pending_.body = buffer.substr(0, body_needed_);
  buffer.erase(0, body_needed_);
  out = std::move(pending_);
  pending_ = HttpRequest{};
  body_needed_ = 0;
  head_done_ = false;
  return true;
}

SocketStream::SocketStream(int fd, HttpLimits limits)
    : fd_(fd), limits_(limits), framer_(limits) {}

SocketStream::~SocketStream() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

bool SocketStream::fill() {
  char chunk[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
    if (n == 0) {
      return false;  // orderly shutdown by the peer
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // SO_RCVTIMEO expired: the peer is alive but silent.  That is a
      // timeout to report (408), not a clean end-of-stream.
      throw HttpError(408, "receive timed out");
    }
    throw HttpError(400, std::string("recv failed: ") + std::strerror(errno));
  }
}

bool SocketStream::read_header_block(std::string& out) {
  for (;;) {
    // Accept CRLFCRLF and (leniently) LFLF as the header terminator.
    const std::size_t crlf = buffer_.find("\r\n\r\n");
    const std::size_t lflf = buffer_.find("\n\n");
    std::size_t end = std::string::npos;
    std::size_t skip = 0;
    if (crlf != std::string::npos && (lflf == std::string::npos || crlf < lflf)) {
      end = crlf;
      skip = 4;
    } else if (lflf != std::string::npos) {
      end = lflf;
      skip = 2;
    }
    if (end != std::string::npos) {
      out = buffer_.substr(0, end);
      buffer_.erase(0, end + skip);
      return true;
    }
    if (buffer_.size() > limits_.max_header_bytes) {
      throw HttpError(413, "header block exceeds " +
                               std::to_string(limits_.max_header_bytes) + " bytes");
    }
    if (!fill()) {
      if (buffer_.empty()) {
        return false;  // clean EOF between messages
      }
      throw HttpError(400, "connection closed mid-header");
    }
  }
}

void SocketStream::read_body(std::size_t length, std::string& out) {
  if (length > limits_.max_body_bytes) {
    // Drain (and discard) what the peer is committed to sending, within
    // a hard bound, so the 413 can actually be delivered: rejecting with
    // unread bytes in flight makes the close RST the connection and eat
    // the response.  Past the bound we give up and let the close happen.
    std::size_t to_drain = std::min(length, limits_.max_body_bytes * 8);
    while (to_drain > 0) {
      if (buffer_.empty() && !fill()) {
        break;
      }
      const std::size_t n = std::min(buffer_.size(), to_drain);
      buffer_.erase(0, n);
      to_drain -= n;
    }
    throw HttpError(413, "body of " + std::to_string(length) + " bytes exceeds limit " +
                             std::to_string(limits_.max_body_bytes));
  }
  while (buffer_.size() < length) {
    if (!fill()) {
      throw HttpError(400, "connection closed mid-body");
    }
  }
  out = buffer_.substr(0, length);
  buffer_.erase(0, length);
}

bool SocketStream::read_request(HttpRequest& out) {
  for (;;) {
    if (framer_.next(buffer_, out)) {
      return true;
    }
    if (!fill()) {
      if (!framer_.mid_request(buffer_)) {
        return false;  // clean EOF between messages
      }
      throw HttpError(400, "connection closed mid-request");
    }
  }
}

bool SocketStream::read_response(HttpResponse& out) {
  std::string block;
  if (!read_header_block(block)) {
    return false;
  }
  const std::vector<std::string_view> lines = split_lines(block);
  if (lines.empty()) {
    throw HttpError(400, "empty response");
  }
  // Status line: VERSION SP STATUS SP REASON.
  const std::string_view line = lines.front();
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || line.size() < sp1 + 4) {
    throw HttpError(400, "malformed status line");
  }
  out = HttpResponse{};
  const std::optional<std::size_t> status = parse_content_length(line.substr(sp1 + 1, 3));
  if (!status) {
    throw HttpError(400, "malformed status code");
  }
  out.status = static_cast<int>(*status);
  parse_headers(lines, out.headers);
  const std::string length_text = find_header(out.headers, "content-length", "");
  if (length_text.empty()) {
    throw HttpError(400, "response without Content-Length");
  }
  const std::optional<std::size_t> length = parse_content_length(length_text);
  if (!length) {
    throw HttpError(400, "malformed Content-Length '" + length_text + "'");
  }
  read_body(*length, out.body);
  return true;
}

void SocketStream::send_all(std::string_view bytes) {
  while (!bytes.empty()) {
    // MSG_NOSIGNAL: a peer that closed mid-write must surface as an
    // error return, not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw HttpError(500, std::string("send failed: ") + std::strerror(errno));
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
}

std::string serialize_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    reason_phrase(response.status) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n\r\n";
  out += response.body;
  return out;
}

void SocketStream::write_response(const HttpResponse& response) {
  send_all(serialize_response(response));
}

void SocketStream::write_request(const HttpRequest& request) {
  std::string out = request.method + " " + request.target;
  if (!request.query.empty()) {
    out += "?" + request.query;
  }
  out += " HTTP/1.1\r\n";
  for (const auto& [name, value] : request.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n\r\n";
  out += request.body;
  send_all(out);
}

namespace {

int connect_to(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("invalid IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error("connect to " + host + ":" + std::to_string(port) +
                             " failed: " + std::strerror(saved));
  }
  return fd;
}

}  // namespace

HttpClient::HttpClient(const std::string& host, int port, HttpLimits limits)
    : host_(host + ":" + std::to_string(port)), stream_(connect_to(host, port), limits) {}

HttpResponse HttpClient::request(
    const std::string& method, const std::string& target, const std::string& body,
    std::vector<std::pair<std::string, std::string>> headers) {
  HttpRequest req;
  req.method = method;
  req.target = target;
  req.version = "HTTP/1.1";
  req.headers = std::move(headers);
  req.headers.emplace_back("Host", host_);
  req.headers.emplace_back("Connection", "keep-alive");
  req.body = body;
  stream_.write_request(req);
  HttpResponse response;
  if (!stream_.read_response(response)) {
    throw HttpError(500, "server closed the connection without responding");
  }
  return response;
}

}  // namespace greenfpga::serve
