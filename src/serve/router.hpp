#ifndef GREENFPGA_SERVE_ROUTER_HPP
#define GREENFPGA_SERVE_ROUTER_HPP

/// \file router.hpp
/// Exact-path request routing with JSON error responses.
///
/// The daemon's surface is a handful of fixed paths, so the router is a
/// map from (method, path) to handler -- no wildcard grammar to get
/// wrong in front of untrusted traffic.  Misses produce the same JSON
/// error shape the handlers use (`{"error": ...}`), so every non-2xx
/// body a client sees is machine-readable.

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "io/json.hpp"
#include "serve/http.hpp"

namespace greenfpga::serve {

/// A JSON response: `value` pretty-printed with a trailing newline (the
/// same bytes `Json::dump(2)` produces everywhere else) plus the
/// Content-Type header.
[[nodiscard]] HttpResponse json_response(int status, const io::Json& value);

/// The uniform error body: `{"error": <message>}`.
[[nodiscard]] HttpResponse error_response(int status, const std::string& message);

/// Exact-match (method, path) dispatch table.
class Router {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Register `handler` for `method path` (replacing any existing one).
  void add(std::string method, std::string path, Handler handler);

  /// Dispatch: 404 for an unknown path, 405 (with an Allow header) for a
  /// known path under the wrong method.  Exceptions from handlers
  /// propagate to the caller (the server's connection loop maps them).
  [[nodiscard]] HttpResponse route(const HttpRequest& request) const;

 private:
  std::map<std::pair<std::string, std::string>, Handler> handlers_;
};

}  // namespace greenfpga::serve

#endif  // GREENFPGA_SERVE_ROUTER_HPP
