#ifndef GREENFPGA_SERVE_SERVER_HPP
#define GREENFPGA_SERVE_SERVER_HPP

/// \file server.hpp
/// The blocking-socket HTTP/1.1 daemon behind `greenfpga serve`.
///
/// One acceptor thread plus one thread per live connection (keep-alive:
/// a connection serves many requests, so the thread count tracks
/// concurrent *clients*, not request rate).  A `max_connections` cap
/// turns overload into fast 503s instead of unbounded threads.  `stop()`
/// is safe from any thread: it closes the listener, shuts down every
/// live connection socket (unblocking their reads) and joins all
/// threads, so tests can start/stop servers in-process.
///
/// The server owns no evaluation state -- it drives a `Router` built by
/// `serve::make_router` over a `ServeContext` (engine + result cache);
/// see serve/handlers.hpp.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/http.hpp"
#include "serve/router.hpp"

namespace greenfpga::serve {

struct ServerOptions {
  /// Bind address.  The default is loopback-only: the daemon speaks
  /// plaintext HTTP, so exposing it beyond the host is an explicit
  /// operator decision ("0.0.0.0").
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via `port()`).
  int port = 0;
  /// Concurrent-connection cap; further accepts answer 503 and close.
  int max_connections = 64;
  HttpLimits limits;
};

class Server {
 public:
  Server(Router router, ServerOptions options = {});
  ~Server();  ///< calls stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the acceptor thread.  Throws
  /// std::runtime_error on bind failure (e.g. port in use).
  void start();

  /// The bound port (the real one when options.port was 0).  Valid after
  /// start().
  [[nodiscard]] int port() const { return port_; }

  /// Stop accepting, unblock and join every connection, release sockets.
  /// Idempotent; called by the destructor.
  void stop();

  /// Block until stop() is called from elsewhere (the CLI foreground
  /// path: the process serves until killed).
  void wait();

  /// Requests answered so far (all routes, including error responses).
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void handle_connection(Connection& connection);
  void reap_finished_locked();  ///< joins connections flagged done

  Router router_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread acceptor_;
  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;
  std::mutex stopped_mutex_;
  std::condition_variable stopped_;
};

}  // namespace greenfpga::serve

#endif  // GREENFPGA_SERVE_SERVER_HPP
