#ifndef GREENFPGA_SERVE_SERVER_HPP
#define GREENFPGA_SERVE_SERVER_HPP

/// \file server.hpp
/// The event-loop HTTP/1.1 daemon behind `greenfpga serve`.
///
/// One event-loop thread owns every socket (listener and connections,
/// all non-blocking) and does nothing but framing and byte shuffling;
/// fully-framed requests are handed to a fixed pool of worker threads
/// that run the router (and, behind it, the evaluation engine), posting
/// serialized responses back to the loop for writing.  No socket
/// operation ever blocks a shared thread, so one slow or never-reading
/// peer cannot stall accept, other connections, or overload shedding --
/// the head-of-line failure the old thread-per-connection acceptor had
/// when its 503 path wrote to a stuck peer while holding the connection
/// lock.
///
/// Keep-alive connections are served request-at-a-time with pipelining:
/// buffered follow-up requests dispatch as soon as the previous response
/// is written; reads pause (backpressure) while a request is in the
/// workers.  A `max_connections` cap sheds overload with a best-effort
/// non-blocking 503.  Stalled writes and half-received requests are
/// closed after `io_timeout_ms` (408 when a request is partially
/// framed); idle keep-alive connections close after `idle_timeout_ms`.
/// `stop()` is safe from any thread and joins the loop and every worker,
/// so tests can start/stop servers in-process.
///
/// The server owns no evaluation state -- it drives a `Router` built by
/// `serve::make_router` over a `ServeContext` (engine + result cache);
/// see serve/handlers.hpp.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/event_loop.hpp"
#include "serve/http.hpp"
#include "serve/router.hpp"

namespace greenfpga::serve {

struct ServerOptions {
  /// Bind address.  The default is loopback-only: the daemon speaks
  /// plaintext HTTP, so exposing it beyond the host is an explicit
  /// operator decision ("0.0.0.0").
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via `port()`).
  int port = 0;
  /// Concurrent-connection cap; further accepts answer 503 and close.
  int max_connections = 64;
  /// Handler worker threads; 0 picks a hardware-sized default.  Workers
  /// only compute (parse spec, run engine, serialize); they never touch
  /// sockets, so this bounds CPU concurrency, not client concurrency.
  int workers = 0;
  /// Close a connection whose write is stalled, or whose request is
  /// half-received (408), for longer than this.  Also applied to the
  /// socket as SO_SNDTIMEO/SO_RCVTIMEO, bounding any direct blocking IO.
  int io_timeout_ms = 5000;
  /// Close keep-alive connections idle (no request in flight) this long.
  int idle_timeout_ms = 60000;
  HttpLimits limits;
};

class Server {
 public:
  Server(Router router, ServerOptions options = {});
  ~Server();  ///< calls stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the event loop and worker pool.  Throws
  /// std::runtime_error on bind failure (e.g. port in use).
  void start();

  /// The bound port (the real one when options.port was 0).  Valid after
  /// start().
  [[nodiscard]] int port() const { return port_; }

  /// Stop accepting, unblock and join the loop and every worker, close
  /// all sockets.  Idempotent; called by the destructor.
  void stop();

  /// Block until stop() is called from elsewhere (the CLI foreground
  /// path: the process serves until killed).
  void wait();

  /// Requests answered so far (all routes, including error responses and
  /// overload 503s).
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-connection state, owned by the loop thread.  `id` outlives fd
  /// reuse: worker completions address connections by id, so a response
  /// for a connection that timed out meanwhile is dropped, never written
  /// to a recycled fd.
  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;
    RequestFramer framer;
    std::string inbox;    ///< received, not yet framed
    std::string outbox;   ///< serialized response bytes pending write
    std::size_t sent = 0;
    bool processing = false;        ///< a request is in the worker pool
    bool close_after_write = false;
    bool peer_eof = false;          ///< peer half-closed; close once drained
    std::chrono::steady_clock::time_point last_activity;

    explicit Connection(HttpLimits limits) : framer(limits) {}
  };

  struct Job {
    std::uint64_t connection_id = 0;
    HttpRequest request;
  };

  // -- loop thread only -------------------------------------------------
  void on_listener_ready();
  void shed_connection(int fd);  ///< best-effort non-blocking 503 + close
  void on_connection_ready(Connection& connection, std::uint32_t ready);
  void advance(Connection& connection);   ///< frame / dispatch / rearm
  void queue_response(Connection& connection, const HttpResponse& response,
                      bool keep_alive);
  bool flush_outbox(Connection& connection);  ///< false: connection destroyed
  void complete(std::uint64_t connection_id, std::string bytes, bool keep_alive);
  void destroy_connection(Connection& connection);
  void sweep_timeouts();

  // -- worker pool ------------------------------------------------------
  void worker_main();
  void dispatch(Connection& connection, HttpRequest request);

  Router router_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};

  EventLoop loop_;
  std::thread loop_thread_;
  std::uint64_t next_connection_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections_;

  std::vector<std::thread> workers_;
  std::mutex jobs_mutex_;
  std::condition_variable jobs_ready_;
  std::deque<Job> jobs_;
  bool workers_stopping_ = false;

  std::mutex stopped_mutex_;
  std::condition_variable stopped_;
};

}  // namespace greenfpga::serve

#endif  // GREENFPGA_SERVE_SERVER_HPP
