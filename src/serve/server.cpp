/// \file server.cpp
/// Acceptor + per-connection keep-alive loops with clean shutdown.

#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace greenfpga::serve {

Server::Server(Router router, ServerOptions options)
    : router_(std::move(router)), options_(std::move(options)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) {
    throw std::logic_error("Server::start: already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    running_ = false;
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int on = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof on);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
    throw std::runtime_error("invalid bind address '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
    throw std::runtime_error("cannot listen on " + options_.host + ":" +
                             std::to_string(options_.port) + ": " +
                             std::strerror(saved));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = static_cast<int>(ntohs(bound.sin_port));
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_relaxed)) {
        return;  // stop() closed the listener
      }
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      return;  // listener is gone; nothing left to accept
    }
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    reap_finished_locked();
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      // Overload: answer fast and shed, never queue unboundedly.
      SocketStream stream(fd, options_.limits);
      requests_.fetch_add(1, std::memory_order_relaxed);
      try {
        stream.write_response(error_response(503, "connection limit reached"));
      } catch (const HttpError&) {
        // Shedding best-effort: the peer may already be gone.
      }
      continue;
    }
    connections_.push_back(std::make_unique<Connection>());
    Connection& connection = *connections_.back();
    connection.fd = fd;
    connection.thread = std::thread([this, &connection] {
      handle_connection(connection);
      connection.done.store(true, std::memory_order_release);
    });
  }
}

void Server::handle_connection(Connection& connection) {
  SocketStream stream(connection.fd, options_.limits);
  HttpRequest request;
  while (running_.load(std::memory_order_relaxed)) {
    bool got = false;
    try {
      got = stream.read_request(request);
    } catch (const HttpError& error) {
      // Transport-level failure (malformed framing, over-limit input):
      // answer with its status and close -- the byte stream can no
      // longer be trusted for framing.
      try {
        HttpResponse response = error_response(error.status(), error.what());
        response.set_header("Connection", "close");
        requests_.fetch_add(1, std::memory_order_relaxed);
        stream.write_response(response);
      } catch (const HttpError&) {
      }
      return;
    }
    if (!got) {
      return;  // peer closed an idle keep-alive connection
    }
    // Last-resort exception mapping (router.hpp documents that handler
    // exceptions propagate to this loop): a handler registered without
    // the handlers.cpp error wrapper, or a failure while building the
    // 404/405 response, must cost one 500, never the daemon.
    HttpResponse response;
    try {
      response = router_.route(request);
    } catch (const std::exception& error) {
      response = error_response(500, error.what());
    } catch (...) {
      response = error_response(500, "unknown handler failure");
    }
    const bool keep =
        request.keep_alive() && running_.load(std::memory_order_relaxed);
    response.set_header("Connection", keep ? "keep-alive" : "close");
    requests_.fetch_add(1, std::memory_order_relaxed);
    try {
      stream.write_response(response);
    } catch (const HttpError&) {
      return;  // peer went away mid-write
    }
    if (!keep) {
      return;
    }
  }
}

void Server::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  // Unblock the acceptor: shutdown() forces accept() to return on every
  // platform; close() releases the fd.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  {
    // Unblock every connection read; the threads observe running_ ==
    // false (or EOF) and exit.  SocketStream still owns and closes the
    // fds.
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const std::unique_ptr<Connection>& connection : connections_) {
      ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  for (;;) {
    std::unique_ptr<Connection> victim;
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      if (connections_.empty()) {
        break;
      }
      victim = std::move(connections_.front());
      connections_.pop_front();
    }
    victim->thread.join();
  }
  {
    // Taking the lock orders this notify after any in-flight wait()'s
    // predicate check, so the wakeup cannot be lost.
    const std::lock_guard<std::mutex> lock(stopped_mutex_);
  }
  stopped_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stopped_mutex_);
  stopped_.wait(lock, [this] { return !running_.load(std::memory_order_relaxed); });
}

}  // namespace greenfpga::serve
