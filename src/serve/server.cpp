/// \file server.cpp
/// Event-loop acceptor + worker-pool dispatch with clean shutdown.

#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace greenfpga::serve {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// SO_SNDTIMEO/SO_RCVTIMEO: bound any blocking IO on this socket.  The
/// event loop never blocks on sockets, but the timeouts are cheap
/// defense in depth -- and they make a descriptor handed to blocking
/// code (tests, future handlers) safe by construction.
void set_socket_timeouts(int fd, int timeout_ms) {
  if (timeout_ms <= 0) {
    return;
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

int default_worker_count() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hardware, 2u, 16u));
}

}  // namespace

Server::Server(Router router, ServerOptions options)
    : router_(std::move(router)), options_(std::move(options)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) {
    throw std::logic_error("Server::start: already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    running_ = false;
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  const int on = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof on);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
    throw std::runtime_error("invalid bind address '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
    throw std::runtime_error("cannot listen on " + options_.host + ":" +
                             std::to_string(options_.port) + ": " +
                             std::strerror(saved));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = static_cast<int>(ntohs(bound.sin_port));
  set_nonblocking(listen_fd_);

  // Registered before the loop thread exists, so no synchronization with
  // dispatch is needed.
  loop_.add(listen_fd_, EventLoop::kRead, [this](std::uint32_t) {
    on_listener_ready();
  });

  const int tick_source = std::min(options_.io_timeout_ms > 0 ? options_.io_timeout_ms
                                                              : options_.idle_timeout_ms,
                                   options_.idle_timeout_ms > 0 ? options_.idle_timeout_ms
                                                                : options_.io_timeout_ms);
  const int tick_ms = std::clamp(tick_source > 0 ? tick_source / 4 : 250, 10, 250);
  loop_thread_ = std::thread([this, tick_ms] {
    loop_.run([this] { sweep_timeouts(); }, std::chrono::milliseconds(tick_ms));
  });

  const int worker_count =
      options_.workers > 0 ? options_.workers : default_worker_count();
  workers_.reserve(static_cast<std::size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

void Server::on_listener_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      return;  // EAGAIN: drained, or the listener is gone
    }
    set_nonblocking(fd);
    set_socket_timeouts(fd, options_.io_timeout_ms);
    const int on = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof on);
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      shed_connection(fd);
      continue;
    }
    auto connection = std::make_unique<Connection>(options_.limits);
    connection->id = next_connection_id_++;
    connection->fd = fd;
    connection->last_activity = std::chrono::steady_clock::now();
    Connection* raw = connection.get();
    connections_.emplace(connection->id, std::move(connection));
    loop_.add(fd, EventLoop::kRead, [this, raw](std::uint32_t ready) {
      on_connection_ready(*raw, ready);
    });
  }
}

void Server::shed_connection(int fd) {
  // Overload: answer fast and shed, never queue unboundedly -- and never
  // block.  One non-blocking send (the 503 fits any fresh socket buffer);
  // a peer that cannot take even that just gets the close.  No lock is
  // held and no shared thread waits, so a stuck or never-reading peer
  // costs exactly this fd, not the acceptor (the PR-8 head-of-line bug).
  requests_.fetch_add(1, std::memory_order_relaxed);
  HttpResponse response = error_response(503, "connection limit reached");
  response.set_header("Connection", "close");
  const std::string bytes = serialize_response(response);
  [[maybe_unused]] const ssize_t n =
      ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
  ::close(fd);
}

void Server::on_connection_ready(Connection& connection, std::uint32_t ready) {
  if ((ready & EventLoop::kError) != 0) {
    destroy_connection(connection);
    return;
  }
  if ((ready & EventLoop::kWrite) != 0) {
    if (!flush_outbox(connection)) {
      return;  // connection destroyed
    }
  }
  if ((ready & EventLoop::kRead) != 0) {
    char chunk[16 * 1024];
    for (;;) {
      const ssize_t n = ::recv(connection.fd, chunk, sizeof chunk, 0);
      if (n > 0) {
        connection.inbox.append(chunk, static_cast<std::size_t>(n));
        connection.last_activity = std::chrono::steady_clock::now();
        continue;
      }
      if (n == 0) {
        connection.peer_eof = true;
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      destroy_connection(connection);  // reset mid-read
      return;
    }
    advance(connection);
  }
}

void Server::advance(Connection& connection) {
  if (connection.processing || !connection.outbox.empty()) {
    return;  // a request is in flight; reads stay paused (backpressure)
  }
  HttpRequest request;
  bool got = false;
  try {
    got = connection.framer.next(connection.inbox, request);
  } catch (const HttpError& error) {
    // Transport-level failure (malformed framing, over-limit input):
    // answer with its status and close -- the byte stream can no longer
    // be trusted for framing.
    HttpResponse response = error_response(error.status(), error.what());
    queue_response(connection, response, /*keep_alive=*/false);
    flush_outbox(connection);
    return;
  }
  if (got) {
    connection.processing = true;
    loop_.set_interest(connection.fd, 0);
    dispatch(connection, std::move(request));
    return;
  }
  if (connection.peer_eof) {
    // No complete request left and none can arrive: the peer closed an
    // idle keep-alive connection (or truncated a request mid-flight --
    // nothing can be answered either way).
    destroy_connection(connection);
    return;
  }
  loop_.set_interest(connection.fd, EventLoop::kRead);
}

void Server::queue_response(Connection& connection, const HttpResponse& response,
                            bool keep_alive) {
  HttpResponse finished = response;
  finished.set_header("Connection", keep_alive ? "keep-alive" : "close");
  requests_.fetch_add(1, std::memory_order_relaxed);
  connection.outbox += serialize_response(finished);
  connection.close_after_write = !keep_alive;
  connection.last_activity = std::chrono::steady_clock::now();
}

bool Server::flush_outbox(Connection& connection) {
  while (connection.sent < connection.outbox.size()) {
    const ssize_t n = ::send(connection.fd, connection.outbox.data() + connection.sent,
                             connection.outbox.size() - connection.sent,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      connection.sent += static_cast<std::size_t>(n);
      connection.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full (slow or never-reading peer): let the loop
      // call back when writable; the timeout sweep bounds the stall.
      loop_.set_interest(connection.fd, EventLoop::kWrite);
      return true;
    }
    destroy_connection(connection);  // peer went away mid-write
    return false;
  }
  connection.outbox.clear();
  connection.sent = 0;
  if (connection.close_after_write) {
    destroy_connection(connection);
    return false;
  }
  // Response delivered: serve the next pipelined request if one is
  // already buffered, otherwise resume reading.
  advance(connection);
  return true;
}

void Server::complete(std::uint64_t connection_id, std::string bytes,
                      bool keep_alive) {
  const auto it = connections_.find(connection_id);
  if (it == connections_.end()) {
    return;  // connection timed out or reset while the handler ran
  }
  Connection& connection = *it->second;
  connection.processing = false;
  connection.outbox += bytes;
  connection.close_after_write = !keep_alive;
  connection.last_activity = std::chrono::steady_clock::now();
  flush_outbox(connection);
}

void Server::destroy_connection(Connection& connection) {
  loop_.remove(connection.fd);
  ::close(connection.fd);
  connection.fd = -1;
  connections_.erase(connection.id);  // invalidates `connection`
}

void Server::sweep_timeouts() {
  const auto now = std::chrono::steady_clock::now();
  const auto io_limit = std::chrono::milliseconds(options_.io_timeout_ms);
  const auto idle_limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  // Collect first: destroying mutates the map.
  std::vector<Connection*> stalled;
  std::vector<Connection*> half_received;
  std::vector<Connection*> idle;
  for (const auto& [id, connection] : connections_) {
    if (connection->processing) {
      continue;  // the handler is computing; no socket stall involved
    }
    const auto quiet = now - connection->last_activity;
    if (!connection->outbox.empty()) {
      if (options_.io_timeout_ms > 0 && quiet > io_limit) {
        stalled.push_back(connection.get());
      }
    } else if (connection->framer.mid_request(connection->inbox)) {
      if (options_.io_timeout_ms > 0 && quiet > io_limit) {
        half_received.push_back(connection.get());
      }
    } else if (options_.idle_timeout_ms > 0 && quiet > idle_limit) {
      idle.push_back(connection.get());
    }
  }
  for (Connection* connection : stalled) {
    destroy_connection(*connection);
  }
  for (Connection* connection : half_received) {
    // The peer started a request and went quiet: 408, then close.
    HttpResponse response = error_response(408, "request timed out");
    queue_response(*connection, response, /*keep_alive=*/false);
    flush_outbox(*connection);
  }
  for (Connection* connection : idle) {
    destroy_connection(*connection);
  }
}

void Server::dispatch(Connection& connection, HttpRequest request) {
  {
    const std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_.push_back(Job{connection.id, std::move(request)});
  }
  jobs_ready_.notify_one();
}

void Server::worker_main() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(jobs_mutex_);
      jobs_ready_.wait(lock, [this] { return workers_stopping_ || !jobs_.empty(); });
      if (workers_stopping_) {
        return;  // shutdown drops queued work; the loop closes the sockets
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    // Last-resort exception mapping (router.hpp documents that handler
    // exceptions propagate here): a handler registered without the
    // handlers.cpp error wrapper, or a failure while building the
    // 404/405 response, must cost one 500, never the daemon.
    HttpResponse response;
    try {
      response = router_.route(job.request);
    } catch (const std::exception& error) {
      response = error_response(500, error.what());
    } catch (...) {
      response = error_response(500, "unknown handler failure");
    }
    const bool keep =
        job.request.keep_alive() && running_.load(std::memory_order_relaxed);
    response.set_header("Connection", keep ? "keep-alive" : "close");
    requests_.fetch_add(1, std::memory_order_relaxed);
    std::string bytes = serialize_response(response);
    loop_.post([this, id = job.connection_id, bytes = std::move(bytes), keep]() mutable {
      complete(id, std::move(bytes), keep);
    });
  }
}

void Server::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  // Workers first: in-flight handlers finish and post their responses
  // while the loop is still alive to write them.
  {
    const std::lock_guard<std::mutex> lock(jobs_mutex_);
    workers_stopping_ = true;
  }
  jobs_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  loop_.stop();
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }
  // The loop is gone: tear sockets down without synchronization.
  for (const auto& [id, connection] : connections_) {
    if (connection->fd >= 0) {
      ::close(connection->fd);
    }
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Taking the lock orders this notify after any in-flight wait()'s
    // predicate check, so the wakeup cannot be lost.
    const std::lock_guard<std::mutex> lock(stopped_mutex_);
  }
  stopped_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stopped_mutex_);
  stopped_.wait(lock, [this] { return !running_.load(std::memory_order_relaxed); });
}

}  // namespace greenfpga::serve
