#ifndef GREENFPGA_SERVE_EVENT_LOOP_HPP
#define GREENFPGA_SERVE_EVENT_LOOP_HPP

/// \file event_loop.hpp
/// A minimal readiness event loop: epoll on Linux, kqueue elsewhere.
///
/// The serve daemon's acceptor used to be blocking-socket with one
/// thread per connection; at "millions of users" scale the thread count
/// tracks concurrent clients and one stalled write can freeze shared
/// state (the PR-8 head-of-line bug).  This loop inverts the design: one
/// thread owns *all* socket readiness -- accept, read, write -- over
/// non-blocking file descriptors, and CPU-bound work (request handling)
/// happens elsewhere, results posted back via `post`.
///
/// Threading contract: `add`, `set_interest` and `remove` are loop-thread
/// only (call them from callbacks or posted tasks); `post` and `stop` are
/// safe from any thread and wake the loop via an eventfd/pipe.  Callbacks
/// may add or remove any fd, including their own: dispatch looks handlers
/// up per event, so a handler removed mid-batch is simply skipped.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace greenfpga::serve {

class EventLoop {
 public:
  /// Readiness bits passed to callbacks and accepted by `add`/`set_interest`
  /// (kError is always reported, never requested).
  static constexpr std::uint32_t kRead = 1;
  static constexpr std::uint32_t kWrite = 2;
  static constexpr std::uint32_t kError = 4;

  using IoCallback = std::function<void(std::uint32_t ready)>;

  EventLoop();  ///< throws std::runtime_error when the kernel queue fails
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` (must already be non-blocking) for `interest` bits.
  void add(int fd, std::uint32_t interest, IoCallback callback);

  /// Change the interest set of a registered fd.  `interest` may be 0
  /// (keep the registration, deliver only errors) -- used to pause reads
  /// while a request is being handled (backpressure).
  void set_interest(int fd, std::uint32_t interest);

  /// Deregister `fd`.  The caller still owns (and closes) the fd.
  void remove(int fd);

  /// Run `task` on the loop thread at the next wakeup.  Thread-safe; the
  /// only way other threads talk to the loop.  Tasks posted after `stop`
  /// are discarded when the loop drains.
  void post(std::function<void()> task);

  /// Dispatch events until `stop`, invoking `on_tick` at least every
  /// `tick` interval (connection timeout sweeps).  Call from exactly one
  /// thread.
  void run(const std::function<void()>& on_tick, std::chrono::milliseconds tick);

  /// Ask `run` to return; safe from any thread, idempotent.
  void stop();

 private:
  struct Registration {
    std::uint32_t interest = 0;
    IoCallback callback;
  };

  void apply_interest(int fd, std::uint32_t interest, bool add);
  void wake();
  void drain_wake_fd();
  void run_posted();

  int queue_fd_ = -1;  ///< epoll or kqueue descriptor
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;  ///< == wake_read_fd_ on eventfd platforms
  std::unordered_map<int, Registration> registrations_;
  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;
  std::atomic<bool> stop_requested_{false};
};

}  // namespace greenfpga::serve

#endif  // GREENFPGA_SERVE_EVENT_LOOP_HPP
