/// \file handlers.cpp
/// The serve endpoints: spec in, canonical result JSON out, cached.

#include "serve/handlers.hpp"

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/config_io.hpp"
#include "device/catalog.hpp"
#include "io/hash.hpp"
#include "io/json.hpp"
#include "scenario/result_io.hpp"
#include "scenario/spec.hpp"

namespace greenfpga::serve {

namespace {

using io::Json;

/// Wrap a handler with the uniform error mapping: domain errors (bad
/// JSON, unknown keys, invalid specs) answer 400 with the same
/// offending-key-naming message the CLI prints; anything else is a 500.
/// Also maintains the context's request/error counters.
Router::Handler wrap(ServeContext& context, Router::Handler handler) {
  return [&context, handler = std::move(handler)](const HttpRequest& request) {
    context.requests.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response;
    try {
      response = handler(request);
    } catch (const io::JsonError& error) {
      response = error_response(400, error.what());
    } catch (const core::ConfigError& error) {
      response = error_response(400, error.what());
    } catch (const std::invalid_argument& error) {
      response = error_response(400, error.what());
    } catch (const std::out_of_range& error) {
      response = error_response(400, error.what());
    } catch (const std::exception& error) {
      response = error_response(500, error.what());
    }
    if (response.status >= 400) {
      context.errors.fetch_add(1, std::memory_order_relaxed);
    }
    return response;
  };
}

/// Parse one spec out of request-body JSON: the exact dialect of
/// `greenfpga run <spec.json>` (// comments allowed, so a spec file can
/// be POSTed verbatim), with the parser's nesting cap, so a depth bomb
/// is a 400, never a crash.
scenario::ScenarioSpec spec_of_body(const std::string& body) {
  const Json parsed = io::parse_json(body, io::JsonParseOptions{.allow_comments = true});
  scenario::ScenarioSpec spec = scenario::spec_from_json(parsed);
  spec.validate();
  return spec;
}

HttpResponse handle_run(ServeContext& context, const HttpRequest& request) {
  const scenario::ScenarioSpec spec = spec_of_body(request.body);
  const scenario::Engine::CachedRun run = context.engine().run_cached(spec);
  HttpResponse response =
      json_response(200, scenario::result_to_json(*run.result));
  response.set_header("X-Cache", run.hit ? "hit" : "miss");
  response.set_header("X-Cache-Key", io::content_digest(run.key));
  return response;
}

HttpResponse handle_batch(ServeContext& context, const HttpRequest& request) {
  // Same dialect as /v1/run, so spec files embed verbatim.
  const Json parsed =
      io::parse_json(request.body, io::JsonParseOptions{.allow_comments = true});
  core::check_known_keys(parsed, "batch request", {"name", "specs"});
  std::vector<scenario::ScenarioSpec> specs;
  const Json::Array& entries = parsed.at("specs").as_array();
  specs.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    try {
      specs.push_back(scenario::spec_from_json(entries[i]));
      specs.back().validate();
    } catch (const std::exception& error) {
      throw core::ConfigError("specs[" + std::to_string(i) + "]: " + error.what());
    }
  }
  const std::vector<scenario::ScenarioResult> results =
      context.engine().run_batch(specs);
  Json body = Json::array();
  for (const scenario::ScenarioResult& result : results) {
    body.push_back(scenario::result_to_json(result));
  }
  return json_response(200, body);
}

HttpResponse handle_platforms(const ServeContext& context, const HttpRequest&) {
  Json body = Json::object();
  Json platforms = Json::array();
  for (const std::string& name : context.registry().names()) {
    platforms.push_back(name);
  }
  body["platforms"] = std::move(platforms);
  Json domains = Json::array();
  for (const device::Domain domain : device::all_domains()) {
    domains.push_back(to_string(domain));
  }
  body["domains"] = std::move(domains);
  return json_response(200, body);
}

HttpResponse handle_stats(ServeContext& context, const HttpRequest&) {
  const scenario::ResultCacheStats stats = context.cache().stats();
  Json cache = Json::object();
  cache["hits"] = stats.hits;
  cache["misses"] = stats.misses;
  cache["evictions"] = stats.evictions;
  cache["disk_hits"] = stats.disk_hits;
  cache["size"] = stats.size;
  cache["capacity"] = stats.capacity;
  cache["shards"] = stats.shards;
  Json body = Json::object();
  body["cache"] = std::move(cache);
  body["requests"] = context.requests.load(std::memory_order_relaxed);
  body["errors"] = context.errors.load(std::memory_order_relaxed);
  body["threads"] = context.engine().threads();
  return json_response(200, body);
}

HttpResponse handle_healthz(const HttpRequest&) {
  Json body = Json::object();
  body["status"] = "ok";
  return json_response(200, body);
}

}  // namespace

ServeContext::ServeContext(scenario::EngineOptions engine_options,
                           std::size_t cache_capacity, std::size_t cache_shards,
                           const std::string& cache_dir)
    : store_(cache_dir.empty()
                 ? std::nullopt
                 : std::optional<scenario::CacheStore>(std::in_place, cache_dir)),
      cache_(cache_capacity, cache_shards),
      engine_([&] {
        engine_options.cache = &cache_;
        return scenario::Engine(engine_options);
      }()),
      registry_(engine_options.registry != nullptr
                    ? engine_options.registry
                    : &device::PlatformRegistry::builtins()) {
  if (store_.has_value()) {
    cache_.attach_store(&*store_);
  }
}

Router make_router(ServeContext& context) {
  Router router;
  router.add("POST", "/v1/run", wrap(context, [&context](const HttpRequest& request) {
               return handle_run(context, request);
             }));
  router.add("POST", "/v1/batch",
             wrap(context, [&context](const HttpRequest& request) {
               return handle_batch(context, request);
             }));
  router.add("GET", "/v1/platforms",
             wrap(context, [&context](const HttpRequest& request) {
               return handle_platforms(context, request);
             }));
  router.add("GET", "/v1/stats", wrap(context, [&context](const HttpRequest& request) {
               return handle_stats(context, request);
             }));
  router.add("GET", "/healthz", wrap(context, [](const HttpRequest& request) {
               return handle_healthz(request);
             }));
  return router;
}

}  // namespace greenfpga::serve
