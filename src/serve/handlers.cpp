/// \file handlers.cpp
/// The serve endpoints: spec in, canonical result JSON out, cached.

#include "serve/handlers.hpp"

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/config_io.hpp"
#include "device/catalog.hpp"
#include "io/hash.hpp"
#include "io/json.hpp"
#include "io/json_arena.hpp"
#include "scenario/result_io.hpp"
#include "scenario/spec.hpp"

namespace greenfpga::serve {

namespace {

using io::Json;

/// Wrap a handler with the uniform error mapping: domain errors (bad
/// JSON, unknown keys, invalid specs) answer 400 with the same
/// offending-key-naming message the CLI prints; anything else is a 500.
/// Also maintains the context's request/error counters.
Router::Handler wrap(ServeContext& context, Router::Handler handler) {
  return [&context, handler = std::move(handler)](const HttpRequest& request) {
    context.requests.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response;
    try {
      response = handler(request);
    } catch (const io::JsonError& error) {
      response = error_response(400, error.what());
    } catch (const core::ConfigError& error) {
      response = error_response(400, error.what());
    } catch (const std::invalid_argument& error) {
      response = error_response(400, error.what());
    } catch (const std::out_of_range& error) {
      response = error_response(400, error.what());
    } catch (const std::exception& error) {
      response = error_response(500, error.what());
    }
    if (response.status >= 400) {
      context.errors.fetch_add(1, std::memory_order_relaxed);
    }
    return response;
  };
}

/// Parse one spec out of request-body JSON: the exact dialect of
/// `greenfpga run <spec.json>` (// comments allowed, so a spec file can
/// be POSTed verbatim), with the parser's nesting cap, so a depth bomb
/// is a 400, never a crash.  The body parses into a per-request arena
/// (one monotonic buffer, freed wholesale) with hash-while-parse, so the
/// request's canonical digest comes out of the same pass when its keys
/// arrive sorted.
scenario::ScenarioSpec spec_of_body(const std::string& body,
                                    std::optional<std::uint64_t>* digest = nullptr) {
  const io::JsonDocument doc =
      io::parse_json_arena(body, io::JsonParseOptions{.allow_comments = true},
                           /*hash_canonical=*/digest != nullptr);
  if (digest != nullptr) {
    *digest = doc.parse_digest();
  }
  scenario::ScenarioSpec spec = scenario::spec_from_json(doc.to_json());
  spec.validate();
  return spec;
}

HttpResponse handle_run(ServeContext& context, const HttpRequest& request) {
  std::optional<std::uint64_t> request_digest;
  const scenario::ScenarioSpec spec = spec_of_body(request.body, &request_digest);
  const scenario::Engine::CachedRun run = context.engine().run_cached(spec);
  HttpResponse response;
  response.status = 200;
  response.set_header("Content-Type", "application/json");
  std::shared_ptr<const std::string> body;
  if (run.hit) {
    body = context.rendered().lookup(run.key);
  }
  if (body != nullptr) {
    // Fast path: the engine reported a cache hit and the rendered bytes
    // are still resident -- stream them back without materializing the
    // result DOM or dumping anything.
    context.fast_path_hits.fetch_add(1, std::memory_order_relaxed);
    response.body = *body;
  } else {
    std::string text;
    scenario::result_to_json(*run.result).dump_to(text);
    text.push_back('\n');
    auto rendered = std::make_shared<const std::string>(std::move(text));
    context.rendered().insert(run.key, rendered);
    response.body = *rendered;
  }
  response.set_header("X-Cache", run.hit ? "hit" : "miss");
  // The fingerprint was folded while the key was dumped; same text as
  // content_digest(run.key), no re-hash of the key bytes.
  response.set_header("X-Cache-Key", io::content_digest_of_hash(run.fingerprint));
  if (request_digest.has_value()) {
    response.set_header("X-Request-Digest", io::content_digest_of_hash(*request_digest));
  }
  return response;
}

HttpResponse handle_batch(ServeContext& context, const HttpRequest& request) {
  // Same dialect as /v1/run, so spec files embed verbatim.
  const Json parsed =
      io::parse_json_arena(request.body, io::JsonParseOptions{.allow_comments = true})
          .to_json();
  core::check_known_keys(parsed, "batch request", {"name", "specs"});
  std::vector<scenario::ScenarioSpec> specs;
  const Json::Array& entries = parsed.at("specs").as_array();
  specs.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    try {
      specs.push_back(scenario::spec_from_json(entries[i]));
      specs.back().validate();
    } catch (const std::exception& error) {
      throw core::ConfigError("specs[" + std::to_string(i) + "]: " + error.what());
    }
  }
  const std::vector<scenario::ScenarioResult> results =
      context.engine().run_batch(specs);
  Json body = Json::array();
  for (const scenario::ScenarioResult& result : results) {
    body.push_back(scenario::result_to_json(result));
  }
  return json_response(200, body);
}

HttpResponse handle_platforms(const ServeContext& context, const HttpRequest&) {
  Json body = Json::object();
  Json platforms = Json::array();
  for (const std::string& name : context.registry().names()) {
    platforms.push_back(name);
  }
  body["platforms"] = std::move(platforms);
  Json domains = Json::array();
  for (const device::Domain domain : device::all_domains()) {
    domains.push_back(to_string(domain));
  }
  body["domains"] = std::move(domains);
  return json_response(200, body);
}

HttpResponse handle_stats(ServeContext& context, const HttpRequest&) {
  const scenario::ResultCacheStats stats = context.cache().stats();
  Json cache = Json::object();
  cache["hits"] = stats.hits;
  cache["misses"] = stats.misses;
  cache["evictions"] = stats.evictions;
  cache["disk_hits"] = stats.disk_hits;
  cache["size"] = stats.size;
  cache["capacity"] = stats.capacity;
  cache["shards"] = stats.shards;
  Json body = Json::object();
  body["cache"] = std::move(cache);
  body["requests"] = context.requests.load(std::memory_order_relaxed);
  body["errors"] = context.errors.load(std::memory_order_relaxed);
  body["fast_path_hits"] = context.fast_path_hits.load(std::memory_order_relaxed);
  body["threads"] = context.engine().threads();
  return json_response(200, body);
}

HttpResponse handle_healthz(const HttpRequest&) {
  Json body = Json::object();
  body["status"] = "ok";
  return json_response(200, body);
}

}  // namespace

std::shared_ptr<const std::string> RenderedBodyCache::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(std::string_view(key));
  if (it == index_.end()) {
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return lru_.front().body;
}

void RenderedBodyCache::insert(const std::string& key,
                               std::shared_ptr<const std::string> body) {
  if (capacity_ == 0) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(std::string_view(key));
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(body)});
  // The index views the entry's own key string; list nodes are stable,
  // so the view survives every splice/push until its node is erased.
  index_.emplace(std::string_view(lru_.front().key), lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(std::string_view(lru_.back().key));
    lru_.pop_back();
  }
}

std::size_t RenderedBodyCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

ServeContext::ServeContext(scenario::EngineOptions engine_options,
                           std::size_t cache_capacity, std::size_t cache_shards,
                           const std::string& cache_dir)
    : store_(cache_dir.empty()
                 ? std::nullopt
                 : std::optional<scenario::CacheStore>(std::in_place, cache_dir)),
      cache_(cache_capacity, cache_shards),
      engine_([&] {
        engine_options.cache = &cache_;
        return scenario::Engine(engine_options);
      }()),
      registry_(engine_options.registry != nullptr
                    ? engine_options.registry
                    : &device::PlatformRegistry::builtins()),
      rendered_(cache_capacity) {
  if (store_.has_value()) {
    cache_.attach_store(&*store_);
  }
}

Router make_router(ServeContext& context) {
  Router router;
  router.add("POST", "/v1/run", wrap(context, [&context](const HttpRequest& request) {
               return handle_run(context, request);
             }));
  router.add("POST", "/v1/batch",
             wrap(context, [&context](const HttpRequest& request) {
               return handle_batch(context, request);
             }));
  router.add("GET", "/v1/platforms",
             wrap(context, [&context](const HttpRequest& request) {
               return handle_platforms(context, request);
             }));
  router.add("GET", "/v1/stats", wrap(context, [&context](const HttpRequest& request) {
               return handle_stats(context, request);
             }));
  router.add("GET", "/healthz", wrap(context, [](const HttpRequest& request) {
               return handle_healthz(request);
             }));
  return router;
}

}  // namespace greenfpga::serve
