#ifndef GREENFPGA_REPORT_ASCII_CHART_HPP
#define GREENFPGA_REPORT_ASCII_CHART_HPP

/// \file ascii_chart.hpp
/// Terminal rendering of the paper's figures: line charts for the sweep
/// series, shaded grids for the heat-maps, stacked bars for the component
/// breakdowns.  Benches print these next to the numeric tables so a run's
/// "shape" (who wins, where curves cross) is visible at a glance.

#include <span>
#include <string>
#include <vector>

#include "scenario/heatmap.hpp"

namespace greenfpga::report {

/// One plotted series.
struct ChartSeries {
  std::string label;
  char marker = '*';
  std::vector<double> y;
};

/// Render series over shared x values as a fixed-size ASCII line chart.
/// `log_x` spaces samples by log10(x) (volume sweeps).
[[nodiscard]] std::string render_line_chart(std::span<const double> x,
                                            std::span<const ChartSeries> series,
                                            int width = 72, int height = 20,
                                            bool log_x = false);

/// Render a heat-map as a shaded character grid (light = FPGA wins,
/// dark = ASIC wins), with a '+' on cells straddling ratio = 1.
[[nodiscard]] std::string render_heatmap(const scenario::Heatmap& map);

/// Render the empirical CDF of `sorted_values` (ascending) as an ASCII
/// chart: x is the metric (axis label `label`), y is the cumulative
/// fraction 0..1.  A vertical '|' rules the x = `marker_x` position when
/// it falls inside the value range (the Monte-Carlo report marks the
/// ratio = 1 verdict boundary with it).
[[nodiscard]] std::string render_cdf(std::span<const double> sorted_values,
                                     const std::string& label, double marker_x = 1.0,
                                     int width = 72, int height = 16);

/// One bar of a horizontal bar chart.
struct Bar {
  std::string label;
  double value = 0.0;
};

/// Render labelled horizontal bars scaled to the largest magnitude.
/// Negative values (EOL credits) render to the left of the axis.
[[nodiscard]] std::string render_bars(std::span<const Bar> bars, int width = 60);

}  // namespace greenfpga::report

#endif  // GREENFPGA_REPORT_ASCII_CHART_HPP
