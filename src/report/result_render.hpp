#ifndef GREENFPGA_REPORT_RESULT_RENDER_HPP
#define GREENFPGA_REPORT_RESULT_RENDER_HPP

/// \file result_render.hpp
/// Output-format dispatch over the frame IR.
///
/// The CLI's `--format` flag selects one of four renderers over the same
/// `ResultFrame`s (`scenario::to_frames`):
///
///   * `text`     -- the human report: per-kind summary lines, fixed-width
///                   tables, and the ASCII charts (heat-map shading, ratio
///                   CDF) that have no machine equivalent;
///   * `json`     -- the canonical result JSON (`scenario::result_to_json`),
///                   byte-identical across thread counts and round-trippable
///                   through `result_from_json`;
///   * `csv`      -- RFC 4180 frames (one header + data block per frame,
///                   `# <name>` separators when there are several);
///   * `markdown` -- GitHub-flavoured tables.
///
/// `commands.cpp` is a thin argument-parsing shell over these entry
/// points: no scenario kind is rendered anywhere else.

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "report/result_frame.hpp"
#include "scenario/engine.hpp"

namespace greenfpga::report {

/// The CLI `--format` values.
enum class OutputFormat { text, json, csv, markdown };

/// "text" / "json" / "csv" / "md".
[[nodiscard]] std::string to_string(OutputFormat format);

/// Accepts the CLI tokens ("md" and "markdown" both select markdown).
[[nodiscard]] std::optional<OutputFormat> parse_output_format(std::string_view text);

/// Render an engine result in the given format.  Montecarlo results
/// additionally emit their per-sample frame under csv (the raw matrix is
/// part of the machine-readable surface but would drown the human one).
void render_result(const scenario::ScenarioResult& result, OutputFormat format,
                   std::ostream& out);

/// Render bare frames (no scenario context: `industry`, `figures`, the
/// batch index).  Under json this emits a JSON array of frame objects.
void render_frames(std::span<const ResultFrame> frames, OutputFormat format,
                   std::ostream& out);

}  // namespace greenfpga::report

#endif  // GREENFPGA_REPORT_RESULT_RENDER_HPP
