#ifndef GREENFPGA_REPORT_RESULT_FRAME_HPP
#define GREENFPGA_REPORT_RESULT_FRAME_HPP

/// \file result_frame.hpp
/// The report intermediate representation: a columnar result table.
///
/// Every scenario answer the engine produces lowers into one or more
/// `ResultFrame`s (`scenario::to_frames`), and every output format the CLI
/// speaks -- text tables, JSON, CSV, Markdown -- is a *renderer* over
/// frames.  Computing a result and presenting it are thereby separated:
/// new scenario kinds only write a lowering, new formats only write a
/// renderer, and the two never multiply.
///
/// A frame is deliberately dumb: a name, typed columns (name + unit +
/// text-rendering precision), rows of nullable double-or-string cells, and
/// ordered key/value metadata for the scalar facts (crossovers, seeds,
/// win fractions) that accompany a table.  Machine renderers
/// (`frame_to_json`, `frame_to_csv`) emit numbers in shortest round-trip
/// form via `io::format_number`, so exported values re-import
/// bit-identically; human renderers (`frame_to_table`,
/// `frame_to_markdown`) use the column's significant-digit precision.

#include <cstddef>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "io/csv.hpp"
#include "io/json.hpp"

namespace greenfpga::report {

/// One table cell: null (not applicable), a number, or text.
using Cell = std::variant<std::nullptr_t, double, std::string>;

/// One typed column of a frame.
struct Column {
  std::string name;
  /// Unit suffix shown as "name [unit]" in headers; empty for text or
  /// dimensionless columns.
  std::string unit;
  /// Significant digits used by the human renderers (table/markdown);
  /// machine renderers always emit full round-trip precision.
  int precision = 5;
};

/// A named columnar result table with metadata.
struct ResultFrame {
  std::string name;
  std::vector<Column> columns;
  std::vector<std::vector<Cell>> rows;
  /// Scalar facts attached to the table, in insertion order (JSON sorts
  /// keys; the text renderers preserve this order).
  std::vector<std::pair<std::string, std::string>> metadata;

  /// Append a row; throws std::invalid_argument when the cell count does
  /// not match the column count.
  void add_row(std::vector<Cell> cells);

  /// Append or overwrite a metadata entry.
  void set_meta(std::string key, std::string value);

  /// "name [unit]" (or just "name" for unit-less columns).
  [[nodiscard]] std::string column_header(std::size_t index) const;
};

/// Canonical JSON form: {"name", "columns": [{"name","unit"}...],
/// "rows": [[cell...]...], "metadata": [["key","value"]...]}.  Numeric
/// cells stay JSON numbers and metadata keeps its insertion order (an
/// array, since JSON objects here sort keys), so the frame round-trips
/// exactly through `frame_from_json`.
[[nodiscard]] io::Json frame_to_json(const ResultFrame& frame);

/// Inverse of `frame_to_json` (column precisions reset to the default;
/// they are presentation hints, not data).  Throws io::JsonError /
/// std::invalid_argument on malformed input.
[[nodiscard]] ResultFrame frame_from_json(const io::Json& json);

/// RFC 4180 CSV: one header row of column headers, then data rows.
/// Numbers are emitted in shortest round-trip form; null cells are empty.
[[nodiscard]] io::CsvWriter frame_to_csv(const ResultFrame& frame);

/// Fixed-width text table (io::TextTable) preceded by the metadata lines.
[[nodiscard]] std::string frame_to_table(const ResultFrame& frame);

/// GitHub-flavoured Markdown table under a "### name" heading, metadata as
/// a trailing bullet list.
[[nodiscard]] std::string frame_to_markdown(const ResultFrame& frame);

}  // namespace greenfpga::report

#endif  // GREENFPGA_REPORT_RESULT_FRAME_HPP
