/// \file result_render.cpp
/// The four renderers over scenario frames, including the per-kind text
/// report formerly hand-rolled in the CLI layer.

#include "report/result_render.hpp"

#include <algorithm>
#include <ostream>

#include "report/ascii_chart.hpp"
#include "scenario/result_io.hpp"
#include "units/format.hpp"

namespace greenfpga::report {

namespace {

/// CSV block list: a single frame renders bare; several get `# <name>`
/// separators so the blocks can be split back apart.
void frames_to_csv(std::span<const ResultFrame> frames, std::ostream& out) {
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (frames.size() > 1) {
      out << (i > 0 ? "\n" : "") << "# " << frames[i].name << "\n";
    }
    out << frame_to_csv(frames[i]).render();
  }
}

void frames_to_text(std::span<const ResultFrame> frames, std::ostream& out) {
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i > 0) {
      out << "\n";
    }
    out << frame_to_table(frames[i]);
  }
}

void frames_to_markdown(std::span<const ResultFrame> frames, std::ostream& out) {
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i > 0) {
      out << "\n";
    }
    out << frame_to_markdown(frames[i]);
  }
}

/// The human text report: header, kind-specific summary/chart content,
/// frame tables.
void render_text(const scenario::ScenarioResult& result,
                 std::span<const ResultFrame> frames, std::ostream& out) {
  out << "== " << result.spec.name << " (" << to_string(result.spec.kind) << ", "
      << to_string(result.spec.domain) << ") ==\n";
  switch (result.spec.kind) {
    case scenario::ScenarioKind::grid: {
      // The classic ASIC/FPGA pair reads better as the shaded ratio grid
      // than as a point-per-row table; other platform sets have no 2-D
      // ratio rendering, so they print the frame.
      const bool classic_pair = result.platform_names.size() == 2 &&
                                result.platform_index(device::ChipKind::asic) &&
                                result.platform_index(device::ChipKind::fpga);
      if (classic_pair) {
        out << render_heatmap(result.heatmap());
        for (const auto& [key, value] : frames.front().metadata) {
          out << key << ": " << value << "\n";
        }
      } else {
        frames_to_text(frames, out);
      }
      return;
    }
    case scenario::ScenarioKind::timeline:
      // The cumulative series runs to hundreds of samples; the human
      // report is its summary lines (CSV/JSON carry the full series).
      for (const auto& [key, value] : frames.front().metadata) {
        out << key << ": " << value << "\n";
      }
      return;
    case scenario::ScenarioKind::montecarlo: {
      frames_to_text(frames, out);
      const scenario::MonteCarloUq& uq = *result.uncertainty;
      if (!uq.ratio.empty()) {
        std::vector<double> ratios = uq.ratio_samples(1);
        std::sort(ratios.begin(), ratios.end());
        out << render_cdf(ratios, result.platform_names[1] + ":" +
                                      result.platform_names[0] + " ratio");
      }
      return;
    }
    default:
      frames_to_text(frames, out);
      return;
  }
}

}  // namespace

std::string to_string(OutputFormat format) {
  switch (format) {
    case OutputFormat::text:
      return "text";
    case OutputFormat::json:
      return "json";
    case OutputFormat::csv:
      return "csv";
    case OutputFormat::markdown:
      return "md";
  }
  return "unknown";
}

std::optional<OutputFormat> parse_output_format(std::string_view text) {
  if (text == "text") return OutputFormat::text;
  if (text == "json") return OutputFormat::json;
  if (text == "csv") return OutputFormat::csv;
  if (text == "md" || text == "markdown") return OutputFormat::markdown;
  return std::nullopt;
}

void render_result(const scenario::ScenarioResult& result, OutputFormat format,
                   std::ostream& out) {
  std::vector<ResultFrame> frames = scenario::to_frames(result);
  switch (format) {
    case OutputFormat::text:
      render_text(result, frames, out);
      return;
    case OutputFormat::json: {
      std::string text;
      scenario::result_to_json(result).dump_to(text);
      text.push_back('\n');
      out << text;
      return;
    }
    case OutputFormat::csv:
      if (result.spec.kind == scenario::ScenarioKind::montecarlo) {
        frames.push_back(scenario::mc_samples_frame(result));
      }
      frames_to_csv(frames, out);
      return;
    case OutputFormat::markdown:
      out << "## " << result.spec.name << " (" << to_string(result.spec.kind) << ", "
          << to_string(result.spec.domain) << ")\n\n";
      frames_to_markdown(frames, out);
      return;
  }
}

void render_frames(std::span<const ResultFrame> frames, OutputFormat format,
                   std::ostream& out) {
  switch (format) {
    case OutputFormat::text:
      frames_to_text(frames, out);
      return;
    case OutputFormat::json: {
      io::Json array = io::Json::array();
      for (const ResultFrame& frame : frames) {
        array.push_back(frame_to_json(frame));
      }
      std::string text;
      array.dump_to(text);
      text.push_back('\n');
      out << text;
      return;
    }
    case OutputFormat::csv:
      frames_to_csv(frames, out);
      return;
    case OutputFormat::markdown:
      frames_to_markdown(frames, out);
      return;
  }
}

}  // namespace greenfpga::report
