/// \file result_render.cpp
/// The four renderers over scenario frames.  Kind-specific text reports
/// and the CSV sample dump are registry hooks (KindModule::render_text /
/// sample_csv); this file owns only the generic frame rendering.

#include "report/result_render.hpp"

#include <ostream>

#include "scenario/kind_registry.hpp"
#include "scenario/result_io.hpp"

namespace greenfpga::report {

namespace {

/// CSV block list: a single frame renders bare; several get `# <name>`
/// separators so the blocks can be split back apart.
void frames_to_csv(std::span<const ResultFrame> frames, std::ostream& out) {
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (frames.size() > 1) {
      out << (i > 0 ? "\n" : "") << "# " << frames[i].name << "\n";
    }
    out << frame_to_csv(frames[i]).render();
  }
}

void frames_to_text(std::span<const ResultFrame> frames, std::ostream& out) {
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i > 0) {
      out << "\n";
    }
    out << frame_to_table(frames[i]);
  }
}

void frames_to_markdown(std::span<const ResultFrame> frames, std::ostream& out) {
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i > 0) {
      out << "\n";
    }
    out << frame_to_markdown(frames[i]);
  }
}

/// The human text report: header, then the kind's own rendering if its
/// module claims the result (render_text returning true), otherwise the
/// generic frame tables.
void render_text(const scenario::ScenarioResult& result,
                 std::span<const ResultFrame> frames, std::ostream& out) {
  out << "== " << result.spec.name << " (" << to_string(result.spec.kind) << ", "
      << to_string(result.spec.domain) << ") ==\n";
  const scenario::KindModule& module = scenario::kind_module(result.spec.kind);
  if (module.render_text != nullptr && module.render_text(result, frames, out)) {
    return;
  }
  frames_to_text(frames, out);
}

}  // namespace

std::string to_string(OutputFormat format) {
  switch (format) {
    case OutputFormat::text:
      return "text";
    case OutputFormat::json:
      return "json";
    case OutputFormat::csv:
      return "csv";
    case OutputFormat::markdown:
      return "md";
  }
  return "unknown";
}

std::optional<OutputFormat> parse_output_format(std::string_view text) {
  if (text == "text") return OutputFormat::text;
  if (text == "json") return OutputFormat::json;
  if (text == "csv") return OutputFormat::csv;
  if (text == "md" || text == "markdown") return OutputFormat::markdown;
  return std::nullopt;
}

void render_result(const scenario::ScenarioResult& result, OutputFormat format,
                   std::ostream& out) {
  std::vector<ResultFrame> frames = scenario::to_frames(result);
  switch (format) {
    case OutputFormat::text:
      render_text(result, frames, out);
      return;
    case OutputFormat::json: {
      std::string text;
      scenario::result_to_json(result).dump_to(text);
      text.push_back('\n');
      out << text;
      return;
    }
    case OutputFormat::csv: {
      const scenario::KindModule& module = scenario::kind_module(result.spec.kind);
      if (module.sample_csv != nullptr && module.sample_csv(result.spec)) {
        frames.push_back(scenario::mc_samples_frame(result));
      }
      frames_to_csv(frames, out);
      return;
    }
    case OutputFormat::markdown:
      out << "## " << result.spec.name << " (" << to_string(result.spec.kind) << ", "
          << to_string(result.spec.domain) << ")\n\n";
      frames_to_markdown(frames, out);
      return;
  }
}

void render_frames(std::span<const ResultFrame> frames, OutputFormat format,
                   std::ostream& out) {
  switch (format) {
    case OutputFormat::text:
      frames_to_text(frames, out);
      return;
    case OutputFormat::json: {
      io::Json array = io::Json::array();
      for (const ResultFrame& frame : frames) {
        array.push_back(frame_to_json(frame));
      }
      std::string text;
      array.dump_to(text);
      text.push_back('\n');
      out << text;
      return;
    }
    case OutputFormat::csv:
      frames_to_csv(frames, out);
      return;
    case OutputFormat::markdown:
      frames_to_markdown(frames, out);
      return;
  }
}

}  // namespace greenfpga::report
