/// \file result_frame.cpp
/// The frame renderers: JSON / CSV (machine, round-trip precision) and
/// text / Markdown (human, significant-digit precision).

#include "report/result_frame.hpp"

#include <stdexcept>

#include "io/table.hpp"
#include "units/format.hpp"

namespace greenfpga::report {

namespace {

/// Human form of a cell at the column's precision ("-" for null).
std::string human_cell(const Cell& cell, const Column& column) {
  if (std::holds_alternative<std::nullptr_t>(cell)) {
    return "-";
  }
  if (const double* number = std::get_if<double>(&cell)) {
    return units::format_significant(*number, column.precision);
  }
  return std::get<std::string>(cell);
}

/// Machine form of a cell: shortest round-trip number, verbatim text,
/// empty for null.
std::string machine_cell(const Cell& cell) {
  if (std::holds_alternative<std::nullptr_t>(cell)) {
    return "";
  }
  if (const double* number = std::get_if<double>(&cell)) {
    return io::format_number(*number);
  }
  return std::get<std::string>(cell);
}

}  // namespace

void ResultFrame::add_row(std::vector<Cell> cells) {
  if (cells.size() != columns.size()) {
    throw std::invalid_argument("ResultFrame '" + name + "': row has " +
                                std::to_string(cells.size()) + " cells, expected " +
                                std::to_string(columns.size()));
  }
  rows.push_back(std::move(cells));
}

void ResultFrame::set_meta(std::string key, std::string value) {
  for (auto& [existing_key, existing_value] : metadata) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return;
    }
  }
  metadata.emplace_back(std::move(key), std::move(value));
}

std::string ResultFrame::column_header(std::size_t index) const {
  const Column& column = columns.at(index);
  return column.unit.empty() ? column.name : column.name + " [" + column.unit + "]";
}

io::Json frame_to_json(const ResultFrame& frame) {
  io::Json out = io::Json::object();
  out["name"] = frame.name;
  io::Json columns = io::Json::array();
  for (const Column& column : frame.columns) {
    io::Json entry = io::Json::object();
    entry["name"] = column.name;
    entry["unit"] = column.unit;
    columns.push_back(std::move(entry));
  }
  out["columns"] = std::move(columns);
  io::Json rows = io::Json::array();
  for (const std::vector<Cell>& row : frame.rows) {
    io::Json cells = io::Json::array();
    for (const Cell& cell : row) {
      if (std::holds_alternative<std::nullptr_t>(cell)) {
        cells.push_back(io::Json(nullptr));
      } else if (const double* number = std::get_if<double>(&cell)) {
        cells.push_back(*number);
      } else {
        cells.push_back(std::get<std::string>(cell));
      }
    }
    rows.push_back(std::move(cells));
  }
  out["rows"] = std::move(rows);
  // An array of [key, value] pairs, not an object: io::Json objects sort
  // their keys, which would lose the documented insertion order.
  io::Json metadata = io::Json::array();
  for (const auto& [key, value] : frame.metadata) {
    metadata.push_back(io::Json::array({io::Json(key), io::Json(value)}));
  }
  out["metadata"] = std::move(metadata);
  return out;
}

ResultFrame frame_from_json(const io::Json& json) {
  ResultFrame frame;
  frame.name = json.at("name").as_string();
  for (const io::Json& entry : json.at("columns").as_array()) {
    Column column;
    column.name = entry.at("name").as_string();
    column.unit = entry.at("unit").as_string();
    frame.columns.push_back(std::move(column));
  }
  for (const io::Json& row : json.at("rows").as_array()) {
    std::vector<Cell> cells;
    cells.reserve(row.size());
    for (const io::Json& cell : row.as_array()) {
      if (cell.is_null()) {
        cells.emplace_back(nullptr);
      } else if (cell.is_number()) {
        cells.emplace_back(cell.as_number());
      } else {
        cells.emplace_back(cell.as_string());
      }
    }
    frame.add_row(std::move(cells));
  }
  if (json.contains("metadata")) {
    for (const io::Json& entry : json.at("metadata").as_array()) {
      frame.metadata.emplace_back(entry.at(0).as_string(), entry.at(1).as_string());
    }
  }
  return frame;
}

io::CsvWriter frame_to_csv(const ResultFrame& frame) {
  io::CsvWriter csv;
  std::vector<std::string> header;
  header.reserve(frame.columns.size());
  for (std::size_t i = 0; i < frame.columns.size(); ++i) {
    header.push_back(frame.column_header(i));
  }
  csv.add_row(std::move(header));
  for (const std::vector<Cell>& row : frame.rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Cell& cell : row) {
      cells.push_back(machine_cell(cell));
    }
    csv.add_row(std::move(cells));
  }
  return csv;
}

std::string frame_to_table(const ResultFrame& frame) {
  std::string out;
  for (const auto& [key, value] : frame.metadata) {
    out += key + ": " + value + "\n";
  }
  io::TextTable table;
  std::vector<std::string> headers;
  headers.reserve(frame.columns.size());
  for (std::size_t i = 0; i < frame.columns.size(); ++i) {
    headers.push_back(frame.column_header(i));
  }
  table.set_headers(std::move(headers));
  for (const std::vector<Cell>& row : frame.rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      cells.push_back(human_cell(row[i], frame.columns[i]));
    }
    table.add_row(std::move(cells));
  }
  out += table.render();
  return out;
}

std::string frame_to_markdown(const ResultFrame& frame) {
  std::string out = "### " + frame.name + "\n\n|";
  for (std::size_t i = 0; i < frame.columns.size(); ++i) {
    out += " " + frame.column_header(i) + " |";
  }
  out += "\n|";
  for (std::size_t i = 0; i < frame.columns.size(); ++i) {
    out += "---|";
  }
  out += "\n";
  for (const std::vector<Cell>& row : frame.rows) {
    out += "|";
    for (std::size_t i = 0; i < row.size(); ++i) {
      // Pipes inside cell text would split the Markdown column.
      std::string cell = human_cell(row[i], frame.columns[i]);
      std::string escaped;
      for (const char c : cell) {
        if (c == '|') {
          escaped += "\\|";
        } else if (c == '\n') {
          escaped += "<br>";
        } else {
          escaped.push_back(c);
        }
      }
      out += " " + escaped + " |";
    }
    out += "\n";
  }
  if (!frame.metadata.empty()) {
    out += "\n";
    for (const auto& [key, value] : frame.metadata) {
      out += "- " + key + ": " + value + "\n";
    }
  }
  return out;
}

}  // namespace greenfpga::report
