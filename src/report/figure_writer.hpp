#ifndef GREENFPGA_REPORT_FIGURE_WRITER_HPP
#define GREENFPGA_REPORT_FIGURE_WRITER_HPP

/// \file figure_writer.hpp
/// Shared figure-output helpers used by the bench harness: numeric tables
/// for sweep series and breakdowns, plus CSV emission so results can be
/// re-plotted outside the repo.

#include <string>

#include "core/lifecycle_model.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "report/result_frame.hpp"
#include "scenario/sweep.hpp"
#include "scenario/timeline.hpp"

namespace greenfpga::report {

/// Numeric table of a sweep: x, ASIC total, FPGA total, ratio, verdict.
[[nodiscard]] std::string sweep_table(const scenario::SweepSeries& series);

/// Human-readable crossover summary line ("A2F at N_app = 5.4; ...").
[[nodiscard]] std::string crossover_summary(const scenario::SweepSeries& series);

/// Component table of platform breakdowns (one column per platform), in
/// tonnes CO2e: the paper's Figs. 7/10/11 stacks as numbers.
[[nodiscard]] std::string breakdown_table(
    std::span<const std::pair<std::string, core::CfpBreakdown>> platforms);

/// Frame form of a platform-breakdown table (one row per platform, one
/// component column each, tonnes CO2e): the structured counterpart of
/// `breakdown_table` for format-dispatched commands (`industry`).
[[nodiscard]] ResultFrame breakdown_frame(
    std::string name,
    std::span<const std::pair<std::string, core::CfpBreakdown>> platforms);

/// CSV of a sweep series (x, per-component columns for both platforms).
[[nodiscard]] io::CsvWriter sweep_csv(const scenario::SweepSeries& series);

/// CSV of a timeline (time, cumulative totals).
[[nodiscard]] io::CsvWriter timeline_csv(const scenario::TimelineSeries& series);

/// Default output directory for bench artifacts; created on demand.
/// Respects the GREENFPGA_RESULTS_DIR environment variable, defaulting to
/// "results" under the current working directory.
[[nodiscard]] std::string results_dir();

/// Write a CSV under results_dir()/name and return the full path.
std::string write_results_csv(const std::string& name, const io::CsvWriter& csv);

}  // namespace greenfpga::report

#endif  // GREENFPGA_REPORT_FIGURE_WRITER_HPP
