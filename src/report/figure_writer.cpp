/// \file figure_writer.cpp
/// Sweep/breakdown tables, crossover summaries and CSV emission.

#include "report/figure_writer.hpp"

#include <cstdlib>
#include <filesystem>

#include "core/comparator.hpp"
#include "report/result_frame.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace greenfpga::report {

namespace {

using units::unit::t_co2e;

std::string tonnes(units::CarbonMass mass) {
  return units::format_significant(mass.in(t_co2e), 5);
}

}  // namespace

std::string sweep_table(const scenario::SweepSeries& series) {
  io::TextTable table;
  table.set_headers({series.parameter, "ASIC [t CO2e]", "FPGA [t CO2e]", "FPGA:ASIC",
                     "greener"});
  const std::vector<double> ratios = series.ratios();
  for (std::size_t i = 0; i < series.x.size(); ++i) {
    core::Comparison comparison;
    comparison.asic.total = series.asic[i];
    comparison.fpga.total = series.fpga[i];
    table.add_row({units::format_significant(series.x[i], 4),
                   tonnes(series.asic[i].total()), tonnes(series.fpga[i].total()),
                   units::format_significant(ratios[i], 4),
                   to_string(comparison.verdict())});
  }
  return table.render();
}

std::string crossover_summary(const scenario::SweepSeries& series) {
  const std::vector<scenario::Crossover> crossovers = series.crossovers();
  if (crossovers.empty()) {
    const bool fpga_lower = series.fpga.front().total() < series.asic.front().total();
    return "no crossover in range; " + std::string(fpga_lower ? "FPGA" : "ASIC") +
           " greener throughout";
  }
  std::string out;
  for (const scenario::Crossover& crossover : crossovers) {
    if (!out.empty()) {
      out += "; ";
    }
    out += to_string(crossover.kind) + " at " + series.parameter + " = " +
           units::format_significant(crossover.x, 4);
  }
  return out;
}

std::string breakdown_table(
    std::span<const std::pair<std::string, core::CfpBreakdown>> platforms) {
  io::TextTable table;
  std::vector<std::string> headers{"component [t CO2e]"};
  for (const auto& [name, breakdown] : platforms) {
    headers.push_back(name);
  }
  table.set_headers(std::move(headers));

  const auto add_component = [&](const std::string& label,
                                 units::CarbonMass core::CfpBreakdown::* member) {
    std::vector<std::string> row{label};
    for (const auto& [name, breakdown] : platforms) {
      row.push_back(tonnes(breakdown.*member));
    }
    table.add_row(std::move(row));
  };
  add_component("design", &core::CfpBreakdown::design);
  add_component("manufacturing", &core::CfpBreakdown::manufacturing);
  add_component("packaging", &core::CfpBreakdown::packaging);
  add_component("end-of-life", &core::CfpBreakdown::eol);
  add_component("operational", &core::CfpBreakdown::operational);
  add_component("app-dev", &core::CfpBreakdown::app_dev);
  table.add_rule();

  std::vector<std::string> embodied{"embodied (EC)"};
  std::vector<std::string> deployment{"deployment"};
  std::vector<std::string> total{"total"};
  for (const auto& [name, breakdown] : platforms) {
    embodied.push_back(tonnes(breakdown.embodied()));
    deployment.push_back(tonnes(breakdown.deployment()));
    total.push_back(tonnes(breakdown.total()));
  }
  table.add_row(std::move(embodied));
  table.add_row(std::move(deployment));
  table.add_row(std::move(total));
  return table.render();
}

ResultFrame breakdown_frame(
    std::string name,
    std::span<const std::pair<std::string, core::CfpBreakdown>> platforms) {
  ResultFrame frame;
  frame.name = std::move(name);
  frame.columns.push_back(Column{.name = "platform", .unit = "", .precision = 5});
  for (const char* component : {"design", "manufacturing", "packaging", "end-of-life",
                                "operational", "app-dev", "embodied", "deployment",
                                "total"}) {
    frame.columns.push_back(Column{.name = component, .unit = "t CO2e", .precision = 5});
  }
  for (const auto& [label, breakdown] : platforms) {
    frame.add_row({Cell(label), Cell(breakdown.design.in(t_co2e)),
                   Cell(breakdown.manufacturing.in(t_co2e)),
                   Cell(breakdown.packaging.in(t_co2e)), Cell(breakdown.eol.in(t_co2e)),
                   Cell(breakdown.operational.in(t_co2e)),
                   Cell(breakdown.app_dev.in(t_co2e)),
                   Cell(breakdown.embodied().in(t_co2e)),
                   Cell(breakdown.deployment().in(t_co2e)),
                   Cell(breakdown.total().in(t_co2e))});
  }
  return frame;
}

io::CsvWriter sweep_csv(const scenario::SweepSeries& series) {
  // Lowered to a frame so every CSV export in the project funnels through
  // the one `frame_to_csv` writer (round-trip numbers, RFC 4180 quoting).
  ResultFrame frame;
  frame.name = "sweep";
  for (const char* column :
       {"asic_design_kg", "asic_mfg_kg", "asic_pkg_kg", "asic_eol_kg", "asic_op_kg",
        "asic_appdev_kg", "asic_total_kg", "fpga_design_kg", "fpga_mfg_kg",
        "fpga_pkg_kg", "fpga_eol_kg", "fpga_op_kg", "fpga_appdev_kg", "fpga_total_kg",
        "ratio"}) {
    frame.columns.push_back(Column{.name = column, .unit = ""});
  }
  frame.columns.insert(frame.columns.begin(),
                       Column{.name = series.parameter, .unit = ""});
  const std::vector<double> ratios = series.ratios();
  for (std::size_t i = 0; i < series.x.size(); ++i) {
    const core::CfpBreakdown& a = series.asic[i];
    const core::CfpBreakdown& f = series.fpga[i];
    frame.add_row({Cell(series.x[i]), Cell(a.design.canonical()),
                   Cell(a.manufacturing.canonical()), Cell(a.packaging.canonical()),
                   Cell(a.eol.canonical()), Cell(a.operational.canonical()),
                   Cell(a.app_dev.canonical()), Cell(a.total().canonical()),
                   Cell(f.design.canonical()), Cell(f.manufacturing.canonical()),
                   Cell(f.packaging.canonical()), Cell(f.eol.canonical()),
                   Cell(f.operational.canonical()), Cell(f.app_dev.canonical()),
                   Cell(f.total().canonical()), Cell(ratios[i])});
  }
  return frame_to_csv(frame);
}

io::CsvWriter timeline_csv(const scenario::TimelineSeries& series) {
  ResultFrame frame;
  frame.name = "timeline";
  frame.columns = {Column{.name = "time_years", .unit = ""},
                   Column{.name = "asic_cumulative_kg", .unit = ""},
                   Column{.name = "fpga_cumulative_kg", .unit = ""}};
  for (std::size_t i = 0; i < series.time_years.size(); ++i) {
    frame.add_row({Cell(series.time_years[i]), Cell(series.asic_cumulative_kg[i]),
                   Cell(series.fpga_cumulative_kg[i])});
  }
  return frame_to_csv(frame);
}

std::string results_dir() {
  if (const char* dir = std::getenv("GREENFPGA_RESULTS_DIR"); dir != nullptr && *dir != '\0') {
    return dir;
  }
  return "results";
}

std::string write_results_csv(const std::string& name, const io::CsvWriter& csv) {
  const std::string path = (std::filesystem::path(results_dir()) / name).string();
  csv.write_file(path);
  return path;
}

}  // namespace greenfpga::report
