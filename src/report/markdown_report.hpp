#ifndef GREENFPGA_REPORT_MARKDOWN_REPORT_HPP
#define GREENFPGA_REPORT_MARKDOWN_REPORT_HPP

/// \file markdown_report.hpp
/// Markdown sustainability-report rendering.
///
/// Turns a comparison into a self-contained markdown document (suitable
/// for CI artifacts, PR comments or documentation pipelines): scenario
/// summary, per-platform component tables, verdict, and optionally the
/// Table 1 uncertainty band.  The CLI's `compare --markdown <file>`
/// uses this writer.

#include <optional>
#include <string>

#include "core/comparator.hpp"
#include "core/config_io.hpp"
#include "scenario/sensitivity.hpp"

namespace greenfpga::report {

/// Inputs of a rendered report.
struct MarkdownReportInputs {
  std::string title = "GreenFPGA sustainability report";
  core::ScenarioConfig scenario;
  core::Comparison comparison;
  /// Optional Monte-Carlo band over the Table 1 ranges.
  std::optional<scenario::MonteCarloResult> uncertainty;
};

/// Render the full document.
[[nodiscard]] std::string render_markdown_report(const MarkdownReportInputs& inputs);

/// Render one breakdown as a markdown table (also used standalone).
[[nodiscard]] std::string markdown_breakdown_table(
    std::span<const std::pair<std::string, core::CfpBreakdown>> platforms);

}  // namespace greenfpga::report

#endif  // GREENFPGA_REPORT_MARKDOWN_REPORT_HPP
