/// \file ascii_chart.cpp
/// ASCII line charts, heat-map grids and stacked bars.

#include "report/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "units/format.hpp"

namespace greenfpga::report {

namespace {

/// Map a value in [lo, hi] to a pixel row/column index in [0, extent).
int to_pixel(double value, double lo, double hi, int extent) {
  if (hi <= lo) {
    return 0;
  }
  const double t = (value - lo) / (hi - lo);
  const int pixel = static_cast<int>(std::lround(t * (extent - 1)));
  return std::clamp(pixel, 0, extent - 1);
}

}  // namespace

std::string render_line_chart(std::span<const double> x, std::span<const ChartSeries> series,
                              int width, int height, bool log_x) {
  if (x.empty() || series.empty()) {
    throw std::invalid_argument("render_line_chart: empty input");
  }
  for (const ChartSeries& s : series) {
    if (s.y.size() != x.size()) {
      throw std::invalid_argument("render_line_chart: series length mismatch");
    }
  }
  if (width < 16 || height < 4) {
    throw std::invalid_argument("render_line_chart: canvas too small");
  }

  std::vector<double> xs(x.begin(), x.end());
  if (log_x) {
    for (double& v : xs) {
      if (v <= 0.0) {
        throw std::invalid_argument("render_line_chart: log_x requires positive x");
      }
      v = std::log10(v);
    }
  }

  double y_lo = series[0].y[0];
  double y_hi = y_lo;
  for (const ChartSeries& s : series) {
    for (const double v : s.y) {
      y_lo = std::min(y_lo, v);
      y_hi = std::max(y_hi, v);
    }
  }
  if (y_hi == y_lo) {
    y_hi = y_lo + 1.0;  // flat series: give the canvas some range
  }
  const double x_lo = *std::min_element(xs.begin(), xs.end());
  const double x_hi = *std::max_element(xs.begin(), xs.end());

  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
  for (const ChartSeries& s : series) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const int col = to_pixel(xs[i], x_lo, x_hi, width);
      const int row = height - 1 - to_pixel(s.y[i], y_lo, y_hi, height);
      canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = s.marker;
    }
  }

  std::string out;
  out += "  " + units::format_significant(y_hi, 4) + " kg CO2e\n";
  for (const std::string& row : canvas) {
    out += "  |" + row + "\n";
  }
  out += "  +" + std::string(static_cast<std::size_t>(width), '-') + "\n";
  out += "   " + units::format_significant(log_x ? std::pow(10.0, x_lo) : x_lo, 4) +
         std::string(static_cast<std::size_t>(std::max(1, width - 16)), ' ') +
         units::format_significant(log_x ? std::pow(10.0, x_hi) : x_hi, 4) + "\n";
  out += "  y-min " + units::format_significant(y_lo, 4) + " kg CO2e; series:";
  for (const ChartSeries& s : series) {
    out += " '" + std::string(1, s.marker) + "' " + s.label + ";";
  }
  out += "\n";
  return out;
}

std::string render_cdf(std::span<const double> sorted_values, const std::string& label,
                       double marker_x, int width, int height) {
  if (sorted_values.empty()) {
    throw std::invalid_argument("render_cdf: empty input");
  }
  if (width < 16 || height < 4) {
    throw std::invalid_argument("render_cdf: canvas too small");
  }
  if (!std::is_sorted(sorted_values.begin(), sorted_values.end())) {
    throw std::invalid_argument("render_cdf: values must be sorted ascending");
  }

  const double x_lo = sorted_values.front();
  const double x_hi = sorted_values.back();
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
  if (marker_x >= x_lo && marker_x <= x_hi) {
    const int col = to_pixel(marker_x, x_lo, x_hi, width);
    for (std::string& row : canvas) {
      row[static_cast<std::size_t>(col)] = '|';
    }
  }
  const auto n = static_cast<double>(sorted_values.size());
  for (std::size_t i = 0; i < sorted_values.size(); ++i) {
    const double fraction = (static_cast<double>(i) + 1.0) / n;
    const int col = to_pixel(sorted_values[i], x_lo, x_hi, width);
    const int row = height - 1 - to_pixel(fraction, 0.0, 1.0, height);
    canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = '*';
  }

  std::string out;
  out += "  P(" + label + " <= x)\n";
  out += "  1.0\n";
  for (const std::string& row : canvas) {
    out += "  |" + row + "\n";
  }
  out += "  +" + std::string(static_cast<std::size_t>(width), '-') + "\n";
  out += "   " + units::format_significant(x_lo, 4) +
         std::string(static_cast<std::size_t>(std::max(1, width - 16)), ' ') +
         units::format_significant(x_hi, 4) + "\n";
  if (marker_x >= x_lo && marker_x <= x_hi) {
    out += "  '|' marks x = " + units::format_significant(marker_x, 4) + "\n";
  }
  return out;
}

std::string render_heatmap(const scenario::Heatmap& map) {
  if (map.ratio.empty()) {
    throw std::invalid_argument("render_heatmap: empty map");
  }
  // Shade by log-ratio so 0.5x and 2x sit symmetrically around '1'.
  static constexpr std::string_view ramp = " .:-=+*#%@";
  const double lo = std::log(map.min_ratio());
  const double hi = std::log(map.max_ratio());

  std::string out;
  out += "  FPGA:ASIC CFP ratio -- light: FPGA greener, dark: ASIC greener, 'X': ~1.0\n";
  out += "  y: " + map.y_name + " (top = max), x: " + map.x_name + "\n";
  for (std::size_t iy = map.y.size(); iy-- > 0;) {
    out += "  " + units::format_significant(map.y[iy], 3) + "\t|";
    for (std::size_t ix = 0; ix < map.x.size(); ++ix) {
      const double r = map.ratio[iy][ix];
      if (std::fabs(std::log(r)) < 0.05) {
        out += 'X';  // within ~5 % of the crossover front
      } else {
        const int idx = to_pixel(std::log(r), lo, hi, static_cast<int>(ramp.size()));
        out += ramp[static_cast<std::size_t>(idx)];
      }
    }
    out += "|\n";
  }
  out += "  \tx: " + units::format_significant(map.x.front(), 3) + " ... " +
         units::format_significant(map.x.back(), 3) + "\n";
  return out;
}

std::string render_bars(std::span<const Bar> bars, int width) {
  if (bars.empty()) {
    throw std::invalid_argument("render_bars: empty input");
  }
  std::size_t label_width = 0;
  double magnitude = 0.0;
  for (const Bar& bar : bars) {
    label_width = std::max(label_width, bar.label.size());
    magnitude = std::max(magnitude, std::fabs(bar.value));
  }
  if (magnitude == 0.0) {
    magnitude = 1.0;
  }

  std::string out;
  for (const Bar& bar : bars) {
    const int length =
        static_cast<int>(std::lround(std::fabs(bar.value) / magnitude * width));
    std::string padded = bar.label;
    padded.resize(label_width, ' ');
    out += "  " + padded + " |";
    if (bar.value < 0.0) {
      out.push_back('(');
      out.append(static_cast<std::size_t>(length), '<');
      out += ") ";
    } else {
      out.append(static_cast<std::size_t>(length), '#');
      out.push_back(' ');
    }
    out += units::format_significant(bar.value, 4) + "\n";
  }
  return out;
}

}  // namespace greenfpga::report
