#ifndef GREENFPGA_IO_TABLE_HPP
#define GREENFPGA_IO_TABLE_HPP

/// \file table.hpp
/// Fixed-width text table rendering for CLI / bench output.
///
/// Every figure-reproduction bench prints its series as an aligned text
/// table (the "same rows the paper reports"); this class handles column
/// sizing, alignment and rules.

#include <string>
#include <vector>

namespace greenfpga::io {

/// Column alignment within a rendered table cell.
enum class Align { left, right };

/// A simple text table: set headers, add rows, render.
///
///     TextTable t;
///     t.set_headers({"N_app", "ASIC [t]", "FPGA [t]"});
///     t.add_row({"1", "523.1", "1204.9"});
///     std::cout << t.render();
class TextTable {
 public:
  /// Column headers; defines the column count.  Must be called before rows.
  void set_headers(std::vector<std::string> headers);

  /// Per-column alignment; default is left for the first column and right
  /// for the rest (label + numbers convention).
  void set_alignments(std::vector<Align> alignments);

  /// Append one row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal rule (rendered as dashes across the table).
  void add_rule();

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render with a vertical-bar style:  `| a | b |`.
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
};

}  // namespace greenfpga::io

#endif  // GREENFPGA_IO_TABLE_HPP
