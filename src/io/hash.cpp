/// \file hash.cpp
/// FNV-1a content fingerprints.

#include "io/hash.hpp"

namespace greenfpga::io {

std::uint64_t fnv1a64(std::string_view bytes) {
  Fnv1aHasher hasher;
  hasher.update(bytes);
  return hasher.digest();
}

std::string hex64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

std::string content_digest(std::string_view bytes) {
  return content_digest_of_hash(fnv1a64(bytes));
}

std::string content_digest_of_hash(std::uint64_t hash) {
  return "fnv1a64:" + hex64(hash);
}

}  // namespace greenfpga::io
