#ifndef GREENFPGA_IO_JSON_ARENA_HPP
#define GREENFPGA_IO_JSON_ARENA_HPP

/// \file json_arena.hpp
/// An immutable, arena-backed JSON DOM for read-mostly hot paths.
///
/// `parse_json_arena` parses with the same grammar, limits and error
/// messages as `parse_json`, but builds a `JsonDocument`: every node is a
/// 16-byte POD, every string (keys interned, values copied once) and
/// every member/element span lives in one monotonic arena owned by the
/// document.  No per-node heap allocation, no destructor walk -- tearing
/// down a million-node document is a handful of chunk frees.
///
/// Lifetime rules (the cost of the zero-copy design):
///
///   * `JsonView`, and every `std::string_view` obtained from one
///     (`as_string()`, member keys), point into the document's arena.
///     They are valid exactly as long as the owning `JsonDocument` is
///     alive, and dangle the moment it is destroyed.  Moving the document
///     is safe (chunk storage is stable under move); destroying it is not.
///   * The DOM is immutable.  To edit, materialize a mutable tree with
///     `to_json()` (which copies out of the arena, so the facade value
///     outlives the document freely).
///
/// Like `parse_json_hashed`, the arena parser can fingerprint the
/// canonical byte stream while parsing (`JsonDocument::parse_digest`).

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "io/json.hpp"

namespace greenfpga::io {

struct JsonMember;

/// One immutable JSON value inside a `JsonDocument`.  16 bytes: tag,
/// element/member/byte count, and a payload that points back into the
/// document's arena for strings, arrays and objects.
struct JsonNode {
  enum class Type : std::uint8_t { null, boolean, number, string, array, object };

  Type type = Type::null;
  std::uint32_t count = 0;  ///< string bytes / array elements / object members
  union {
    bool boolean;
    double number;
    const char* string;         ///< `count` bytes, arena-owned, not 0-terminated
    const JsonNode* elements;   ///< `count` nodes, arena-owned
    const JsonMember* members;  ///< `count` members, sorted by key, arena-owned
  } payload = {.boolean = false};
};

/// An object member: interned key view plus the value node, both
/// arena-owned.  Members of one object are stored contiguously, sorted
/// by key (canonical dump order).
struct JsonMember {
  std::string_view key;
  JsonNode value;
};

/// A cheap, copyable cursor over one node of a `JsonDocument`.  Checked
/// accessors throw `JsonError` with the same messages as the `Json`
/// facade.  Valid only while the owning document is alive.
class JsonView {
 public:
  using Type = JsonNode::Type;

  explicit JsonView(const JsonNode* node) : node_(node) {}

  [[nodiscard]] Type type() const { return node_->type; }
  [[nodiscard]] bool is_null() const { return type() == Type::null; }
  [[nodiscard]] bool is_bool() const { return type() == Type::boolean; }
  [[nodiscard]] bool is_number() const { return type() == Type::number; }
  [[nodiscard]] bool is_string() const { return type() == Type::string; }
  [[nodiscard]] bool is_array() const { return type() == Type::array; }
  [[nodiscard]] bool is_object() const { return type() == Type::object; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// Number or the canonical non-finite string sentinel, as
  /// `Json::as_number_total`.
  [[nodiscard]] double as_number_total() const;
  [[nodiscard]] std::string_view as_string() const;

  /// Array elements / object members count; throws on scalars.
  [[nodiscard]] std::size_t size() const;

  /// Object member lookup (binary search); throws JsonError naming the
  /// missing key.
  [[nodiscard]] JsonView at(std::string_view key) const;
  /// Array element access with bounds check.
  [[nodiscard]] JsonView at(std::size_t index) const;
  [[nodiscard]] bool contains(std::string_view key) const;

  [[nodiscard]] double number_or(std::string_view key, double fallback) const;

  /// Raw spans for iteration (object members are sorted by key).
  [[nodiscard]] std::span<const JsonMember> members() const;
  [[nodiscard]] std::span<const JsonNode> elements() const;

 private:
  [[nodiscard]] const JsonMember* find(std::string_view key) const;

  const JsonNode* node_;
};

/// An immutable parsed JSON document plus the arena that owns every node,
/// string and span in it.  Move-only; views stay valid across moves.
class JsonDocument {
 public:
  JsonDocument() = default;
  JsonDocument(JsonDocument&&) noexcept = default;
  JsonDocument& operator=(JsonDocument&&) noexcept = default;
  JsonDocument(const JsonDocument&) = delete;
  JsonDocument& operator=(const JsonDocument&) = delete;

  [[nodiscard]] JsonView root() const { return JsonView(&root_); }

  /// Canonical serialization, byte-identical to `Json::dump` of the
  /// equivalent facade value.
  [[nodiscard]] std::string dump(int indent = 2) const;
  void dump_to(std::string& out, int indent = 2) const;

  /// FNV-1a of the canonical compact dump, streamed (nothing materialized).
  [[nodiscard]] std::uint64_t canonical_digest() const;

  /// The hash-while-parse digest: present when hashing was requested at
  /// parse time and every object's keys arrived already sorted (then it
  /// equals `canonical_digest()` by construction).
  [[nodiscard]] std::optional<std::uint64_t> parse_digest() const { return parse_digest_; }

  /// Materialize a mutable `Json` tree (copies out of the arena; the
  /// result outlives the document).
  [[nodiscard]] Json to_json() const;

  /// Total bytes reserved by the arena chunks (observability/tests).
  [[nodiscard]] std::size_t arena_bytes() const;

 private:
  friend class ArenaBuilder;
  friend JsonDocument parse_json_arena(std::string_view, JsonParseOptions, bool);

  /// Bump-allocate `bytes` with `alignment` from the chunk list.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t alignment);
  /// Copy `bytes` into the arena and return the stable view.
  [[nodiscard]] std::string_view copy_bytes(std::string_view bytes);

  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  std::vector<Chunk> chunks_;
  JsonNode root_{};
  std::optional<std::uint64_t> parse_digest_;
};

/// Parse into an arena document.  Same dialect, nesting cap and error
/// messages as `parse_json`.  With `hash_canonical`, the canonical-stream
/// digest is computed during the parse when key order permits
/// (`JsonDocument::parse_digest`).
[[nodiscard]] JsonDocument parse_json_arena(std::string_view text,
                                            JsonParseOptions options = {},
                                            bool hash_canonical = false);

}  // namespace greenfpga::io

#endif  // GREENFPGA_IO_JSON_ARENA_HPP
