/// \file table.cpp
/// Fixed-width text-table rendering.

#include "io/table.hpp"

#include <algorithm>
#include <stdexcept>

namespace greenfpga::io {

void TextTable::set_headers(std::vector<std::string> headers) {
  if (!rows_.empty()) {
    throw std::logic_error("TextTable: set_headers must precede add_row");
  }
  headers_ = std::move(headers);
}

void TextTable::set_alignments(std::vector<Align> alignments) {
  if (alignments.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: alignment count must match header count");
  }
  alignments_ = std::move(alignments);
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row has " + std::to_string(cells.size()) +
                                " cells, expected " + std::to_string(headers_.size()));
  }
  rows_.push_back(Row{.cells = std::move(cells), .rule = false});
}

void TextTable::add_rule() { rows_.push_back(Row{.cells = {}, .rule = true}); }

std::string TextTable::render() const {
  const std::size_t columns = headers_.size();
  if (columns == 0) {
    return "";
  }

  std::vector<std::size_t> widths(columns);
  for (std::size_t c = 0; c < columns; ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.rule) continue;
    for (std::size_t c = 0; c < columns; ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::vector<Align> align = alignments_;
  if (align.empty()) {
    align.assign(columns, Align::right);
    align[0] = Align::left;
  }

  const auto pad = [](const std::string& text, std::size_t width, Align a) {
    const std::size_t fill = width - text.size();
    return a == Align::left ? text + std::string(fill, ' ') : std::string(fill, ' ') + text;
  };

  std::string out;
  const auto render_rule = [&] {
    out.push_back('+');
    for (std::size_t c = 0; c < columns; ++c) {
      out.append(widths[c] + 2, '-');
      out.push_back('+');
    }
    out.push_back('\n');
  };
  const auto render_cells = [&](const std::vector<std::string>& cells) {
    out.push_back('|');
    for (std::size_t c = 0; c < columns; ++c) {
      out.push_back(' ');
      out += pad(cells[c], widths[c], align[c]);
      out += " |";
    }
    out.push_back('\n');
  };

  render_rule();
  render_cells(headers_);
  render_rule();
  for (const Row& row : rows_) {
    if (row.rule) {
      render_rule();
    } else {
      render_cells(row.cells);
    }
  }
  render_rule();
  return out;
}

}  // namespace greenfpga::io
