#ifndef GREENFPGA_IO_CSV_HPP
#define GREENFPGA_IO_CSV_HPP

/// \file csv.hpp
/// Minimal CSV writing (RFC 4180 quoting) for machine-readable experiment
/// output.  Every bench can emit its series as CSV next to the text table
/// so results can be re-plotted outside the repo.

#include <initializer_list>
#include <string>
#include <vector>

namespace greenfpga::io {

/// Accumulates rows and renders/writes RFC 4180 CSV.
class CsvWriter {
 public:
  /// Append a row of raw cells; quoting is applied on render.
  void add_row(std::vector<std::string> cells);
  void add_row(std::initializer_list<std::string> cells);

  /// Number of rows added so far (including any header row).
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render the document; rows may be ragged (no padding is applied).
  [[nodiscard]] std::string render() const;

  /// Write to a file, creating parent directories; throws std::runtime_error
  /// if the file cannot be opened.
  void write_file(const std::string& path) const;

  /// Quote a single cell per RFC 4180 (quotes applied only when needed).
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace greenfpga::io

#endif  // GREENFPGA_IO_CSV_HPP
