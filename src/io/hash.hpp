#ifndef GREENFPGA_IO_HASH_HPP
#define GREENFPGA_IO_HASH_HPP

/// \file hash.hpp
/// Content hashing for cache keys and fingerprints.
///
/// The result cache addresses entries by the canonical JSON bytes of what
/// was evaluated.  The full byte string is the collision-proof identity;
/// the 64-bit FNV-1a digest over those bytes is the compact *fingerprint*
/// surfaced to humans (stats endpoints, log lines) so two parties can
/// check "same spec?" without shipping the spec.  FNV-1a is not
/// cryptographic -- it fingerprints trusted content, it does not
/// authenticate untrusted content.

#include <cstdint>
#include <string>
#include <string_view>

namespace greenfpga::io {

/// FNV-1a 64 parameters, shared with the JSON writer/parser streaming
/// sinks (src/io/json_detail.hpp) so every digest in the system agrees.
inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

/// Incremental FNV-1a 64: feed bytes in any chunking, `digest()` equals
/// `fnv1a64` of the concatenation.  This is what hash-while-parse and
/// hash-while-dump fold into, so a document can be fingerprinted without
/// ever materializing its canonical bytes.
class Fnv1aHasher {
 public:
  void update(std::string_view bytes) {
    for (const char c : bytes) {
      update(c);
    }
  }
  void update(char c) {
    hash_ = (hash_ ^ static_cast<unsigned char>(c)) * kFnv1aPrime;
  }
  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = kFnv1aOffset;
};

/// 64-bit FNV-1a over `bytes` (offset basis 14695981039346656037,
/// prime 1099511628211).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// Fixed-width (16 digit) lowercase hex form of `value`.
[[nodiscard]] std::string hex64(std::uint64_t value);

/// The human-readable digest of a content string:
/// `"fnv1a64:" + hex64(fnv1a64(bytes))`.
[[nodiscard]] std::string content_digest(std::string_view bytes);

/// `content_digest` when the 64-bit hash is already known (e.g. from
/// hash-while-parse/dump): same text, no re-hash of the bytes.
[[nodiscard]] std::string content_digest_of_hash(std::uint64_t hash);

}  // namespace greenfpga::io

#endif  // GREENFPGA_IO_HASH_HPP
