#ifndef GREENFPGA_IO_HASH_HPP
#define GREENFPGA_IO_HASH_HPP

/// \file hash.hpp
/// Content hashing for cache keys and fingerprints.
///
/// The result cache addresses entries by the canonical JSON bytes of what
/// was evaluated.  The full byte string is the collision-proof identity;
/// the 64-bit FNV-1a digest over those bytes is the compact *fingerprint*
/// surfaced to humans (stats endpoints, log lines) so two parties can
/// check "same spec?" without shipping the spec.  FNV-1a is not
/// cryptographic -- it fingerprints trusted content, it does not
/// authenticate untrusted content.

#include <cstdint>
#include <string>
#include <string_view>

namespace greenfpga::io {

/// 64-bit FNV-1a over `bytes` (offset basis 14695981039346656037,
/// prime 1099511628211).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// Fixed-width (16 digit) lowercase hex form of `value`.
[[nodiscard]] std::string hex64(std::uint64_t value);

/// The human-readable digest of a content string:
/// `"fnv1a64:" + hex64(fnv1a64(bytes))`.
[[nodiscard]] std::string content_digest(std::string_view bytes);

}  // namespace greenfpga::io

#endif  // GREENFPGA_IO_HASH_HPP
