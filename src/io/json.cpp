/// \file json.cpp
/// RFC 8259 JSON parser, writer and checked value model.

#include "io/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

namespace greenfpga::io {

namespace {

[[nodiscard]] const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::null:
      return "null";
    case Json::Type::boolean:
      return "boolean";
    case Json::Type::number:
      return "number";
    case Json::Type::string:
      return "string";
    case Json::Type::array:
      return "array";
    case Json::Type::object:
      return "object";
  }
  return "unknown";
}

[[noreturn]] void throw_type_error(Json::Type expected, Json::Type actual) {
  throw JsonError(std::string("JSON type error: expected ") + type_name(expected) + ", got " +
                  type_name(actual));
}

}  // namespace

Json Json::object(std::initializer_list<std::pair<const std::string, Json>> members) {
  return Json(Object(members));
}

Json Json::array(std::initializer_list<Json> elements) { return Json(Array(elements)); }

Json::Type Json::type() const {
  return static_cast<Type>(value_.index());
}

bool Json::as_bool() const {
  if (!is_bool()) throw_type_error(Type::boolean, type());
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) throw_type_error(Type::number, type());
  return std::get<double>(value_);
}

double Json::as_number_total() const {
  if (is_string()) {
    // The writer's non-finite encoding: JSON has no inf/nan literal, so
    // dump() emits these exact string sentinels in number position and
    // this accessor decodes them, keeping the *result* round-trip total.
    // Deliberately not part of as_number(): config/spec ingestion stays
    // strict, so untrusted input cannot smuggle non-finite values past
    // comparison-based validation.
    const std::string& s = std::get<std::string>(value_);
    if (s == "inf") return std::numeric_limits<double>::infinity();
    if (s == "-inf") return -std::numeric_limits<double>::infinity();
    if (s == "nan") return std::numeric_limits<double>::quiet_NaN();
  }
  if (!is_number()) throw_type_error(Type::number, type());
  return std::get<double>(value_);
}

std::int64_t Json::as_int() const {
  const double n = as_number();
  // Range-check before casting: double-to-int64 conversion outside the
  // representable range (or of NaN) is undefined behaviour.  2^63 is
  // exactly representable as a double; the valid half-open range is
  // [-2^63, 2^63).
  constexpr double kTwo63 = 9223372036854775808.0;
  if (!(n >= -kTwo63 && n < kTwo63)) {
    throw JsonError("JSON number is not an integer: " + std::to_string(n));
  }
  const auto i = static_cast<std::int64_t>(n);
  if (static_cast<double>(i) != n) {
    throw JsonError("JSON number is not an integer: " + std::to_string(n));
  }
  return i;
}

const std::string& Json::as_string() const {
  if (!is_string()) throw_type_error(Type::string, type());
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) throw_type_error(Type::array, type());
  return std::get<Array>(value_);
}

Json::Array& Json::as_array() {
  if (!is_array()) throw_type_error(Type::array, type());
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) throw_type_error(Type::object, type());
  return std::get<Object>(value_);
}

Json::Object& Json::as_object() {
  if (!is_object()) throw_type_error(Type::object, type());
  return std::get<Object>(value_);
}

const Json& Json::at(std::string_view key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw JsonError("JSON object has no member \"" + std::string(key) + "\"");
  }
  return it->second;
}

const Json& Json::at(std::size_t index) const {
  const Array& arr = as_array();
  if (index >= arr.size()) {
    throw JsonError("JSON array index " + std::to_string(index) + " out of range (size " +
                    std::to_string(arr.size()) + ")");
  }
  return arr[index];
}

bool Json::contains(std::string_view key) const {
  return is_object() && as_object().find(key) != as_object().end();
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  throw JsonError("size() requires a JSON array or object");
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) {
    value_ = Object{};
  }
  return as_object()[key];
}

double Json::number_or(std::string_view key, double fallback) const {
  return contains(key) ? at(key).as_number() : fallback;
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

void Json::push_back(Json element) {
  if (is_null()) {
    value_ = Array{};
  }
  as_array().push_back(std::move(element));
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, JsonParseOptions options) : text_(text), options_(options) {
    // Skip a UTF-8 byte-order mark if present.
    if (text_.substr(0, 3) == "\xEF\xBB\xBF") {
      pos_ = 3;
    }
  }

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonError("JSON parse error at " + std::to_string(line) + ":" + std::to_string(column) +
                    ": " + message);
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (options_.allow_comments && c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (!at_end() && text_[pos_] != '\n') {
          ++pos_;
        }
      } else {
        break;
      }
    }
  }

  Json parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        parse_keyword("true");
        return Json(true);
      case 'f':
        parse_keyword("false");
        return Json(false);
      case 'n':
        parse_keyword("null");
        return Json(nullptr);
      default:
        return parse_number();
    }
  }

  void parse_keyword(std::string_view keyword) {
    if (text_.substr(pos_, keyword.size()) != keyword) {
      fail("invalid literal (expected '" + std::string(keyword) + "')");
    }
    pos_ += keyword.size();
  }

  /// RAII nesting guard: one per parse_object/parse_array activation.
  /// The recursive-descent parser spends one stack frame per level, so
  /// the cap turns a deeply-nested bomb ("["*100k) into a JsonError at
  /// the offending bracket instead of a stack overflow.
  class DepthGuard {
   public:
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > parser_.options_.max_depth) {
        parser_.fail("nesting depth exceeds " + std::to_string(parser_.options_.max_depth));
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser& parser_;
  };

  Json parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    Json::Object members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected string key in object");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      Json value = parse_value();
      if (!members.emplace(std::move(key), std::move(value)).second) {
        fail("duplicate object key");
      }
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(members));
    }
  }

  Json parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    Json::Array elements;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(elements));
    }
    while (true) {
      elements.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(elements));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = advance();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = advance();
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u':
          append_unicode_escape(out);
          break;
        default:
          fail("invalid escape sequence");
      }
    }
    return out;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    // Surrogate pair handling for characters outside the BMP.
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 1 < text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
        pos_ += 2;
        const unsigned low = parse_hex4();
        if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
      } else {
        fail("unpaired high surrogate");
      }
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    // Encode as UTF-8.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = advance();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return value;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("invalid number");
    }
    // Integer part: a single 0, or a nonzero digit followed by digits.
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    // Fraction.
    if (!at_end() && text_[pos_] == '.') {
      ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit expected after decimal point");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    // Exponent.
    if (!at_end() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit expected in exponent");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      fail("number out of range");
    }
    return Json(value);
  }

  std::string_view text_;
  JsonParseOptions options_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_number(std::string& out, double n) {
  if (!std::isfinite(n)) {
    // RFC 8259 has no inf/nan number syntax; emit the sentinel *quoted*
    // so the output stays valid JSON (as_number() decodes it on read --
    // the old bare `null` in number position broke every reader).
    out.push_back('"');
    out += format_number(n);
    out.push_back('"');
    return;
  }
  out += format_number(n);
}

}  // namespace

std::string format_number(double n) {
  if (!std::isfinite(n)) {
    // The canonical non-finite text tokens (quoted by the JSON writer,
    // bare in CSV); parse back via Json::as_number.
    if (std::isnan(n)) return "nan";
    return n > 0.0 ? "inf" : "-inf";
  }
  if (n == std::floor(n) && std::fabs(n) < 1e15) {
    // Integral values print without a fraction for readability.
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.0f", n);
    return buffer;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", n);
  // %.17g guarantees round-trip; try shorter forms that still round-trip for
  // more readable output.
  for (int precision = 6; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof candidate, "%.*g", precision, n);
    double parsed = 0.0;
    std::from_chars(candidate, candidate + std::char_traits<char>::length(candidate), parsed);
    if (parsed == n) {
      return candidate;
    }
  }
  return buffer;
}

namespace {

void dump_value(const Json& value, std::string& out, int indent, int depth) {
  const auto newline_pad = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
    }
  };
  switch (value.type()) {
    case Json::Type::null:
      out += "null";
      return;
    case Json::Type::boolean:
      out += value.as_bool() ? "true" : "false";
      return;
    case Json::Type::number:
      write_number(out, value.as_number());
      return;
    case Json::Type::string:
      write_escaped(out, value.as_string());
      return;
    case Json::Type::array: {
      const auto& arr = value.as_array();
      if (arr.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_pad(depth + 1);
        dump_value(arr[i], out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back(']');
      return;
    }
    case Json::Type::object: {
      const auto& obj = value.as_object();
      if (obj.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, member] : obj) {
        if (!first) out.push_back(',');
        first = false;
        newline_pad(depth + 1);
        write_escaped(out, key);
        out += indent > 0 ? ": " : ":";
        dump_value(member, out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

Json parse_json(std::string_view text, JsonParseOptions options) {
  return Parser(text, options).parse_document();
}

Json parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw JsonError("cannot open JSON file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_json(buffer.str(), JsonParseOptions{.allow_comments = true});
}

void write_json_file(const std::string& path, const Json& value, int indent) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw JsonError("cannot write JSON file: " + path);
  }
  out << value.dump(indent) << '\n';
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

}  // namespace greenfpga::io
