/// \file json.cpp
/// RFC 8259 JSON value model plus the facade side of the shared parser
/// and writer (src/io/json_detail.hpp).

#include "io/json.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "io/json_detail.hpp"

namespace greenfpga::io {

namespace {

[[nodiscard]] const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::null:
      return "null";
    case Json::Type::boolean:
      return "boolean";
    case Json::Type::number:
      return "number";
    case Json::Type::string:
      return "string";
    case Json::Type::array:
      return "array";
    case Json::Type::object:
      return "object";
  }
  return "unknown";
}

[[noreturn]] void throw_type_error(Json::Type expected, Json::Type actual) {
  throw JsonError(std::string("JSON type error: expected ") + type_name(expected) + ", got " +
                  type_name(actual));
}

}  // namespace

Json Json::object(std::initializer_list<std::pair<const std::string, Json>> members) {
  // Sorted-unique insertion with first-occurrence-wins on duplicate keys,
  // matching the std::map initializer-list semantics this factory had.
  Object object;
  for (const auto& [key, value] : members) {
    if (!object.contains(key)) {
      object[key] = value;
    }
  }
  return Json(std::move(object));
}

Json Json::array(std::initializer_list<Json> elements) { return Json(Array(elements)); }

Json::Type Json::type() const {
  return static_cast<Type>(value_.index());
}

bool Json::as_bool() const {
  if (!is_bool()) throw_type_error(Type::boolean, type());
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) throw_type_error(Type::number, type());
  return std::get<double>(value_);
}

double Json::as_number_total() const {
  if (is_string()) {
    // The writer's non-finite encoding: JSON has no inf/nan literal, so
    // dump() emits these exact string sentinels in number position and
    // this accessor decodes them, keeping the *result* round-trip total.
    // Deliberately not part of as_number(): config/spec ingestion stays
    // strict, so untrusted input cannot smuggle non-finite values past
    // comparison-based validation.
    const std::string& s = std::get<std::string>(value_);
    if (s == "inf") return std::numeric_limits<double>::infinity();
    if (s == "-inf") return -std::numeric_limits<double>::infinity();
    if (s == "nan") return std::numeric_limits<double>::quiet_NaN();
  }
  if (!is_number()) throw_type_error(Type::number, type());
  return std::get<double>(value_);
}

std::int64_t Json::as_int() const {
  const double n = as_number();
  // Range-check before casting: double-to-int64 conversion outside the
  // representable range (or of NaN) is undefined behaviour.  2^63 is
  // exactly representable as a double; the valid half-open range is
  // [-2^63, 2^63).
  constexpr double kTwo63 = 9223372036854775808.0;
  if (!(n >= -kTwo63 && n < kTwo63)) {
    throw JsonError("JSON number is not an integer: " + std::to_string(n));
  }
  const auto i = static_cast<std::int64_t>(n);
  if (static_cast<double>(i) != n) {
    throw JsonError("JSON number is not an integer: " + std::to_string(n));
  }
  return i;
}

const std::string& Json::as_string() const {
  if (!is_string()) throw_type_error(Type::string, type());
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) throw_type_error(Type::array, type());
  return std::get<Array>(value_);
}

Json::Array& Json::as_array() {
  if (!is_array()) throw_type_error(Type::array, type());
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) throw_type_error(Type::object, type());
  return std::get<Object>(value_);
}

Json::Object& Json::as_object() {
  if (!is_object()) throw_type_error(Type::object, type());
  return std::get<Object>(value_);
}

const Json& Json::at(std::string_view key) const {
  return as_object().at(key);
}

const Json& Json::at(std::size_t index) const {
  const Array& arr = as_array();
  if (index >= arr.size()) {
    throw JsonError("JSON array index " + std::to_string(index) + " out of range (size " +
                    std::to_string(arr.size()) + ")");
  }
  return arr[index];
}

bool Json::contains(std::string_view key) const {
  return is_object() && as_object().contains(key);
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  throw JsonError("size() requires a JSON array or object");
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) {
    value_ = Object{};
  }
  return as_object()[key];
}

double Json::number_or(std::string_view key, double fallback) const {
  return contains(key) ? at(key).as_number() : fallback;
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

void Json::push_back(Json element) {
  if (is_null()) {
    value_ = Array{};
  }
  as_array().push_back(std::move(element));
}

// ---------------------------------------------------------------------------
// Number formatting
// ---------------------------------------------------------------------------

namespace detail {

std::size_t format_number_to(char* buffer, double n) {
  if (!std::isfinite(n)) {
    // The canonical non-finite text tokens (quoted by the JSON writer,
    // bare in CSV); parse back via Json::as_number_total.
    if (std::isnan(n)) {
      std::memcpy(buffer, "nan", 3);
      return 3;
    }
    if (n > 0.0) {
      std::memcpy(buffer, "inf", 3);
      return 3;
    }
    std::memcpy(buffer, "-inf", 4);
    return 4;
  }
  if (n == std::floor(n) && std::fabs(n) < 1e15) {
    // Integral values print without a fraction for readability.
    const auto [end, ec] =
        std::to_chars(buffer, buffer + kNumberBufferSize, n, std::chars_format::fixed);
    return static_cast<std::size_t>(end - buffer);
  }
  // The historical format is printf %g at the smallest precision in
  // [6, 17] that round-trips.  Reproduce it from one to_chars call:
  // shortest-round-trip scientific form gives the correctly rounded
  // digit string D and decimal exponent X, and for len(D) >= 6 the %g
  // probe loop's winner is exactly %.len(D)g -- whose presentation
  // (fixed vs scientific by the exponent rule, trailing zeros stripped)
  // is reconstructed below byte-for-byte.  len(D) < 6 means %.6g was the
  // first probe and always round-trips, so one snprintf settles it
  // (its 6 significant digits of the exact expansion are NOT the
  // shortest digits -- e.g. 5e-324 prints as 4.94066e-324).
  char sci[kNumberBufferSize];
  const auto [sci_end, sci_ec] =
      std::to_chars(sci, sci + sizeof sci, n, std::chars_format::scientific);
  const char* s = sci;
  const bool negative = (*s == '-');
  if (negative) ++s;
  char digits[24];
  int len = 0;
  digits[len++] = *s++;
  if (*s == '.') {
    ++s;
    while (*s != 'e') digits[len++] = *s++;
  }
  ++s;  // 'e'
  const bool exp_negative = (*s == '-');
  ++s;
  int exp10 = 0;
  while (s < sci_end) exp10 = exp10 * 10 + (*s++ - '0');
  if (exp_negative) exp10 = -exp10;
  if (len < 6) {
    const int written = std::snprintf(buffer, kNumberBufferSize, "%.6g", n);
    return static_cast<std::size_t>(written);
  }
  char* out = buffer;
  if (negative) *out++ = '-';
  if (exp10 < -4 || exp10 >= len) {
    // Scientific presentation: d.ddd e±XX (exponent at least two digits).
    *out++ = digits[0];
    if (len > 1) {
      *out++ = '.';
      std::memcpy(out, digits + 1, static_cast<std::size_t>(len - 1));
      out += len - 1;
    }
    *out++ = 'e';
    *out++ = exp10 < 0 ? '-' : '+';
    int magnitude = exp10 < 0 ? -exp10 : exp10;
    char exp_digits[8];
    int exp_len = 0;
    do {
      exp_digits[exp_len++] = static_cast<char>('0' + magnitude % 10);
      magnitude /= 10;
    } while (magnitude != 0);
    while (exp_len < 2) exp_digits[exp_len++] = '0';
    while (exp_len != 0) *out++ = exp_digits[--exp_len];
  } else if (exp10 < 0) {
    // 0.00ddd
    *out++ = '0';
    *out++ = '.';
    for (int i = 0; i < -exp10 - 1; ++i) *out++ = '0';
    std::memcpy(out, digits, static_cast<std::size_t>(len));
    out += len;
  } else {
    // Fixed presentation, decimal point inside or right of the digits.
    const int int_digits = exp10 + 1;
    if (int_digits >= len) {
      std::memcpy(out, digits, static_cast<std::size_t>(len));
      out += len;
      for (int i = 0; i < int_digits - len; ++i) *out++ = '0';
    } else {
      std::memcpy(out, digits, static_cast<std::size_t>(int_digits));
      out += int_digits;
      *out++ = '.';
      std::memcpy(out, digits + int_digits, static_cast<std::size_t>(len - int_digits));
      out += len - int_digits;
    }
  }
  return static_cast<std::size_t>(out - buffer);
}

}  // namespace detail

std::string format_number(double n) {
  char buffer[detail::kNumberBufferSize];
  return std::string(buffer, detail::format_number_to(buffer, n));
}

// ---------------------------------------------------------------------------
// Parser (facade side of the shared core)
// ---------------------------------------------------------------------------

namespace {

/// Builds mutable `Json` values from the shared parser core.  Object
/// members accumulate directly into the sorted flat storage: canonical
/// input (keys already sorted) appends in O(1); out-of-order keys pay one
/// mid-vector insert.
struct FacadeBuilder {
  using Value = Json;

  struct ArrayCtx {
    Json::Array elements;
  };
  struct ObjectCtx {
    JsonObject::Storage members;
    std::size_t pending = 0;  ///< index the next member_value fills
  };

  Json null_value() { return Json(nullptr); }
  Json boolean(bool b) { return Json(b); }
  Json number(double n) { return Json(n); }
  Json string_value(std::string_view s) { return Json(std::string(s)); }

  ArrayCtx array_begin() { return {}; }
  void array_push(ArrayCtx& ctx, Json value) { ctx.elements.push_back(std::move(value)); }
  Json array_end(ArrayCtx& ctx) { return Json(std::move(ctx.elements)); }

  ObjectCtx object_begin() { return {}; }

  detail::MemberOrder member_key(ObjectCtx& ctx, std::string_view key) {
    if (ctx.members.empty() || std::string_view(ctx.members.back().first) < key) {
      ctx.pending = ctx.members.size();
      ctx.members.emplace_back(std::string(key), Json());
      return detail::MemberOrder::appended;
    }
    const auto it = std::lower_bound(
        ctx.members.begin(), ctx.members.end(), key,
        [](const JsonObject::Member& m, std::string_view k) {
          return std::string_view(m.first) < k;
        });
    if (it != ctx.members.end() && it->first == key) {
      return detail::MemberOrder::duplicate;
    }
    ctx.pending = static_cast<std::size_t>(it - ctx.members.begin());
    ctx.members.emplace(it, std::string(key), Json());
    return detail::MemberOrder::inserted;
  }

  void member_value(ObjectCtx& ctx, Json value) {
    ctx.members[ctx.pending].second = std::move(value);
  }

  Json object_end(ObjectCtx& ctx) {
    return Json(JsonObject::adopt_sorted(std::move(ctx.members)));
  }
};

}  // namespace

Json parse_json(std::string_view text, JsonParseOptions options) {
  FacadeBuilder builder;
  detail::ParserCore<FacadeBuilder> parser(text, options, builder, /*hash_canonical=*/false);
  return parser.parse_document();
}

ParsedJson parse_json_hashed(std::string_view text, JsonParseOptions options) {
  FacadeBuilder builder;
  detail::ParserCore<FacadeBuilder> parser(text, options, builder, /*hash_canonical=*/true);
  Json value = parser.parse_document();
  return ParsedJson{std::move(value), parser.canonical_digest()};
}

Json parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw JsonError("cannot open JSON file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_json(buffer.str(), JsonParseOptions{.allow_comments = true});
  } catch (const JsonError& error) {
    // Name the file: a batch over dozens of specs would otherwise report
    // a bare line:column with no hint of which input is malformed.
    throw JsonError(path + ": " + error.what());
  }
}

void write_json_file(const std::string& path, const Json& value, int indent) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw JsonError("cannot write JSON file: " + path);
  }
  std::string text;
  value.dump_to(text, indent);
  text.push_back('\n');
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace {

template <class Sink>
void dump_value(const Json& value, Sink& sink, int indent, int depth) {
  const auto newline_pad = [&](int d) {
    if (indent > 0) {
      sink.push('\n');
      sink.pad(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
    }
  };
  switch (value.type()) {
    case Json::Type::null:
      sink.append("null", 4);
      return;
    case Json::Type::boolean:
      if (value.as_bool()) {
        sink.append("true", 4);
      } else {
        sink.append("false", 5);
      }
      return;
    case Json::Type::number:
      detail::write_number_value(sink, value.as_number());
      return;
    case Json::Type::string:
      detail::write_escaped(sink, value.as_string());
      return;
    case Json::Type::array: {
      const auto& arr = value.as_array();
      if (arr.empty()) {
        sink.append("[]", 2);
        return;
      }
      sink.push('[');
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i != 0) sink.push(',');
        newline_pad(depth + 1);
        dump_value(arr[i], sink, indent, depth + 1);
      }
      newline_pad(depth);
      sink.push(']');
      return;
    }
    case Json::Type::object: {
      const auto& obj = value.as_object();
      if (obj.empty()) {
        sink.append("{}", 2);
        return;
      }
      sink.push('{');
      bool first = true;
      for (const auto& [key, member] : obj) {
        if (!first) sink.push(',');
        first = false;
        newline_pad(depth + 1);
        detail::write_escaped(sink, key);
        if (indent > 0) {
          sink.append(": ", 2);
        } else {
          sink.push(':');
        }
        dump_value(member, sink, indent, depth + 1);
      }
      newline_pad(depth);
      sink.push('}');
      return;
    }
  }
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent);
  return out;
}

void Json::dump_to(std::string& out, int indent) const {
  detail::StringSink sink{out};
  dump_value(*this, sink, indent, 0);
}

std::uint64_t Json::dump_to_hashed(std::string& out, int indent) const {
  detail::HashedStringSink sink{out};
  dump_value(*this, sink, indent, 0);
  return sink.hash;
}

std::uint64_t Json::canonical_digest() const {
  detail::HashSink sink;
  dump_value(*this, sink, /*indent=*/0, 0);
  return sink.hash;
}

}  // namespace greenfpga::io
