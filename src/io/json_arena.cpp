/// \file json_arena.cpp
/// Arena-backed JSON DOM: builder policy for the shared parser core,
/// bump allocator, canonical writer and facade materialization.

#include "io/json_arena.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <unordered_set>
#include <utility>

#include "io/json_detail.hpp"

namespace greenfpga::io {

namespace {

[[nodiscard]] const char* type_name(JsonNode::Type t) {
  switch (t) {
    case JsonNode::Type::null:
      return "null";
    case JsonNode::Type::boolean:
      return "boolean";
    case JsonNode::Type::number:
      return "number";
    case JsonNode::Type::string:
      return "string";
    case JsonNode::Type::array:
      return "array";
    case JsonNode::Type::object:
      return "object";
  }
  return "unknown";
}

[[noreturn]] void throw_type_error(JsonNode::Type expected, JsonNode::Type actual) {
  throw JsonError(std::string("JSON type error: expected ") + type_name(expected) + ", got " +
                  type_name(actual));
}

[[nodiscard]] std::uint32_t checked_count(std::size_t n) {
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw JsonError("JSON value exceeds the arena node count limit");
  }
  return static_cast<std::uint32_t>(n);
}

}  // namespace

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

void* JsonDocument::allocate(std::size_t bytes, std::size_t alignment) {
  if (!chunks_.empty()) {
    Chunk& chunk = chunks_.back();
    const std::size_t aligned = (chunk.used + alignment - 1) & ~(alignment - 1);
    if (aligned + bytes <= chunk.capacity) {
      chunk.used = aligned + bytes;
      return chunk.data.get() + aligned;
    }
  }
  // Geometric chunk growth, capped so a huge document does not overshoot
  // its footprint by more than ~1 MiB.  operator new[] storage is aligned
  // for every fundamental type, so offset 0 needs no fixup.
  constexpr std::size_t kMinChunk = std::size_t{4} << 10;
  constexpr std::size_t kMaxChunk = std::size_t{1} << 20;
  std::size_t capacity =
      chunks_.empty() ? kMinChunk : std::min(chunks_.back().capacity * 2, kMaxChunk);
  capacity = std::max(capacity, bytes);
  Chunk chunk;
  chunk.data = std::make_unique<char[]>(capacity);
  chunk.capacity = capacity;
  chunk.used = bytes;
  chunks_.push_back(std::move(chunk));
  return chunks_.back().data.get();
}

std::string_view JsonDocument::copy_bytes(std::string_view bytes) {
  if (bytes.empty()) return {};
  char* stored = static_cast<char*>(allocate(bytes.size(), 1));
  std::memcpy(stored, bytes.data(), bytes.size());
  return {stored, bytes.size()};
}

std::size_t JsonDocument::arena_bytes() const {
  std::size_t total = 0;
  for (const Chunk& chunk : chunks_) {
    total += chunk.capacity;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Builder policy for the shared parser core
// ---------------------------------------------------------------------------

/// Grows JsonNode trees into a JsonDocument's arena.  Children accumulate
/// on shared scratch stacks (`nodes_`, `members_`) and are copied into an
/// exactly-sized arena span when their container closes; keys are
/// interned so a grid result with thousands of identical member names
/// stores each name once.
class ArenaBuilder {
 public:
  explicit ArenaBuilder(JsonDocument& doc) : doc_(doc) {}

  using Value = JsonNode;

  struct ArrayCtx {
    std::size_t mark;  ///< nodes_ size at '['
  };
  struct ObjectCtx {
    std::size_t mark;     ///< members_ size at '{'
    std::size_t pending;  ///< index the next member_value fills
  };

  JsonNode null_value() { return JsonNode{}; }

  JsonNode boolean(bool b) {
    JsonNode node;
    node.type = JsonNode::Type::boolean;
    node.payload.boolean = b;
    return node;
  }

  JsonNode number(double n) {
    JsonNode node;
    node.type = JsonNode::Type::number;
    node.payload.number = n;
    return node;
  }

  JsonNode string_value(std::string_view s) {
    const std::string_view stored = doc_.copy_bytes(s);
    JsonNode node;
    node.type = JsonNode::Type::string;
    node.count = checked_count(s.size());
    node.payload.string = stored.data();
    return node;
  }

  ArrayCtx array_begin() { return {nodes_.size()}; }

  void array_push(ArrayCtx&, JsonNode value) { nodes_.push_back(value); }

  JsonNode array_end(ArrayCtx& ctx) {
    const std::size_t n = nodes_.size() - ctx.mark;
    JsonNode node;
    node.type = JsonNode::Type::array;
    node.count = checked_count(n);
    node.payload.elements = nullptr;
    if (n != 0) {
      auto* span = static_cast<JsonNode*>(
          doc_.allocate(n * sizeof(JsonNode), alignof(JsonNode)));
      std::memcpy(span, nodes_.data() + ctx.mark, n * sizeof(JsonNode));
      node.payload.elements = span;
      nodes_.resize(ctx.mark);
    }
    return node;
  }

  ObjectCtx object_begin() { return {members_.size(), 0}; }

  detail::MemberOrder member_key(ObjectCtx& ctx, std::string_view key) {
    if (members_.size() == ctx.mark || members_.back().key < key) {
      ctx.pending = members_.size();
      members_.push_back(JsonMember{intern(key), JsonNode{}});
      return detail::MemberOrder::appended;
    }
    const auto first = members_.begin() + static_cast<std::ptrdiff_t>(ctx.mark);
    const auto it = std::lower_bound(
        first, members_.end(), key,
        [](const JsonMember& m, std::string_view k) { return m.key < k; });
    if (it != members_.end() && it->key == key) {
      return detail::MemberOrder::duplicate;
    }
    ctx.pending = static_cast<std::size_t>(it - members_.begin());
    members_.insert(it, JsonMember{intern(key), JsonNode{}});
    return detail::MemberOrder::inserted;
  }

  void member_value(ObjectCtx& ctx, JsonNode value) { members_[ctx.pending].value = value; }

  JsonNode object_end(ObjectCtx& ctx) {
    const std::size_t n = members_.size() - ctx.mark;
    JsonNode node;
    node.type = JsonNode::Type::object;
    node.count = checked_count(n);
    node.payload.members = nullptr;
    if (n != 0) {
      auto* span = static_cast<JsonMember*>(
          doc_.allocate(n * sizeof(JsonMember), alignof(JsonMember)));
      std::memcpy(span, members_.data() + ctx.mark, n * sizeof(JsonMember));
      node.payload.members = span;
      members_.resize(ctx.mark);
    }
    return node;
  }

 private:
  std::string_view intern(std::string_view key) {
    const auto it = interned_.find(key);
    if (it != interned_.end()) return *it;
    const std::string_view stored = doc_.copy_bytes(key);
    interned_.insert(stored);
    return stored;
  }

  JsonDocument& doc_;
  std::vector<JsonNode> nodes_;
  std::vector<JsonMember> members_;
  std::unordered_set<std::string_view> interned_;
};

JsonDocument parse_json_arena(std::string_view text, JsonParseOptions options,
                              bool hash_canonical) {
  JsonDocument doc;
  ArenaBuilder builder(doc);
  detail::ParserCore<ArenaBuilder> parser(text, options, builder, hash_canonical);
  doc.root_ = parser.parse_document();
  doc.parse_digest_ = parser.canonical_digest();
  return doc;
}

// ---------------------------------------------------------------------------
// Views
// ---------------------------------------------------------------------------

bool JsonView::as_bool() const {
  if (!is_bool()) throw_type_error(Type::boolean, type());
  return node_->payload.boolean;
}

double JsonView::as_number() const {
  if (!is_number()) throw_type_error(Type::number, type());
  return node_->payload.number;
}

double JsonView::as_number_total() const {
  if (is_string()) {
    const std::string_view s = as_string();
    if (s == "inf") return std::numeric_limits<double>::infinity();
    if (s == "-inf") return -std::numeric_limits<double>::infinity();
    if (s == "nan") return std::numeric_limits<double>::quiet_NaN();
  }
  if (!is_number()) throw_type_error(Type::number, type());
  return node_->payload.number;
}

std::string_view JsonView::as_string() const {
  if (!is_string()) throw_type_error(Type::string, type());
  return {node_->payload.string, node_->count};
}

std::size_t JsonView::size() const {
  if (is_array() || is_object()) return node_->count;
  throw JsonError("size() requires a JSON array or object");
}

std::span<const JsonMember> JsonView::members() const {
  if (!is_object()) throw_type_error(Type::object, type());
  return {node_->payload.members, node_->count};
}

std::span<const JsonNode> JsonView::elements() const {
  if (!is_array()) throw_type_error(Type::array, type());
  return {node_->payload.elements, node_->count};
}

const JsonMember* JsonView::find(std::string_view key) const {
  const std::span<const JsonMember> span = members();
  const auto it = std::lower_bound(
      span.begin(), span.end(), key,
      [](const JsonMember& m, std::string_view k) { return m.key < k; });
  if (it != span.end() && it->key == key) return &*it;
  return nullptr;
}

JsonView JsonView::at(std::string_view key) const {
  const JsonMember* member = find(key);
  if (member == nullptr) {
    throw JsonError("JSON object has no member \"" + std::string(key) + "\"");
  }
  return JsonView(&member->value);
}

JsonView JsonView::at(std::size_t index) const {
  const std::span<const JsonNode> span = elements();
  if (index >= span.size()) {
    throw JsonError("JSON array index " + std::to_string(index) + " out of range (size " +
                    std::to_string(span.size()) + ")");
  }
  return JsonView(&span[index]);
}

bool JsonView::contains(std::string_view key) const {
  return is_object() && find(key) != nullptr;
}

double JsonView::number_or(std::string_view key, double fallback) const {
  return contains(key) ? at(key).as_number() : fallback;
}

// ---------------------------------------------------------------------------
// Writer and facade materialization
// ---------------------------------------------------------------------------

namespace {

template <class Sink>
void dump_node(const JsonNode& node, Sink& sink, int indent, int depth) {
  const auto newline_pad = [&](int d) {
    if (indent > 0) {
      sink.push('\n');
      sink.pad(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
    }
  };
  switch (node.type) {
    case JsonNode::Type::null:
      sink.append("null", 4);
      return;
    case JsonNode::Type::boolean:
      if (node.payload.boolean) {
        sink.append("true", 4);
      } else {
        sink.append("false", 5);
      }
      return;
    case JsonNode::Type::number:
      detail::write_number_value(sink, node.payload.number);
      return;
    case JsonNode::Type::string:
      detail::write_escaped(sink, std::string_view(node.payload.string, node.count));
      return;
    case JsonNode::Type::array: {
      if (node.count == 0) {
        sink.append("[]", 2);
        return;
      }
      sink.push('[');
      for (std::uint32_t i = 0; i < node.count; ++i) {
        if (i != 0) sink.push(',');
        newline_pad(depth + 1);
        dump_node(node.payload.elements[i], sink, indent, depth + 1);
      }
      newline_pad(depth);
      sink.push(']');
      return;
    }
    case JsonNode::Type::object: {
      if (node.count == 0) {
        sink.append("{}", 2);
        return;
      }
      sink.push('{');
      for (std::uint32_t i = 0; i < node.count; ++i) {
        const JsonMember& member = node.payload.members[i];
        if (i != 0) sink.push(',');
        newline_pad(depth + 1);
        detail::write_escaped(sink, member.key);
        if (indent > 0) {
          sink.append(": ", 2);
        } else {
          sink.push(':');
        }
        dump_node(member.value, sink, indent, depth + 1);
      }
      newline_pad(depth);
      sink.push('}');
      return;
    }
  }
}

[[nodiscard]] Json node_to_json(const JsonNode& node) {
  switch (node.type) {
    case JsonNode::Type::null:
      return Json(nullptr);
    case JsonNode::Type::boolean:
      return Json(node.payload.boolean);
    case JsonNode::Type::number:
      return Json(node.payload.number);
    case JsonNode::Type::string:
      return Json(std::string(node.payload.string, node.count));
    case JsonNode::Type::array: {
      Json::Array elements;
      elements.reserve(node.count);
      for (std::uint32_t i = 0; i < node.count; ++i) {
        elements.push_back(node_to_json(node.payload.elements[i]));
      }
      return Json(std::move(elements));
    }
    case JsonNode::Type::object: {
      JsonObject::Storage members;
      members.reserve(node.count);
      for (std::uint32_t i = 0; i < node.count; ++i) {
        const JsonMember& member = node.payload.members[i];
        members.emplace_back(std::string(member.key), node_to_json(member.value));
      }
      // Arena members are already sorted by key.
      return Json(JsonObject::adopt_sorted(std::move(members)));
    }
  }
  return Json(nullptr);
}

}  // namespace

std::string JsonDocument::dump(int indent) const {
  std::string out;
  dump_to(out, indent);
  return out;
}

void JsonDocument::dump_to(std::string& out, int indent) const {
  detail::StringSink sink{out};
  dump_node(root_, sink, indent, 0);
}

std::uint64_t JsonDocument::canonical_digest() const {
  detail::HashSink sink;
  dump_node(root_, sink, /*indent=*/0, 0);
  return sink.hash;
}

Json JsonDocument::to_json() const { return node_to_json(root_); }

}  // namespace greenfpga::io
