/// \file csv.cpp
/// RFC 4180 CSV rendering and file emission.

#include "io/csv.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace greenfpga::io {

void CsvWriter::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void CsvWriter::add_row(std::initializer_list<std::string> cells) {
  rows_.emplace_back(cells);
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return cell;
  }
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string CsvWriter::render() const {
  std::string out;
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out.push_back(',');
      out += escape(row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

void CsvWriter::write_file(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  out << render();
}

}  // namespace greenfpga::io
