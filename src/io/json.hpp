#ifndef GREENFPGA_IO_JSON_HPP
#define GREENFPGA_IO_JSON_HPP

/// \file json.hpp
/// A small, dependency-free JSON document model, parser and writer.
///
/// GreenFPGA scenario configurations and machine-readable experiment
/// outputs are JSON.  The library has no external dependencies beyond the
/// test/bench frameworks, so JSON support is implemented here: a strict
/// RFC 8259 parser (with the common relaxation of allowing a UTF-8 BOM and
/// `//` comments in *config* mode), a pretty-printing writer, and a value
/// model with checked accessors that raise `JsonError` with a useful path.

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace greenfpga::io {

/// Raised on malformed JSON text or on type-mismatched access to a value.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& message) : std::runtime_error(message) {}
};

/// A JSON value: null, boolean, number, string, array or object.
///
/// Objects preserve no insertion order; keys are kept sorted (std::map) so
/// serialized output is deterministic, which keeps golden-file tests stable.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json, std::less<>>;

  enum class Type { null, boolean, number, string, array, object };

  // -- constructors ----------------------------------------------------------
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}                      // NOLINT
  Json(bool b) : value_(b) {}                                    // NOLINT
  Json(double n) : value_(n) {}                                  // NOLINT
  Json(int n) : value_(static_cast<double>(n)) {}                // NOLINT
  Json(std::int64_t n) : value_(static_cast<double>(n)) {}       // NOLINT
  Json(std::size_t n) : value_(static_cast<double>(n)) {}        // NOLINT
  Json(const char* s) : value_(std::string(s)) {}                // NOLINT
  Json(std::string s) : value_(std::move(s)) {}                  // NOLINT
  Json(std::string_view s) : value_(std::string(s)) {}           // NOLINT
  Json(Array a) : value_(std::move(a)) {}                        // NOLINT
  Json(Object o) : value_(std::move(o)) {}                       // NOLINT

  /// Convenience factory for object literals:
  ///   Json::object({{"a", 1.0}, {"b", "x"}})
  [[nodiscard]] static Json object(
      std::initializer_list<std::pair<const std::string, Json>> members = {});
  /// Convenience factory for array literals: Json::array({1.0, 2.0}).
  [[nodiscard]] static Json array(std::initializer_list<Json> elements = {});

  // -- classification ---------------------------------------------------------
  [[nodiscard]] Type type() const;
  [[nodiscard]] bool is_null() const { return type() == Type::null; }
  [[nodiscard]] bool is_bool() const { return type() == Type::boolean; }
  [[nodiscard]] bool is_number() const { return type() == Type::number; }
  [[nodiscard]] bool is_string() const { return type() == Type::string; }
  [[nodiscard]] bool is_array() const { return type() == Type::array; }
  [[nodiscard]] bool is_object() const { return type() == Type::object; }

  // -- checked accessors (throw JsonError on type mismatch) --------------------
  [[nodiscard]] bool as_bool() const;
  /// Strict number access: a JSON number only.  The non-finite string
  /// sentinels are *not* accepted here, so spec/config readers cannot be
  /// fed smuggled inf/NaN values that evade range validation.
  [[nodiscard]] double as_number() const;
  /// Total number access: a JSON number, or one of the canonical
  /// non-finite string sentinels "inf" / "-inf" / "nan" (which is how
  /// `dump` writes non-finite doubles, JSON having no literal for them).
  /// Used by the *result* re-import paths, whose only producer is the
  /// canonical writer, so any number it emits reads back bit-identically.
  [[nodiscard]] double as_number_total() const;
  [[nodiscard]] std::int64_t as_int() const;  ///< number, checked integral
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Object member access; throws JsonError naming the missing key.
  [[nodiscard]] const Json& at(std::string_view key) const;
  /// Array element access with bounds check.
  [[nodiscard]] const Json& at(std::size_t index) const;
  [[nodiscard]] bool contains(std::string_view key) const;
  [[nodiscard]] std::size_t size() const;

  /// `object[key]` that inserts a null member when absent (build-side API).
  Json& operator[](const std::string& key);

  /// Typed lookups with defaults, for optional config fields.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key, std::string fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;

  /// Append to an array value.
  void push_back(Json element);

  /// Serialize; `indent` <= 0 yields compact single-line output.
  /// Non-finite numbers serialize as the string sentinels "inf" / "-inf"
  /// / "nan" (RFC 8259 has no number syntax for them; the old behaviour
  /// of emitting `null` silently broke the documented total round-trip).
  /// `as_number()` reverses the encoding on read.
  [[nodiscard]] std::string dump(int indent = 2) const;

  friend bool operator==(const Json& a, const Json& b) = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

/// Parser options; `allow_comments` additionally accepts `//`-to-end-of-line
/// comments (used for hand-written scenario configs).  `max_depth` caps
/// array/object nesting: a recursive-descent parser consumes one stack
/// frame per level, so without a cap a `[[[[...` bomb overflows the stack
/// instead of failing cleanly (exceeding it raises JsonError with the
/// usual line:column position).
struct JsonParseOptions {
  bool allow_comments = false;
  int max_depth = 256;
};

/// Shortest decimal form of `n` that parses back to exactly the same
/// double (the JSON writer's number format).  Non-finite values render as
/// the text sentinels "inf" / "-inf" / "nan" (quoted as strings in JSON
/// output -- see `Json::dump` -- and bare in CSV).  Shared by every
/// machine-readable emitter so a value exported anywhere re-imports
/// bit-identically: `as_number()` decodes the sentinels back to the
/// non-finite double.
[[nodiscard]] std::string format_number(double n);

/// Parse a complete JSON document.  Throws JsonError with 1-based
/// line:column on malformed input or trailing garbage.
[[nodiscard]] Json parse_json(std::string_view text, JsonParseOptions options = {});

/// Read and parse a JSON file (comments allowed: files are configs).
[[nodiscard]] Json parse_json_file(const std::string& path);

/// Write `value` to `path` (pretty-printed), creating parent dirs if needed.
void write_json_file(const std::string& path, const Json& value, int indent = 2);

}  // namespace greenfpga::io

#endif  // GREENFPGA_IO_JSON_HPP
