#ifndef GREENFPGA_IO_JSON_HPP
#define GREENFPGA_IO_JSON_HPP

/// \file json.hpp
/// A small, dependency-free JSON document model, parser and writer.
///
/// GreenFPGA scenario configurations and machine-readable experiment
/// outputs are JSON.  The library has no external dependencies beyond the
/// test/bench frameworks, so JSON support is implemented here: a strict
/// RFC 8259 parser (with the common relaxation of allowing a UTF-8 BOM and
/// `//` comments in *config* mode), a pretty-printing writer, and a value
/// model with checked accessors that raise `JsonError` with a useful path.
///
/// Two document models share one parser and one writer (src/io/json_detail.hpp):
///
///   * `Json` (here) -- the mutable value facade every caller builds and
///     edits.  Objects are sorted flat vectors (`JsonObject`), not
///     node-per-member maps, so parsing canonical (already key-sorted)
///     input appends in O(1) with no per-member tree allocation, and
///     iteration order is the canonical dump order by construction.
///   * `JsonDocument` (json_arena.hpp) -- an immutable arena-backed DOM
///     for read-mostly hot paths (serve request ingestion): every node,
///     string and member span lives in one monotonic buffer owned by the
///     document.
///
/// Both parsers can compute the FNV-1a digest of the document's canonical
/// compact byte stream *while parsing* (`parse_json_hashed`), so a serve
/// request can be fingerprinted without ever re-serializing it.

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace greenfpga::io {

class Json;

/// Raised on malformed JSON text or on type-mismatched access to a value.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& message) : std::runtime_error(message) {}
};

/// A JSON object: members kept sorted by key in one flat vector.
///
/// The sorted flat layout replaces the old `std::map` storage: no
/// per-member tree node, cache-friendly iteration in canonical dump
/// order, O(log n) lookup by binary search, and O(1) append when keys
/// arrive already sorted (true of every canonical artifact this repo
/// round-trips).  Mutation via `operator[]`/`erase` is O(n) -- fine for
/// the build-side API, which assembles small documents.
///
/// Iterators and member references follow std::vector rules: any insert
/// or erase may invalidate all of them (the std::map guarantee of stable
/// references is gone -- do not hold a `Json&` into an object across a
/// mutation of that object).
class JsonObject {
 public:
  using Member = std::pair<std::string, Json>;
  using Storage = std::vector<Member>;
  using value_type = Member;
  using iterator = Storage::iterator;
  using const_iterator = Storage::const_iterator;

  JsonObject() = default;

  /// Adopt a member vector that is already sorted by key with no
  /// duplicates (the parser's and the arena materializer's fast path).
  /// Precondition checked in debug builds only.
  [[nodiscard]] static JsonObject adopt_sorted(Storage members);

  [[nodiscard]] iterator begin() { return members_.begin(); }
  [[nodiscard]] iterator end() { return members_.end(); }
  [[nodiscard]] const_iterator begin() const { return members_.begin(); }
  [[nodiscard]] const_iterator end() const { return members_.end(); }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }
  void reserve(std::size_t n) { members_.reserve(n); }

  [[nodiscard]] iterator find(std::string_view key);
  [[nodiscard]] const_iterator find(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const;

  /// Checked member access; throws JsonError naming the missing key.
  [[nodiscard]] Json& at(std::string_view key);
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Insert-or-find: a null member is created when `key` is absent.
  Json& operator[](std::string_view key);

  /// Remove `key` if present; returns the number of members removed (0/1),
  /// matching the std::map::erase signature callers relied on.
  std::size_t erase(std::string_view key);

  friend bool operator==(const JsonObject& a, const JsonObject& b) = default;

 private:
  /// First member whose key is >= `key` (insertion point / lookup probe).
  [[nodiscard]] Storage::const_iterator lower_bound(std::string_view key) const;

  Storage members_;  ///< sorted by key, unique
};

/// A JSON value: null, boolean, number, string, array or object.
///
/// Objects preserve no insertion order; keys are kept sorted (JsonObject)
/// so serialized output is deterministic, which keeps golden-file tests
/// stable.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = JsonObject;

  enum class Type { null, boolean, number, string, array, object };

  // -- constructors ----------------------------------------------------------
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}                      // NOLINT
  Json(bool b) : value_(b) {}                                    // NOLINT
  Json(double n) : value_(n) {}                                  // NOLINT
  Json(int n) : value_(static_cast<double>(n)) {}                // NOLINT
  Json(std::int64_t n) : value_(static_cast<double>(n)) {}       // NOLINT
  Json(std::size_t n) : value_(static_cast<double>(n)) {}        // NOLINT
  Json(const char* s) : value_(std::string(s)) {}                // NOLINT
  Json(std::string s) : value_(std::move(s)) {}                  // NOLINT
  Json(std::string_view s) : value_(std::string(s)) {}           // NOLINT
  Json(Array a) : value_(std::move(a)) {}                        // NOLINT
  Json(Object o) : value_(std::move(o)) {}                       // NOLINT

  /// Convenience factory for object literals:
  ///   Json::object({{"a", 1.0}, {"b", "x"}})
  [[nodiscard]] static Json object(
      std::initializer_list<std::pair<const std::string, Json>> members = {});
  /// Convenience factory for array literals: Json::array({1.0, 2.0}).
  [[nodiscard]] static Json array(std::initializer_list<Json> elements = {});

  // -- classification ---------------------------------------------------------
  [[nodiscard]] Type type() const;
  [[nodiscard]] bool is_null() const { return type() == Type::null; }
  [[nodiscard]] bool is_bool() const { return type() == Type::boolean; }
  [[nodiscard]] bool is_number() const { return type() == Type::number; }
  [[nodiscard]] bool is_string() const { return type() == Type::string; }
  [[nodiscard]] bool is_array() const { return type() == Type::array; }
  [[nodiscard]] bool is_object() const { return type() == Type::object; }

  // -- checked accessors (throw JsonError on type mismatch) --------------------
  [[nodiscard]] bool as_bool() const;
  /// Strict number access: a JSON number only.  The non-finite string
  /// sentinels are *not* accepted here, so spec/config readers cannot be
  /// fed smuggled inf/NaN values that evade range validation.
  [[nodiscard]] double as_number() const;
  /// Total number access: a JSON number, or one of the canonical
  /// non-finite string sentinels "inf" / "-inf" / "nan" (which is how
  /// `dump` writes non-finite doubles, JSON having no literal for them).
  /// Used by the *result* re-import paths, whose only producer is the
  /// canonical writer, so any number it emits reads back bit-identically.
  [[nodiscard]] double as_number_total() const;
  [[nodiscard]] std::int64_t as_int() const;  ///< number, checked integral
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Object member access; throws JsonError naming the missing key.
  [[nodiscard]] const Json& at(std::string_view key) const;
  /// Array element access with bounds check.
  [[nodiscard]] const Json& at(std::size_t index) const;
  [[nodiscard]] bool contains(std::string_view key) const;
  [[nodiscard]] std::size_t size() const;

  /// `object[key]` that inserts a null member when absent (build-side API).
  Json& operator[](const std::string& key);

  /// Typed lookups with defaults, for optional config fields.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key, std::string fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;

  /// Append to an array value.
  void push_back(Json element);

  /// Serialize; `indent` <= 0 yields compact single-line output.
  /// Non-finite numbers serialize as the string sentinels "inf" / "-inf"
  /// / "nan" (RFC 8259 has no number syntax for them; the old behaviour
  /// of emitting `null` silently broke the documented total round-trip).
  /// `as_number()` reverses the encoding on read.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Serialize by *appending* to `out` -- same bytes as `dump`, no
  /// intermediate temporaries.  The path large results, serve response
  /// bodies and `write_json_file` take.
  void dump_to(std::string& out, int indent = 2) const;

  /// `dump_to` that additionally returns the FNV-1a digest of exactly the
  /// appended bytes, computed in the same pass (hash-while-dump).  This is
  /// how `Engine` derives cache key bytes and their fingerprint together.
  std::uint64_t dump_to_hashed(std::string& out, int indent = 2) const;

  /// FNV-1a digest of the canonical compact dump (`dump(0)` bytes)
  /// without materializing it: the writer streams into the hash only.
  [[nodiscard]] std::uint64_t canonical_digest() const;

  friend bool operator==(const Json& a, const Json& b) = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

// JsonObject members that need Json complete.

inline JsonObject::Storage::const_iterator JsonObject::lower_bound(std::string_view key) const {
  auto lo = members_.begin();
  auto hi = members_.end();
  while (lo != hi) {
    const auto mid = lo + (hi - lo) / 2;
    if (std::string_view(mid->first) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

inline JsonObject::const_iterator JsonObject::find(std::string_view key) const {
  const auto it = lower_bound(key);
  if (it != members_.end() && it->first == key) return it;
  return members_.end();
}

inline JsonObject::iterator JsonObject::find(std::string_view key) {
  const auto it = static_cast<const JsonObject&>(*this).find(key);
  return members_.begin() + (it - members_.cbegin());
}

inline bool JsonObject::contains(std::string_view key) const {
  return find(key) != members_.end();
}

inline const Json& JsonObject::at(std::string_view key) const {
  const auto it = find(key);
  if (it == members_.end()) {
    throw JsonError("JSON object has no member \"" + std::string(key) + "\"");
  }
  return it->second;
}

inline Json& JsonObject::at(std::string_view key) {
  const auto it = find(key);
  if (it == members_.end()) {
    throw JsonError("JSON object has no member \"" + std::string(key) + "\"");
  }
  return it->second;
}

inline Json& JsonObject::operator[](std::string_view key) {
  const auto pos = lower_bound(key);
  const auto index = pos - members_.cbegin();
  if (pos != members_.cend() && pos->first == key) {
    return members_[static_cast<std::size_t>(index)].second;
  }
  members_.emplace(members_.begin() + index, std::string(key), Json());
  return members_[static_cast<std::size_t>(index)].second;
}

inline std::size_t JsonObject::erase(std::string_view key) {
  const auto it = find(key);
  if (it == members_.end()) return 0;
  members_.erase(it);
  return 1;
}

inline JsonObject JsonObject::adopt_sorted(Storage members) {
  JsonObject object;
  object.members_ = std::move(members);
  return object;
}

/// Parser options; `allow_comments` additionally accepts `//`-to-end-of-line
/// comments (used for hand-written scenario configs).  `max_depth` caps
/// array/object nesting: a recursive-descent parser consumes one stack
/// frame per level, so without a cap a `[[[[...` bomb overflows the stack
/// instead of failing cleanly (exceeding it raises JsonError with the
/// usual line:column position).
struct JsonParseOptions {
  bool allow_comments = false;
  int max_depth = 256;
};

/// Shortest decimal form of `n` that parses back to exactly the same
/// double (the JSON writer's number format).  Non-finite values render as
/// the text sentinels "inf" / "-inf" / "nan" (quoted as strings in JSON
/// output -- see `Json::dump` -- and bare in CSV).  Shared by every
/// machine-readable emitter so a value exported anywhere re-imports
/// bit-identically: `as_number()` decodes the sentinels back to the
/// non-finite double.
[[nodiscard]] std::string format_number(double n);

/// Parse a complete JSON document.  Throws JsonError with 1-based
/// line:column on malformed input or trailing garbage.
[[nodiscard]] Json parse_json(std::string_view text, JsonParseOptions options = {});

/// `parse_json` plus hash-while-parse: when every object's keys arrive
/// already sorted (true of canonical artifacts: dumps, cache entries,
/// spec round-trips), `canonical_digest` holds the FNV-1a of the
/// document's canonical compact byte stream -- the same value
/// `value.canonical_digest()` would compute, for free.  Out-of-order keys
/// leave it empty (the document still parses normally).
struct ParsedJson {
  Json value;
  std::optional<std::uint64_t> canonical_digest;
};
[[nodiscard]] ParsedJson parse_json_hashed(std::string_view text,
                                           JsonParseOptions options = {});

/// Read and parse a JSON file (comments allowed: files are configs).
/// Errors -- unreadable file or malformed JSON -- name the file path
/// ahead of the parser's line:column position.
[[nodiscard]] Json parse_json_file(const std::string& path);

/// Write `value` to `path` (pretty-printed), creating parent dirs if needed.
void write_json_file(const std::string& path, const Json& value, int indent = 2);

}  // namespace greenfpga::io

#endif  // GREENFPGA_IO_JSON_HPP
