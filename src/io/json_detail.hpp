#ifndef GREENFPGA_IO_JSON_DETAIL_HPP
#define GREENFPGA_IO_JSON_DETAIL_HPP

/// \file json_detail.hpp
/// Shared internals of the JSON facade (json.cpp) and the arena DOM
/// (json_arena.cpp).  Not part of the public io:: API.
///
/// Three pieces live here so the two DOMs can never drift apart on the
/// wire format:
///
///   * `format_number_to` -- the shortest-round-trip number formatter
///     (printf %g presentation reconstructed from std::to_chars shortest
///     digits; byte-identical to the historical snprintf probe loop, at
///     roughly one to_chars call per number instead of up to twelve
///     snprintf+from_chars probes);
///   * sink-templated writing -- `write_escaped` / `write_number_value`
///     emit into any Sink (append bytes / append + FNV-1a / FNV-1a only),
///     which is how `dump_to`, `dump_to_hashed` and the allocation-free
///     `canonical_digest` share one writer;
///   * `ParserCore<Builder>` -- the recursive-descent RFC 8259 parser,
///     templated on a builder policy so the same lexer/validator grows
///     either the mutable `Json` facade or the immutable arena document,
///     and computes the canonical-stream FNV-1a digest *while parsing*
///     (valid whenever object keys arrive already sorted, which is true
///     of every canonical artifact this repo emits).

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>

#include "io/hash.hpp"
#include "io/json.hpp"

namespace greenfpga::io::detail {

inline constexpr std::uint64_t kFnvOffset = kFnv1aOffset;
inline constexpr std::uint64_t kFnvPrime = kFnv1aPrime;

/// Upper bound on the bytes `format_number_to` writes (sign + 17 digits +
/// point + "e-308" leaves ample slack).
inline constexpr std::size_t kNumberBufferSize = 40;

/// Write the canonical shortest-round-trip form of `n` into `buffer`
/// (bare non-finite sentinels "inf"/"-inf"/"nan"); returns the length.
/// Defined in json.cpp; `io::format_number` is a std::string wrapper.
std::size_t format_number_to(char* buffer, double n);

// -- writer sinks -----------------------------------------------------------

/// Appends bytes to a std::string.
struct StringSink {
  std::string& out;
  void append(const char* data, std::size_t n) { out.append(data, n); }
  void push(char c) { out.push_back(c); }
  void pad(std::size_t n, char c) { out.append(n, c); }
};

/// Folds bytes into a streaming FNV-1a digest; nothing is materialized.
struct HashSink {
  std::uint64_t hash = kFnvOffset;
  void append(const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) push(data[i]);
  }
  void push(char c) {
    hash = (hash ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
  void pad(std::size_t n, char c) {
    while (n-- > 0) push(c);
  }
};

/// Appends and digests in one pass (hash-while-dump: `dump_to_hashed`).
struct HashedStringSink {
  std::string& out;
  std::uint64_t hash = kFnvOffset;
  void append(const char* data, std::size_t n) {
    out.append(data, n);
    for (std::size_t i = 0; i < n; ++i) {
      hash = (hash ^ static_cast<unsigned char>(data[i])) * kFnvPrime;
    }
  }
  void push(char c) {
    out.push_back(c);
    hash = (hash ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
  void pad(std::size_t n, char c) {
    while (n-- > 0) push(c);
  }
};

/// JSON string escaping (quotes included), identical bytes for every sink.
template <class Sink>
void write_escaped(Sink& sink, std::string_view s) {
  sink.push('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        sink.append("\\\"", 2);
        break;
      case '\\':
        sink.append("\\\\", 2);
        break;
      case '\b':
        sink.append("\\b", 2);
        break;
      case '\f':
        sink.append("\\f", 2);
        break;
      case '\n':
        sink.append("\\n", 2);
        break;
      case '\r':
        sink.append("\\r", 2);
        break;
      case '\t':
        sink.append("\\t", 2);
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          const int n = std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          sink.append(buffer, static_cast<std::size_t>(n));
        } else {
          sink.push(c);
        }
    }
  }
  sink.push('"');
}

/// A number in value position: bare when finite, a *quoted* sentinel when
/// not (RFC 8259 has no inf/nan literal; `as_number_total` reverses it).
template <class Sink>
void write_number_value(Sink& sink, double n) {
  char buffer[kNumberBufferSize];
  const std::size_t length = format_number_to(buffer, n);
  if (!std::isfinite(n)) {
    sink.push('"');
    sink.append(buffer, length);
    sink.push('"');
    return;
  }
  sink.append(buffer, length);
}

// -- parser core ------------------------------------------------------------

/// How a member landed in its object, from the builder's point of view.
enum class MemberOrder {
  appended,  ///< key was greater than every existing key (sorted input)
  inserted,  ///< key was out of order and had to be placed mid-vector
  duplicate  ///< key already present: the parser rejects the document
};

/// The recursive-descent parser, templated on a builder policy.
///
/// Builder interface (see FacadeBuilder in json.cpp, ArenaBuilder in
/// json_arena.cpp):
///
///   using Value = ...;            // movable node handle
///   struct ArrayCtx; struct ObjectCtx;
///   Value null_value();  Value boolean(bool);  Value number(double);
///   Value string_value(std::string_view decoded);   // must copy
///   ArrayCtx array_begin();
///   void array_push(ArrayCtx&, Value);
///   Value array_end(ArrayCtx&);
///   ObjectCtx object_begin();
///   MemberOrder member_key(ObjectCtx&, std::string_view key);  // must copy
///   void member_value(ObjectCtx&, Value);  // fills the pending member
///   Value object_end(ObjectCtx&);
///
/// `member_key` is called before the member's value is parsed (the key
/// view dies at the next lexer step, so the builder copies it there) and
/// reports ordering, which drives both sorted storage and the
/// hash-while-parse validity bit.
template <class Builder>
class ParserCore {
 public:
  ParserCore(std::string_view text, JsonParseOptions options, Builder& builder,
             bool hash_canonical)
      : text_(text), options_(options), builder_(builder), hashing_(hash_canonical) {
    // Skip a UTF-8 byte-order mark if present.
    if (text_.substr(0, 3) == "\xEF\xBB\xBF") {
      pos_ = 3;
    }
  }

  typename Builder::Value parse_document() {
    typename Builder::Value value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return value;
  }

  /// The FNV-1a digest of the document's canonical compact byte stream
  /// (`Json::dump(0)` bytes), when it could be computed during the parse:
  /// hashing was requested and every object's keys arrived sorted.
  [[nodiscard]] std::optional<std::uint64_t> canonical_digest() const {
    if (hashing_) return hash_.hash;
    return std::nullopt;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonError("JSON parse error at " + std::to_string(line) + ":" +
                    std::to_string(column) + ": " + message);
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (options_.allow_comments && c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (!at_end() && text_[pos_] != '\n') {
          ++pos_;
        }
      } else {
        break;
      }
    }
  }

  typename Builder::Value parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        const std::string_view s = parse_string();
        if (hashing_) write_escaped(hash_, s);
        return builder_.string_value(s);
      }
      case 't':
        parse_keyword("true");
        return builder_.boolean(true);
      case 'f':
        parse_keyword("false");
        return builder_.boolean(false);
      case 'n':
        parse_keyword("null");
        return builder_.null_value();
      default:
        return parse_number();
    }
  }

  void parse_keyword(std::string_view keyword) {
    if (text_.substr(pos_, keyword.size()) != keyword) {
      fail("invalid literal (expected '" + std::string(keyword) + "')");
    }
    pos_ += keyword.size();
    if (hashing_) hash_.append(keyword.data(), keyword.size());
  }

  /// RAII nesting guard: one per parse_object/parse_array activation.
  /// The recursive-descent parser spends one stack frame per level, so
  /// the cap turns a deeply-nested bomb ("["*100k) into a JsonError at
  /// the offending bracket instead of a stack overflow.
  class DepthGuard {
   public:
    explicit DepthGuard(ParserCore& parser) : parser_(parser) {
      if (++parser_.depth_ > parser_.options_.max_depth) {
        parser_.fail("nesting depth exceeds " + std::to_string(parser_.options_.max_depth));
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    ParserCore& parser_;
  };

  typename Builder::Value parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    if (hashing_) hash_.push('{');
    typename Builder::ObjectCtx ctx = builder_.object_begin();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      if (hashing_) hash_.push('}');
      return builder_.object_end(ctx);
    }
    bool first = true;
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected string key in object");
      const std::string_view key = parse_string();
      const MemberOrder order = builder_.member_key(ctx, key);
      if (order == MemberOrder::duplicate) {
        fail("duplicate object key");
      }
      if (order == MemberOrder::inserted) {
        // Keys out of source order: the canonical (sorted) byte stream
        // can no longer be reproduced on the fly.
        hashing_ = false;
      }
      if (hashing_) {
        if (!first) hash_.push(',');
        write_escaped(hash_, key);
        hash_.push(':');
      }
      first = false;
      skip_whitespace();
      expect(':');
      builder_.member_value(ctx, parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      if (hashing_) hash_.push('}');
      return builder_.object_end(ctx);
    }
  }

  typename Builder::Value parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    if (hashing_) hash_.push('[');
    typename Builder::ArrayCtx ctx = builder_.array_begin();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      if (hashing_) hash_.push(']');
      return builder_.array_end(ctx);
    }
    bool first = true;
    while (true) {
      if (hashing_ && !first) hash_.push(',');
      first = false;
      builder_.array_push(ctx, parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      if (hashing_) hash_.push(']');
      return builder_.array_end(ctx);
    }
  }

  /// Decoded string contents.  The view aliases the source text when the
  /// string has no escapes, the parser's scratch buffer otherwise; either
  /// way it is only valid until the next lexer step, so builders copy.
  std::string_view parse_string() {
    expect('"');
    const std::size_t start = pos_;
    // Fast scan: most strings (keys in particular) contain no escapes and
    // no control characters, so the common case is one pass + zero copies.
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        const std::string_view plain = text_.substr(start, pos_ - start);
        ++pos_;
        return plain;
      }
      if (c == '\\' || static_cast<unsigned char>(c) < 0x20) break;
      ++pos_;
    }
    // Slow path: copy the clean prefix, then decode escape by escape.
    scratch_.assign(text_.data() + start, pos_ - start);
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = advance();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        // Bulk-copy the clean run that starts at this character.
        const std::size_t run = pos_ - 1;
        while (pos_ < text_.size()) {
          const char d = text_[pos_];
          if (d == '"' || d == '\\' || static_cast<unsigned char>(d) < 0x20) break;
          ++pos_;
        }
        scratch_.append(text_.data() + run, pos_ - run);
        continue;
      }
      const char esc = advance();
      switch (esc) {
        case '"':
          scratch_.push_back('"');
          break;
        case '\\':
          scratch_.push_back('\\');
          break;
        case '/':
          scratch_.push_back('/');
          break;
        case 'b':
          scratch_.push_back('\b');
          break;
        case 'f':
          scratch_.push_back('\f');
          break;
        case 'n':
          scratch_.push_back('\n');
          break;
        case 'r':
          scratch_.push_back('\r');
          break;
        case 't':
          scratch_.push_back('\t');
          break;
        case 'u':
          append_unicode_escape(scratch_);
          break;
        default:
          fail("invalid escape sequence");
      }
    }
    return scratch_;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    // Surrogate pair handling for characters outside the BMP.
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 1 < text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
        pos_ += 2;
        const unsigned low = parse_hex4();
        if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
      } else {
        fail("unpaired high surrogate");
      }
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    // Encode as UTF-8.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = advance();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return value;
  }

  typename Builder::Value parse_number() {
    const std::size_t start = pos_;
    const char* const data = text_.data();
    if (!at_end() && data[pos_] == '-') ++pos_;
    const auto digit = [&](std::size_t i) {
      return i < text_.size() && data[i] >= '0' && data[i] <= '9';
    };
    if (!digit(pos_)) {
      fail("invalid number");
    }
    // Integer part: a single 0, or a nonzero digit followed by digits.
    if (data[pos_] == '0') {
      ++pos_;
    } else {
      while (digit(pos_)) ++pos_;
    }
    // Fraction.
    if (pos_ < text_.size() && data[pos_] == '.') {
      ++pos_;
      if (!digit(pos_)) {
        fail("digit expected after decimal point");
      }
      while (digit(pos_)) ++pos_;
    }
    // Exponent.
    if (pos_ < text_.size() && (data[pos_] == 'e' || data[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (data[pos_] == '+' || data[pos_] == '-')) ++pos_;
      if (!digit(pos_)) {
        fail("digit expected in exponent");
      }
      while (digit(pos_)) ++pos_;
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(data + start, data + pos_, value);
    if (ec != std::errc{} || ptr != data + pos_) {
      fail("number out of range");
    }
    if (hashing_) {
      char buffer[kNumberBufferSize];
      hash_.append(buffer, format_number_to(buffer, value));
    }
    return builder_.number(value);
  }

  std::string_view text_;
  JsonParseOptions options_;
  Builder& builder_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string scratch_;  ///< escape-decoding buffer, reused across strings
  bool hashing_ = false;
  HashSink hash_;
};

}  // namespace greenfpga::io::detail

#endif  // GREENFPGA_IO_JSON_DETAIL_HPP
