#ifndef GREENFPGA_DEVICE_CHIP_SPEC_HPP
#define GREENFPGA_DEVICE_CHIP_SPEC_HPP

/// \file chip_spec.hpp
/// Device descriptions shared by every model: what a chip is, physically.

#include <string>

#include "tech/node.hpp"
#include "units/quantity.hpp"
#include "units/units.hpp"

namespace greenfpga::device {

/// Accelerator platform kind.
enum class ChipKind {
  asic,  ///< fixed-function accelerator; one design per application
  fpga,  ///< reconfigurable accelerator; one design reused across applications
  gpu,   ///< programmable accelerator; reused across applications via
         ///< software, but no circuit-level reconfigurability (paper §1:
         ///< "GPUs have high power and less flexibility than FPGAs")
  cpu,   ///< general-purpose processor; the software-only baseline of the
         ///< TOCS follow-up ("FPGAs against ASICs, GPUs, and CPUs"):
         ///< maximal reuse, worst iso-performance silicon and power
};

[[nodiscard]] std::string to_string(ChipKind kind);

/// Application domains evaluated by the paper (Table 2).
enum class Domain {
  dnn,      ///< deep neural network inference accelerators
  imgproc,  ///< image / video processing pipelines
  crypto,   ///< cryptographic engines
};

[[nodiscard]] std::string to_string(Domain domain);

/// A concrete silicon device: the physical inputs to the lifecycle models.
struct ChipSpec {
  std::string name;
  ChipKind kind = ChipKind::asic;
  tech::ProcessNode node = tech::ProcessNode::n10;
  units::Area die_area;     ///< silicon die area
  units::Power peak_power;  ///< TDP-class peak power
  /// Logic capacity in equivalent gates: the design size for an ASIC, the
  /// reconfigurable fabric capacity for an FPGA (paper's `FPGAcapacity`).
  double capacity_gates = 0.0;
  /// Useful service life of the physical chip (not of any one application).
  /// Paper §2: FPGAs last 12-15 years, ASICs become obsolete in 5-8.
  units::TimeSpan service_life = 15.0 * units::unit::years;
  /// Chiplet construction (ECO-CHIP): the device's total silicon fabbed as
  /// this many equal chiplets.  1 = monolithic (the paper default); values
  /// above 1 route embodied carbon through
  /// `LifecycleModel::per_chip_embodied_chiplet`.
  int chiplet_count = 1;
  /// Advanced package style joining the chiplets ("rdl_fanout",
  /// "silicon_interposer", "emib", "three_d"); parsed by
  /// `pkg::parse_package_type` at evaluation time.  Ignored while
  /// `chiplet_count == 1`.
  std::string chiplet_package = "emib";

  [[nodiscard]] bool is_fpga() const { return kind == ChipKind::fpga; }
  [[nodiscard]] bool is_gpu() const { return kind == ChipKind::gpu; }
  [[nodiscard]] bool is_cpu() const { return kind == ChipKind::cpu; }
  /// Platforms whose silicon is reused across applications (Eq. 2 shape).
  [[nodiscard]] bool is_reusable() const { return kind != ChipKind::asic; }

  /// Sanity checks used by model entry points; throws std::invalid_argument
  /// with the offending field named.
  void validate() const;
};

}  // namespace greenfpga::device

#endif  // GREENFPGA_DEVICE_CHIP_SPEC_HPP
