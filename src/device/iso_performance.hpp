#ifndef GREENFPGA_DEVICE_ISO_PERFORMANCE_HPP
#define GREENFPGA_DEVICE_ISO_PERFORMANCE_HPP

/// \file iso_performance.hpp
/// Iso-performance FPGA/ASIC mapping (paper Table 2 and the `N_FPGA` rule).
///
/// The paper compares platforms at equal delivered performance.  For each
/// application domain, [12] (T. Tan, "System level tradeoffs between ASIC
/// and FPGA accelerators") measured how much larger and more power-hungry
/// an FPGA implementation is than an ASIC at the same throughput; those
/// area/power ratios are Table 2 and are reproduced here verbatim.
///
/// When a single ASIC outperforms any single FPGA (reticle-limit designs),
/// iso-performance needs several FPGAs:
///     N_FPGA = ceil( application_size / FPGA_capacity )        (paper §3.2)
/// with both sizes in equivalent logic gates.  For an ASIC, N_FPGA = 1 so
/// the same embodied-CFP expression (Eq. 3) serves both platforms.

#include "device/chip_spec.hpp"
#include "units/quantity.hpp"

namespace greenfpga::device {

/// FPGA-to-ASIC resource ratios at iso-performance.
struct IsoPerformanceRatios {
  double area_ratio = 1.0;   ///< FPGA die area / ASIC die area
  double power_ratio = 1.0;  ///< FPGA power / ASIC power
};

/// Table 2 ratios for a domain (DNN 4x/3x, ImgProc 7.42x/1.25x, Crypto 1x/1x).
[[nodiscard]] IsoPerformanceRatios domain_ratios(Domain domain);

/// GPU-to-ASIC ratios at iso-performance (an extension beyond the paper's
/// Table 2; synthetic estimates at published magnitudes -- GPUs trail
/// domain ASICs by ~3-10x in perf/W, worst for bit-level crypto kernels).
[[nodiscard]] IsoPerformanceRatios gpu_domain_ratios(Domain domain);

/// CPU-to-ASIC ratios at iso-performance (the TOCS follow-up's
/// general-purpose baseline: "FPGAs against ASICs, GPUs, and CPUs").
/// Synthetic estimates at published magnitudes -- a general-purpose core
/// cluster trails a domain ASIC by roughly an order of magnitude in both
/// silicon and energy per delivered operation; the area ratio counts the
/// aggregate sockets needed to reach the accelerator's throughput.
[[nodiscard]] IsoPerformanceRatios cpu_domain_ratios(Domain domain);

/// Derive the iso-performance FPGA counterpart of an ASIC: area and power
/// scaled by the domain ratios, same node, FPGA service life (15 years),
/// capacity equal to the ASIC's design size (it must fit the application).
[[nodiscard]] ChipSpec derive_iso_fpga(const ChipSpec& asic, Domain domain);

/// Derive the iso-performance GPU counterpart of an ASIC (same rules with
/// the GPU ratios; GPUs serve 5-8 product years, we use 7).
[[nodiscard]] ChipSpec derive_iso_gpu(const ChipSpec& asic, Domain domain);

/// Derive the iso-performance CPU counterpart of an ASIC (same rules with
/// the CPU ratios; datacenter refresh cycles retire CPUs in ~5 years).
[[nodiscard]] ChipSpec derive_iso_cpu(const ChipSpec& asic, Domain domain);

/// The ECO-CHIP chiplet construction of an FPGA: the same device with its
/// silicon fabbed as `die_count` equal chiplets in an advanced package
/// (EMIB by default -- the cheapest multi-die style end to end).  Identical
/// workload behaviour; only the embodied-carbon path changes, through
/// `LifecycleModel::per_chip_embodied_chiplet`.
[[nodiscard]] ChipSpec derive_chiplet_fpga(const ChipSpec& fpga, int die_count = 4,
                                           const std::string& package = "emib");

/// The `N_FPGA` rule.  Throws std::invalid_argument for non-positive
/// capacity or negative application size; a zero-size application still
/// occupies one device.
[[nodiscard]] int fpgas_required(double application_gates, double fpga_capacity_gates);

/// Chips per deployed accelerator unit: `N_FPGA` for FPGAs, 1 for ASICs.
[[nodiscard]] int chips_per_unit(const ChipSpec& chip, double application_gates);

}  // namespace greenfpga::device

#endif  // GREENFPGA_DEVICE_ISO_PERFORMANCE_HPP
