/// \file catalog.cpp
/// Built-in domain testcases and Table 3 industry devices (calibrated bases).

#include "device/catalog.hpp"

#include <array>
#include <stdexcept>

#include "units/units.hpp"

namespace greenfpga::device {

namespace {

using units::unit::mm2;
using units::unit::w;
using units::unit::years;

/// Usable capacity of an ASIC design: all placed gates.
double asic_capacity(tech::ProcessNode node, units::Area area) {
  return tech::node_info(node).gates_in_area(area);
}

/// Usable capacity of an FPGA fabric: silicon gates divided by the fabric
/// overhead (LUTs, routing, configuration memory).
double fpga_capacity(tech::ProcessNode node, units::Area area) {
  return tech::node_info(node).gates_in_area(area) / kFpgaFabricOverhead;
}

constexpr std::array<Domain, 3> kAllDomains{Domain::dnn, Domain::imgproc, Domain::crypto};

/// Calibrated 10 nm base ASIC specs per domain: watt-class edge
/// accelerators deployed at million-unit volume (DESIGN.md §4).  The
/// area/power pairs are calibration targets pinned by
/// tests/calibration_test.cpp so the paper's crossover bands hold.
ChipSpec base_asic(Domain domain) {
  ChipSpec spec;
  spec.kind = ChipKind::asic;
  spec.node = tech::ProcessNode::n10;
  spec.service_life = 8.0 * years;
  switch (domain) {
    case Domain::dnn:
      spec.name = "dnn-asic-10nm";
      spec.die_area = 150.0 * mm2;
      spec.peak_power = 2.0 * w;
      break;
    case Domain::imgproc:
      spec.name = "imgproc-asic-10nm";
      spec.die_area = 80.0 * mm2;
      spec.peak_power = 2.0 * w;
      break;
    case Domain::crypto:
      spec.name = "crypto-asic-10nm";
      spec.die_area = 200.0 * mm2;
      spec.peak_power = 2.0 * w;
      break;
  }
  spec.capacity_gates = asic_capacity(spec.node, spec.die_area);
  return spec;
}

}  // namespace

std::span<const Domain> all_domains() { return kAllDomains; }

DomainTestcase domain_testcase(Domain domain) {
  DomainTestcase testcase;
  testcase.domain = domain;
  testcase.asic = base_asic(domain);
  testcase.fpga = derive_iso_fpga(testcase.asic, domain);
  testcase.fpga.name = to_string(domain) + "-iso-fpga-10nm";
  return testcase;
}

ChipSpec industry_asic1() {
  ChipSpec spec;
  spec.name = "IndustryASIC1 (Moffett Antoum-class)";
  spec.kind = ChipKind::asic;
  spec.node = tech::ProcessNode::n12;
  spec.die_area = 340.0 * mm2;
  spec.peak_power = 70.0 * w;
  spec.capacity_gates = asic_capacity(spec.node, spec.die_area);
  spec.service_life = 8.0 * years;
  return spec;
}

ChipSpec industry_asic2() {
  ChipSpec spec;
  spec.name = "IndustryASIC2 (Google TPU-class)";
  spec.kind = ChipKind::asic;
  spec.node = tech::ProcessNode::n7;
  spec.die_area = 600.0 * mm2;
  spec.peak_power = 192.0 * w;
  spec.capacity_gates = asic_capacity(spec.node, spec.die_area);
  spec.service_life = 8.0 * years;
  return spec;
}

ChipSpec industry_fpga1() {
  ChipSpec spec;
  spec.name = "IndustryFPGA1 (Intel Agilex 7-class)";
  spec.kind = ChipKind::fpga;
  spec.node = tech::ProcessNode::n14;
  spec.die_area = 380.0 * mm2;
  spec.peak_power = 160.0 * w;
  spec.capacity_gates = fpga_capacity(spec.node, spec.die_area);
  spec.service_life = 15.0 * years;
  return spec;
}

ChipSpec industry_fpga2() {
  ChipSpec spec;
  spec.name = "IndustryFPGA2 (Intel Stratix 10-class)";
  spec.kind = ChipKind::fpga;
  spec.node = tech::ProcessNode::n10;
  spec.die_area = 550.0 * mm2;
  spec.peak_power = 220.0 * w;
  spec.capacity_gates = fpga_capacity(spec.node, spec.die_area);
  spec.service_life = 15.0 * years;
  return spec;
}

}  // namespace greenfpga::device
