#ifndef GREENFPGA_DEVICE_PLATFORM_REGISTRY_HPP
#define GREENFPGA_DEVICE_PLATFORM_REGISTRY_HPP

/// \file platform_registry.hpp
/// Named, extensible catalogue of evaluatable platforms.
///
/// The paper compares two platforms (ASIC, FPGA) and the repo's extensions
/// add a third (GPU); the follow-up literature ("Evaluating Computing
/// Platforms for Sustainability") extends the comparison further (CPUs,
/// chiplet assemblies).  Hard-coding two/three-way structs does not scale
/// to that, so the evaluation engine resolves platforms *by name* through
/// this registry: a platform name maps to a resolver that derives the
/// concrete `ChipSpec` for a given application domain.
///
/// Built-in names:
///   * "asic" -- the domain testcase's calibrated ASIC (Table 2),
///   * "fpga" -- its iso-performance FPGA counterpart,
///   * "gpu"  -- the iso-performance GPU derived from the ASIC,
///   * "cpu"  -- the iso-performance general-purpose CPU baseline (the
///               TOCS follow-up's fourth platform),
///   * "chiplet_fpga" -- the domain FPGA fabbed as four EMIB-bridged
///               chiplets (ECO-CHIP embodied model).
///
/// New platforms (a vendor device, another package style) are one `add()`
/// call away and immediately usable from `ScenarioSpec` without touching
/// the engine.

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "device/catalog.hpp"
#include "device/chip_spec.hpp"

namespace greenfpga::device {

/// Maps platform names to domain-parameterised device resolvers.
class PlatformRegistry {
 public:
  /// Derives the platform's concrete device for an application domain.
  using Resolver = std::function<ChipSpec(Domain)>;

  /// An empty registry; use `with_builtins()` for the standard platforms.
  PlatformRegistry() = default;

  /// A registry pre-loaded with "asic", "fpga" and "gpu".
  [[nodiscard]] static PlatformRegistry with_builtins();

  /// Shared immutable instance of `with_builtins()` (the engine default).
  [[nodiscard]] static const PlatformRegistry& builtins();

  /// Register (or replace) a platform under `name`.
  void add(std::string name, Resolver resolver);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Resolve `name` for `domain`.  Throws std::out_of_range listing the
  /// registered names when `name` is unknown.
  [[nodiscard]] ChipSpec resolve(std::string_view name, Domain domain) const;

  /// Registered platform names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const { return resolvers_.size(); }

 private:
  std::map<std::string, Resolver, std::less<>> resolvers_;
};

}  // namespace greenfpga::device

#endif  // GREENFPGA_DEVICE_PLATFORM_REGISTRY_HPP
