/// \file chip_spec.cpp
/// ChipKind/Domain names and ChipSpec validation.

#include "device/chip_spec.hpp"

#include <stdexcept>

namespace greenfpga::device {

std::string to_string(ChipKind kind) {
  switch (kind) {
    case ChipKind::asic:
      return "ASIC";
    case ChipKind::fpga:
      return "FPGA";
    case ChipKind::gpu:
      return "GPU";
    case ChipKind::cpu:
      return "CPU";
  }
  return "unknown";
}

std::string to_string(Domain domain) {
  switch (domain) {
    case Domain::dnn:
      return "DNN";
    case Domain::imgproc:
      return "ImgProc";
    case Domain::crypto:
      return "Crypto";
  }
  return "unknown";
}

void ChipSpec::validate() const {
  if (name.empty()) {
    throw std::invalid_argument("ChipSpec: name must not be empty");
  }
  if (die_area.canonical() <= 0.0) {
    throw std::invalid_argument("ChipSpec '" + name + "': die area must be positive");
  }
  if (peak_power.canonical() <= 0.0) {
    throw std::invalid_argument("ChipSpec '" + name + "': peak power must be positive");
  }
  if (capacity_gates <= 0.0) {
    throw std::invalid_argument("ChipSpec '" + name + "': capacity must be positive");
  }
  if (service_life.canonical() <= 0.0) {
    throw std::invalid_argument("ChipSpec '" + name + "': service life must be positive");
  }
  if (chiplet_count < 1) {
    throw std::invalid_argument("ChipSpec '" + name + "': chiplet count must be >= 1");
  }
  if (chiplet_package.empty()) {
    throw std::invalid_argument("ChipSpec '" + name +
                                "': chiplet package must be non-empty");
  }
}

}  // namespace greenfpga::device
