/// \file iso_performance.cpp
/// Table 2 ratios, iso-performance FPGA derivation and the N_FPGA fleet rule.

#include "device/iso_performance.hpp"

#include <cmath>
#include <stdexcept>

#include "units/units.hpp"

namespace greenfpga::device {

IsoPerformanceRatios domain_ratios(Domain domain) {
  // Table 2, verbatim from [12].
  switch (domain) {
    case Domain::dnn:
      return {.area_ratio = 4.0, .power_ratio = 3.0};
    case Domain::imgproc:
      return {.area_ratio = 7.42, .power_ratio = 1.25};
    case Domain::crypto:
      return {.area_ratio = 1.0, .power_ratio = 1.0};
  }
  throw std::invalid_argument("domain_ratios: unknown domain");
}

IsoPerformanceRatios gpu_domain_ratios(Domain domain) {
  // Extension estimates (not Table 2): published perf/area and perf/W gaps
  // between domain ASICs and same-node GPUs run 3-8x (instruction issue,
  // caches and a general memory system dilute the datapath), with crypto
  // kernels (bit permutations) mapping worst onto SIMT lanes.  At
  // iso-performance the GPU is therefore larger than the domain FPGA too.
  switch (domain) {
    case Domain::dnn:
      return {.area_ratio = 5.0, .power_ratio = 5.0};
    case Domain::imgproc:
      return {.area_ratio = 4.0, .power_ratio = 3.0};
    case Domain::crypto:
      return {.area_ratio = 6.0, .power_ratio = 8.0};
  }
  throw std::invalid_argument("gpu_domain_ratios: unknown domain");
}

IsoPerformanceRatios cpu_domain_ratios(Domain domain) {
  // Extension estimates (not Table 2): published accelerator-vs-CPU gaps
  // put domain ASICs 1-2 orders of magnitude ahead of general-purpose
  // cores in perf/W (the TPU paper's ~30-80x over server CPUs for DNNs is
  // the canonical data point).  At iso-performance the CPU platform is an
  // aggregate of sockets, so both ratios exceed the GPU's: worst for
  // crypto (bit-level kernels), best for imgproc (SIMD-friendly).
  switch (domain) {
    case Domain::dnn:
      return {.area_ratio = 10.0, .power_ratio = 15.0};
    case Domain::imgproc:
      return {.area_ratio = 8.0, .power_ratio = 6.0};
    case Domain::crypto:
      return {.area_ratio = 12.0, .power_ratio = 20.0};
  }
  throw std::invalid_argument("cpu_domain_ratios: unknown domain");
}

ChipSpec derive_iso_gpu(const ChipSpec& asic, Domain domain) {
  asic.validate();
  const IsoPerformanceRatios ratios = gpu_domain_ratios(domain);
  ChipSpec gpu = asic;
  gpu.name = asic.name + "-iso-gpu";
  gpu.kind = ChipKind::gpu;
  gpu.die_area = asic.die_area * ratios.area_ratio;
  gpu.peak_power = asic.peak_power * ratios.power_ratio;
  gpu.capacity_gates = asic.capacity_gates;
  gpu.service_life = 7.0 * units::unit::years;
  return gpu;
}

ChipSpec derive_iso_cpu(const ChipSpec& asic, Domain domain) {
  asic.validate();
  const IsoPerformanceRatios ratios = cpu_domain_ratios(domain);
  ChipSpec cpu = asic;
  cpu.name = asic.name + "-iso-cpu";
  cpu.kind = ChipKind::cpu;
  cpu.die_area = asic.die_area * ratios.area_ratio;
  cpu.peak_power = asic.peak_power * ratios.power_ratio;
  cpu.capacity_gates = asic.capacity_gates;
  cpu.service_life = 5.0 * units::unit::years;
  return cpu;
}

ChipSpec derive_chiplet_fpga(const ChipSpec& fpga, int die_count,
                             const std::string& package) {
  fpga.validate();
  if (!fpga.is_fpga()) {
    throw std::invalid_argument("derive_chiplet_fpga: chip '" + fpga.name +
                                "' is not an FPGA");
  }
  if (die_count < 2) {
    throw std::invalid_argument(
        "derive_chiplet_fpga: a chiplet FPGA needs at least 2 dies");
  }
  ChipSpec chiplet = fpga;
  chiplet.name = fpga.name + "-chiplet";
  chiplet.chiplet_count = die_count;
  chiplet.chiplet_package = package;
  return chiplet;
}

ChipSpec derive_iso_fpga(const ChipSpec& asic, Domain domain) {
  asic.validate();
  const IsoPerformanceRatios ratios = domain_ratios(domain);
  ChipSpec fpga = asic;
  fpga.name = asic.name + "-iso-fpga";
  fpga.kind = ChipKind::fpga;
  fpga.die_area = asic.die_area * ratios.area_ratio;
  fpga.peak_power = asic.peak_power * ratios.power_ratio;
  // The derived FPGA is sized to hold exactly this application class, so
  // its usable capacity equals the ASIC design size.
  fpga.capacity_gates = asic.capacity_gates;
  fpga.service_life = 15.0 * units::unit::years;
  return fpga;
}

int fpgas_required(double application_gates, double fpga_capacity_gates) {
  if (fpga_capacity_gates <= 0.0) {
    throw std::invalid_argument("fpgas_required: capacity must be positive");
  }
  if (application_gates < 0.0) {
    throw std::invalid_argument("fpgas_required: negative application size");
  }
  if (application_gates == 0.0) {
    return 1;
  }
  return static_cast<int>(std::ceil(application_gates / fpga_capacity_gates));
}

int chips_per_unit(const ChipSpec& chip, double application_gates) {
  if (!chip.is_fpga()) {
    return 1;  // paper footnote: N_FPGA = 1 for ASICs, reusing Eq. (3)
  }
  return fpgas_required(application_gates, chip.capacity_gates);
}

}  // namespace greenfpga::device
