#ifndef GREENFPGA_DEVICE_CATALOG_HPP
#define GREENFPGA_DEVICE_CATALOG_HPP

/// \file catalog.hpp
/// Built-in device testcases: the paper's Table 2 domain pairs and the
/// Table 3 industry devices.
///
/// Domain testcases pair a representative 10 nm ASIC accelerator with its
/// iso-performance FPGA derived via Table 2's ratios.  The ASIC base
/// area/power values are not printed in the paper (they come from the
/// released tool's configs); ours are chosen so the headline crossovers
/// land in the paper's reported bands -- see DESIGN.md §4 "Calibration"
/// and tests/calibration_test.cpp, which pins them.
///
/// Industry testcases encode Table 3 verbatim (area, TDP, node).  FPGA
/// capacities model LUT-fabric overhead: usable equivalent-gate capacity is
/// the silicon's raw gate capacity divided by `kFpgaFabricOverhead` (~20x,
/// the classic FPGA-to-ASIC logic-density gap).

#include <span>

#include "device/chip_spec.hpp"
#include "device/iso_performance.hpp"

namespace greenfpga::device {

/// Logic-density overhead of FPGA fabric vs. standard cells (Kuon &
/// Rose-style gap): silicon gates per usable equivalent gate.
inline constexpr double kFpgaFabricOverhead = 20.0;

/// An ASIC/FPGA pair compared at iso-performance.
struct DomainTestcase {
  Domain domain = Domain::dnn;
  ChipSpec asic;
  ChipSpec fpga;
};

/// The calibrated 10 nm testcase for a paper domain (Table 2).
[[nodiscard]] DomainTestcase domain_testcase(Domain domain);

/// All three domain testcases in Table 2 order (DNN, ImgProc, Crypto).
[[nodiscard]] std::span<const Domain> all_domains();

/// Table 3 devices, verbatim specs.
[[nodiscard]] ChipSpec industry_asic1();  ///< Moffett Antoum-class: 340 mm^2, 70 W, 12 nm
[[nodiscard]] ChipSpec industry_asic2();  ///< Google TPU-class: 600 mm^2, 192 W, 7 nm
[[nodiscard]] ChipSpec industry_fpga1();  ///< Intel Agilex 7-class: 380 mm^2, 160 W, 14 nm
[[nodiscard]] ChipSpec industry_fpga2();  ///< Intel Stratix 10-class: 550 mm^2, 220 W, 10 nm

}  // namespace greenfpga::device

#endif  // GREENFPGA_DEVICE_CATALOG_HPP
