/// \file platform_registry.cpp
/// Built-in platform resolvers and name lookup.

#include "device/platform_registry.hpp"

#include <stdexcept>
#include <utility>

#include "device/iso_performance.hpp"

namespace greenfpga::device {

PlatformRegistry PlatformRegistry::with_builtins() {
  PlatformRegistry registry;
  registry.add("asic", [](Domain domain) { return domain_testcase(domain).asic; });
  registry.add("fpga", [](Domain domain) { return domain_testcase(domain).fpga; });
  registry.add("gpu", [](Domain domain) {
    return derive_iso_gpu(domain_testcase(domain).asic, domain);
  });
  registry.add("cpu", [](Domain domain) {
    return derive_iso_cpu(domain_testcase(domain).asic, domain);
  });
  registry.add("chiplet_fpga", [](Domain domain) {
    // The domain FPGA, silicon split four ways on EMIB bridges: the
    // sweet spot of bench/extension_chiplet_fpga.cpp's design-space scan
    // (yield savings beat bonding overhead for reticle-class dies).
    return derive_chiplet_fpga(domain_testcase(domain).fpga);
  });
  return registry;
}

const PlatformRegistry& PlatformRegistry::builtins() {
  static const PlatformRegistry instance = with_builtins();
  return instance;
}

void PlatformRegistry::add(std::string name, Resolver resolver) {
  if (name.empty()) {
    throw std::invalid_argument("PlatformRegistry: platform name must be non-empty");
  }
  if (!resolver) {
    throw std::invalid_argument("PlatformRegistry: resolver for '" + name +
                                "' must be callable");
  }
  resolvers_[std::move(name)] = std::move(resolver);
}

bool PlatformRegistry::contains(std::string_view name) const {
  return resolvers_.find(name) != resolvers_.end();
}

ChipSpec PlatformRegistry::resolve(std::string_view name, Domain domain) const {
  const auto it = resolvers_.find(name);
  if (it == resolvers_.end()) {
    std::string known;
    for (const auto& [key, value] : resolvers_) {
      known += known.empty() ? "" : ", ";
      known += key;
    }
    throw std::out_of_range("PlatformRegistry: unknown platform '" + std::string(name) +
                            "' (registered: " + known + ")");
  }
  return it->second(domain);
}

std::vector<std::string> PlatformRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(resolvers_.size());
  for (const auto& [key, value] : resolvers_) {
    out.push_back(key);
  }
  return out;
}

}  // namespace greenfpga::device
