/// \file commands.cpp
/// The `greenfpga` subcommands as stream-parameterised entry points.
///
/// Every evaluating command builds a `scenario::ScenarioSpec` and runs it
/// through `scenario::Engine`; the spec path (`greenfpga run`) accepts the
/// same shape from a JSON file, so anything the CLI can do is also
/// expressible declaratively without recompiling.

#include "cli/commands.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <utility>

#include "core/comparator.hpp"
#include "core/config_io.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "io/csv.hpp"
#include "report/ascii_chart.hpp"
#include "report/figure_writer.hpp"
#include "report/markdown_report.hpp"
#include "scenario/engine.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace greenfpga::cli {

namespace {

/// Worker count chosen by the current dispatch's --threads flag (0 =
/// engine default).  Dispatch resets it at the top of every call; the
/// exported run_* entry points therefore inherit the *latest* dispatch's
/// flag when called directly (and dispatch itself is not re-entrant
/// across threads) -- acceptable for a CLI process, documented here.
int g_threads = 0;

scenario::Engine make_engine() {
  return scenario::Engine(scenario::EngineOptions{.threads = g_threads});
}

std::optional<device::Domain> parse_domain(const std::string& text) {
  if (text == "dnn") return device::Domain::dnn;
  if (text == "imgproc") return device::Domain::imgproc;
  if (text == "crypto") return device::Domain::crypto;
  return std::nullopt;
}

void print_comparison(const std::string& title, const core::Comparison& comparison,
                      std::ostream& out) {
  out << "== " << title << " ==\n";
  const std::vector<std::pair<std::string, core::CfpBreakdown>> platforms{
      {"ASIC", comparison.asic.total},
      {"FPGA", comparison.fpga.total},
  };
  out << report::breakdown_table(platforms);
  out << "FPGA:ASIC ratio " << units::format_significant(comparison.ratio(), 4)
      << " -> greener platform: " << to_string(comparison.verdict()) << "\n\n";
}

void print_node_candidates(const std::vector<scenario::NodeCandidate>& candidates,
                           std::ostream& out) {
  io::TextTable table;
  table.set_headers({"rank", "node", "die area", "peak power", "total [t CO2e]", "vs best"});
  int rank = 1;
  for (const scenario::NodeCandidate& candidate : candidates) {
    table.add_row({std::to_string(rank++), tech::to_string(candidate.chip.node),
                   units::format_area(candidate.chip.die_area),
                   units::format_power(candidate.chip.peak_power),
                   units::format_significant(candidate.total().in(units::unit::t_co2e), 5),
                   units::format_significant(candidate.total_vs_best, 4)});
  }
  out << table.render();
}

/// Machine-readable form of an engine result (`greenfpga run --json`).
io::Json result_to_json(const scenario::ScenarioResult& result) {
  io::Json out = io::Json::object();
  out["spec"] = scenario::spec_to_json(result.spec);
  if (!result.points.empty()) {
    io::Json points = io::Json::array();
    for (const scenario::EvalPoint& point : result.points) {
      io::Json entry = io::Json::object();
      io::Json coords = io::Json::array();
      for (const double c : point.coords) {
        coords.push_back(c);
      }
      entry["coords"] = std::move(coords);
      io::Json platforms = io::Json::array();
      for (std::size_t i = 0; i < point.platforms.size(); ++i) {
        io::Json platform = io::Json::object();
        platform["name"] = result.platform_names[i];
        platform["result"] = core::to_json(point.platforms[i]);
        platforms.push_back(std::move(platform));
      }
      entry["platforms"] = std::move(platforms);
      points.push_back(std::move(entry));
    }
    out["points"] = std::move(points);
  }
  if (result.timeline) {
    io::Json timeline = io::Json::object();
    io::Json time = io::Json::array();
    io::Json asic = io::Json::array();
    io::Json fpga = io::Json::array();
    for (std::size_t i = 0; i < result.timeline->time_years.size(); ++i) {
      time.push_back(result.timeline->time_years[i]);
      asic.push_back(result.timeline->asic_cumulative_kg[i]);
      fpga.push_back(result.timeline->fpga_cumulative_kg[i]);
    }
    timeline["time_years"] = std::move(time);
    timeline["asic_cumulative_kg"] = std::move(asic);
    timeline["fpga_cumulative_kg"] = std::move(fpga);
    io::Json purchases = io::Json::array();
    for (const double year : result.timeline->fpga_purchase_years) {
      purchases.push_back(year);
    }
    timeline["fpga_purchase_years"] = std::move(purchases);
    out["timeline"] = std::move(timeline);
  }
  if (!result.candidates.empty()) {
    io::Json candidates = io::Json::array();
    for (const scenario::NodeCandidate& candidate : result.candidates) {
      io::Json entry = io::Json::object();
      entry["chip"] = core::to_json(candidate.chip);
      entry["total_kg"] = candidate.total().canonical();
      entry["total_vs_best"] = candidate.total_vs_best;
      candidates.push_back(std::move(entry));
    }
    out["candidates"] = std::move(candidates);
  }
  if (!result.tornado.empty()) {
    io::Json tornado = io::Json::array();
    for (const scenario::TornadoEntry& entry : result.tornado) {
      io::Json row = io::Json::object();
      row["name"] = entry.name;
      row["ratio_at_low"] = entry.ratio_at_low;
      row["ratio_at_high"] = entry.ratio_at_high;
      row["swing"] = entry.swing();
      tornado.push_back(std::move(row));
    }
    out["tornado"] = std::move(tornado);
  }
  if (result.monte_carlo) {
    io::Json mc = io::Json::object();
    mc["samples"] = result.monte_carlo->samples;
    mc["mean"] = result.monte_carlo->mean;
    mc["stddev"] = result.monte_carlo->stddev;
    mc["p05"] = result.monte_carlo->p05;
    mc["p50"] = result.monte_carlo->p50;
    mc["p95"] = result.monte_carlo->p95;
    mc["fpga_win_fraction"] = result.monte_carlo->fpga_win_fraction;
    out["monte_carlo"] = std::move(mc);
  }
  if (result.uncertainty) {
    const scenario::MonteCarloUq& uq = *result.uncertainty;
    io::Json mc = io::Json::object();
    mc["samples"] = uq.samples;
    io::Json percentiles = io::Json::array();
    for (const double p : uq.percentiles) {
      percentiles.push_back(p);
    }
    mc["percentiles"] = std::move(percentiles);
    const auto stat_to_json = [&uq](const scenario::UqStat& stat) {
      io::Json entry = io::Json::object();
      entry["mean"] = stat.mean;
      entry["stddev"] = stat.stddev;
      io::Json values = io::Json::array();
      for (const double v : stat.percentile_values) {
        values.push_back(v);
      }
      entry["percentile_values"] = std::move(values);
      return entry;
    };
    io::Json platforms = io::Json::array();
    for (std::size_t p = 0; p < uq.platform_total.size(); ++p) {
      io::Json entry = stat_to_json(uq.platform_total[p]);
      entry["name"] = result.platform_names[p];
      platforms.push_back(std::move(entry));
    }
    mc["platform_total_kg"] = std::move(platforms);
    io::Json ratios = io::Json::array();
    for (std::size_t k = 0; k < uq.ratio.size(); ++k) {
      io::Json entry = stat_to_json(uq.ratio[k]);
      entry["name"] = result.platform_names[k + 1] + ":" + result.platform_names[0];
      entry["win_fraction"] = uq.win_fraction[k];
      ratios.push_back(std::move(entry));
    }
    mc["ratio"] = std::move(ratios);
    out["uncertainty"] = std::move(mc);
  }
  if (result.breakeven) {
    // Requested solves always emit their key (null = no crossover);
    // unrequested solves omit it, so consumers can tell the states apart.
    io::Json breakeven = io::Json::object();
    const auto emit = [&breakeven](bool requested, const char* key,
                                   const std::optional<double>& value) {
      if (requested) {
        breakeven[key] = value ? io::Json(*value) : io::Json(nullptr);
      }
    };
    emit(result.spec.breakeven.solve_app_count, "app_count", result.breakeven->app_count);
    emit(result.spec.breakeven.solve_lifetime, "lifetime_years",
         result.breakeven->lifetime_years);
    emit(result.spec.breakeven.solve_volume, "volume", result.breakeven->volume);
    out["breakeven"] = std::move(breakeven);
  }
  return out;
}

/// True only for the classic two-platform pair: the legacy sweep/heat-map
/// renderings show exactly ASIC and FPGA columns, so any extra platform
/// must route to the generic table instead of being silently dropped.
bool is_classic_pair(const scenario::ScenarioResult& result) {
  return result.platform_names.size() == 2 &&
         result.platform_index(device::ChipKind::asic) &&
         result.platform_index(device::ChipKind::fpga);
}

/// Totals table over every platform at every point (the generic rendering
/// for platform sets beyond the classic ASIC/FPGA pair).
void print_points_table(const scenario::ScenarioResult& result, std::ostream& out) {
  io::TextTable table;
  std::vector<std::string> headers;
  for (const scenario::AxisSpec& axis : result.spec.axes) {
    headers.push_back(axis.label());
  }
  for (const std::string& name : result.platform_names) {
    headers.push_back(name + " [t CO2e]");
  }
  for (std::size_t i = 1; i < result.platform_names.size(); ++i) {
    headers.push_back(result.platform_names[i] + ":" + result.platform_names[0]);
  }
  table.set_headers(std::move(headers));
  for (const scenario::EvalPoint& point : result.points) {
    std::vector<std::string> row;
    for (const double c : point.coords) {
      row.push_back(units::format_significant(c, 4));
    }
    for (const core::PlatformCfp& platform : point.platforms) {
      row.push_back(units::format_significant(
          platform.total.total().in(units::unit::t_co2e), 5));
    }
    for (std::size_t i = 1; i < point.platforms.size(); ++i) {
      row.push_back(units::format_significant(point.ratio(i), 4));
    }
    table.add_row(std::move(row));
  }
  out << table.render();
}

void render_result(const scenario::ScenarioResult& result, std::ostream& out) {
  out << "== " << result.spec.name << " (" << to_string(result.spec.kind) << ", "
      << to_string(result.spec.domain) << ") ==\n";
  switch (result.spec.kind) {
    case scenario::ScenarioKind::compare: {
      std::vector<std::pair<std::string, core::CfpBreakdown>> rows;
      for (std::size_t i = 0; i < result.platform_names.size(); ++i) {
        rows.emplace_back(result.platform_names[i],
                          result.points.front().platforms[i].total);
      }
      out << report::breakdown_table(rows);
      for (std::size_t i = 1; i < result.platform_names.size(); ++i) {
        out << result.platform_names[i] << ":" << result.platform_names[0] << " ratio "
            << units::format_significant(result.points.front().ratio(i), 4) << "\n";
      }
      return;
    }
    case scenario::ScenarioKind::sweep: {
      if (is_classic_pair(result)) {
        const scenario::SweepSeries series = result.sweep_series();
        out << report::sweep_table(series)
            << "crossovers: " << report::crossover_summary(series) << "\n";
      } else {
        print_points_table(result, out);
      }
      return;
    }
    case scenario::ScenarioKind::grid: {
      if (is_classic_pair(result)) {
        const scenario::Heatmap map = result.heatmap();
        out << report::render_heatmap(map) << "ratio range ["
            << units::format_significant(map.min_ratio(), 4) << ", "
            << units::format_significant(map.max_ratio(), 4) << "], "
            << map.unity_contour().size() << " unity-contour points\n";
      } else {
        print_points_table(result, out);
      }
      return;
    }
    case scenario::ScenarioKind::timeline: {
      const scenario::TimelineSeries& series = *result.timeline;
      out << "horizon " << units::format_significant(series.time_years.back(), 4)
          << " years, " << series.fpga_purchase_years.size() << " FPGA fleet purchase(s)\n"
          << "final cumulative: ASIC "
          << units::format_significant(series.asic_cumulative_kg.back() / 1000.0, 5)
          << " t CO2e, FPGA "
          << units::format_significant(series.fpga_cumulative_kg.back() / 1000.0, 5)
          << " t CO2e\n";
      const auto crossovers = series.crossovers();
      out << "crossovers:";
      if (crossovers.empty()) {
        out << " none";
      }
      for (const scenario::Crossover& crossover : crossovers) {
        out << " " << to_string(crossover.kind) << " at "
            << units::format_significant(crossover.x, 4) << " y";
      }
      out << "\n";
      return;
    }
    case scenario::ScenarioKind::node_dse:
      print_node_candidates(result.candidates, out);
      return;
    case scenario::ScenarioKind::breakeven: {
      const auto fmt = [](bool requested, const std::optional<double>& x) {
        if (!requested) return std::string("not requested");
        return x ? units::format_significant(*x, 4) : std::string("none");
      };
      out << "breakeven N_app: "
          << fmt(result.spec.breakeven.solve_app_count, result.breakeven->app_count)
          << "\n"
          << "breakeven T_i [years]: "
          << fmt(result.spec.breakeven.solve_lifetime, result.breakeven->lifetime_years)
          << "\n"
          << "breakeven N_vol [units]: "
          << fmt(result.spec.breakeven.solve_volume, result.breakeven->volume) << "\n";
      return;
    }
    case scenario::ScenarioKind::montecarlo: {
      const scenario::MonteCarloUq& uq = *result.uncertainty;
      out << "Monte-Carlo: " << uq.samples << " samples, seed "
          << result.spec.montecarlo.seed << ", "
          << result.spec.montecarlo.distributions.size() << " uncertain parameter(s)\n";
      io::TextTable table;
      std::vector<std::string> headers{"metric", "mean", "stddev"};
      for (const double p : uq.percentiles) {
        headers.push_back("p" + units::format_significant(p, 4));
      }
      table.set_headers(std::move(headers));
      const auto add_stat = [&table, &uq](const std::string& name,
                                          const scenario::UqStat& stat, double scale) {
        std::vector<std::string> row{name,
                                     units::format_significant(stat.mean * scale, 5),
                                     units::format_significant(stat.stddev * scale, 5)};
        for (const double v : stat.percentile_values) {
          row.push_back(units::format_significant(v * scale, 5));
        }
        table.add_row(std::move(row));
      };
      for (std::size_t p = 0; p < uq.platform_total.size(); ++p) {
        add_stat(result.platform_names[p] + " [t CO2e]", uq.platform_total[p], 1e-3);
      }
      for (std::size_t k = 0; k < uq.ratio.size(); ++k) {
        add_stat(result.platform_names[k + 1] + ":" + result.platform_names[0] + " ratio",
                 uq.ratio[k], 1.0);
      }
      out << table.render();
      for (std::size_t k = 0; k < uq.win_fraction.size(); ++k) {
        out << result.platform_names[k + 1] << " beats " << result.platform_names[0]
            << " in " << units::format_significant(100.0 * uq.win_fraction[k], 4)
            << " % of samples\n";
      }
      if (!uq.ratio.empty()) {
        std::vector<double> ratios = uq.ratio_samples(1);
        std::sort(ratios.begin(), ratios.end());
        out << report::render_cdf(ratios, result.platform_names[1] + ":" +
                                              result.platform_names[0] + " ratio");
      }
      return;
    }
    case scenario::ScenarioKind::sensitivity: {
      if (!result.tornado.empty()) {
        io::TextTable table;
        table.set_headers({"parameter", "ratio at low", "ratio at high", "swing"});
        for (const scenario::TornadoEntry& entry : result.tornado) {
          table.add_row({entry.name, units::format_significant(entry.ratio_at_low, 4),
                         units::format_significant(entry.ratio_at_high, 4),
                         units::format_significant(entry.swing(), 4)});
        }
        out << table.render();
      }
      if (result.monte_carlo) {
        const scenario::MonteCarloResult& mc = *result.monte_carlo;
        out << "Monte-Carlo (" << mc.samples << " samples): mean ratio "
            << units::format_significant(mc.mean, 4) << ", p05 "
            << units::format_significant(mc.p05, 4) << ", p95 "
            << units::format_significant(mc.p95, 4) << ", FPGA wins "
            << units::format_significant(100.0 * mc.fpga_win_fraction, 4) << " %\n";
      }
      return;
    }
  }
}

/// Per-sample CSV of a Monte-Carlo result: one row per sample, a total
/// column per platform plus a ratio column per non-baseline platform.
/// Cells carry full double precision so the export reproduces percentiles
/// exactly.
io::CsvWriter mc_samples_csv(const scenario::ScenarioResult& result) {
  const scenario::MonteCarloUq& uq = *result.uncertainty;
  const auto fmt = [](double v) {
    std::ostringstream cell;
    cell << std::setprecision(17) << v;
    return cell.str();
  };
  io::CsvWriter csv;
  std::vector<std::string> header{"sample"};
  for (const std::string& name : result.platform_names) {
    header.push_back(name + "_total_kg");
  }
  for (std::size_t k = 1; k < result.platform_names.size(); ++k) {
    header.push_back(result.platform_names[k] + "_over_" + result.platform_names[0] +
                     "_ratio");
  }
  csv.add_row(std::move(header));
  std::vector<std::vector<double>> ratio_columns;
  for (std::size_t k = 1; k < uq.sample_totals_kg.size(); ++k) {
    ratio_columns.push_back(uq.ratio_samples(k));
  }
  const std::size_t samples = uq.sample_totals_kg.front().size();
  for (std::size_t i = 0; i < samples; ++i) {
    std::vector<std::string> row{std::to_string(i)};
    for (const std::vector<double>& totals : uq.sample_totals_kg) {
      row.push_back(fmt(totals[i]));
    }
    for (const std::vector<double>& ratios : ratio_columns) {
      row.push_back(fmt(ratios[i]));
    }
    csv.add_row(std::move(row));
  }
  return csv;
}

/// Shared tail of `run` and `mc`: evaluate the spec, render, write the
/// optional machine-readable exports.
int run_and_emit(const scenario::ScenarioSpec& spec,
                 const std::optional<std::string>& json_out,
                 const std::optional<std::string>& csv_out, std::ostream& out) {
  const scenario::ScenarioResult result = make_engine().run(spec);
  render_result(result, out);
  if (json_out) {
    io::write_json_file(*json_out, result_to_json(result));
    out << "wrote " << *json_out << "\n";
  }
  if (csv_out) {
    mc_samples_csv(result).write_file(*csv_out);
    out << "wrote " << *csv_out << "\n";
  }
  return 0;
}

}  // namespace

int print_usage(std::ostream& out, bool error) {
  out << "GreenFPGA: lifecycle carbon-footprint comparison of FPGA and ASIC computing\n"
         "\n"
         "usage:\n"
         "  greenfpga [--threads N] <command> ...\n"
         "\n"
         "  greenfpga run <spec.json> [--json <out.json>] [--csv <out.csv>]\n"
         "      evaluate a declarative scenario spec (compare, sweep, grid, timeline,\n"
         "      node_dse, breakeven, sensitivity, montecarlo) through the unified\n"
         "      engine; see examples/specs/ and docs/CLI.md for the spec shape\n"
         "      (--csv exports per-sample Monte-Carlo totals, montecarlo kind only)\n"
         "  greenfpga mc <dnn|imgproc|crypto> [--samples N] [--seed S]\n"
         "              [--csv <out.csv>] [--json <out.json>]\n"
         "      Monte-Carlo uncertainty quantification over the Table 1 parameter\n"
         "      distributions: percentile bands, win fractions and a ratio CDF\n"
         "  greenfpga compare <scenario.json> [--json <out.json>] [--markdown <out.md>]\n"
         "      evaluate a scenario file (see `greenfpga dump-config` for the shape)\n"
         "  greenfpga sweep <dnn|imgproc|crypto> <apps|lifetime|volume>\n"
         "      run one of the paper's sweep experiments on a built-in testcase\n"
         "  greenfpga industry\n"
         "      evaluate the Table 3 industry testcases (paper Figs. 10-11)\n"
         "  greenfpga nodes <dnn|imgproc|crypto>\n"
         "      rank fabrication nodes for the domain's FPGA by lifecycle CFP\n"
         "  greenfpga figures\n"
         "      run every paper experiment; print measured crossovers vs paper\n"
         "  greenfpga dump-config\n"
         "      print the calibrated paper-default model suite as JSON\n"
         "\n"
         "  --threads N sets the engine worker count (default: the\n"
         "  GREENFPGA_THREADS environment variable, else hardware concurrency).\n";
  return error ? 2 : 0;
}

int run_spec(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.empty()) {
    err << "run: missing spec file\n";
    return 2;
  }
  std::optional<std::string> json_out;
  std::optional<std::string> csv_out;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--json" && i + 1 < args.size()) {
      json_out = args[i + 1];
      ++i;
    } else if (args[i] == "--csv" && i + 1 < args.size()) {
      csv_out = args[i + 1];
      ++i;
    } else {
      err << "run: unknown argument '" << args[i] << "'\n";
      return 2;
    }
  }
  // load_spec reports parse/validation errors with the spec path and the
  // offending key, so a bad file fails with an actionable message.
  const scenario::ScenarioSpec spec = scenario::load_spec(args[0]);
  if (csv_out && spec.kind != scenario::ScenarioKind::montecarlo) {
    err << "run: --csv exports Monte-Carlo samples; spec '" << spec.name
        << "' has kind " << to_string(spec.kind) << "\n";
    return 2;
  }
  return run_and_emit(spec, json_out, csv_out, out);
}

int run_mc(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.empty()) {
    err << "mc: expected <domain> [--samples N] [--seed S] [--csv <out.csv>] "
           "[--json <out.json>]\n";
    return 2;
  }
  const auto domain = parse_domain(args[0]);
  if (!domain) {
    err << "mc: unknown domain '" << args[0] << "'\n";
    return 2;
  }
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::montecarlo, *domain);
  spec.name = to_string(*domain) + " Monte-Carlo uncertainty";
  std::optional<std::string> json_out;
  std::optional<std::string> csv_out;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const bool has_value = i + 1 < args.size();
    if (args[i] == "--samples" && has_value) {
      // Same strict range-guarded read as the JSON path: int_field_or
      // rejects junk instead of silently truncating.
      io::Json value = io::Json::object();
      try {
        value["samples"] = io::parse_json(args[i + 1]);
        spec.montecarlo.samples = static_cast<int>(
            core::int_field_or(value, "samples", 0, 1, 10'000'000));
      } catch (const std::exception& error) {
        err << "mc: invalid --samples '" << args[i + 1] << "': " << error.what() << "\n";
        return 2;
      }
      ++i;
    } else if (args[i] == "--seed" && has_value) {
      io::Json value = io::Json::object();
      try {
        value["seed"] = io::parse_json(args[i + 1]);
        spec.montecarlo.seed = static_cast<unsigned>(
            core::int_field_or(value, "seed", 0, 0, 4294967295LL));
      } catch (const std::exception& error) {
        err << "mc: invalid --seed '" << args[i + 1] << "': " << error.what() << "\n";
        return 2;
      }
      ++i;
    } else if (args[i] == "--csv" && has_value) {
      csv_out = args[i + 1];
      ++i;
    } else if (args[i] == "--json" && has_value) {
      json_out = args[i + 1];
      ++i;
    } else {
      err << "mc: unknown argument '" << args[i] << "'\n";
      return 2;
    }
  }
  return run_and_emit(spec, json_out, csv_out, out);
}

int run_compare(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.empty()) {
    err << "compare: missing scenario file\n";
    return 2;
  }
  std::optional<std::string> json_out;
  std::optional<std::string> markdown_out;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--json" && i + 1 < args.size()) {
      json_out = args[i + 1];
      ++i;
    } else if (args[i] == "--markdown" && i + 1 < args.size()) {
      markdown_out = args[i + 1];
      ++i;
    } else {
      err << "compare: unknown argument '" << args[i] << "'\n";
      return 2;
    }
  }

  const core::ScenarioConfig scenario = core::load_scenario(args[0]);
  scenario::ScenarioSpec spec;
  spec.name = scenario.name;
  spec.kind = scenario::ScenarioKind::compare;
  spec.suite = scenario.suite;
  spec.platforms = {scenario::PlatformRef{.name = "asic", .chip = scenario.asic},
                    scenario::PlatformRef{.name = "fpga", .chip = scenario.fpga}};
  spec.schedule.explicit_schedule = scenario.schedule;
  const core::Comparison comparison = make_engine().run(spec).comparison();
  print_comparison(scenario.name, comparison, out);

  if (json_out) {
    io::Json result = io::Json::object();
    result["scenario"] = scenario.name;
    result["asic"] = core::to_json(comparison.asic);
    result["fpga"] = core::to_json(comparison.fpga);
    result["ratio"] = comparison.ratio();
    result["greener"] = to_string(comparison.verdict());
    io::write_json_file(*json_out, result);
    out << "wrote " << *json_out << "\n";
  }
  if (markdown_out) {
    report::MarkdownReportInputs inputs;
    inputs.scenario = scenario;
    inputs.comparison = comparison;
    inputs.uncertainty =
        scenario::monte_carlo(scenario.suite,
                              device::DomainTestcase{.domain = device::Domain::dnn,
                                                     .asic = scenario.asic,
                                                     .fpga = scenario.fpga},
                              scenario.schedule, scenario::table1_ranges(), 128);
    std::ofstream file(*markdown_out);
    if (!file) {
      err << "compare: cannot write '" << *markdown_out << "'\n";
      return 1;
    }
    file << report::render_markdown_report(inputs);
    out << "wrote " << *markdown_out << "\n";
  }
  return 0;
}

int run_sweep(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.size() != 2) {
    err << "sweep: expected <domain> <variable>\n";
    return 2;
  }
  const auto domain = parse_domain(args[0]);
  if (!domain) {
    err << "sweep: unknown domain '" << args[0] << "'\n";
    return 2;
  }
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::sweep, *domain);
  if (args[1] == "apps") {
    spec.axes = {scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 12, 12)};
  } else if (args[1] == "lifetime") {
    spec.axes = {
        scenario::AxisSpec::linear(scenario::SweepVariable::lifetime_years, 0.2, 2.5, 24)};
  } else if (args[1] == "volume") {
    spec.axes = {scenario::AxisSpec::log(scenario::SweepVariable::volume, 1e3, 1e7, 25)};
  } else {
    err << "sweep: unknown variable '" << args[1] << "'\n";
    return 2;
  }
  const scenario::SweepSeries series = make_engine().run(spec).sweep_series();
  out << "== " << to_string(*domain) << " sweep over " << series.parameter << " ==\n"
      << report::sweep_table(series) << "crossovers: " << report::crossover_summary(series)
      << "\n";
  return 0;
}

int run_industry(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  if (!args.empty()) {
    err << "industry: unexpected argument '" << args.front() << "'\n";
    return 2;
  }
  const core::LifecycleModel model(core::industry_suite());

  // Fig. 10 setup: each FPGA runs 6 years / 3 applications / 1M volume.
  workload::Application fpga_app;
  fpga_app.name = "industry-fpga-app";
  fpga_app.lifetime = 2.0 * units::unit::years;
  fpga_app.volume = 1e6;
  const workload::Schedule fpga_schedule = workload::homogeneous_schedule(3, fpga_app);

  // Fig. 11 setup: one 6-year application, never reprogrammed.
  workload::Application asic_app;
  asic_app.name = "industry-asic-app";
  asic_app.lifetime = 6.0 * units::unit::years;
  asic_app.volume = 1e6;
  const workload::Schedule asic_schedule{asic_app};

  std::vector<std::pair<std::string, core::CfpBreakdown>> rows;
  for (const device::ChipSpec& fpga : {device::industry_fpga1(), device::industry_fpga2()}) {
    rows.emplace_back(fpga.name, model.evaluate_fpga(fpga, fpga_schedule).total);
  }
  for (const device::ChipSpec& asic : {device::industry_asic1(), device::industry_asic2()}) {
    rows.emplace_back(asic.name, model.evaluate_asic(asic, asic_schedule).total);
  }
  out << "== Industry testcases (Table 3; FPGAs: 6 y / 3 apps / 1M; ASICs: 6 y / 1M) ==\n"
      << report::breakdown_table(rows);
  return 0;
}

int run_nodes(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.size() != 1) {
    err << "nodes: expected <domain>\n";
    return 2;
  }
  const auto domain = parse_domain(args[0]);
  if (!domain) {
    err << "nodes: unknown domain '" << args[0] << "'\n";
    return 2;
  }
  const scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::node_dse, *domain);
  const scenario::ScenarioResult result = make_engine().run(spec);
  out << "== node ranking for the " << to_string(*domain)
      << " FPGA (paper schedule: 5 apps x 2 y x 1M) ==\n";
  print_node_candidates(result.candidates, out);
  return 0;
}

int run_figures(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (!args.empty()) {
    err << "figures: unexpected argument '" << args.front() << "'\n";
    return 2;
  }
  const scenario::Engine engine = make_engine();
  const auto sweep_series = [&](device::Domain domain, scenario::AxisSpec axis) {
    scenario::ScenarioSpec spec =
        scenario::ScenarioSpec::make(scenario::ScenarioKind::sweep, domain);
    spec.axes = {std::move(axis)};
    return engine.run(spec).sweep_series();
  };

  io::TextTable table;
  table.set_headers({"experiment", "domain", "paper", "measured"});
  const auto fmt = [](const std::optional<double>& x) {
    return x ? units::format_significant(*x, 4) : std::string("none");
  };

  for (const device::Domain domain : device::all_domains()) {
    const auto fig4 = sweep_series(
        domain, scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 16, 16));
    const auto a2f = first_crossover(fig4.crossovers(), scenario::CrossoverKind::a2f);
    const char* paper_a2f = domain == device::Domain::dnn       ? "~6"
                            : domain == device::Domain::imgproc ? "~12 (past 8)"
                                                                : "1 (immediate)";
    table.add_row({"Fig. 4 A2F [apps]", to_string(domain), paper_a2f, fmt(a2f)});

    const auto fig5 = sweep_series(
        domain,
        scenario::AxisSpec::linear(scenario::SweepVariable::lifetime_years, 0.2, 2.5, 47));
    const auto f2a_t = first_crossover(fig5.crossovers(), scenario::CrossoverKind::f2a);
    const char* paper_f2a_t = domain == device::Domain::dnn       ? "~1.6"
                              : domain == device::Domain::imgproc ? "none (ASIC)"
                                                                  : "none (FPGA)";
    table.add_row({"Fig. 5 F2A [years]", to_string(domain), paper_f2a_t, fmt(f2a_t)});

    const auto fig6 = sweep_series(
        domain, scenario::AxisSpec::log(scenario::SweepVariable::volume, 1e3, 1e7, 41));
    const auto f2a_v = first_crossover(fig6.crossovers(), scenario::CrossoverKind::f2a);
    const char* paper_f2a_v = domain == device::Domain::dnn       ? "~2e6"
                              : domain == device::Domain::imgproc ? "~3e5"
                                                                  : "none (FPGA)";
    table.add_row({"Fig. 6 F2A [units]", to_string(domain), paper_f2a_v, fmt(f2a_v)});
  }

  scenario::ScenarioSpec fig2_spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::compare, device::Domain::dnn);
  fig2_spec.schedule.app_count = 10;
  const double fig2 = engine.run(fig2_spec).comparison().ratio();
  table.add_row({"Fig. 2 FPGA saving at 10 apps", "DNN", "~25 %",
                 units::format_significant(100.0 * (1.0 - fig2), 4) + " %"});

  out << "== paper-vs-measured headline summary (see EXPERIMENTS.md for analysis) ==\n"
      << table.render();
  return 0;
}

int run_dump_config(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err) {
  if (!args.empty()) {
    err << "dump-config: unexpected argument '" << args.front() << "'\n";
    return 2;
  }
  io::Json scenario = io::Json::object();
  scenario["name"] = "example scenario (edit me)";
  scenario["suite"] = core::to_json(core::paper_suite());
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  scenario["asic"] = core::to_json(testcase.asic);
  scenario["fpga"] = core::to_json(testcase.fpga);
  scenario["schedule"] = core::to_json(core::paper_schedule(device::Domain::dnn));
  out << scenario.dump() << "\n";
  return 0;
}

int dispatch(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  // Strip the global --threads flag (valid anywhere before/after the
  // command name) and remember it for make_engine().
  g_threads = 0;
  std::vector<std::string> rest;
  rest.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threads") {
      if (i + 1 >= args.size()) {
        err << "--threads: missing worker count\n";
        return 2;
      }
      // Strict parse (trailing garbage and overflow rejected), same rules
      // as the GREENFPGA_THREADS environment path; the engine clamps to
      // its kMaxThreads pool bound.
      const std::string& value = args[i + 1];
      char* end = nullptr;
      errno = 0;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end != value.c_str() + value.size() || errno == ERANGE ||
          parsed < 1) {
        err << "--threads: invalid worker count '" << value << "'\n";
        return 2;
      }
      g_threads = static_cast<int>(
          std::min<long>(parsed, scenario::Engine::kMaxThreads));
      ++i;
    } else {
      rest.push_back(args[i]);
    }
  }

  if (rest.empty()) {
    return print_usage(err);
  }
  if (rest[0] == "--help" || rest[0] == "-h" || rest[0] == "help") {
    return print_usage(out, /*error=*/false);
  }
  try {
    const std::string command = rest[0];
    rest.erase(rest.begin());
    if (command == "run") {
      return run_spec(rest, out, err);
    }
    if (command == "mc") {
      return run_mc(rest, out, err);
    }
    if (command == "compare") {
      return run_compare(rest, out, err);
    }
    if (command == "sweep") {
      return run_sweep(rest, out, err);
    }
    if (command == "industry") {
      return run_industry(rest, out, err);
    }
    if (command == "nodes") {
      return run_nodes(rest, out, err);
    }
    if (command == "figures") {
      return run_figures(rest, out, err);
    }
    if (command == "dump-config") {
      return run_dump_config(rest, out, err);
    }
    err << "unknown command '" << command << "'\n";
    return print_usage(err);
  } catch (const std::exception& error) {
    err << "error: " << error.what() << "\n";
    return 1;
  }
}

}  // namespace greenfpga::cli
